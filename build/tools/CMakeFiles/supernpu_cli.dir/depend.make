# Empty dependencies file for supernpu_cli.
# This may be replaced when dependencies are built.
