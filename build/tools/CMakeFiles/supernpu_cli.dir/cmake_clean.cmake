file(REMOVE_RECURSE
  "CMakeFiles/supernpu_cli.dir/supernpu_cli.cc.o"
  "CMakeFiles/supernpu_cli.dir/supernpu_cli.cc.o.d"
  "supernpu"
  "supernpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supernpu_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
