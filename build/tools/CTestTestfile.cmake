# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_workloads "/root/repo/build/tools/supernpu" "workloads")
set_tests_properties(cli_workloads PROPERTIES  PASS_REGULAR_EXPRESSION "mobilenet" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_estimate "/root/repo/build/tools/supernpu" "estimate" "supernpu")
set_tests_properties(cli_estimate PROPERTIES  PASS_REGULAR_EXPRESSION "limited by PE array" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_simulate "/root/repo/build/tools/supernpu" "simulate" "resnet50" "supernpu" "--tech" "ersfq")
set_tests_properties(cli_simulate PROPERTIES  PASS_REGULAR_EXPRESSION "TMAC/s effective" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;21;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_batch "/root/repo/build/tools/supernpu" "batch" "vgg16" "supernpu")
set_tests_properties(cli_batch PROPERTIES  PASS_REGULAR_EXPRESSION "max on-chip batch 7" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;25;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_validate "/root/repo/build/tools/supernpu" "validate")
set_tests_properties(cli_validate PROPERTIES  PASS_REGULAR_EXPRESSION "SRmem" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;28;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_custom_config "/root/repo/build/tools/supernpu" "estimate" "baseline" "--width" "64" "--regs" "4")
set_tests_properties(cli_custom_config PROPERTIES  PASS_REGULAR_EXPRESSION "peak 862 TMAC/s" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;31;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_netfile "/root/repo/build/tools/supernpu" "simulate" "supernpu" "--tech" "ersfq" "--netfile" "/root/repo/examples/networks/tinyconv.net")
set_tests_properties(cli_netfile PROPERTIES  PASS_REGULAR_EXPRESSION "TinyConv on SuperNPU" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;35;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_design_rules "/root/repo/build/tools/supernpu" "estimate" "baseline")
set_tests_properties(cli_design_rules PROPERTIES  PASS_REGULAR_EXPRESSION "psum-separation" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;40;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_trace "/root/repo/build/tools/supernpu" "simulate" "googlenet" "supernpu" "--trace" "cli_trace_out.csv")
set_tests_properties(cli_trace PROPERTIES  PASS_REGULAR_EXPRESSION "mapping events" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;44;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_explore "/root/repo/build/tools/supernpu" "explore" "--tech" "ersfq")
set_tests_properties(cli_explore PROPERTIES  PASS_REGULAR_EXPRESSION "w64/d" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;49;add_test;/root/repo/tools/CMakeLists.txt;0;")
