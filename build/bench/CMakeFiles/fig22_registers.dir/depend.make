# Empty dependencies file for fig22_registers.
# This may be replaced when dependencies are built.
