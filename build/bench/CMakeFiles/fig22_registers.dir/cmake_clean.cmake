file(REMOVE_RECURSE
  "CMakeFiles/fig22_registers.dir/fig22_registers.cc.o"
  "CMakeFiles/fig22_registers.dir/fig22_registers.cc.o.d"
  "fig22_registers"
  "fig22_registers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_registers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
