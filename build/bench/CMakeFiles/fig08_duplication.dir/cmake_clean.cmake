file(REMOVE_RECURSE
  "CMakeFiles/fig08_duplication.dir/fig08_duplication.cc.o"
  "CMakeFiles/fig08_duplication.dir/fig08_duplication.cc.o.d"
  "fig08_duplication"
  "fig08_duplication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_duplication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
