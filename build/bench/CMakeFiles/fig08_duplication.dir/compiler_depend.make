# Empty compiler generated dependencies file for fig08_duplication.
# This may be replaced when dependencies are built.
