file(REMOVE_RECURSE
  "CMakeFiles/fig17_roofline.dir/fig17_roofline.cc.o"
  "CMakeFiles/fig17_roofline.dir/fig17_roofline.cc.o.d"
  "fig17_roofline"
  "fig17_roofline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
