# Empty compiler generated dependencies file for fig17_roofline.
# This may be replaced when dependencies are built.
