file(REMOVE_RECURSE
  "CMakeFiles/ablation_weight_prefetch.dir/ablation_weight_prefetch.cc.o"
  "CMakeFiles/ablation_weight_prefetch.dir/ablation_weight_prefetch.cc.o.d"
  "ablation_weight_prefetch"
  "ablation_weight_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_weight_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
