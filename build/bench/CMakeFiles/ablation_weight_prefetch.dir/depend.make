# Empty dependencies file for ablation_weight_prefetch.
# This may be replaced when dependencies are built.
