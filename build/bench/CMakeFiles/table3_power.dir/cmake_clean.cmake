file(REMOVE_RECURSE
  "CMakeFiles/table3_power.dir/table3_power.cc.o"
  "CMakeFiles/table3_power.dir/table3_power.cc.o.d"
  "table3_power"
  "table3_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
