# Empty dependencies file for fig20_bufferopt.
# This may be replaced when dependencies are built.
