file(REMOVE_RECURSE
  "CMakeFiles/fig20_bufferopt.dir/fig20_bufferopt.cc.o"
  "CMakeFiles/fig20_bufferopt.dir/fig20_bufferopt.cc.o.d"
  "fig20_bufferopt"
  "fig20_bufferopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_bufferopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
