# Empty dependencies file for table2_batch.
# This may be replaced when dependencies are built.
