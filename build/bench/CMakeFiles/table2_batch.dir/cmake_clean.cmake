file(REMOVE_RECURSE
  "CMakeFiles/table2_batch.dir/table2_batch.cc.o"
  "CMakeFiles/table2_batch.dir/table2_batch.cc.o.d"
  "table2_batch"
  "table2_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
