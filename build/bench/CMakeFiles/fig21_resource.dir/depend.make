# Empty dependencies file for fig21_resource.
# This may be replaced when dependencies are built.
