file(REMOVE_RECURSE
  "CMakeFiles/fig21_resource.dir/fig21_resource.cc.o"
  "CMakeFiles/fig21_resource.dir/fig21_resource.cc.o.d"
  "fig21_resource"
  "fig21_resource.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_resource.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
