
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_clocking.cc" "bench/CMakeFiles/ablation_clocking.dir/ablation_clocking.cc.o" "gcc" "bench/CMakeFiles/ablation_clocking.dir/ablation_clocking.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/npusim/CMakeFiles/supernpu_explorer.dir/DependInfo.cmake"
  "/root/repo/build/src/npusim/CMakeFiles/supernpu_npusim.dir/DependInfo.cmake"
  "/root/repo/build/src/scalesim/CMakeFiles/supernpu_scalesim.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/supernpu_power.dir/DependInfo.cmake"
  "/root/repo/build/src/functional/CMakeFiles/supernpu_functional.dir/DependInfo.cmake"
  "/root/repo/build/src/estimator/CMakeFiles/supernpu_estimator.dir/DependInfo.cmake"
  "/root/repo/build/src/dnn/CMakeFiles/supernpu_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/sfq/CMakeFiles/supernpu_sfq.dir/DependInfo.cmake"
  "/root/repo/build/src/jsim/CMakeFiles/supernpu_jsim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/supernpu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
