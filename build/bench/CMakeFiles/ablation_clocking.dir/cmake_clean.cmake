file(REMOVE_RECURSE
  "CMakeFiles/ablation_clocking.dir/ablation_clocking.cc.o"
  "CMakeFiles/ablation_clocking.dir/ablation_clocking.cc.o.d"
  "ablation_clocking"
  "ablation_clocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_clocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
