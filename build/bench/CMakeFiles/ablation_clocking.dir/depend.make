# Empty dependencies file for ablation_clocking.
# This may be replaced when dependencies are built.
