file(REMOVE_RECURSE
  "CMakeFiles/ablation_process.dir/ablation_process.cc.o"
  "CMakeFiles/ablation_process.dir/ablation_process.cc.o.d"
  "ablation_process"
  "ablation_process.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_process.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
