# Empty dependencies file for ablation_process.
# This may be replaced when dependencies are built.
