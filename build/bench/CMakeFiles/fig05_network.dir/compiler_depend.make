# Empty compiler generated dependencies file for fig05_network.
# This may be replaced when dependencies are built.
