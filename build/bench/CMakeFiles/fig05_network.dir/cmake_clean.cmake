file(REMOVE_RECURSE
  "CMakeFiles/fig05_network.dir/fig05_network.cc.o"
  "CMakeFiles/fig05_network.dir/fig05_network.cc.o.d"
  "fig05_network"
  "fig05_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
