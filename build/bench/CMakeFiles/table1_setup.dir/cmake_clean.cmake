file(REMOVE_RECURSE
  "CMakeFiles/table1_setup.dir/table1_setup.cc.o"
  "CMakeFiles/table1_setup.dir/table1_setup.cc.o.d"
  "table1_setup"
  "table1_setup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_setup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
