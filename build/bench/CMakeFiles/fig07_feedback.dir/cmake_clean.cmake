file(REMOVE_RECURSE
  "CMakeFiles/fig07_feedback.dir/fig07_feedback.cc.o"
  "CMakeFiles/fig07_feedback.dir/fig07_feedback.cc.o.d"
  "fig07_feedback"
  "fig07_feedback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_feedback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
