# Empty compiler generated dependencies file for fig07_feedback.
# This may be replaced when dependencies are built.
