# Empty compiler generated dependencies file for ablation_dau.
# This may be replaced when dependencies are built.
