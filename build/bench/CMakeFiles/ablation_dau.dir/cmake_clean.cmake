file(REMOVE_RECURSE
  "CMakeFiles/ablation_dau.dir/ablation_dau.cc.o"
  "CMakeFiles/ablation_dau.dir/ablation_dau.cc.o.d"
  "ablation_dau"
  "ablation_dau.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dau.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
