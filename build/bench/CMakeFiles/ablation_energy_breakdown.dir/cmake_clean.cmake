file(REMOVE_RECURSE
  "CMakeFiles/ablation_energy_breakdown.dir/ablation_energy_breakdown.cc.o"
  "CMakeFiles/ablation_energy_breakdown.dir/ablation_energy_breakdown.cc.o.d"
  "ablation_energy_breakdown"
  "ablation_energy_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_energy_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
