file(REMOVE_RECURSE
  "CMakeFiles/ablation_offchip_memory.dir/ablation_offchip_memory.cc.o"
  "CMakeFiles/ablation_offchip_memory.dir/ablation_offchip_memory.cc.o.d"
  "ablation_offchip_memory"
  "ablation_offchip_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_offchip_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
