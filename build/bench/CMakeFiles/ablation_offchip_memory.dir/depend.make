# Empty dependencies file for ablation_offchip_memory.
# This may be replaced when dependencies are built.
