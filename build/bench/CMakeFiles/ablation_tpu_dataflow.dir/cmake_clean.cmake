file(REMOVE_RECURSE
  "CMakeFiles/ablation_tpu_dataflow.dir/ablation_tpu_dataflow.cc.o"
  "CMakeFiles/ablation_tpu_dataflow.dir/ablation_tpu_dataflow.cc.o.d"
  "ablation_tpu_dataflow"
  "ablation_tpu_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tpu_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
