file(REMOVE_RECURSE
  "CMakeFiles/fig23_performance.dir/fig23_performance.cc.o"
  "CMakeFiles/fig23_performance.dir/fig23_performance.cc.o.d"
  "fig23_performance"
  "fig23_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig23_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
