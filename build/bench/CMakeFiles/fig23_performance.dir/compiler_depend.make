# Empty compiler generated dependencies file for fig23_performance.
# This may be replaced when dependencies are built.
