# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  PASS_REGULAR_EXPRESSION "efficiency" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_accelerator "/root/repo/build/examples/custom_accelerator")
set_tests_properties(example_custom_accelerator PROPERTIES  PASS_REGULAR_EXPRESSION "exact match vs golden conv" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;30;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_layer_profiler "/root/repo/build/examples/layer_profiler" "resnet50" "baseline")
set_tests_properties(example_layer_profiler PROPERTIES  PASS_REGULAR_EXPRESSION "psum move" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;33;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_analog_waveforms "/root/repo/build/examples/analog_waveforms")
set_tests_properties(example_analog_waveforms PROPERTIES  PASS_REGULAR_EXPRESSION "one flux quantum" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;37;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cryogenic_power_study "/root/repo/build/examples/cryogenic_power_study")
set_tests_properties(example_cryogenic_power_study PROPERTIES  PASS_REGULAR_EXPRESSION "free cooling" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;40;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_functional_inference "/root/repo/build/examples/functional_inference")
set_tests_properties(example_functional_inference PROPERTIES  PASS_REGULAR_EXPRESSION "EXACT MATCH" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;46;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_latency_throughput "/root/repo/build/examples/latency_throughput")
set_tests_properties(example_latency_throughput PROPERTIES  PASS_REGULAR_EXPRESSION "throughput knee" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;49;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_scaleout_study "/root/repo/build/examples/scaleout_study")
set_tests_properties(example_scaleout_study PROPERTIES  PASS_REGULAR_EXPRESSION "per die" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;53;add_test;/root/repo/examples/CMakeLists.txt;0;")
