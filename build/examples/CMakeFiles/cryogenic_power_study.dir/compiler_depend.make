# Empty compiler generated dependencies file for cryogenic_power_study.
# This may be replaced when dependencies are built.
