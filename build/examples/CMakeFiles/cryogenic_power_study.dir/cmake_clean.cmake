file(REMOVE_RECURSE
  "CMakeFiles/cryogenic_power_study.dir/cryogenic_power_study.cpp.o"
  "CMakeFiles/cryogenic_power_study.dir/cryogenic_power_study.cpp.o.d"
  "cryogenic_power_study"
  "cryogenic_power_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cryogenic_power_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
