# Empty dependencies file for latency_throughput.
# This may be replaced when dependencies are built.
