file(REMOVE_RECURSE
  "CMakeFiles/latency_throughput.dir/latency_throughput.cpp.o"
  "CMakeFiles/latency_throughput.dir/latency_throughput.cpp.o.d"
  "latency_throughput"
  "latency_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
