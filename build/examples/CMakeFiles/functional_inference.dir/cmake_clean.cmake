file(REMOVE_RECURSE
  "CMakeFiles/functional_inference.dir/functional_inference.cpp.o"
  "CMakeFiles/functional_inference.dir/functional_inference.cpp.o.d"
  "functional_inference"
  "functional_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/functional_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
