# Empty dependencies file for analog_waveforms.
# This may be replaced when dependencies are built.
