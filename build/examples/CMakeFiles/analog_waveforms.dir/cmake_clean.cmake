file(REMOVE_RECURSE
  "CMakeFiles/analog_waveforms.dir/analog_waveforms.cpp.o"
  "CMakeFiles/analog_waveforms.dir/analog_waveforms.cpp.o.d"
  "analog_waveforms"
  "analog_waveforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analog_waveforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
