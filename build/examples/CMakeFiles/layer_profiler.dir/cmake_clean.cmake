file(REMOVE_RECURSE
  "CMakeFiles/layer_profiler.dir/layer_profiler.cpp.o"
  "CMakeFiles/layer_profiler.dir/layer_profiler.cpp.o.d"
  "layer_profiler"
  "layer_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layer_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
