# Empty dependencies file for layer_profiler.
# This may be replaced when dependencies are built.
