# Empty dependencies file for scaleout_study.
# This may be replaced when dependencies are built.
