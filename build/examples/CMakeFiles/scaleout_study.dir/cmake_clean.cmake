file(REMOVE_RECURSE
  "CMakeFiles/scaleout_study.dir/scaleout_study.cpp.o"
  "CMakeFiles/scaleout_study.dir/scaleout_study.cpp.o.d"
  "scaleout_study"
  "scaleout_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaleout_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
