# Empty compiler generated dependencies file for supernpu_tests.
# This may be replaced when dependencies are built.
