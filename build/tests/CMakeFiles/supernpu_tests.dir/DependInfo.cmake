
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_common.cc" "tests/CMakeFiles/supernpu_tests.dir/test_common.cc.o" "gcc" "tests/CMakeFiles/supernpu_tests.dir/test_common.cc.o.d"
  "/root/repo/tests/test_design_rules.cc" "tests/CMakeFiles/supernpu_tests.dir/test_design_rules.cc.o" "gcc" "tests/CMakeFiles/supernpu_tests.dir/test_design_rules.cc.o.d"
  "/root/repo/tests/test_dnn.cc" "tests/CMakeFiles/supernpu_tests.dir/test_dnn.cc.o" "gcc" "tests/CMakeFiles/supernpu_tests.dir/test_dnn.cc.o.d"
  "/root/repo/tests/test_estimator.cc" "tests/CMakeFiles/supernpu_tests.dir/test_estimator.cc.o" "gcc" "tests/CMakeFiles/supernpu_tests.dir/test_estimator.cc.o.d"
  "/root/repo/tests/test_explorer.cc" "tests/CMakeFiles/supernpu_tests.dir/test_explorer.cc.o" "gcc" "tests/CMakeFiles/supernpu_tests.dir/test_explorer.cc.o.d"
  "/root/repo/tests/test_functional.cc" "tests/CMakeFiles/supernpu_tests.dir/test_functional.cc.o" "gcc" "tests/CMakeFiles/supernpu_tests.dir/test_functional.cc.o.d"
  "/root/repo/tests/test_inference.cc" "tests/CMakeFiles/supernpu_tests.dir/test_inference.cc.o" "gcc" "tests/CMakeFiles/supernpu_tests.dir/test_inference.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/supernpu_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/supernpu_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_jsim.cc" "tests/CMakeFiles/supernpu_tests.dir/test_jsim.cc.o" "gcc" "tests/CMakeFiles/supernpu_tests.dir/test_jsim.cc.o.d"
  "/root/repo/tests/test_npusim.cc" "tests/CMakeFiles/supernpu_tests.dir/test_npusim.cc.o" "gcc" "tests/CMakeFiles/supernpu_tests.dir/test_npusim.cc.o.d"
  "/root/repo/tests/test_parser.cc" "tests/CMakeFiles/supernpu_tests.dir/test_parser.cc.o" "gcc" "tests/CMakeFiles/supernpu_tests.dir/test_parser.cc.o.d"
  "/root/repo/tests/test_power.cc" "tests/CMakeFiles/supernpu_tests.dir/test_power.cc.o" "gcc" "tests/CMakeFiles/supernpu_tests.dir/test_power.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/supernpu_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/supernpu_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_regression.cc" "tests/CMakeFiles/supernpu_tests.dir/test_regression.cc.o" "gcc" "tests/CMakeFiles/supernpu_tests.dir/test_regression.cc.o.d"
  "/root/repo/tests/test_scalesim.cc" "tests/CMakeFiles/supernpu_tests.dir/test_scalesim.cc.o" "gcc" "tests/CMakeFiles/supernpu_tests.dir/test_scalesim.cc.o.d"
  "/root/repo/tests/test_sfq.cc" "tests/CMakeFiles/supernpu_tests.dir/test_sfq.cc.o" "gcc" "tests/CMakeFiles/supernpu_tests.dir/test_sfq.cc.o.d"
  "/root/repo/tests/test_srbuffer.cc" "tests/CMakeFiles/supernpu_tests.dir/test_srbuffer.cc.o" "gcc" "tests/CMakeFiles/supernpu_tests.dir/test_srbuffer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/npusim/CMakeFiles/supernpu_explorer.dir/DependInfo.cmake"
  "/root/repo/build/src/npusim/CMakeFiles/supernpu_npusim.dir/DependInfo.cmake"
  "/root/repo/build/src/scalesim/CMakeFiles/supernpu_scalesim.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/supernpu_power.dir/DependInfo.cmake"
  "/root/repo/build/src/functional/CMakeFiles/supernpu_functional.dir/DependInfo.cmake"
  "/root/repo/build/src/estimator/CMakeFiles/supernpu_estimator.dir/DependInfo.cmake"
  "/root/repo/build/src/dnn/CMakeFiles/supernpu_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/sfq/CMakeFiles/supernpu_sfq.dir/DependInfo.cmake"
  "/root/repo/build/src/jsim/CMakeFiles/supernpu_jsim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/supernpu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
