file(REMOVE_RECURSE
  "CMakeFiles/supernpu_common.dir/logging.cc.o"
  "CMakeFiles/supernpu_common.dir/logging.cc.o.d"
  "CMakeFiles/supernpu_common.dir/rng.cc.o"
  "CMakeFiles/supernpu_common.dir/rng.cc.o.d"
  "CMakeFiles/supernpu_common.dir/stats.cc.o"
  "CMakeFiles/supernpu_common.dir/stats.cc.o.d"
  "CMakeFiles/supernpu_common.dir/table.cc.o"
  "CMakeFiles/supernpu_common.dir/table.cc.o.d"
  "CMakeFiles/supernpu_common.dir/units.cc.o"
  "CMakeFiles/supernpu_common.dir/units.cc.o.d"
  "libsupernpu_common.a"
  "libsupernpu_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supernpu_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
