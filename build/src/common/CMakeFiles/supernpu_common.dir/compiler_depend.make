# Empty compiler generated dependencies file for supernpu_common.
# This may be replaced when dependencies are built.
