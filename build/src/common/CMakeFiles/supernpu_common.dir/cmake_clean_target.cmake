file(REMOVE_RECURSE
  "libsupernpu_common.a"
)
