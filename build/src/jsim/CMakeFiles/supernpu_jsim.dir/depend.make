# Empty dependencies file for supernpu_jsim.
# This may be replaced when dependencies are built.
