
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jsim/cells.cc" "src/jsim/CMakeFiles/supernpu_jsim.dir/cells.cc.o" "gcc" "src/jsim/CMakeFiles/supernpu_jsim.dir/cells.cc.o.d"
  "/root/repo/src/jsim/circuit.cc" "src/jsim/CMakeFiles/supernpu_jsim.dir/circuit.cc.o" "gcc" "src/jsim/CMakeFiles/supernpu_jsim.dir/circuit.cc.o.d"
  "/root/repo/src/jsim/experiments.cc" "src/jsim/CMakeFiles/supernpu_jsim.dir/experiments.cc.o" "gcc" "src/jsim/CMakeFiles/supernpu_jsim.dir/experiments.cc.o.d"
  "/root/repo/src/jsim/linalg.cc" "src/jsim/CMakeFiles/supernpu_jsim.dir/linalg.cc.o" "gcc" "src/jsim/CMakeFiles/supernpu_jsim.dir/linalg.cc.o.d"
  "/root/repo/src/jsim/simulator.cc" "src/jsim/CMakeFiles/supernpu_jsim.dir/simulator.cc.o" "gcc" "src/jsim/CMakeFiles/supernpu_jsim.dir/simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/supernpu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
