file(REMOVE_RECURSE
  "libsupernpu_jsim.a"
)
