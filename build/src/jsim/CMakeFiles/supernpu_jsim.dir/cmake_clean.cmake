file(REMOVE_RECURSE
  "CMakeFiles/supernpu_jsim.dir/cells.cc.o"
  "CMakeFiles/supernpu_jsim.dir/cells.cc.o.d"
  "CMakeFiles/supernpu_jsim.dir/circuit.cc.o"
  "CMakeFiles/supernpu_jsim.dir/circuit.cc.o.d"
  "CMakeFiles/supernpu_jsim.dir/experiments.cc.o"
  "CMakeFiles/supernpu_jsim.dir/experiments.cc.o.d"
  "CMakeFiles/supernpu_jsim.dir/linalg.cc.o"
  "CMakeFiles/supernpu_jsim.dir/linalg.cc.o.d"
  "CMakeFiles/supernpu_jsim.dir/simulator.cc.o"
  "CMakeFiles/supernpu_jsim.dir/simulator.cc.o.d"
  "libsupernpu_jsim.a"
  "libsupernpu_jsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supernpu_jsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
