file(REMOVE_RECURSE
  "CMakeFiles/supernpu_npusim.dir/batch.cc.o"
  "CMakeFiles/supernpu_npusim.dir/batch.cc.o.d"
  "CMakeFiles/supernpu_npusim.dir/mapping.cc.o"
  "CMakeFiles/supernpu_npusim.dir/mapping.cc.o.d"
  "CMakeFiles/supernpu_npusim.dir/result.cc.o"
  "CMakeFiles/supernpu_npusim.dir/result.cc.o.d"
  "CMakeFiles/supernpu_npusim.dir/sim.cc.o"
  "CMakeFiles/supernpu_npusim.dir/sim.cc.o.d"
  "CMakeFiles/supernpu_npusim.dir/trace.cc.o"
  "CMakeFiles/supernpu_npusim.dir/trace.cc.o.d"
  "libsupernpu_npusim.a"
  "libsupernpu_npusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supernpu_npusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
