file(REMOVE_RECURSE
  "libsupernpu_npusim.a"
)
