# Empty dependencies file for supernpu_npusim.
# This may be replaced when dependencies are built.
