
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/npusim/batch.cc" "src/npusim/CMakeFiles/supernpu_npusim.dir/batch.cc.o" "gcc" "src/npusim/CMakeFiles/supernpu_npusim.dir/batch.cc.o.d"
  "/root/repo/src/npusim/mapping.cc" "src/npusim/CMakeFiles/supernpu_npusim.dir/mapping.cc.o" "gcc" "src/npusim/CMakeFiles/supernpu_npusim.dir/mapping.cc.o.d"
  "/root/repo/src/npusim/result.cc" "src/npusim/CMakeFiles/supernpu_npusim.dir/result.cc.o" "gcc" "src/npusim/CMakeFiles/supernpu_npusim.dir/result.cc.o.d"
  "/root/repo/src/npusim/sim.cc" "src/npusim/CMakeFiles/supernpu_npusim.dir/sim.cc.o" "gcc" "src/npusim/CMakeFiles/supernpu_npusim.dir/sim.cc.o.d"
  "/root/repo/src/npusim/trace.cc" "src/npusim/CMakeFiles/supernpu_npusim.dir/trace.cc.o" "gcc" "src/npusim/CMakeFiles/supernpu_npusim.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/estimator/CMakeFiles/supernpu_estimator.dir/DependInfo.cmake"
  "/root/repo/build/src/dnn/CMakeFiles/supernpu_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/supernpu_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sfq/CMakeFiles/supernpu_sfq.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
