file(REMOVE_RECURSE
  "CMakeFiles/supernpu_explorer.dir/explorer.cc.o"
  "CMakeFiles/supernpu_explorer.dir/explorer.cc.o.d"
  "libsupernpu_explorer.a"
  "libsupernpu_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supernpu_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
