# Empty dependencies file for supernpu_explorer.
# This may be replaced when dependencies are built.
