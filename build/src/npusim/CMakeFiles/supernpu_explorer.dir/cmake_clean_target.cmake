file(REMOVE_RECURSE
  "libsupernpu_explorer.a"
)
