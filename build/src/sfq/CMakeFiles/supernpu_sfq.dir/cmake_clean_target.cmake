file(REMOVE_RECURSE
  "libsupernpu_sfq.a"
)
