file(REMOVE_RECURSE
  "CMakeFiles/supernpu_sfq.dir/cells.cc.o"
  "CMakeFiles/supernpu_sfq.dir/cells.cc.o.d"
  "CMakeFiles/supernpu_sfq.dir/clock_tree.cc.o"
  "CMakeFiles/supernpu_sfq.dir/clock_tree.cc.o.d"
  "CMakeFiles/supernpu_sfq.dir/clocking.cc.o"
  "CMakeFiles/supernpu_sfq.dir/clocking.cc.o.d"
  "CMakeFiles/supernpu_sfq.dir/device.cc.o"
  "CMakeFiles/supernpu_sfq.dir/device.cc.o.d"
  "CMakeFiles/supernpu_sfq.dir/ptl.cc.o"
  "CMakeFiles/supernpu_sfq.dir/ptl.cc.o.d"
  "libsupernpu_sfq.a"
  "libsupernpu_sfq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supernpu_sfq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
