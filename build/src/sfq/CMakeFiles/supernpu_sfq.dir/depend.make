# Empty dependencies file for supernpu_sfq.
# This may be replaced when dependencies are built.
