
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sfq/cells.cc" "src/sfq/CMakeFiles/supernpu_sfq.dir/cells.cc.o" "gcc" "src/sfq/CMakeFiles/supernpu_sfq.dir/cells.cc.o.d"
  "/root/repo/src/sfq/clock_tree.cc" "src/sfq/CMakeFiles/supernpu_sfq.dir/clock_tree.cc.o" "gcc" "src/sfq/CMakeFiles/supernpu_sfq.dir/clock_tree.cc.o.d"
  "/root/repo/src/sfq/clocking.cc" "src/sfq/CMakeFiles/supernpu_sfq.dir/clocking.cc.o" "gcc" "src/sfq/CMakeFiles/supernpu_sfq.dir/clocking.cc.o.d"
  "/root/repo/src/sfq/device.cc" "src/sfq/CMakeFiles/supernpu_sfq.dir/device.cc.o" "gcc" "src/sfq/CMakeFiles/supernpu_sfq.dir/device.cc.o.d"
  "/root/repo/src/sfq/ptl.cc" "src/sfq/CMakeFiles/supernpu_sfq.dir/ptl.cc.o" "gcc" "src/sfq/CMakeFiles/supernpu_sfq.dir/ptl.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/supernpu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
