
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/estimator/buffer_model.cc" "src/estimator/CMakeFiles/supernpu_estimator.dir/buffer_model.cc.o" "gcc" "src/estimator/CMakeFiles/supernpu_estimator.dir/buffer_model.cc.o.d"
  "/root/repo/src/estimator/dau_model.cc" "src/estimator/CMakeFiles/supernpu_estimator.dir/dau_model.cc.o" "gcc" "src/estimator/CMakeFiles/supernpu_estimator.dir/dau_model.cc.o.d"
  "/root/repo/src/estimator/design_rules.cc" "src/estimator/CMakeFiles/supernpu_estimator.dir/design_rules.cc.o" "gcc" "src/estimator/CMakeFiles/supernpu_estimator.dir/design_rules.cc.o.d"
  "/root/repo/src/estimator/io_model.cc" "src/estimator/CMakeFiles/supernpu_estimator.dir/io_model.cc.o" "gcc" "src/estimator/CMakeFiles/supernpu_estimator.dir/io_model.cc.o.d"
  "/root/repo/src/estimator/network_model.cc" "src/estimator/CMakeFiles/supernpu_estimator.dir/network_model.cc.o" "gcc" "src/estimator/CMakeFiles/supernpu_estimator.dir/network_model.cc.o.d"
  "/root/repo/src/estimator/npu_config.cc" "src/estimator/CMakeFiles/supernpu_estimator.dir/npu_config.cc.o" "gcc" "src/estimator/CMakeFiles/supernpu_estimator.dir/npu_config.cc.o.d"
  "/root/repo/src/estimator/npu_estimator.cc" "src/estimator/CMakeFiles/supernpu_estimator.dir/npu_estimator.cc.o" "gcc" "src/estimator/CMakeFiles/supernpu_estimator.dir/npu_estimator.cc.o.d"
  "/root/repo/src/estimator/offchip_memory.cc" "src/estimator/CMakeFiles/supernpu_estimator.dir/offchip_memory.cc.o" "gcc" "src/estimator/CMakeFiles/supernpu_estimator.dir/offchip_memory.cc.o.d"
  "/root/repo/src/estimator/pe_model.cc" "src/estimator/CMakeFiles/supernpu_estimator.dir/pe_model.cc.o" "gcc" "src/estimator/CMakeFiles/supernpu_estimator.dir/pe_model.cc.o.d"
  "/root/repo/src/estimator/validation.cc" "src/estimator/CMakeFiles/supernpu_estimator.dir/validation.cc.o" "gcc" "src/estimator/CMakeFiles/supernpu_estimator.dir/validation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sfq/CMakeFiles/supernpu_sfq.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/supernpu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
