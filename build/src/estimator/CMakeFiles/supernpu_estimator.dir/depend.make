# Empty dependencies file for supernpu_estimator.
# This may be replaced when dependencies are built.
