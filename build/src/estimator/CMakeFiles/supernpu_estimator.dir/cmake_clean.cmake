file(REMOVE_RECURSE
  "CMakeFiles/supernpu_estimator.dir/buffer_model.cc.o"
  "CMakeFiles/supernpu_estimator.dir/buffer_model.cc.o.d"
  "CMakeFiles/supernpu_estimator.dir/dau_model.cc.o"
  "CMakeFiles/supernpu_estimator.dir/dau_model.cc.o.d"
  "CMakeFiles/supernpu_estimator.dir/design_rules.cc.o"
  "CMakeFiles/supernpu_estimator.dir/design_rules.cc.o.d"
  "CMakeFiles/supernpu_estimator.dir/io_model.cc.o"
  "CMakeFiles/supernpu_estimator.dir/io_model.cc.o.d"
  "CMakeFiles/supernpu_estimator.dir/network_model.cc.o"
  "CMakeFiles/supernpu_estimator.dir/network_model.cc.o.d"
  "CMakeFiles/supernpu_estimator.dir/npu_config.cc.o"
  "CMakeFiles/supernpu_estimator.dir/npu_config.cc.o.d"
  "CMakeFiles/supernpu_estimator.dir/npu_estimator.cc.o"
  "CMakeFiles/supernpu_estimator.dir/npu_estimator.cc.o.d"
  "CMakeFiles/supernpu_estimator.dir/offchip_memory.cc.o"
  "CMakeFiles/supernpu_estimator.dir/offchip_memory.cc.o.d"
  "CMakeFiles/supernpu_estimator.dir/pe_model.cc.o"
  "CMakeFiles/supernpu_estimator.dir/pe_model.cc.o.d"
  "CMakeFiles/supernpu_estimator.dir/validation.cc.o"
  "CMakeFiles/supernpu_estimator.dir/validation.cc.o.d"
  "libsupernpu_estimator.a"
  "libsupernpu_estimator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supernpu_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
