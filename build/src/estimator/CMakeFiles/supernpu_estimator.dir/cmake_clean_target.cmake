file(REMOVE_RECURSE
  "libsupernpu_estimator.a"
)
