file(REMOVE_RECURSE
  "libsupernpu_functional.a"
)
