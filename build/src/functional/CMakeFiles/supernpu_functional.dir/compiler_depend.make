# Empty compiler generated dependencies file for supernpu_functional.
# This may be replaced when dependencies are built.
