file(REMOVE_RECURSE
  "CMakeFiles/supernpu_functional.dir/dau.cc.o"
  "CMakeFiles/supernpu_functional.dir/dau.cc.o.d"
  "CMakeFiles/supernpu_functional.dir/golden.cc.o"
  "CMakeFiles/supernpu_functional.dir/golden.cc.o.d"
  "CMakeFiles/supernpu_functional.dir/inference.cc.o"
  "CMakeFiles/supernpu_functional.dir/inference.cc.o.d"
  "CMakeFiles/supernpu_functional.dir/npu.cc.o"
  "CMakeFiles/supernpu_functional.dir/npu.cc.o.d"
  "CMakeFiles/supernpu_functional.dir/srbuffer.cc.o"
  "CMakeFiles/supernpu_functional.dir/srbuffer.cc.o.d"
  "CMakeFiles/supernpu_functional.dir/systolic.cc.o"
  "CMakeFiles/supernpu_functional.dir/systolic.cc.o.d"
  "libsupernpu_functional.a"
  "libsupernpu_functional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supernpu_functional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
