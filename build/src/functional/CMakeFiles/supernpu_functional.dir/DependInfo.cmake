
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/functional/dau.cc" "src/functional/CMakeFiles/supernpu_functional.dir/dau.cc.o" "gcc" "src/functional/CMakeFiles/supernpu_functional.dir/dau.cc.o.d"
  "/root/repo/src/functional/golden.cc" "src/functional/CMakeFiles/supernpu_functional.dir/golden.cc.o" "gcc" "src/functional/CMakeFiles/supernpu_functional.dir/golden.cc.o.d"
  "/root/repo/src/functional/inference.cc" "src/functional/CMakeFiles/supernpu_functional.dir/inference.cc.o" "gcc" "src/functional/CMakeFiles/supernpu_functional.dir/inference.cc.o.d"
  "/root/repo/src/functional/npu.cc" "src/functional/CMakeFiles/supernpu_functional.dir/npu.cc.o" "gcc" "src/functional/CMakeFiles/supernpu_functional.dir/npu.cc.o.d"
  "/root/repo/src/functional/srbuffer.cc" "src/functional/CMakeFiles/supernpu_functional.dir/srbuffer.cc.o" "gcc" "src/functional/CMakeFiles/supernpu_functional.dir/srbuffer.cc.o.d"
  "/root/repo/src/functional/systolic.cc" "src/functional/CMakeFiles/supernpu_functional.dir/systolic.cc.o" "gcc" "src/functional/CMakeFiles/supernpu_functional.dir/systolic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dnn/CMakeFiles/supernpu_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/supernpu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
