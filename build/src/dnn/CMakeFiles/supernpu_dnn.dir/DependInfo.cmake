
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dnn/analysis.cc" "src/dnn/CMakeFiles/supernpu_dnn.dir/analysis.cc.o" "gcc" "src/dnn/CMakeFiles/supernpu_dnn.dir/analysis.cc.o.d"
  "/root/repo/src/dnn/layer.cc" "src/dnn/CMakeFiles/supernpu_dnn.dir/layer.cc.o" "gcc" "src/dnn/CMakeFiles/supernpu_dnn.dir/layer.cc.o.d"
  "/root/repo/src/dnn/networks.cc" "src/dnn/CMakeFiles/supernpu_dnn.dir/networks.cc.o" "gcc" "src/dnn/CMakeFiles/supernpu_dnn.dir/networks.cc.o.d"
  "/root/repo/src/dnn/parser.cc" "src/dnn/CMakeFiles/supernpu_dnn.dir/parser.cc.o" "gcc" "src/dnn/CMakeFiles/supernpu_dnn.dir/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/supernpu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
