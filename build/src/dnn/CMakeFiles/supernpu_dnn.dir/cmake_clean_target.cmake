file(REMOVE_RECURSE
  "libsupernpu_dnn.a"
)
