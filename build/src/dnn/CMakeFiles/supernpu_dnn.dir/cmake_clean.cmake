file(REMOVE_RECURSE
  "CMakeFiles/supernpu_dnn.dir/analysis.cc.o"
  "CMakeFiles/supernpu_dnn.dir/analysis.cc.o.d"
  "CMakeFiles/supernpu_dnn.dir/layer.cc.o"
  "CMakeFiles/supernpu_dnn.dir/layer.cc.o.d"
  "CMakeFiles/supernpu_dnn.dir/networks.cc.o"
  "CMakeFiles/supernpu_dnn.dir/networks.cc.o.d"
  "CMakeFiles/supernpu_dnn.dir/parser.cc.o"
  "CMakeFiles/supernpu_dnn.dir/parser.cc.o.d"
  "libsupernpu_dnn.a"
  "libsupernpu_dnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supernpu_dnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
