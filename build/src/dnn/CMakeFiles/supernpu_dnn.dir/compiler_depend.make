# Empty compiler generated dependencies file for supernpu_dnn.
# This may be replaced when dependencies are built.
