file(REMOVE_RECURSE
  "CMakeFiles/supernpu_power.dir/power.cc.o"
  "CMakeFiles/supernpu_power.dir/power.cc.o.d"
  "libsupernpu_power.a"
  "libsupernpu_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supernpu_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
