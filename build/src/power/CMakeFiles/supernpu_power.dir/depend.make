# Empty dependencies file for supernpu_power.
# This may be replaced when dependencies are built.
