file(REMOVE_RECURSE
  "libsupernpu_power.a"
)
