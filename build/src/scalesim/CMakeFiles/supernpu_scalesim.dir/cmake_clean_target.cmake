file(REMOVE_RECURSE
  "libsupernpu_scalesim.a"
)
