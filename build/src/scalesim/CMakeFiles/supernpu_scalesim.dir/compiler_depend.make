# Empty compiler generated dependencies file for supernpu_scalesim.
# This may be replaced when dependencies are built.
