file(REMOVE_RECURSE
  "CMakeFiles/supernpu_scalesim.dir/tpu.cc.o"
  "CMakeFiles/supernpu_scalesim.dir/tpu.cc.o.d"
  "libsupernpu_scalesim.a"
  "libsupernpu_scalesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supernpu_scalesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
