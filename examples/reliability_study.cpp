/**
 * @file
 * Reliability study: what SFQ hardware faults cost a ResNet-50
 * serving fleet, and what each recovery policy buys back.
 *
 * The study chains the three reliability layers end to end. First
 * the cycle-level injector prices a permanent flux trap by remapping
 * the degraded PE array and re-simulating — that measured slowdown,
 * not a guessed constant, becomes the trap derate the serving
 * simulator applies. Then one seeded fault schedule (pulse drops,
 * flux traps, clock skew, link glitches) is generated and replayed
 * identically against four recovery policies, so every difference in
 * the table is the policy, not the luck of the draw.
 */

#include <algorithm>
#include <cstdio>

#include "common/table.hh"
#include "dnn/networks.hh"
#include "estimator/npu_estimator.hh"
#include "npusim/batch.hh"
#include "reliability/fault_model.hh"
#include "reliability/injector.hh"
#include "serving/simulator.hh"

using namespace supernpu;

int
main()
{
    const dnn::Network net = dnn::makeResNet50();

    sfq::DeviceConfig device;
    device.technology = sfq::Technology::ERSFQ;
    sfq::CellLibrary library(device);
    estimator::NpuEstimator estimator(library);
    const estimator::NpuConfig config =
        estimator::NpuConfig::superNpu();
    const auto estimate = estimator.estimate(config);
    const int max_batch = npusim::maxBatch(config, estimate, net);
    serving::BatchServiceModel service(estimate, net);

    // Price a flux trap with the cycle simulator: disable one PE
    // column, remap, and measure the slowdown.
    reliability::FaultInjector injector(estimate);
    reliability::FaultScheduleConfig trap_cfg;
    reliability::FaultEvent trap;
    trap.kind = reliability::FaultKind::FluxTrap;
    trap.trapTarget = reliability::FluxTrapTarget::PeColumn;
    trap.magnitude = trap_cfg.fluxTrapDerate;
    const double trap_derate = injector.serviceDerate(
        net, max_batch,
        reliability::FaultSchedule::fromEvents(trap_cfg, {trap}), 0);
    std::printf("one trapped PE column costs %.3fx the pristine"
                " service time (remapped and re-simulated)\n\n",
                trap_derate);

    // A 4-chip fleet at 60% of aggregate capacity, with fault rates
    // set per run makespan so expected counts are meaningful.
    const int chips = 4;
    const std::uint64_t requests = 30000;
    const double rps =
        0.6 * chips * service.peakRps(max_batch);
    const double makespan = (double)requests / rps;

    reliability::FaultScheduleConfig fault_cfg;
    fault_cfg.chips = chips;
    fault_cfg.horizonSec = makespan;
    fault_cfg.fluxTrapDerate = std::max(1.0, trap_derate);
    fault_cfg.pulseDropRatePerSec = 40.0 / makespan;
    fault_cfg.fluxTrapRatePerSec = 0.5 / makespan;
    fault_cfg.clockSkewRatePerSec = 8.0 / makespan;
    fault_cfg.linkGlitchRatePerSec = 20.0 / makespan;
    const reliability::FaultSchedule schedule =
        reliability::FaultSchedule::generate(fault_cfg);
    std::printf("replaying %zu faults over %.3f s against each"
                " policy\n\n",
                schedule.size(), makespan);

    struct PolicyCase
    {
        const char *label;
        serving::RecoveryPolicy recovery;
        bool checkpoint;
    };
    const PolicyCase policies[] = {
        {"none", serving::RecoveryPolicy::None, false},
        {"retry", serving::RecoveryPolicy::RetryBackoff, false},
        {"retry+ckpt", serving::RecoveryPolicy::RetryBackoff, true},
        {"degraded", serving::RecoveryPolicy::DegradedDispatch, false},
    };

    TextTable table("ResNet-50 x4 chips under one fault schedule");
    table.row()
        .cell("policy")
        .cell("killed")
        .cell("retries")
        .cell("restarts")
        .cell("redisp")
        .cell("failed")
        .cell("avail %")
        .cell("goodput r/s")
        .cell("p99 ms");
    double none_goodput = 0.0, best_goodput = 0.0;
    for (const PolicyCase &policy : policies) {
        serving::ServingConfig serve;
        serve.arrival.ratePerSec = rps;
        serve.chips = chips;
        serve.requests = requests;
        serve.batching.maxBatch = max_batch;
        serve.faults = schedule;
        serve.resilience.recovery = policy.recovery;
        serve.resilience.checkpointRestart = policy.checkpoint;
        const serving::ServingReport report =
            serving::ServingSimulator(service, serve).run();
        table.row()
            .cell(policy.label)
            .cell((unsigned long long)report.batchesKilled)
            .cell((unsigned long long)report.retriesTotal)
            .cell((unsigned long long)report.restarts)
            .cell((unsigned long long)report.redispatches)
            .cell((unsigned long long)report.failedRequests)
            .cell(report.availability * 100.0, 2)
            .cell(report.goodputRps, 0)
            .cell(report.latencyP99 * 1e3, 3);
        if (policy.recovery == serving::RecoveryPolicy::None)
            none_goodput = report.goodputRps;
        best_goodput = std::max(best_goodput, report.goodputRps);
    }
    table.print();

    std::printf("\ntakeaway: the same faults cost %.0f req/s of"
                " goodput with no recovery but only %.0f with the"
                " best policy — detection plus retry or checkpointing"
                " turns shipped-garbage batches into a bounded"
                " latency-tail cost, and availability prices the"
                " capacity each policy writes off.\n",
                rps - none_goodput, rps - best_goodput);
    return 0;
}
