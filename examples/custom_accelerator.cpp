/**
 * @file
 * Custom accelerator walkthrough: bring your own network and your
 * own NPU geometry.
 *
 *  1. Describe a custom CNN with the dnn layer builders.
 *  2. Define a custom SFQ NPU configuration (a compact edge-class
 *     32 x 128 design) and estimate it.
 *  3. Solve the batch, simulate, and compare with the paper's
 *     SuperNPU on the same workload.
 *  4. Functionally verify the dataflow: run a scaled-down layer of
 *     the same shape through the cycle-accurate systolic array +
 *     DAU model and check it against the golden convolution.
 */

#include <cstdio>

#include "common/units.hh"
#include "dnn/layer.hh"
#include "estimator/npu_estimator.hh"
#include "functional/npu.hh"
#include "npusim/batch.hh"
#include "npusim/sim.hh"

using namespace supernpu;

int
main()
{
    // 1. A small VGG-flavoured classifier for 64 x 64 inputs.
    dnn::Network net;
    net.name = "TinyVGG-64";
    net.layers = {
        dnn::conv("conv1", 3, 64, 32, 3),
        dnn::conv("conv2", 32, 32, 64, 3),   // after 2x2 pool
        dnn::conv("conv3", 64, 16, 128, 3),  // after pool
        dnn::conv("conv4", 128, 8, 128, 3),  // after pool
        dnn::fullyConnected("fc1", 128 * 4 * 4, 256),
        dnn::fullyConnected("fc2", 256, 10),
    };
    net.check();
    std::printf("%s: %zu layers, %.1f MMAC/inference\n",
                net.name.c_str(), net.layers.size(),
                (double)net.totalMacs() / 1e6);

    // 2. A compact edge-class SFQ NPU.
    estimator::NpuConfig edge;
    edge.name = "EdgeNPU-32x128";
    edge.peWidth = 32;
    edge.peHeight = 128;
    edge.integratedOutputBuffer = true;
    edge.ifmapBufferBytes = 2 * units::MiB;
    edge.outputBufferBytes = 2 * units::MiB;
    edge.ifmapDivision = 32;
    edge.outputDivision = 64;
    edge.regsPerPe = 4;
    edge.weightBufferBytes = 16 * units::kiB;
    edge.check();

    sfq::DeviceConfig device;
    device.technology = sfq::Technology::ERSFQ;
    sfq::CellLibrary library(device);
    estimator::NpuEstimator npu_estimator(library);
    const auto edge_est = npu_estimator.estimate(edge);
    std::printf("\n%s: %.1f GHz, %.1f TMAC/s peak, %.1f mm2 @28nm\n",
                edge.name.c_str(), edge_est.frequencyGhz,
                edge_est.peakMacPerSec / 1e12,
                edge_est.areaMm2At(28.0));

    // 3. Simulate on both designs.
    for (const auto *label : {"edge", "SuperNPU"}) {
        const bool is_edge = label[0] == 'e';
        const auto config =
            is_edge ? edge : estimator::NpuConfig::superNpu();
        const auto est =
            is_edge ? edge_est : npu_estimator.estimate(config);
        npusim::NpuSimulator sim(est);
        const int batch = npusim::maxBatch(config, est, net);
        const auto run = sim.run(net, batch);
        std::printf("  %-9s batch %2d: %7.2f TMAC/s, %5.1f us/batch,"
                    " %4.1f%% PE util\n",
                    label, batch, run.effectiveMacPerSec() / 1e12,
                    run.seconds() * 1e6,
                    100.0 * run.peUtilization(config.peCount()));
    }

    // 4. Functional verification of the dataflow on a small conv3-
    //    shaped layer (16 channels of it) with a 32 x 8 array.
    Rng rng(2026);
    functional::Tensor3 ifmap(16, 16, 16);
    ifmap.fillRandom(rng);
    const auto filters = functional::FilterBank::random(8, 16, 3, 3, rng);
    const functional::ConvSpec spec{1, 1};
    functional::FunctionalNpu tiny(32, 8);
    const auto run = tiny.conv(ifmap, filters, spec);
    const auto golden = functional::convReference(ifmap, filters, spec);
    std::printf("\nfunctional check (conv3-shaped layer on a 32x8"
                " array): %s — %llu weight mappings, %llu array"
                " cycles\n",
                run.ofmap == golden ? "exact match vs golden conv"
                                    : "MISMATCH",
                (unsigned long long)run.weightMappings,
                (unsigned long long)run.arrayCycles);
    return run.ofmap == golden ? 0 : 1;
}
