/**
 * @file
 * Layer profiler: the paper's Fig. 14 trace analyzers exposed as a
 * tool. Runs one workload on one configuration and prints, per
 * layer, the cycle breakdown by category (compute, weight loads,
 * fills, rewinds, psum moves, flushes, hand-offs, memory stalls) and
 * the utilization — the view used to find the Section V bottlenecks.
 *
 * Usage: layer_profiler [workload] [config]
 *   workload: alexnet|fasterrcnn|googlenet|mobilenet|resnet50|vgg16
 *             (default resnet50)
 *   config:   baseline|bufferopt|resourceopt|supernpu
 *             (default supernpu)
 */

#include <cctype>
#include <cstdio>
#include <cstring>

#include "common/logging.hh"
#include "common/table.hh"
#include "dnn/networks.hh"
#include "estimator/npu_estimator.hh"
#include "npusim/batch.hh"
#include "npusim/sim.hh"

using namespace supernpu;

namespace {

dnn::Network
pickWorkload(const char *name)
{
    for (const auto &net : dnn::evaluationWorkloads()) {
        std::string lowered;
        for (char c : net.name)
            lowered += (char)std::tolower((unsigned char)c);
        if (lowered == name)
            return net;
    }
    fatal("unknown workload '", name,
          "' (try alexnet, fasterrcnn, googlenet, mobilenet, "
          "resnet50, vgg16)");
}

estimator::NpuConfig
pickConfig(const char *name)
{
    if (!std::strcmp(name, "baseline"))
        return estimator::NpuConfig::baseline();
    if (!std::strcmp(name, "bufferopt"))
        return estimator::NpuConfig::bufferOpt();
    if (!std::strcmp(name, "resourceopt"))
        return estimator::NpuConfig::resourceOpt();
    if (!std::strcmp(name, "supernpu"))
        return estimator::NpuConfig::superNpu();
    fatal("unknown config '", name,
          "' (try baseline, bufferopt, resourceopt, supernpu)");
}

} // namespace

int
main(int argc, char **argv)
{
    const dnn::Network net =
        pickWorkload(argc > 1 ? argv[1] : "resnet50");
    const estimator::NpuConfig config =
        pickConfig(argc > 2 ? argv[2] : "supernpu");

    sfq::DeviceConfig device;
    sfq::CellLibrary library(device);
    estimator::NpuEstimator npu_estimator(library);
    const auto estimate = npu_estimator.estimate(config);
    npusim::NpuSimulator sim(estimate);
    const int batch = npusim::maxBatch(config, estimate, net);
    const auto run = sim.run(net, batch);

    std::printf("%s on %s — batch %d, %.1f GHz, %.1f TMAC/s effective"
                " (%.1f%% PE utilization)\n\n",
                net.name.c_str(), config.name.c_str(), batch,
                run.frequencyGhz, run.effectiveMacPerSec() / 1e12,
                100.0 * run.peUtilization(config.peCount()));

    TextTable table("per-layer cycle breakdown (kilocycles)");
    table.row()
        .cell("layer")
        .cell("compute")
        .cell("weights")
        .cell("fill")
        .cell("rewind")
        .cell("psum")
        .cell("flush")
        .cell("handoff")
        .cell("stall")
        .cell("maps")
        .cell("util %");

    auto kc = [](std::uint64_t cycles) { return (double)cycles / 1e3; };
    for (const auto &layer : run.layers) {
        const double util =
            (double)layer.macOps /
            ((double)layer.totalCycles() * config.peCount());
        table.row()
            .cell(layer.layerName)
            .cell(kc(layer.computeCycles), 1)
            .cell(kc(layer.prep.weightLoad), 1)
            .cell(kc(layer.prep.ifmapFill), 1)
            .cell(kc(layer.prep.ifmapRewind), 1)
            .cell(kc(layer.prep.psumMove), 1)
            .cell(kc(layer.prep.outputFlush), 1)
            .cell(kc(layer.prep.outputHandoff), 1)
            .cell(kc(layer.memoryStallCycles), 1)
            .cell((unsigned long long)layer.weightMappings)
            .cell(100.0 * util, 1);
    }
    table.print();

    TextTable totals("totals");
    totals.row().cell("category").cell("kilocycles").cell("share %");
    const double total = (double)run.totalCycles;
    auto add = [&](const char *name, std::uint64_t cycles) {
        totals.row().cell(name).cell(kc(cycles), 1).cell(
            100.0 * (double)cycles / total, 1);
    };
    add("compute", run.computeCycles);
    add("weight load", run.prep.weightLoad);
    add("ifmap fill", run.prep.ifmapFill);
    add("ifmap rewind", run.prep.ifmapRewind);
    add("psum move", run.prep.psumMove);
    add("output flush", run.prep.outputFlush);
    add("output handoff", run.prep.outputHandoff);
    add("memory stall", run.memoryStallCycles);
    std::printf("\n");
    totals.print();
    return 0;
}
