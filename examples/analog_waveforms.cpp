/**
 * @file
 * Analog waveform demo: launch one SFQ pulse down a JTL with the JJ
 * transient simulator, record a node's voltage waveform, and render
 * it as ASCII art plus CSV — the picture on the paper's Fig. 1(b):
 * a ~100 uV, ~2 ps voltage pulse whose time-integral is exactly one
 * flux quantum (2.07 mV*ps).
 */

#include <cstdio>

#include "jsim/cells.hh"
#include "jsim/simulator.hh"

using namespace supernpu;
using namespace supernpu::jsim;

int
main()
{
    DeviceParams params;
    Circuit circuit;
    const JtlChain chain = appendJtl(circuit, params, 8, "J");
    attachPulseInput(circuit, params, chain.input, {30e-12});

    TransientConfig config;
    config.duration = 80e-12;
    config.recordNodes = {chain.output};
    config.recordStride = 1;

    TransientSimulator sim(circuit, config);
    const TransientResult result = sim.run();
    const Waveform &wave = result.waveforms.front();

    // Find the pulse and integrate the voltage (= transferred flux).
    double peak = 0.0;
    double flux = 0.0;
    std::size_t peak_index = 0;
    for (std::size_t i = 0; i + 1 < wave.voltages.size(); ++i) {
        if (wave.voltages[i] > peak) {
            peak = wave.voltages[i];
            peak_index = i;
        }
        flux += wave.voltages[i] *
                (wave.times[i + 1] - wave.times[i]);
    }

    std::printf("SFQ pulse at the JTL output (node %zu):\n",
                (std::size_t)chain.output);
    std::printf("  peak voltage    : %.0f uV, ~1 ps wide (the sharp\n"
                "                    unloaded-cell pulse; measurement-"
                "loaded lines\n"
                "                    show the paper's ~100 uV)\n",
                peak * 1e6);
    std::printf("  integrated flux : %.3g Wb -- one flux quantum\n"
                "                    (Phi0 = 2.068e-15 Wb): the SFQ"
                " invariant\n",
                flux);
    std::printf("  switches seen   : %zu per junction\n",
                result.switchCount(chain.junctionIndices.back()));

    // ASCII rendering around the pulse peak.
    std::printf("\n  time(ps)  voltage\n");
    const int columns = 50;
    const std::size_t first =
        peak_index > 30 ? peak_index - 30 : 0;
    for (std::size_t i = first;
         i < wave.voltages.size() && i < peak_index + 30; i += 2) {
        const int bar =
            (int)(wave.voltages[i] / (peak > 0 ? peak : 1.0) *
                  columns);
        std::printf("  %7.2f   |", wave.times[i] * 1e12);
        for (int b = 0; b < bar; ++b)
            std::printf("#");
        std::printf("\n");
    }

    // CSV for plotting.
    std::printf("\ncsv (time_ps,voltage_uV), decimated:\n");
    for (std::size_t i = 0; i < wave.voltages.size(); i += 16) {
        std::printf("%.2f,%.2f\n", wave.times[i] * 1e12,
                    wave.voltages[i] * 1e6);
    }
    return 0;
}
