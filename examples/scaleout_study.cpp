/**
 * @file
 * Scale-out study: the paper evaluates one SFQ NPU die; a serving
 * deployment would rack several inside one cryostat. This example
 * models data-parallel scale-out — N dies, each running its own
 * image stream, sharing the cryocooler — and reports throughput,
 * power, and perf/W against an equal-power rack of TPUs.
 *
 * The interesting effect: the cryocooler's 400x overhead is paid per
 * watt, so ERSFQ dies (1.9 W each) scale to dozens per cooler before
 * the cold budget of a typical 4 K stage (~2-3 W/cooler per die of
 * headroom in small systems, kilowatt-class in large ones) binds.
 */

#include <cstdio>

#include "common/table.hh"
#include "dnn/networks.hh"
#include "estimator/npu_estimator.hh"
#include "npusim/batch.hh"
#include "npusim/sim.hh"
#include "power/power.hh"
#include "scalesim/tpu.hh"

using namespace supernpu;

int
main()
{
    const dnn::Network net = dnn::makeResNet50();

    sfq::DeviceConfig device;
    device.technology = sfq::Technology::ERSFQ;
    sfq::CellLibrary library(device);
    estimator::NpuEstimator npu_estimator(library);
    const auto config = estimator::NpuConfig::superNpu();
    const auto estimate = npu_estimator.estimate(config);
    npusim::NpuSimulator sim(estimate);

    const int batch = npusim::maxBatch(config, estimate, net);
    const auto run = sim.run(net, batch);
    const auto report = power::analyze(estimate, run);
    const double die_images = (double)batch / run.seconds();
    const double die_power = report.chipW();

    scalesim::TpuConfig tpu_config;
    scalesim::TpuSimulator tpu(tpu_config);
    const int tpu_batch = npusim::maxBatchUnified(
        tpu_config.unifiedBufferBytes, net);
    const double tpu_images =
        (double)tpu_batch / tpu.run(net, tpu_batch).seconds();

    TextTable table("ResNet-50 scale-out: N ERSFQ dies in one cryostat");
    table.row()
        .cell("dies")
        .cell("images/s")
        .cell("chip W")
        .cell("wall W (cooling incl.)")
        .cell("images/s/W")
        .cell("TPUs at equal wall W")
        .cell("TPU images/s");

    for (int dies : {1, 2, 4, 8, 16, 32}) {
        const double images = die_images * dies;
        const double chip = die_power * dies;
        const double wall = chip * (1.0 + power::coolingFactor);
        const double tpus_at_wall = wall / tpu_config.averagePowerW;
        table.row()
            .cell(dies)
            .cell(images, 0)
            .cell(chip, 1)
            .cell(wall, 0)
            .cell(images / wall, 1)
            .cell(tpus_at_wall, 1)
            .cell(tpus_at_wall * tpu_images, 0);
    }
    table.print();

    std::printf("\nper die: %.0f images/s at %.1f W chip; one TPU:"
                " %.0f images/s at %.0f W.\n",
                die_images, die_power, tpu_images,
                tpu_config.averagePowerW);
    std::printf("takeaway: because cooling scales with chip watts, the"
                " ERSFQ rack's images/s/W is flat in N — the paper's"
                " 1.2x cooled perf/W advantage carries to any rack"
                " size, and rises toward 500x wherever cold capacity"
                " is already paid for (the quantum-computing 'free"
                " cooling' scenario).\n");
    return 0;
}
