/**
 * @file
 * Hybrid-parallelism walkthrough: place ResNet50 on a budget of
 * SuperNPU chips and let the planner (src/sharding) pick how many
 * chips go to data parallelism (replicating the batch), tensor
 * parallelism (splitting each layer's filters), and pipeline
 * parallelism (splitting the layer sequence).
 *
 * The three axes pay different tolls. A pipeline cut ships one
 * stage boundary's activations; a tensor shard all-reduces every
 * layer's full ofmap; a data replica all-gathers only the final
 * outputs but cannot shrink single-batch latency below one
 * replica's share. The study evaluates each pure axis at four
 * chips, then lets the planner search every DP x TP x PP
 * factorization of budgets 1..8 under both objectives.
 */

#include <cstdio>

#include "common/table.hh"
#include "dnn/networks.hh"
#include "estimator/npu_estimator.hh"
#include "npusim/batch.hh"
#include "obs/audit.hh"
#include "sharding/planner.hh"

using namespace supernpu;

int
main()
{
    sfq::DeviceConfig device;
    sfq::CellLibrary library(device);
    estimator::NpuEstimator estimator(library);
    const estimator::NpuConfig config =
        estimator::NpuConfig::superNpu();
    const estimator::NpuEstimate estimate =
        estimator.estimate(config);

    const dnn::Network net = dnn::makeResNet50();
    const int batch = npusim::maxBatch(config, estimate, net);
    std::printf("sharding %s (%zu layers) on %s, batch %d\n\n",
                net.name.c_str(), net.layers.size(),
                config.name.c_str(), batch);

    // --- the three pure axes at 4 chips -------------------------
    sharding::HybridPlanner planner(estimate);
    TextTable axes("pure axes at 4 chips");
    axes.row()
        .cell("axis")
        .cell("dp x tp x pp")
        .cell("inf/s")
        .cell("latency us")
        .cell("collective Mcyc");
    const auto axis_row = [&](const char *label, int r, int t, int k) {
        const sharding::ShardPlan plan =
            planner.evaluate(net, r, t, k, batch);
        obs::enforce(obs::auditSharding(plan), "sharding_study");
        std::string factor = std::to_string(plan.dataParallel);
        factor += " x ";
        factor += std::to_string(plan.tensorShards);
        factor += " x ";
        factor += std::to_string(plan.pipelineStages);
        axes.row()
            .cell(label)
            .cell(factor)
            .cell(plan.throughput(), 0)
            .cell(plan.latencySec() * 1e6, 1)
            .cell((double)(plan.tensorCollectiveCycles +
                           plan.gatherCycles) /
                      1e6,
                  2);
    };
    axis_row("data", 4, 1, 1);
    axis_row("tensor", 1, 4, 1);
    axis_row("pipeline", 1, 1, 4);
    axes.print();
    std::printf("\neach axis pays a different toll: data replicas"
                " only gather the final\noutputs but each replica"
                " still runs its whole share; tensor shards\n"
                "all-reduce every layer's full ofmap, which on a"
                " CNN's early layers\nis expensive; pipeline cuts"
                " ship one boundary per stage and win on\nthis"
                " budget.\n\n");

    // --- the planner's search over budgets ----------------------
    TextTable search("planner winners by chip budget");
    search.row()
        .cell("chips")
        .cell("throughput pick")
        .cell("inf/s")
        .cell("latency pick")
        .cell("latency us");
    for (int budget : {1, 2, 4, 8}) {
        const auto fast = planner.plan(
            net, budget, batch, sharding::PlanObjective::Throughput);
        const auto snappy = planner.plan(
            net, budget, batch, sharding::PlanObjective::Latency);
        obs::enforce(obs::auditSharding(fast.best()),
                     "sharding_study");
        obs::enforce(obs::auditSharding(snappy.best()),
                     "sharding_study");
        const auto name = [](const sharding::ShardPlan &plan) {
            std::string out = std::to_string(plan.dataParallel);
            out += "x";
            out += std::to_string(plan.tensorShards);
            out += "x";
            out += std::to_string(plan.pipelineStages);
            return out;
        };
        search.row()
            .cell((long long)budget)
            .cell(name(fast.best()))
            .cell(fast.best().throughput(), 0)
            .cell(name(snappy.best()))
            .cell(snappy.best().latencySec() * 1e6, 1);
    }
    search.print();
    std::printf("\nthe two objectives part ways as the budget grows:"
                " throughput stacks\npipeline stages and then"
                " replicas, while the latency objective avoids\ndeep"
                " pipelines (the first batch pays the whole fill) and"
                " spends chips\non splitting each replica's share"
                " instead.\n");
    return 0;
}
