/**
 * @file
 * End-to-end functional inference demo: a small quantized CNN runs
 * entirely through the cycle-accurate systolic array + DAU model —
 * convolutions, depthwise layers, ReLU, requantization, max-pooling,
 * flattening, classifier — and the result is checked bit-exactly
 * against the golden pipeline. This is the ground-truth machinery
 * behind the performance model: the dataflow it costs is the same
 * dataflow that demonstrably computes correct networks.
 */

#include <cstdio>

#include "dnn/layer.hh"
#include "functional/inference.hh"

using namespace supernpu;
using namespace supernpu::functional;

int
main()
{
    // A MobileNet-flavoured classifier for 32 x 32 inputs.
    dnn::Network net;
    net.name = "DemoNet-32";
    net.layers = {
        dnn::conv("conv1", 3, 32, 16, 3, 2),   // -> 16
        dnn::depthwise("dw2", 16, 16, 1),
        dnn::conv("pw2", 16, 16, 32, 1, 1, 0),
        dnn::depthwise("dw3", 32, 16, 2),      // -> 8
        dnn::conv("pw3", 32, 8, 64, 1, 1, 0),
        dnn::fullyConnected("fc", 64 * 4 * 4, 10), // pool + flatten
    };
    net.check();

    Rng weight_rng(2020);
    const InferencePipeline pipeline = buildPipeline(net, weight_rng);

    std::printf("%s: %zu layers, %.1f MMAC/inference\n",
                net.name.c_str(), pipeline.layers.size(),
                (double)net.totalMacs() / 1e6);
    for (const auto &layer : pipeline.layers) {
        std::printf("  %-6s %s%s shift=%d%s%s\n",
                    layer.shape.name.c_str(),
                    dnn::layerKindName(layer.shape.kind),
                    layer.flattenBefore ? " (flatten)" : "",
                    layer.postShift, layer.relu ? " relu" : "",
                    layer.maxPool2Count ? " pool" : "");
    }

    Rng data_rng(7);
    Tensor3 image(3, 32, 32);
    image.fillRandom(data_rng);

    const Tensor3 golden = runGolden(pipeline, image);
    const PipelineRunStats run = runSystolic(pipeline, image, 64, 16);

    std::printf("\nsystolic run (64x16 array): %llu weight mappings,"
                " %llu array cycles\n",
                (unsigned long long)run.weightMappings,
                (unsigned long long)run.arrayCycles);
    std::printf("golden check: %s\n",
                run.output == golden ? "EXACT MATCH" : "MISMATCH");

    std::printf("\nclass logits: ");
    for (int c = 0; c < golden.channels(); ++c)
        std::printf("%d ", golden.at(c, 0, 0));
    std::printf("\n");
    return run.output == golden ? 0 : 1;
}
