/**
 * @file
 * Serving study: offered load vs p99 latency for the paper's
 * Baseline SFQ NPU and the optimized SuperNPU, each swept against
 * its own full-batch capacity.
 *
 * Two effects stack. First, absolute capacity: SuperNPU's Table II
 * batch (30 for ResNet-50) amortizes preparation so well that its
 * request ceiling is orders of magnitude above the Baseline, whose
 * batch-1 runs are >90% preparation. Second, tail shape: both curves
 * hockey-stick near their own saturation, so the win a serving
 * operator sees is the horizontal gap between the curves — the same
 * ~23x the paper reports for raw throughput, delivered at a bounded
 * p99.
 */

#include <cstdio>

#include "common/table.hh"
#include "dnn/networks.hh"
#include "estimator/npu_estimator.hh"
#include "npusim/batch.hh"
#include "serving/simulator.hh"

using namespace supernpu;

int
main()
{
    const dnn::Network net = dnn::makeResNet50();

    sfq::DeviceConfig device;
    device.technology = sfq::Technology::ERSFQ;
    sfq::CellLibrary library(device);
    estimator::NpuEstimator estimator(library);

    struct Column
    {
        const char *label;
        estimator::NpuConfig config;
    };
    const Column columns[] = {
        {"baseline", estimator::NpuConfig::baseline()},
        {"supernpu", estimator::NpuConfig::superNpu()},
    };

    double capacities[2] = {0, 0};
    TextTable table("ResNet-50 p99 latency (ms) vs offered load"
                    " (Poisson, dynamic batching, 1 die)");
    table.row()
        .cell("load (frac of capacity)")
        .cell("baseline req/s")
        .cell("baseline p99 ms")
        .cell("supernpu req/s")
        .cell("supernpu p99 ms");

    const double fractions[] = {0.2, 0.5, 0.8, 0.95};

    // Sweep each architecture against its own capacity so both
    // saturate inside the same table.
    serving::ServingReport reports[2][4];
    int at = 0;
    for (const Column &column : columns) {
        const auto estimate = estimator.estimate(column.config);
        const int max_batch =
            npusim::maxBatch(column.config, estimate, net);
        serving::BatchServiceModel service(estimate, net);
        capacities[at] = service.peakRps(max_batch);
        int row = 0;
        for (double frac : fractions) {
            serving::ServingConfig config;
            config.arrival.ratePerSec = frac * capacities[at];
            config.batching.maxBatch = max_batch;
            config.batching.timeoutSec = 200e-6;
            config.requests = 8000;
            serving::ServingSimulator sim(service, config);
            reports[at][row++] = sim.run();
        }
        ++at;
    }

    for (int row = 0; row < 4; ++row) {
        table.row()
            .cell(fractions[row], 2)
            .cell(reports[0][row].offeredRps, 0)
            .cell(reports[0][row].latencyP99 * 1e3, 3)
            .cell(reports[1][row].offeredRps, 0)
            .cell(reports[1][row].latencyP99 * 1e3, 3);
    }
    table.print();

    std::printf("\ncapacities: baseline %.0f req/s, supernpu %.0f"
                " req/s (%.0fx)\n",
                capacities[0], capacities[1],
                capacities[1] / capacities[0]);
    std::printf("takeaway: at equal fractions of their own capacity"
                " both architectures hold a bounded p99, but the"
                " SuperNPU serves %.0fx the absolute load — the"
                " paper's batch amortization is what turns an SFQ"
                " die into a serving-class part.\n",
                capacities[1] / capacities[0]);
    return 0;
}
