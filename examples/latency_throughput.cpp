/**
 * @file
 * Latency-vs-throughput study for a server deployment: the paper's
 * batch policy maximizes throughput, but a serving SLA cares about
 * per-image latency. This example sweeps the batch size on the
 * SuperNPU and the TPU comparator, reporting throughput, per-image
 * latency, and the energy per inference — the trade space a
 * deployment engineer actually navigates.
 */

#include <cstdio>

#include "common/table.hh"
#include "dnn/networks.hh"
#include "estimator/npu_estimator.hh"
#include "npusim/batch.hh"
#include "npusim/sim.hh"
#include "power/power.hh"
#include "scalesim/tpu.hh"

using namespace supernpu;

int
main()
{
    const dnn::Network net = dnn::makeResNet50();

    sfq::DeviceConfig device;
    device.technology = sfq::Technology::ERSFQ;
    sfq::CellLibrary library(device);
    estimator::NpuEstimator npu_estimator(library);
    const auto config = estimator::NpuConfig::superNpu();
    const auto estimate = npu_estimator.estimate(config);
    npusim::NpuSimulator sim(estimate);

    scalesim::TpuConfig tpu_config;
    scalesim::TpuSimulator tpu(tpu_config);

    const int max_batch = npusim::maxBatch(config, estimate, net);

    TextTable table("ResNet-50 serving: batch size trade-offs");
    table.row()
        .cell("batch")
        .cell("SuperNPU img/s")
        .cell("us/image")
        .cell("uJ/image (chip)")
        .cell("TPU img/s")
        .cell("TPU us/image");

    const double macs_per_image = (double)net.totalMacs();
    for (int batch : {1, 2, 4, 8, 16, max_batch}) {
        const auto run = sim.run(net, batch);
        const auto report = power::analyze(estimate, run);
        const double images_per_s =
            (double)batch / run.seconds();
        const double uj_per_image =
            report.chipW() * run.seconds() / (double)batch * 1e6;

        const auto tpu_run = tpu.run(net, batch);
        const double tpu_images = (double)batch / tpu_run.seconds();

        table.row()
            .cell(batch)
            .cell(images_per_s, 0)
            .cell(run.seconds() / batch * 1e6, 2)
            .cell(uj_per_image, 2)
            .cell(tpu_images, 0)
            .cell(tpu_run.seconds() / batch * 1e6, 1);
    }
    table.print();

    std::printf("\n(%.1f GMAC/image; SuperNPU peak %.0f TMAC/s;"
                " chip-only energy, cooling excluded)\n",
                macs_per_image / 1e9, estimate.peakMacPerSec / 1e12);
    std::printf("takeaway: the SFQ design reaches its throughput knee"
                " around batch 8-16 and serves images in tens of"
                " microseconds at microjoules per inference — both"
                " orders of magnitude beyond the CMOS comparator.\n");
    return 0;
}
