/**
 * @file
 * Quickstart: the five-minute tour of the SuperNPU library.
 *
 *  1. Pick a device technology and build the SFQ cell library.
 *  2. Estimate an NPU architecture (frequency / power / area).
 *  3. Run a CNN workload through the cycle-level simulator.
 *  4. Turn the activity counters into a power report.
 */

#include <cstdio>

#include "common/table.hh"
#include "common/units.hh"
#include "dnn/networks.hh"
#include "estimator/npu_estimator.hh"
#include "npusim/batch.hh"
#include "npusim/sim.hh"
#include "power/power.hh"

using namespace supernpu;

int
main()
{
    // 1. An ERSFQ library at the AIST 1.0 um process point.
    sfq::DeviceConfig device;
    device.technology = sfq::Technology::ERSFQ;
    sfq::CellLibrary library(device);

    // 2. Estimate the paper's SuperNPU configuration.
    estimator::NpuEstimator npu_estimator(library);
    const auto config = estimator::NpuConfig::superNpu();
    const auto estimate = npu_estimator.estimate(config);

    std::printf("SuperNPU (%s, %.1f um process)\n",
                sfq::technologyName(device.technology),
                device.featureSizeUm);
    std::printf("  clock      : %.1f GHz (limited by %s)\n",
                estimate.frequencyGhz, estimate.limitingUnit.c_str());
    std::printf("  peak       : %.0f TMAC/s\n",
                estimate.peakMacPerSec / 1e12);
    std::printf("  junctions  : %.2f billion\n",
                (double)estimate.jjCount / 1e9);
    std::printf("  area       : %.0f mm2 at 28 nm-equivalent\n",
                estimate.areaMm2At(28.0));

    // 3. Simulate ResNet-50 inference at the largest on-chip batch.
    const dnn::Network resnet = dnn::makeResNet50();
    const int batch = npusim::maxBatch(config, estimate, resnet);
    npusim::NpuSimulator simulator(estimate);
    const auto run = simulator.run(resnet, batch);

    std::printf("\nResNet-50, batch %d:\n", batch);
    std::printf("  latency    : %.2f us for the whole batch\n",
                run.seconds() * 1e6);
    std::printf("  throughput : %.0f TMAC/s effective (%.0f%% of peak)\n",
                run.effectiveMacPerSec() / 1e12,
                100.0 * run.effectiveMacPerSec() /
                    estimate.peakMacPerSec);
    std::printf("  breakdown  : %.0f%% compute, %.0f%% preparation\n",
                100.0 * (double)run.computeCycles /
                    (double)run.totalCycles,
                100.0 * run.preparationFraction());

    // 4. Power: chip and with the 400x 4 K cooling overhead.
    const power::PowerReport report = power::analyze(estimate, run);
    std::printf("\npower:\n");
    std::printf("  chip       : %.2f W (%.2f static + %.2f dynamic)\n",
                report.chipW(), report.staticW, report.dynamicW);
    std::printf("  w/ cooling : %.0f W\n", report.totalWithCoolingW());
    std::printf("  efficiency : %.1f TMAC/s/W at the chip\n",
                power::perfPerWatt(run.effectiveMacPerSec(),
                                   report.chipW()) / 1e12);
    return 0;
}
