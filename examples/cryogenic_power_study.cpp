/**
 * @file
 * Cryogenic power study: when does a 4 K accelerator make sense?
 *
 * Sweeps the cooling efficiency (watts at room temperature per watt
 * removed at 4 K) and the SFQ bias technology, reporting the
 * perf-per-watt crossover against the 40 W CMOS comparator. The
 * paper's Table III uses 400x cooling; this example shows how the
 * conclusion shifts for better or worse cryocoolers and for the
 * RSFQ-vs-ERSFQ choice — the "free cooling as done in quantum
 * computing" scenario is the 0x row.
 */

#include <cstdio>

#include "common/table.hh"
#include "dnn/networks.hh"
#include "estimator/npu_estimator.hh"
#include "npusim/batch.hh"
#include "npusim/sim.hh"
#include "power/power.hh"
#include "scalesim/tpu.hh"

using namespace supernpu;

namespace {

/** Average speed-up and chip power for one technology. */
struct TechResult
{
    double meanSpeedup = 0.0;
    double chipW = 0.0;
};

TechResult
evaluate(sfq::Technology tech)
{
    sfq::DeviceConfig device;
    device.technology = tech;
    sfq::CellLibrary library(device);
    estimator::NpuEstimator npu_estimator(library);
    const auto config = estimator::NpuConfig::superNpu();
    const auto est = npu_estimator.estimate(config);
    npusim::NpuSimulator sim(est);

    scalesim::TpuConfig tpu_config;
    scalesim::TpuSimulator tpu(tpu_config);

    TechResult result;
    const auto workloads = dnn::evaluationWorkloads();
    double dynamic = 0.0;
    for (const auto &net : workloads) {
        const int batch = npusim::maxBatch(config, est, net);
        const auto run = sim.run(net, batch);
        dynamic += power::analyze(est, run).dynamicW /
                   (double)workloads.size();
        const int tpu_batch = npusim::maxBatchUnified(
            tpu_config.unifiedBufferBytes, net);
        result.meanSpeedup +=
            run.effectiveMacPerSec() /
            tpu.run(net, tpu_batch).effectiveMacPerSec() /
            (double)workloads.size();
    }
    result.chipW = est.staticPowerW + dynamic;
    return result;
}

} // namespace

int
main()
{
    const TechResult rsfq = evaluate(sfq::Technology::RSFQ);
    const TechResult ersfq = evaluate(sfq::Technology::ERSFQ);

    std::printf("SuperNPU vs 40 W TPU: %.1fx mean speed-up;"
                " chip power %.0f W (RSFQ) / %.1f W (ERSFQ)\n\n",
                ersfq.meanSpeedup, rsfq.chipW, ersfq.chipW);

    TextTable table("perf/W vs TPU across cooling efficiencies");
    table.row()
        .cell("cooling W per chip W")
        .cell("RSFQ-SuperNPU")
        .cell("ERSFQ-SuperNPU")
        .cell("note");

    const double tpu_w = 40.0;
    for (double factor : {0.0, 10.0, 100.0, 400.0, 1000.0}) {
        const double r = rsfq.meanSpeedup * tpu_w /
                         (rsfq.chipW * (1.0 + factor));
        const double e = ersfq.meanSpeedup * tpu_w /
                         (ersfq.chipW * (1.0 + factor));
        const char *note =
            factor == 0.0 ? "free cooling (quantum-computing model)"
            : factor == 400.0 ? "paper's Table III assumption"
                              : "";
        table.row()
            .cell(factor, 0)
            .cell(r, 3)
            .cell(e, 2)
            .cell(note);
    }
    table.print();

    // The break-even cooling factor where ERSFQ perf/W drops to 1x.
    const double breakeven =
        ersfq.meanSpeedup * tpu_w / ersfq.chipW - 1.0;
    std::printf("\nERSFQ stays ahead of the TPU up to a %.0fx cooling"
                " overhead; RSFQ's static power makes it lose at any"
                " realistic cryocooler efficiency.\n",
                breakeven);
    return 0;
}
