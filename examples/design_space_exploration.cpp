/**
 * @file
 * Design-space exploration: the workflow Section V of the paper
 * walks through, automated by the library's DesignSpaceExplorer.
 * Sweeps PE-array width, buffer division, and weight registers per
 * PE over the six evaluation CNNs, ranks by three objectives, and
 * prints the leaderboards.
 *
 * Running it rediscovers the paper's conclusion: a narrow (64-wide)
 * array with heavily divided, integrated buffers and 8 weight
 * registers per PE.
 *
 * The sweep fans out across all hardware threads, and the three
 * per-objective passes share one memoized sim cache — only the first
 * pass simulates; the other two re-rank cached results.
 */

#include <cstdio>

#include "common/parallel.hh"
#include "common/table.hh"
#include "dnn/networks.hh"
#include "npusim/explorer.hh"
#include "npusim/sim_cache.hh"

using namespace supernpu;
using npusim::Candidate;
using npusim::DesignSpaceExplorer;
using npusim::ExplorationSpace;
using npusim::Objective;

namespace {

void
printLeaderboard(const std::vector<Candidate> &ranked,
                 Objective objective, std::size_t top)
{
    TextTable table(std::string("leaderboard by ") +
                    npusim::objectiveName(objective));
    table.row()
        .cell("rank")
        .cell("width/division/regs")
        .cell("avg TMAC/s")
        .cell("chip W")
        .cell("area mm2 (1um)");
    for (std::size_t i = 0; i < top && i < ranked.size(); ++i) {
        const Candidate &cand = ranked[i];
        if (!cand.operable)
            break;
        table.row()
            .cell((long long)(i + 1))
            .cell(cand.config.name)
            .cell(cand.avgMacPerSec / 1e12, 1)
            .cell(cand.chipPowerW, 1)
            .cell(cand.areaMm2, 0);
    }
    table.print();
    std::printf("\n");
}

} // namespace

int
main()
{
    sfq::DeviceConfig device;
    sfq::CellLibrary library(device);
    DesignSpaceExplorer explorer(library,
                                 dnn::evaluationWorkloads());
    const ExplorationSpace space; // the default Section V sweep
    const int jobs = ThreadPool::hardwareConcurrency();

    for (Objective objective :
         {Objective::Throughput, Objective::PerfPerWatt,
          Objective::PerfPerArea}) {
        const auto ranked = explorer.explore(space, objective, jobs);
        printLeaderboard(ranked, objective, 5);
    }

    const auto by_perf =
        explorer.explore(space, Objective::Throughput, jobs);
    std::printf("chosen design: %s — matching the paper's SuperNPU"
                " recipe (narrow array, divided integrated buffers,"
                " multi-register PEs).\n",
                by_perf.front().config.name.c_str());

    const auto stats = npusim::SimCache::global().stats();
    std::printf("%d jobs; %llu cycle simulations ran, %llu served"
                " from the sim cache.\n",
                jobs, (unsigned long long)stats.misses,
                (unsigned long long)stats.hits);
    return 0;
}
