/**
 * @file
 * Multi-chip partitioning walkthrough: split ResNet50 across a
 * pipeline of SuperNPU chips and see where the cuts land, what the
 * inter-chip link costs, and how steady-state throughput scales.
 *
 * The partitioner (src/partition) minimizes the bottleneck stage —
 * the slowest stage sets the pipeline's initiation interval, so
 * min-max is the right objective — using real simulated cycles per
 * layer, then re-simulates each chosen stage as a standalone
 * sub-network. The study closes with a link-bandwidth sensitivity
 * check: the paper's 300 GB/s off-chip comparator against a 10x
 * slower link, showing when activation shipping starts to eat the
 * pipeline speedup.
 */

#include <cstdio>

#include "common/table.hh"
#include "dnn/networks.hh"
#include "estimator/npu_estimator.hh"
#include "npusim/batch.hh"
#include "obs/audit.hh"
#include "partition/pipeline_sim.hh"

using namespace supernpu;

int
main()
{
    sfq::DeviceConfig device;
    sfq::CellLibrary library(device);
    estimator::NpuEstimator estimator(library);
    const estimator::NpuConfig config =
        estimator::NpuConfig::superNpu();
    const estimator::NpuEstimate estimate =
        estimator.estimate(config);

    const dnn::Network net = dnn::makeResNet50();
    const int batch = npusim::maxBatch(config, estimate, net);
    std::printf("partitioning %s (%zu layers) on %s, batch %d\n\n",
                net.name.c_str(), net.layers.size(),
                config.name.c_str(), batch);

    // --- where do the cuts land? --------------------------------
    partition::PipelineSimulator pipeline(estimate);
    const auto four = pipeline.run(net, 4, batch, 64);
    obs::enforce(obs::auditPipeline(four), "partition_study");

    std::printf("the 4-chip plan (bottleneck stage %d):\n",
                four.plan.bottleneckStage);
    TextTable stages;
    stages.row()
        .cell("stage")
        .cell("layers")
        .cell("first layer")
        .cell("Mcycles")
        .cell("ship MiB")
        .cell("util");
    for (int s = 0; s < four.plan.stageCount(); ++s) {
        const auto &stage = four.plan.stages[s];
        stages.row()
            .cell((long long)s)
            .cell((long long)stage.layerCount())
            .cell(net.layers[(std::size_t)stage.firstLayer].name)
            .cell((double)stage.stageCycles / 1e6, 2)
            .cell((double)stage.linkBytes / (1024.0 * 1024.0), 2)
            .cell(four.plan.stageUtilization(s), 3);
    }
    stages.print();
    std::printf("\nthe cuts are cycle-balanced, not layer-balanced:"
                " early stages take fewer\nlayers because early"
                " ResNet50 layers have big feature maps and more\n"
                "cycles each; every stage ships its output"
                " activations forward, so the\nlast stage ships"
                " nothing.\n\n");

    // --- how does throughput scale with chips? ------------------
    const auto solo = pipeline.run(net, 1, batch, 64);
    TextTable scale("throughput vs pipeline depth");
    scale.row()
        .cell("chips")
        .cell("inf/s")
        .cell("speedup")
        .cell("fill latency us");
    for (int k : {1, 2, 3, 4}) {
        const auto run = pipeline.run(net, k, batch, 64);
        obs::enforce(obs::auditPipeline(run), "partition_study");
        scale.row()
            .cell((long long)k)
            .cell(run.steadyInferencesPerSec(), 0)
            .cell(run.steadyInferencesPerSec() /
                      solo.steadyInferencesPerSec(),
                  2)
            .cell(run.plan.fillLatencySec() * 1e6, 1);
    }
    scale.print();
    std::printf("\nspeedup trails K because the network is not"
                " perfectly divisible and\nevery cut adds link"
                " occupancy to some stage; the first batch also"
                " pays\nthe whole fill latency before the pipeline"
                " reaches steady state.\n\n");

    // --- what if the link is 10x slower? ------------------------
    partition::LinkConfig slow;
    slow.bandwidthGBps = 30.0;
    partition::PipelineSimulator slow_pipeline(estimate, slow);
    const auto slow_four = slow_pipeline.run(net, 4, batch, 64);
    std::printf("link sensitivity at 4 chips:\n"
                "  300 GB/s (paper's off-chip rate): %.0f inf/s\n"
                "   30 GB/s (10x slower)           : %.0f inf/s"
                " (%.0f%% of the fast link)\n",
                four.steadyInferencesPerSec(),
                slow_four.steadyInferencesPerSec(),
                100.0 * slow_four.steadyInferencesPerSec() /
                    four.steadyInferencesPerSec());
    std::printf("\nactivation shipping sits on the critical path of"
                " whichever stage ships\nthe most, so a slow link"
                " first moves the bottleneck to an early stage\nwith"
                " big feature maps, then flattens the scaling curve"
                " entirely.\n");
    return 0;
}
