/**
 * @file
 * Cycle-level model of the paper's comparator: a TPU-core-class CMOS
 * NPU (256 x 256 weight-stationary systolic array, 0.7 GHz, 24 MB
 * unified buffer, 300 GB/s HBM). The paper evaluates it with
 * SCALE-Sim; this module implements the equivalent timing model:
 * per-tile systolic fill/stream/drain cycles with a bandwidth
 * roofline on the layer's DRAM traffic.
 */

#ifndef SUPERNPU_SCALESIM_TPU_HH
#define SUPERNPU_SCALESIM_TPU_HH

#include <cstdint>

#include "dnn/layer.hh"
#include "npusim/result.hh"

namespace supernpu {
namespace scalesim {

/** Systolic dataflow options (SCALE-Sim's WS and OS modes). */
enum class TpuDataflow
{
    WeightStationary, ///< weights resident; the TPU's (and paper's) choice
    OutputStationary, ///< outputs resident; operands both stream
};

/** CMOS comparator configuration (Table I's TPU column). */
struct TpuConfig
{
    int arrayWidth = 256;
    int arrayHeight = 256;
    double frequencyGhz = 0.7;
    std::uint64_t unifiedBufferBytes = 24ull * 1024 * 1024;
    double memoryBandwidth = 300e9; ///< bytes per second
    double averagePowerW = 40.0;    ///< Jouppi et al. average
    TpuDataflow dataflow = TpuDataflow::WeightStationary;

    /** Peak throughput, MAC/s. */
    double peakMacPerSec() const;
};

/** SCALE-Sim-style weight-stationary timing model. */
class TpuSimulator
{
  public:
    explicit TpuSimulator(const TpuConfig &config);

    /** Simulate one layer at a batch size. */
    npusim::LayerResult simulateLayer(const dnn::Layer &layer,
                                      int batch) const;

    /** Simulate a whole network. */
    npusim::SimResult run(const dnn::Network &network, int batch) const;

    const TpuConfig &config() const { return _config; }

  private:
    TpuConfig _config;
};

} // namespace scalesim
} // namespace supernpu

#endif // SUPERNPU_SCALESIM_TPU_HH
