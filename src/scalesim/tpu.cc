/**
 * @file
 * TPU comparator timing model.
 */

#include "tpu.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace supernpu {
namespace scalesim {

namespace {

std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace

double
TpuConfig::peakMacPerSec() const
{
    return (double)arrayWidth * arrayHeight * frequencyGhz * 1e9;
}

TpuSimulator::TpuSimulator(const TpuConfig &config)
    : _config(config)
{
    SUPERNPU_ASSERT(config.arrayWidth > 0 && config.arrayHeight > 0,
                    "empty TPU array");
    SUPERNPU_ASSERT(config.frequencyGhz > 0 && config.memoryBandwidth > 0,
                    "bad TPU clock/bandwidth");
}

npusim::LayerResult
TpuSimulator::simulateLayer(const dnn::Layer &layer, int batch) const
{
    SUPERNPU_ASSERT(batch >= 1, "bad batch");
    layer.check();

    const bool depthwise = layer.kind == dnn::LayerKind::DepthwiseConv;
    const std::uint64_t array_w = _config.arrayWidth;
    const std::uint64_t array_h = _config.arrayHeight;
    const std::uint64_t batch_u = (std::uint64_t)batch;

    const std::uint64_t filter_len = layer.weightsPerFilter();
    const std::uint64_t row_folds = ceilDiv(filter_len, array_h);
    const std::uint64_t num_filters =
        depthwise ? (std::uint64_t)layer.inChannels
                  : (std::uint64_t)layer.outChannels;
    const std::uint64_t filters_per_mapping = depthwise ? 1 : array_w;
    const std::uint64_t col_folds =
        ceilDiv(num_filters, filters_per_mapping);

    const std::uint64_t positions = layer.outputPositions();

    npusim::LayerResult res;
    res.layerName = layer.name;

    std::uint64_t compute = 0;
    double weight_traffic = (double)layer.weightBytes();

    if (_config.dataflow == TpuDataflow::WeightStationary) {
        // SCALE-Sim WS tile time: fill the weights down the array,
        // then stream every (position, batch) input row, then drain.
        for (std::uint64_t c = 0; c < col_folds; ++c) {
            const std::uint64_t active_filters =
                std::min(num_filters - c * filters_per_mapping,
                         filters_per_mapping);
            for (std::uint64_t r = 0; r < row_folds; ++r) {
                const std::uint64_t active_rows =
                    std::min(filter_len - r * array_h, array_h);
                compute += positions * batch_u + 2 * array_h + array_w;
                res.macOps +=
                    positions * batch_u * active_rows * active_filters;
                ++res.weightMappings;
            }
        }
    } else {
        // SCALE-Sim OS tile time: each PE owns one (position,
        // filter) output and accumulates over the filter depth;
        // both operands stream for filter_len cycles per tile.
        const std::uint64_t position_tiles =
            ceilDiv(positions * batch_u, array_h);
        const std::uint64_t filter_tiles =
            depthwise ? num_filters : ceilDiv(num_filters, array_w);
        for (std::uint64_t pt = 0; pt < position_tiles; ++pt) {
            const std::uint64_t active_rows =
                std::min(positions * batch_u - pt * array_h, array_h);
            for (std::uint64_t ft = 0; ft < filter_tiles; ++ft) {
                const std::uint64_t active_cols =
                    depthwise
                        ? 1
                        : std::min(num_filters - ft * array_w,
                                   array_w);
                compute += filter_len + 2 * array_h + array_w;
                res.macOps +=
                    filter_len * active_rows * active_cols;
                ++res.weightMappings;
            }
        }
        // OS re-streams the weights once per position tile: the
        // dataflow's buffer-traffic penalty (weights are not held).
        weight_traffic *= (double)position_tiles;
    }

    // DRAM traffic: weights per the dataflow; the activations stay
    // in the unified buffer when the layer's batched working set
    // fits (the Table II batch policy guarantees this at the solved
    // batch), otherwise they spill and re-stream.
    const std::uint64_t io_bytes =
        (layer.ifmapBytes() + layer.ofmapBytes()) * batch_u;
    const bool io_fits = io_bytes <= _config.unifiedBufferBytes;
    const double dram_bytes =
        weight_traffic + (io_fits ? 0.0 : (double)io_bytes);
    const double dram_cycles = dram_bytes * _config.frequencyGhz * 1e9 /
                               _config.memoryBandwidth;

    // The unified buffer double-buffers tiles: compute and DRAM
    // overlap; the layer takes the slower of the two.
    res.computeCycles = compute;
    if (dram_cycles > (double)compute) {
        res.memoryStallCycles =
            (std::uint64_t)(dram_cycles - (double)compute);
    }
    res.dramBytes = (std::uint64_t)dram_bytes;
    return res;
}

npusim::SimResult
TpuSimulator::run(const dnn::Network &network, int batch) const
{
    network.check();

    npusim::SimResult result;
    result.networkName = network.name;
    result.configName = "TPU";
    result.batch = batch;
    result.frequencyGhz = _config.frequencyGhz;

    for (const auto &layer : network.layers) {
        npusim::LayerResult lr = simulateLayer(layer, batch);
        result.computeCycles += lr.computeCycles;
        result.prepCycles += lr.prepCycles;
        result.memoryStallCycles += lr.memoryStallCycles;
        result.macOps += lr.macOps;
        result.dramBytes += lr.dramBytes;
        result.layers.push_back(std::move(lr));
    }
    result.totalCycles = result.computeCycles + result.prepCycles +
                         result.memoryStallCycles;
    return result;
}

} // namespace scalesim
} // namespace supernpu
