/**
 * @file
 * Simulation-result cache implementation.
 */

#include "sim_cache.hh"

#include "common/logging.hh"
#include "perf/profile.hh"

namespace supernpu {
namespace npusim {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/** FNV-1a over one 64-bit word. */
void
mix(std::uint64_t &hash, std::uint64_t word)
{
    for (int i = 0; i < 8; ++i) {
        hash ^= (word >> (8 * i)) & 0xff;
        hash *= kFnvPrime;
    }
}

/** FNV-1a over a string's bytes (length-delimited). */
void
mix(std::uint64_t &hash, const std::string &text)
{
    mix(hash, (std::uint64_t)text.size());
    for (char c : text) {
        hash ^= (unsigned char)c;
        hash *= kFnvPrime;
    }
}

/** Doubles participate bit-exactly. */
void
mixDouble(std::uint64_t &hash, double value)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    __builtin_memcpy(&bits, &value, sizeof(bits));
    mix(hash, bits);
}

} // namespace

std::uint64_t
hashNetwork(const dnn::Network &network)
{
    std::uint64_t hash = kFnvOffset;
    mix(hash, network.name);
    mix(hash, (std::uint64_t)network.layers.size());
    for (const auto &layer : network.layers) {
        mix(hash, layer.name);
        mix(hash, (std::uint64_t)layer.kind);
        mix(hash, (std::uint64_t)layer.inChannels);
        mix(hash, (std::uint64_t)layer.inHeight);
        mix(hash, (std::uint64_t)layer.inWidth);
        mix(hash, (std::uint64_t)layer.outChannels);
        mix(hash, (std::uint64_t)layer.kernelH);
        mix(hash, (std::uint64_t)layer.kernelW);
        mix(hash, (std::uint64_t)layer.stride);
        mix(hash, (std::uint64_t)layer.padding);
    }
    return hash;
}

std::uint64_t
hashConfig(const estimator::NpuConfig &config)
{
    std::uint64_t hash = kFnvOffset;
    mix(hash, config.name);
    mix(hash, (std::uint64_t)config.peWidth);
    mix(hash, (std::uint64_t)config.peHeight);
    mix(hash, (std::uint64_t)config.bitWidth);
    mix(hash, (std::uint64_t)config.regsPerPe);
    mix(hash, config.ifmapBufferBytes);
    mix(hash, (std::uint64_t)config.integratedOutputBuffer);
    mix(hash, config.outputBufferBytes);
    mix(hash, config.psumBufferBytes);
    mix(hash, config.ofmapBufferBytes);
    mix(hash, config.weightBufferBytes);
    mix(hash, (std::uint64_t)config.ifmapDivision);
    mix(hash, (std::uint64_t)config.outputDivision);
    mixDouble(hash, config.memoryBandwidth);
    mix(hash, (std::uint64_t)config.weightDoubleBuffering);
    return hash;
}

std::uint64_t
hashEstimate(const estimator::NpuEstimate &estimate)
{
    std::uint64_t hash = hashConfig(estimate.config);
    mixDouble(hash, estimate.frequencyGhz);
    mixDouble(hash, estimate.peakMacPerSec);
    mix(hash, estimate.ifmapRowLength);
    mix(hash, estimate.ifmapChunkLength);
    mix(hash, estimate.outputRowLength);
    mix(hash, estimate.outputChunkLength);
    return hash;
}

std::size_t
SimCache::KeyHash::operator()(const SimKey &key) const
{
    std::uint64_t hash = kFnvOffset;
    mix(hash, key.networkHash);
    mix(hash, key.configHash);
    mix(hash, (std::uint64_t)key.batch);
    mix(hash, key.faultHash);
    return (std::size_t)hash;
}

SimCache::SimCache(std::size_t max_entries) : _maxEntries(max_entries)
{
}

SimCache &
SimCache::global()
{
    static SimCache cache;
    return cache;
}

std::shared_ptr<const SimResult>
SimCache::peekLocked(const SimKey &key)
{
    const auto it = _index.find(key);
    if (it == _index.end())
        return nullptr;
    _lru.splice(_lru.begin(), _lru, it->second);
    return it->second->result;
}

void
SimCache::countHitLocked()
{
    ++_stats.hits;
    if (perf::enabled()) {
        static perf::Counter &hits = perf::counter("simCache.hits");
        hits.add(1);
    }
}

void
SimCache::countMissLocked()
{
    ++_stats.misses;
    if (perf::enabled()) {
        static perf::Counter &misses =
            perf::counter("simCache.misses");
        misses.add(1);
    }
}

std::shared_ptr<const SimResult>
SimCache::lookupLocked(const SimKey &key)
{
    auto result = peekLocked(key);
    if (result) {
        countHitLocked();
    } else {
        countMissLocked();
    }
    return result;
}

std::shared_ptr<const SimResult>
SimCache::insertLocked(const SimKey &key,
                       std::shared_ptr<const SimResult> result)
{
    const auto it = _index.find(key);
    if (it != _index.end()) {
        // Another thread simulated the same key first; keep its
        // entry (the results are identical by determinism).
        return it->second->result;
    }
    _lru.push_front(Entry{key, std::move(result)});
    _index.emplace(key, _lru.begin());
    while (_maxEntries != 0 && _lru.size() > _maxEntries) {
        _index.erase(_lru.back().key);
        _lru.pop_back();
        ++_stats.evictions;
    }
    return _lru.front().result;
}

std::shared_ptr<const SimResult>
SimCache::find(const SimKey &key)
{
    std::lock_guard<std::mutex> lock(_mutex);
    return lookupLocked(key);
}

std::shared_ptr<const SimResult>
SimCache::getOrCompute(const SimKey &key,
                       const std::function<SimResult()> &compute)
{
    std::shared_ptr<Flight> flight;
    {
        std::unique_lock<std::mutex> lock(_mutex);
        if (auto result = peekLocked(key)) {
            countHitLocked();
            return result;
        }
        const auto it = _inflight.find(key);
        if (it != _inflight.end()) {
            // Another thread is simulating this exact key. Joining
            // its flight counts as a hit: the serial run would find
            // the leader's freshly-inserted entry resident by the
            // time it reached this lookup, so totals stay identical
            // at any job count.
            countHitLocked();
            flight = it->second;
            _flightDone.wait(lock, [&] { return flight->done; });
            if (flight->error)
                std::rethrow_exception(flight->error);
            return flight->result;
        }
        countMissLocked();
        flight = std::make_shared<Flight>();
        _inflight.emplace(key, flight);
    }
    // Leader: compute outside the lock so misses on *different* keys
    // run in parallel; same-key arrivals wait on the flight above.
    std::shared_ptr<const SimResult> inserted;
    try {
        auto result = std::make_shared<const SimResult>(compute());
        std::lock_guard<std::mutex> lock(_mutex);
        inserted = insertLocked(key, std::move(result));
        flight->result = inserted;
        flight->done = true;
        _inflight.erase(key);
    } catch (...) {
        {
            std::lock_guard<std::mutex> lock(_mutex);
            flight->error = std::current_exception();
            flight->done = true;
            _inflight.erase(key);
        }
        _flightDone.notify_all();
        throw;
    }
    _flightDone.notify_all();
    return inserted;
}

std::shared_ptr<const SimResult>
SimCache::getOrRun(const SimKey &key, const NpuSimulator &sim,
                   const dnn::Network &network)
{
    return getOrCompute(
        key, [&] { return sim.run(network, key.batch); });
}

std::shared_ptr<const SimResult>
SimCache::getOrRun(const NpuSimulator &sim, const dnn::Network &network,
                   int batch)
{
    SUPERNPU_ASSERT(batch >= 1, "bad batch ", batch);
    const SimKey key{hashNetwork(network),
                     hashEstimate(sim.estimate()), batch};
    return getOrRun(key, sim, network);
}

std::size_t
SimCache::size() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _lru.size();
}

SimCacheStats
SimCache::stats() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _stats;
}

void
SimCache::clear()
{
    std::lock_guard<std::mutex> lock(_mutex);
    _lru.clear();
    _index.clear();
    _stats = SimCacheStats{};
}

} // namespace npusim
} // namespace supernpu
