/**
 * @file
 * Batch solver implementation.
 */

#include "batch.hh"

#include <algorithm>

#include "common/logging.hh"

namespace supernpu {
namespace npusim {

std::uint64_t
usableOutputBytes(const estimator::NpuConfig &config,
                  const dnn::Layer &layer)
{
    const std::uint64_t capacity = config.outputSideBytes();
    if (layer.kind == dnn::LayerKind::DepthwiseConv) {
        // Depthwise filters cannot share an ifmap stream across
        // columns: one channel maps at a time, so only one column's
        // output-buffer row is in use per mapping.
        return capacity / (std::uint64_t)config.peWidth;
    }
    // Fig. 18(b): with K filters on a W-wide array, only
    // min(K, W) / W of the output buffer rows ever receive data.
    const int active = std::min(layer.outChannels, config.peWidth);
    return capacity * (std::uint64_t)active /
           (std::uint64_t)config.peWidth;
}

namespace {

/** Output bytes the batch constraint compares against: per channel
 *  for depthwise (channels map serially), per image otherwise. */
std::uint64_t
outputBytesPerImage(const dnn::Layer &layer)
{
    if (layer.kind == dnn::LayerKind::DepthwiseConv)
        return layer.ofmapBytes() / (std::uint64_t)layer.outChannels;
    return layer.ofmapBytes();
}

} // namespace

int
maxIfmapBatch(const estimator::NpuConfig &config,
              const estimator::NpuEstimate &estimate,
              const dnn::Layer &layer)
{
    const std::uint64_t per_image = layer.ifmapBytes();
    if (per_image == 0)
        return batchCap;

    if (config.ifmapDivision <= 1) {
        // One buffer row per input channel: every channel's batch of
        // data must fit within a single row (Fig. 18(c)).
        const std::uint64_t channel_bytes =
            (std::uint64_t)layer.inHeight * layer.inWidth;
        const std::uint64_t row_bytes =
            estimate.ifmapRowLength * (std::uint64_t)config.bitWidth / 8;
        return (int)(row_bytes / std::max<std::uint64_t>(channel_bytes, 1));
    }

    // Divided buffer: chunk-granular allocation uses the whole
    // capacity regardless of the channel count.
    return (int)(config.ifmapBufferBytes / per_image);
}

int
maxBatch(const estimator::NpuConfig &config,
         const estimator::NpuEstimate &estimate,
         const dnn::Network &network)
{
    int batch = batchCap;
    for (const auto &layer : network.layers) {
        const std::uint64_t out_bytes = outputBytesPerImage(layer);
        if (out_bytes > 0) {
            const std::uint64_t usable = usableOutputBytes(config, layer);
            batch = std::min<int>(batch, (int)(usable / out_bytes));
        }
        batch = std::min(batch, maxIfmapBatch(config, estimate, layer));
        if (batch <= 1)
            break;
    }
    return std::clamp(batch, 1, batchCap);
}

int
maxBatchUnified(std::uint64_t buffer_bytes, const dnn::Network &network)
{
    const std::uint64_t largest = network.maxLayerIoBytes();
    SUPERNPU_ASSERT(largest > 0, "network with empty layers");
    const int batch = (int)(buffer_bytes / largest);
    return std::max(batch, 1);
}

} // namespace npusim
} // namespace supernpu
