/**
 * @file
 * Design-space explorer implementation.
 */

#include "explorer.hh"

#include <algorithm>

#include "batch.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/units.hh"
#include "estimator/design_rules.hh"
#include "partition/pipeline_sim.hh"
#include "perf/profile.hh"
#include "sharding/planner.hh"
#include "sim.hh"

namespace supernpu {
namespace npusim {

const char *
objectiveName(Objective objective)
{
    switch (objective) {
      case Objective::Throughput:
        return "throughput";
      case Objective::PerfPerWatt:
        return "perf/W";
      case Objective::PerfPerArea:
        return "perf/area";
    }
    panic("unknown objective");
}

DesignSpaceExplorer::DesignSpaceExplorer(
    const sfq::CellLibrary &lib, std::vector<dnn::Network> workloads)
    : _lib(lib), _workloads(std::move(workloads))
{
    SUPERNPU_ASSERT(!_workloads.empty(), "no workloads to score");
}

estimator::NpuConfig
DesignSpaceExplorer::makeConfig(int width, int division, int regs,
                                int buffer_mb)
{
    estimator::NpuConfig config;
    config.name = "w";
    config.name += std::to_string(width);
    config.name += "/d";
    config.name += std::to_string(division);
    config.name += "/r";
    config.name += std::to_string(regs);
    config.peWidth = width;
    config.peHeight = 256;
    config.integratedOutputBuffer = true;
    const std::uint64_t half =
        (std::uint64_t)buffer_mb / 2 * units::MiB;
    config.ifmapBufferBytes = half;
    config.outputBufferBytes =
        (std::uint64_t)buffer_mb * units::MiB - half;
    config.ifmapDivision = std::min(division, 64);
    config.outputDivision = division;
    config.regsPerPe = regs;
    config.weightBufferBytes =
        (std::uint64_t)width * 256 * (std::uint64_t)regs;
    return config;
}

Candidate
DesignSpaceExplorer::evaluate(
    const estimator::NpuEstimator &npu_estimator,
    const estimator::NpuConfig &config, int pipeline_stages,
    int data_parallel, int tensor_shards,
    const partition::LinkConfig &link, Objective objective) const
{
    Candidate cand;
    cand.config = config;
    cand.pipelineStages = pipeline_stages;
    cand.dataParallel = data_parallel;
    cand.tensorShards = tensor_shards;
    const int group_chips =
        data_parallel * tensor_shards * pipeline_stages;
    const auto est = npu_estimator.estimate(cand.config);
    cand.areaMm2 = est.areaMm2 * (double)group_chips;

    const auto findings =
        estimator::checkDesignRules(cand.config, est);
    if (!estimator::designIsOperable(findings)) {
        cand.operable = false;
        for (const auto &finding : findings) {
            if (finding.severity == estimator::RuleSeverity::Error) {
                cand.note = finding.message;
                break;
            }
        }
        return cand;
    }

    NpuSimulator sim(est);
    double dynamic = 0.0;
    if (data_parallel > 1 || tensor_shards > 1) {
        // A sharded candidate: score the hybrid DP×TP×PP plan's
        // effective throughput, and charge every chip's static power
        // plus each pipeline stage's duty-cycled dynamic power
        // replicated across the R·T shard grid.
        SimCache fresh;
        SimCache *cache = _cache ? _cache : &fresh;
        sharding::HybridPlanner planner(est, link, cache);
        for (const auto &net : _workloads) {
            const int batch = maxBatch(cand.config, est, net);
            const sharding::ShardPlan plan = planner.evaluate(
                net, data_parallel, tensor_shards, pipeline_stages,
                batch);
            cand.avgMacPerSec +=
                plan.effectiveMacPerSec() / (double)_workloads.size();
            double group_dynamic = 0.0;
            for (const auto &stage : plan.pipeline.stages) {
                group_dynamic +=
                    power::analyze(est, *stage.sim).dynamicW *
                    ((double)stage.sim->totalCycles /
                     (double)plan.bottleneckCycles);
            }
            dynamic += (double)(data_parallel * tensor_shards) *
                       group_dynamic / (double)_workloads.size();
        }
        cand.chipPowerW =
            (double)group_chips * est.staticPowerW + dynamic;
        cand.config.name += "/dp";
        cand.config.name += std::to_string(data_parallel);
        cand.config.name += "/tp";
        cand.config.name += std::to_string(tensor_shards);
        if (pipeline_stages > 1) {
            cand.config.name += "/k";
            cand.config.name += std::to_string(pipeline_stages);
        }
    } else if (pipeline_stages > 1) {
        // A K-chip pipeline candidate: score the steady-state
        // group throughput from the partitioned pipeline, and
        // charge K chips of static power plus each stage's dynamic
        // power weighted by its steady-state duty cycle.
        SimCache fresh;
        SimCache *cache = _cache ? _cache : &fresh;
        partition::PipelineSimulator pipeline(est, link, cache);
        for (const auto &net : _workloads) {
            const int batch = maxBatch(cand.config, est, net);
            const partition::PipelineResult run =
                pipeline.run(net, pipeline_stages, batch);
            cand.avgMacPerSec +=
                run.effectiveMacPerSec() / (double)_workloads.size();
            double group_dynamic = 0.0;
            for (const auto &stage : run.plan.stages) {
                group_dynamic +=
                    power::analyze(est, *stage.sim).dynamicW *
                    ((double)stage.sim->totalCycles /
                     (double)run.plan.bottleneckCycles);
            }
            dynamic += group_dynamic / (double)_workloads.size();
        }
        cand.chipPowerW =
            (double)pipeline_stages * est.staticPowerW + dynamic;
        cand.config.name += "/k";
        cand.config.name += std::to_string(pipeline_stages);
    } else {
        for (const auto &net : _workloads) {
            const int batch = maxBatch(cand.config, est, net);
            std::shared_ptr<const SimResult> run;
            if (_cache) {
                run = _cache->getOrRun(sim, net, batch);
            } else {
                run = std::make_shared<const SimResult>(
                    sim.run(net, batch));
            }
            cand.avgMacPerSec +=
                run->effectiveMacPerSec() / (double)_workloads.size();
            dynamic += power::analyze(est, *run).dynamicW /
                       (double)_workloads.size();
        }
        cand.chipPowerW = est.staticPowerW + dynamic;
    }

    switch (objective) {
      case Objective::Throughput:
        cand.score = cand.avgMacPerSec;
        break;
      case Objective::PerfPerWatt:
        cand.score = cand.avgMacPerSec / cand.chipPowerW;
        break;
      case Objective::PerfPerArea:
        cand.score = cand.avgMacPerSec / cand.areaMm2;
        break;
    }
    return cand;
}

std::vector<Candidate>
DesignSpaceExplorer::explore(const ExplorationSpace &space,
                             Objective objective, int jobs) const
{
    ThreadPool pool(jobs);
    return explore(space, objective, pool);
}

std::vector<Candidate>
DesignSpaceExplorer::explore(const ExplorationSpace &space,
                             Objective objective,
                             ThreadPool &pool) const
{
    perf::Scope perf_scope("explorer.explore");
    const ThreadPool::Stats pool_before = pool.stats();

    SUPERNPU_ASSERT(space.widths.size() ==
                        space.bufferMbForWidth.size(),
                    "bufferMbForWidth must parallel widths");

    SUPERNPU_ASSERT(!space.pipelineStages.empty(),
                    "pipelineStages must not be empty");
    SUPERNPU_ASSERT(!space.dataParallel.empty(),
                    "dataParallel must not be empty");
    SUPERNPU_ASSERT(!space.tensorShards.empty(),
                    "tensorShards must not be empty");

    // Flatten the knob nest in the canonical (width, division, regs,
    // stages, dp, tp) order; parallelMap fills result slots in this
    // same order, so the pre-sort candidate sequence is independent
    // of `jobs`. The default pipelineStages = dataParallel =
    // tensorShards = {1} enumerates exactly the pre-partition point
    // list.
    struct Point
    {
        estimator::NpuConfig config;
        int stages;
        int dp;
        int tp;
    };
    std::vector<Point> points;
    for (std::size_t w = 0; w < space.widths.size(); ++w) {
        for (int division : space.divisions) {
            for (int regs : space.regsPerPe) {
                for (int stages : space.pipelineStages) {
                    for (int dp : space.dataParallel) {
                        for (int tp : space.tensorShards) {
                            points.push_back(
                                {makeConfig(
                                     space.widths[w], division, regs,
                                     space.bufferMbForWidth[w]),
                                 stages, dp, tp});
                        }
                    }
                }
            }
        }
    }

    estimator::NpuEstimator npu_estimator(_lib);
    std::vector<Candidate> candidates =
        pool.parallelMap(points.size(), [&](std::size_t i) {
            return evaluate(npu_estimator, points[i].config,
                            points[i].stages, points[i].dp,
                            points[i].tp, space.link, objective);
        });

    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const Candidate &a, const Candidate &b) {
                         if (a.operable != b.operable)
                             return a.operable;
                         return a.score > b.score;
                     });

    // Fold this sweep's share of the pool's lifetime counters into
    // the perf registry (the pool itself stays perf-agnostic).
    if (perf::enabled()) {
        const ThreadPool::Stats pool_after = pool.stats();
        static perf::Counter &tasks =
            perf::counter("explorer.poolTasks");
        static perf::Counter &loops =
            perf::counter("explorer.poolLoops");
        static perf::Counter &evaluated =
            perf::counter("explorer.candidates");
        tasks.add(pool_after.tasks - pool_before.tasks);
        loops.add(pool_after.loops - pool_before.loops);
        evaluated.add(candidates.size());
    }
    return candidates;
}

} // namespace npusim
} // namespace supernpu
