/**
 * @file
 * Thread-safe memoized cache of cycle-level simulation results.
 *
 * The cycle simulator is pure: NpuSimulator::run(network, batch) is
 * fully determined by (network shapes, NpuConfig, batch). Sweeps
 * revisit the same points constantly — the explorer scores every
 * workload at every candidate, the ablation benches re-run the Table
 * I configs, and the serving simulator's service model needs one
 * simulation per distinct batch size — so results are memoized here
 * under a key of (workload hash, config hash, batch).
 *
 * The cache is safe for concurrent use from a ThreadPool sweep: a
 * lookup/insert holds one mutex, and a miss releases it while the
 * simulation runs so other keys proceed in parallel. Concurrent
 * misses on the SAME key are collapsed into one flight: the first
 * arrival simulates, later arrivals block until the result lands and
 * then share it. Waiters are accounted as hits — exactly what the
 * serial run would count when it reached the same lookup after the
 * leader's insert — so hit/miss/eviction totals are identical at any
 * job count. The parallel planner and check sweeps embed these
 * counters in byte-compared ledgers, which makes that determinism
 * load-bearing, and the dedup also stops a sweep from burning cores
 * on N identical simulations of one hot key.
 *
 * Entries are evicted least-recently-used past `maxEntries`. Handing
 * out shared_ptr<const SimResult> keeps a result valid even if it is
 * evicted while a caller still reads it.
 */

#ifndef SUPERNPU_NPUSIM_SIM_CACHE_HH
#define SUPERNPU_NPUSIM_SIM_CACHE_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "dnn/layer.hh"
#include "estimator/npu_config.hh"
#include "result.hh"
#include "sim.hh"

namespace supernpu {
namespace npusim {

/**
 * FNV-1a-style structural hash of a network: name and every layer
 * shape field participate, so any change that can alter simulation
 * results changes the hash.
 */
std::uint64_t hashNetwork(const dnn::Network &network);

/** Structural hash of an NPU configuration (every field). */
std::uint64_t hashConfig(const estimator::NpuConfig &config);

/**
 * Hash of the full estimated design point: the config hash mixed
 * with every estimate field the cycle simulator reads (frequency,
 * buffer geometry, bandwidth-derived stalls). Two identical
 * NpuConfigs estimated under different cell libraries (RSFQ vs
 * ERSFQ, different feature sizes) hash differently — this, not
 * hashConfig, is what cache keys must be built from.
 */
std::uint64_t hashEstimate(const estimator::NpuEstimate &estimate);

/** Cache key: which simulation a result belongs to. */
struct SimKey
{
    std::uint64_t networkHash = 0;
    std::uint64_t configHash = 0; ///< hashEstimate of the design point
    int batch = 0;
    /**
     * Hash of the fault schedule injected into the run
     * (reliability::FaultSchedule::hash()); 0 for a clean run. Keeps
     * faulted and clean simulations of the same design point from
     * ever colliding, even when the injected faults happen not to
     * change the degraded estimate.
     */
    std::uint64_t faultHash = 0;

    bool operator==(const SimKey &other) const
    {
        return networkHash == other.networkHash &&
               configHash == other.configHash &&
               batch == other.batch && faultHash == other.faultHash;
    }
};

/** Monotonically-counted cache statistics. */
struct SimCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
};

/** Thread-safe LRU-memoized store of SimResults. */
class SimCache
{
  public:
    /** @param max_entries LRU capacity; 0 means unbounded. */
    explicit SimCache(std::size_t max_entries = kDefaultMaxEntries);

    /**
     * The memoizing entry point: return the cached result for
     * (network, sim's config, batch), running the simulation on this
     * thread if it is not cached yet.
     */
    std::shared_ptr<const SimResult>
    getOrRun(const NpuSimulator &sim, const dnn::Network &network,
             int batch);

    /**
     * Same, with the hashes precomputed by the caller — the serving
     * service model hashes its fixed (network, config) once and
     * avoids rehashing on every lookup.
     */
    std::shared_ptr<const SimResult>
    getOrRun(const SimKey &key, const NpuSimulator &sim,
             const dnn::Network &network);

    /**
     * Generic memoizing entry point: return the cached result for
     * `key`, invoking `compute` on this thread when absent. The
     * reliability injector uses this to cache fault-augmented
     * results under fault-schedule-qualified keys; getOrRun is sugar
     * over it. `compute` must be deterministic for the key and must
     * not re-enter the cache for the same key (it may freely compute
     * through the cache for *other* keys — the in-flight wait is per
     * key, never global).
     */
    std::shared_ptr<const SimResult>
    getOrCompute(const SimKey &key,
                 const std::function<SimResult()> &compute);

    /** Lookup without simulating; null when absent. Counts a hit. */
    std::shared_ptr<const SimResult> find(const SimKey &key);

    /** Entries currently resident. */
    std::size_t size() const;

    /** Hit/miss/eviction counters since construction or clear(). */
    SimCacheStats stats() const;

    /** Drop every entry and reset the counters. */
    void clear();

    /**
     * The process-wide cache every sweep shares by default, so e.g.
     * an explore sweep warms the serving service model's entries.
     */
    static SimCache &global();

    static constexpr std::size_t kDefaultMaxEntries = 4096;

  private:
    struct Entry
    {
        SimKey key;
        std::shared_ptr<const SimResult> result;
    };
    struct KeyHash
    {
        std::size_t operator()(const SimKey &key) const;
    };
    /** One in-progress simulation other threads can wait on. */
    struct Flight
    {
        std::shared_ptr<const SimResult> result;
        std::exception_ptr error;
        bool done = false; ///< under _mutex
    };

    /** Lookup + LRU promote under the lock; no accounting. */
    std::shared_ptr<const SimResult> peekLocked(const SimKey &key);
    /** Lookup under the lock; promotes and counts a hit or miss. */
    std::shared_ptr<const SimResult> lookupLocked(const SimKey &key);
    void countHitLocked();
    void countMissLocked();
    /** Insert under the lock; evicts LRU entries past capacity. */
    std::shared_ptr<const SimResult>
    insertLocked(const SimKey &key,
                 std::shared_ptr<const SimResult> result);

    mutable std::mutex _mutex;
    std::condition_variable _flightDone; ///< any flight completed
    std::list<Entry> _lru; ///< front = most recently used
    std::unordered_map<SimKey, std::list<Entry>::iterator, KeyHash>
        _index;
    std::unordered_map<SimKey, std::shared_ptr<Flight>, KeyHash>
        _inflight;
    std::size_t _maxEntries;
    SimCacheStats _stats;
};

} // namespace npusim
} // namespace supernpu

#endif // SUPERNPU_NPUSIM_SIM_CACHE_HH
