/**
 * @file
 * Weight-mapping generation — the first stage of the paper's Fig. 14
 * simulator pipeline ("the simulator analyzes all required weight
 * mappings"). A layer's filters fold over the PE array: the R*S*C
 * weights of one filter tile down the array height (row folds), and
 * filters spread across width * registers columns (column folds).
 *
 * The cycle simulator consumes the plan mapping by mapping; the plan
 * itself carries enough information to verify global conservation
 * properties (every weight mapped exactly once, every MAC covered).
 */

#ifndef SUPERNPU_NPUSIM_MAPPING_HH
#define SUPERNPU_NPUSIM_MAPPING_HH

#include <cstdint>
#include <vector>

#include "dnn/layer.hh"
#include "estimator/npu_config.hh"

namespace supernpu {
namespace npusim {

/** One stationary-weight residency of the PE array. */
struct WeightMapping
{
    std::uint64_t colFold = 0; ///< filter-group index
    std::uint64_t rowFold = 0; ///< filter-depth tile index

    std::uint64_t activeRows = 0;    ///< occupied PE rows
    std::uint64_t activeFilters = 0; ///< filters resident (regs incl.)
    std::uint64_t activeCols = 0;    ///< occupied PE columns
    std::uint64_t regsUsed = 0;      ///< weight registers in use

    /** Weights loaded for this mapping, bytes (8-bit weights). */
    std::uint64_t weightBytes() const
    {
        return activeRows * activeCols * regsUsed;
    }

    /** First tile of each filter group (no psums to re-inject). */
    bool firstRowFold() const { return rowFold == 0; }
    /** First filter group (the ifmap's first use this layer). */
    bool firstColFold() const { return colFold == 0; }
};

/** The complete mapping sequence for one layer on one array. */
struct MappingPlan
{
    std::uint64_t rowFolds = 0;
    std::uint64_t colFolds = 0;
    bool depthwise = false;
    std::vector<WeightMapping> mappings; ///< column-major order

    /** Build the plan for a layer on an architecture. */
    static MappingPlan build(const dnn::Layer &layer,
                             const estimator::NpuConfig &config);

    /** Total weight bytes across the plan (== the layer's weights). */
    std::uint64_t totalWeightBytes() const;

    /**
     * MACs the plan executes for `positions` output positions and a
     * batch (== layer.macCount() * batch when the plan is sound).
     */
    std::uint64_t totalMacs(std::uint64_t positions,
                            std::uint64_t batch) const;
};

} // namespace npusim
} // namespace supernpu

#endif // SUPERNPU_NPUSIM_MAPPING_HH
