/**
 * @file
 * Per-mapping execution trace — the paper's Fig. 14 "access trace
 * analyzer" as a recordable artifact: one event per weight mapping
 * with its categorized cycle costs, exportable as CSV for external
 * tooling.
 */

#ifndef SUPERNPU_NPUSIM_TRACE_HH
#define SUPERNPU_NPUSIM_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace supernpu {
namespace npusim {

/** One weight-mapping residency's costs. */
struct MappingTraceEvent
{
    std::string layer;
    std::uint64_t colFold = 0;
    std::uint64_t rowFold = 0;

    std::uint64_t weightLoadCycles = 0;
    std::uint64_t ifmapFillCycles = 0;
    std::uint64_t ifmapRewindCycles = 0;
    std::uint64_t psumMoveCycles = 0;
    std::uint64_t computeCycles = 0;
    std::uint64_t stallCycles = 0;
    std::uint64_t macOps = 0;

    /** All cycles of the mapping. */
    std::uint64_t totalCycles() const
    {
        return weightLoadCycles + ifmapFillCycles + ifmapRewindCycles +
               psumMoveCycles + computeCycles + stallCycles;
    }
};

/** Collects mapping events during a simulation. */
class TraceRecorder
{
  public:
    /** Append one event. */
    void record(MappingTraceEvent event);

    /** Recorded events in execution order. */
    const std::vector<MappingTraceEvent> &events() const
    {
        return _events;
    }

    /** Drop all recorded events. */
    void clear() { _events.clear(); }

    /** Render as CSV with a header row. */
    std::string csv() const;

  private:
    std::vector<MappingTraceEvent> _events;
};

} // namespace npusim
} // namespace supernpu

#endif // SUPERNPU_NPUSIM_TRACE_HH
