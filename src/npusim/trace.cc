/**
 * @file
 * Trace recorder implementation.
 */

#include "trace.hh"

#include <cstdio>

namespace supernpu {
namespace npusim {

void
TraceRecorder::record(MappingTraceEvent event)
{
    _events.push_back(std::move(event));
}

std::string
TraceRecorder::csv() const
{
    std::string out =
        "layer,col_fold,row_fold,weight_load,ifmap_fill,ifmap_rewind,"
        "psum_move,compute,stall,macs\n";
    char line[256];
    for (const auto &e : _events) {
        std::snprintf(line, sizeof(line),
                      "%s,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,"
                      "%llu\n",
                      e.layer.c_str(),
                      (unsigned long long)e.colFold,
                      (unsigned long long)e.rowFold,
                      (unsigned long long)e.weightLoadCycles,
                      (unsigned long long)e.ifmapFillCycles,
                      (unsigned long long)e.ifmapRewindCycles,
                      (unsigned long long)e.psumMoveCycles,
                      (unsigned long long)e.computeCycles,
                      (unsigned long long)e.stallCycles,
                      (unsigned long long)e.macOps);
        out += line;
    }
    return out;
}

} // namespace npusim
} // namespace supernpu
