/**
 * @file
 * Result records of the SFQ-NPU cycle-level performance simulator.
 */

#ifndef SUPERNPU_NPUSIM_RESULT_HH
#define SUPERNPU_NPUSIM_RESULT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace supernpu {
namespace npusim {

/**
 * Categorized preparation cycles (the paper's Fig. 14 trace/stall
 * analyzers): every prep cycle the simulator charges lands in
 * exactly one of these buckets.
 */
struct PrepBreakdown
{
    std::uint64_t weightLoad = 0;   ///< DRAM->weight buffer->array
    std::uint64_t ifmapFill = 0;    ///< first-use buffer fills
    std::uint64_t ifmapRewind = 0;  ///< reuse recirculation
    std::uint64_t psumMove = 0;     ///< inter/intra output-buffer moves
    std::uint64_t outputFlush = 0;  ///< forced drains to DRAM
    std::uint64_t outputHandoff = 0;///< on-chip layer-to-layer moves

    /** Sum of every bucket. */
    std::uint64_t total() const
    {
        return weightLoad + ifmapFill + ifmapRewind + psumMove +
               outputFlush + outputHandoff;
    }

    /** Accumulate another breakdown. */
    void add(const PrepBreakdown &other);
};

/** Cycle and activity accounting for one layer. */
struct LayerResult
{
    std::string layerName;

    std::uint64_t computeCycles = 0; ///< PE array streaming cycles
    std::uint64_t prepCycles = 0;    ///< buffer fill/move/drain/weights
    std::uint64_t memoryStallCycles = 0; ///< DRAM-bandwidth exposed
    PrepBreakdown prep;              ///< categorized prep cycles

    std::uint64_t macOps = 0;        ///< MACs executed (batch included)
    std::uint64_t weightMappings = 0;///< mappings this layer needed
    std::uint64_t dramBytes = 0;     ///< off-chip traffic
    // DRAM traffic split by stream; the three always sum to
    // dramBytes (audited by obs/audit.hh).
    std::uint64_t dramWeightBytes = 0;
    std::uint64_t dramIfmapBytes = 0;
    std::uint64_t dramOutputBytes = 0;
    /** The layer's outputs stayed on chip for the next layer. */
    bool outputOnChip = false;
    /**
     * Compute cycles of the layer's last weight mapping — the window
     * the *next* layer's first weight fetch can hide behind when
     * double buffering is on.
     */
    std::uint64_t lastMappingComputeCycles = 0;

    // Activity counters for the power model.
    std::uint64_t ifmapShiftChunkCycles = 0; ///< chunk-shift events
    std::uint64_t outputShiftChunkCycles = 0;
    std::uint64_t dauWordsForwarded = 0;
    std::uint64_t nwHops = 0;

    /** All cycles of this layer. */
    std::uint64_t totalCycles() const
    {
        return computeCycles + prepCycles + memoryStallCycles;
    }
};

/** Whole-network simulation result. */
struct SimResult
{
    std::string networkName;
    std::string configName;
    int batch = 1;
    double frequencyGhz = 0.0;

    std::vector<LayerResult> layers;

    std::uint64_t totalCycles = 0;
    std::uint64_t computeCycles = 0;
    std::uint64_t prepCycles = 0;
    std::uint64_t memoryStallCycles = 0;
    PrepBreakdown prep;
    std::uint64_t macOps = 0;
    std::uint64_t dramBytes = 0;
    // Per-stream DRAM totals; sum to dramBytes (see LayerResult).
    std::uint64_t dramWeightBytes = 0;
    std::uint64_t dramIfmapBytes = 0;
    std::uint64_t dramOutputBytes = 0;

    std::uint64_t ifmapShiftChunkCycles = 0;
    std::uint64_t outputShiftChunkCycles = 0;
    std::uint64_t dauWordsForwarded = 0;
    std::uint64_t nwHops = 0;

    // --- fault-injection accounting (src/reliability) ---------------
    // Filled only by the reliability injector; a clean simulation
    // leaves both at zero and every other field untouched, so fault
    // support costs nothing when injection is off.
    /** Transient SFQ fault events charged against this run. */
    std::uint64_t faultEventsInjected = 0;
    /**
     * Cycles re-spent redoing weight mappings whose results a
     * transient fault corrupted. Not part of totalCycles: the clean
     * run's cycle counts stay comparable across fault rates.
     */
    std::uint64_t faultRecomputeCycles = 0;

    /** Wall-clock seconds for the whole batch. */
    double seconds() const;
    /** Seconds including fault-recompute redo work. */
    double secondsWithRecompute() const;
    /**
     * Wall-clock seconds per single inference at this batch size —
     * the per-batch service time divided across the batch. This is
     * the quantity the serving simulator's batch service model is
     * built from.
     */
    double secondsPerInference() const;
    /** Steady-state inferences per second at this batch size. */
    double inferencesPerSec() const;
    /** Effective throughput, MAC/s. */
    double effectiveMacPerSec() const;
    /** Effective MACs per cycle divided by the PE count. */
    double peUtilization(int pe_count) const;
    /** Fraction of cycles spent outside computation. */
    double preparationFraction() const;
};

} // namespace npusim
} // namespace supernpu

#endif // SUPERNPU_NPUSIM_RESULT_HH
