/**
 * @file
 * The SFQ-NPU cycle-level performance simulator (Section IV-B,
 * Fig. 14): generates the weight mappings for each layer, then
 * accounts preparation cycles (weight loads, buffer fills, intra-
 * and inter-buffer moves, drains), computation cycles, and exposed
 * memory stalls per mapping.
 *
 * Cost model summary (all shapes derive from the Fig. 16 / Fig. 18
 * discussion):
 *  - weight-stationary mapping: a filter's R*S*C weights fold over
 *    the PE array height; filters spread over width * regs columns.
 *  - shift-register buffers move data at one entry per row per
 *    cycle; moving data across a buffer costs its (chunk) length.
 *  - separate psum/ofmap buffers pay a full-length inter-buffer
 *    move per row-fold transition; the integrated buffer swaps
 *    chunk roles instead.
 *  - undivided output buffers flush to DRAM at every column-fold
 *    change (Fig. 18(a)); divided buffers accumulate in spare
 *    chunks.
 *  - ifmap data that fits on chip pays a rewind (chunk or full row)
 *    when reused; data that does not fit re-streams from DRAM and
 *    exposes any bandwidth shortfall as stall cycles.
 */

#ifndef SUPERNPU_NPUSIM_SIM_HH
#define SUPERNPU_NPUSIM_SIM_HH

#include "dnn/layer.hh"
#include "estimator/npu_estimator.hh"
#include "result.hh"
#include "trace.hh"

namespace supernpu {
namespace npusim {

/** Cycle-level simulator for one estimated NPU instance. */
class NpuSimulator
{
  public:
    /** @param estimate Output of NpuEstimator::estimate(). */
    explicit NpuSimulator(const estimator::NpuEstimate &estimate);

    /**
     * Simulate one layer at the given batch size.
     *
     * @param ifmap_on_chip The layer's input already sits in the
     *        ifmap buffer (handed off by the previous layer), so no
     *        DRAM fill is needed when it fits.
     * @param prev_compute_cycles Compute cycles of the previously
     *        simulated weight mapping (the previous layer's last),
     *        which the first weight fetch of this layer can overlap
     *        when double buffering is on. 0 — no overlap — for the
     *        first layer of a network.
     */
    LayerResult simulateLayer(
        const dnn::Layer &layer, int batch,
        bool ifmap_on_chip = false,
        std::uint64_t prev_compute_cycles = 0) const;

    /** Simulate a whole network at the given batch size. */
    SimResult run(const dnn::Network &network, int batch) const;

    /** The estimate this simulator was built from. */
    const estimator::NpuEstimate &estimate() const { return _est; }

    /**
     * Attach a trace recorder: every subsequent simulation appends
     * one MappingTraceEvent per weight mapping (layer-end flushes
     * and hand-offs are aggregate costs and are not per-mapping).
     * Pass nullptr to detach.
     */
    void setTrace(TraceRecorder *trace) { _trace = trace; }

  private:
    /** DRAM cycles needed to move `bytes` at the NPU clock. */
    double dramCycles(double bytes) const;

    estimator::NpuEstimate _est;
    TraceRecorder *_trace = nullptr;
};

} // namespace npusim
} // namespace supernpu

#endif // SUPERNPU_NPUSIM_SIM_HH
