/**
 * @file
 * Maximum-batch solver (the paper's Table II policy): the largest
 * input batch whose per-layer working set the on-chip buffers can
 * hold without additional off-chip memory accesses, accounting for
 * the buffer-underutilization rules of Fig. 18.
 */

#ifndef SUPERNPU_NPUSIM_BATCH_HH
#define SUPERNPU_NPUSIM_BATCH_HH

#include "dnn/layer.hh"
#include "estimator/npu_estimator.hh"

namespace supernpu {
namespace npusim {

/** Cap the solver applies (the paper evaluates at most batch 30). */
constexpr int batchCap = 30;

/**
 * Usable output-side buffer bytes for one layer: when the layer has
 * fewer filters than the PE array is wide, the unused array columns'
 * output buffer rows are stranded (Fig. 18(b)).
 */
std::uint64_t usableOutputBytes(const estimator::NpuConfig &config,
                                const dnn::Layer &layer);

/**
 * Largest batch of one layer's ifmap data the ifmap buffer can hold.
 * Undivided buffers dedicate one row per input channel, stranding
 * capacity when channels are few or rows overflow (Fig. 18(c));
 * divided buffers allocate at chunk granularity.
 */
int maxIfmapBatch(const estimator::NpuConfig &config,
                  const estimator::NpuEstimate &estimate,
                  const dnn::Layer &layer);

/**
 * The Table II batch for an SFQ NPU configuration: the largest batch
 * every layer of the network can hold on-chip, clamped to
 * [1, batchCap]. A result of 1 may still imply off-chip re-streaming
 * for layers that do not fit even one image (the Baseline case).
 */
int maxBatch(const estimator::NpuConfig &config,
             const estimator::NpuEstimate &estimate,
             const dnn::Network &network);

/**
 * The Table II batch for a unified-buffer CMOS NPU (the TPU column):
 * buffer bytes divided by the largest layer's ifmap+ofmap footprint.
 */
int maxBatchUnified(std::uint64_t buffer_bytes,
                    const dnn::Network &network);

} // namespace npusim
} // namespace supernpu

#endif // SUPERNPU_NPUSIM_BATCH_HH
