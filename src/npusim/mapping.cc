/**
 * @file
 * Weight-mapping plan construction.
 */

#include "mapping.hh"

#include <algorithm>

#include "common/logging.hh"

namespace supernpu {
namespace npusim {

namespace {

std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace

MappingPlan
MappingPlan::build(const dnn::Layer &layer,
                   const estimator::NpuConfig &config)
{
    layer.check();
    config.check();

    MappingPlan plan;
    plan.depthwise = layer.kind == dnn::LayerKind::DepthwiseConv;

    const std::uint64_t array_w = (std::uint64_t)config.peWidth;
    const std::uint64_t array_h = (std::uint64_t)config.peHeight;
    const std::uint64_t regs = (std::uint64_t)config.regsPerPe;

    const std::uint64_t filter_len = layer.weightsPerFilter();
    const std::uint64_t num_filters =
        plan.depthwise ? (std::uint64_t)layer.inChannels
                       : (std::uint64_t)layer.outChannels;
    const std::uint64_t filters_per_mapping =
        plan.depthwise ? 1 : array_w * regs;

    plan.rowFolds = ceilDiv(filter_len, array_h);
    plan.colFolds = ceilDiv(num_filters, filters_per_mapping);
    plan.mappings.reserve(plan.rowFolds * plan.colFolds);

    for (std::uint64_t c = 0; c < plan.colFolds; ++c) {
        const std::uint64_t active_filters =
            std::min(num_filters - c * filters_per_mapping,
                     filters_per_mapping);
        for (std::uint64_t r = 0; r < plan.rowFolds; ++r) {
            WeightMapping mapping;
            mapping.colFold = c;
            mapping.rowFold = r;
            mapping.activeRows =
                std::min(filter_len - r * array_h, array_h);
            mapping.activeFilters = active_filters;
            mapping.activeCols =
                plan.depthwise ? 1
                               : std::min(active_filters, array_w);
            mapping.regsUsed =
                plan.depthwise ? 1
                               : ceilDiv(active_filters, array_w);
            plan.mappings.push_back(mapping);
        }
    }
    return plan;
}

std::uint64_t
MappingPlan::totalWeightBytes() const
{
    std::uint64_t total = 0;
    for (const auto &mapping : mappings) {
        // Only the truly resident filters carry weights; the last
        // column fold's final register bank may be partial.
        total += mapping.activeRows * mapping.activeFilters;
    }
    return total;
}

std::uint64_t
MappingPlan::totalMacs(std::uint64_t positions,
                       std::uint64_t batch) const
{
    std::uint64_t total = 0;
    for (const auto &mapping : mappings) {
        total += positions * batch * mapping.activeRows *
                 mapping.activeFilters;
    }
    return total;
}

} // namespace npusim
} // namespace supernpu
