/**
 * @file
 * Cycle-level simulator implementation.
 */

#include "sim.hh"

#include <algorithm>
#include <cmath>

#include "batch.hh"
#include "common/logging.hh"
#include "mapping.hh"
#include "perf/profile.hh"

namespace supernpu {
namespace npusim {

namespace {

/** Cycles to switch integrated-buffer chunk roles (mux reconfig). */
constexpr std::uint64_t chunkSwitchCycles = 4;

} // namespace

NpuSimulator::NpuSimulator(const estimator::NpuEstimate &estimate)
    : _est(estimate)
{
    SUPERNPU_ASSERT(_est.frequencyGhz > 0, "estimate has no frequency");
}

double
NpuSimulator::dramCycles(double bytes) const
{
    const double bytes_per_second = _est.config.memoryBandwidth;
    const double cycles_per_byte =
        _est.frequencyGhz * 1e9 / bytes_per_second;
    return bytes * cycles_per_byte;
}

LayerResult
NpuSimulator::simulateLayer(const dnn::Layer &layer, int batch,
                            bool ifmap_on_chip,
                            std::uint64_t prev_compute_cycles) const
{
    SUPERNPU_ASSERT(batch >= 1, "bad batch");
    layer.check();

    const estimator::NpuConfig &cfg = _est.config;
    const bool depthwise = layer.kind == dnn::LayerKind::DepthwiseConv;

    const std::uint64_t array_w = cfg.peWidth;
    const std::uint64_t array_h = cfg.peHeight;
    const int pe_stages = 2 * cfg.bitWidth - 1;

    const MappingPlan plan = MappingPlan::build(layer, cfg);
    const std::uint64_t row_folds = plan.rowFolds;
    const std::uint64_t col_folds = plan.colFolds;

    const std::uint64_t positions = layer.outputPositions();
    const std::uint64_t batch_u = (std::uint64_t)batch;

    // Shift-in/out rates: one byte per buffer row per cycle.
    const double ifmap_fill_rate = (double)array_h; // bytes/cycle
    const double output_drain_rate = (double)array_w;

    // Does the batch's ifmap working set stay on chip?
    const bool ifmap_fits = maxIfmapBatch(cfg, _est, layer) >= batch;

    // Does the batch's output working set stay on chip?
    const std::uint64_t out_bytes_total =
        layer.ofmapBytes() * batch_u;
    const bool output_fits =
        usableOutputBytes(cfg, layer) >=
        (depthwise ? out_bytes_total / (std::uint64_t)layer.outChannels
                   : out_bytes_total);

    LayerResult res;
    res.layerName = layer.name;

    // Per-mapping ifmap slice: the channels covered by one row fold.
    const double slice_bytes_per_fold =
        (double)layer.ifmapBytes() * (double)batch_u /
        (double)row_folds / (depthwise ? (double)layer.inChannels : 1.0);

    // Compute cycles of the mapping simulated immediately before the
    // current one — what a double-buffered weight fetch hides behind.
    // Seeded by the caller with the previous layer's last mapping.
    std::uint64_t prev_compute = prev_compute_cycles;

    for (const WeightMapping &mapping : plan.mappings) {
        const PrepBreakdown prep_before = res.prep;
        const std::uint64_t compute_before = res.computeCycles;
        const std::uint64_t stall_before = res.memoryStallCycles;
        const std::uint64_t macs_before = res.macOps;
        {
            const std::uint64_t active_rows = mapping.activeRows;
            const std::uint64_t active_filters = mapping.activeFilters;
            const std::uint64_t regs_used = mapping.regsUsed;
            const std::uint64_t r = mapping.rowFold;
            const std::uint64_t c = mapping.colFold;
            (void)c;
            ++res.weightMappings;

            // --- weight load (DRAM -> weight buffer -> array) ----
            const std::uint64_t weight_bytes = mapping.weightBytes();
            const double weight_shift = (double)(array_h + array_w);
            double weight_dram = dramCycles((double)weight_bytes);
            if (cfg.weightDoubleBuffering) {
                // The fetch overlapped the *previous* mapping's
                // computation; only the uncovered remainder is
                // exposed (the buffer-to-array shift never hides).
                // With nothing simulated before — the first mapping
                // of the first layer — nothing hides.
                weight_dram = std::max(
                    0.0, weight_dram - (double)prev_compute);
            }
            const std::uint64_t weight_cycles = (std::uint64_t)std::max(
                weight_shift, weight_dram);
            res.prepCycles += weight_cycles;
            res.prep.weightLoad += weight_cycles;
            res.dramBytes += weight_bytes;
            res.dramWeightBytes += weight_bytes;

            // --- ifmap preparation --------------------------------
            const bool first_use = mapping.firstColFold();
            if (ifmap_fits) {
                if (first_use && !ifmap_on_chip) {
                    // Fill this fold's slice from DRAM; the shift-in
                    // and the DRAM transfer overlap.
                    const double fill = std::max(
                        slice_bytes_per_fold / ifmap_fill_rate,
                        dramCycles(slice_bytes_per_fold));
                    res.prepCycles += (std::uint64_t)fill;
                    res.prep.ifmapFill += (std::uint64_t)fill;
                    res.ifmapShiftChunkCycles += (std::uint64_t)(
                        slice_bytes_per_fold / ifmap_fill_rate);
                    res.dramBytes +=
                        (std::uint64_t)slice_bytes_per_fold;
                    res.dramIfmapBytes +=
                        (std::uint64_t)slice_bytes_per_fold;
                } else if (first_use) {
                    // Handed off on chip by the previous layer; the
                    // transfer cost was charged there.
                } else {
                    // Reuse: rewind the held data back to the head.
                    const std::uint64_t rewind =
                        cfg.ifmapDivision > 1 ? _est.ifmapChunkLength
                                              : _est.ifmapRowLength;
                    res.prepCycles += rewind;
                    res.prep.ifmapRewind += rewind;
                    res.ifmapShiftChunkCycles += rewind;
                }
            } else {
                // Streamed from DRAM every mapping; bandwidth
                // shortfall shows up as stall after compute overlap.
                res.dramBytes += (std::uint64_t)slice_bytes_per_fold;
                res.dramIfmapBytes +=
                    (std::uint64_t)slice_bytes_per_fold;
            }

            // --- partial-sum movement between row folds ----------
            if (r > 0) {
                if (cfg.integratedOutputBuffer) {
                    res.prepCycles += chunkSwitchCycles;
                    res.prep.psumMove += chunkSwitchCycles;
                } else {
                    // Shift the psums out of the ofmap buffer and
                    // back into the psum buffer (Fig. 16, step 1).
                    const std::uint64_t move = 2 * _est.outputRowLength;
                    res.prepCycles += move;
                    res.prep.psumMove += move;
                    res.outputShiftChunkCycles += move;
                }
            }

            // --- computation --------------------------------------
            const std::uint64_t compute =
                positions * batch_u * regs_used +
                (std::uint64_t)(array_h + array_w + pe_stages);
            res.computeCycles += compute;
            prev_compute = compute;
            res.macOps +=
                positions * batch_u * active_rows * active_filters;
            res.dauWordsForwarded += positions * batch_u * active_rows;
            // Words delivered over the store-and-forward edge chains.
            res.nwHops += positions * batch_u * active_rows;

            if (!ifmap_fits) {
                const double stream = dramCycles(slice_bytes_per_fold);
                if (stream > (double)compute) {
                    res.memoryStallCycles +=
                        (std::uint64_t)(stream - (double)compute);
                }
            }
        }

        if (_trace) {
            MappingTraceEvent event;
            event.layer = layer.name;
            event.colFold = mapping.colFold;
            event.rowFold = mapping.rowFold;
            event.weightLoadCycles =
                res.prep.weightLoad - prep_before.weightLoad;
            event.ifmapFillCycles =
                res.prep.ifmapFill - prep_before.ifmapFill;
            event.ifmapRewindCycles =
                res.prep.ifmapRewind - prep_before.ifmapRewind;
            event.psumMoveCycles =
                res.prep.psumMove - prep_before.psumMove;
            event.computeCycles = res.computeCycles - compute_before;
            event.stallCycles = res.memoryStallCycles - stall_before;
            event.macOps = res.macOps - macs_before;
            _trace->record(std::move(event));
        }

        // --- ofmap disposition at column-fold completion -----------
        if (mapping.rowFold + 1 < row_folds)
            continue;
        const std::uint64_t fold_out_bytes =
            positions * batch_u * mapping.activeFilters;
        if (!output_fits ||
            (!cfg.integratedOutputBuffer && cfg.outputDivision <= 1 &&
             col_folds > 1)) {
            // Forced flush to DRAM (Fig. 18(a)) or capacity overflow.
            const double drain =
                std::max((double)fold_out_bytes / output_drain_rate,
                         dramCycles((double)fold_out_bytes));
            res.prepCycles += (std::uint64_t)drain;
            res.prep.outputFlush += (std::uint64_t)drain;
            res.outputShiftChunkCycles += (std::uint64_t)(
                (double)fold_out_bytes / output_drain_rate);
            res.dramBytes += fold_out_bytes;
            res.dramOutputBytes += fold_out_bytes;
        }
    }
    res.lastMappingComputeCycles = prev_compute;

    // --- layer output hand-off ------------------------------------
    // Outputs that stayed on chip shift over to the ifmap buffer for
    // the next layer (or drain to DRAM at the network boundary; the
    // shift cost is the same).
    if (output_fits &&
        (cfg.integratedOutputBuffer || cfg.outputDivision > 1 ||
         col_folds <= 1)) {
        const std::uint64_t handoff = (std::uint64_t)(
            (double)out_bytes_total / output_drain_rate);
        res.prepCycles += handoff;
        res.prep.outputHandoff += handoff;
        res.outputShiftChunkCycles += handoff;
        res.outputOnChip = true;
    }

    return res;
}

SimResult
NpuSimulator::run(const dnn::Network &network, int batch) const
{
    perf::Scope perf_scope("npusim.run");
    network.check();

    SimResult result;
    result.networkName = network.name;
    result.configName = _est.config.name;
    result.batch = batch;
    result.frequencyGhz = _est.frequencyGhz;

    bool ifmap_on_chip = false; // the first layer's input is in DRAM
    std::uint64_t prev_compute = 0; // nothing precedes the first fetch
    for (const auto &layer : network.layers) {
        LayerResult lr =
            simulateLayer(layer, batch, ifmap_on_chip, prev_compute);
        ifmap_on_chip = lr.outputOnChip;
        prev_compute = lr.lastMappingComputeCycles;
        result.computeCycles += lr.computeCycles;
        result.prepCycles += lr.prepCycles;
        result.prep.add(lr.prep);
        result.memoryStallCycles += lr.memoryStallCycles;
        result.macOps += lr.macOps;
        result.dramBytes += lr.dramBytes;
        result.dramWeightBytes += lr.dramWeightBytes;
        result.dramIfmapBytes += lr.dramIfmapBytes;
        result.dramOutputBytes += lr.dramOutputBytes;
        result.ifmapShiftChunkCycles += lr.ifmapShiftChunkCycles;
        result.outputShiftChunkCycles += lr.outputShiftChunkCycles;
        result.dauWordsForwarded += lr.dauWordsForwarded;
        result.nwHops += lr.nwHops;
        result.layers.push_back(std::move(lr));
    }
    result.totalCycles = result.computeCycles + result.prepCycles +
                         result.memoryStallCycles;
    if (perf::enabled()) {
        static perf::Counter &runs = perf::counter("npusim.runs");
        static perf::Counter &layers =
            perf::counter("npusim.layerSims");
        runs.add(1);
        layers.add(result.layers.size());
    }
    return result;
}

} // namespace npusim
} // namespace supernpu
