/**
 * @file
 * SimResult derived metrics.
 */

#include "result.hh"

#include "common/logging.hh"

namespace supernpu {
namespace npusim {

void
PrepBreakdown::add(const PrepBreakdown &other)
{
    weightLoad += other.weightLoad;
    ifmapFill += other.ifmapFill;
    ifmapRewind += other.ifmapRewind;
    psumMove += other.psumMove;
    outputFlush += other.outputFlush;
    outputHandoff += other.outputHandoff;
}

double
SimResult::seconds() const
{
    SUPERNPU_ASSERT(frequencyGhz > 0, "result has no frequency");
    return (double)totalCycles / (frequencyGhz * 1e9);
}

double
SimResult::secondsWithRecompute() const
{
    SUPERNPU_ASSERT(frequencyGhz > 0, "result has no frequency");
    return (double)(totalCycles + faultRecomputeCycles) /
           (frequencyGhz * 1e9);
}

double
SimResult::secondsPerInference() const
{
    SUPERNPU_ASSERT(batch > 0, "result has no batch");
    return seconds() / (double)batch;
}

double
SimResult::inferencesPerSec() const
{
    const double per_inference = secondsPerInference();
    return per_inference > 0 ? 1.0 / per_inference : 0.0;
}

double
SimResult::effectiveMacPerSec() const
{
    const double s = seconds();
    return s > 0 ? (double)macOps / s : 0.0;
}

double
SimResult::peUtilization(int pe_count) const
{
    SUPERNPU_ASSERT(pe_count > 0, "bad PE count");
    if (totalCycles == 0)
        return 0.0;
    return (double)macOps / ((double)totalCycles * (double)pe_count);
}

double
SimResult::preparationFraction() const
{
    if (totalCycles == 0)
        return 0.0;
    return (double)(prepCycles + memoryStallCycles) / (double)totalCycles;
}

} // namespace npusim
} // namespace supernpu
