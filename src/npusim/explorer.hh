/**
 * @file
 * Design-space explorer: automates the Section V workflow — sweep
 * architecture knobs (array width, buffer division, registers per
 * PE), score each candidate over a workload set at its solved batch,
 * and rank by a chosen objective. Inoperable candidates (design-rule
 * errors) are skipped with a note.
 *
 * Candidates are independent, so the sweep fans out over a
 * common/parallel ThreadPool (the `jobs` argument) and memoizes every
 * cycle simulation in a npusim::SimCache. The parallel sweep is
 * bit-identical to the serial one: candidates are evaluated into
 * submission-order slots and ranked by the same stable sort, and the
 * per-candidate workload loop never changes order, so
 * explore(space, obj, 8) returns byte-for-byte the vector of
 * explore(space, obj, 1).
 */

#ifndef SUPERNPU_NPUSIM_EXPLORER_HH
#define SUPERNPU_NPUSIM_EXPLORER_HH

#include <string>
#include <vector>

#include "common/parallel.hh"
#include "dnn/layer.hh"
#include "estimator/npu_estimator.hh"
#include "partition/link_model.hh"
#include "power/power.hh"
#include "sim_cache.hh"

namespace supernpu {
namespace npusim {

/** Ranking objective. */
enum class Objective
{
    Throughput,     ///< average effective MAC/s
    PerfPerWatt,    ///< MAC/s per chip watt (cooling excluded)
    PerfPerArea,    ///< MAC/s per mm^2 at the native node
};

/** Name of an objective for reports. */
const char *objectiveName(Objective objective);

/** The swept knob ranges. */
struct ExplorationSpace
{
    std::vector<int> widths = {256, 128, 64, 32};
    std::vector<int> divisions = {16, 64, 256};
    std::vector<int> regsPerPe = {1, 4, 8};

    /**
     * Total on-chip buffer MB granted at each width (the Fig. 21
     * resource-balancing points); must parallel `widths`.
     */
    std::vector<int> bufferMbForWidth = {24, 38, 46, 50};

    /**
     * Pipeline-group sizes to co-explore (src/partition): each knob
     * point is also scored as a K-chip layer-wise pipeline for every
     * K here. The default {1} reproduces the single-chip sweep byte
     * for byte; K > 1 candidates are named with a "/k<K>" suffix,
     * score steady-state pipeline throughput, and charge K chips of
     * power.
     */
    std::vector<int> pipelineStages = {1};

    /**
     * Data-parallel replica counts to co-explore (src/sharding):
     * each knob point is also scored with its solved batch split
     * across R replicas. The default {1} leaves the sweep untouched
     * byte for byte; R > 1 candidates are named with a "/dp<R>"
     * suffix and charge R times the chips.
     */
    std::vector<int> dataParallel = {1};

    /**
     * Tensor-parallel shard counts to co-explore (src/sharding):
     * each knob point is also scored with every layer's ofmap
     * channels split across T chips. The default {1} leaves the
     * sweep untouched byte for byte; T > 1 candidates are named with
     * a "/tp<T>" suffix and charge T times the chips.
     */
    std::vector<int> tensorShards = {1};

    /**
     * Inter-chip link of the K > 1 pipeline and R·T > 1 sharded
     * candidates.
     */
    partition::LinkConfig link;
};

/** One evaluated candidate. */
struct Candidate
{
    estimator::NpuConfig config;
    /** Chips in the candidate's pipeline group; 1 = single chip. */
    int pipelineStages = 1;
    /** Data-parallel replicas; 1 = unreplicated. */
    int dataParallel = 1;
    /** Tensor-parallel shards per replica; 1 = unsharded. */
    int tensorShards = 1;
    double avgMacPerSec = 0.0;
    /** Power of the whole candidate (all R·T·K chips). */
    double chipPowerW = 0.0;
    /** Area of the whole candidate (all R·T·K chips). */
    double areaMm2 = 0.0;
    double score = 0.0;
    bool operable = true;
    std::string note; ///< first design-rule error when inoperable
};

/** The exploration driver. */
class DesignSpaceExplorer
{
  public:
    /**
     * @param lib Cell library (fixes the device/technology point).
     * @param workloads Networks to average the score over.
     */
    DesignSpaceExplorer(const sfq::CellLibrary &lib,
                        std::vector<dnn::Network> workloads);

    /**
     * Evaluate every candidate in the space and return them ranked
     * best-first by the objective (inoperable candidates last).
     *
     * @param jobs Worker parallelism: 1 = serial (the reference
     *        path), 0 = hardware concurrency. Any value returns the
     *        identical ranked vector.
     */
    std::vector<Candidate> explore(const ExplorationSpace &space,
                                   Objective objective,
                                   int jobs = 1) const;

    /**
     * Same sweep on a caller-owned pool, so the caller can fold the
     * pool's work counters (ThreadPool::stats()) into a run ledger.
     */
    std::vector<Candidate> explore(const ExplorationSpace &space,
                                   Objective objective,
                                   ThreadPool &pool) const;

    /**
     * Memoization cache for the candidates' cycle simulations;
     * defaults to SimCache::global() so repeated sweeps (and the
     * serving service model) share results. Pass nullptr to simulate
     * every point afresh — the honest mode for scaling benchmarks.
     */
    void setCache(SimCache *cache) { _cache = cache; }

    /** Build the candidate config for one knob setting. */
    static estimator::NpuConfig makeConfig(int width, int division,
                                           int regs, int buffer_mb);

  private:
    /** Score one knob point (the parallel unit of work). */
    Candidate evaluate(const estimator::NpuEstimator &npu_estimator,
                       const estimator::NpuConfig &config,
                       int pipeline_stages, int data_parallel,
                       int tensor_shards,
                       const partition::LinkConfig &link,
                       Objective objective) const;

    const sfq::CellLibrary &_lib;
    std::vector<dnn::Network> _workloads;
    SimCache *_cache = &SimCache::global();
};

} // namespace npusim
} // namespace supernpu

#endif // SUPERNPU_NPUSIM_EXPLORER_HH
