/**
 * @file
 * Error-propagation implementation: per-layer bit-flip injection
 * into the golden functional path.
 */

#include "error_propagation.hh"

#include <cmath>
#include <cstdlib>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "functional/inference.hh"

namespace supernpu {
namespace reliability {

namespace {

// Sub-streams of the report seed (distinct from the weight stream,
// which uses the seed directly).
constexpr std::uint64_t kInputStream = 0x1a9b0;
constexpr std::uint64_t kFlipStreamBase = 0x1a9b1;

/**
 * Flip one bit in `flips` randomly chosen raw-conv outputs. The bit
 * position is uniform over the live psum magnitude — everything up
 * to `max_bit` (the layer's requantization shift plus the int8
 * width), so flips below the shift demonstrate the masking the
 * requantizer provides and flips above it survive into the
 * activations.
 */
void
injectFlips(functional::Tensor3 &conv, std::uint64_t flips, Rng &rng,
            int max_bit)
{
    for (std::uint64_t i = 0; i < flips; ++i) {
        const int c = (int)rng.uniformInt(0, conv.channels() - 1);
        const int y = (int)rng.uniformInt(0, conv.height() - 1);
        const int x = (int)rng.uniformInt(0, conv.width() - 1);
        const int bit = (int)rng.uniformInt(0, max_bit);
        std::uint32_t bits = (std::uint32_t)conv.at(c, y, x);
        bits ^= 1u << bit;
        conv.at(c, y, x) = (std::int32_t)bits;
    }
}

/** Compare post-op activations element-wise. */
LayerErrorStats
compareActivations(const functional::Tensor3 &clean,
                   const functional::Tensor3 &faulted)
{
    SUPERNPU_ASSERT(clean.channels() == faulted.channels() &&
                        clean.height() == faulted.height() &&
                        clean.width() == faulted.width(),
                    "clean/faulted shape divergence");
    LayerErrorStats stats;
    stats.outputs = (std::uint64_t)clean.channels() * clean.height() *
                    clean.width();
    double abs_sum = 0.0;
    for (int c = 0; c < clean.channels(); ++c) {
        for (int y = 0; y < clean.height(); ++y) {
            for (int x = 0; x < clean.width(); ++x) {
                const std::int32_t delta =
                    faulted.at(c, y, x) - clean.at(c, y, x);
                if (delta == 0)
                    continue;
                ++stats.wrongOutputs;
                const std::int32_t mag = std::abs(delta);
                abs_sum += mag;
                stats.maxAbsError = std::max(stats.maxAbsError, mag);
            }
        }
    }
    stats.fracWrong =
        (double)stats.wrongOutputs / (double)stats.outputs;
    stats.meanAbsError = abs_sum / (double)stats.outputs;
    return stats;
}

} // namespace

bool
canPropagate(const dnn::Network &network)
{
    if (network.layers.empty())
        return false;

    int cur_c = network.layers.front().inChannels;
    int cur_h = network.layers.front().inHeight;
    int cur_w = network.layers.front().inWidth;
    bool first = true;
    for (const dnn::Layer &shape : network.layers) {
        if (shape.kind == dnn::LayerKind::FullyConnected &&
            (cur_h > 1 || cur_w > 1)) {
            while (!first && cur_c * cur_h * cur_w > shape.inChannels &&
                   cur_h >= 2) {
                cur_h = (cur_h - 2) / 2 + 1;
                cur_w = (cur_w - 2) / 2 + 1;
            }
            if (cur_c * cur_h * cur_w != shape.inChannels)
                return false;
        } else {
            while (!first && cur_h > shape.inHeight && cur_h >= 2) {
                cur_h = (cur_h - 2) / 2 + 1;
                cur_w = (cur_w - 2) / 2 + 1;
            }
            if (cur_h != shape.inHeight || cur_c != shape.inChannels)
                return false;
        }
        cur_c = shape.outChannels;
        cur_h = shape.outHeight();
        cur_w = shape.outWidth();
        first = false;
    }
    return true;
}

std::uint64_t
ErrorPropagationReport::totalFlips() const
{
    std::uint64_t total = 0;
    for (const LayerErrorStats &stats : layers)
        total += stats.flips;
    return total;
}

const LayerErrorStats &
ErrorPropagationReport::final() const
{
    SUPERNPU_ASSERT(!layers.empty(), "empty error report");
    return layers.back();
}

ErrorPropagationReport
propagateErrors(const dnn::Network &network,
                double flips_per_million_macs, std::uint64_t seed)
{
    network.check();
    SUPERNPU_ASSERT(flips_per_million_macs >= 0,
                    "flip rate must be non-negative");

    Rng weight_rng(seed);
    const functional::InferencePipeline pipeline =
        functional::buildPipeline(network, weight_rng);

    const dnn::Layer &entry = pipeline.layers.front().shape;
    functional::Tensor3 input(entry.inChannels, entry.inHeight,
                              entry.inWidth);
    Rng input_rng(streamSeed(seed, kInputStream));
    input.fillRandom(input_rng);

    ErrorPropagationReport report;
    report.network = network.name;
    report.flipsPerMillionMacs = flips_per_million_macs;
    report.seed = seed;

    functional::Tensor3 clean = input;
    functional::Tensor3 faulted = input;
    for (std::size_t i = 0; i < pipeline.layers.size(); ++i) {
        const functional::InferenceLayer &layer = pipeline.layers[i];
        if (layer.flattenBefore) {
            clean = functional::flattenActivations(clean);
            faulted = functional::flattenActivations(faulted);
        }

        const functional::Tensor3 clean_conv =
            functional::goldenLayerConv(clean, layer);
        functional::Tensor3 faulted_conv =
            functional::goldenLayerConv(faulted, layer);

        const std::uint64_t flips = (std::uint64_t)std::llround(
            (double)layer.shape.macCount() * flips_per_million_macs /
            1e6);
        if (flips > 0) {
            Rng flip_rng(streamSeed(seed, kFlipStreamBase + i));
            injectFlips(faulted_conv, flips, flip_rng,
                        layer.postShift + 7);
        }

        clean = functional::applyPostOps(clean_conv, layer);
        faulted = functional::applyPostOps(faulted_conv, layer);

        LayerErrorStats stats = compareActivations(clean, faulted);
        stats.layer = layer.shape.name;
        stats.flips = flips;
        report.layers.push_back(std::move(stats));
    }
    return report;
}

} // namespace reliability
} // namespace supernpu
