/**
 * @file
 * Deterministic, seeded fault models for SFQ hardware.
 *
 * SuperNPU's performance story assumes fault-free superconducting
 * logic, but the devices it models are notoriously sensitive near
 * the 47+ GHz operating point. Four physically-motivated fault kinds
 * cover the failure modes the SFQ literature treats as first-class:
 *
 *  - PulseDrop: a single flux quantum fails to propagate — a bit
 *    flip inside a PE MAC or psum. Transient; corrupts whatever
 *    computation is in flight on the chip.
 *  - FluxTrap: stray flux pins in a washer loop and biases a region
 *    of the chip off its margin — permanently disabling a PE column
 *    or a shift-register buffer chunk. The array remaps around it
 *    and runs degraded forever after.
 *  - ClockSkew: a timing-margin violation in the clock tree forces
 *    a temporary frequency derate until the clock recovers.
 *  - LinkGlitch: an off-chip link (the 4 K <-> 300 K boundary)
 *    hiccups, stalling the chip's in-flight transfer.
 *
 * Fault arrivals are generated as a FaultSchedule: a sorted, fully
 * materialized event list. Every (chip, kind) pair draws from its
 * own common/rng stream seeded with streamSeed(seed, chip * K +
 * kind), so the schedule is byte-identical regardless of generation
 * order, chip count of *other* chips, or the thread count of a
 * surrounding sweep — the same discipline the parallel explorer
 * uses. Transient kinds support Poisson or bursty (on/off modulated
 * Poisson) arrivals; flux traps are Poisson at a much smaller rate
 * and permanent in effect.
 */

#ifndef SUPERNPU_RELIABILITY_FAULT_MODEL_HH
#define SUPERNPU_RELIABILITY_FAULT_MODEL_HH

#include <cstdint>
#include <vector>

namespace supernpu {
namespace reliability {

/** The SFQ failure modes the fault models cover. */
enum class FaultKind
{
    PulseDrop, ///< transient bit flip in a PE MAC / psum
    FluxTrap,  ///< permanent: PE column or buffer chunk disabled
    ClockSkew, ///< transient frequency derate window
    LinkGlitch,///< off-chip link stall
};

/** Number of fault kinds (stream indexing). */
constexpr int faultKindCount = 4;

/** Stable lowercase name of a fault kind. */
const char *faultKindName(FaultKind kind);

/** What a flux trap disables. */
enum class FluxTrapTarget
{
    PeColumn,    ///< one systolic-array column remapped out
    BufferChunk, ///< one shift-register buffer chunk lost
};

/** One scheduled hardware fault. */
struct FaultEvent
{
    double timeSec = 0.0;
    FaultKind kind = FaultKind::PulseDrop;
    int chip = 0;
    /**
     * Kind-specific magnitude: service-time multiplier for FluxTrap
     * (>= 1) and ClockSkew (>= 1), stall seconds for LinkGlitch,
     * unused (0) for PulseDrop.
     */
    double magnitude = 0.0;
    /** ClockSkew derate window length, seconds; 0 otherwise. */
    double durationSec = 0.0;
    /** FluxTrap target; PeColumn otherwise ignored. */
    FluxTrapTarget trapTarget = FluxTrapTarget::PeColumn;
};

/** Arrival shape of the transient fault kinds. */
enum class FaultArrival
{
    Poisson, ///< memoryless at the configured rate
    Burst,   ///< on/off modulated Poisson, same long-run rate
};

/** Stable lowercase name of a fault arrival shape. */
const char *faultArrivalName(FaultArrival arrival);

/** Parameters of a fault-schedule generation. */
struct FaultScheduleConfig
{
    /** Events are generated in [0, horizonSec). */
    double horizonSec = 1.0;
    int chips = 1;
    std::uint64_t seed = 0x5f0c5eed2026ull;

    FaultArrival arrival = FaultArrival::Poisson;
    double burstMeanOnSec = 5e-3;  ///< mean burst on-phase
    double burstMeanOffSec = 45e-3;///< mean burst off-phase

    // --- per-chip-per-second rates; 0 disables a kind ---------------
    double pulseDropRatePerSec = 0.0;
    double fluxTrapRatePerSec = 0.0;
    double clockSkewRatePerSec = 0.0;
    double linkGlitchRatePerSec = 0.0;

    // --- magnitudes -------------------------------------------------
    /** Service-time multiplier one flux trap costs (remap + redo). */
    double fluxTrapDerate = 2.0;
    double clockSkewDerate = 1.5;
    double clockSkewDurationSec = 1e-3;
    double linkGlitchDelaySec = 5e-5;

    /** At least one kind has a nonzero rate. */
    bool anyFaults() const
    {
        return pulseDropRatePerSec > 0 || fluxTrapRatePerSec > 0 ||
               clockSkewRatePerSec > 0 || linkGlitchRatePerSec > 0;
    }

    /** Panics when malformed. */
    void check() const;
};

/**
 * A fully materialized, deterministic fault schedule: events sorted
 * by (time, chip, kind). The empty schedule hashes to 0, so clean
 * SimCache keys are unchanged by the fault machinery.
 */
class FaultSchedule
{
  public:
    FaultSchedule() = default;

    /** Generate a schedule from per-(chip, kind) seeded streams. */
    static FaultSchedule generate(const FaultScheduleConfig &config);

    /**
     * Build a schedule from hand-written events (targeted tests and
     * demos); events are sorted into canonical order.
     */
    static FaultSchedule fromEvents(const FaultScheduleConfig &config,
                                    std::vector<FaultEvent> events);

    const std::vector<FaultEvent> &events() const { return _events; }
    const FaultScheduleConfig &config() const { return _config; }
    bool empty() const { return _events.empty(); }
    std::size_t size() const { return _events.size(); }

    /** Events of one kind on one chip (injector queries). */
    std::size_t count(FaultKind kind, int chip) const;

    /**
     * Structural FNV-1a hash over every event (time bit-exact).
     * Empty schedules hash to 0 — the clean-run SimKey value.
     */
    std::uint64_t hash() const;

  private:
    FaultScheduleConfig _config;
    std::vector<FaultEvent> _events;
};

} // namespace reliability
} // namespace supernpu

#endif // SUPERNPU_RELIABILITY_FAULT_MODEL_HH
