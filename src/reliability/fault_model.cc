/**
 * @file
 * Fault-schedule generation: one seeded RNG stream per (chip, kind),
 * merged into a canonically ordered event list.
 */

#include "fault_model.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/rng.hh"

namespace supernpu {
namespace reliability {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::PulseDrop:
        return "pulse-drop";
      case FaultKind::FluxTrap:
        return "flux-trap";
      case FaultKind::ClockSkew:
        return "clock-skew";
      case FaultKind::LinkGlitch:
        return "link-glitch";
    }
    panic("bad fault kind");
}

const char *
faultArrivalName(FaultArrival arrival)
{
    switch (arrival) {
      case FaultArrival::Poisson:
        return "poisson";
      case FaultArrival::Burst:
        return "burst";
    }
    panic("bad fault arrival");
}

void
FaultScheduleConfig::check() const
{
    if (horizonSec <= 0)
        fatal("fault schedule needs a positive horizon");
    if (chips < 1)
        fatal("fault schedule needs at least one chip");
    if (pulseDropRatePerSec < 0 || fluxTrapRatePerSec < 0 ||
        clockSkewRatePerSec < 0 || linkGlitchRatePerSec < 0)
        fatal("fault rates must be non-negative");
    if (fluxTrapDerate < 1.0 || clockSkewDerate < 1.0)
        fatal("fault derates are service multipliers and must be >= 1");
    if (clockSkewDurationSec < 0 || linkGlitchDelaySec < 0)
        fatal("fault durations must be non-negative");
    if (arrival == FaultArrival::Burst &&
        (burstMeanOnSec <= 0 || burstMeanOffSec <= 0))
        fatal("burst arrivals need positive on/off phase means");
}

namespace {

/** Exponential variate with the given rate. */
double
expGap(Rng &rng, double rate_per_sec)
{
    double u = rng.uniform();
    if (u < 1e-300)
        u = 1e-300;
    return -std::log(u) / rate_per_sec;
}

/**
 * Event times of one (chip, kind) stream in [0, horizon): Poisson at
 * `rate`, or — for transient kinds under Burst arrivals — an on/off
 * modulated Poisson whose on-rate is scaled by 1/duty so the
 * long-run rate still equals `rate`.
 */
std::vector<double>
streamTimes(Rng &rng, const FaultScheduleConfig &cfg, double rate,
            bool bursty)
{
    std::vector<double> times;
    if (rate <= 0)
        return times;

    if (!bursty) {
        for (double t = expGap(rng, rate); t < cfg.horizonSec;
             t += expGap(rng, rate))
            times.push_back(t);
        return times;
    }

    // On/off modulation: arrivals only inside on-phases, with the
    // on-rate scaled by 1/duty so the long-run rate is unchanged.
    const double duty =
        cfg.burstMeanOnSec / (cfg.burstMeanOnSec + cfg.burstMeanOffSec);
    const double on_rate = rate / duty;
    double t = 0.0;
    double on_end = expGap(rng, 1.0 / cfg.burstMeanOnSec);
    while (t < cfg.horizonSec) {
        t += expGap(rng, on_rate);
        if (t >= on_end) {
            // The arrival fell past the on-phase: sit out the off
            // phase and resume inside the next on-phase.
            t = on_end + expGap(rng, 1.0 / cfg.burstMeanOffSec);
            on_end = t + expGap(rng, 1.0 / cfg.burstMeanOnSec);
            continue;
        }
        if (t < cfg.horizonSec)
            times.push_back(t);
    }
    return times;
}

/** Canonical event order: (time, chip, kind). */
bool
eventBefore(const FaultEvent &a, const FaultEvent &b)
{
    if (a.timeSec != b.timeSec)
        return a.timeSec < b.timeSec;
    if (a.chip != b.chip)
        return a.chip < b.chip;
    return (int)a.kind < (int)b.kind;
}

} // namespace

FaultSchedule
FaultSchedule::generate(const FaultScheduleConfig &config)
{
    config.check();

    FaultSchedule schedule;
    schedule._config = config;

    struct KindSpec
    {
        FaultKind kind;
        double rate;
        bool bursty;
    };
    const KindSpec kinds[faultKindCount] = {
        {FaultKind::PulseDrop, config.pulseDropRatePerSec,
         config.arrival == FaultArrival::Burst},
        {FaultKind::FluxTrap, config.fluxTrapRatePerSec, false},
        {FaultKind::ClockSkew, config.clockSkewRatePerSec,
         config.arrival == FaultArrival::Burst},
        {FaultKind::LinkGlitch, config.linkGlitchRatePerSec,
         config.arrival == FaultArrival::Burst},
    };

    for (int chip = 0; chip < config.chips; ++chip) {
        for (int k = 0; k < faultKindCount; ++k) {
            const KindSpec &spec = kinds[k];
            // One independent stream per (chip, kind): adding chips
            // or kinds never perturbs another stream's sequence.
            Rng rng(streamSeed(config.seed,
                               (std::uint64_t)chip * faultKindCount +
                                   (std::uint64_t)k));
            for (double t :
                 streamTimes(rng, config, spec.rate, spec.bursty)) {
                FaultEvent event;
                event.timeSec = t;
                event.kind = spec.kind;
                event.chip = chip;
                switch (spec.kind) {
                  case FaultKind::PulseDrop:
                    break;
                  case FaultKind::FluxTrap:
                    event.magnitude = config.fluxTrapDerate;
                    event.trapTarget =
                        rng.uniform() < 0.5
                            ? FluxTrapTarget::PeColumn
                            : FluxTrapTarget::BufferChunk;
                    break;
                  case FaultKind::ClockSkew:
                    event.magnitude = config.clockSkewDerate;
                    event.durationSec = config.clockSkewDurationSec;
                    break;
                  case FaultKind::LinkGlitch:
                    event.magnitude = config.linkGlitchDelaySec;
                    break;
                }
                schedule._events.push_back(event);
            }
        }
    }

    std::sort(schedule._events.begin(), schedule._events.end(),
              eventBefore);
    return schedule;
}

FaultSchedule
FaultSchedule::fromEvents(const FaultScheduleConfig &config,
                          std::vector<FaultEvent> events)
{
    config.check();
    for (const FaultEvent &event : events) {
        SUPERNPU_ASSERT(event.chip >= 0 && event.chip < config.chips,
                        "fault event on chip ", event.chip,
                        " outside [0, ", config.chips, ")");
        SUPERNPU_ASSERT(event.timeSec >= 0, "fault before t = 0");
    }
    FaultSchedule schedule;
    schedule._config = config;
    schedule._events = std::move(events);
    std::sort(schedule._events.begin(), schedule._events.end(),
              eventBefore);
    return schedule;
}

std::size_t
FaultSchedule::count(FaultKind kind, int chip) const
{
    std::size_t n = 0;
    for (const FaultEvent &event : _events) {
        if (event.kind == kind && event.chip == chip)
            ++n;
    }
    return n;
}

std::uint64_t
FaultSchedule::hash() const
{
    if (_events.empty())
        return 0; // the clean-run SimKey value
    std::uint64_t hash = 0xcbf29ce484222325ull;
    const auto mix = [&hash](std::uint64_t word) {
        for (int i = 0; i < 8; ++i) {
            hash ^= (word >> (8 * i)) & 0xff;
            hash *= 0x100000001b3ull;
        }
    };
    const auto mix_double = [&mix](double value) {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(value));
        __builtin_memcpy(&bits, &value, sizeof(bits));
        mix(bits);
    };
    mix((std::uint64_t)_events.size());
    for (const FaultEvent &event : _events) {
        mix_double(event.timeSec);
        mix((std::uint64_t)event.kind);
        mix((std::uint64_t)event.chip);
        mix_double(event.magnitude);
        mix_double(event.durationSec);
        mix((std::uint64_t)event.trapTarget);
    }
    return hash;
}

} // namespace reliability
} // namespace supernpu
