/**
 * @file
 * Numerical error propagation of transient SFQ pulse drops through
 * the functional inference path.
 *
 * The cycle-level injector answers "what do faults cost in time";
 * this module answers "what do they cost in output quality". A pulse
 * drop is modeled at the dataflow level as a single-bit flip in a
 * layer's raw convolution output (a psum corrupted inside the PE
 * array before requantization). Flips are injected at a configurable
 * rate per million MACs, the corrupted activations run on through
 * the remaining layers, and clean vs faulted activations are
 * compared per layer — showing how much the int8 requantize / ReLU /
 * pool post-ops mask, and how much survives to the logits.
 *
 * Everything is seeded: weights, input, and every layer's flip
 * positions each draw from their own streamSeed stream, so reports
 * are byte-identical across runs and machines.
 */

#ifndef SUPERNPU_RELIABILITY_ERROR_PROPAGATION_HH
#define SUPERNPU_RELIABILITY_ERROR_PROPAGATION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "dnn/layer.hh"

namespace supernpu {
namespace reliability {

/** Clean-vs-faulted activation comparison after one layer. */
struct LayerErrorStats
{
    std::string layer;
    std::uint64_t flips = 0;   ///< bit flips injected in this layer
    std::uint64_t outputs = 0; ///< activations compared
    std::uint64_t wrongOutputs = 0;
    double fracWrong = 0.0;    ///< wrongOutputs / outputs
    double meanAbsError = 0.0; ///< mean |faulted - clean|
    std::int32_t maxAbsError = 0;
};

/** Whole-network error-propagation result. */
struct ErrorPropagationReport
{
    std::string network;
    double flipsPerMillionMacs = 0.0;
    std::uint64_t seed = 0;
    std::vector<LayerErrorStats> layers;

    /** Total bit flips injected across the network. */
    std::uint64_t totalFlips() const;
    /** Error stats at the network output (the logits). */
    const LayerErrorStats &final() const;
};

/**
 * Whether the network can run through the functional path at all:
 * the functional pipeline chains layers sequentially (re-inserting
 * pooling and flattening), so networks whose shape graph branches —
 * residual projections, inception cells — cannot be walked. Mirrors
 * functional::buildPipeline's shape chaining without panicking.
 */
bool canPropagate(const dnn::Network &network);

/**
 * Run one input through the network twice — clean and with pulse
 * drops injected at `flips_per_million_macs` into every layer's raw
 * conv output — and report the per-layer activation divergence.
 * A rate of 0 injects nothing and every layer reports zero error.
 * The network must satisfy canPropagate().
 */
ErrorPropagationReport
propagateErrors(const dnn::Network &network,
                double flips_per_million_macs,
                std::uint64_t seed = 0x5f0be7f1122026ull);

} // namespace reliability
} // namespace supernpu

#endif // SUPERNPU_RELIABILITY_ERROR_PROPAGATION_HH
