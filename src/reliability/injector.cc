/**
 * @file
 * Fault-injection implementation: degraded-geometry re-estimation
 * and cached, fault-keyed cycle simulations.
 */

#include "injector.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "npusim/sim.hh"

namespace supernpu {
namespace reliability {

DegradedGeometry
geometryAfter(const FaultSchedule &schedule, int chip)
{
    DegradedGeometry geometry;
    for (const FaultEvent &event : schedule.events()) {
        if (event.chip != chip || event.kind != FaultKind::FluxTrap)
            continue;
        if (event.trapTarget == FluxTrapTarget::PeColumn)
            ++geometry.disabledColumns;
        else
            ++geometry.disabledChunks;
    }
    return geometry;
}

estimator::NpuEstimate
degradeEstimate(const estimator::NpuEstimate &estimate,
                const DegradedGeometry &geometry)
{
    if (geometry.pristine())
        return estimate;
    SUPERNPU_ASSERT(geometry.disabledColumns >= 0 &&
                        geometry.disabledChunks >= 0 &&
                        geometry.frequencyDerate >= 0.0 &&
                        geometry.frequencyDerate < 1.0,
                    "bad degraded geometry");

    estimator::NpuEstimate out = estimate;
    out.config.name += "+degraded";

    // --- PE columns remapped out ----------------------------------
    // Each disabled column strands its slice of the output-side
    // buffers too (the buffer rows feed fixed columns, Fig. 18(b)).
    const int old_w = estimate.config.peWidth;
    const int new_w =
        std::max(1, old_w - geometry.disabledColumns);
    out.config.peWidth = new_w;
    const double col_keep = (double)new_w / (double)old_w;
    out.config.outputBufferBytes = (std::uint64_t)(
        (double)estimate.config.outputBufferBytes * col_keep);
    out.config.psumBufferBytes = (std::uint64_t)(
        (double)estimate.config.psumBufferBytes * col_keep);
    out.config.ofmapBufferBytes = (std::uint64_t)(
        (double)estimate.config.ofmapBufferBytes * col_keep);

    // --- buffer chunks lost to trapped flux ------------------------
    if (geometry.disabledChunks > 0) {
        const std::uint64_t chunk_bytes = std::max<std::uint64_t>(
            1, estimate.ifmapChunkLength);
        const std::uint64_t lost = std::min(
            estimate.config.ifmapBufferBytes,
            chunk_bytes * (std::uint64_t)geometry.disabledChunks);
        const double keep =
            estimate.config.ifmapBufferBytes > 0
                ? 1.0 - (double)lost /
                            (double)estimate.config.ifmapBufferBytes
                : 1.0;
        out.config.ifmapBufferBytes = (std::uint64_t)(
            (double)estimate.config.ifmapBufferBytes * keep);
        out.ifmapRowLength = std::max<std::uint64_t>(
            1, (std::uint64_t)((double)estimate.ifmapRowLength * keep));
        out.ifmapChunkLength = std::max<std::uint64_t>(
            1,
            (std::uint64_t)((double)estimate.ifmapChunkLength * keep));
    }

    // --- timing-margin derate --------------------------------------
    const double freq_keep = 1.0 - geometry.frequencyDerate;
    out.frequencyGhz = estimate.frequencyGhz * freq_keep;

    out.peakMacPerSec = estimate.peakMacPerSec * freq_keep * col_keep;
    return out;
}

FaultInjector::FaultInjector(const estimator::NpuEstimate &estimate,
                             npusim::SimCache *cache)
    : _est(estimate),
      _cache(cache != nullptr ? cache : &npusim::SimCache::global())
{
}

std::shared_ptr<const npusim::SimResult>
FaultInjector::run(const dnn::Network &network, int batch,
                   const FaultSchedule &schedule, int chip) const
{
    SUPERNPU_ASSERT(batch >= 1, "bad batch");

    const DegradedGeometry geometry = geometryAfter(schedule, chip);
    const estimator::NpuEstimate est =
        geometry.pristine() ? _est : degradeEstimate(_est, geometry);
    npusim::NpuSimulator sim(est);

    // Chip index participates in the fault hash: each chip sees its
    // own slice of the cryostat's schedule. Empty schedules keep the
    // clean key (faultHash 0) so they share the clean cache entry.
    const std::uint64_t fault_hash =
        schedule.empty()
            ? 0
            : streamSeed(schedule.hash(), (std::uint64_t)chip);
    const npusim::SimKey key{npusim::hashNetwork(network),
                             npusim::hashEstimate(est), batch,
                             fault_hash};

    return _cache->getOrCompute(key, [&] {
        npusim::SimResult out = sim.run(network, batch);
        if (schedule.empty())
            return out;

        // Transient pulse drops corrupt the weight mapping in
        // flight; each one inside the run's span costs the mean
        // per-mapping redo.
        const double span = out.seconds();
        std::uint64_t drops_in_span = 0;
        std::uint64_t events_for_chip = 0;
        for (const FaultEvent &event : schedule.events()) {
            if (event.chip != chip)
                continue;
            ++events_for_chip;
            if (event.kind == FaultKind::PulseDrop &&
                event.timeSec < span)
                ++drops_in_span;
        }
        out.faultEventsInjected = events_for_chip;
        if (drops_in_span > 0) {
            std::uint64_t mappings = 0;
            for (const auto &layer : out.layers)
                mappings += layer.weightMappings;
            const std::uint64_t redo =
                out.totalCycles / std::max<std::uint64_t>(1, mappings);
            out.faultRecomputeCycles =
                drops_in_span * std::max<std::uint64_t>(1, redo);
        }
        return out;
    });
}

double
FaultInjector::serviceDerate(const dnn::Network &network, int batch,
                             const FaultSchedule &schedule,
                             int chip) const
{
    const auto clean = run(network, batch, FaultSchedule{}, 0);
    const auto faulted = run(network, batch, schedule, chip);
    const double derate =
        faulted->secondsWithRecompute() / clean->seconds();
    return std::max(1.0, derate);
}

} // namespace reliability
} // namespace supernpu
