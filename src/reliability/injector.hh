/**
 * @file
 * Fault injection into the cycle-level performance simulator.
 *
 * Permanent flux traps disable PE columns or buffer chunks; the
 * weight-stationary mapper then remaps every layer onto the smaller
 * array, which is exactly what rebuilding the NpuEstimate with the
 * degraded geometry and re-running NpuSimulator computes — folds
 * grow, preparation cycles grow, and the batch that used to fit may
 * spill. Transient pulse drops corrupt the weight mapping in flight;
 * the injector charges the mean per-mapping redo cost for each as
 * SimResult::faultRecomputeCycles.
 *
 * Results are memoized in a SimCache under keys that carry the
 * fault-schedule hash (SimKey::faultHash), so faulted and clean runs
 * of the same design point never collide — even for schedules whose
 * faults happen not to change the degraded geometry (pure pulse-drop
 * schedules, for example).
 */

#ifndef SUPERNPU_RELIABILITY_INJECTOR_HH
#define SUPERNPU_RELIABILITY_INJECTOR_HH

#include <memory>

#include "estimator/npu_estimator.hh"
#include "fault_model.hh"
#include "npusim/sim_cache.hh"

namespace supernpu {
namespace reliability {

/** Accumulated permanent damage to one chip's geometry. */
struct DegradedGeometry
{
    int disabledColumns = 0;   ///< PE columns remapped out
    int disabledChunks = 0;    ///< buffer chunks lost
    double frequencyDerate = 0.0; ///< fraction of clock lost [0, 1)

    /** No damage at all: degradation must be a strict no-op. */
    bool pristine() const
    {
        return disabledColumns == 0 && disabledChunks == 0 &&
               frequencyDerate == 0.0;
    }
};

/**
 * The end-state geometry a fault schedule implies for one chip:
 * every flux trap disables its target (PE column or buffer chunk).
 * Transient faults leave geometry untouched.
 */
DegradedGeometry geometryAfter(const FaultSchedule &schedule, int chip);

/**
 * Re-derive an estimate for the degraded chip: the PE array narrows
 * by the disabled columns (the mapper remaps around them), buffers
 * shrink by the lost chunks' share, and the clock derates. A
 * pristine geometry returns the estimate unchanged (bit-identical).
 */
estimator::NpuEstimate degradeEstimate(
    const estimator::NpuEstimate &estimate,
    const DegradedGeometry &geometry);

/** Injects a fault schedule into cycle-level simulations. */
class FaultInjector
{
  public:
    /**
     * @param cache Memo store for (design point, fault schedule)
     *        runs; defaults to npusim::SimCache::global().
     */
    explicit FaultInjector(const estimator::NpuEstimate &estimate,
                           npusim::SimCache *cache = nullptr);

    /**
     * Simulate `network` at `batch` on `chip` under the schedule:
     * the degraded-geometry run plus transient recompute accounting.
     * An empty schedule returns the clean cached result, bit
     * identical to NpuSimulator::run.
     */
    std::shared_ptr<const npusim::SimResult>
    run(const dnn::Network &network, int batch,
        const FaultSchedule &schedule, int chip = 0) const;

    /**
     * Service-time multiplier the schedule costs this chip:
     * faulted secondsWithRecompute / clean seconds (>= 1 up to
     * rounding). The serving simulator's flux-trap derate is derived
     * from this, tying the queueing model to the remapped cycle
     * counts instead of a guessed constant.
     */
    double serviceDerate(const dnn::Network &network, int batch,
                         const FaultSchedule &schedule,
                         int chip = 0) const;

    const estimator::NpuEstimate &estimate() const { return _est; }

  private:
    estimator::NpuEstimate _est;
    npusim::SimCache *_cache;
};

} // namespace reliability
} // namespace supernpu

#endif // SUPERNPU_RELIABILITY_INJECTOR_HH
