/**
 * @file
 * Run-ledger implementation and subsystem builders.
 */

#include "ledger.hh"

#include <fstream>

#include "common/logging.hh"
#include "json_writer.hh"

namespace supernpu {
namespace obs {

Value
Value::integer(std::uint64_t v)
{
    Value out;
    out._kind = Kind::Int;
    out._int = v;
    return out;
}

Value
Value::real(double v)
{
    Value out;
    out._kind = Kind::Real;
    out._real = v;
    return out;
}

Value
Value::text(std::string v)
{
    Value out;
    out._kind = Kind::Text;
    out._text = std::move(v);
    return out;
}

double
Value::number() const
{
    switch (_kind) {
      case Kind::Int:
        return (double)_int;
      case Kind::Real:
        return _real;
      case Kind::Text:
        return 0.0;
    }
    return 0.0;
}

std::string
Value::csvText() const
{
    switch (_kind) {
      case Kind::Int:
        return std::to_string(_int);
      case Kind::Real:
        return jsonNumber(_real);
      case Kind::Text: {
        std::string out = _text;
        for (char &c : out) {
            if (c == ',' || c == '\n')
                c = ';';
        }
        return out;
      }
    }
    return "";
}

RunLedger::Section &
RunLedger::sectionFor(const std::string &name)
{
    for (Section &section : _sections) {
        if (section.name == name)
            return section;
    }
    _sections.push_back(Section{name, {}});
    return _sections.back();
}

Value &
RunLedger::entryFor(const std::string &section, const std::string &key)
{
    Section &s = sectionFor(section);
    for (auto &entry : s.entries) {
        if (entry.first == key)
            return entry.second;
    }
    s.entries.emplace_back(key, Value{});
    return s.entries.back().second;
}

void
RunLedger::setInt(const std::string &section, const std::string &key,
                  std::uint64_t value)
{
    entryFor(section, key) = Value::integer(value);
}

void
RunLedger::setReal(const std::string &section, const std::string &key,
                   double value)
{
    entryFor(section, key) = Value::real(value);
}

void
RunLedger::setText(const std::string &section, const std::string &key,
                   const std::string &value)
{
    entryFor(section, key) = Value::text(value);
}

void
RunLedger::incInt(const std::string &section, const std::string &key,
                  std::uint64_t delta)
{
    Value &entry = entryFor(section, key);
    entry = Value::integer(
        (entry.kind() == Value::Kind::Int ? entry.asInt() : 0) + delta);
}

RunLedger::Table &
RunLedger::table(const std::string &name,
                 const std::vector<std::string> &columns)
{
    for (Table &table : _tables) {
        if (table.name != name)
            continue;
        SUPERNPU_ASSERT(table.columns == columns,
                        "ledger table '", name,
                        "' re-created with different columns");
        return table;
    }
    _tables.push_back(Table{name, columns, {}});
    return _tables.back();
}

void
RunLedger::addRow(const std::string &name, std::vector<Value> row)
{
    for (Table &table : _tables) {
        if (table.name != name)
            continue;
        SUPERNPU_ASSERT(row.size() == table.columns.size(),
                        "ledger table '", name, "' row width ",
                        row.size(), " != ", table.columns.size(),
                        " columns");
        table.rows.push_back(std::move(row));
        return;
    }
    panic("ledger table '", name, "' does not exist");
}

const Value *
RunLedger::find(const std::string &section,
                const std::string &key) const
{
    for (const Section &s : _sections) {
        if (s.name != section)
            continue;
        for (const auto &entry : s.entries) {
            if (entry.first == key)
                return &entry.second;
        }
    }
    return nullptr;
}

const RunLedger::Table *
RunLedger::findTable(const std::string &name) const
{
    for (const Table &table : _tables) {
        if (table.name == name)
            return &table;
    }
    return nullptr;
}

namespace {

void
writeValue(JsonWriter &json, const Value &value)
{
    switch (value.kind()) {
      case Value::Kind::Int:
        json.value(value.asInt());
        break;
      case Value::Kind::Real:
        json.value(value.asReal());
        break;
      case Value::Kind::Text:
        json.value(value.asText());
        break;
    }
}

} // namespace

std::string
RunLedger::json() const
{
    JsonWriter json;
    json.beginObject();
    json.key("schema").value(kLedgerSchema);
    json.key("sections").beginObject();
    for (const Section &section : _sections) {
        json.key(section.name).beginObject();
        for (const auto &entry : section.entries) {
            json.key(entry.first);
            writeValue(json, entry.second);
        }
        json.endObject();
    }
    json.endObject();
    json.key("tables").beginObject();
    for (const Table &table : _tables) {
        json.key(table.name).beginObject();
        json.key("columns").beginArray();
        for (const std::string &column : table.columns)
            json.value(column);
        json.endArray();
        json.key("rows").beginArray();
        for (const auto &row : table.rows) {
            json.beginArray();
            for (const Value &cell : row)
                writeValue(json, cell);
            json.endArray();
        }
        json.endArray();
        json.endObject();
    }
    json.endObject();
    json.endObject();
    return json.str() + "\n";
}

std::string
RunLedger::csv() const
{
    std::string out;
    for (const Section &section : _sections) {
        out += "# section " + section.name + "\n";
        out += "key,value\n";
        for (const auto &entry : section.entries)
            out += entry.first + "," + entry.second.csvText() + "\n";
    }
    for (const Table &table : _tables) {
        out += "# table " + table.name + "\n";
        for (std::size_t i = 0; i < table.columns.size(); ++i) {
            if (i > 0)
                out += ',';
            out += table.columns[i];
        }
        out += '\n';
        for (const auto &row : table.rows) {
            for (std::size_t i = 0; i < row.size(); ++i) {
                if (i > 0)
                    out += ',';
                out += row[i].csvText();
            }
            out += '\n';
        }
    }
    return out;
}

bool
RunLedger::write(const std::string &path) const
{
    std::ofstream file(path, std::ios::binary);
    if (!file)
        return false;
    const bool as_csv = path.size() >= 4 &&
                        path.compare(path.size() - 4, 4, ".csv") == 0;
    file << (as_csv ? csv() : json());
    return (bool)file;
}

// --- subsystem builders ---------------------------------------------

void
addSimResult(RunLedger &ledger, const npusim::SimResult &result)
{
    ledger.setText("sim", "network", result.networkName);
    ledger.setText("sim", "config", result.configName);
    ledger.setInt("sim", "batch", (std::uint64_t)result.batch);
    ledger.setReal("sim", "frequencyGhz", result.frequencyGhz);
    ledger.setInt("sim", "totalCycles", result.totalCycles);
    ledger.setInt("sim", "computeCycles", result.computeCycles);
    ledger.setInt("sim", "prepCycles", result.prepCycles);
    ledger.setInt("sim", "memoryStallCycles",
                  result.memoryStallCycles);
    ledger.setInt("sim", "prepWeightLoad", result.prep.weightLoad);
    ledger.setInt("sim", "prepIfmapFill", result.prep.ifmapFill);
    ledger.setInt("sim", "prepIfmapRewind", result.prep.ifmapRewind);
    ledger.setInt("sim", "prepPsumMove", result.prep.psumMove);
    ledger.setInt("sim", "prepOutputFlush", result.prep.outputFlush);
    ledger.setInt("sim", "prepOutputHandoff",
                  result.prep.outputHandoff);
    ledger.setInt("sim", "macOps", result.macOps);
    ledger.setInt("sim", "dramBytes", result.dramBytes);
    ledger.setInt("sim", "dramWeightBytes", result.dramWeightBytes);
    ledger.setInt("sim", "dramIfmapBytes", result.dramIfmapBytes);
    ledger.setInt("sim", "dramOutputBytes", result.dramOutputBytes);
    ledger.setInt("sim", "faultEventsInjected",
                  result.faultEventsInjected);
    ledger.setInt("sim", "faultRecomputeCycles",
                  result.faultRecomputeCycles);
    ledger.setReal("sim", "seconds", result.seconds());

    RunLedger::Table &layers = ledger.table(
        "layers",
        {"layer", "computeCycles", "prepCycles", "stallCycles",
         "weightLoad", "ifmapFill", "ifmapRewind", "psumMove",
         "outputFlush", "outputHandoff", "macOps", "weightMappings",
         "dramBytes", "dramWeightBytes", "dramIfmapBytes",
         "dramOutputBytes"});
    (void)layers;
    for (const npusim::LayerResult &layer : result.layers) {
        ledger.addRow(
            "layers",
            {Value::text(layer.layerName),
             Value::integer(layer.computeCycles),
             Value::integer(layer.prepCycles),
             Value::integer(layer.memoryStallCycles),
             Value::integer(layer.prep.weightLoad),
             Value::integer(layer.prep.ifmapFill),
             Value::integer(layer.prep.ifmapRewind),
             Value::integer(layer.prep.psumMove),
             Value::integer(layer.prep.outputFlush),
             Value::integer(layer.prep.outputHandoff),
             Value::integer(layer.macOps),
             Value::integer(layer.weightMappings),
             Value::integer(layer.dramBytes),
             Value::integer(layer.dramWeightBytes),
             Value::integer(layer.dramIfmapBytes),
             Value::integer(layer.dramOutputBytes)});
    }
}

void
addServingReport(RunLedger &ledger,
                 const serving::ServingReport &report)
{
    ledger.setText("serving", "network", report.network);
    ledger.setText("serving", "config", report.configName);
    ledger.setInt("serving", "chips", (std::uint64_t)report.chips);
    ledger.setText("serving", "arrival", report.arrival);
    ledger.setText("serving", "policy", report.policy);
    ledger.setText("serving", "dispatch", report.dispatch);
    ledger.setInt("serving", "maxBatch",
                  (std::uint64_t)report.maxBatch);
    if (report.pipelineStages > 1) {
        ledger.setInt("serving", "pipelineStages",
                      (std::uint64_t)report.pipelineStages);
        ledger.setInt("serving", "pipelineGroups",
                      (std::uint64_t)report.pipelineGroups);
    }
    if (report.dataParallelReplicas > 1) {
        ledger.setInt("serving", "dataParallelReplicas",
                      (std::uint64_t)report.dataParallelReplicas);
        ledger.setInt("serving", "replicaGroups",
                      (std::uint64_t)report.replicaGroups);
    }
    ledger.setInt("serving", "generated", report.generated);
    ledger.setInt("serving", "completed", report.completed);
    ledger.setReal("serving", "makespanSec", report.makespanSec);
    ledger.setReal("serving", "offeredRps", report.offeredRps);
    ledger.setReal("serving", "throughputRps", report.throughputRps);
    ledger.setReal("serving", "utilization", report.utilization);
    ledger.setReal("serving", "meanQueueDepth", report.meanQueueDepth);
    ledger.setInt("serving", "batchesLaunched",
                  report.batchesLaunched);
    ledger.setReal("serving", "meanBatch", report.meanBatch);
    ledger.setInt("serving", "maxBatchLaunched",
                  (std::uint64_t)report.maxBatchLaunched);
    ledger.setReal("serving", "latencyMeanSec", report.latencyMean);
    ledger.setReal("serving", "latencyP50Sec", report.latencyP50);
    ledger.setReal("serving", "latencyP95Sec", report.latencyP95);
    ledger.setReal("serving", "latencyP99Sec", report.latencyP99);
    ledger.setReal("serving", "latencyP999Sec", report.latencyP999);
    ledger.setReal("serving", "latencyMaxSec", report.latencyMax);
    ledger.setInt("serving", "resilienceActive",
                  report.resilienceActive ? 1 : 0);
    if (report.resilienceActive) {
        ledger.setText("serving", "recovery", report.recovery);
        ledger.setInt("serving", "faultsScheduled",
                      report.faultsScheduled);
        ledger.setInt("serving", "faultsInjected",
                      report.faultsInjected);
        ledger.setInt("serving", "batchesKilled",
                      report.batchesKilled);
        ledger.setInt("serving", "requestsKilled",
                      report.requestsKilled);
        ledger.setInt("serving", "retriesTotal", report.retriesTotal);
        ledger.setInt("serving", "retryGiveUps", report.retryGiveUps);
        ledger.setInt("serving", "restarts", report.restarts);
        ledger.setInt("serving", "redispatches", report.redispatches);
        ledger.setInt("serving", "glitchesAbsorbed",
                      report.glitchesAbsorbed);
        ledger.setInt("serving", "failedRequests",
                      report.failedRequests);
        ledger.setReal("serving", "availability", report.availability);
        ledger.setReal("serving", "goodputRps", report.goodputRps);
    }

    ledger.table("chips", {"chip", "batches", "busySec"});
    const std::size_t chips = report.perChipBatches.size();
    for (std::size_t chip = 0; chip < chips; ++chip) {
        const double busy = chip < report.perChipBusySec.size()
                                ? report.perChipBusySec[chip]
                                : 0.0;
        ledger.addRow("chips",
                      {Value::integer((std::uint64_t)chip),
                       Value::integer(report.perChipBatches[chip]),
                       Value::real(busy)});
    }
}

void
addPipelineResult(RunLedger &ledger,
                  const partition::PipelineResult &result)
{
    const partition::PartitionPlan &plan = result.plan;
    ledger.setText("pipeline", "network", plan.networkName);
    ledger.setText("pipeline", "config", plan.configName);
    ledger.setInt("pipeline", "stages",
                  (std::uint64_t)plan.stageCount());
    ledger.setInt("pipeline", "batch", (std::uint64_t)plan.batch);
    ledger.setInt("pipeline", "batches",
                  (std::uint64_t)result.batches);
    ledger.setReal("pipeline", "frequencyGhz", plan.frequencyGhz);
    ledger.setReal("pipeline", "linkBandwidthGBps",
                   plan.link.bandwidthGBps);
    ledger.setInt("pipeline", "linkLatencyCycles",
                  plan.link.latencyCycles);
    ledger.setInt("pipeline", "bottleneckStage",
                  (std::uint64_t)plan.bottleneckStage);
    ledger.setInt("pipeline", "bottleneckCycles",
                  plan.bottleneckCycles);
    ledger.setInt("pipeline", "fillCycles", plan.fillCycles);
    ledger.setInt("pipeline", "makespanCycles",
                  result.makespanCycles);
    ledger.setInt("pipeline", "totalStageCycles",
                  result.totalStageCycles);
    ledger.setInt("pipeline", "totalLinkCycles",
                  result.totalLinkCycles);
    ledger.setInt("pipeline", "macOpsPerBatch",
                  result.macOpsPerBatch);
    ledger.setReal("pipeline", "fillLatencySec",
                   plan.fillLatencySec());
    ledger.setReal("pipeline", "intervalSec", plan.intervalSec());
    ledger.setReal("pipeline", "makespanSec", result.makespanSec());
    ledger.setReal("pipeline", "steadyInferencesPerSec",
                   result.steadyInferencesPerSec());

    (void)ledger.table(
        "stages",
        {"stage", "firstLayer", "lastLayer", "layers", "stageCycles",
         "linkBytes", "linkCycles", "occupancyCycles",
         "utilization"});
    for (int s = 0; s < plan.stageCount(); ++s) {
        const partition::PipelineStage &stage = plan.stages[s];
        ledger.addRow(
            "stages",
            {Value::integer((std::uint64_t)s),
             Value::integer((std::uint64_t)stage.firstLayer),
             Value::integer((std::uint64_t)stage.lastLayer),
             Value::integer((std::uint64_t)stage.layerCount()),
             Value::integer(stage.stageCycles),
             Value::integer(stage.linkBytes),
             Value::integer(stage.linkCycles),
             Value::integer(stage.occupancyCycles()),
             Value::real(plan.stageUtilization(s))});
    }
}

void
addShardPlan(RunLedger &ledger, const sharding::ShardPlan &plan)
{
    ledger.setText("sharding", "network", plan.networkName);
    ledger.setText("sharding", "config", plan.configName);
    ledger.setInt("sharding", "dataParallel",
                  (std::uint64_t)plan.dataParallel);
    ledger.setInt("sharding", "tensorShards",
                  (std::uint64_t)plan.tensorShards);
    ledger.setInt("sharding", "pipelineStages",
                  (std::uint64_t)plan.pipelineStages);
    ledger.setInt("sharding", "chips", (std::uint64_t)plan.chips());
    ledger.setInt("sharding", "batch", (std::uint64_t)plan.batch);
    ledger.setInt("sharding", "replicaShare",
                  (std::uint64_t)plan.replicaShare);
    ledger.setReal("sharding", "frequencyGhz", plan.frequencyGhz);
    ledger.setReal("sharding", "linkBandwidthGBps",
                   plan.link.bandwidthGBps);
    ledger.setInt("sharding", "linkLatencyCycles",
                  plan.link.latencyCycles);
    ledger.setInt("sharding", "tensorCollectiveCycles",
                  plan.tensorCollectiveCycles);
    ledger.setInt("sharding", "tensorCollectiveBytes",
                  plan.tensorCollectiveBytes);
    ledger.setInt("sharding", "gatherBytes", plan.gatherBytes);
    ledger.setInt("sharding", "gatherCycles", plan.gatherCycles);
    ledger.setInt("sharding", "bottleneckCycles",
                  plan.bottleneckCycles);
    ledger.setInt("sharding", "fillCycles", plan.fillCycles);
    ledger.setInt("sharding", "intervalCycles", plan.intervalCycles);
    ledger.setInt("sharding", "latencyCycles", plan.latencyCycles);
    ledger.setInt("sharding", "soloCycles", plan.soloCycles);
    ledger.setInt("sharding", "macOpsPerBatch", plan.macOpsPerBatch);
    ledger.setReal("sharding", "intervalSec", plan.intervalSec());
    ledger.setReal("sharding", "latencySec", plan.latencySec());
    ledger.setReal("sharding", "throughput", plan.throughput());
    ledger.setReal("sharding", "speedup", plan.speedup());

    (void)ledger.table(
        "shardStages",
        {"stage", "firstLayer", "lastLayer", "stageCycles",
         "linkBytes", "linkCycles", "collectiveCycles",
         "occupancyCycles"});
    for (int s = 0; s < plan.pipelineStages; ++s) {
        const partition::PipelineStage &stage =
            plan.pipeline.stages[s];
        ledger.addRow(
            "shardStages",
            {Value::integer((std::uint64_t)s),
             Value::integer((std::uint64_t)stage.firstLayer),
             Value::integer((std::uint64_t)stage.lastLayer),
             Value::integer(stage.stageCycles),
             Value::integer(stage.linkBytes),
             Value::integer(stage.linkCycles),
             Value::integer(plan.stageCollectiveCycles[s]),
             Value::integer(plan.stageOccupancyCycles[s])});
    }
}

void
addFaultSchedule(RunLedger &ledger,
                 const reliability::FaultSchedule &schedule)
{
    const reliability::FaultScheduleConfig &config = schedule.config();
    ledger.setInt("faults", "events",
                  (std::uint64_t)schedule.size());
    ledger.setInt("faults", "chips", (std::uint64_t)config.chips);
    ledger.setReal("faults", "horizonSec", config.horizonSec);
    ledger.setInt("faults", "seed", config.seed);
    ledger.setText("faults", "arrival",
                   reliability::faultArrivalName(config.arrival));
    std::uint64_t perKind[reliability::faultKindCount] = {};
    for (const reliability::FaultEvent &event : schedule.events())
        ++perKind[(int)event.kind];
    ledger.setInt("faults", "pulseDrops",
                  perKind[(int)reliability::FaultKind::PulseDrop]);
    ledger.setInt("faults", "fluxTraps",
                  perKind[(int)reliability::FaultKind::FluxTrap]);
    ledger.setInt("faults", "clockSkews",
                  perKind[(int)reliability::FaultKind::ClockSkew]);
    ledger.setInt("faults", "linkGlitches",
                  perKind[(int)reliability::FaultKind::LinkGlitch]);
}

void
addSimCacheStats(RunLedger &ledger,
                 const npusim::SimCacheStats &stats)
{
    ledger.setInt("simCache", "hits", stats.hits);
    ledger.setInt("simCache", "misses", stats.misses);
    ledger.setInt("simCache", "evictions", stats.evictions);
}

void
addLayerTimingCacheStats(RunLedger &ledger,
                         const partition::LayerTimingCacheStats &stats)
{
    ledger.setInt("layerTimingCache", "hits", stats.hits);
    ledger.setInt("layerTimingCache", "misses", stats.misses);
}

void
addPoolStats(RunLedger &ledger, const ThreadPool::Stats &stats)
{
    ledger.setInt("threadPool", "jobs", (std::uint64_t)stats.jobs);
    ledger.setInt("threadPool", "loops", stats.loops);
    ledger.setInt("threadPool", "tasks", stats.tasks);
    ledger.setInt("threadPool", "maxLoopTasks", stats.maxLoopTasks);
}

void
addPerfReport(RunLedger &ledger, const perf::Report &report)
{
    // Counters land as a flat "perf" section; phase timings get a
    // table (paths are hierarchical, a section would flatten them
    // into unreadable keys). Nanoseconds are wall-clock, so a ledger
    // carrying this section is only byte-stable if the caller strips
    // or ignores it in determinism comparisons — the CLI emits it
    // only under --profile for exactly that reason.
    for (const perf::CounterStat &counter : report.counters)
        ledger.setInt("perf", counter.name, counter.value);

    (void)ledger.table("perfPhases", {"path", "count", "ns"});
    for (const perf::PhaseStat &phase : report.phases) {
        ledger.addRow("perfPhases",
                      {Value::text(phase.path),
                       Value::integer(phase.count),
                       Value::integer(phase.ns)});
    }
}

} // namespace obs
} // namespace supernpu
