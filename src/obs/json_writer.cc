/**
 * @file
 * JSON emitter implementation.
 */

#include "json_writer.hh"

#include <cstdio>

#include "common/logging.hh"

namespace supernpu {
namespace obs {

std::string
jsonEscaped(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (unsigned char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += (char)c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double value)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

void
JsonWriter::separate()
{
    if (_afterKey) {
        _afterKey = false;
        return;
    }
    if (!_firstInScope.empty()) {
        if (!_firstInScope.back())
            _out << ',';
        _firstInScope.back() = false;
        _out << '\n';
        for (int i = 0; i < _depth; ++i)
            _out << "  ";
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    separate();
    _out << '{';
    _firstInScope.push_back(true);
    ++_depth;
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    SUPERNPU_ASSERT(!_firstInScope.empty() && !_afterKey,
                    "endObject outside an object");
    const bool empty = _firstInScope.back();
    _firstInScope.pop_back();
    --_depth;
    if (!empty) {
        _out << '\n';
        for (int i = 0; i < _depth; ++i)
            _out << "  ";
    }
    _out << '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separate();
    _out << '[';
    _firstInScope.push_back(true);
    ++_depth;
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    SUPERNPU_ASSERT(!_firstInScope.empty() && !_afterKey,
                    "endArray outside an array");
    const bool empty = _firstInScope.back();
    _firstInScope.pop_back();
    --_depth;
    if (!empty) {
        _out << '\n';
        for (int i = 0; i < _depth; ++i)
            _out << "  ";
    }
    _out << ']';
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    SUPERNPU_ASSERT(!_afterKey, "two keys in a row");
    separate();
    _out << '"' << jsonEscaped(name) << "\": ";
    _afterKey = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &text)
{
    separate();
    _out << '"' << jsonEscaped(text) << '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *text)
{
    return value(std::string(text));
}

JsonWriter &
JsonWriter::value(double number)
{
    separate();
    _out << jsonNumber(number);
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t number)
{
    separate();
    _out << number;
    return *this;
}

JsonWriter &
JsonWriter::value(bool flag)
{
    separate();
    _out << (flag ? "true" : "false");
    return *this;
}

} // namespace obs
} // namespace supernpu
