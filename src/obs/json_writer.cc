/**
 * @file
 * JSON emitter implementation.
 */

#include "json_writer.hh"

#include <cmath>
#include <cstdio>

#include "common/logging.hh"

namespace supernpu {
namespace obs {

std::string
jsonEscaped(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (unsigned char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += (char)c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double value)
{
    if (!std::isfinite(value)) {
        fatal("non-finite value (", value, ") has no JSON ",
              "representation; a non-finite metric is always an ",
              "upstream bug");
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

std::string
JsonWriter::pathString() const
{
    std::string path;
    for (std::size_t i = 0; i < _path.size(); ++i) {
        const Breadcrumb &crumb = _path[i];
        if (crumb.isArray) {
            // A non-innermost array already counted its open child
            // scope; the innermost array has not yet counted the
            // element the caller is about to emit.
            const std::size_t open_child = i + 1 < _path.size() ? 1 : 0;
            path += '[';
            path += std::to_string(crumb.elements - open_child);
            path += ']';
        } else {
            if (!path.empty())
                path += ".";
            path += crumb.lastKey.empty() ? "?" : crumb.lastKey;
        }
    }
    return path.empty() ? "<root>" : path;
}

void
JsonWriter::separate()
{
    if (_afterKey) {
        _afterKey = false;
        return;
    }
    if (!_path.empty() && _path.back().isArray)
        ++_path.back().elements;
    if (!_firstInScope.empty()) {
        if (!_firstInScope.back())
            _out << ',';
        _firstInScope.back() = false;
        _out << '\n';
        for (int i = 0; i < _depth; ++i)
            _out << "  ";
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    separate();
    _out << '{';
    _firstInScope.push_back(true);
    _path.push_back(Breadcrumb{});
    ++_depth;
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    SUPERNPU_ASSERT(!_firstInScope.empty() && !_afterKey,
                    "endObject outside an object");
    const bool empty = _firstInScope.back();
    _firstInScope.pop_back();
    _path.pop_back();
    --_depth;
    if (!empty) {
        _out << '\n';
        for (int i = 0; i < _depth; ++i)
            _out << "  ";
    }
    _out << '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separate();
    _out << '[';
    _firstInScope.push_back(true);
    Breadcrumb crumb;
    crumb.isArray = true;
    _path.push_back(crumb);
    ++_depth;
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    SUPERNPU_ASSERT(!_firstInScope.empty() && !_afterKey,
                    "endArray outside an array");
    const bool empty = _firstInScope.back();
    _firstInScope.pop_back();
    _path.pop_back();
    --_depth;
    if (!empty) {
        _out << '\n';
        for (int i = 0; i < _depth; ++i)
            _out << "  ";
    }
    _out << ']';
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    SUPERNPU_ASSERT(!_afterKey, "two keys in a row");
    separate();
    if (!_path.empty())
        _path.back().lastKey = name;
    _out << '"' << jsonEscaped(name) << "\": ";
    _afterKey = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &text)
{
    separate();
    _out << '"' << jsonEscaped(text) << '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *text)
{
    return value(std::string(text));
}

JsonWriter &
JsonWriter::value(double number)
{
    // Check before separate() so pathString()'s innermost array
    // index still names the element this value would have become.
    if (!std::isfinite(number)) {
        fatal("non-finite value (", number, ") at JSON path '",
              pathString(), "': non-finite metrics are always an ",
              "upstream bug");
    }
    separate();
    _out << jsonNumber(number);
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t number)
{
    separate();
    _out << number;
    return *this;
}

JsonWriter &
JsonWriter::value(bool flag)
{
    separate();
    _out << (flag ? "true" : "false");
    return *this;
}

} // namespace obs
} // namespace supernpu
