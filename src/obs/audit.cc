/**
 * @file
 * Conservation-invariant implementations.
 */

#include "audit.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/logging.hh"
#include "json_writer.hh"

#ifndef SUPERNPU_AUDIT_DEFAULT
#define SUPERNPU_AUDIT_DEFAULT 0
#endif

namespace supernpu {
namespace obs {

std::string
Violation::str() const
{
    return source + ":" + metric + " expected " + expected + " got " +
           got;
}

std::string
AuditReport::summary() const
{
    std::string out;
    for (const Violation &violation : violations) {
        if (!out.empty())
            out += '\n';
        out += violation.str();
    }
    return out;
}

void
AuditReport::merge(const AuditReport &other)
{
    violations.insert(violations.end(), other.violations.begin(),
                      other.violations.end());
}

namespace {

/**
 * Violation-message rendering of a double. jsonNumber() fatal()s on
 * non-finite input, but a *violated* metric can legitimately be NaN
 * — that is precisely what the message must be able to say — so
 * non-finite values render through iostream ("inf"/"nan") here.
 */
std::string
realText(double value)
{
    if (!std::isfinite(value)) {
        std::ostringstream os;
        os << value;
        return os.str();
    }
    return jsonNumber(value);
}

/** Relative slack for comparisons between derived doubles. */
bool
nearlyLe(double a, double b)
{
    const double slack =
        1e-9 * std::max({1.0, std::fabs(a), std::fabs(b)});
    return a <= b + slack;
}

void
expectEq(AuditReport &report, const std::string &source,
         const std::string &metric, std::uint64_t expected,
         std::uint64_t got)
{
    if (expected != got) {
        report.violations.push_back(
            Violation{source, metric, std::to_string(expected),
                      std::to_string(got)});
    }
}

void
expectLe(AuditReport &report, const std::string &source,
         const std::string &metric, double value, double bound)
{
    if (!nearlyLe(value, bound)) {
        report.violations.push_back(
            Violation{source, metric, "<= " + realText(bound),
                      realText(value)});
    }
}

void
expectRange(AuditReport &report, const std::string &source,
            const std::string &metric, double value, double lo,
            double hi)
{
    if (!nearlyLe(lo, value) || !nearlyLe(value, hi)) {
        report.violations.push_back(Violation{
            source, metric,
            "in [" + realText(lo) + ", " + realText(hi) + "]",
            realText(value)});
    }
}

void
auditLayer(AuditReport &report, const npusim::LayerResult &layer)
{
    const std::string source = "sim/" + layer.layerName;
    expectEq(report, source, "prepCycles", layer.prep.total(),
             layer.prepCycles);
    expectEq(report, source, "dramBytes",
             layer.dramWeightBytes + layer.dramIfmapBytes +
                 layer.dramOutputBytes,
             layer.dramBytes);
}

} // namespace

AuditReport
auditSim(const npusim::SimResult &result)
{
    AuditReport report;

    std::uint64_t compute = 0, prep = 0, stall = 0, macs = 0;
    std::uint64_t dram = 0, dram_weight = 0, dram_ifmap = 0;
    std::uint64_t dram_output = 0;
    npusim::PrepBreakdown buckets;
    for (const npusim::LayerResult &layer : result.layers) {
        auditLayer(report, layer);
        compute += layer.computeCycles;
        prep += layer.prepCycles;
        stall += layer.memoryStallCycles;
        macs += layer.macOps;
        dram += layer.dramBytes;
        dram_weight += layer.dramWeightBytes;
        dram_ifmap += layer.dramIfmapBytes;
        dram_output += layer.dramOutputBytes;
        buckets.add(layer.prep);
    }

    // Cycle roll-ups: layers -> network totals -> totalCycles.
    expectEq(report, "sim", "computeCycles", compute,
             result.computeCycles);
    expectEq(report, "sim", "prepCycles", prep, result.prepCycles);
    expectEq(report, "sim", "memoryStallCycles", stall,
             result.memoryStallCycles);
    expectEq(report, "sim", "totalCycles",
             result.computeCycles + result.prepCycles +
                 result.memoryStallCycles,
             result.totalCycles);
    expectEq(report, "sim", "prepBucketTotal", result.prep.total(),
             result.prepCycles);
    expectEq(report, "sim", "prepBucketSum", buckets.total(),
             result.prep.total());
    expectEq(report, "sim", "prepWeightLoad", buckets.weightLoad,
             result.prep.weightLoad);
    expectEq(report, "sim", "macOps", macs, result.macOps);

    // DRAM traffic decomposes exactly into its three streams.
    expectEq(report, "sim", "dramBytes", dram, result.dramBytes);
    expectEq(report, "sim", "dramStreamBytes",
             dram_weight + dram_ifmap + dram_output, result.dramBytes);

    return report;
}

AuditReport
auditServing(const serving::ServingReport &report)
{
    AuditReport audit;

    // Request conservation: the event loop drains every arrival.
    expectEq(audit, "serving", "completed", report.generated,
             report.completed);

    // Busy time is bounded by total chip-time.
    double busy = 0.0;
    for (double chip_busy : report.perChipBusySec) {
        expectLe(audit, "serving", "chipBusySec", -chip_busy, 0.0);
        busy += chip_busy;
    }
    expectLe(audit, "serving", "sumBusySec", busy,
             (double)report.chips * report.makespanSec);
    expectRange(audit, "serving", "utilization", report.utilization,
                0.0, 1.0);

    // Rates and ranges.
    expectLe(audit, "serving", "goodputRps", report.goodputRps,
             report.throughputRps);
    expectRange(audit, "serving", "availability", report.availability,
                0.0, 1.0);
    expectLe(audit, "serving", "meanQueueDepth",
             -report.meanQueueDepth, 0.0);

    // The latency tail is monotone and bounded by the max.
    expectLe(audit, "serving", "latencyP50", report.latencyP50,
             report.latencyP95);
    expectLe(audit, "serving", "latencyP95", report.latencyP95,
             report.latencyP99);
    expectLe(audit, "serving", "latencyP99", report.latencyP99,
             report.latencyP999);
    expectLe(audit, "serving", "latencyP999", report.latencyP999,
             report.latencyMax);
    expectLe(audit, "serving", "latencyMean", report.latencyMean,
             report.latencyMax);
    if (report.completed == 0) {
        // Empty runs must report zeros, not garbage (the
        // RunningStats/Histogram empty-semantics contract).
        expectLe(audit, "serving", "emptyLatencyMax",
                 report.latencyMax, 0.0);
        expectEq(audit, "serving", "emptyMaxBatchLaunched", 0,
                 (std::uint64_t)report.maxBatchLaunched);
    }

    // Batch accounting.
    expectLe(audit, "serving", "meanBatch", report.meanBatch,
             (double)report.maxBatchLaunched);
    expectLe(audit, "serving", "maxBatchLaunched",
             (double)report.maxBatchLaunched, (double)report.maxBatch);
    std::uint64_t chip_batches = 0;
    for (std::uint64_t batches : report.perChipBatches)
        chip_batches += batches;
    if (!report.perChipBatches.empty()) {
        expectEq(audit, "serving", "perChipBatches", chip_batches,
                 report.batchesLaunched);
    }

    // Fault-path conservation.
    if (report.resilienceActive) {
        expectLe(audit, "serving", "restarts",
                 (double)report.restarts, (double)report.batchesKilled);
        expectEq(audit, "serving", "requestsKilled",
                 report.retriesTotal + report.retryGiveUps,
                 report.requestsKilled);
        expectLe(audit, "serving", "faultsInjected",
                 (double)report.faultsInjected,
                 (double)report.faultsScheduled);
        expectLe(audit, "serving", "failedRequests",
                 (double)report.failedRequests,
                 (double)report.completed);
    }

    return audit;
}

AuditReport
auditPipeline(const partition::PipelineResult &result)
{
    AuditReport audit;
    const partition::PartitionPlan &plan = result.plan;
    const int k = plan.stageCount();
    if (k < 1) {
        audit.violations.push_back(Violation{
            "pipeline", "stages", ">= 1", std::to_string(k)});
        return audit;
    }

    std::uint64_t fill = 0, stage_cycles = 0, link_cycles = 0;
    std::uint64_t macs = 0, bottleneck = 0;
    int bottleneck_stage = 0;
    int next_first = 0;
    for (int s = 0; s < k; ++s) {
        const partition::PipelineStage &stage = plan.stages[s];
        const std::string source =
            "pipeline/stage" + std::to_string(s);
        // Each stage's own cycle accounting must hold, and the
        // stage totals must be the simulation's, not a cached copy
        // that drifted.
        audit.merge(auditSim(*stage.sim));
        expectEq(audit, source, "stageCycles",
                 stage.sim->totalCycles, stage.stageCycles);
        expectEq(audit, source, "firstLayer",
                 (std::uint64_t)next_first,
                 (std::uint64_t)stage.firstLayer);
        expectLe(audit, source, "layerCount", 1.0,
                 (double)stage.layerCount());
        expectEq(audit, source, "simBatch", (std::uint64_t)plan.batch,
                 (std::uint64_t)stage.sim->batch);
        next_first = stage.lastLayer + 1;

        const std::uint64_t occ = stage.occupancyCycles();
        fill += occ;
        stage_cycles += stage.stageCycles;
        link_cycles += stage.linkCycles;
        macs += stage.sim->macOps;
        if (occ > bottleneck) {
            bottleneck = occ;
            bottleneck_stage = s;
        }
        expectRange(audit, source, "utilization",
                    plan.stageUtilization(s), 0.0, 1.0);
    }
    expectEq(audit, "pipeline", "lastStageLinkCycles", 0,
             plan.stages[k - 1].linkCycles);
    expectEq(audit, "pipeline", "lastStageLinkBytes", 0,
             plan.stages[k - 1].linkBytes);

    expectEq(audit, "pipeline", "bottleneckCycles", bottleneck,
             plan.bottleneckCycles);
    expectEq(audit, "pipeline", "bottleneckStage",
             (std::uint64_t)bottleneck_stage,
             (std::uint64_t)plan.bottleneckStage);
    expectEq(audit, "pipeline", "bottleneckUtilization", 1,
             (std::uint64_t)plan.stageUtilization(
                 plan.bottleneckStage));
    // Σ stage + link cycles is exactly the fill latency, and the
    // bottleneck bounds it on both sides: one stage cannot exceed
    // the sum, and no stage exceeds the bottleneck.
    expectEq(audit, "pipeline", "fillCycles",
             stage_cycles + link_cycles, plan.fillCycles);
    expectEq(audit, "pipeline", "fillCycles", fill, plan.fillCycles);
    expectLe(audit, "pipeline", "bottleneckLeFill",
             (double)plan.bottleneckCycles, (double)plan.fillCycles);
    expectLe(audit, "pipeline", "fillLeStagesTimesBottleneck",
             (double)plan.fillCycles,
             (double)k * (double)plan.bottleneckCycles);
    expectEq(audit, "pipeline", "totalStageCycles", stage_cycles,
             result.totalStageCycles);
    expectEq(audit, "pipeline", "totalLinkCycles", link_cycles,
             result.totalLinkCycles);
    expectEq(audit, "pipeline", "macOpsPerBatch", macs,
             result.macOpsPerBatch);
    expectEq(audit, "pipeline", "makespanCycles",
             plan.fillCycles + (std::uint64_t)(result.batches - 1) *
                                   plan.bottleneckCycles,
             result.makespanCycles);
    return audit;
}

AuditReport
auditSharding(const sharding::ReplicaGroupResult &result)
{
    AuditReport audit;
    const int r = result.replicas;
    if (r < 1 || !result.wideSim) {
        audit.violations.push_back(Violation{
            "sharding/dp", "replicas", ">= 1 with a wide sim",
            std::to_string(r)});
        return audit;
    }
    audit.merge(auditSim(*result.wideSim));
    expectEq(audit, "sharding/dp", "wideShare",
             (std::uint64_t)((result.batch + r - 1) / r),
             (std::uint64_t)result.wideShare);
    expectEq(audit, "sharding/dp", "wideSimBatch",
             (std::uint64_t)result.wideShare,
             (std::uint64_t)result.wideSim->batch);
    expectEq(audit, "sharding/dp", "computeCycles",
             result.wideSim->totalCycles, result.computeCycles);
    expectEq(audit, "sharding/dp", "totalCycles",
             sharding::saturatingAdd(result.computeCycles,
                                     result.gatherCycles),
             result.totalCycles);
    if (r == 1) {
        // Degree 1 degenerates to the single-chip path exactly.
        expectEq(audit, "sharding/dp", "gatherCyclesAtR1", 0,
                 result.gatherCycles);
        expectEq(audit, "sharding/dp", "gatherBytesAtR1", 0,
                 result.gatherBytes);
        expectEq(audit, "sharding/dp", "soloIdentityAtR1",
                 result.soloCycles, result.totalCycles);
    }
    // Splitting a batch R ways can never win more than R.
    expectLe(audit, "sharding/dp", "speedupLeReplicas",
             result.speedup(), (double)r);
    return audit;
}

AuditReport
auditSharding(const sharding::TensorShardResult &result)
{
    AuditReport audit;
    const int t = result.shards;
    if (t < 1 || !result.wideSim) {
        audit.violations.push_back(Violation{
            "sharding/tp", "shards", ">= 1 with a wide sim",
            std::to_string(t)});
        return audit;
    }
    audit.merge(auditSim(*result.wideSim));
    expectEq(audit, "sharding/tp", "layerCount",
             (std::uint64_t)result.wideSim->layers.size(),
             (std::uint64_t)result.layers.size());
    std::uint64_t shard = 0, coll = 0, bytes = 0;
    for (std::size_t l = 0; l < result.layers.size(); ++l) {
        const sharding::ShardLayerTiming &timing = result.layers[l];
        expectEq(audit, "sharding/tp/" + timing.layerName,
                 "shardCycles",
                 result.wideSim->layers[l].totalCycles(),
                 timing.shardCycles);
        shard += timing.shardCycles;
        coll = sharding::saturatingAdd(coll, timing.reduceCycles);
        bytes = sharding::saturatingAdd(bytes, timing.reduceBytes);
    }
    expectEq(audit, "sharding/tp", "shardCycles", shard,
             result.shardCycles);
    expectEq(audit, "sharding/tp", "wideSimCycles",
             result.wideSim->totalCycles, result.shardCycles);
    expectEq(audit, "sharding/tp", "collectiveCycles", coll,
             result.collectiveCycles);
    expectEq(audit, "sharding/tp", "collectiveBytes", bytes,
             result.collectiveBytes);
    expectEq(audit, "sharding/tp", "totalCycles",
             sharding::saturatingAdd(result.shardCycles,
                                     result.collectiveCycles),
             result.totalCycles);
    if (t == 1) {
        expectEq(audit, "sharding/tp", "collectiveCyclesAtT1", 0,
                 result.collectiveCycles);
        expectEq(audit, "sharding/tp", "collectiveBytesAtT1", 0,
                 result.collectiveBytes);
        expectEq(audit, "sharding/tp", "soloIdentityAtT1",
                 result.soloCycles, result.totalCycles);
    }
    // Speedup is NOT bounded by T: narrowing a layer below the
    // PE-array width drops whole weight mappings, so a shard can
    // legitimately beat a 1/T share of the solo run. What no group
    // can beat is T chips' worth of peak MAC throughput.
    if (result.peakMacPerSec > 0) {
        expectLe(audit, "sharding/tp", "macThroughputLeShards",
                 result.effectiveMacPerSec(),
                 (double)t * result.peakMacPerSec * (1 + 1e-9));
    }
    return audit;
}

AuditReport
auditSharding(const sharding::ShardPlan &plan)
{
    AuditReport audit;
    const int k = plan.pipelineStages;
    if (plan.dataParallel < 1 || plan.tensorShards < 1 || k < 1 ||
        plan.pipeline.stageCount() != k) {
        audit.violations.push_back(Violation{
            "sharding/plan", "degrees",
            "positive R/T/K with K pipeline stages",
            std::to_string(plan.dataParallel) + "x" +
                std::to_string(plan.tensorShards) + "x" +
                std::to_string(k)});
        return audit;
    }
    std::uint64_t coll = 0, fill = 0, bottleneck = 0;
    for (int s = 0; s < k; ++s) {
        const partition::PipelineStage &stage =
            plan.pipeline.stages[s];
        const std::string source =
            "sharding/plan/stage" + std::to_string(s);
        audit.merge(auditSim(*stage.sim));
        expectEq(audit, source, "stageCycles",
                 stage.sim->totalCycles, stage.stageCycles);
        expectEq(audit, source, "stageBatch",
                 (std::uint64_t)plan.replicaShare,
                 (std::uint64_t)stage.sim->batch);
        // Overlaid occupancy: pipeline occupancy + in-range TP
        // all-reduce cycles.
        expectEq(audit, source, "occupancyCycles",
                 sharding::saturatingAdd(
                     stage.occupancyCycles(),
                     plan.stageCollectiveCycles[s]),
                 plan.stageOccupancyCycles[s]);
        coll = sharding::saturatingAdd(
            coll, plan.stageCollectiveCycles[s]);
        fill = sharding::saturatingAdd(
            fill, plan.stageOccupancyCycles[s]);
        bottleneck =
            std::max(bottleneck, plan.stageOccupancyCycles[s]);
    }
    expectEq(audit, "sharding/plan", "tensorCollectiveCycles", coll,
             plan.tensorCollectiveCycles);
    expectEq(audit, "sharding/plan", "fillCycles", fill,
             plan.fillCycles);
    expectEq(audit, "sharding/plan", "bottleneckCycles", bottleneck,
             plan.bottleneckCycles);
    expectEq(audit, "sharding/plan", "intervalCycles",
             std::max(plan.bottleneckCycles, plan.gatherCycles),
             plan.intervalCycles);
    expectEq(audit, "sharding/plan", "latencyCycles",
             sharding::saturatingAdd(plan.fillCycles,
                                     plan.gatherCycles),
             plan.latencyCycles);
    if (plan.tensorShards == 1) {
        expectEq(audit, "sharding/plan", "collectiveCyclesAtT1", 0,
                 plan.tensorCollectiveCycles);
        expectEq(audit, "sharding/plan", "collectiveBytesAtT1", 0,
                 plan.tensorCollectiveBytes);
    }
    if (plan.dataParallel == 1) {
        expectEq(audit, "sharding/plan", "gatherCyclesAtR1", 0,
                 plan.gatherCycles);
        expectEq(audit, "sharding/plan", "gatherBytesAtR1", 0,
                 plan.gatherBytes);
    }
    if (plan.chips() == 1) {
        // The degree-1 plan is the single-chip simulation itself.
        expectEq(audit, "sharding/plan", "soloIdentityAtDegree1",
                 plan.soloCycles, plan.intervalCycles);
        expectEq(audit, "sharding/plan", "fillIdentityAtDegree1",
                 plan.soloCycles, plan.fillCycles);
    }
    // Speedup is NOT bounded by R·T·K: tensor sharding can drop
    // whole weight mappings when a layer narrows below the PE-array
    // width, so the group can legitimately beat chips() solo shares.
    // What it can never beat is chips() worth of peak MAC rate.
    if (plan.peakMacPerSec > 0) {
        expectLe(audit, "sharding/plan", "macThroughputLeChips",
                 plan.effectiveMacPerSec(),
                 (double)plan.chips() * plan.peakMacPerSec *
                     (1 + 1e-9));
    }
    return audit;
}

AuditReport
auditPerf(const perf::Report &report, std::uint64_t wall_ns_bound)
{
    AuditReport audit;

    // Sum each parent path's immediate children; root phases (no '/')
    // accumulate toward the optional wall-clock bound.
    std::uint64_t root_ns = 0;
    for (const perf::PhaseStat &stat : report.phases) {
        if (stat.count == 0) {
            audit.violations.push_back(Violation{
                "perf", "phaseCount " + stat.path, ">= 1", "0"});
        }
        const std::size_t cut = stat.path.rfind('/');
        if (cut == std::string::npos) {
            root_ns += stat.ns;
            continue;
        }
        const std::string parent = stat.path.substr(0, cut);
        const perf::PhaseStat *parent_stat = report.phase(parent);
        if (parent_stat == nullptr) {
            audit.violations.push_back(
                Violation{"perf", "orphanPhase " + stat.path,
                          "parent '" + parent + "' recorded",
                          "missing"});
        }
    }
    for (const perf::PhaseStat &parent : report.phases) {
        std::uint64_t child_ns = 0;
        const std::string prefix = parent.path + "/";
        for (const perf::PhaseStat &child : report.phases) {
            if (child.path.size() <= prefix.size() ||
                child.path.compare(0, prefix.size(), prefix) != 0)
                continue;
            // Immediate children only: no further '/' past the prefix.
            if (child.path.find('/', prefix.size()) !=
                std::string::npos)
                continue;
            child_ns += child.ns;
        }
        expectLe(audit, "perf", "childSum " + parent.path,
                 (double)child_ns, (double)parent.ns);
    }
    if (wall_ns_bound != 0) {
        expectLe(audit, "perf", "rootPhasesLeWall", (double)root_ns,
                 (double)wall_ns_bound);
    }
    return audit;
}

bool
auditEnabled()
{
    const char *env = std::getenv("SUPERNPU_AUDIT");
    if (env && env[0] != '\0')
        return env[0] != '0';
    return SUPERNPU_AUDIT_DEFAULT != 0;
}

void
enforce(const AuditReport &report, const std::string &context)
{
    if (report.ok())
        return;
    for (const Violation &violation : report.violations)
        warn("audit: ", violation.str());
    fatal("audit failed for ", context, ": ",
          report.violations.size(), " invariant violation(s)");
}

} // namespace obs
} // namespace supernpu
