/**
 * @file
 * Conservation-invariant implementations.
 */

#include "audit.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/logging.hh"
#include "json_writer.hh"

#ifndef SUPERNPU_AUDIT_DEFAULT
#define SUPERNPU_AUDIT_DEFAULT 0
#endif

namespace supernpu {
namespace obs {

std::string
Violation::str() const
{
    return source + ":" + metric + " expected " + expected + " got " +
           got;
}

std::string
AuditReport::summary() const
{
    std::string out;
    for (const Violation &violation : violations) {
        if (!out.empty())
            out += '\n';
        out += violation.str();
    }
    return out;
}

void
AuditReport::merge(const AuditReport &other)
{
    violations.insert(violations.end(), other.violations.begin(),
                      other.violations.end());
}

namespace {

/** Relative slack for comparisons between derived doubles. */
bool
nearlyLe(double a, double b)
{
    const double slack =
        1e-9 * std::max({1.0, std::fabs(a), std::fabs(b)});
    return a <= b + slack;
}

void
expectEq(AuditReport &report, const std::string &source,
         const std::string &metric, std::uint64_t expected,
         std::uint64_t got)
{
    if (expected != got) {
        report.violations.push_back(
            Violation{source, metric, std::to_string(expected),
                      std::to_string(got)});
    }
}

void
expectLe(AuditReport &report, const std::string &source,
         const std::string &metric, double value, double bound)
{
    if (!nearlyLe(value, bound)) {
        report.violations.push_back(
            Violation{source, metric, "<= " + jsonNumber(bound),
                      jsonNumber(value)});
    }
}

void
expectRange(AuditReport &report, const std::string &source,
            const std::string &metric, double value, double lo,
            double hi)
{
    if (!nearlyLe(lo, value) || !nearlyLe(value, hi)) {
        report.violations.push_back(Violation{
            source, metric,
            "in [" + jsonNumber(lo) + ", " + jsonNumber(hi) + "]",
            jsonNumber(value)});
    }
}

void
auditLayer(AuditReport &report, const npusim::LayerResult &layer)
{
    const std::string source = "sim/" + layer.layerName;
    expectEq(report, source, "prepCycles", layer.prep.total(),
             layer.prepCycles);
    expectEq(report, source, "dramBytes",
             layer.dramWeightBytes + layer.dramIfmapBytes +
                 layer.dramOutputBytes,
             layer.dramBytes);
}

} // namespace

AuditReport
auditSim(const npusim::SimResult &result)
{
    AuditReport report;

    std::uint64_t compute = 0, prep = 0, stall = 0, macs = 0;
    std::uint64_t dram = 0, dram_weight = 0, dram_ifmap = 0;
    std::uint64_t dram_output = 0;
    npusim::PrepBreakdown buckets;
    for (const npusim::LayerResult &layer : result.layers) {
        auditLayer(report, layer);
        compute += layer.computeCycles;
        prep += layer.prepCycles;
        stall += layer.memoryStallCycles;
        macs += layer.macOps;
        dram += layer.dramBytes;
        dram_weight += layer.dramWeightBytes;
        dram_ifmap += layer.dramIfmapBytes;
        dram_output += layer.dramOutputBytes;
        buckets.add(layer.prep);
    }

    // Cycle roll-ups: layers -> network totals -> totalCycles.
    expectEq(report, "sim", "computeCycles", compute,
             result.computeCycles);
    expectEq(report, "sim", "prepCycles", prep, result.prepCycles);
    expectEq(report, "sim", "memoryStallCycles", stall,
             result.memoryStallCycles);
    expectEq(report, "sim", "totalCycles",
             result.computeCycles + result.prepCycles +
                 result.memoryStallCycles,
             result.totalCycles);
    expectEq(report, "sim", "prepBucketTotal", result.prep.total(),
             result.prepCycles);
    expectEq(report, "sim", "prepBucketSum", buckets.total(),
             result.prep.total());
    expectEq(report, "sim", "prepWeightLoad", buckets.weightLoad,
             result.prep.weightLoad);
    expectEq(report, "sim", "macOps", macs, result.macOps);

    // DRAM traffic decomposes exactly into its three streams.
    expectEq(report, "sim", "dramBytes", dram, result.dramBytes);
    expectEq(report, "sim", "dramStreamBytes",
             dram_weight + dram_ifmap + dram_output, result.dramBytes);

    return report;
}

AuditReport
auditServing(const serving::ServingReport &report)
{
    AuditReport audit;

    // Request conservation: the event loop drains every arrival.
    expectEq(audit, "serving", "completed", report.generated,
             report.completed);

    // Busy time is bounded by total chip-time.
    double busy = 0.0;
    for (double chip_busy : report.perChipBusySec) {
        expectLe(audit, "serving", "chipBusySec", -chip_busy, 0.0);
        busy += chip_busy;
    }
    expectLe(audit, "serving", "sumBusySec", busy,
             (double)report.chips * report.makespanSec);
    expectRange(audit, "serving", "utilization", report.utilization,
                0.0, 1.0);

    // Rates and ranges.
    expectLe(audit, "serving", "goodputRps", report.goodputRps,
             report.throughputRps);
    expectRange(audit, "serving", "availability", report.availability,
                0.0, 1.0);
    expectLe(audit, "serving", "meanQueueDepth",
             -report.meanQueueDepth, 0.0);

    // The latency tail is monotone and bounded by the max.
    expectLe(audit, "serving", "latencyP50", report.latencyP50,
             report.latencyP95);
    expectLe(audit, "serving", "latencyP95", report.latencyP95,
             report.latencyP99);
    expectLe(audit, "serving", "latencyP99", report.latencyP99,
             report.latencyP999);
    expectLe(audit, "serving", "latencyP999", report.latencyP999,
             report.latencyMax);
    expectLe(audit, "serving", "latencyMean", report.latencyMean,
             report.latencyMax);
    if (report.completed == 0) {
        // Empty runs must report zeros, not garbage (the
        // RunningStats/Histogram empty-semantics contract).
        expectLe(audit, "serving", "emptyLatencyMax",
                 report.latencyMax, 0.0);
        expectEq(audit, "serving", "emptyMaxBatchLaunched", 0,
                 (std::uint64_t)report.maxBatchLaunched);
    }

    // Batch accounting.
    expectLe(audit, "serving", "meanBatch", report.meanBatch,
             (double)report.maxBatchLaunched);
    expectLe(audit, "serving", "maxBatchLaunched",
             (double)report.maxBatchLaunched, (double)report.maxBatch);
    std::uint64_t chip_batches = 0;
    for (std::uint64_t batches : report.perChipBatches)
        chip_batches += batches;
    if (!report.perChipBatches.empty()) {
        expectEq(audit, "serving", "perChipBatches", chip_batches,
                 report.batchesLaunched);
    }

    // Fault-path conservation.
    if (report.resilienceActive) {
        expectLe(audit, "serving", "restarts",
                 (double)report.restarts, (double)report.batchesKilled);
        expectEq(audit, "serving", "requestsKilled",
                 report.retriesTotal + report.retryGiveUps,
                 report.requestsKilled);
        expectLe(audit, "serving", "faultsInjected",
                 (double)report.faultsInjected,
                 (double)report.faultsScheduled);
        expectLe(audit, "serving", "failedRequests",
                 (double)report.failedRequests,
                 (double)report.completed);
    }

    return audit;
}

bool
auditEnabled()
{
    const char *env = std::getenv("SUPERNPU_AUDIT");
    if (env && env[0] != '\0')
        return env[0] != '0';
    return SUPERNPU_AUDIT_DEFAULT != 0;
}

void
enforce(const AuditReport &report, const std::string &context)
{
    if (report.ok())
        return;
    for (const Violation &violation : report.violations)
        warn("audit: ", violation.str());
    fatal("audit failed for ", context, ": ",
          report.violations.size(), " invariant violation(s)");
}

} // namespace obs
} // namespace supernpu
