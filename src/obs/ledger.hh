/**
 * @file
 * The run ledger: a structured, machine-checkable record of what one
 * simulation run did.
 *
 * Three layers of derived accounting stack up in this repository —
 * cycles (npusim) -> busy time (serving) -> availability/goodput
 * (reliability) — and each layer can silently drift from the one
 * below it. The ledger is the fix, borrowed from SCALE-Sim-style
 * cycle simulators that emit per-layer CSV records from the inner
 * loop: every run collects its named counters and per-phase spans
 * into one RunLedger, the audit module (obs/audit.hh) asserts
 * conservation invariants against it, and the whole thing exports as
 * JSON or CSV for dashboards, CI diffing, and postmortems.
 *
 * Shape: a ledger is an ordered set of *sections* (flat key/value
 * groups: "sim", "serving", "simCache", ...) plus an ordered set of
 * *tables* (named column sets with rows: per-layer spans, per-chip
 * counters, sweep grids). Insertion order is preserved everywhere
 * and all number formatting is deterministic, so two identical runs
 * produce byte-identical ledger files — the property the CI ledger
 * job diffs for.
 *
 * Builders at the bottom translate each subsystem's result record
 * (SimResult, ServingReport, FaultSchedule, SimCacheStats,
 * ThreadPool::Stats) into ledger sections; the subsystems themselves
 * never depend on obs.
 */

#ifndef SUPERNPU_OBS_LEDGER_HH
#define SUPERNPU_OBS_LEDGER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/parallel.hh"
#include "npusim/result.hh"
#include "perf/profile.hh"
#include "npusim/sim_cache.hh"
#include "partition/layer_timing_cache.hh"
#include "partition/pipeline_sim.hh"
#include "reliability/fault_model.hh"
#include "serving/metrics.hh"
#include "sharding/planner.hh"

namespace supernpu {
namespace obs {

/** One ledger cell: an integer count, a real measure, or a label. */
class Value
{
  public:
    enum class Kind
    {
        Int,
        Real,
        Text,
    };

    Value() = default;
    static Value integer(std::uint64_t v);
    static Value real(double v);
    static Value text(std::string v);

    Kind kind() const { return _kind; }
    std::uint64_t asInt() const { return _int; }
    double asReal() const { return _real; }
    const std::string &asText() const { return _text; }

    /** Numeric view: Int widened to double; Text is 0. */
    double number() const;

    /** Rendered for CSV cells (commas in text become ';'). */
    std::string csvText() const;

  private:
    Kind _kind = Kind::Int;
    std::uint64_t _int = 0;
    double _real = 0.0;
    std::string _text;
};

/** Ledger schema identifier embedded in every JSON export. */
constexpr const char *kLedgerSchema = "supernpu-ledger-v1";

/** Ordered sections of counters plus ordered tables of rows. */
class RunLedger
{
  public:
    /** A named column set with rows (per-layer, per-chip, ...). */
    struct Table
    {
        std::string name;
        std::vector<std::string> columns;
        std::vector<std::vector<Value>> rows;
    };

    // --- counters ---------------------------------------------------
    void setInt(const std::string &section, const std::string &key,
                std::uint64_t value);
    void setReal(const std::string &section, const std::string &key,
                 double value);
    void setText(const std::string &section, const std::string &key,
                 const std::string &value);
    /** Add to an integer counter, creating it at `delta`. */
    void incInt(const std::string &section, const std::string &key,
                std::uint64_t delta);

    // --- tables -----------------------------------------------------
    /**
     * Create-or-get a table. Columns are fixed at creation; a
     * create-or-get with different columns panics.
     */
    Table &table(const std::string &name,
                 const std::vector<std::string> &columns);
    /** Append one row; the width must match the table's columns. */
    void addRow(const std::string &name, std::vector<Value> row);

    // --- lookup (audits and tests) ----------------------------------
    /** Null when the section or key does not exist. */
    const Value *find(const std::string &section,
                      const std::string &key) const;
    /** Null when the table does not exist. */
    const Table *findTable(const std::string &name) const;

    // --- export -----------------------------------------------------
    /** The whole ledger as one deterministic JSON document. */
    std::string json() const;
    /**
     * CSV rendering: a `# section <name>` block of key,value lines
     * per section, then a `# table <name>` block with a header row
     * per table. One file, deterministic bytes.
     */
    std::string csv() const;
    /**
     * Write to `path` — CSV when the path ends in ".csv", JSON
     * otherwise. Returns false when the file cannot be written.
     */
    bool write(const std::string &path) const;

  private:
    struct Section
    {
        std::string name;
        std::vector<std::pair<std::string, Value>> entries;
    };

    Section &sectionFor(const std::string &name);
    Value &entryFor(const std::string &section, const std::string &key);

    std::vector<Section> _sections;
    std::vector<Table> _tables;
};

// --- subsystem builders ---------------------------------------------

/**
 * Record a cycle-level simulation: a "sim" section of network totals
 * (cycles, prep buckets, DRAM breakdown, MACs) and a "layers" table
 * with one row per layer.
 */
void addSimResult(RunLedger &ledger, const npusim::SimResult &result);

/**
 * Record a serving run: a "serving" section (volume, rates, latency
 * tail, resilience counters) and a "chips" table of per-chip batch
 * and busy-time spans.
 */
void addServingReport(RunLedger &ledger,
                      const serving::ServingReport &report);

/**
 * Record a pipeline-parallel run: a "pipeline" section (stage
 * count, bottleneck, fill/steady-state timing, link parameters) and
 * a "stages" table with one row per pipeline stage. A K=1 plan's
 * stage simulation is the single-chip SimResult itself, so pairing
 * this with addSimResult(stage.sim) reproduces the single-chip
 * ledger byte for byte.
 */
void addPipelineResult(RunLedger &ledger,
                       const partition::PipelineResult &result);

/**
 * Record a hybrid DP×TP×PP placement: a "sharding" section (degrees,
 * collective cycle/byte totals, interval/latency/speedup) and a
 * "shardStages" table with one row per pipeline stage carrying the
 * TP all-reduce overlay. A degree-1 plan's stage simulation is the
 * single-chip SimResult itself, so pairing this with
 * addSimResult(*plan.pipeline.stages[0].sim) reproduces the
 * single-chip ledger byte for byte.
 */
void addShardPlan(RunLedger &ledger, const sharding::ShardPlan &plan);

/** Record a fault schedule summary under a "faults" section. */
void addFaultSchedule(RunLedger &ledger,
                      const reliability::FaultSchedule &schedule);

/** Record memo-cache efficacy under a "simCache" section. */
void addSimCacheStats(RunLedger &ledger,
                      const npusim::SimCacheStats &stats);

/**
 * Record the partitioner's layer-timing memo counters under a
 * "layerTimingCache" section. Counts are identical at any job count
 * (single-flight accounting), so the section is safe for the CI
 * jobs=1-vs-N ledger byte-comparison.
 */
void addLayerTimingCacheStats(
    RunLedger &ledger, const partition::LayerTimingCacheStats &stats);

/** Record sweep parallelism under a "threadPool" section. */
void addPoolStats(RunLedger &ledger, const ThreadPool::Stats &stats);

/**
 * Record a profiler snapshot: a "perf" section of event counters and
 * a "perfPhases" table of (path, count, ns) rows. Phase nanoseconds
 * are wall-clock — exclude this section from byte-stability checks.
 */
void addPerfReport(RunLedger &ledger, const perf::Report &report);

} // namespace obs
} // namespace supernpu

#endif // SUPERNPU_OBS_LEDGER_HH
