/**
 * @file
 * Minimal deterministic JSON emitter for run ledgers.
 *
 * The ledger's byte-for-byte reproducibility guarantee (two runs of
 * the same deterministic simulation must produce identical ledger
 * files) rules out any formatting that depends on locale, pointer
 * order, or platform float printing quirks. This writer therefore
 * owns all formatting: keys and values are emitted strictly in the
 * order the caller supplies them, doubles print through one fixed
 * "%.17g" format (round-trip exact), and strings are escaped per
 * RFC 8259.
 */

#ifndef SUPERNPU_OBS_JSON_WRITER_HH
#define SUPERNPU_OBS_JSON_WRITER_HH

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace supernpu {
namespace obs {

/** RFC 8259 string escaping (quotes not included). */
std::string jsonEscaped(const std::string &text);

/**
 * Round-trip-exact, locale-independent rendering of a double.
 * fatal()s on non-finite values: "%.17g" would print `inf`/`nan`,
 * which is not JSON — the strict obs/json_reader rejects it and the
 * ledger byte-cmp CI jobs break downstream. A non-finite metric is
 * always an upstream bug, so it dies loudly here instead.
 */
std::string jsonNumber(double value);

/**
 * Streaming JSON document builder. The caller is responsible for
 * well-formedness (every beginObject is ended, values only where
 * values belong); the writer panics on the mismatches it can detect
 * cheaply. Output is pretty-printed with two-space indentation so
 * ledgers diff readably.
 */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key; the next call must supply its value. */
    JsonWriter &key(const std::string &name);

    JsonWriter &value(const std::string &text);
    JsonWriter &value(const char *text);
    JsonWriter &value(double number);
    JsonWriter &value(std::uint64_t number);
    JsonWriter &value(bool flag);

    /** The document built so far. */
    std::string str() const { return _out.str(); }

    /**
     * Dotted path of the entity being written ("sections.sim.seconds",
     * "tables.layers.rows[3][2]"), for error messages. The innermost
     * array index refers to the element the *next* emission appends.
     */
    std::string pathString() const;

  private:
    /** Emit separators/indentation before a key or value. */
    void separate();

    /** One open scope's breadcrumb for pathString(). */
    struct Breadcrumb
    {
        bool isArray = false;
        std::size_t elements = 0; ///< elements emitted in this scope
        std::string lastKey;      ///< last key() seen (objects only)
    };

    std::ostringstream _out;
    std::vector<bool> _firstInScope; ///< per open scope
    std::vector<Breadcrumb> _path;   ///< parallel to _firstInScope
    bool _afterKey = false;
    int _depth = 0;
};

} // namespace obs
} // namespace supernpu

#endif // SUPERNPU_OBS_JSON_WRITER_HH
