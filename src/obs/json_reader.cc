/**
 * @file
 * Recursive-descent JSON parser implementation.
 */

#include "json_reader.hh"

#include <cctype>
#include <cstdlib>
#include <sstream>

namespace supernpu {
namespace obs {

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &member : object) {
        if (member.first == key)
            return &member.second;
    }
    return nullptr;
}

double
JsonValue::numberAt(const std::string &key, double fallback) const
{
    const JsonValue *member = find(key);
    return member && member->isNumber() ? member->number : fallback;
}

std::string
JsonValue::stringAt(const std::string &key,
                    const std::string &fallback) const
{
    const JsonValue *member = find(key);
    return member && member->isString() ? member->string : fallback;
}

namespace {

/** Cursor over the document with one-shot error reporting. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : _text(text) {}

    bool parse(JsonValue &out)
    {
        skipSpace();
        if (!parseValue(out))
            return false;
        skipSpace();
        if (_pos != _text.size())
            return fail("trailing characters after document");
        return true;
    }

    const std::string &error() const { return _error; }

  private:
    bool fail(const std::string &what)
    {
        if (_error.empty()) {
            std::ostringstream os;
            os << "JSON parse error at byte " << _pos << ": " << what;
            _error = os.str();
        }
        return false;
    }

    void skipSpace()
    {
        while (_pos < _text.size() &&
               (_text[_pos] == ' ' || _text[_pos] == '\t' ||
                _text[_pos] == '\n' || _text[_pos] == '\r'))
            ++_pos;
    }

    bool consume(char c)
    {
        if (_pos < _text.size() && _text[_pos] == c) {
            ++_pos;
            return true;
        }
        return false;
    }

    bool literal(const char *word, std::size_t len)
    {
        if (_text.compare(_pos, len, word) != 0)
            return fail("bad literal");
        _pos += len;
        return true;
    }

    bool parseValue(JsonValue &out)
    {
        if (_pos >= _text.size())
            return fail("unexpected end of document");
        switch (_text[_pos]) {
          case '{':
            return parseObject(out);
          case '[':
            return parseArray(out);
          case '"':
            out.kind = JsonValue::Kind::String;
            return parseString(out.string);
          case 't':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return literal("true", 4);
          case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return literal("false", 5);
          case 'n':
            out.kind = JsonValue::Kind::Null;
            return literal("null", 4);
          default:
            return parseNumber(out);
        }
    }

    bool parseObject(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Object;
        ++_pos; // '{'
        skipSpace();
        if (consume('}'))
            return true;
        for (;;) {
            skipSpace();
            std::string key;
            if (!parseString(key))
                return false;
            skipSpace();
            if (!consume(':'))
                return fail("expected ':' after object key");
            skipSpace();
            JsonValue value;
            if (!parseValue(value))
                return false;
            out.object.emplace_back(std::move(key), std::move(value));
            skipSpace();
            if (consume(','))
                continue;
            if (consume('}'))
                return true;
            return fail("expected ',' or '}' in object");
        }
    }

    bool parseArray(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Array;
        ++_pos; // '['
        skipSpace();
        if (consume(']'))
            return true;
        for (;;) {
            skipSpace();
            JsonValue value;
            if (!parseValue(value))
                return false;
            out.array.push_back(std::move(value));
            skipSpace();
            if (consume(','))
                continue;
            if (consume(']'))
                return true;
            return fail("expected ',' or ']' in array");
        }
    }

    bool parseString(std::string &out)
    {
        if (!consume('"'))
            return fail("expected '\"'");
        out.clear();
        while (_pos < _text.size()) {
            const char c = _text[_pos++];
            if (c == '"')
                return true;
            if ((unsigned char)c < 0x20)
                return fail("unescaped control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (_pos >= _text.size())
                return fail("dangling escape");
            const char esc = _text[_pos++];
            switch (esc) {
              case '"':  out += '"';  break;
              case '\\': out += '\\'; break;
              case '/':  out += '/';  break;
              case 'b':  out += '\b'; break;
              case 'f':  out += '\f'; break;
              case 'n':  out += '\n'; break;
              case 'r':  out += '\r'; break;
              case 't':  out += '\t'; break;
              case 'u': {
                if (_pos + 4 > _text.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = _text[_pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= (unsigned)(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= (unsigned)(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= (unsigned)(h - 'A' + 10);
                    else
                        return fail("bad \\u escape digit");
                }
                // UTF-8 encode the BMP code point (the writer only
                // escapes control characters, so surrogate pairs do
                // not occur in our own documents; lone surrogates
                // encode as-is rather than failing).
                if (code < 0x80) {
                    out += (char)code;
                } else if (code < 0x800) {
                    out += (char)(0xC0 | (code >> 6));
                    out += (char)(0x80 | (code & 0x3F));
                } else {
                    out += (char)(0xE0 | (code >> 12));
                    out += (char)(0x80 | ((code >> 6) & 0x3F));
                    out += (char)(0x80 | (code & 0x3F));
                }
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool parseNumber(JsonValue &out)
    {
        const std::size_t start = _pos;
        if (consume('-')) {
        }
        while (_pos < _text.size() &&
               std::isdigit((unsigned char)_text[_pos]))
            ++_pos;
        if (consume('.')) {
            while (_pos < _text.size() &&
                   std::isdigit((unsigned char)_text[_pos]))
                ++_pos;
        }
        if (_pos < _text.size() &&
            (_text[_pos] == 'e' || _text[_pos] == 'E')) {
            ++_pos;
            if (_pos < _text.size() &&
                (_text[_pos] == '+' || _text[_pos] == '-'))
                ++_pos;
            while (_pos < _text.size() &&
                   std::isdigit((unsigned char)_text[_pos]))
                ++_pos;
        }
        if (_pos == start)
            return fail("expected a value");
        const std::string token = _text.substr(start, _pos - start);
        char *end = nullptr;
        out.kind = JsonValue::Kind::Number;
        out.number = std::strtod(token.c_str(), &end);
        if (end == nullptr || *end != '\0')
            return fail("malformed number");
        return true;
    }

    const std::string &_text;
    std::size_t _pos = 0;
    std::string _error;
};

} // namespace

std::optional<JsonValue>
parseJson(const std::string &text, std::string *error)
{
    Parser parser(text);
    JsonValue out;
    if (!parser.parse(out)) {
        if (error)
            *error = parser.error();
        return std::nullopt;
    }
    return out;
}

} // namespace obs
} // namespace supernpu
