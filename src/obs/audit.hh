/**
 * @file
 * Conservation audits over simulation results.
 *
 * The paper validates its architecture model against gate-level JSIM
 * runs (Fig. 13); this repository's equivalent is cheaper and runs
 * on every result: a set of conservation invariants that any correct
 * accounting must satisfy, evaluated after each run. Cycle buckets
 * must roll up (`totalCycles == compute + prep + stall`, per layer
 * and summed), DRAM traffic must decompose exactly into its weight /
 * ifmap / output streams, serving busy-time cannot exceed
 * chips x makespan, goodput cannot exceed throughput, percentiles
 * must be ordered, and the fault path's kill / retry / give-up
 * counters must balance. A violation means a bookkeeping bug, never
 * a modeling choice — which is why audits can be fatal.
 *
 * Audits are always on in the test suites. For release runs they are
 * gated: the SUPERNPU_AUDIT environment variable ("1"/"0") wins,
 * falling back to the SUPERNPU_AUDIT CMake option's compiled-in
 * default.
 */

#ifndef SUPERNPU_OBS_AUDIT_HH
#define SUPERNPU_OBS_AUDIT_HH

#include <string>
#include <vector>

#include "npusim/result.hh"
#include "partition/pipeline_sim.hh"
#include "perf/profile.hh"
#include "serving/metrics.hh"
#include "sharding/planner.hh"

namespace supernpu {
namespace obs {

/** One failed invariant, formatted as `source:metric expected-vs-got`. */
struct Violation
{
    std::string source; ///< which accounting layer ("sim", "serving", a layer)
    std::string metric; ///< which invariant
    std::string expected;
    std::string got;

    /** `source:metric expected <x> got <y>` — the diagnostic line. */
    std::string str() const;
};

/** The outcome of one audit pass. */
struct AuditReport
{
    std::vector<Violation> violations;

    bool ok() const { return violations.empty(); }
    /** All violation lines joined with newlines; "" when ok. */
    std::string summary() const;
    /** Merge another report's violations into this one. */
    void merge(const AuditReport &other);
};

/**
 * Audit a cycle-level simulation result: per-layer and summed cycle
 * roll-ups, prep-bucket totals, and the DRAM byte decomposition.
 */
AuditReport auditSim(const npusim::SimResult &result);

/**
 * Audit a serving run: request conservation, busy-time versus
 * makespan, rate ordering (goodput <= throughput), availability and
 * utilization ranges, percentile ordering, batch accounting, and the
 * fault-path kill/retry/give-up balance.
 */
AuditReport auditServing(const serving::ServingReport &report);

/**
 * Audit a pipeline-parallel run: every stage's SimResult, stage
 * range contiguity, occupancy roll-ups (Σ stage + link cycles ==
 * fill), the bottleneck being the max-occupancy stage with
 * bottleneck <= fill <= stages x bottleneck, stage utilizations in
 * (0, 1] with exactly 1 at the bottleneck, a link-free final stage,
 * and the stream makespan identity fill + (M-1)·bottleneck.
 */
AuditReport auditPipeline(const partition::PipelineResult &result);

/**
 * Audit a data-parallel replica-group run: the wide share's
 * SimResult, compute + gather == total cycle conservation, a
 * zero-cost gather (and total == solo) at R=1, and the DP speedup
 * bounded by R — splitting a batch R ways can never win more than R.
 */
AuditReport auditSharding(const sharding::ReplicaGroupResult &result);

/**
 * Audit a tensor-parallel shard run: the wide shard's SimResult,
 * per-layer shard/reduce cycles and bytes rolling up exactly to the
 * totals, shard + collective == total, zero collectives (and
 * total == solo) at T=1, and group MAC throughput bounded by T
 * chips' peak rate (the speedup itself may exceed T when sharding
 * drops whole weight mappings).
 */
AuditReport auditSharding(const sharding::TensorShardResult &result);

/**
 * Audit a hybrid DP×TP×PP plan: every pipeline stage's SimResult,
 * the TP overlay rolling up (Σ stage collective == tensor
 * collective, stage occupancy == pipeline occupancy + overlay),
 * bottleneck == max overlaid occupancy with fill == Σ, interval ==
 * max(bottleneck, gather) and latency == fill + gather, zero
 * collectives at degree 1, and group MAC throughput bounded by
 * R·T·K chips' peak rate (the speedup itself may exceed R·T·K when
 * sharding drops whole weight mappings).
 */
AuditReport auditSharding(const sharding::ShardPlan &plan);

/**
 * Audit a profiler snapshot: every nested phase path must have its
 * parent path present in the report (scopes close inside out, so an
 * orphan child means the registry was corrupted or reset mid-scope),
 * and the children of one parent can never sum past the parent's
 * time (child intervals are disjoint subintervals of each parent
 * instance). When `wall_ns_bound` is nonzero, the root phases must
 * additionally sum to at most that bound — the single-threaded
 * roll-up check the bench harness runs against its measured wall
 * clock (meaningless with worker threads, where phase time is a sum
 * across concurrent timelines; pass 0 there).
 */
AuditReport auditPerf(const perf::Report &report,
                      std::uint64_t wall_ns_bound = 0);

/**
 * Whether audits should run: the SUPERNPU_AUDIT environment variable
 * ("1" on, "0" off) when set, else the compiled-in default from the
 * SUPERNPU_AUDIT CMake option.
 */
bool auditEnabled();

/**
 * Print every violation via warn() and fatal() when the report is
 * not ok. No-op on a clean report.
 */
void enforce(const AuditReport &report, const std::string &context);

} // namespace obs
} // namespace supernpu

#endif // SUPERNPU_OBS_AUDIT_HH
