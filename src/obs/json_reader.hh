/**
 * @file
 * Minimal JSON parser — the read side of the obs JSON story.
 *
 * json_writer.hh emits the ledgers and BENCH_*.json artifacts; this
 * parser exists so in-repo consumers (the bench harness's
 * --baseline comparison, tests asserting on emitted documents) can
 * read them back without an external dependency. It is a strict
 * RFC 8259 subset parser over complete in-memory documents: objects
 * keep key insertion order (matching the writer's deterministic
 * layout), numbers parse as double (every number the writer emits
 * round-trips through %.17g), and any syntax error reports its byte
 * offset instead of guessing.
 */

#ifndef SUPERNPU_OBS_JSON_READER_HH
#define SUPERNPU_OBS_JSON_READER_HH

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace supernpu {
namespace obs {

/** One parsed JSON value; a tree of these is a document. */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    /** Key/value pairs in document order (duplicates kept as-is). */
    std::vector<std::pair<std::string, JsonValue>> object;

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }

    /** First member named `key`; null when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    /** Member `key` as a number; `fallback` when absent/mistyped. */
    double numberAt(const std::string &key, double fallback = 0.0) const;

    /** Member `key` as a string; `fallback` when absent/mistyped. */
    std::string stringAt(const std::string &key,
                         const std::string &fallback = "") const;
};

/**
 * Parse one complete JSON document. Returns nullopt on any syntax
 * error (trailing garbage included) and, when `error` is non-null,
 * stores a one-line diagnostic with the byte offset.
 */
std::optional<JsonValue> parseJson(const std::string &text,
                                   std::string *error = nullptr);

} // namespace obs
} // namespace supernpu

#endif // SUPERNPU_OBS_JSON_READER_HH
