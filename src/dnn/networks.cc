/**
 * @file
 * Workload zoo definitions.
 *
 * Spatial sizes already account for the interleaved pooling layers
 * (pooling carries no MAC work for the NPU). All networks are the
 * standard ImageNet-inference configurations at 224 x 224 input
 * (227 x 227 for AlexNet's historical first layer).
 */

#include "networks.hh"

namespace supernpu {
namespace dnn {

Network
makeAlexNet()
{
    Network net;
    net.name = "AlexNet";
    net.layers = {
        conv("conv1", 3, 227, 96, 11, 4, 0),  // -> 55
        // conv2 runs pre-pooling at 55 x 55 (the paper's variant: its
        // quoted 1.05 MB largest-layer footprint and TPU batch of 22
        // only arise with conv2's ifmap+ofmap at 55 x 55).
        conv("conv2", 96, 55, 256, 5),
        conv("conv3", 256, 13, 384, 3),       // after pools -> 13
        conv("conv4", 384, 13, 384, 3),
        conv("conv5", 384, 13, 256, 3),
        fullyConnected("fc6", 256 * 6 * 6, 4096), // after pool -> 6
        fullyConnected("fc7", 4096, 4096),
        fullyConnected("fc8", 4096, 1000),
    };
    net.check();
    return net;
}

namespace {

/** Append the 13 VGG16 convolution layers. */
void
appendVggBackbone(Network &net)
{
    net.layers.push_back(conv("conv1_1", 3, 224, 64, 3));
    net.layers.push_back(conv("conv1_2", 64, 224, 64, 3));
    net.layers.push_back(conv("conv2_1", 64, 112, 128, 3));
    net.layers.push_back(conv("conv2_2", 128, 112, 128, 3));
    net.layers.push_back(conv("conv3_1", 128, 56, 256, 3));
    net.layers.push_back(conv("conv3_2", 256, 56, 256, 3));
    net.layers.push_back(conv("conv3_3", 256, 56, 256, 3));
    net.layers.push_back(conv("conv4_1", 256, 28, 512, 3));
    net.layers.push_back(conv("conv4_2", 512, 28, 512, 3));
    net.layers.push_back(conv("conv4_3", 512, 28, 512, 3));
    net.layers.push_back(conv("conv5_1", 512, 14, 512, 3));
    net.layers.push_back(conv("conv5_2", 512, 14, 512, 3));
    net.layers.push_back(conv("conv5_3", 512, 14, 512, 3));
}

} // namespace

Network
makeVgg16()
{
    Network net;
    net.name = "VGG16";
    appendVggBackbone(net);
    net.layers.push_back(fullyConnected("fc6", 512 * 7 * 7, 4096));
    net.layers.push_back(fullyConnected("fc7", 4096, 4096));
    net.layers.push_back(fullyConnected("fc8", 4096, 1000));
    net.check();
    return net;
}

namespace {

/**
 * Append one ResNet bottleneck block: 1x1 reduce, 3x3, 1x1 expand,
 * plus the projection shortcut when the block changes dimensions.
 */
void
appendBottleneck(Network &net, const std::string &prefix, int in_c,
                 int mid_c, int out_c, int in_hw, int stride,
                 bool project)
{
    net.layers.push_back(
        conv(prefix + "_1x1a", in_c, in_hw, mid_c, 1, 1, 0));
    net.layers.push_back(
        conv(prefix + "_3x3", mid_c, in_hw, mid_c, 3, stride));
    const int out_hw = in_hw / stride;
    net.layers.push_back(
        conv(prefix + "_1x1b", mid_c, out_hw, out_c, 1, 1, 0));
    if (project) {
        net.layers.push_back(
            conv(prefix + "_proj", in_c, in_hw, out_c, 1, stride, 0));
    }
}

} // namespace

Network
makeResNet50()
{
    Network net;
    net.name = "ResNet50";
    net.layers.push_back(conv("conv1", 3, 224, 64, 7, 2, 3)); // -> 112

    struct Stage { int blocks, mid, out, hw, stride; };
    // After conv1's 3x3/2 max pool, stage 2 starts at 56 x 56.
    const Stage stages[] = {
        {3, 64, 256, 56, 1},
        {4, 128, 512, 56, 2},
        {6, 256, 1024, 28, 2},
        {3, 512, 2048, 14, 2},
    };

    int in_c = 64;
    for (int s = 0; s < 4; ++s) {
        const Stage &stage = stages[s];
        int hw = stage.hw;
        for (int b = 0; b < stage.blocks; ++b) {
            const std::string prefix =
                "res" + std::to_string(s + 2) + char('a' + b);
            const int stride = b == 0 ? stage.stride : 1;
            appendBottleneck(net, prefix, in_c, stage.mid, stage.out, hw,
                             stride, b == 0);
            if (b == 0)
                hw /= stride;
            in_c = stage.out;
        }
    }

    net.layers.push_back(fullyConnected("fc", 2048, 1000));
    net.check();
    return net;
}

namespace {

/** Append one GoogLeNet inception module's six weight layers. */
void
appendInception(Network &net, const std::string &prefix, int in_c, int hw,
                int b1, int b2_reduce, int b2, int b3_reduce, int b3,
                int b4)
{
    net.layers.push_back(conv(prefix + "_1x1", in_c, hw, b1, 1, 1, 0));
    net.layers.push_back(
        conv(prefix + "_3x3r", in_c, hw, b2_reduce, 1, 1, 0));
    net.layers.push_back(conv(prefix + "_3x3", b2_reduce, hw, b2, 3));
    net.layers.push_back(
        conv(prefix + "_5x5r", in_c, hw, b3_reduce, 1, 1, 0));
    net.layers.push_back(conv(prefix + "_5x5", b3_reduce, hw, b3, 5));
    net.layers.push_back(conv(prefix + "_pool", in_c, hw, b4, 1, 1, 0));
}

} // namespace

Network
makeGoogLeNet()
{
    Network net;
    net.name = "GoogLeNet";
    net.layers.push_back(conv("conv1", 3, 224, 64, 7, 2, 3));  // -> 112
    net.layers.push_back(conv("conv2r", 64, 56, 64, 1, 1, 0)); // pool -> 56
    net.layers.push_back(conv("conv2", 64, 56, 192, 3));

    // name, in_c, hw, #1x1, #3x3r, #3x3, #5x5r, #5x5, pool-proj
    appendInception(net, "3a", 192, 28, 64, 96, 128, 16, 32, 32);
    appendInception(net, "3b", 256, 28, 128, 128, 192, 32, 96, 64);
    appendInception(net, "4a", 480, 14, 192, 96, 208, 16, 48, 64);
    appendInception(net, "4b", 512, 14, 160, 112, 224, 24, 64, 64);
    appendInception(net, "4c", 512, 14, 128, 128, 256, 24, 64, 64);
    appendInception(net, "4d", 512, 14, 112, 144, 288, 32, 64, 64);
    appendInception(net, "4e", 528, 14, 256, 160, 320, 32, 128, 128);
    appendInception(net, "5a", 832, 7, 256, 160, 320, 32, 128, 128);
    appendInception(net, "5b", 832, 7, 384, 192, 384, 48, 128, 128);

    net.layers.push_back(fullyConnected("fc", 1024, 1000));
    net.check();
    return net;
}

Network
makeMobileNet()
{
    Network net;
    net.name = "MobileNet";
    net.layers.push_back(conv("conv1", 3, 224, 32, 3, 2)); // -> 112

    struct Block { int out_c, stride, in_hw; };
    const Block blocks[] = {
        {64, 1, 112},  {128, 2, 112}, {128, 1, 56}, {256, 2, 56},
        {256, 1, 28},  {512, 2, 28},  {512, 1, 14}, {512, 1, 14},
        {512, 1, 14},  {512, 1, 14},  {512, 1, 14}, {1024, 2, 14},
        {1024, 1, 7},
    };

    int in_c = 32;
    int index = 2;
    for (const Block &block : blocks) {
        const std::string tag = std::to_string(index++);
        net.layers.push_back(
            depthwise("dw" + tag, in_c, block.in_hw, block.stride));
        const int out_hw = block.in_hw / block.stride;
        net.layers.push_back(
            conv("pw" + tag, in_c, out_hw, block.out_c, 1, 1, 0));
        in_c = block.out_c;
    }

    net.layers.push_back(fullyConnected("fc", 1024, 1000));
    net.check();
    return net;
}

Network
makeFasterRcnn()
{
    Network net;
    net.name = "FasterRCNN";
    // VGG16 backbone feature extractor (through conv5_3).
    appendVggBackbone(net);
    // Region proposal network on the 14 x 14 conv5 feature map.
    net.layers.push_back(conv("rpn_conv", 512, 14, 512, 3));
    net.layers.push_back(conv("rpn_cls", 512, 14, 18, 1, 1, 0));
    net.layers.push_back(conv("rpn_bbox", 512, 14, 36, 1, 1, 0));
    // Detection head on RoI-pooled 7 x 7 x 512 features.
    net.layers.push_back(fullyConnected("head_fc6", 512 * 7 * 7, 4096));
    net.layers.push_back(fullyConnected("head_fc7", 4096, 4096));
    net.layers.push_back(fullyConnected("head_cls", 4096, 21));
    net.layers.push_back(fullyConnected("head_bbox", 4096, 84));
    net.check();
    return net;
}

Network
makeResNet18()
{
    Network net;
    net.name = "ResNet18";
    net.layers.push_back(conv("conv1", 3, 224, 64, 7, 2, 3)); // -> 112

    struct Stage { int blocks, channels, hw, stride; };
    // After the stem's max pool, stage 2 starts at 56 x 56.
    const Stage stages[] = {
        {2, 64, 56, 1},
        {2, 128, 56, 2},
        {2, 256, 28, 2},
        {2, 512, 14, 2},
    };

    int in_c = 64;
    for (int s = 0; s < 4; ++s) {
        const Stage &stage = stages[s];
        int hw = stage.hw;
        for (int b = 0; b < stage.blocks; ++b) {
            const std::string prefix =
                "res" + std::to_string(s + 2) + char('a' + b);
            const int stride = b == 0 ? stage.stride : 1;
            net.layers.push_back(conv(prefix + "_3x3a", in_c, hw,
                                      stage.channels, 3, stride));
            hw /= stride;
            net.layers.push_back(conv(prefix + "_3x3b", stage.channels,
                                      hw, stage.channels, 3));
            if (b == 0 && stride != 1) {
                net.layers.push_back(conv(prefix + "_proj", in_c,
                                          hw * stride, stage.channels,
                                          1, stride, 0));
            }
            in_c = stage.channels;
        }
    }

    net.layers.push_back(fullyConnected("fc", 512, 1000));
    net.check();
    return net;
}

Network
makeVgg19()
{
    Network net;
    net.name = "VGG19";
    net.layers.push_back(conv("conv1_1", 3, 224, 64, 3));
    net.layers.push_back(conv("conv1_2", 64, 224, 64, 3));
    net.layers.push_back(conv("conv2_1", 64, 112, 128, 3));
    net.layers.push_back(conv("conv2_2", 128, 112, 128, 3));
    for (int i = 1; i <= 4; ++i) {
        net.layers.push_back(conv("conv3_" + std::to_string(i),
                                  i == 1 ? 128 : 256, 56, 256, 3));
    }
    for (int i = 1; i <= 4; ++i) {
        net.layers.push_back(conv("conv4_" + std::to_string(i),
                                  i == 1 ? 256 : 512, 28, 512, 3));
    }
    for (int i = 1; i <= 4; ++i) {
        net.layers.push_back(
            conv("conv5_" + std::to_string(i), 512, 14, 512, 3));
    }
    net.layers.push_back(fullyConnected("fc6", 512 * 7 * 7, 4096));
    net.layers.push_back(fullyConnected("fc7", 4096, 4096));
    net.layers.push_back(fullyConnected("fc8", 4096, 1000));
    net.check();
    return net;
}

std::vector<Network>
evaluationWorkloads()
{
    return {
        makeAlexNet(),   makeFasterRcnn(), makeGoogLeNet(),
        makeMobileNet(), makeResNet50(),   makeVgg16(),
    };
}

} // namespace dnn
} // namespace supernpu
