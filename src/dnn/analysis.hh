/**
 * @file
 * Workload analyses used by the paper's motivation figures:
 * ifmap duplication across PE rows (Fig. 8) and the computational
 * intensity / roofline quantities (Fig. 17).
 */

#ifndef SUPERNPU_DNN_ANALYSIS_HH
#define SUPERNPU_DNN_ANALYSIS_HH

#include <cstdint>

#include "layer.hh"

namespace supernpu {
namespace dnn {

/** Fig. 8 quantities for one layer. */
struct DuplicationStats
{
    /** Distinct ifmap pixels the layer reads. */
    std::uint64_t uniquePixels = 0;
    /**
     * Pixels a naive per-PE-row buffering scheme would store: each
     * weight position's PE row holds its own copy of every ifmap
     * pixel it consumes.
     */
    std::uint64_t naivePixels = 0;

    /** Fraction of the naive storage that is duplicated data. */
    double duplicatedRatio() const;
};

/**
 * Duplication analysis for one layer: with weight-stationary
 * mapping, each of the R*S*C weight positions occupies a PE row and
 * consumes one ifmap pixel per output position; without a data
 * alignment unit, each ifmap buffer row must hold all of them.
 */
DuplicationStats layerDuplication(const Layer &layer);

/**
 * Pixel-weighted duplication ratio across a network's convolution
 * layers. With `spatial_only`, 1x1 convolutions are excluded: they
 * have no cross-row weight sharing, so they neither duplicate nor
 * benefit from the DAU (the paper's Fig. 8 counts the layers where
 * the weight-sharing property applies).
 */
double networkDuplicatedRatio(const Network &network,
                              bool spatial_only = false);

/**
 * Computational intensity as the paper defines it: MAC operations
 * executed per weight byte mapped on the PE array, for a given input
 * batch size.
 */
double computationalIntensity(const Network &network, int batch);

/**
 * Roofline-attainable performance in MAC/s for a given intensity:
 * min(peak, intensity * memory bandwidth).
 */
double rooflinePerformance(double peak_mac_per_s, double intensity,
                           double bandwidth_bytes_per_s);

} // namespace dnn
} // namespace supernpu

#endif // SUPERNPU_DNN_ANALYSIS_HH
