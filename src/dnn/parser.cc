/**
 * @file
 * Network description parser / formatter.
 */

#include "parser.hh"

#include <cstdio>
#include <sstream>
#include <vector>

#include "common/logging.hh"

namespace supernpu {
namespace dnn {

namespace {

/** Split a line into whitespace-separated tokens. */
std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> tokens;
    std::istringstream stream(line);
    std::string token;
    while (stream >> token) {
        if (token[0] == '#')
            break; // trailing comment
        tokens.push_back(token);
    }
    return tokens;
}

/** Parse a required integer field; '-' is not allowed here. */
int
intField(const std::string &token, int line_no, const char *what)
{
    SUPERNPU_ASSERT(token != "-", "line ", line_no, ": field '", what,
                    "' is required for this layer kind");
    try {
        std::size_t used = 0;
        const int value = std::stoi(token, &used);
        SUPERNPU_ASSERT(used == token.size(), "line ", line_no,
                        ": bad integer '", token, "' for ", what);
        return value;
    } catch (const std::exception &) {
        panic("line ", line_no, ": bad integer '", token, "' for ",
              what);
    }
}

} // namespace

Network
parseNetwork(const std::string &text)
{
    Network net;
    std::istringstream stream(text);
    std::string line;
    int line_no = 0;

    while (std::getline(stream, line)) {
        ++line_no;
        const auto tokens = tokenize(line);
        if (tokens.empty())
            continue;

        if (tokens[0] == "network") {
            SUPERNPU_ASSERT(tokens.size() >= 2, "line ", line_no,
                            ": 'network' needs a name");
            SUPERNPU_ASSERT(net.name.empty(), "line ", line_no,
                            ": duplicate 'network' line");
            net.name = tokens[1];
            continue;
        }

        SUPERNPU_ASSERT(!net.name.empty(), "line ", line_no,
                        ": the first entry must be 'network <name>'");
        SUPERNPU_ASSERT(tokens.size() == 8, "line ", line_no,
                        ": expected 8 fields, got ", tokens.size());

        const std::string &kind = tokens[0];
        const std::string &name = tokens[1];
        if (kind == "conv") {
            net.layers.push_back(
                conv(name, intField(tokens[2], line_no, "inC"),
                     intField(tokens[3], line_no, "inHW"),
                     intField(tokens[4], line_no, "outC"),
                     intField(tokens[5], line_no, "kernel"),
                     intField(tokens[6], line_no, "stride"),
                     intField(tokens[7], line_no, "padding")));
        } else if (kind == "dwconv") {
            Layer layer = depthwise(
                name, intField(tokens[2], line_no, "inC"),
                intField(tokens[3], line_no, "inHW"),
                intField(tokens[6], line_no, "stride"));
            layer.kernelH = layer.kernelW =
                intField(tokens[5], line_no, "kernel");
            layer.padding = intField(tokens[7], line_no, "padding");
            layer.check();
            net.layers.push_back(layer);
        } else if (kind == "fc") {
            net.layers.push_back(fullyConnected(
                name, intField(tokens[2], line_no, "inC"),
                intField(tokens[4], line_no, "outC")));
        } else {
            panic("line ", line_no, ": unknown layer kind '", kind,
                  "' (conv, dwconv, fc)");
        }
    }

    SUPERNPU_ASSERT(!net.layers.empty(), "description has no layers");
    net.check();
    return net;
}

std::string
formatNetwork(const Network &network)
{
    std::string out = "network " + network.name + "\n";
    out += "# kind  name  inC inHW outC kernel stride padding\n";
    char line[160];
    for (const auto &layer : network.layers) {
        switch (layer.kind) {
          case LayerKind::Conv:
            std::snprintf(line, sizeof(line),
                          "conv %s %d %d %d %d %d %d\n",
                          layer.name.c_str(), layer.inChannels,
                          layer.inHeight, layer.outChannels,
                          layer.kernelH, layer.stride, layer.padding);
            break;
          case LayerKind::DepthwiseConv:
            std::snprintf(line, sizeof(line),
                          "dwconv %s %d %d - %d %d %d\n",
                          layer.name.c_str(), layer.inChannels,
                          layer.inHeight, layer.kernelH, layer.stride,
                          layer.padding);
            break;
          case LayerKind::FullyConnected:
            std::snprintf(line, sizeof(line), "fc %s %d - %d - - -\n",
                          layer.name.c_str(), layer.inChannels,
                          layer.outChannels);
            break;
        }
        out += line;
    }
    return out;
}

} // namespace dnn
} // namespace supernpu
