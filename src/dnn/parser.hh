/**
 * @file
 * Text-format network descriptions — the paper's "DNN description
 * file" input (Fig. 10/14) as a parseable format, so users can feed
 * their own networks to the simulators without recompiling.
 *
 * Format: one layer per line; '#' starts a comment; blank lines are
 * skipped. The first non-comment line names the network.
 *
 *     network MyNet
 *     # kind  name    inC inHW outC kernel stride padding
 *     conv    conv1   3   224  64   7      2      3
 *     dwconv  dw2     64  112  -    3      1      1
 *     conv    pw2     64  112  128  1      1      0
 *     fc      fc1     6272 -   1000 -      -      -
 *
 * Fields that a kind does not use are written '-' (dwconv's outC is
 * its inC; fc ignores spatial fields).
 */

#ifndef SUPERNPU_DNN_PARSER_HH
#define SUPERNPU_DNN_PARSER_HH

#include <string>

#include "layer.hh"

namespace supernpu {
namespace dnn {

/**
 * Parse a network description; panics with a line-numbered message
 * on malformed input (fatal is reserved for end-user tooling).
 */
Network parseNetwork(const std::string &text);

/** Serialize a network back into the parseable text format. */
std::string formatNetwork(const Network &network);

} // namespace dnn
} // namespace supernpu

#endif // SUPERNPU_DNN_PARSER_HH
