/**
 * @file
 * Layer arithmetic.
 */

#include "layer.hh"

#include <algorithm>

#include "common/logging.hh"

namespace supernpu {
namespace dnn {

const char *
layerKindName(LayerKind kind)
{
    switch (kind) {
      case LayerKind::Conv:
        return "conv";
      case LayerKind::DepthwiseConv:
        return "dwconv";
      case LayerKind::FullyConnected:
        return "fc";
    }
    panic("unknown layer kind");
}

int
Layer::outHeight() const
{
    return (inHeight + 2 * padding - kernelH) / stride + 1;
}

int
Layer::outWidth() const
{
    return (inWidth + 2 * padding - kernelW) / stride + 1;
}

std::uint64_t
Layer::outputPositions() const
{
    return (std::uint64_t)outHeight() * (std::uint64_t)outWidth();
}

std::uint64_t
Layer::macCount() const
{
    const std::uint64_t per_position =
        kind == LayerKind::DepthwiseConv
            ? (std::uint64_t)kernelH * kernelW * inChannels
            : (std::uint64_t)kernelH * kernelW * inChannels * outChannels;
    return per_position * outputPositions();
}

std::uint64_t
Layer::weightBytes() const
{
    if (kind == LayerKind::DepthwiseConv)
        return (std::uint64_t)kernelH * kernelW * inChannels;
    return (std::uint64_t)kernelH * kernelW * inChannels * outChannels;
}

std::uint64_t
Layer::ifmapBytes() const
{
    return (std::uint64_t)inChannels * inHeight * inWidth;
}

std::uint64_t
Layer::ofmapBytes() const
{
    return (std::uint64_t)outChannels * outputPositions();
}

int
Layer::mappedFilters() const
{
    return kind == LayerKind::DepthwiseConv ? 1 : outChannels;
}

std::uint64_t
Layer::weightsPerFilter() const
{
    if (kind == LayerKind::DepthwiseConv)
        return (std::uint64_t)kernelH * kernelW;
    return (std::uint64_t)kernelH * kernelW * inChannels;
}

void
Layer::check() const
{
    SUPERNPU_ASSERT(inChannels > 0 && inHeight > 0 && inWidth > 0,
                    "layer '", name, "' has a bad input shape");
    SUPERNPU_ASSERT(outChannels > 0, "layer '", name, "' has no filters");
    SUPERNPU_ASSERT(kernelH > 0 && kernelW > 0 && stride > 0,
                    "layer '", name, "' has a bad kernel");
    SUPERNPU_ASSERT(padding >= 0, "layer '", name, "' has bad padding");
    SUPERNPU_ASSERT(outHeight() > 0 && outWidth() > 0,
                    "layer '", name, "' produces an empty output");
    if (kind == LayerKind::DepthwiseConv) {
        SUPERNPU_ASSERT(inChannels == outChannels,
                        "depthwise layer '", name,
                        "' must keep its channel count");
    }
}

Layer
conv(const std::string &name, int in_c, int in_hw, int out_c, int kernel,
     int stride, int padding)
{
    Layer layer;
    layer.name = name;
    layer.kind = LayerKind::Conv;
    layer.inChannels = in_c;
    layer.inHeight = in_hw;
    layer.inWidth = in_hw;
    layer.outChannels = out_c;
    layer.kernelH = kernel;
    layer.kernelW = kernel;
    layer.stride = stride;
    // padding -1 means "same-style": keep the spatial size at
    // stride 1 (the common (k-1)/2 halo).
    layer.padding = padding >= 0 ? padding : (kernel - 1) / 2;
    layer.check();
    return layer;
}

Layer
depthwise(const std::string &name, int channels, int in_hw, int stride)
{
    Layer layer;
    layer.name = name;
    layer.kind = LayerKind::DepthwiseConv;
    layer.inChannels = channels;
    layer.inHeight = in_hw;
    layer.inWidth = in_hw;
    layer.outChannels = channels;
    layer.kernelH = 3;
    layer.kernelW = 3;
    layer.stride = stride;
    layer.padding = 1;
    layer.check();
    return layer;
}

Layer
fullyConnected(const std::string &name, int in_features, int out_features)
{
    Layer layer;
    layer.name = name;
    layer.kind = LayerKind::FullyConnected;
    layer.inChannels = in_features;
    layer.inHeight = 1;
    layer.inWidth = 1;
    layer.outChannels = out_features;
    layer.kernelH = 1;
    layer.kernelW = 1;
    layer.stride = 1;
    layer.padding = 0;
    layer.check();
    return layer;
}

std::uint64_t
Network::totalMacs() const
{
    std::uint64_t total = 0;
    for (const auto &layer : layers)
        total += layer.macCount();
    return total;
}

std::uint64_t
Network::totalWeightBytes() const
{
    std::uint64_t total = 0;
    for (const auto &layer : layers)
        total += layer.weightBytes();
    return total;
}

std::uint64_t
Network::maxLayerIoBytes() const
{
    std::uint64_t largest = 0;
    for (const auto &layer : layers) {
        largest = std::max(largest,
                           layer.ifmapBytes() + layer.ofmapBytes());
    }
    return largest;
}

void
Network::check() const
{
    SUPERNPU_ASSERT(!layers.empty(), "network '", name, "' has no layers");
    for (const auto &layer : layers)
        layer.check();
}

} // namespace dnn
} // namespace supernpu
