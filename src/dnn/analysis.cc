/**
 * @file
 * Workload analysis implementations.
 */

#include "analysis.hh"

#include <algorithm>

#include "common/logging.hh"

namespace supernpu {
namespace dnn {

double
DuplicationStats::duplicatedRatio() const
{
    if (naivePixels == 0)
        return 0.0;
    const std::uint64_t duplicated =
        naivePixels > uniquePixels ? naivePixels - uniquePixels : 0;
    return (double)duplicated / (double)naivePixels;
}

DuplicationStats
layerDuplication(const Layer &layer)
{
    DuplicationStats stats;
    stats.uniquePixels = layer.ifmapBytes();

    // Each weight position (R*S per channel; filters share the same
    // ifmap pixels) reads one pixel per output position.
    const std::uint64_t weight_positions =
        (std::uint64_t)layer.kernelH * layer.kernelW * layer.inChannels;
    stats.naivePixels = weight_positions * layer.outputPositions();

    // A strided or pooled layer can read fewer pixels than it holds;
    // the unique count can exceed the naive count for degenerate 1x1
    // stride-2 layers. Clamp: duplication is never negative.
    stats.naivePixels = std::max(stats.naivePixels, stats.uniquePixels);
    return stats;
}

double
networkDuplicatedRatio(const Network &network, bool spatial_only)
{
    std::uint64_t unique = 0;
    std::uint64_t naive = 0;
    for (const auto &layer : network.layers) {
        // Fig. 8 concerns convolutional weight sharing; FC layers
        // read each input exactly once and are excluded.
        if (layer.kind == LayerKind::FullyConnected)
            continue;
        if (spatial_only && layer.kernelH == 1 && layer.kernelW == 1)
            continue;
        const DuplicationStats stats = layerDuplication(layer);
        unique += stats.uniquePixels;
        naive += stats.naivePixels;
    }
    if (naive == 0)
        return 0.0;
    return (double)(naive - unique) / (double)naive;
}

double
computationalIntensity(const Network &network, int batch)
{
    SUPERNPU_ASSERT(batch >= 1, "batch must be positive");
    const double macs = (double)network.totalMacs() * (double)batch;
    const double weight_bytes = (double)network.totalWeightBytes();
    return macs / weight_bytes;
}

double
rooflinePerformance(double peak_mac_per_s, double intensity,
                    double bandwidth_bytes_per_s)
{
    return std::min(peak_mac_per_s, intensity * bandwidth_bytes_per_s);
}

} // namespace dnn
} // namespace supernpu
