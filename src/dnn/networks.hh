/**
 * @file
 * The six CNN workloads the paper evaluates (Section V): AlexNet,
 * Faster R-CNN (VGG16 backbone), GoogLeNet, MobileNet v1, ResNet-50,
 * and VGG16, all at the paper's 224 x 224 x 3 input.
 */

#ifndef SUPERNPU_DNN_NETWORKS_HH
#define SUPERNPU_DNN_NETWORKS_HH

#include <vector>

#include "layer.hh"

namespace supernpu {
namespace dnn {

/** AlexNet (Krizhevsky et al.), single-tower variant. */
Network makeAlexNet();

/** VGG16 (Simonyan & Zisserman), configuration D. */
Network makeVgg16();

/** ResNet-50 (He et al.) with bottleneck blocks. */
Network makeResNet50();

/** GoogLeNet / Inception v1 (Szegedy et al.). */
Network makeGoogLeNet();

/** MobileNet v1 (Howard et al.), width multiplier 1.0. */
Network makeMobileNet();

/** Faster R-CNN with a VGG16 backbone, RPN, and detection head. */
Network makeFasterRcnn();

/**
 * ResNet-18 (He et al.) with basic (2 x 3x3) blocks. Not part of the
 * paper's evaluation set; provided for design-space studies.
 */
Network makeResNet18();

/** VGG19 (configuration E). Not part of the paper's evaluation set. */
Network makeVgg19();

/** All six evaluation workloads, in the paper's Fig. 23 order. */
std::vector<Network> evaluationWorkloads();

} // namespace dnn
} // namespace supernpu

#endif // SUPERNPU_DNN_NETWORKS_HH
