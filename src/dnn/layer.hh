/**
 * @file
 * DNN layer and network descriptions.
 *
 * The simulators consume layer *shapes* only (the paper's "DNN
 * description file": ifmap window size, filter window size, number of
 * filters, strides). All tensor data types are 8-bit (the paper's
 * NPUs are 8-bit MAC designs, like the TPU).
 */

#ifndef SUPERNPU_DNN_LAYER_HH
#define SUPERNPU_DNN_LAYER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace supernpu {
namespace dnn {

/** Layer kinds relevant to NPU mapping. */
enum class LayerKind
{
    Conv,          ///< standard convolution
    DepthwiseConv, ///< one filter per input channel (MobileNet)
    FullyConnected,///< matrix-vector layer (modeled as 1x1 conv)
};

/** Name of a layer kind for reports. */
const char *layerKindName(LayerKind kind);

/**
 * A single weight layer. Pooling and activation layers carry no MAC
 * work and are folded into the successive layers' input shapes.
 */
struct Layer
{
    std::string name;
    LayerKind kind = LayerKind::Conv;

    int inChannels = 0;  ///< C
    int inHeight = 0;    ///< H (after any preceding pooling)
    int inWidth = 0;     ///< W
    int outChannels = 0; ///< K (== C for depthwise)
    int kernelH = 0;     ///< R
    int kernelW = 0;     ///< S
    int stride = 1;
    int padding = 0;

    /** Output feature map height. */
    int outHeight() const;
    /** Output feature map width. */
    int outWidth() const;
    /** Number of sliding-window positions per image. */
    std::uint64_t outputPositions() const;

    /** Multiply-accumulate operations per image. */
    std::uint64_t macCount() const;

    /** Weight footprint in bytes (8-bit weights). */
    std::uint64_t weightBytes() const;
    /** Input feature map footprint per image, bytes. */
    std::uint64_t ifmapBytes() const;
    /** Output feature map footprint per image, bytes. */
    std::uint64_t ofmapBytes() const;

    /**
     * Effective number of independent filters from the mapper's
     * perspective: K for conv/FC, 1 for depthwise (each channel's
     * filter is a separate single-filter mapping).
     */
    int mappedFilters() const;

    /** Weights per filter along the PE-array-height dimension. */
    std::uint64_t weightsPerFilter() const;

    /** Validate shape consistency; panics on malformed layers. */
    void check() const;
};

/** Convenience constructor for a convolution layer. */
Layer conv(const std::string &name, int in_c, int in_hw, int out_c,
           int kernel, int stride = 1, int padding = -1);

/** Convenience constructor for a depthwise convolution layer. */
Layer depthwise(const std::string &name, int channels, int in_hw,
                int stride);

/** Convenience constructor for a fully-connected layer. */
Layer fullyConnected(const std::string &name, int in_features,
                     int out_features);

/** A named sequence of layers. */
struct Network
{
    std::string name;
    std::vector<Layer> layers;

    /** Total MACs per image. */
    std::uint64_t totalMacs() const;
    /** Total weight bytes. */
    std::uint64_t totalWeightBytes() const;
    /** Largest single-layer (ifmap + ofmap) footprint, bytes. */
    std::uint64_t maxLayerIoBytes() const;
    /** Validate every layer. */
    void check() const;
};

} // namespace dnn
} // namespace supernpu

#endif // SUPERNPU_DNN_LAYER_HH
