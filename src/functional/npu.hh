/**
 * @file
 * Functional NPU: ties the DAU and the systolic array together with
 * the weight-stationary mapping loop and a psum-buffer accumulator,
 * computing real convolutions exactly as the microarchitecture
 * would. Validated against the direct-convolution oracle.
 */

#ifndef SUPERNPU_FUNCTIONAL_NPU_HH
#define SUPERNPU_FUNCTIONAL_NPU_HH

#include <cstdint>

#include "dau.hh"
#include "golden.hh"
#include "systolic.hh"
#include "tensor.hh"

namespace supernpu {
namespace functional {

/** Result of a functional convolution run. */
struct FunctionalRunResult
{
    Tensor3 ofmap;
    std::uint64_t weightMappings = 0; ///< array reload count
    std::uint64_t arrayCycles = 0;    ///< cycles spent streaming
    /**
     * Cycles spent loading stationary weights: a mapping streams its
     * weights down the columns (rows deep) and across (cols wide) —
     * the same rows + cols charge the performance model's
     * weight-shift term uses.
     */
    std::uint64_t weightLoadCycles = 0;
};

/** A small functional NPU with a rows x cols PE array. */
class FunctionalNpu
{
  public:
    FunctionalNpu(int array_rows, int array_cols);

    /**
     * Run a convolution through the array: filters fold over the
     * array height (partial sums accumulate across folds, the psum
     * buffer role) and spread over the array width (column folds).
     */
    FunctionalRunResult conv(const Tensor3 &ifmap,
                             const FilterBank &filters,
                             const ConvSpec &spec);

  private:
    int _rows;
    int _cols;
};

} // namespace functional
} // namespace supernpu

#endif // SUPERNPU_FUNCTIONAL_NPU_HH
