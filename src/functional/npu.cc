/**
 * @file
 * Functional NPU mapping loop.
 */

#include "npu.hh"

#include <algorithm>

namespace supernpu {
namespace functional {

FunctionalNpu::FunctionalNpu(int array_rows, int array_cols)
    : _rows(array_rows), _cols(array_cols)
{
    SUPERNPU_ASSERT(array_rows > 0 && array_cols > 0, "empty array");
}

FunctionalRunResult
FunctionalNpu::conv(const Tensor3 &ifmap, const FilterBank &filters,
                    const ConvSpec &spec)
{
    SUPERNPU_ASSERT(filters.count() > 0, "empty filter bank");
    const Tensor3 &f0 = filters.filters.front();
    const int kernel_h = f0.height();
    const int kernel_w = f0.width();

    const auto positions =
        enumerateWeightPositions(ifmap.channels(), kernel_h, kernel_w);
    const int out_h = spec.outDim(ifmap.height(), kernel_h);
    const int out_w = spec.outDim(ifmap.width(), kernel_w);
    const std::size_t out_positions = (std::size_t)out_h * out_w;

    const std::size_t row_folds =
        (positions.size() + (std::size_t)_rows - 1) / (std::size_t)_rows;
    const std::size_t col_folds =
        ((std::size_t)filters.count() + (std::size_t)_cols - 1) /
        (std::size_t)_cols;

    FunctionalRunResult result;
    result.ofmap = Tensor3(filters.count(), out_h, out_w);

    SystolicArray array(_rows, _cols);

    for (std::size_t cf = 0; cf < col_folds; ++cf) {
        const int first_filter = (int)(cf * (std::size_t)_cols);
        const int active_cols =
            std::min(_cols, filters.count() - first_filter);

        // The psum buffer: accumulates across row folds.
        std::vector<std::vector<std::int64_t>> psum(
            (std::size_t)active_cols,
            std::vector<std::int64_t>(out_positions, 0));

        for (std::size_t rf = 0; rf < row_folds; ++rf) {
            const std::size_t first_pos = rf * (std::size_t)_rows;
            const std::size_t active_rows = std::min(
                (std::size_t)_rows, positions.size() - first_pos);

            // Weight mapping: this fold's weight positions for each
            // active filter column; inactive PEs get zero weights.
            ++result.weightMappings;
            result.weightLoadCycles +=
                (std::uint64_t)(_rows + _cols);
            for (int r = 0; r < _rows; ++r) {
                for (int c = 0; c < _cols; ++c) {
                    std::int32_t w = 0;
                    if ((std::size_t)r < active_rows && c < active_cols) {
                        const WeightPosition &pos =
                            positions[first_pos + (std::size_t)r];
                        w = filters.filters[(std::size_t)(first_filter + c)]
                                .at(pos.channel, pos.dy, pos.dx);
                    }
                    array.loadWeight(r, c, w);
                }
            }

            // The DAU builds this fold's aligned streams; rows past
            // the active count stream zero bubbles.
            std::vector<WeightPosition> fold_positions(
                positions.begin() + (std::ptrdiff_t)first_pos,
                positions.begin() +
                    (std::ptrdiff_t)(first_pos + active_rows));
            auto streams = buildAlignedStreams(ifmap, fold_positions,
                                               kernel_h, kernel_w, spec);
            streams.resize((std::size_t)_rows,
                           std::vector<std::int32_t>(out_positions, 0));

            const auto column_sums = array.streamThrough(streams);
            result.arrayCycles += array.cyclesElapsed();

            for (int c = 0; c < active_cols; ++c) {
                for (std::size_t t = 0; t < out_positions; ++t) {
                    psum[(std::size_t)c][t] +=
                        column_sums[(std::size_t)c][t];
                }
            }
        }

        // Drain the integrated output buffer into the ofmap tensor.
        for (int c = 0; c < active_cols; ++c) {
            std::size_t t = 0;
            for (int oy = 0; oy < out_h; ++oy) {
                for (int ox = 0; ox < out_w; ++ox) {
                    result.ofmap.at(first_filter + c, oy, ox) =
                        (std::int32_t)psum[(std::size_t)c][t++];
                }
            }
        }
    }
    return result;
}

} // namespace functional
} // namespace supernpu
