/**
 * @file
 * End-to-end functional inference: run a whole CNN, layer by layer,
 * through the cycle-accurate systolic array + DAU model with real
 * (random-initialized) 8-bit weights, quantization, ReLU, and the
 * pooling the dnn:: shape descriptions fold away.
 *
 * The same pipeline runs against the golden direct-convolution
 * oracle; the tests require bit-exact agreement, which pins down the
 * whole dataflow (mapping folds, DAU alignment, psum accumulation,
 * drain ordering) at network scale rather than single layers.
 */

#ifndef SUPERNPU_FUNCTIONAL_INFERENCE_HH
#define SUPERNPU_FUNCTIONAL_INFERENCE_HH

#include <vector>

#include "dnn/layer.hh"
#include "golden.hh"
#include "npu.hh"
#include "tensor.hh"

namespace supernpu {
namespace functional {

/** One executable layer: shape + weights + post-ops. */
struct InferenceLayer
{
    dnn::Layer shape;
    FilterBank weights;
    /**
     * Requantization: the conv output is arithmetically shifted
     * right by this amount and clamped to int8 range, keeping the
     * network's activations bounded like real quantized inference.
     */
    int postShift = 8;
    bool relu = true;
    /**
     * Number of successive 2x2 stride-2 max pools after the
     * activation (re-inserting the pooling the dnn:: descriptions
     * fold into the next layer's input shape).
     */
    int maxPool2Count = 0;
    /** Flatten (C,H,W) -> (C*H*W,1,1) before this layer (FC entry). */
    bool flattenBefore = false;
};

/** An executable network: layers chained with consistent shapes. */
struct InferencePipeline
{
    std::string name;
    std::vector<InferenceLayer> layers;

    /** Verify that every layer's input matches its predecessor. */
    void check() const;
};

/**
 * Build an executable pipeline from a dnn::Network description with
 * deterministic random weights: pooling layers are re-inserted
 * wherever consecutive shapes imply downsampling, and FC layers are
 * preceded by flattening. Depthwise layers are supported.
 */
InferencePipeline buildPipeline(const dnn::Network &network, Rng &rng);

/** Apply a layer's post-ops (shift, clamp, ReLU, pool) in place. */
Tensor3 applyPostOps(const Tensor3 &conv_out, const InferenceLayer &layer);

/** Flatten (C,H,W) -> (C*H*W,1,1), channel-major (FC entry). */
Tensor3 flattenActivations(const Tensor3 &in);

/**
 * One layer's raw conv output (before post-ops) from the golden
 * direct-convolution oracle, depthwise-aware. The fault-injection
 * hook of the functional path: src/reliability corrupts this
 * intermediate (an SFQ pulse drop in a MAC/psum) and then applies
 * the layer's post-ops to study error propagation.
 */
Tensor3 goldenLayerConv(const Tensor3 &in, const InferenceLayer &layer);

/** Run the pipeline with the golden direct convolution. */
Tensor3 runGolden(const InferencePipeline &pipeline,
                  const Tensor3 &input);

/** Statistics from a systolic run of the whole pipeline. */
struct PipelineRunStats
{
    Tensor3 output;
    std::uint64_t weightMappings = 0;
    std::uint64_t arrayCycles = 0;
};

/**
 * Run the pipeline on the cycle-accurate systolic array + DAU model
 * with the given PE-array geometry.
 */
PipelineRunStats runSystolic(const InferencePipeline &pipeline,
                             const Tensor3 &input, int array_rows,
                             int array_cols);

} // namespace functional
} // namespace supernpu

#endif // SUPERNPU_FUNCTIONAL_INFERENCE_HH
