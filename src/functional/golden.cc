/**
 * @file
 * Golden convolution reference.
 */

#include "golden.hh"

namespace supernpu {
namespace functional {

FilterBank
FilterBank::random(int k, int c, int r, int s, Rng &rng)
{
    FilterBank bank;
    bank.filters.reserve((std::size_t)k);
    for (int i = 0; i < k; ++i) {
        Tensor3 filter(c, r, s);
        filter.fillRandom(rng);
        bank.filters.push_back(std::move(filter));
    }
    return bank;
}

Tensor3
convReference(const Tensor3 &ifmap, const FilterBank &filters,
              const ConvSpec &spec)
{
    SUPERNPU_ASSERT(filters.count() > 0, "empty filter bank");
    const Tensor3 &f0 = filters.filters.front();
    SUPERNPU_ASSERT(f0.channels() == ifmap.channels(),
                    "filter/ifmap channel mismatch");

    const int out_h = spec.outDim(ifmap.height(), f0.height());
    const int out_w = spec.outDim(ifmap.width(), f0.width());
    SUPERNPU_ASSERT(out_h > 0 && out_w > 0, "empty convolution output");

    Tensor3 ofmap(filters.count(), out_h, out_w);
    for (int k = 0; k < filters.count(); ++k) {
        const Tensor3 &filter = filters.filters[k];
        for (int oy = 0; oy < out_h; ++oy) {
            for (int ox = 0; ox < out_w; ++ox) {
                std::int64_t acc = 0;
                for (int c = 0; c < ifmap.channels(); ++c) {
                    for (int dy = 0; dy < filter.height(); ++dy) {
                        for (int dx = 0; dx < filter.width(); ++dx) {
                            const int iy =
                                oy * spec.stride + dy - spec.padding;
                            const int ix =
                                ox * spec.stride + dx - spec.padding;
                            acc += (std::int64_t)filter.at(c, dy, dx) *
                                   ifmap.atPadded(c, iy, ix);
                        }
                    }
                }
                ofmap.at(k, oy, ox) = (std::int32_t)acc;
            }
        }
    }
    return ofmap;
}

} // namespace functional
} // namespace supernpu
