/**
 * @file
 * DAU functional implementation.
 */

#include "dau.hh"

namespace supernpu {
namespace functional {

std::vector<WeightPosition>
enumerateWeightPositions(int channels, int kernel_h, int kernel_w)
{
    std::vector<WeightPosition> positions;
    positions.reserve((std::size_t)channels * kernel_h * kernel_w);
    for (int c = 0; c < channels; ++c) {
        for (int dy = 0; dy < kernel_h; ++dy) {
            for (int dx = 0; dx < kernel_w; ++dx)
                positions.push_back({c, dy, dx});
        }
    }
    return positions;
}

std::vector<std::vector<std::int32_t>>
buildAlignedStreams(const Tensor3 &ifmap,
                    const std::vector<WeightPosition> &positions,
                    int kernel_h, int kernel_w, const ConvSpec &spec)
{
    const int out_h = spec.outDim(ifmap.height(), kernel_h);
    const int out_w = spec.outDim(ifmap.width(), kernel_w);
    SUPERNPU_ASSERT(out_h > 0 && out_w > 0, "empty convolution output");
    const std::size_t out_positions = (std::size_t)out_h * out_w;

    std::vector<std::vector<std::int32_t>> streams(positions.size());
    for (std::size_t r = 0; r < positions.size(); ++r) {
        const WeightPosition &pos = positions[r];
        auto &stream = streams[r];
        stream.resize(out_positions);
        std::size_t t = 0;
        for (int oy = 0; oy < out_h; ++oy) {
            for (int ox = 0; ox < out_w; ++ox) {
                const int iy = oy * spec.stride + pos.dy - spec.padding;
                const int ix = ox * spec.stride + pos.dx - spec.padding;
                stream[t++] = ifmap.atPadded(pos.channel, iy, ix);
            }
        }
    }
    return streams;
}

} // namespace functional
} // namespace supernpu
