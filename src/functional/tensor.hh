/**
 * @file
 * Minimal dense tensor for the functional NPU model. Values are
 * int32 so accumulated 8-bit MACs never overflow in tests.
 */

#ifndef SUPERNPU_FUNCTIONAL_TENSOR_HH
#define SUPERNPU_FUNCTIONAL_TENSOR_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"

namespace supernpu {
namespace functional {

/** Channel-major 3D tensor (C, H, W). */
class Tensor3
{
  public:
    Tensor3() = default;

    /** Construct a zeroed (channels, height, width) tensor. */
    Tensor3(int channels, int height, int width)
        : _channels(channels), _height(height), _width(width),
          _data((std::size_t)channels * height * width, 0)
    {
        SUPERNPU_ASSERT(channels > 0 && height > 0 && width > 0,
                        "bad tensor shape");
    }

    int channels() const { return _channels; }
    int height() const { return _height; }
    int width() const { return _width; }

    /** Mutable element access. */
    std::int32_t &
    at(int c, int y, int x)
    {
        return _data[index(c, y, x)];
    }

    /** Const element access. */
    std::int32_t
    at(int c, int y, int x) const
    {
        return _data[index(c, y, x)];
    }

    /**
     * Padded read: coordinates outside the tensor return 0 (the
     * convolution halo).
     */
    std::int32_t
    atPadded(int c, int y, int x) const
    {
        if (y < 0 || y >= _height || x < 0 || x >= _width)
            return 0;
        return at(c, y, x);
    }

    /** Fill with uniform random int8-range values. */
    void
    fillRandom(Rng &rng)
    {
        for (auto &v : _data)
            v = (std::int32_t)rng.uniformInt(-128, 127);
    }

    /** Exact element-wise equality. */
    bool
    operator==(const Tensor3 &other) const
    {
        return _channels == other._channels && _height == other._height &&
               _width == other._width && _data == other._data;
    }

  private:
    std::size_t
    index(int c, int y, int x) const
    {
        SUPERNPU_ASSERT(c >= 0 && c < _channels && y >= 0 &&
                            y < _height && x >= 0 && x < _width,
                        "tensor index out of range");
        return ((std::size_t)c * _height + y) * _width + x;
    }

    int _channels = 0;
    int _height = 0;
    int _width = 0;
    std::vector<std::int32_t> _data;
};

/** A stack of filters: (K, C, R, S) stored as K tensors. */
struct FilterBank
{
    std::vector<Tensor3> filters; ///< each (C, R, S)

    /** Number of filters. */
    int count() const { return (int)filters.size(); }

    /** Build a random bank of k (c, r, s) filters. */
    static FilterBank random(int k, int c, int r, int s, Rng &rng);
};

} // namespace functional
} // namespace supernpu

#endif // SUPERNPU_FUNCTIONAL_TENSOR_HH
