/**
 * @file
 * Systolic array cycle model.
 */

#include "systolic.hh"

namespace supernpu {
namespace functional {

SystolicArray::SystolicArray(int rows, int cols)
    : _rows(rows), _cols(cols),
      _weights((std::size_t)rows * cols, 0),
      _ifmapRegs((std::size_t)rows * cols, 0),
      _psumRegs((std::size_t)rows * cols, 0)
{
    SUPERNPU_ASSERT(rows > 0 && cols > 0, "empty systolic array");
}

void
SystolicArray::loadWeight(int row, int col, std::int32_t weight)
{
    SUPERNPU_ASSERT(row >= 0 && row < _rows && col >= 0 && col < _cols,
                    "weight index out of range");
    _weights[at(row, col)] = weight;
}

void
SystolicArray::resetPipeline()
{
    std::fill(_ifmapRegs.begin(), _ifmapRegs.end(), 0);
    std::fill(_psumRegs.begin(), _psumRegs.end(), 0);
    _cycles = 0;
}

std::vector<std::int64_t>
SystolicArray::step(const std::vector<std::int32_t> &left_inputs)
{
    SUPERNPU_ASSERT((int)left_inputs.size() == _rows,
                    "left input width mismatch");

    // All registers update simultaneously from the previous state:
    // compute next values before committing any of them.
    std::vector<std::int32_t> next_ifmap((std::size_t)_rows * _cols);
    std::vector<std::int64_t> next_psum((std::size_t)_rows * _cols);

    for (int r = 0; r < _rows; ++r) {
        for (int c = 0; c < _cols; ++c) {
            const std::int32_t in =
                c == 0 ? left_inputs[r] : _ifmapRegs[at(r, c - 1)];
            const std::int64_t psum_above =
                r == 0 ? 0 : _psumRegs[at(r - 1, c)];
            next_ifmap[at(r, c)] = in;
            next_psum[at(r, c)] =
                psum_above + (std::int64_t)_weights[at(r, c)] * in;
        }
    }

    _ifmapRegs = std::move(next_ifmap);
    _psumRegs = std::move(next_psum);
    ++_cycles;

    std::vector<std::int64_t> bottom(_cols);
    for (int c = 0; c < _cols; ++c)
        bottom[(std::size_t)c] = _psumRegs[at(_rows - 1, c)];
    return bottom;
}

std::vector<std::vector<std::int64_t>>
SystolicArray::streamThrough(
    const std::vector<std::vector<std::int32_t>> &streams)
{
    SUPERNPU_ASSERT((int)streams.size() == _rows,
                    "stream count must match the array height");
    const std::size_t positions = streams.front().size();
    for (const auto &s : streams) {
        SUPERNPU_ASSERT(s.size() == positions,
                        "all streams must be equally long");
    }

    resetPipeline();

    std::vector<std::vector<std::int64_t>> out(
        (std::size_t)_cols, std::vector<std::int64_t>(positions, 0));

    // Row r's word for logical time t enters at cycle t + r; the
    // complete sum for time t leaves column c's bottom register at
    // the end of cycle t + (rows - 1) + c... with one extra cycle of
    // register latency at the PE itself: t + rows + c is when it is
    // *visible* after that step. We simply run until fully drained.
    const std::size_t total_cycles = positions + _rows + _cols;
    std::vector<std::int32_t> left((std::size_t)_rows, 0);

    for (std::size_t cycle = 0; cycle < total_cycles; ++cycle) {
        for (int r = 0; r < _rows; ++r) {
            const std::int64_t t = (std::int64_t)cycle - r;
            left[(std::size_t)r] =
                (t >= 0 && t < (std::int64_t)positions)
                    ? streams[(std::size_t)r][(std::size_t)t]
                    : 0;
        }
        const std::vector<std::int64_t> bottom = step(left);
        // After this step, column c's bottom register holds the sum
        // for logical time t = cycle - (rows - 1) - c.
        for (int c = 0; c < _cols; ++c) {
            const std::int64_t t =
                (std::int64_t)cycle - (_rows - 1) - c;
            if (t >= 0 && t < (std::int64_t)positions)
                out[(std::size_t)c][(std::size_t)t] = bottom[(std::size_t)c];
        }
    }
    return out;
}

} // namespace functional
} // namespace supernpu
