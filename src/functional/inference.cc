/**
 * @file
 * End-to-end functional inference implementation.
 */

#include "inference.hh"

#include <algorithm>

namespace supernpu {
namespace functional {

namespace {

/** Clamp to the int8 activation range. */
std::int32_t
clampInt8(std::int32_t value)
{
    return std::clamp(value, -128, 127);
}

/** One 2x2 stride-2 max pool. */
Tensor3
maxPool2(const Tensor3 &in)
{
    const int out_h = (in.height() - 2) / 2 + 1;
    const int out_w = (in.width() - 2) / 2 + 1;
    SUPERNPU_ASSERT(out_h > 0 && out_w > 0, "pooling an empty map");
    Tensor3 out(in.channels(), out_h, out_w);
    for (int c = 0; c < in.channels(); ++c) {
        for (int y = 0; y < out_h; ++y) {
            for (int x = 0; x < out_w; ++x) {
                std::int32_t best = in.at(c, 2 * y, 2 * x);
                best = std::max(best, in.at(c, 2 * y, 2 * x + 1));
                best = std::max(best, in.at(c, 2 * y + 1, 2 * x));
                best = std::max(best, in.at(c, 2 * y + 1, 2 * x + 1));
                out.at(c, y, x) = best;
            }
        }
    }
    return out;
}

/** Flatten (C,H,W) into (C*H*W, 1, 1), channel-major. */
Tensor3
flatten(const Tensor3 &in)
{
    Tensor3 out(in.channels() * in.height() * in.width(), 1, 1);
    int index = 0;
    for (int c = 0; c < in.channels(); ++c) {
        for (int y = 0; y < in.height(); ++y) {
            for (int x = 0; x < in.width(); ++x)
                out.at(index++, 0, 0) = in.at(c, y, x);
        }
    }
    return out;
}

/**
 * Requantization shift keeping a conv's output in int8 range. Sums
 * of independent products grow with the square root of the fan-in,
 * so the shift grows at half a bit per fan-in doubling; calibrating
 * on the RMS (not the worst case) keeps activations from collapsing
 * to zero across deep pipelines.
 */
int
shiftFor(const dnn::Layer &shape)
{
    const std::uint64_t taps = shape.weightsPerFilter();
    int shift = 7; // the ~2^7 weight-magnitude contribution
    std::uint64_t span = 1;
    while (span < taps) {
        span <<= 2; // half a bit of shift per doubling of fan-in
        ++shift;
    }
    return shift;
}

/** Convolve with the golden oracle, depthwise-aware. */
Tensor3
goldenConv(const Tensor3 &in, const InferenceLayer &layer)
{
    const ConvSpec spec{layer.shape.stride, layer.shape.padding};
    if (layer.shape.kind != dnn::LayerKind::DepthwiseConv)
        return convReference(in, layer.weights, spec);

    // Depthwise: channel c convolves with its own 1-channel filter.
    Tensor3 out;
    for (int c = 0; c < in.channels(); ++c) {
        Tensor3 channel(1, in.height(), in.width());
        for (int y = 0; y < in.height(); ++y)
            for (int x = 0; x < in.width(); ++x)
                channel.at(0, y, x) = in.at(c, y, x);
        FilterBank one;
        one.filters.push_back(layer.weights.filters[(std::size_t)c]);
        const Tensor3 res = convReference(channel, one, spec);
        if (c == 0)
            out = Tensor3(in.channels(), res.height(), res.width());
        for (int y = 0; y < res.height(); ++y)
            for (int x = 0; x < res.width(); ++x)
                out.at(c, y, x) = res.at(0, y, x);
    }
    return out;
}

/** Convolve on the systolic model, depthwise-aware. */
Tensor3
systolicConv(const Tensor3 &in, const InferenceLayer &layer,
             FunctionalNpu &npu, PipelineRunStats &stats)
{
    const ConvSpec spec{layer.shape.stride, layer.shape.padding};
    if (layer.shape.kind != dnn::LayerKind::DepthwiseConv) {
        FunctionalRunResult run = npu.conv(in, layer.weights, spec);
        stats.weightMappings += run.weightMappings;
        stats.arrayCycles += run.arrayCycles;
        return std::move(run.ofmap);
    }

    Tensor3 out;
    for (int c = 0; c < in.channels(); ++c) {
        Tensor3 channel(1, in.height(), in.width());
        for (int y = 0; y < in.height(); ++y)
            for (int x = 0; x < in.width(); ++x)
                channel.at(0, y, x) = in.at(c, y, x);
        FilterBank one;
        one.filters.push_back(layer.weights.filters[(std::size_t)c]);
        FunctionalRunResult run = npu.conv(channel, one, spec);
        stats.weightMappings += run.weightMappings;
        stats.arrayCycles += run.arrayCycles;
        if (c == 0) {
            out = Tensor3(in.channels(), run.ofmap.height(),
                          run.ofmap.width());
        }
        for (int y = 0; y < out.height(); ++y)
            for (int x = 0; x < out.width(); ++x)
                out.at(c, y, x) = run.ofmap.at(0, y, x);
    }
    return out;
}

} // namespace

Tensor3
flattenActivations(const Tensor3 &in)
{
    return flatten(in);
}

Tensor3
goldenLayerConv(const Tensor3 &in, const InferenceLayer &layer)
{
    return goldenConv(in, layer);
}

void
InferencePipeline::check() const
{
    SUPERNPU_ASSERT(!layers.empty(), "empty pipeline");
    for (const auto &layer : layers) {
        layer.shape.check();
        SUPERNPU_ASSERT(layer.weights.count() ==
                            (layer.shape.kind ==
                                     dnn::LayerKind::DepthwiseConv
                                 ? layer.shape.inChannels
                                 : layer.shape.outChannels),
                        "layer '", layer.shape.name,
                        "' weight count mismatch");
    }
}

InferencePipeline
buildPipeline(const dnn::Network &network, Rng &rng)
{
    network.check();

    InferencePipeline pipeline;
    pipeline.name = network.name;

    // Chain shapes: re-insert pooling / flattening where consecutive
    // descriptions imply them.
    int cur_c = network.layers.front().inChannels;
    int cur_h = network.layers.front().inHeight;
    int cur_w = network.layers.front().inWidth;

    for (const auto &shape : network.layers) {
        InferenceLayer layer;
        layer.shape = shape;
        layer.postShift = shiftFor(shape);

        if (shape.kind == dnn::LayerKind::FullyConnected &&
            (cur_h > 1 || cur_w > 1)) {
            // FC entry: pool until the flattened size matches, then
            // flatten.
            while (!pipeline.layers.empty() &&
                   cur_c * cur_h * cur_w > shape.inChannels &&
                   cur_h >= 2) {
                ++pipeline.layers.back().maxPool2Count;
                cur_h = (cur_h - 2) / 2 + 1;
                cur_w = (cur_w - 2) / 2 + 1;
            }
            SUPERNPU_ASSERT(cur_c * cur_h * cur_w == shape.inChannels,
                            "cannot flatten ", cur_c, "x", cur_h, "x",
                            cur_w, " into FC '", shape.name, "'");
            layer.flattenBefore = true;
        } else {
            while (!pipeline.layers.empty() && cur_h > shape.inHeight &&
                   cur_h >= 2) {
                ++pipeline.layers.back().maxPool2Count;
                cur_h = (cur_h - 2) / 2 + 1;
                cur_w = (cur_w - 2) / 2 + 1;
            }
            SUPERNPU_ASSERT(cur_h == shape.inHeight &&
                                cur_c == shape.inChannels,
                            "shape break before layer '", shape.name,
                            "': have ", cur_c, "x", cur_h, ", need ",
                            shape.inChannels, "x", shape.inHeight);
        }

        if (shape.kind == dnn::LayerKind::DepthwiseConv) {
            layer.weights = FilterBank::random(
                shape.inChannels, 1, shape.kernelH, shape.kernelW, rng);
        } else {
            layer.weights = FilterBank::random(
                shape.outChannels, shape.inChannels, shape.kernelH,
                shape.kernelW, rng);
        }

        cur_c = shape.outChannels;
        cur_h = shape.outHeight();
        cur_w = shape.outWidth();
        pipeline.layers.push_back(std::move(layer));
    }

    // The classifier head emits signed logits.
    pipeline.layers.back().relu = false;

    pipeline.check();
    return pipeline;
}

Tensor3
applyPostOps(const Tensor3 &conv_out, const InferenceLayer &layer)
{
    Tensor3 out(conv_out.channels(), conv_out.height(),
                conv_out.width());
    for (int c = 0; c < out.channels(); ++c) {
        for (int y = 0; y < out.height(); ++y) {
            for (int x = 0; x < out.width(); ++x) {
                std::int32_t value =
                    conv_out.at(c, y, x) >> layer.postShift;
                value = clampInt8(value);
                if (layer.relu)
                    value = std::max(value, 0);
                out.at(c, y, x) = value;
            }
        }
    }
    for (int p = 0; p < layer.maxPool2Count; ++p)
        out = maxPool2(out);
    return out;
}

Tensor3
runGolden(const InferencePipeline &pipeline, const Tensor3 &input)
{
    pipeline.check();
    Tensor3 activ = input;
    for (const auto &layer : pipeline.layers) {
        if (layer.flattenBefore)
            activ = flatten(activ);
        activ = applyPostOps(goldenConv(activ, layer), layer);
    }
    return activ;
}

PipelineRunStats
runSystolic(const InferencePipeline &pipeline, const Tensor3 &input,
            int array_rows, int array_cols)
{
    pipeline.check();
    FunctionalNpu npu(array_rows, array_cols);
    PipelineRunStats stats;
    Tensor3 activ = input;
    for (const auto &layer : pipeline.layers) {
        if (layer.flattenBefore)
            activ = flatten(activ);
        activ = applyPostOps(systolicConv(activ, layer, npu, stats),
                             layer);
    }
    stats.output = std::move(activ);
    return stats;
}

} // namespace functional
} // namespace supernpu
