/**
 * @file
 * Functional model of the data alignment unit (Section III-C,
 * Fig. 9): given a weight mapping, selects for each PE row the ifmap
 * pixel every output position needs ("data selection") and leaves
 * the per-row skew to the systolic feeder ("timing adjustment" — one
 * cycle per row, the special-DFF cascade of the real unit).
 */

#ifndef SUPERNPU_FUNCTIONAL_DAU_HH
#define SUPERNPU_FUNCTIONAL_DAU_HH

#include <cstdint>
#include <vector>

#include "golden.hh"
#include "tensor.hh"

namespace supernpu {
namespace functional {

/** One PE row's stationary weight position within a filter. */
struct WeightPosition
{
    int channel = 0; ///< ifmap channel the weight reads
    int dy = 0;      ///< kernel row offset
    int dx = 0;      ///< kernel column offset
};

/** Enumerate a filter's weight positions in (c, dy, dx) raster order. */
std::vector<WeightPosition> enumerateWeightPositions(int channels,
                                                     int kernel_h,
                                                     int kernel_w);

/**
 * Per-PE-row aligned input streams for one weight mapping: row r's
 * stream holds, for each output position index t (row-major over the
 * output map), the ifmap pixel weight position r consumes. Out-of-
 * bounds taps (the padding halo) become zero bubbles, exactly the
 * Fig. 9 bubble mechanism.
 */
std::vector<std::vector<std::int32_t>>
buildAlignedStreams(const Tensor3 &ifmap,
                    const std::vector<WeightPosition> &positions,
                    int kernel_h, int kernel_w, const ConvSpec &spec);

} // namespace functional
} // namespace supernpu

#endif // SUPERNPU_FUNCTIONAL_DAU_HH
