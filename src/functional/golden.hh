/**
 * @file
 * Direct-convolution golden reference the functional NPU model is
 * validated against.
 */

#ifndef SUPERNPU_FUNCTIONAL_GOLDEN_HH
#define SUPERNPU_FUNCTIONAL_GOLDEN_HH

#include "tensor.hh"

namespace supernpu {
namespace functional {

/** Convolution shape parameters. */
struct ConvSpec
{
    int stride = 1;
    int padding = 0;

    /** Output height for an input of `in` rows and kernel `k`. */
    int outDim(int in, int k) const
    {
        return (in + 2 * padding - k) / stride + 1;
    }
};

/**
 * Direct convolution: ifmap (C, H, W) * filters (K x (C, R, S)) ->
 * ofmap (K, outH, outW). Naive quadruple loop, the trusted oracle.
 */
Tensor3 convReference(const Tensor3 &ifmap, const FilterBank &filters,
                      const ConvSpec &spec);

} // namespace functional
} // namespace supernpu

#endif // SUPERNPU_FUNCTIONAL_GOLDEN_HH
