/**
 * @file
 * Behavioural model of the shift-register-based on-chip buffer
 * (Section II-B3 / V-B1): data actually moves, cycle by cycle,
 * through fixed-length recirculating shift registers organized as
 * rows x division chunks.
 *
 * This model serves two purposes:
 *  - it demonstrates the data-movement semantics the performance
 *    simulator's cost formulas abstract (fill = words shifted in,
 *    reuse = a full recirculation of the chunk, inter-buffer move =
 *    source length + destination length), and
 *  - the tests cross-validate those npusim/estimator cycle formulas
 *    against the cycles this model actually consumes.
 */

#ifndef SUPERNPU_FUNCTIONAL_SRBUFFER_HH
#define SUPERNPU_FUNCTIONAL_SRBUFFER_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace supernpu {
namespace functional {

/**
 * One fixed-length recirculating shift register (a buffer row chunk
 * in Fig. 2(b)): serially connected DFFs with a feedback loop.
 * Position 0 is the head (the read port).
 */
class ShiftRegisterChunk
{
  public:
    /** A chunk of `length` word cells, initially all zero. */
    explicit ShiftRegisterChunk(std::size_t length);

    std::size_t length() const { return _cells.size(); }

    /** The word at the read port. */
    std::int32_t head() const { return _cells[_head]; }

    /**
     * One shift cycle with an external input at the tail: every cell
     * advances one position; the head word falls out and is
     * returned. This is the fill / drain primitive.
     */
    std::int32_t shiftIn(std::int32_t word);

    /**
     * One recirculating shift cycle: the head word re-enters at the
     * tail (the Fig. 2(b) feedback loop).
     */
    void rotate();

    /** Words in head-to-tail order (testing convenience). */
    std::vector<std::int32_t> snapshot() const;

  private:
    std::vector<std::int32_t> _cells;
    std::size_t _head = 0; // circular-buffer emulation of the shift
};

/**
 * A divided buffer: `rows` parallel rows, each split into `division`
 * chunks of equal length. All cycle-returning operations move one
 * word per row per cycle (the paper's bytes-per-cycle geometry).
 */
class ShiftRegisterBuffer
{
  public:
    /**
     * @param rows Parallel ports (a PE-array dimension).
     * @param row_length Words per (undivided) row.
     * @param division Chunks per row; must divide row_length.
     */
    ShiftRegisterBuffer(std::size_t rows, std::size_t row_length,
                        std::size_t division);

    std::size_t rows() const { return _rows; }
    std::size_t rowLength() const { return _rowLength; }
    std::size_t division() const { return _division; }
    std::size_t chunkLength() const { return _rowLength / _division; }

    /** Access a chunk for inspection. */
    const ShiftRegisterChunk &chunk(std::size_t row,
                                    std::size_t index) const;

    /**
     * Fill one chunk across all rows: data[r] supplies row r's
     * words, oldest first; all rows shift in lockstep.
     * @return cycles consumed (= words per row).
     */
    std::uint64_t fillChunk(
        std::size_t index,
        const std::vector<std::vector<std::int32_t>> &data);

    /**
     * Drain `words` words per row from one chunk (they fall out of
     * the head; zeros shift in behind).
     * @return the drained words per row; cycles = words.
     */
    std::vector<std::vector<std::int32_t>> drainChunk(
        std::size_t index, std::size_t words,
        std::uint64_t &cycles_out);

    /**
     * Recirculate one chunk all the way around so previously
     * consumed data is back at the head — the "rewind" the paper's
     * Fig. 16 step 2 pays when ifmap data is reused.
     * @return cycles consumed (= chunk length).
     */
    std::uint64_t rewindChunk(std::size_t index);

    /**
     * Move one chunk's live words into another buffer's chunk, as
     * the Baseline's ofmap -> psum copy does (Fig. 16 step 1): the
     * source drains fully while the destination shifts in behind its
     * existing contents.
     * @return cycles consumed (= source chunk length + destination
     *         chunk length, the paper's 65,536-cycle example).
     */
    static std::uint64_t moveChunk(ShiftRegisterBuffer &source,
                                   std::size_t source_index,
                                   ShiftRegisterBuffer &destination,
                                   std::size_t destination_index);

  private:
    std::size_t _rows;
    std::size_t _rowLength;
    std::size_t _division;
    std::vector<ShiftRegisterChunk> _chunks; // rows x division
};

} // namespace functional
} // namespace supernpu

#endif // SUPERNPU_FUNCTIONAL_SRBUFFER_HH
