/**
 * @file
 * Cycle-accurate functional model of the weight-stationary systolic
 * array (Section III-A/B): ifmap words enter the left edge and hop
 * right, partial sums flow downward, weights stay put. Row r's input
 * is skewed by r cycles so each column's bottom port emits one
 * complete dot product per cycle after the fill phase.
 */

#ifndef SUPERNPU_FUNCTIONAL_SYSTOLIC_HH
#define SUPERNPU_FUNCTIONAL_SYSTOLIC_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace supernpu {
namespace functional {

/** One weight-stationary systolic array instance. */
class SystolicArray
{
  public:
    /** Construct a rows x cols array with zero weights. */
    SystolicArray(int rows, int cols);

    int rows() const { return _rows; }
    int cols() const { return _cols; }

    /** Load the stationary weight of PE (row, col). */
    void loadWeight(int row, int col, std::int32_t weight);

    /** Reset the pipeline registers (weights are kept). */
    void resetPipeline();

    /**
     * Advance one clock: `left_inputs` holds the word entering each
     * row this cycle (callers apply the per-row skew). Returns the
     * partial sums leaving the bottom edge of each column.
     */
    std::vector<std::int64_t> step(
        const std::vector<std::int32_t> &left_inputs);

    /** Cycles stepped since construction or the last pipeline reset. */
    std::uint64_t cyclesElapsed() const { return _cycles; }

    /**
     * Stream a full set of aligned input rows through the array.
     * `streams[r][t]` is row r's word for logical time t; the method
     * applies the r-cycle skew, runs the pipeline to drain, and
     * returns `out[c][t]`, the completed column-c dot product for
     * logical time t.
     */
    std::vector<std::vector<std::int64_t>> streamThrough(
        const std::vector<std::vector<std::int32_t>> &streams);

  private:
    int _rows;
    int _cols;
    std::uint64_t _cycles = 0;
    std::vector<std::int32_t> _weights;   // rows x cols
    std::vector<std::int32_t> _ifmapRegs; // rows x cols
    std::vector<std::int64_t> _psumRegs;  // rows x cols

    std::size_t
    at(int r, int c) const
    {
        return (std::size_t)r * _cols + c;
    }
};

} // namespace functional
} // namespace supernpu

#endif // SUPERNPU_FUNCTIONAL_SYSTOLIC_HH
