/**
 * @file
 * Behavioural shift-register buffer implementation.
 */

#include "srbuffer.hh"

namespace supernpu {
namespace functional {

ShiftRegisterChunk::ShiftRegisterChunk(std::size_t length)
    : _cells(length, 0)
{
    SUPERNPU_ASSERT(length > 0, "empty shift register chunk");
}

std::int32_t
ShiftRegisterChunk::shiftIn(std::int32_t word)
{
    // Ring emulation of the serial DFF chain: the head word falls
    // out, every other word advances, the new word enters the tail.
    const std::int32_t out = _cells[_head];
    _cells[_head] = word;
    _head = (_head + 1) % _cells.size();
    return out;
}

void
ShiftRegisterChunk::rotate()
{
    // The feedback loop: the head word re-enters at the tail.
    _head = (_head + 1) % _cells.size();
}

std::vector<std::int32_t>
ShiftRegisterChunk::snapshot() const
{
    std::vector<std::int32_t> out;
    out.reserve(_cells.size());
    for (std::size_t i = 0; i < _cells.size(); ++i)
        out.push_back(_cells[(_head + i) % _cells.size()]);
    return out;
}

ShiftRegisterBuffer::ShiftRegisterBuffer(std::size_t rows,
                                         std::size_t row_length,
                                         std::size_t division)
    : _rows(rows), _rowLength(row_length), _division(division)
{
    SUPERNPU_ASSERT(rows > 0 && row_length > 0 && division > 0,
                    "bad buffer geometry");
    SUPERNPU_ASSERT(row_length % division == 0,
                    "division must split rows evenly");
    _chunks.reserve(rows * division);
    for (std::size_t i = 0; i < rows * division; ++i)
        _chunks.emplace_back(row_length / division);
}

const ShiftRegisterChunk &
ShiftRegisterBuffer::chunk(std::size_t row, std::size_t index) const
{
    SUPERNPU_ASSERT(row < _rows && index < _division,
                    "chunk index out of range");
    return _chunks[row * _division + index];
}

std::uint64_t
ShiftRegisterBuffer::fillChunk(
    std::size_t index, const std::vector<std::vector<std::int32_t>> &data)
{
    SUPERNPU_ASSERT(index < _division, "chunk index out of range");
    SUPERNPU_ASSERT(data.size() == _rows, "fill data row mismatch");
    const std::size_t words = data.front().size();
    SUPERNPU_ASSERT(words <= chunkLength(), "fill overflows the chunk");

    for (std::size_t r = 0; r < _rows; ++r) {
        SUPERNPU_ASSERT(data[r].size() == words,
                        "ragged fill data");
        ShiftRegisterChunk &target = _chunks[r * _division + index];
        for (std::int32_t word : data[r])
            (void)target.shiftIn(word);
    }
    return words; // one word per row per cycle
}

std::vector<std::vector<std::int32_t>>
ShiftRegisterBuffer::drainChunk(std::size_t index, std::size_t words,
                                std::uint64_t &cycles_out)
{
    SUPERNPU_ASSERT(index < _division, "chunk index out of range");
    SUPERNPU_ASSERT(words <= chunkLength(), "drain exceeds the chunk");

    std::vector<std::vector<std::int32_t>> out(_rows);
    for (std::size_t r = 0; r < _rows; ++r) {
        ShiftRegisterChunk &source = _chunks[r * _division + index];
        out[r].reserve(words);
        for (std::size_t w = 0; w < words; ++w)
            out[r].push_back(source.shiftIn(0));
    }
    cycles_out = words;
    return out;
}

std::uint64_t
ShiftRegisterBuffer::rewindChunk(std::size_t index)
{
    SUPERNPU_ASSERT(index < _division, "chunk index out of range");
    for (std::size_t r = 0; r < _rows; ++r) {
        ShiftRegisterChunk &target = _chunks[r * _division + index];
        for (std::size_t i = 0; i < chunkLength(); ++i)
            target.rotate();
    }
    return chunkLength();
}

std::uint64_t
ShiftRegisterBuffer::moveChunk(ShiftRegisterBuffer &source,
                               std::size_t source_index,
                               ShiftRegisterBuffer &destination,
                               std::size_t destination_index)
{
    SUPERNPU_ASSERT(source.rows() == destination.rows(),
                    "buffer row mismatch");
    SUPERNPU_ASSERT(source.chunkLength() <= destination.chunkLength(),
                    "destination chunk too small");

    std::uint64_t drain_cycles = 0;
    auto words = source.drainChunk(source_index, source.chunkLength(),
                                   drain_cycles);
    // Pad so the moved words finish flush at the destination head.
    for (auto &row : words)
        row.resize(destination.chunkLength(), 0);
    const std::uint64_t fill_cycles =
        destination.fillChunk(destination_index, words);
    // The paper's Fig. 16 example: moving across the 8 MB + 8 MB
    // buffer pair costs the sum of both lengths (65,536 cycles).
    return drain_cycles + fill_cycles;
}

} // namespace functional
} // namespace supernpu
