/**
 * @file
 * Dispatcher implementation.
 */

#include "dispatch.hh"

#include "common/logging.hh"

namespace supernpu {
namespace serving {

const char *
dispatchPolicyName(DispatchPolicy policy)
{
    switch (policy) {
      case DispatchPolicy::RoundRobin:
        return "rr";
      case DispatchPolicy::JoinShortestQueue:
        return "jsq";
    }
    panic("bad dispatch policy");
}

Dispatcher::Dispatcher(DispatchPolicy policy, int chips)
    : _policy(policy), _chips(chips)
{
    if (chips < 1)
        fatal("dispatcher needs at least one chip");
}

int
Dispatcher::pick(const std::vector<int> &outstanding)
{
    SUPERNPU_ASSERT((int)outstanding.size() == _chips,
                    "outstanding counts do not match chip count");
    if (_policy == DispatchPolicy::RoundRobin) {
        const int chip = _next;
        _next = (_next + 1) % _chips;
        return chip;
    }
    int best = 0;
    for (int chip = 1; chip < _chips; ++chip) {
        if (outstanding[chip] < outstanding[best])
            best = chip;
    }
    return best;
}

} // namespace serving
} // namespace supernpu
