/**
 * @file
 * Dispatcher implementation.
 */

#include "dispatch.hh"

#include "common/logging.hh"

namespace supernpu {
namespace serving {

const char *
dispatchPolicyName(DispatchPolicy policy)
{
    switch (policy) {
      case DispatchPolicy::RoundRobin:
        return "rr";
      case DispatchPolicy::JoinShortestQueue:
        return "jsq";
    }
    panic("bad dispatch policy");
}

Dispatcher::Dispatcher(DispatchPolicy policy, int chips)
    : _policy(policy), _chips(chips)
{
    if (chips < 1)
        fatal("dispatcher needs at least one chip");
}

int
Dispatcher::pick(const std::vector<int> &outstanding)
{
    SUPERNPU_ASSERT((int)outstanding.size() == _chips,
                    "outstanding counts do not match chip count");
    if (_policy == DispatchPolicy::RoundRobin) {
        const int chip = _next;
        _next = (_next + 1) % _chips;
        return chip;
    }
    int best = 0;
    for (int chip = 1; chip < _chips; ++chip) {
        if (outstanding[chip] < outstanding[best])
            best = chip;
    }
    return best;
}

int
Dispatcher::pick(const std::vector<int> &outstanding,
                 const std::vector<char> &healthy)
{
    SUPERNPU_ASSERT((int)healthy.size() == _chips,
                    "health mask does not match chip count");
    bool any_healthy = false;
    for (char h : healthy)
        any_healthy = any_healthy || h != 0;
    if (!any_healthy)
        return pick(outstanding);

    if (_policy == DispatchPolicy::RoundRobin) {
        for (int step = 0; step < _chips; ++step) {
            const int chip = (_next + step) % _chips;
            if (healthy[chip]) {
                _next = (chip + 1) % _chips;
                return chip;
            }
        }
        panic("unreachable: no healthy chip after mask check");
    }
    SUPERNPU_ASSERT((int)outstanding.size() == _chips,
                    "outstanding counts do not match chip count");
    int best = -1;
    for (int chip = 0; chip < _chips; ++chip) {
        if (!healthy[chip])
            continue;
        if (best < 0 || outstanding[chip] < outstanding[best])
            best = chip;
    }
    return best;
}

} // namespace serving
} // namespace supernpu
