/**
 * @file
 * Batch service-time model implementation.
 */

#include "service_model.hh"

#include "common/logging.hh"

namespace supernpu {
namespace serving {

BatchServiceModel::BatchServiceModel(
    const estimator::NpuEstimate &estimate, dnn::Network network)
    : _sim(estimate), _net(std::move(network))
{
    _net.check();
}

double
BatchServiceModel::batchSeconds(int batch) const
{
    SUPERNPU_ASSERT(batch >= 1, "bad batch");
    const auto hit = _cache.find(batch);
    if (hit != _cache.end())
        return hit->second;
    const double seconds = _sim.run(_net, batch).seconds();
    SUPERNPU_ASSERT(seconds > 0.0, "service time must be positive");
    _cache.emplace(batch, seconds);
    return seconds;
}

} // namespace serving
} // namespace supernpu
