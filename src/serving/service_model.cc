/**
 * @file
 * Batch service-time model implementation.
 */

#include "service_model.hh"

#include "common/logging.hh"

namespace supernpu {
namespace serving {

BatchServiceModel::BatchServiceModel(
    const estimator::NpuEstimate &estimate, dnn::Network network,
    npusim::SimCache *cache)
    : _sim(estimate), _net(std::move(network)),
      _cache(cache != nullptr ? cache : &npusim::SimCache::global())
{
    _net.check();
    _netHash = npusim::hashNetwork(_net);
    _configHash = npusim::hashEstimate(estimate);
}

double
BatchServiceModel::batchSeconds(int batch) const
{
    SUPERNPU_ASSERT(batch >= 1, "bad batch");
    const npusim::SimKey key{_netHash, _configHash, batch};
    const auto run = _cache->getOrRun(key, _sim, _net);
    const double seconds = run->seconds();
    SUPERNPU_ASSERT(seconds > 0.0, "service time must be positive");
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _batches.insert(batch);
    }
    return seconds;
}

std::size_t
BatchServiceModel::cachedBatches() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _batches.size();
}

} // namespace serving
} // namespace supernpu
