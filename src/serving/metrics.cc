/**
 * @file
 * Serving metrics implementation.
 */

#include "metrics.hh"

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"
#include "common/table.hh"

namespace supernpu {
namespace serving {

namespace {

/** Milliseconds with enough digits for microsecond-scale tails. */
std::string
msCell(double seconds)
{
    char text[48];
    std::snprintf(text, sizeof(text), "%.4f", seconds * 1e3);
    return text;
}

} // namespace

void
ServingReport::print() const
{
    std::printf("%s on %s x%d: arrival %s, batching %s (max %d),"
                " dispatch %s\n",
                network.c_str(), configName.c_str(), chips,
                arrival.c_str(), policy.c_str(), maxBatch,
                dispatch.c_str());
    if (pipelineStages > 1) {
        std::printf("pipelined: %d stages x %d group(s)\n",
                    pipelineStages, pipelineGroups);
    }
    if (dataParallelReplicas > 1) {
        std::printf("replicated: %d replicas x %d group(s)\n",
                    dataParallelReplicas, replicaGroups);
    }
    TextTable table;
    table.row().cell("metric").cell("value");
    table.row().cell("requests completed").cell((long long)completed);
    table.row().cell("makespan (s)").cell(makespanSec, 4);
    table.row().cell("offered load (req/s)").cell(offeredRps, 1);
    table.row().cell("throughput (req/s)").cell(throughputRps, 1);
    table.row().cell("chip utilization (%)").cell(utilization * 100.0, 1);
    table.row().cell("mean queue depth").cell(meanQueueDepth, 2);
    table.row().cell("mean batch").cell(meanBatch, 2);
    table.row().cell("largest batch").cell((long long)maxBatchLaunched);
    table.row().cell("latency mean (ms)").cell(msCell(latencyMean));
    table.row().cell("latency p50 (ms)").cell(msCell(latencyP50));
    table.row().cell("latency p95 (ms)").cell(msCell(latencyP95));
    table.row().cell("latency p99 (ms)").cell(msCell(latencyP99));
    table.row().cell("latency p99.9 (ms)").cell(msCell(latencyP999));
    table.row().cell("latency max (ms)").cell(msCell(latencyMax));
    if (resilienceActive) {
        table.row().cell("recovery policy").cell(recovery);
        table.row().cell("faults injected").cell(faultsInjected);
        table.row().cell("batches killed").cell(batchesKilled);
        table.row().cell("requests killed").cell(requestsKilled);
        table.row().cell("retries").cell(retriesTotal);
        table.row().cell("retry give-ups").cell(retryGiveUps);
        table.row().cell("checkpoint restarts").cell(restarts);
        table.row().cell("re-dispatches").cell(redispatches);
        table.row().cell("link glitches absorbed").cell(glitchesAbsorbed);
        table.row().cell("failed requests").cell(failedRequests);
        table.row().cell("availability (%)").cell(availability * 100.0,
                                                  2);
        table.row().cell("goodput (req/s)").cell(goodputRps, 1);
    }
    table.print();
}

MetricsCollector::MetricsCollector(int chips)
    : _busySec(chips, 0.0), _chipBatches(chips, 0),
      _transientLossSec(chips, 0.0), _permFraction(chips, 0.0),
      _permSinceSec(chips, 0.0), _permAccruedSec(chips, 0.0)
{
    SUPERNPU_ASSERT(chips >= 1, "need at least one chip");
}

void
MetricsCollector::advanceTo(double now_sec,
                            std::size_t total_queue_depth)
{
    SUPERNPU_ASSERT(now_sec + 1e-12 >= _clockSec,
                    "simulation clock ran backwards");
    if (now_sec > _clockSec) {
        _depthIntegral +=
            (double)total_queue_depth * (now_sec - _clockSec);
        _clockSec = now_sec;
    }
}

void
MetricsCollector::recordLatency(double seconds)
{
    _latency.add(seconds);
}

void
MetricsCollector::recordBatch(int chip, int size, double service_sec)
{
    SUPERNPU_ASSERT(chip >= 0 && chip < (int)_busySec.size(),
                    "bad chip index");
    _batchSizes.add((double)size);
    _busySec[chip] += service_sec;
    ++_chipBatches[chip];
}

void
MetricsCollector::recordPipelinedBatch(
    int first_chip, int size, const std::vector<double> &stage_busy)
{
    SUPERNPU_ASSERT(first_chip >= 0 &&
                        first_chip + (int)stage_busy.size() <=
                            (int)_busySec.size(),
                    "pipeline group outside the chip range");
    _batchSizes.add((double)size);
    // The launch counts once, attributed to the group's stage-0
    // chip, so Σ perChipBatches == batchesLaunched still holds
    // (obs/audit.hh checks it); the busy time lands on each stage's
    // physical chip.
    ++_chipBatches[first_chip];
    for (std::size_t stage = 0; stage < stage_busy.size(); ++stage)
        _busySec[first_chip + (int)stage] += stage_busy[stage];
}

void
MetricsCollector::extendBusy(int chip, double delta_sec)
{
    SUPERNPU_ASSERT(chip >= 0 && chip < (int)_busySec.size(),
                    "bad chip index");
    _busySec[chip] += delta_sec;
    SUPERNPU_ASSERT(_busySec[chip] >= -1e-12,
                    "chip busy time went negative");
}

void
MetricsCollector::addTransientLoss(int chip, double seconds)
{
    SUPERNPU_ASSERT(chip >= 0 && chip < (int)_busySec.size(),
                    "bad chip index");
    SUPERNPU_ASSERT(seconds >= 0, "negative transient loss");
    _transientLossSec[chip] += seconds;
}

void
MetricsCollector::setPermanentLoss(int chip, double since_sec,
                                   double fraction)
{
    SUPERNPU_ASSERT(chip >= 0 && chip < (int)_busySec.size(),
                    "bad chip index");
    SUPERNPU_ASSERT(fraction >= 0.0 && fraction <= 1.0,
                    "permanent loss fraction outside [0, 1]");
    if (_permFraction[chip] > 0.0 && since_sec > _permSinceSec[chip]) {
        _permAccruedSec[chip] +=
            _permFraction[chip] * (since_sec - _permSinceSec[chip]);
    }
    _permFraction[chip] = fraction;
    _permSinceSec[chip] = since_sec;
}

ServingReport
MetricsCollector::finish(double makespan_sec) const
{
    ServingReport report;
    report.makespanSec = makespan_sec;
    report.completed = _latency.count();
    if (makespan_sec > 0.0) {
        report.throughputRps =
            (double)_latency.count() / makespan_sec;
        double busy = 0.0;
        for (double b : _busySec)
            busy += b;
        report.utilization =
            busy / (makespan_sec * (double)_busySec.size());
        report.meanQueueDepth = _depthIntegral / makespan_sec;
    } else {
        // A zero-length run (no requests, or everything at t = 0)
        // has no meaningful rates; every time-normalized metric is
        // pinned to 0 rather than dividing by zero.
        warn("serving makespan is zero; reporting zero rates, "
             "utilization, and availability");
        report.throughputRps = 0.0;
        report.utilization = 0.0;
        report.meanQueueDepth = 0.0;
        report.availability = 0.0;
    }
    report.batchesLaunched = _batchSizes.count();
    report.meanBatch = _batchSizes.mean();
    report.maxBatchLaunched = (int)_batchSizes.max();
    report.latencyMean = _latency.mean();
    report.latencyP50 = _latency.percentile(50.0);
    report.latencyP95 = _latency.percentile(95.0);
    report.latencyP99 = _latency.percentile(99.0);
    report.latencyP999 = _latency.percentile(99.9);
    report.latencyMax = _latency.max();

    report.perChipBatches = _chipBatches;
    report.perChipBusySec = _busySec;
    if (makespan_sec > 0.0) {
        double lost = 0.0;
        for (std::size_t chip = 0; chip < _busySec.size(); ++chip) {
            lost += _transientLossSec[chip] + _permAccruedSec[chip];
            if (_permFraction[chip] > 0.0 &&
                makespan_sec > _permSinceSec[chip]) {
                lost += _permFraction[chip] *
                        (makespan_sec - _permSinceSec[chip]);
            }
        }
        const double capacity =
            makespan_sec * (double)_busySec.size();
        report.availability =
            std::max(0.0, std::min(1.0, 1.0 - lost / capacity));
    }
    return report;
}

} // namespace serving
} // namespace supernpu
