/**
 * @file
 * The discrete-event inference-serving simulator: requests arrive
 * (arrival.hh), a dispatcher places them on chips (dispatch.hh),
 * per-chip batch queues form batches (batcher.hh), and each launched
 * batch occupies its chip for the cycle-level service time
 * (service_model.hh). Completion latencies and system occupancy feed
 * the metrics collector (metrics.hh).
 *
 * The event loop is a classic calendar queue over three event kinds:
 * request arrival, batch-timeout expiry, and chip completion. All
 * stochastic choices flow through one seeded common/rng generator,
 * so a (config, seed) pair replays bit-identically.
 *
 * Drain semantics: once the configured request count has been
 * injected, remaining queued requests flush even if the fixed-batch
 * policy would strand a partial batch — so `completed == generated`
 * always holds at the end of run().
 *
 * Fault injection: attaching a reliability::FaultSchedule adds fault
 * events to the calendar — pulse drops corrupt in-flight batches,
 * flux traps permanently derate (and, under degraded dispatch,
 * quarantine) chips, clock-skew windows derate launches, and link
 * glitches stretch in-flight batches. The attached ResilienceConfig
 * decides what happens after detection (resilience.hh). With an
 * empty schedule no fault event is ever created and the run is
 * byte-identical to a fault-free build.
 */

#ifndef SUPERNPU_SERVING_SIMULATOR_HH
#define SUPERNPU_SERVING_SIMULATOR_HH

#include <cstdint>

#include "arrival.hh"
#include "batcher.hh"
#include "dispatch.hh"
#include "metrics.hh"
#include "partition/pipeline_sim.hh"
#include "reliability/fault_model.hh"
#include "resilience.hh"
#include "service_model.hh"

namespace supernpu {
namespace serving {

/** Full description of one serving experiment. */
struct ServingConfig
{
    ArrivalConfig arrival;
    BatchingConfig batching;
    DispatchPolicy dispatch = DispatchPolicy::JoinShortestQueue;

    int chips = 1;                  ///< identical NPU dies
    std::uint64_t requests = 20000; ///< total requests to inject
    std::uint64_t seed = 0x5e971ce5eedull; ///< RNG seed

    // --- pipeline-parallel placement (src/partition) ----------------
    /**
     * Stages per pipeline group. 1 (the default) places a whole
     * request on one chip — the pre-partition behavior, byte for
     * byte. K > 1 groups the chips into chips/K pipelines: the
     * dispatcher places requests on groups, batches stream through
     * the K stages back to back, a group's stage-0 slot frees one
     * initiation interval after launch, and results emerge a full
     * pipeline fill latency after launch. Requires chips % K == 0;
     * checkpoint-restart resilience is not supported for K > 1
     * (there is no per-stage checkpoint model).
     */
    int pipelineStages = 1;

    // --- data-parallel placement (src/sharding) ---------------------
    /**
     * Replicas per data-parallel group. 1 (the default) is the
     * pre-sharding behavior, byte for byte. R > 1 groups the chips
     * into chips/R replica sets the dispatcher treats as one logical
     * server: a launched batch splits into near-equal shares, every
     * replica chip is busy for the widest share's service time plus
     * the ring all-gather of the results, and a fault on any replica
     * degrades — and under degraded dispatch quarantines — the whole
     * group. Requires chips % R == 0. Mutually exclusive with
     * pipelineStages > 1 (no hybrid serving placement model) and
     * with checkpoint-restart resilience (no distributed checkpoint
     * model).
     */
    int dataParallelReplicas = 1;

    /**
     * Inter-chip link of pipelined groups (K > 1) and of replica
     * groups' all-gather (R > 1).
     */
    partition::LinkConfig link;

    /**
     * Hardware faults to inject; empty (the default) runs fault-free
     * and leaves every output byte-identical to a no-faults build.
     * A non-empty schedule must cover exactly `chips` chips.
     */
    reliability::FaultSchedule faults;
    /** What the serving layer does about detected faults. */
    ResilienceConfig resilience;

    /** Panics when malformed. */
    void check() const;
};

/** Runs one serving experiment over a batch service model. */
class ServingSimulator
{
  public:
    ServingSimulator(const BatchServiceModel &service,
                     const ServingConfig &config);

    /** Simulate until every injected request completes. */
    ServingReport run();

  private:
    const BatchServiceModel &_service;
    ServingConfig _cfg;
};

} // namespace serving
} // namespace supernpu

#endif // SUPERNPU_SERVING_SIMULATOR_HH
