/**
 * @file
 * Batch queue implementation.
 */

#include "batcher.hh"

#include <limits>

#include "common/logging.hh"

namespace supernpu {
namespace serving {

const char *
batchPolicyName(BatchPolicy policy)
{
    switch (policy) {
      case BatchPolicy::DynamicTimeout:
        return "dynamic";
      case BatchPolicy::FixedBatch:
        return "fixed";
    }
    panic("bad batch policy");
}

void
BatchingConfig::check() const
{
    if (maxBatch < 1)
        fatal("maxBatch must be at least 1");
    if (policy == BatchPolicy::DynamicTimeout && timeoutSec < 0.0)
        fatal("batch timeout cannot be negative");
}

BatchQueue::BatchQueue(const BatchingConfig &config) : _cfg(config)
{
    _cfg.check();
}

void
BatchQueue::push(const Request &request)
{
    SUPERNPU_ASSERT(_queue.empty() ||
                        request.enqueueSec >= _queue.back().enqueueSec,
                    "requests must enqueue in time order");
    _queue.push_back(request);
}

bool
BatchQueue::launchable(double now_sec) const
{
    if (_queue.size() >= (std::size_t)_cfg.maxBatch)
        return true;
    if (_cfg.policy != BatchPolicy::DynamicTimeout || _queue.empty())
        return false;
    return now_sec >= nextDeadlineSec();
}

double
BatchQueue::nextDeadlineSec() const
{
    if (_cfg.policy != BatchPolicy::DynamicTimeout || _queue.empty())
        return std::numeric_limits<double>::infinity();
    return _queue.front().enqueueSec + _cfg.timeoutSec;
}

std::vector<Request>
BatchQueue::pop()
{
    std::vector<Request> batch;
    popInto(batch);
    return batch;
}

void
BatchQueue::popInto(std::vector<Request> &out)
{
    const std::size_t take =
        std::min(_queue.size(), (std::size_t)_cfg.maxBatch);
    out.assign(_queue.begin(), _queue.begin() + take);
    _queue.erase(_queue.begin(), _queue.begin() + take);
}

} // namespace serving
} // namespace supernpu
