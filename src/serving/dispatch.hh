/**
 * @file
 * Multi-NPU request dispatcher for scale-out serving: several SFQ
 * NPU dies share one cryostat (see examples/scaleout_study.cpp), and
 * a front end spreads incoming requests across them.
 *
 *  - round-robin: stateless rotation, oblivious to queue state;
 *  - join-shortest-queue: send each request to the chip with the
 *    fewest outstanding requests (queued + in flight), the classic
 *    latency-optimal heuristic when service times are uniform
 *    across chips.
 */

#ifndef SUPERNPU_SERVING_DISPATCH_HH
#define SUPERNPU_SERVING_DISPATCH_HH

#include <vector>

namespace supernpu {
namespace serving {

/** Request-to-chip placement discipline. */
enum class DispatchPolicy
{
    RoundRobin,
    JoinShortestQueue,
};

/** Stable lowercase name of a dispatch policy. */
const char *dispatchPolicyName(DispatchPolicy policy);

/** Picks a target chip for each incoming request. */
class Dispatcher
{
  public:
    Dispatcher(DispatchPolicy policy, int chips);

    /**
     * Choose a chip for the next request.
     *
     * @param outstanding Per-chip outstanding request counts
     *        (queued + in service); must have one entry per chip.
     *        Ignored by round-robin. Ties break to the lowest index.
     */
    int pick(const std::vector<int> &outstanding);

    /**
     * Same, restricted to chips whose `healthy` entry is nonzero —
     * degraded-mode dispatch skips quarantined chips. Round-robin
     * rotates to the next healthy chip; JSQ minimizes over healthy
     * chips only. If no chip is healthy the mask is ignored (work
     * must land somewhere), matching the unmasked pick.
     */
    int pick(const std::vector<int> &outstanding,
             const std::vector<char> &healthy);

    DispatchPolicy policy() const { return _policy; }

  private:
    DispatchPolicy _policy;
    int _chips;
    int _next = 0; ///< round-robin cursor
};

} // namespace serving
} // namespace supernpu

#endif // SUPERNPU_SERVING_DISPATCH_HH
