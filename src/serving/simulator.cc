/**
 * @file
 * Discrete-event serving loop implementation.
 *
 * Event ordering: the heap orders by (time, sequence). The sequence
 * tiebreak makes simultaneous events process in creation order, which
 * keeps runs deterministic across standard-library heap
 * implementations.
 *
 * Timeout events are advisory: a fired timeout only launches a batch
 * if the chip is idle and the queue's own `launchable` test agrees.
 * Stale timeouts (the queue already launched, or grew to a full
 * batch) are no-ops, so the loop never needs to cancel events.
 */

#include "simulator.hh"

#include <limits>
#include <queue>

#include "common/logging.hh"

namespace supernpu {
namespace serving {

void
ServingConfig::check() const
{
    arrival.check();
    batching.check();
    if (chips < 1)
        fatal("serving needs at least one chip");
    if (requests < 1)
        fatal("serving needs at least one request");
}

namespace {

/** Event kinds of the calendar queue. */
enum class EventKind
{
    Arrival, ///< one request enters the system
    Timeout, ///< a chip's batch-timeout deadline passed
    Done,    ///< a chip finished its in-flight batch
};

/** One scheduled event. */
struct Event
{
    double timeSec;
    std::uint64_t seq; ///< creation order, the determinism tiebreak
    EventKind kind;
    int chip; ///< Timeout/Done target; unused for arrivals
};

/** Min-heap ordering on (time, seq). */
struct EventAfter
{
    bool operator()(const Event &a, const Event &b) const
    {
        if (a.timeSec != b.timeSec)
            return a.timeSec > b.timeSec;
        return a.seq > b.seq;
    }
};

/** One simulated NPU die: its batch queue and in-flight batch. */
struct Chip
{
    explicit Chip(const BatchingConfig &batching) : queue(batching) {}

    BatchQueue queue;
    bool busy = false;
    std::vector<Request> inFlight;

    int outstanding() const
    {
        return (int)queue.depth() + (int)inFlight.size();
    }
};

} // namespace

ServingSimulator::ServingSimulator(const BatchServiceModel &service,
                                   const ServingConfig &config)
    : _service(service), _cfg(config)
{
    _cfg.check();
}

ServingReport
ServingSimulator::run()
{
    std::priority_queue<Event, std::vector<Event>, EventAfter> events;
    std::uint64_t next_seq = 0;
    const auto schedule = [&](double time, EventKind kind, int chip) {
        events.push(Event{time, next_seq++, kind, chip});
    };

    ArrivalProcess arrivals(_cfg.arrival, _cfg.seed);
    Dispatcher dispatcher(_cfg.dispatch, _cfg.chips);
    MetricsCollector metrics(_cfg.chips);

    std::vector<Chip> chips(_cfg.chips, Chip(_cfg.batching));
    std::uint64_t injected = 0;  ///< arrival events created
    std::uint64_t arrived = 0;   ///< requests that entered a queue
    std::uint64_t completed = 0;
    double clock = 0.0;

    // Launch a batch on an idle chip when its queue allows; otherwise
    // arm the queue's next timeout deadline.
    const auto try_launch = [&](int index) {
        Chip &chip = chips[index];
        if (chip.busy || !chip.queue.launchable(clock)) {
            const double deadline = chip.queue.nextDeadlineSec();
            if (!chip.busy && deadline > clock &&
                deadline < std::numeric_limits<double>::infinity()) {
                schedule(deadline, EventKind::Timeout, index);
            }
            return;
        }
        chip.inFlight = chip.queue.pop();
        chip.busy = true;
        const double service =
            _service.batchSeconds((int)chip.inFlight.size());
        metrics.recordBatch(index, (int)chip.inFlight.size(), service);
        schedule(clock + service, EventKind::Done, index);
    };

    const auto total_depth = [&]() {
        std::size_t depth = 0;
        for (const Chip &chip : chips)
            depth += chip.queue.depth();
        return depth;
    };

    // Seed the calendar: open-loop sources self-schedule; closed-loop
    // clients all fire their first request at t = 0.
    if (arrivals.openLoop()) {
        schedule(arrivals.nextGapSec(), EventKind::Arrival, -1);
        ++injected;
    } else {
        const std::uint64_t first = std::min<std::uint64_t>(
            (std::uint64_t)_cfg.arrival.clients, _cfg.requests);
        for (std::uint64_t i = 0; i < first; ++i)
            schedule(0.0, EventKind::Arrival, -1);
        injected = first;
    }

    while (completed < _cfg.requests) {
        if (events.empty()) {
            // Only reachable when the fixed-batch policy stranded
            // partial batches after the last injection: flush them.
            bool flushed = false;
            for (int i = 0; i < _cfg.chips; ++i) {
                if (!chips[i].busy && !chips[i].queue.empty()) {
                    chips[i].inFlight = chips[i].queue.flush();
                    chips[i].busy = true;
                    const double service = _service.batchSeconds(
                        (int)chips[i].inFlight.size());
                    metrics.recordBatch(
                        i, (int)chips[i].inFlight.size(), service);
                    schedule(clock + service, EventKind::Done, i);
                    flushed = true;
                }
            }
            SUPERNPU_ASSERT(flushed,
                            "serving deadlock: no events, no work");
            continue;
        }

        const Event event = events.top();
        events.pop();
        metrics.advanceTo(event.timeSec, total_depth());
        clock = event.timeSec;

        switch (event.kind) {
          case EventKind::Arrival: {
            std::vector<int> outstanding(_cfg.chips);
            for (int i = 0; i < _cfg.chips; ++i)
                outstanding[i] = chips[i].outstanding();
            const int target = dispatcher.pick(outstanding);
            chips[target].queue.push(Request{arrived++, clock});
            try_launch(target);
            if (arrivals.openLoop() && injected < _cfg.requests) {
                schedule(clock + arrivals.nextGapSec(),
                         EventKind::Arrival, -1);
                ++injected;
            }
            break;
          }
          case EventKind::Timeout:
            try_launch(event.chip);
            break;
          case EventKind::Done: {
            Chip &chip = chips[event.chip];
            SUPERNPU_ASSERT(chip.busy, "completion on an idle chip");
            for (const Request &request : chip.inFlight) {
                metrics.recordLatency(clock - request.arrivalSec);
                ++completed;
                // Closed loop: the client thinks, then asks again.
                if (!arrivals.openLoop() && injected < _cfg.requests) {
                    schedule(clock + arrivals.thinkGapSec(),
                             EventKind::Arrival, -1);
                    ++injected;
                }
            }
            chip.inFlight.clear();
            chip.busy = false;
            try_launch(event.chip);
            break;
          }
        }
    }

    SUPERNPU_ASSERT(arrived == _cfg.requests &&
                        completed == _cfg.requests,
                    "serving run lost requests");

    ServingReport report = metrics.finish(clock);
    report.network = _service.network().name;
    report.configName = _service.estimate().config.name;
    report.chips = _cfg.chips;
    report.arrival = arrivalKindName(_cfg.arrival.kind);
    report.policy = batchPolicyName(_cfg.batching.policy);
    report.dispatch = dispatchPolicyName(_cfg.dispatch);
    report.maxBatch = _cfg.batching.maxBatch;
    report.generated = arrived;
    report.offeredRps = arrivals.openLoop()
                            ? _cfg.arrival.ratePerSec
                            : report.throughputRps;
    return report;
}

} // namespace serving
} // namespace supernpu
