/**
 * @file
 * Discrete-event serving loop implementation.
 *
 * Event ordering: the heap orders by (time, sequence). The sequence
 * tiebreak makes simultaneous events process in creation order, which
 * keeps runs deterministic across standard-library heap
 * implementations.
 *
 * Timeout events are advisory: a fired timeout only launches a batch
 * if the chip is idle and the queue's own `launchable` test agrees.
 * Stale timeouts (the queue already launched, or grew to a full
 * batch) are no-ops, so the loop never needs to cancel events.
 *
 * Fault events reuse the same discipline: Detect carries the launch
 * generation it was armed for and is a no-op if the batch completed
 * or restarted in the meantime; Done carries its own schedule
 * sequence and is a no-op unless it is the chip's pending completion
 * (a killed or glitch-stretched batch leaves a stale Done behind
 * rather than requiring heap surgery). With an empty fault schedule
 * no fault event is created, no service time is scaled, and the
 * event sequence — hence every metric — is byte-identical to the
 * pre-fault simulator.
 */

#include "simulator.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <memory>
#include <queue>

#include "common/logging.hh"
#include "perf/profile.hh"
#include "sharding/collective.hh"

namespace supernpu {
namespace serving {

void
ServingConfig::check() const
{
    arrival.check();
    batching.check();
    if (chips < 1)
        fatal("serving needs at least one chip");
    if (requests < 1)
        fatal("serving needs at least one request");
    if (pipelineStages < 1)
        fatal("pipelineStages must be at least 1, got ",
              pipelineStages);
    if (chips % pipelineStages != 0) {
        fatal("pipelined serving needs chips divisible by the stage "
              "count: ", chips, " chips, ", pipelineStages,
              " stages");
    }
    if (dataParallelReplicas < 1)
        fatal("dataParallelReplicas must be at least 1, got ",
              dataParallelReplicas);
    if (dataParallelReplicas > 1 && pipelineStages > 1) {
        fatal("data-parallel replica groups cannot be combined with "
              "pipelined placement in serving (no hybrid placement "
              "model); pick one of --dp and --stages");
    }
    if (chips % (pipelineStages * dataParallelReplicas) != 0) {
        fatal("replicated serving needs chips divisible by the "
              "replica count: ", chips, " chips, ",
              dataParallelReplicas, " replicas");
    }
    link.check();
    resilience.check();
    if (pipelineStages > 1 && resilience.checkpointRestart) {
        fatal("checkpoint-restart resilience is not supported with "
              "pipelined placement (no per-stage checkpoint model); "
              "use retry or degraded-dispatch recovery");
    }
    if (dataParallelReplicas > 1 && resilience.checkpointRestart) {
        fatal("checkpoint-restart resilience is not supported with "
              "data-parallel replica groups (no distributed "
              "checkpoint model); use retry or degraded-dispatch "
              "recovery");
    }
    if (!faults.empty() && faults.config().chips != chips)
        fatal("fault schedule covers ", faults.config().chips,
              " chips but the serving config has ", chips);
}

namespace {

/** Event kinds of the calendar queue. */
enum class EventKind
{
    Arrival,   ///< one request enters the system
    Timeout,   ///< a chip's batch-timeout deadline passed
    Done,      ///< a chip finished its in-flight batch
    Fault,     ///< a scheduled hardware fault strikes
    Detect,    ///< corruption detection latency elapsed
    Quarantine,///< a permanently-faulted chip is taken out
    Retry,     ///< a killed request's backoff expired
    StageFree, ///< a pipeline group's stage 0 can accept a batch
};

/** One scheduled event. */
struct Event
{
    double timeSec;
    std::uint64_t seq; ///< creation order, the determinism tiebreak
    EventKind kind;
    int chip; ///< Timeout/Done/Fault/... target; unused for arrivals
    /**
     * Fault: index into the fault schedule. Detect: the launch
     * generation it was armed for. Unused otherwise.
     */
    std::uint64_t tag = 0;
    /** The re-enqueued request of a Retry event. */
    Request retryRequest{};
};

/** Min-heap ordering on (time, seq). */
struct EventAfter
{
    bool operator()(const Event &a, const Event &b) const
    {
        if (a.timeSec != b.timeSec)
            return a.timeSec > b.timeSec;
        return a.seq > b.seq;
    }
};

/** Sentinel: no completion pending. */
constexpr std::uint64_t kNoSeq =
    std::numeric_limits<std::uint64_t>::max();

/**
 * One batch streaming through a K-stage pipeline group. Launched
 * back to back, several can be in flight in one group at once; the
 * deque stays FIFO-ordered by completion.
 */
struct PipeBatch
{
    std::vector<Request> requests;
    double launchSec = 0.0;
    double doneSec = 0.0;
    std::uint64_t doneSeq = 0; ///< valid Done event for this batch
    bool corrupted = false;
    /** Per-stage busy windows, offsets from launchSec (derated). */
    std::vector<double> stageStartSec;
    std::vector<double> stageBusySec;
};

/**
 * One dispatch target: a single NPU die, or — in pipelined mode — a
 * whole K-chip pipeline group sharing one batch queue.
 */
struct Chip
{
    explicit Chip(const BatchingConfig &batching) : queue(batching) {}

    BatchQueue queue;
    bool busy = false;
    std::vector<Request> inFlight;

    // --- pipelined-mode state (unused when pipelineStages == 1) -----
    std::deque<PipeBatch> pipeInFlight;
    double lastPipeDoneSec = 0.0; ///< FIFO floor for completions
    double freeSec = 0.0;         ///< when stage 0 frees
    std::uint64_t pendingFreeSeq = kNoSeq; ///< valid StageFree event
    /**
     * Per stage lane: when the busy time charged for link-glitch
     * stalls ends. A stall only occupies the struck chip while the
     * group still has batches to ship, so when a Detect wave empties
     * the group the unexpired remainder is given back. Sized K on
     * the first glitch.
     */
    std::vector<double> stallUntilSec;

    // --- fault state (inert without a fault schedule) ---------------
    std::uint64_t launchGen = 0;  ///< increments per (re)launch
    std::uint64_t pendingDoneSeq = kNoSeq; ///< valid Done event
    double launchSec = 0.0;  ///< current batch launch time
    double serviceSec = 0.0; ///< current batch service time (work)
    double doneSec = 0.0;    ///< current batch completion time
    /**
     * Link-glitch stall accumulated by the current batch. Stalls
     * stretch doneSec but are NOT service work: checkpoints cover
     * computed progress only, so the restart math must never treat
     * glitch delay as checkpointable.
     */
    double glitchSec = 0.0;
    bool corrupted = false;  ///< in-flight results are garbage
    double corruptedAtSec = 0.0;
    double glitchAtCorruptSec = 0.0; ///< glitchSec when corrupted
    double permDerate = 1.0; ///< flux-trap service multiplier
    bool quarantined = false;
    double skewUntilSec = 0.0; ///< clock-skew window end
    double skewFactor = 1.0;   ///< service multiplier in the window

    int outstanding() const
    {
        int pipelined = 0;
        for (const PipeBatch &batch : pipeInFlight)
            pipelined += (int)batch.requests.size();
        return (int)queue.depth() + (int)inFlight.size() + pipelined;
    }
};

} // namespace

ServingSimulator::ServingSimulator(const BatchServiceModel &service,
                                   const ServingConfig &config)
    : _service(service), _cfg(config)
{
    _cfg.check();
}

ServingReport
ServingSimulator::run()
{
    perf::Scope perf_scope("serving.run");
    // The calendar's backing store is sized up front: steady state
    // carries roughly one pending completion/timeout pair per
    // dispatch target plus the arrival chain, and the whole fault
    // schedule lands on the calendar at seed time. Reserving once
    // keeps the heap from reallocating mid-run.
    std::vector<Event> calendar;
    calendar.reserve(_cfg.faults.events().size() +
                     (std::size_t)_cfg.chips * 4 +
                     (std::size_t)_cfg.arrival.clients + 64);
    std::priority_queue<Event, std::vector<Event>, EventAfter> events(
        EventAfter{}, std::move(calendar));
    std::uint64_t next_seq = 0;
    const auto schedule = [&](double time, EventKind kind, int chip) {
        events.push(Event{time, next_seq++, kind, chip});
        return next_seq - 1;
    };
    const auto schedule_tagged = [&](double time, EventKind kind,
                                     int chip, std::uint64_t tag) {
        events.push(Event{time, next_seq++, kind, chip, tag});
    };
    const auto schedule_retry = [&](double time,
                                    const Request &request) {
        events.push(
            Event{time, next_seq++, EventKind::Retry, -1, 0, request});
    };

    // Grouped placement: dispatch targets are G-chip groups — K-stage
    // pipelines or R-replica data-parallel sets (mutually exclusive,
    // so G = K·R is whichever exceeds 1) — not single dies. G == 1
    // keeps n_targets == chips and leaves every code path below
    // byte-identical to the pre-partition, pre-sharding loop.
    const int K = _cfg.pipelineStages;
    const int R = _cfg.dataParallelReplicas;
    const int G = K * R;
    const bool pipelined = K > 1;
    const bool replicated = R > 1;
    const int n_targets = _cfg.chips / G;
    std::unique_ptr<partition::PipelineServiceModel> pipe;
    if (pipelined) {
        pipe = std::make_unique<partition::PipelineServiceModel>(
            _service.estimate(), _service.network(), K, _cfg.link,
            _service.cache());
    }
    // Ring all-gather of a replica group's results, in seconds at
    // the design point's clock (zero when not replicated).
    const double freq_ghz = _service.estimate().frequencyGhz;
    const auto gather_sec = [&](int size) {
        if (!replicated)
            return 0.0;
        const std::uint64_t bytes = partition::activationBytes(
            _service.network().layers.back(), size);
        return (double)sharding::allGatherCost(_cfg.link, R, bytes,
                                               freq_ghz)
                   .cycles /
               (freq_ghz * 1e9);
    };

    ArrivalProcess arrivals(_cfg.arrival, _cfg.seed);
    Dispatcher dispatcher(_cfg.dispatch, n_targets);
    MetricsCollector metrics(_cfg.chips);
    const ResilienceConfig &res = _cfg.resilience;

    std::vector<Chip> chips(n_targets, Chip(_cfg.batching));
    std::uint64_t injected = 0;  ///< arrival events created
    std::uint64_t arrived = 0;   ///< requests that entered a queue
    std::uint64_t completed = 0;
    std::uint64_t events_processed = 0; ///< calendar pops
    double clock = 0.0;

    int quarantined_count = 0;
    std::uint64_t faults_seen = 0;
    std::uint64_t batches_killed = 0;
    std::uint64_t requests_killed = 0;
    std::uint64_t retries_total = 0;
    std::uint64_t retry_give_ups = 0;
    std::uint64_t restarts = 0;
    std::uint64_t redispatches = 0;
    std::uint64_t glitches_absorbed = 0;
    std::uint64_t failed_requests = 0;

    // Total queued (not-yet-launched) requests across every target,
    // maintained incrementally at each queue push and pop. The
    // metrics collector samples it on every calendar pop, which made
    // re-summing it there an O(targets) cost on the hottest line.
    std::size_t queued_depth = 0;

    // Steady state recycles batch buffers and pipeline-batch records
    // instead of allocating per launch: completed ones park here with
    // their capacity intact.
    std::vector<std::vector<Request>> spare_batches;
    std::vector<PipeBatch> spare_pipe;
    const auto take_batch_buffer = [&]() {
        if (spare_batches.empty())
            return std::vector<Request>();
        std::vector<Request> buffer = std::move(spare_batches.back());
        spare_batches.pop_back();
        return buffer;
    };
    const auto recycle_batch_buffer =
        [&](std::vector<Request> &&buffer) {
            buffer.clear();
            spare_batches.push_back(std::move(buffer));
        };

    // A request leaves the system: record it, count it, and let a
    // closed-loop client think and re-ask.
    const auto complete_request = [&](const Request &request,
                                      bool failed) {
        metrics.recordLatency(clock - request.arrivalSec);
        ++completed;
        if (failed)
            ++failed_requests;
        if (!arrivals.openLoop() && injected < _cfg.requests) {
            schedule(clock + arrivals.thinkGapSec(), EventKind::Arrival,
                     -1);
            ++injected;
        }
    };

    // A killed batch's requests back off and re-enter, or give up
    // past their retry/deadline budget. Shared by the single-chip
    // and pipelined Detect paths.
    const auto kill_requests = [&](std::vector<Request> &requests) {
        for (Request request : requests) {
            ++requests_killed;
            ++request.retries;
            const bool over_retries =
                request.retries > res.maxRetries;
            const bool over_deadline =
                res.retryDeadlineSec > 0 &&
                clock - request.arrivalSec >= res.retryDeadlineSec;
            if (over_retries || over_deadline) {
                ++retry_give_ups;
                complete_request(request, true);
                continue;
            }
            double backoff = res.backoffBaseSec;
            for (int i = 1; i < request.retries; ++i)
                backoff *= res.backoffMultiplier;
            ++retries_total;
            schedule_retry(clock + backoff, request);
        }
    };

    // Dispatch target for a new or re-enqueued request. Only when a
    // chip is actually quarantined does the health mask exist, so a
    // fault-free run drives the dispatcher exactly as before.
    const auto pick_target = [&]() {
        std::vector<int> outstanding(n_targets);
        for (int i = 0; i < n_targets; ++i)
            outstanding[i] = chips[i].outstanding();
        if (quarantined_count > 0) {
            // With no healthy chip left, Dispatcher::pick would fall
            // back to dispatching onto a quarantined chip and the
            // run would silently "serve" from known-bad hardware.
            if (quarantined_count >= n_targets) {
                fatal("all ", n_targets,
                      pipelined     ? " pipeline group(s)"
                      : replicated  ? " replica group(s)"
                                    : " chip(s)",
                      " quarantined: no "
                      "healthy dispatch target remains (permanent "
                      "faults exceeded the cluster's redundancy)");
            }
            std::vector<char> healthy((std::size_t)n_targets);
            for (int i = 0; i < n_targets; ++i)
                healthy[(std::size_t)i] =
                    chips[i].quarantined ? 0 : 1;
            return dispatcher.pick(outstanding, healthy);
        }
        return dispatcher.pick(outstanding);
    };

    // Put a batch in service. Fault-free, the service-time guards
    // never fire and this is the original launch path bit for bit.
    const auto launch_batch = [&](int index,
                                  std::vector<Request> batch) {
        Chip &chip = chips[index];
        if (pipelined) {
            // The batch streams through the group's K stages:
            // stage 0 frees one (derated) initiation interval after
            // launch, results emerge a full pipeline latency later,
            // and completions stay FIFO — a faster later batch
            // queues behind its predecessor's drain.
            const int size = (int)batch.size();
            const partition::PipelineServiceModel::Timing timing =
                pipe->timing(size);
            double scale = chip.permDerate;
            if (clock < chip.skewUntilSec)
                scale *= chip.skewFactor;
            PipeBatch pipe_batch;
            if (!spare_pipe.empty()) {
                pipe_batch = std::move(spare_pipe.back());
                spare_pipe.pop_back();
            }
            pipe_batch.corrupted = false;
            pipe_batch.requests = std::move(batch);
            pipe_batch.launchSec = clock;
            pipe_batch.doneSec =
                std::max(clock + timing.latencySec * scale,
                         chip.lastPipeDoneSec);
            pipe_batch.stageStartSec.resize((std::size_t)K);
            pipe_batch.stageBusySec.resize((std::size_t)K);
            for (int stage = 0; stage < K; ++stage) {
                pipe_batch.stageStartSec[(std::size_t)stage] =
                    timing.stageStartSec[(std::size_t)stage] * scale;
                pipe_batch.stageBusySec[(std::size_t)stage] =
                    timing.stageBusySec[(std::size_t)stage] * scale;
            }
            chip.lastPipeDoneSec = pipe_batch.doneSec;
            metrics.recordPipelinedBatch(index * G, size,
                                         pipe_batch.stageBusySec);
            pipe_batch.doneSeq =
                schedule(pipe_batch.doneSec, EventKind::Done, index);
            chip.busy = true;
            chip.freeSec = clock + timing.intervalSec * scale;
            chip.pendingFreeSeq =
                schedule(chip.freeSec, EventKind::StageFree, index);
            chip.pipeInFlight.push_back(std::move(pipe_batch));
            return;
        }
        chip.inFlight = std::move(batch);
        chip.busy = true;
        chip.corrupted = false;
        chip.glitchSec = 0.0;
        chip.glitchAtCorruptSec = 0.0;
        ++chip.launchGen;
        const int size = (int)chip.inFlight.size();
        double service;
        if (replicated) {
            // The batch splits into near-equal shares; the group is
            // busy for the widest share's service plus the ring
            // all-gather of the results. A derate on any replica
            // (the group state is shared) throttles the group.
            const int share = (size + R - 1) / R;
            service =
                _service.batchSeconds(share) + gather_sec(size);
        } else {
            service = _service.batchSeconds(size);
        }
        if (chip.permDerate != 1.0)
            service *= chip.permDerate;
        if (clock < chip.skewUntilSec)
            service *= chip.skewFactor;
        chip.launchSec = clock;
        chip.serviceSec = service;
        chip.doneSec = clock + service;
        if (replicated) {
            // The launch counts once; every replica chip is busy
            // until the gather completes.
            metrics.recordPipelinedBatch(
                index * G, size,
                std::vector<double>((std::size_t)R, service));
        } else {
            metrics.recordBatch(index, size, service);
        }
        chip.pendingDoneSeq =
            schedule(chip.doneSec, EventKind::Done, index);
    };

    // Launch a batch on an idle chip when its queue allows; otherwise
    // arm the queue's next timeout deadline.
    const auto try_launch = [&](int index) {
        Chip &chip = chips[index];
        if (chip.busy || !chip.queue.launchable(clock)) {
            const double deadline = chip.queue.nextDeadlineSec();
            if (!chip.busy && deadline > clock &&
                deadline < std::numeric_limits<double>::infinity()) {
                schedule(deadline, EventKind::Timeout, index);
            }
            return;
        }
        std::vector<Request> batch = take_batch_buffer();
        chip.queue.popInto(batch);
        queued_depth -= batch.size();
        launch_batch(index, std::move(batch));
    };

    // Seed the calendar: open-loop sources self-schedule; closed-loop
    // clients all fire their first request at t = 0.
    if (arrivals.openLoop()) {
        schedule(arrivals.nextGapSec(), EventKind::Arrival, -1);
        ++injected;
    } else {
        const std::uint64_t first = std::min<std::uint64_t>(
            (std::uint64_t)_cfg.arrival.clients, _cfg.requests);
        for (std::uint64_t i = 0; i < first; ++i)
            schedule(0.0, EventKind::Arrival, -1);
        injected = first;
    }

    // Materialized fault schedule onto the calendar. Empty schedule:
    // nothing pushed, sequence numbering untouched.
    for (std::size_t i = 0; i < _cfg.faults.events().size(); ++i) {
        const reliability::FaultEvent &fault = _cfg.faults.events()[i];
        schedule_tagged(fault.timeSec, EventKind::Fault, fault.chip,
                        (std::uint64_t)i);
    }

    while (completed < _cfg.requests) {
        if (events.empty()) {
            // Only reachable when the fixed-batch policy stranded
            // partial batches after the last injection: flush them.
            bool flushed = false;
            for (int i = 0; i < n_targets; ++i) {
                if (!chips[i].busy && !chips[i].queue.empty()) {
                    std::vector<Request> batch = take_batch_buffer();
                    chips[i].queue.popInto(batch);
                    queued_depth -= batch.size();
                    launch_batch(i, std::move(batch));
                    flushed = true;
                }
            }
            SUPERNPU_ASSERT(flushed,
                            "serving deadlock: no events, no work");
            continue;
        }

        const Event event = events.top();
        events.pop();
        ++events_processed;
        if (perf::enabled()) {
            static perf::Counter &perf_events =
                perf::counter("serving.events");
            perf_events.add(1);
        }
        metrics.advanceTo(event.timeSec, queued_depth);
        clock = event.timeSec;

        switch (event.kind) {
          case EventKind::Arrival: {
            const int target = pick_target();
            chips[target].queue.push(Request{arrived++, clock, clock});
            ++queued_depth;
            try_launch(target);
            if (arrivals.openLoop() && injected < _cfg.requests) {
                schedule(clock + arrivals.nextGapSec(),
                         EventKind::Arrival, -1);
                ++injected;
            }
            break;
          }
          case EventKind::Timeout:
            try_launch(event.chip);
            break;
          case EventKind::Done: {
            Chip &chip = chips[event.chip];
            if (pipelined) {
                const auto batch = std::find_if(
                    chip.pipeInFlight.begin(), chip.pipeInFlight.end(),
                    [&](const PipeBatch &candidate) {
                        return candidate.doneSeq == event.seq;
                    });
                if (batch == chip.pipeInFlight.end())
                    break; // stale: killed or glitch-stretched batch
                SUPERNPU_ASSERT(batch == chip.pipeInFlight.begin(),
                                "pipeline completed out of order");
                const bool pipe_failed = batch->corrupted;
                for (const Request &request : batch->requests)
                    complete_request(request, pipe_failed);
                recycle_batch_buffer(std::move(batch->requests));
                spare_pipe.push_back(std::move(*batch));
                chip.pipeInFlight.pop_front();
                try_launch(event.chip);
                break;
            }
            if (event.seq != chip.pendingDoneSeq)
                break; // stale: batch was killed or stretched
            SUPERNPU_ASSERT(chip.busy, "completion on an idle chip");
            // Corruption that outran its detection (or was never
            // detected under the no-recovery policy) ships garbage:
            // the requests complete, and count as failed.
            const bool failed = chip.corrupted;
            for (const Request &request : chip.inFlight)
                complete_request(request, failed);
            recycle_batch_buffer(std::move(chip.inFlight));
            chip.inFlight.clear();
            chip.busy = false;
            chip.corrupted = false;
            chip.pendingDoneSeq = kNoSeq;
            try_launch(event.chip);
            break;
          }
          case EventKind::Fault: {
            const reliability::FaultEvent &fault =
                _cfg.faults.events()[(std::size_t)event.tag];
            // Fault events strike physical chips; in grouped mode
            // a chip is one member of group event.chip / G, and a
            // fault on any stage or replica degrades the whole
            // group.
            const int target = event.chip / G;
            Chip &chip = chips[target];
            ++faults_seen;
            const bool detects =
                res.recovery != RecoveryPolicy::None;
            // In pipelined mode corruption hits every batch in
            // flight in the group — each is mid-stream through the
            // faulted stage's pipeline. Returns whether any batch
            // was *newly* corrupted (Detect is armed once per wave).
            const auto corrupt_pipeline = [&]() {
                bool newly = false;
                for (PipeBatch &pipe_batch : chip.pipeInFlight) {
                    if (!pipe_batch.corrupted) {
                        pipe_batch.corrupted = true;
                        newly = true;
                    }
                }
                return newly;
            };
            switch (fault.kind) {
              case reliability::FaultKind::PulseDrop:
                if (pipelined) {
                    if (corrupt_pipeline() && detects) {
                        schedule_tagged(clock + res.detectLatencySec,
                                        EventKind::Detect, target, 0);
                    }
                } else if (chip.busy && !chip.corrupted) {
                    chip.corrupted = true;
                    chip.corruptedAtSec = clock;
                    chip.glitchAtCorruptSec = chip.glitchSec;
                    if (detects) {
                        schedule_tagged(clock + res.detectLatencySec,
                                        EventKind::Detect, target,
                                        chip.launchGen);
                    }
                }
                break;
              case reliability::FaultKind::FluxTrap:
                // The trap corrupts in-flight work like a drop...
                if (pipelined) {
                    if (corrupt_pipeline() && detects) {
                        schedule_tagged(clock + res.detectLatencySec,
                                        EventKind::Detect, target, 0);
                    }
                } else if (chip.busy && !chip.corrupted) {
                    chip.corrupted = true;
                    chip.corruptedAtSec = clock;
                    chip.glitchAtCorruptSec = chip.glitchSec;
                    if (detects) {
                        schedule_tagged(clock + res.detectLatencySec,
                                        EventKind::Detect, target,
                                        chip.launchGen);
                    }
                }
                // ...and permanently derates the remapped array —
                // in pipelined mode the derated stage throttles the
                // whole group, so the loss covers all K chips.
                chip.permDerate *= fault.magnitude;
                if (!chip.quarantined) {
                    for (int c = target * G; c < (target + 1) * G;
                         ++c) {
                        metrics.setPermanentLoss(
                            c, clock, 1.0 - 1.0 / chip.permDerate);
                    }
                }
                if (res.recovery == RecoveryPolicy::DegradedDispatch &&
                    !chip.quarantined) {
                    schedule_tagged(clock + res.detectLatencySec,
                                    EventKind::Quarantine, target,
                                    0);
                }
                break;
              case reliability::FaultKind::ClockSkew:
                chip.skewUntilSec = clock + fault.durationSec;
                chip.skewFactor = fault.magnitude;
                // A skewed clock slows every launch of the group
                // for the window: all G chips lose capacity.
                for (int c = target * G; c < (target + 1) * G; ++c) {
                    metrics.addTransientLoss(
                        c, fault.durationSec *
                               (1.0 - 1.0 / fault.magnitude));
                }
                break;
              case reliability::FaultKind::LinkGlitch:
                if (pipelined) {
                    if (chip.pipeInFlight.empty())
                        break;
                    // The stalled link pauses the whole stream:
                    // every in-flight batch and the stage-0 free
                    // time slip by the stall. The struck physical
                    // chip is the one occupied by the stall.
                    for (PipeBatch &pipe_batch : chip.pipeInFlight) {
                        pipe_batch.doneSec += fault.magnitude;
                        pipe_batch.doneSeq =
                            schedule(pipe_batch.doneSec,
                                     EventKind::Done, target);
                    }
                    chip.lastPipeDoneSec += fault.magnitude;
                    if (chip.busy) {
                        chip.freeSec += fault.magnitude;
                        chip.pendingFreeSeq =
                            schedule(chip.freeSec,
                                     EventKind::StageFree, target);
                    }
                    metrics.extendBusy(event.chip, fault.magnitude);
                    metrics.addTransientLoss(event.chip,
                                             fault.magnitude);
                    // Stalls on the same lane serialize: a second
                    // glitch during a pending stall extends it.
                    if (chip.stallUntilSec.empty()) {
                        chip.stallUntilSec.assign((std::size_t)K,
                                                  0.0);
                    }
                    const std::size_t lane =
                        (std::size_t)(event.chip - target * K);
                    chip.stallUntilSec[lane] =
                        std::max(chip.stallUntilSec[lane], clock) +
                        fault.magnitude;
                    ++glitches_absorbed;
                } else if (chip.busy) {
                    // The stall delays completion and occupies the
                    // chip, but it is not computed work: serviceSec
                    // stays pure so checkpoint-restart math never
                    // counts glitch delay as checkpointable. In a
                    // replica group the gather blocks on the stalled
                    // link, so every replica rides the stall out;
                    // the transient capacity loss is the struck
                    // link's chip alone.
                    chip.doneSec += fault.magnitude;
                    chip.glitchSec += fault.magnitude;
                    chip.pendingDoneSeq = schedule(
                        chip.doneSec, EventKind::Done, target);
                    for (int c = target * G; c < (target + 1) * G;
                         ++c) {
                        metrics.extendBusy(c, fault.magnitude);
                    }
                    metrics.addTransientLoss(event.chip,
                                             fault.magnitude);
                    ++glitches_absorbed;
                }
                break;
            }
            break;
          }
          case EventKind::Detect: {
            Chip &chip = chips[event.chip];
            if (pipelined) {
                // Kill every corrupted batch still in flight in the
                // group; each one's requests retry or give up. A
                // wave that already drained leaves a stale no-op.
                const bool tail_live =
                    !chip.pipeInFlight.empty() &&
                    !chip.pipeInFlight.back().corrupted;
                bool killed_any = false;
                for (auto batch = chip.pipeInFlight.begin();
                     batch != chip.pipeInFlight.end();) {
                    if (!batch->corrupted) {
                        ++batch;
                        continue;
                    }
                    killed_any = true;
                    ++batches_killed;
                    // Give back each stage's unspent busy tail.
                    for (int stage = 0; stage < K; ++stage) {
                        const double start =
                            batch->launchSec +
                            batch->stageStartSec[(std::size_t)stage];
                        const double busy =
                            batch->stageBusySec[(std::size_t)stage];
                        const double unspent = std::min(
                            std::max(start + busy - clock, 0.0),
                            busy);
                        if (unspent > 0.0) {
                            metrics.extendBusy(
                                event.chip * K + stage, -unspent);
                        }
                    }
                    kill_requests(batch->requests);
                    recycle_batch_buffer(std::move(batch->requests));
                    spare_pipe.push_back(std::move(*batch));
                    batch = chip.pipeInFlight.erase(batch);
                }
                if (!killed_any)
                    break; // stale: completed meanwhile
                chip.lastPipeDoneSec =
                    chip.pipeInFlight.empty()
                        ? 0.0
                        : chip.pipeInFlight.back().doneSec;
                // With nothing left to ship, any unexpired glitch
                // stall no longer occupies its lane: give the busy
                // time back (a surviving batch, by contrast, rides
                // the stall out and keeps it charged). The transient
                // availability loss stays — the glitch did happen.
                if (chip.pipeInFlight.empty()) {
                    for (std::size_t lane = 0;
                         lane < chip.stallUntilSec.size(); ++lane) {
                        const double pending =
                            chip.stallUntilSec[lane] - clock;
                        if (pending > 0.0) {
                            metrics.extendBusy(
                                event.chip * K + (int)lane,
                                -pending);
                        }
                        chip.stallUntilSec[lane] = 0.0;
                    }
                }
                // If the newest launch died, stage 0 is free now —
                // its pending StageFree becomes stale.
                if (!tail_live && chip.busy) {
                    chip.busy = false;
                    chip.pendingFreeSeq = kNoSeq;
                }
                try_launch(event.chip);
                break;
            }
            if (!chip.busy || chip.launchGen != event.tag ||
                !chip.corrupted) {
                break; // stale: completed or restarted meanwhile
            }
            ++batches_killed;
            // The group stops now; give back every member's unspent
            // busy tail (one chip per target when G == 1).
            for (int c = event.chip * G; c < (event.chip + 1) * G;
                 ++c) {
                metrics.extendBusy(c, -(chip.doneSec - clock));
            }
            if (res.checkpointRestart) {
                // Resume from the last checkpoint before corruption,
                // on the same chip. Progress counts computed work
                // only: any glitch stall that elapsed before the
                // corruption stretched the wall clock without
                // producing checkpointable results.
                const double interval = res.checkpointIntervalSec;
                const double progress = std::max(
                    0.0, chip.corruptedAtSec - chip.launchSec -
                             chip.glitchAtCorruptSec);
                const double preserved =
                    std::floor(progress / interval) * interval;
                const double remaining = chip.serviceSec - preserved;
                chip.corrupted = false;
                chip.glitchSec = 0.0;
                chip.glitchAtCorruptSec = 0.0;
                ++chip.launchGen;
                ++restarts;
                chip.launchSec = clock - preserved;
                chip.doneSec = clock + remaining;
                metrics.extendBusy(event.chip, remaining);
                chip.pendingDoneSeq =
                    schedule(chip.doneSec, EventKind::Done, event.chip);
            } else {
                // Kill the batch; requests back off and re-enter,
                // or give up past their retry/deadline budget.
                kill_requests(chip.inFlight);
                recycle_batch_buffer(std::move(chip.inFlight));
                chip.inFlight.clear();
                chip.busy = false;
                chip.corrupted = false;
                chip.pendingDoneSeq = kNoSeq;
                try_launch(event.chip);
            }
            break;
          }
          case EventKind::Quarantine: {
            Chip &chip = chips[event.chip];
            if (chip.quarantined)
                break;
            chip.quarantined = true;
            ++quarantined_count;
            // A quarantined group takes all G of its chips out.
            for (int c = event.chip * G; c < (event.chip + 1) * G;
                 ++c) {
                metrics.setPermanentLoss(c, clock, 1.0);
            }
            // Its queued work moves to healthy chips.
            std::vector<Request> moved;
            while (!chip.queue.empty()) {
                std::vector<Request> chunk = chip.queue.flush();
                queued_depth -= chunk.size();
                moved.insert(moved.end(), chunk.begin(), chunk.end());
            }
            for (Request request : moved) {
                request.enqueueSec = clock;
                const int target = pick_target();
                chips[target].queue.push(request);
                ++queued_depth;
                ++redispatches;
                try_launch(target);
            }
            break;
          }
          case EventKind::Retry: {
            Request request = event.retryRequest;
            request.enqueueSec = clock;
            const int target = pick_target();
            chips[target].queue.push(request);
            ++queued_depth;
            try_launch(target);
            break;
          }
          case EventKind::StageFree: {
            Chip &chip = chips[event.chip];
            if (event.seq != chip.pendingFreeSeq)
                break; // stale: glitch-stretched or batch killed
            chip.pendingFreeSeq = kNoSeq;
            chip.busy = false;
            try_launch(event.chip);
            break;
          }
        }
    }

    SUPERNPU_ASSERT(arrived == _cfg.requests &&
                        completed == _cfg.requests,
                    "serving run lost requests");
    SUPERNPU_ASSERT(queued_depth == 0,
                    "serving run ended with queued requests");

    ServingReport report = metrics.finish(clock);
    report.network = _service.network().name;
    report.configName = _service.estimate().config.name;
    report.chips = _cfg.chips;
    report.arrival = arrivalKindName(_cfg.arrival.kind);
    report.policy = batchPolicyName(_cfg.batching.policy);
    report.dispatch = dispatchPolicyName(_cfg.dispatch);
    report.maxBatch = _cfg.batching.maxBatch;
    report.pipelineStages = K;
    report.pipelineGroups = n_targets;
    report.dataParallelReplicas = R;
    report.replicaGroups = n_targets;
    report.generated = arrived;
    report.eventsProcessed = events_processed;
    report.offeredRps = arrivals.openLoop()
                            ? _cfg.arrival.ratePerSec
                            : report.throughputRps;

    report.resilienceActive = !_cfg.faults.empty();
    report.recovery = recoveryPolicyName(res.recovery);
    report.faultsScheduled = (std::uint64_t)_cfg.faults.size();
    report.faultsInjected = faults_seen;
    report.batchesKilled = batches_killed;
    report.requestsKilled = requests_killed;
    report.retriesTotal = retries_total;
    report.retryGiveUps = retry_give_ups;
    report.restarts = restarts;
    report.redispatches = redispatches;
    report.glitchesAbsorbed = glitches_absorbed;
    report.failedRequests = failed_requests;
    if (report.makespanSec > 0.0) {
        report.goodputRps =
            (double)(completed - failed_requests) / report.makespanSec;
    }
    return report;
}

} // namespace serving
} // namespace supernpu
