/**
 * @file
 * Dynamic batching queue for the inference-serving simulator.
 *
 * The SFQ NPU amortizes its preparation cycles over the batch
 * (Table II), so a serving front end wants batches as large as the
 * on-chip buffers allow — but waiting for a full batch inflates
 * latency at low load. Two policies capture that trade:
 *
 *  - batch-up-to-max-with-timeout: launch as soon as `maxBatch`
 *    requests are queued, or when the oldest queued request has
 *    waited `timeoutSec`, whichever comes first (partial batches
 *    flush on timeout);
 *  - fixed-batch: launch only exact `maxBatch`-sized batches (the
 *    paper's evaluation discipline); leftovers launch only at drain.
 *
 * `maxBatch` is normally the Table II solver result for the served
 * network (npusim::maxBatch), so no launched batch ever spills the
 * on-chip working set.
 */

#ifndef SUPERNPU_SERVING_BATCHER_HH
#define SUPERNPU_SERVING_BATCHER_HH

#include <cstdint>
#include <deque>
#include <vector>

namespace supernpu {
namespace serving {

/** One inference request in flight through the serving system. */
struct Request
{
    std::uint64_t id = 0;
    double arrivalSec = 0.0; ///< when it entered the system
    /**
     * When it entered its current batch queue. Fresh arrivals have
     * enqueueSec == arrivalSec; a retry or a quarantine redispatch
     * re-enqueues later. Queue ordering and the batching timeout run
     * on enqueueSec; latency is always measured from arrivalSec.
     */
    double enqueueSec = 0.0;
    /**
     * Times this request has been re-enqueued after a fault killed
     * its batch (resilience.hh); latency is always measured from the
     * original arrivalSec, so retries lengthen the recorded tail.
     */
    int retries = 0;
};

/** Batch-formation discipline. */
enum class BatchPolicy
{
    DynamicTimeout, ///< up-to-max, partial batches flush on timeout
    FixedBatch,     ///< exact max-sized batches only
};

/** Stable lowercase name of a batching policy. */
const char *batchPolicyName(BatchPolicy policy);

/** Parameters of the batch former. */
struct BatchingConfig
{
    BatchPolicy policy = BatchPolicy::DynamicTimeout;
    int maxBatch = 1;         ///< ceiling on any launched batch
    double timeoutSec = 2e-4; ///< oldest-request wait bound (dynamic)

    /** Panics when malformed. */
    void check() const;
};

/** FIFO of pending requests with batch-launch decisions. */
class BatchQueue
{
  public:
    explicit BatchQueue(const BatchingConfig &config);

    /** Enqueue one request (its arrivalSec is its enqueue time). */
    void push(const Request &request);

    bool empty() const { return _queue.empty(); }
    std::size_t depth() const { return _queue.size(); }

    /** A batch may launch now under the configured policy. */
    bool launchable(double now_sec) const;

    /**
     * Absolute time the policy will next force a launch with the
     * queue as it stands (the oldest request's timeout expiry);
     * +infinity when empty or under the fixed policy.
     */
    double nextDeadlineSec() const;

    /** Dequeue the next batch: the oldest min(depth, maxBatch). */
    std::vector<Request> pop();

    /**
     * pop() into a caller-recycled buffer: `out` is cleared (keeping
     * its capacity) and filled with the same batch pop() would
     * return. The simulator's launch path recycles batch buffers
     * through this so steady state stops allocating per batch.
     */
    void popInto(std::vector<Request> &out);

    /**
     * Dequeue everything, still in maxBatch-sized chunks' worth of
     * one call — used by the simulator's drain phase to flush
     * requests the fixed policy would otherwise strand. Never
     * returns more than maxBatch; call until empty.
     */
    std::vector<Request> flush() { return pop(); }

    const BatchingConfig &config() const { return _cfg; }

  private:
    BatchingConfig _cfg;
    std::deque<Request> _queue;
};

} // namespace serving
} // namespace supernpu

#endif // SUPERNPU_SERVING_BATCHER_HH
