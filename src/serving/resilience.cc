/**
 * @file
 * Resilience-policy configuration checks.
 */

#include "resilience.hh"

#include "common/logging.hh"

namespace supernpu {
namespace serving {

const char *
recoveryPolicyName(RecoveryPolicy policy)
{
    switch (policy) {
      case RecoveryPolicy::None:
        return "none";
      case RecoveryPolicy::RetryBackoff:
        return "retry-backoff";
      case RecoveryPolicy::DegradedDispatch:
        return "degraded-dispatch";
    }
    panic("bad recovery policy");
}

void
ResilienceConfig::check() const
{
    if (detectLatencySec < 0)
        fatal("fault detection latency must be non-negative");
    if (maxRetries < 0)
        fatal("max retries must be non-negative");
    if (backoffBaseSec < 0)
        fatal("retry backoff base must be non-negative");
    if (backoffMultiplier < 1.0)
        fatal("retry backoff multiplier must be >= 1");
    if (retryDeadlineSec < 0)
        fatal("retry deadline must be non-negative (0 disables)");
    if (checkpointRestart && checkpointIntervalSec <= 0)
        fatal("checkpoint restart needs a positive interval");
}

} // namespace serving
} // namespace supernpu
