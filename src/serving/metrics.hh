/**
 * @file
 * Serving metrics: what a load-test harness would report about an
 * inference service — throughput, chip utilization, queue depth, and
 * the latency tail (p50/p95/p99/p99.9) — collected streamingly so
 * million-request runs stay O(1) in memory.
 *
 * Latency percentiles ride the log-binned common/stats Histogram;
 * queue depth is a time-weighted average (integrated between events,
 * not sampled at them, so long quiet gaps weigh correctly).
 */

#ifndef SUPERNPU_SERVING_METRICS_HH
#define SUPERNPU_SERVING_METRICS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"

namespace supernpu {
namespace serving {

/** Everything a serving run reports. */
struct ServingReport
{
    // --- run identity -----------------------------------------------
    std::string network;
    std::string configName;
    int chips = 1;
    std::string arrival;  ///< arrival kind name
    std::string policy;   ///< batching policy name
    std::string dispatch; ///< dispatch policy name
    int maxBatch = 1;
    /** Stages per pipeline group; 1 = whole-request placement. */
    int pipelineStages = 1;
    /** Pipeline groups (chips / pipelineStages). */
    int pipelineGroups = 0;
    /** Replicas per data-parallel group; 1 = unreplicated. */
    int dataParallelReplicas = 1;
    /** Replica groups (chips / dataParallelReplicas). */
    int replicaGroups = 0;

    // --- volume -----------------------------------------------------
    std::uint64_t generated = 0; ///< requests injected
    std::uint64_t completed = 0; ///< requests answered
    /** Calendar events the run() loop popped (harness work metric). */
    std::uint64_t eventsProcessed = 0;
    double makespanSec = 0.0;    ///< first arrival to last completion

    // --- rates ------------------------------------------------------
    double offeredRps = 0.0;    ///< configured (open) / achieved (closed)
    double throughputRps = 0.0; ///< completed / makespan
    double utilization = 0.0;   ///< mean busy fraction across chips
    double meanQueueDepth = 0.0;

    // --- batching ---------------------------------------------------
    std::uint64_t batchesLaunched = 0;
    double meanBatch = 0.0;
    int maxBatchLaunched = 0;

    // --- latency (seconds) ------------------------------------------
    double latencyMean = 0.0;
    double latencyP50 = 0.0;
    double latencyP95 = 0.0;
    double latencyP99 = 0.0;
    double latencyP999 = 0.0;
    double latencyMax = 0.0;

    // --- resilience (src/serving/resilience.hh) ---------------------
    // Filled, and printed, only when the run carried a fault
    // schedule; a clean run's report and output are unchanged.
    bool resilienceActive = false;
    std::string recovery;  ///< recovery policy name
    std::uint64_t faultsScheduled = 0; ///< events in the schedule
    std::uint64_t faultsInjected = 0; ///< fault events within the run
    std::uint64_t batchesKilled = 0;  ///< corrupted batches aborted
    /** Requests riding killed batches (== retries + give-ups). */
    std::uint64_t requestsKilled = 0;
    std::uint64_t retriesTotal = 0;   ///< re-enqueues after kills
    std::uint64_t retryGiveUps = 0;   ///< killed past the retry budget
    std::uint64_t restarts = 0;       ///< checkpoint restarts
    std::uint64_t redispatches = 0;   ///< requests moved off quarantine
    std::uint64_t glitchesAbsorbed = 0; ///< link stalls ridden out
    std::uint64_t failedRequests = 0; ///< corrupted or given up
    /** Fraction of chip-seconds not lost to faults. */
    double availability = 1.0;
    /** Successfully-answered (non-failed) requests per second. */
    double goodputRps = 0.0;
    /** Batches launched per chip (quarantine verification). */
    std::vector<std::uint64_t> perChipBatches;
    /** Busy seconds per chip; the sum is bounded by chips x makespan. */
    std::vector<double> perChipBusySec;

    /** Render as a two-column table on stdout. */
    void print() const;
};

/** Streaming accumulator the event loop feeds. */
class MetricsCollector
{
  public:
    explicit MetricsCollector(int chips);

    /**
     * Advance the simulation clock to `now`, integrating the current
     * total queue depth over the elapsed interval. Call before
     * mutating any queue at an event.
     */
    void advanceTo(double now_sec, std::size_t total_queue_depth);

    /** One request completed with the given sojourn time. */
    void recordLatency(double seconds);

    /** One batch launched on `chip`, busying it for `service` s. */
    void recordBatch(int chip, int size, double service_sec);

    /**
     * One batch launched on a pipeline group whose stage-0 chip is
     * `first_chip`: the launch counts once (attributed to the
     * stage-0 chip, keeping Σ perChipBatches == batchesLaunched)
     * while stage i's busy time lands on chip first_chip + i.
     */
    void recordPipelinedBatch(int first_chip, int size,
                              const std::vector<double> &stage_busy);

    /**
     * Adjust a chip's recorded busy time after the fact: positive
     * when a link glitch stretches an in-flight batch, negative when
     * a detected fault kills one before its scheduled completion.
     */
    void extendBusy(int chip, double delta_sec);

    /**
     * Charge `seconds` of one chip's capacity to a transient fault
     * (a clock-skew derate window or an absorbed link stall).
     */
    void addTransientLoss(int chip, double seconds);

    /**
     * From `since_sec` on, `fraction` of the chip's capacity is
     * permanently lost (flux-trap derate, or 1.0 on quarantine).
     * Later calls supersede: the old fraction accrues up to the new
     * call's time first, so a worsening chip integrates correctly.
     */
    void setPermanentLoss(int chip, double since_sec, double fraction);

    /** Snapshot the report (volume fields are filled by the caller). */
    ServingReport finish(double makespan_sec) const;

  private:
    Histogram _latency{1e-8, 1e3, 53};
    RunningStats _batchSizes;
    std::vector<double> _busySec; ///< per-chip busy time
    std::vector<std::uint64_t> _chipBatches; ///< per-chip launches
    double _depthIntegral = 0.0;  ///< ∫ depth dt
    double _clockSec = 0.0;       ///< last advanceTo time

    // --- fault-capacity accounting ----------------------------------
    std::vector<double> _transientLossSec;
    std::vector<double> _permFraction;  ///< current permanent loss
    std::vector<double> _permSinceSec;  ///< when it took effect
    std::vector<double> _permAccruedSec;///< loss under superseded rates
};

} // namespace serving
} // namespace supernpu

#endif // SUPERNPU_SERVING_METRICS_HH
