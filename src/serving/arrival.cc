/**
 * @file
 * Arrival model implementations.
 */

#include "arrival.hh"

#include <cmath>

#include "common/logging.hh"

namespace supernpu {
namespace serving {

const char *
arrivalKindName(ArrivalKind kind)
{
    switch (kind) {
      case ArrivalKind::OpenPoisson:
        return "poisson";
      case ArrivalKind::Bursty:
        return "bursty";
      case ArrivalKind::ClosedLoop:
        return "closed";
    }
    panic("bad arrival kind");
}

void
ArrivalConfig::check() const
{
    if (kind != ArrivalKind::ClosedLoop && ratePerSec <= 0.0)
        fatal("arrival rate must be positive");
    if (kind == ArrivalKind::Bursty &&
        (meanOnSec <= 0.0 || meanOffSec < 0.0)) {
        fatal("bursty phases need meanOnSec > 0 and meanOffSec >= 0");
    }
    if (kind == ArrivalKind::ClosedLoop && clients < 1)
        fatal("closed loop needs at least one client");
    if (thinkSec < 0.0)
        fatal("think time cannot be negative");
}

ArrivalProcess::ArrivalProcess(const ArrivalConfig &config,
                               std::uint64_t seed)
    : _cfg(config), _rng(seed)
{
    _cfg.check();
    if (_cfg.kind == ArrivalKind::Bursty)
        _phaseRemainingSec = expGap(1.0 / _cfg.meanOnSec);
}

double
ArrivalProcess::expGap(double rate_per_sec)
{
    SUPERNPU_ASSERT(rate_per_sec > 0.0, "bad exponential rate");
    // -log(1-u) with u in [0,1) avoids log(0).
    return -std::log(1.0 - _rng.uniform()) / rate_per_sec;
}

double
ArrivalProcess::nextGapSec()
{
    SUPERNPU_ASSERT(openLoop(), "closed-loop sources have no gaps");
    if (_cfg.kind == ArrivalKind::OpenPoisson)
        return expGap(_cfg.ratePerSec);

    // Bursty: Poisson at the boosted on-rate, silent while off. The
    // boost keeps the long-run average at ratePerSec.
    const double on_rate = _cfg.ratePerSec / _cfg.dutyCycle();
    double gap = 0.0;
    for (;;) {
        if (_onPhase) {
            const double next = expGap(on_rate);
            if (next <= _phaseRemainingSec) {
                _phaseRemainingSec -= next;
                return gap + next;
            }
            gap += _phaseRemainingSec;
            _phaseRemainingSec = expGap(1.0 / _cfg.meanOffSec);
            _onPhase = false;
        } else {
            gap += _phaseRemainingSec;
            _phaseRemainingSec = expGap(1.0 / _cfg.meanOnSec);
            _onPhase = true;
        }
    }
}

double
ArrivalProcess::thinkGapSec()
{
    if (_cfg.thinkSec <= 0.0)
        return 0.0;
    return expGap(1.0 / _cfg.thinkSec);
}

} // namespace serving
} // namespace supernpu
