/**
 * @file
 * Resilience policies for fault-injected serving runs.
 *
 * When a reliability::FaultSchedule is attached to a ServingConfig,
 * the serving simulator needs a policy for what happens after a
 * fault corrupts or degrades a chip. Three recovery policies are
 * modeled, chosen to bracket the design space:
 *
 *  - None: faults corrupt in-flight batches and nobody notices;
 *    corrupted requests complete and count as failed. The goodput
 *    floor every real policy must beat.
 *  - RetryBackoff: corruption is detected detectLatencySec after
 *    the fault (an SFQ checksum / voting detector), the batch is
 *    killed, and its requests are re-enqueued with exponential
 *    backoff. Optionally checkpointed so a restart resumes from the
 *    last checkpoint instead of from scratch.
 *  - DegradedDispatch: detection additionally quarantines
 *    permanently-faulted chips; the dispatcher (JSQ or RR) skips
 *    them and in-queue work is re-dispatched to healthy chips.
 *
 * All policies share the detection model; they differ in what they
 * do after detection. With no fault schedule attached, resilience is
 * inert and the serving simulator's behavior — every event, every
 * metric — is byte-identical to a build without it.
 */

#ifndef SUPERNPU_SERVING_RESILIENCE_HH
#define SUPERNPU_SERVING_RESILIENCE_HH

namespace supernpu {
namespace serving {

/** What the serving layer does after a detected fault. */
enum class RecoveryPolicy
{
    None,            ///< corrupted work completes, counted failed
    RetryBackoff,    ///< kill + re-enqueue with exponential backoff
    DegradedDispatch,///< RetryBackoff + quarantine of faulted chips
};

/** Stable lowercase name of a recovery policy. */
const char *recoveryPolicyName(RecoveryPolicy policy);

/** Resilience-policy parameters of a serving run. */
struct ResilienceConfig
{
    RecoveryPolicy recovery = RecoveryPolicy::None;

    /**
     * Seconds from a transient fault corrupting a batch to the
     * serving layer noticing (checksum latency). Detection exists
     * under every policy except None.
     */
    double detectLatencySec = 2e-5;

    // --- retry shaping (RetryBackoff and DegradedDispatch) ----------
    /** Attempts per request before it is given up as failed. */
    int maxRetries = 3;
    /** First retry delay; grows by backoffMultiplier per retry. */
    double backoffBaseSec = 1e-4;
    double backoffMultiplier = 2.0;
    /**
     * Give up on a request once the clock passes arrival + this
     * deadline; 0 disables the deadline.
     */
    double retryDeadlineSec = 0.0;

    // --- checkpoint / restart ---------------------------------------
    /**
     * When true, in-flight batches checkpoint their progress every
     * checkpointIntervalSec of service time; a killed batch restarts
     * from its last checkpoint on the same chip instead of being
     * re-enqueued from scratch.
     */
    bool checkpointRestart = false;
    double checkpointIntervalSec = 1e-4;

    /** Panics when malformed. */
    void check() const;
};

} // namespace serving
} // namespace supernpu

#endif // SUPERNPU_SERVING_RESILIENCE_HH
