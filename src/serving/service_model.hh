/**
 * @file
 * Batch service-time model: the bridge from the cycle-level NPU
 * simulator to the discrete-event serving simulator.
 *
 * Serving a batch of b requests means running the whole network once
 * at batch b, so the service time of a batch is exactly
 * NpuSimulator::run(network, b).seconds(). The cycle simulation is
 * deterministic per (network, config, batch), so results are
 * memoized in a shared npusim::SimCache: a million-request serving
 * run performs at most `maxBatch` cycle simulations, every repeated
 * batch size is an O(1) lookup, and a design-space sweep that
 * already simulated this (network, config) point warms the serving
 * model for free.
 *
 * The model is safe to query from several threads at once (the
 * cache is internally locked), and concurrent queries with the same
 * key return the same deterministic value — so a parallel warm-up
 * changes nothing about a subsequent serving run.
 */

#ifndef SUPERNPU_SERVING_SERVICE_MODEL_HH
#define SUPERNPU_SERVING_SERVICE_MODEL_HH

#include <mutex>
#include <set>

#include "dnn/layer.hh"
#include "npusim/sim.hh"
#include "npusim/sim_cache.hh"

namespace supernpu {
namespace serving {

/** Memoized per-batch service times of one network on one NPU. */
class BatchServiceModel
{
  public:
    /**
     * @param cache Simulation memo store; defaults to the process-
     *        wide npusim::SimCache::global().
     */
    BatchServiceModel(const estimator::NpuEstimate &estimate,
                      dnn::Network network,
                      npusim::SimCache *cache = nullptr);

    /** Wall-clock seconds to serve one batch of the given size. */
    double batchSeconds(int batch) const;

    /**
     * Steady-state ceiling on request throughput at the given batch
     * size, requests/s — what a chip sustains launching back-to-back
     * full batches. The serving simulator's saturation point.
     */
    double peakRps(int batch) const
    {
        return (double)batch / batchSeconds(batch);
    }

    const dnn::Network &network() const { return _net; }
    const estimator::NpuEstimate &estimate() const
    {
        return _sim.estimate();
    }

    /** Distinct batch sizes this model has resolved so far. */
    std::size_t cachedBatches() const;

    /** The simulation memo store this model resolves through. */
    npusim::SimCache *cache() const { return _cache; }

  private:
    npusim::NpuSimulator _sim;
    dnn::Network _net;
    npusim::SimCache *_cache;
    std::uint64_t _netHash = 0;    ///< hashed once at construction
    std::uint64_t _configHash = 0;

    mutable std::mutex _mutex;
    mutable std::set<int> _batches; ///< distinct sizes resolved
};

} // namespace serving
} // namespace supernpu

#endif // SUPERNPU_SERVING_SERVICE_MODEL_HH
