/**
 * @file
 * Batch service-time model: the bridge from the cycle-level NPU
 * simulator to the discrete-event serving simulator.
 *
 * Serving a batch of b requests means running the whole network once
 * at batch b, so the service time of a batch is exactly
 * NpuSimulator::run(network, b).seconds(). The cycle simulation is
 * deterministic per (network, batch), so results are memoized: a
 * million-request serving run performs at most `maxBatch` cycle
 * simulations, and every repeated batch size is an O(1) lookup.
 */

#ifndef SUPERNPU_SERVING_SERVICE_MODEL_HH
#define SUPERNPU_SERVING_SERVICE_MODEL_HH

#include <unordered_map>

#include "dnn/layer.hh"
#include "npusim/sim.hh"

namespace supernpu {
namespace serving {

/** Memoized per-batch service times of one network on one NPU. */
class BatchServiceModel
{
  public:
    BatchServiceModel(const estimator::NpuEstimate &estimate,
                      dnn::Network network);

    /** Wall-clock seconds to serve one batch of the given size. */
    double batchSeconds(int batch) const;

    /**
     * Steady-state ceiling on request throughput at the given batch
     * size, requests/s — what a chip sustains launching back-to-back
     * full batches. The serving simulator's saturation point.
     */
    double peakRps(int batch) const
    {
        return (double)batch / batchSeconds(batch);
    }

    const dnn::Network &network() const { return _net; }
    const estimator::NpuEstimate &estimate() const
    {
        return _sim.estimate();
    }

    /** Distinct batch sizes simulated so far. */
    std::size_t cachedBatches() const { return _cache.size(); }

  private:
    npusim::NpuSimulator _sim;
    dnn::Network _net;
    mutable std::unordered_map<int, double> _cache;
};

} // namespace serving
} // namespace supernpu

#endif // SUPERNPU_SERVING_SERVICE_MODEL_HH
