/**
 * @file
 * Tensor-parallel shard construction and timing.
 */

#include "tensor_shard.hh"

#include <limits>

#include "common/logging.hh"

namespace supernpu {
namespace sharding {

std::uint64_t
saturatingAdd(std::uint64_t a, std::uint64_t b)
{
    constexpr std::uint64_t kMax =
        std::numeric_limits<std::uint64_t>::max();
    return a > kMax - b ? kMax : a + b;
}

double
TensorShardResult::seconds() const
{
    return (double)totalCycles / (frequencyGhz * 1e9);
}

double
TensorShardResult::speedup() const
{
    SUPERNPU_ASSERT(totalCycles > 0, "result not built");
    return (double)soloCycles / (double)totalCycles;
}

double
TensorShardResult::effectiveMacPerSec() const
{
    return (double)macOpsPerBatch / seconds();
}

dnn::Network
shardNetwork(const dnn::Network &network, int shards)
{
    SUPERNPU_ASSERT(shards >= 1, "shard count must be positive");
    if (shards == 1) {
        // Degree 1: the original object, so the simulation below
        // hits (or seeds) the exact cache entry the single-chip
        // path uses — the byte-identity guarantee.
        return network;
    }
    dnn::Network shard;
    shard.name =
        network.name + "/tp" + std::to_string(shards);
    shard.layers.reserve(network.layers.size());
    const int t = shards;
    for (const dnn::Layer &layer : network.layers) {
        dnn::Layer s = layer;
        // Widest ceil share of the filters; at least one filter per
        // chip even when T exceeds the layer's channel count (the
        // surplus chips idle on that layer).
        s.outChannels = (layer.outChannels + t - 1) / t;
        if (layer.kind == dnn::LayerKind::DepthwiseConv) {
            // Depthwise filters are per-channel: splitting the
            // filters splits the input channels with them, and the
            // mapper requires in == out.
            s.inChannels = s.outChannels;
        }
        shard.layers.push_back(std::move(s));
    }
    shard.check();
    return shard;
}

TensorSharder::TensorSharder(const estimator::NpuEstimate &estimate,
                             partition::LinkConfig link,
                             npusim::SimCache *cache)
    : _sim(estimate), _link(link),
      _cache(cache ? cache : &npusim::SimCache::global()),
      _configHash(npusim::hashEstimate(estimate))
{
    _link.check();
}

std::shared_ptr<const npusim::SimResult>
TensorSharder::simulate(const dnn::Network &network, int batch) const
{
    npusim::SimKey key;
    key.networkHash = npusim::hashNetwork(network);
    key.configHash = _configHash;
    key.batch = batch;
    return _cache->getOrRun(key, _sim, network);
}

TensorShardResult
TensorSharder::shard(const dnn::Network &network, int shards,
                     int batch) const
{
    network.check();
    if (shards < 1)
        fatal("tensor parallelism needs at least 1 shard, got ",
              shards);
    if (batch < 1)
        fatal("batch must be at least 1, got ", batch);

    const dnn::Network shard_net = shardNetwork(network, shards);
    auto wide = simulate(shard_net, batch);
    auto solo = shards == 1 ? wide : simulate(network, batch);

    TensorShardResult result;
    result.networkName = network.name;
    result.configName = wide->configName;
    result.shards = shards;
    result.batch = batch;
    result.frequencyGhz = wide->frequencyGhz;
    result.link = _link;
    result.wideSim = wide;
    result.soloCycles = solo->totalCycles;
    result.macOpsPerBatch = solo->macOps;
    result.peakMacPerSec = _sim.estimate().peakMacPerSec;

    const int n = (int)network.layers.size();
    result.layers.reserve(n);
    for (int l = 0; l < n; ++l) {
        ShardLayerTiming timing;
        timing.layerName = network.layers[l].name;
        timing.shardCycles = wide->layers[l].totalCycles();
        if (shards > 1) {
            timing.reduceBytes = partition::activationBytes(
                network.layers[l], batch);
            timing.reduceCycles =
                allReduceCost(_link, shards, timing.reduceBytes,
                              result.frequencyGhz)
                    .cycles;
        }
        result.shardCycles += timing.shardCycles;
        result.collectiveBytes =
            saturatingAdd(result.collectiveBytes, timing.reduceBytes);
        result.collectiveCycles = saturatingAdd(
            result.collectiveCycles, timing.reduceCycles);
        result.layers.push_back(std::move(timing));
    }
    result.totalCycles =
        saturatingAdd(result.shardCycles, result.collectiveCycles);
    SUPERNPU_ASSERT(result.shardCycles == wide->totalCycles,
                    "per-layer shard cycles must roll up to the "
                    "wide shard's total");
    return result;
}

} // namespace sharding
} // namespace supernpu
