/**
 * @file
 * Tensor parallelism: one layer's filters split across T chips.
 *
 * Each of T chips holds outChannels/T of every layer's filters and
 * computes the corresponding ofmap channel slice over the full
 * ifmap; after each layer the slices are ring all-reduced so every
 * chip again holds the full activation tensor for the next layer.
 * (A single full-ofmap all-reduce per layer conservatively covers
 * both the row-parallel partial-sum combine and the column-parallel
 * slice exchange of the usual Megatron-style split — the model does
 * not track which of the two a layer would use.)
 *
 * Shard geometry is *re-simulated*, not scaled: shardNetwork()
 * shrinks every layer's outChannels to the widest ceil(K/T) share
 * (depthwise layers shrink both channel dims — the mapper requires
 * in == out) and the shrunk network runs through NpuSimulator via
 * the shared SimCache. The widest shard is the slowest by
 * construction, so per layer the time is
 *
 *   shardCycles(widest shard) + allReduce(full ofmap, T chips).
 *
 * T=1 keeps the original network object: same hash, same cache
 * entry, zero collective — byte-identical to the single-chip path.
 */

#ifndef SUPERNPU_SHARDING_TENSOR_SHARD_HH
#define SUPERNPU_SHARDING_TENSOR_SHARD_HH

#include <memory>
#include <string>
#include <vector>

#include "collective.hh"
#include "dnn/layer.hh"
#include "estimator/npu_estimator.hh"
#include "npusim/sim.hh"
#include "npusim/sim_cache.hh"
#include "partition/link_model.hh"

namespace supernpu {
namespace sharding {

/** a + b clamped to UINT64_MAX — cycle/byte totals never wrap. */
std::uint64_t saturatingAdd(std::uint64_t a, std::uint64_t b);

/** Timing of one layer of a T-way sharded network. */
struct ShardLayerTiming
{
    std::string layerName;
    /** Widest shard's compute+prep+stall cycles for this layer. */
    std::uint64_t shardCycles = 0;
    /** Full ofmap bytes all-reduced after the layer (batch incl.). */
    std::uint64_t reduceBytes = 0;
    /** Ring all-reduce cycles across the T shards. */
    std::uint64_t reduceCycles = 0;

    std::uint64_t totalCycles() const
    {
        return saturatingAdd(shardCycles, reduceCycles);
    }
};

/** Whole-network timing of a T-way tensor-sharded run. */
struct TensorShardResult
{
    std::string networkName;
    std::string configName;
    int shards = 1; ///< T
    int batch = 1;
    double frequencyGhz = 0.0;
    partition::LinkConfig link;

    /** Standalone simulation of the widest shard's network. */
    std::shared_ptr<const npusim::SimResult> wideSim;
    std::vector<ShardLayerTiming> layers;

    /** Σ layer shardCycles == wideSim->totalCycles. */
    std::uint64_t shardCycles = 0;
    /** Σ layer reduceCycles. */
    std::uint64_t collectiveCycles = 0;
    /** Σ layer reduceBytes. */
    std::uint64_t collectiveBytes = 0;
    /** shardCycles + collectiveCycles: one batch end to end. */
    std::uint64_t totalCycles = 0;
    /** Unsharded single-chip cycles at the same batch (baseline). */
    std::uint64_t soloCycles = 0;
    /** Full-network MACs of one batch (not the shard's share). */
    std::uint64_t macOpsPerBatch = 0;
    /** Per-chip peak MAC/s of the design point (audit ceiling). */
    double peakMacPerSec = 0.0;

    double seconds() const;
    /**
     * soloCycles / totalCycles. Can exceed T: narrowing a layer
     * below the PE-array width drops whole weight mappings, so each
     * shard streams the ifmap fewer times than the solo run did.
     * The audited ceiling is MAC throughput, not the speedup.
     */
    double speedup() const;
    /** Whole-group effective MAC/s on the full batch. */
    double effectiveMacPerSec() const;
};

/**
 * The T-way shard of `network`: every layer's outChannels shrunk to
 * the widest ceil share (depthwise: both channel dims). T=1 returns
 * the original object so the cache key — and therefore the ledger —
 * is identical to the unsharded path. T larger than the narrowest
 * layer's channel count leaves idle chips on that layer; the widest
 * share is still what the returned network models.
 */
dnn::Network shardNetwork(const dnn::Network &network, int shards);

/** Re-simulating tensor-parallel cost model for one design point. */
class TensorSharder
{
  public:
    /** @param cache Defaults to npusim::SimCache::global(). */
    explicit TensorSharder(const estimator::NpuEstimate &estimate,
                           partition::LinkConfig link = {},
                           npusim::SimCache *cache = nullptr);

    /** Time one batch on `shards` cooperating chips. */
    TensorShardResult shard(const dnn::Network &network, int shards,
                            int batch) const;

    const estimator::NpuEstimate &estimate() const
    {
        return _sim.estimate();
    }
    const partition::LinkConfig &link() const { return _link; }

  private:
    std::shared_ptr<const npusim::SimResult>
    simulate(const dnn::Network &network, int batch) const;

    npusim::NpuSimulator _sim;
    partition::LinkConfig _link;
    npusim::SimCache *_cache;
    std::uint64_t _configHash = 0;

    friend class HybridPlanner;
};

} // namespace sharding
} // namespace supernpu

#endif // SUPERNPU_SHARDING_TENSOR_SHARD_HH
