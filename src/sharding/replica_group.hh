/**
 * @file
 * Data parallelism: R replica chips split one batch.
 *
 * Every replica holds the full network; a batch of B inferences is
 * split into R near-equal shares (differing by at most one image)
 * and each replica runs its share independently. The group is done
 * when the *widest* share — ceil(B/R) images, the slowest replica —
 * finishes and the per-replica output shards are ring all-gathered
 * so any chip can serve the whole batch's results.
 *
 * The widest share is re-simulated through NpuSimulator via the
 * shared SimCache (partial batches change the weight-reuse
 * amortization, so scaling the full-batch result would be wrong);
 * the gather is priced by the collective model on the final layer's
 * full-batch ofmap. R=1 degenerates to the exact single-chip cache
 * entry with a zero-cost gather — byte-identical ledgers.
 */

#ifndef SUPERNPU_SHARDING_REPLICA_GROUP_HH
#define SUPERNPU_SHARDING_REPLICA_GROUP_HH

#include <memory>
#include <string>

#include "collective.hh"
#include "dnn/layer.hh"
#include "estimator/npu_estimator.hh"
#include "npusim/sim.hh"
#include "npusim/sim_cache.hh"
#include "partition/link_model.hh"

namespace supernpu {
namespace sharding {

/** Timing of one batch split across R data-parallel replicas. */
struct ReplicaGroupResult
{
    std::string networkName;
    std::string configName;
    int replicas = 1; ///< R (after clamping to the batch)
    int batch = 1;    ///< total batch B across the group
    /** ceil(B/R): the widest (slowest) replica's share. */
    int wideShare = 1;
    double frequencyGhz = 0.0;
    partition::LinkConfig link;

    /** Simulation of the widest share on one replica. */
    std::shared_ptr<const npusim::SimResult> wideSim;

    /** wideSim->totalCycles: compute of the slowest replica. */
    std::uint64_t computeCycles = 0;
    /** Final-layer ofmap bytes of the full batch (gathered). */
    std::uint64_t gatherBytes = 0;
    /** Ring all-gather cycles across the R replicas. */
    std::uint64_t gatherCycles = 0;
    /** computeCycles + gatherCycles: one batch end to end. */
    std::uint64_t totalCycles = 0;
    /** Full batch on one chip at the same design point (baseline). */
    std::uint64_t soloCycles = 0;
    /** Full-batch MACs (summed over replicas). */
    std::uint64_t macOpsPerBatch = 0;

    double seconds() const;
    /** soloCycles / totalCycles — bounded by R (audited). */
    double speedup() const;
    /** Whole-group effective MAC/s on the full batch. */
    double effectiveMacPerSec() const;
};

/** Re-simulating data-parallel cost model for one design point. */
class ReplicaGroup
{
  public:
    /** @param cache Defaults to npusim::SimCache::global(). */
    explicit ReplicaGroup(const estimator::NpuEstimate &estimate,
                          partition::LinkConfig link = {},
                          npusim::SimCache *cache = nullptr);

    /**
     * Time one batch of `batch` inferences split across `replicas`
     * chips. More replicas than images clamps to R = batch with a
     * warn() — an empty share cannot be simulated.
     */
    ReplicaGroupResult run(const dnn::Network &network, int replicas,
                           int batch) const;

    const estimator::NpuEstimate &estimate() const
    {
        return _sim.estimate();
    }
    const partition::LinkConfig &link() const { return _link; }

  private:
    std::shared_ptr<const npusim::SimResult>
    simulate(const dnn::Network &network, int batch) const;

    npusim::NpuSimulator _sim;
    partition::LinkConfig _link;
    npusim::SimCache *_cache;
    std::uint64_t _configHash = 0;
};

} // namespace sharding
} // namespace supernpu

#endif // SUPERNPU_SHARDING_REPLICA_GROUP_HH
