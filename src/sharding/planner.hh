/**
 * @file
 * Hybrid DP×TP×PP parallelism planner over a chip budget.
 *
 * A plan places R data-parallel replicas of a T-way tensor-sharded,
 * K-stage pipelined network on R·T·K chips:
 *
 *  - DP (R): the batch splits into near-equal shares; each replica
 *    group runs the widest share, and the final outputs are ring
 *    all-gathered across replicas.
 *  - TP (T): within a replica, every layer's filters split across T
 *    chips (tensor_shard geometry), adding a per-layer all-reduce.
 *  - PP (K): the T-wide sharded network is cut into K contiguous
 *    stages by partition::Partitioner — genuine stage re-simulation
 *    of the shrunk geometry — with the per-layer TP all-reduce
 *    cycles overlaid onto each stage's occupancy. (Cuts are chosen
 *    by the partitioner *before* the overlay — a documented
 *    approximation; the overlaid occupancies are what the plan
 *    reports.) Stage-boundary transfers cross T parallel per-slice
 *    links, which is exactly what partitioning the shard network
 *    charges.
 *
 * Steady-state interval is max(bottleneck stage occupancy, DP
 * gather); one-batch latency is pipeline fill plus the gather.
 * R=T=K=1 reproduces the single-chip simulation cycle-for-cycle
 * (and, through the shared cache entry, byte-for-byte in ledgers).
 *
 * The planner enumerates every (R, T, K) with R·T·K ≤ budget in
 * lexicographic order and keeps the best under the objective; ties
 * keep the earlier triple, so results are deterministic. The
 * enumeration fans out across a common/parallel ThreadPool:
 * candidates land in enumeration order regardless of scheduling
 * (parallelMap slot order) and every shared structure the
 * evaluations touch (npusim::SimCache, the partitioner's
 * LayerTimingCache, the link model's warn dedup) is single-flight or
 * mutexed with scheduling-independent accounting, so `jobs` is a
 * pure wall-clock knob — the search output and its ledgers are
 * byte-identical to the serial walk at any job count.
 */

#ifndef SUPERNPU_SHARDING_PLANNER_HH
#define SUPERNPU_SHARDING_PLANNER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "partition/partitioner.hh"
#include "replica_group.hh"
#include "tensor_shard.hh"

namespace supernpu {
namespace sharding {

/** What the planner optimizes across factorizations. */
enum class PlanObjective
{
    Throughput, ///< max steady-state inferences/sec
    Latency,    ///< min one-batch end-to-end latency
};

const char *planObjectiveName(PlanObjective objective);

/** One evaluated DP×TP×PP placement of a network on a budget. */
struct ShardPlan
{
    std::string networkName;
    std::string configName;
    int dataParallel = 1;   ///< R (after clamping to the batch)
    int tensorShards = 1;   ///< T
    int pipelineStages = 1; ///< K (after the partitioner's clamp)
    int batch = 1;          ///< total batch across the group
    int replicaShare = 1;   ///< ceil(batch/R) per replica
    double frequencyGhz = 0.0;
    partition::LinkConfig link;

    /** Chips the plan occupies: R·T·K. */
    int chips() const
    {
        return dataParallel * tensorShards * pipelineStages;
    }

    /** PP split of the T-wide shard network at the replica share. */
    partition::PartitionPlan pipeline;
    /** Per-stage Σ in-stage TP all-reduce cycles (overlay). */
    std::vector<std::uint64_t> stageCollectiveCycles;
    /** Per-stage occupancy + overlay — what paces the pipeline. */
    std::vector<std::uint64_t> stageOccupancyCycles;

    /** Σ stageCollectiveCycles: all TP all-reduces of one batch. */
    std::uint64_t tensorCollectiveCycles = 0;
    /** Σ per-layer full-ofmap all-reduce bytes. */
    std::uint64_t tensorCollectiveBytes = 0;
    /** DP all-gather of the final outputs across replicas. */
    std::uint64_t gatherBytes = 0;
    std::uint64_t gatherCycles = 0;

    /** max stageOccupancyCycles. */
    std::uint64_t bottleneckCycles = 0;
    /** Σ stageOccupancyCycles: one batch through the pipeline. */
    std::uint64_t fillCycles = 0;
    /** max(bottleneck, gather): steady-state initiation interval. */
    std::uint64_t intervalCycles = 0;
    /** fill + gather: first batch end to end. */
    std::uint64_t latencyCycles = 0;
    /** Full batch on ONE chip at this design point (baseline). */
    std::uint64_t soloCycles = 0;
    /** Full-batch MACs across the whole group. */
    std::uint64_t macOpsPerBatch = 0;
    /** Per-chip peak MAC/s of the design point (audit ceiling). */
    double peakMacPerSec = 0.0;

    double intervalSec() const;
    double latencySec() const;
    /** Steady-state inferences/sec of the group. */
    double throughput() const;
    /**
     * soloCycles / intervalCycles. Can exceed R·T·K when tensor
     * sharding narrows a layer below the PE-array width and drops
     * whole weight mappings (each shard streams the ifmap fewer
     * times than the solo run). The audited ceiling is group MAC
     * throughput, not the speedup.
     */
    double speedup() const;
    double effectiveMacPerSec() const;
};

/** Planner search output: the winner plus every candidate. */
struct PlanSearch
{
    PlanObjective objective = PlanObjective::Throughput;
    int chipBudget = 1;
    /** Every (R,T,K) with R·T·K ≤ budget, enumeration order. */
    std::vector<ShardPlan> evaluated;
    /** Index of the winner in `evaluated`. */
    int bestIndex = 0;

    const ShardPlan &best() const { return evaluated[bestIndex]; }
};

/** DP×TP×PP factorization search for one design point. */
class HybridPlanner
{
  public:
    /** @param cache Defaults to npusim::SimCache::global(). */
    explicit HybridPlanner(const estimator::NpuEstimate &estimate,
                           partition::LinkConfig link = {},
                           npusim::SimCache *cache = nullptr);

    /** Evaluate one fixed (R, T, K) placement. */
    ShardPlan evaluate(const dnn::Network &network, int data_parallel,
                       int tensor_shards, int pipeline_stages,
                       int batch) const;

    /**
     * Search every factorization of `chip_budget` chips or fewer.
     * @param jobs Pool parallelism of the candidate sweep including
     *        the calling thread; <= 1 runs serially inline, 0 means
     *        every hardware thread. Output is byte-identical at any
     *        value.
     */
    PlanSearch plan(const dnn::Network &network, int chip_budget,
                    int batch, PlanObjective objective,
                    int jobs = 1) const;

    const estimator::NpuEstimate &estimate() const
    {
        return _sharder.estimate();
    }
    const partition::LinkConfig &link() const
    {
        return _sharder.link();
    }

    /** The shared partitioner's layer-timing memo counters. */
    partition::LayerTimingCacheStats timingCacheStats() const
    {
        return _partitioner.timingCacheStats();
    }

  private:
    TensorSharder _sharder;
    partition::Partitioner _partitioner;
};

} // namespace sharding
} // namespace supernpu

#endif // SUPERNPU_SHARDING_PLANNER_HH
