/**
 * @file
 * Data-parallel replica-group timing.
 */

#include "replica_group.hh"

#include "common/logging.hh"
#include "tensor_shard.hh"

namespace supernpu {
namespace sharding {

double
ReplicaGroupResult::seconds() const
{
    return (double)totalCycles / (frequencyGhz * 1e9);
}

double
ReplicaGroupResult::speedup() const
{
    SUPERNPU_ASSERT(totalCycles > 0, "result not built");
    return (double)soloCycles / (double)totalCycles;
}

double
ReplicaGroupResult::effectiveMacPerSec() const
{
    return (double)macOpsPerBatch / seconds();
}

ReplicaGroup::ReplicaGroup(const estimator::NpuEstimate &estimate,
                           partition::LinkConfig link,
                           npusim::SimCache *cache)
    : _sim(estimate), _link(link),
      _cache(cache ? cache : &npusim::SimCache::global()),
      _configHash(npusim::hashEstimate(estimate))
{
    _link.check();
}

std::shared_ptr<const npusim::SimResult>
ReplicaGroup::simulate(const dnn::Network &network, int batch) const
{
    npusim::SimKey key;
    key.networkHash = npusim::hashNetwork(network);
    key.configHash = _configHash;
    key.batch = batch;
    return _cache->getOrRun(key, _sim, network);
}

ReplicaGroupResult
ReplicaGroup::run(const dnn::Network &network, int replicas,
                  int batch) const
{
    network.check();
    if (replicas < 1)
        fatal("data parallelism needs at least 1 replica, got ",
              replicas);
    if (batch < 1)
        fatal("batch must be at least 1, got ", batch);
    if (replicas > batch) {
        warn("batch ", batch, " cannot feed ", replicas,
             " data-parallel replicas; clamping to ", batch);
        replicas = batch;
    }

    const int wide_share = (batch + replicas - 1) / replicas;
    // Replica 0 runs the widest share; the group is paced by it
    // regardless of how the remainder spreads.
    auto wide = simulate(network, wide_share);
    auto solo = replicas == 1 ? wide : simulate(network, batch);

    ReplicaGroupResult result;
    result.networkName = network.name;
    result.configName = wide->configName;
    result.replicas = replicas;
    result.batch = batch;
    result.wideShare = wide_share;
    result.frequencyGhz = wide->frequencyGhz;
    result.link = _link;
    result.wideSim = wide;
    result.computeCycles = wide->totalCycles;
    result.soloCycles = solo->totalCycles;
    result.macOpsPerBatch = solo->macOps;
    if (replicas > 1) {
        result.gatherBytes = partition::activationBytes(
            network.layers.back(), batch);
        result.gatherCycles =
            allGatherCost(_link, replicas, result.gatherBytes,
                          result.frequencyGhz)
                .cycles;
    }
    result.totalCycles =
        saturatingAdd(result.computeCycles, result.gatherCycles);
    return result;
}

} // namespace sharding
} // namespace supernpu
