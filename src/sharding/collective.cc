/**
 * @file
 * Ring-collective closed forms over the inter-chip link model.
 */

#include "collective.hh"

#include <cmath>
#include <limits>
#include <string>

#include "common/logging.hh"

namespace supernpu {
namespace sharding {

namespace {

constexpr std::uint64_t kSaturated =
    std::numeric_limits<std::uint64_t>::max();

/**
 * Shared ring shape: `data_steps` steps each moving a ceil(bytes/K)
 * chunk. All three collectives reduce to this with different step
 * counts.
 */
CollectiveCost
ringCost(const partition::LinkConfig &link, int chips,
         std::uint64_t bytes, double frequency_ghz,
         std::uint64_t data_steps, const char *what)
{
    SUPERNPU_ASSERT(chips >= 1, "collective needs at least one chip");
    CollectiveCost cost;
    if (chips == 1 || bytes == 0)
        return cost; // a chip needs no ring to agree with itself
    link.check();
    SUPERNPU_ASSERT(frequency_ghz > 0.0, "clock must be positive");
    cost.steps = data_steps;

    // Chunk each step moves; the ceil division cannot wrap because
    // a saturated `bytes` is UINT64_MAX and K >= 2 halves it first.
    const std::uint64_t k = (std::uint64_t)chips;
    const std::uint64_t chunk = bytes / k + (bytes % k != 0 ? 1 : 0);
    cost.wireBytes = partition::guardedBytes(
        {data_steps, chunk},
        std::string(what) + " ring wire volume");

    // Same cycle arithmetic as partition::transferCycles, with one
    // fixed latency per ring step instead of per transfer. A cycle
    // count that would not fit 64 bits implies an already-warned
    // saturated wire volume, so it saturates silently here.
    const double wire = std::ceil((double)cost.wireBytes *
                                  frequency_ghz / link.bandwidthGBps);
    const double total =
        (double)data_steps * (double)link.latencyCycles + wire;
    cost.cycles =
        total >= (double)kSaturated ? kSaturated : (std::uint64_t)total;
    return cost;
}

} // namespace

CollectiveCost
allReduceCost(const partition::LinkConfig &link, int chips,
              std::uint64_t bytes, double frequency_ghz)
{
    return ringCost(link, chips, bytes, frequency_ghz,
                    2 * ((std::uint64_t)chips - 1), "all-reduce");
}

CollectiveCost
allGatherCost(const partition::LinkConfig &link, int chips,
              std::uint64_t bytes, double frequency_ghz)
{
    return ringCost(link, chips, bytes, frequency_ghz,
                    (std::uint64_t)chips - 1, "all-gather");
}

CollectiveCost
scatterCost(const partition::LinkConfig &link, int chips,
            std::uint64_t bytes, double frequency_ghz)
{
    return ringCost(link, chips, bytes, frequency_ghz,
                    (std::uint64_t)chips - 1, "scatter");
}

} // namespace sharding
} // namespace supernpu
