/**
 * @file
 * Deterministic ring-collective cost model over the inter-chip link.
 *
 * When K SFQ chips cooperate on one tensor — data-parallel replicas
 * gathering their output shards, tensor-parallel shards all-reducing
 * partial sums — the communication rides the same chip-to-chip link
 * partition::LinkConfig models for pipeline boundaries. This module
 * prices the three collectives the sharding layer needs with the
 * classic ring closed forms:
 *
 *  - reduce-scatter / scatter: K-1 steps, each chip moving a
 *    ceil(bytes/K) chunk per step, so (K-1)/K of the tensor crosses
 *    each link;
 *  - all-gather: the same K-1 steps and (K-1)/K volume;
 *  - all-reduce: reduce-scatter then all-gather, 2(K-1) steps and
 *    2(K-1)/K of the tensor.
 *
 * Cycles are the link's fixed latency per step plus the bandwidth
 * term over the total wire bytes, rounded up — exactly the
 * partition::transferCycles shape. K=1 collectives are free (a chip
 * needs no ring to agree with itself), which is what makes
 * degree-1 sharding byte-identical to the single-chip paths.
 *
 * All byte products flow through partition::guardedBytes, so parser-
 * unbounded tensor sizes saturate to UINT64_MAX with a once-per-
 * boundary warn() instead of silently wrapping.
 */

#ifndef SUPERNPU_SHARDING_COLLECTIVE_HH
#define SUPERNPU_SHARDING_COLLECTIVE_HH

#include <cstdint>

#include "partition/link_model.hh"

namespace supernpu {
namespace sharding {

/** Cost of one ring collective across K chips. */
struct CollectiveCost
{
    /** Ring steps — each charges the link's fixed latency. */
    std::uint64_t steps = 0;
    /** Bytes each chip transmits over its outbound link in total. */
    std::uint64_t wireBytes = 0;
    /** Link occupancy cycles: steps·latency + bandwidth term. */
    std::uint64_t cycles = 0;
};

/**
 * Ring all-reduce of a `bytes`-sized tensor across `chips` chips:
 * reduce-scatter followed by all-gather, 2(K-1) steps moving
 * ceil(bytes/K) each. Zero-cost at K=1. Saturates to UINT64_MAX.
 */
CollectiveCost allReduceCost(const partition::LinkConfig &link,
                             int chips, std::uint64_t bytes,
                             double frequency_ghz);

/**
 * Ring all-gather: every chip ends with the full `bytes` tensor of
 * which it held a ceil(bytes/K) shard — K-1 steps. Zero at K=1.
 */
CollectiveCost allGatherCost(const partition::LinkConfig &link,
                             int chips, std::uint64_t bytes,
                             double frequency_ghz);

/**
 * Ring scatter: one chip distributes distinct ceil(bytes/K) shards
 * to K-1 peers, pipelined around the ring — the all-gather volume
 * in reverse. Zero at K=1.
 */
CollectiveCost scatterCost(const partition::LinkConfig &link,
                           int chips, std::uint64_t bytes,
                           double frequency_ghz);

} // namespace sharding
} // namespace supernpu

#endif // SUPERNPU_SHARDING_COLLECTIVE_HH
