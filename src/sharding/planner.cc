/**
 * @file
 * Hybrid DP×TP×PP planner implementation.
 */

#include "planner.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "perf/profile.hh"

namespace supernpu {
namespace sharding {

const char *
planObjectiveName(PlanObjective objective)
{
    switch (objective) {
      case PlanObjective::Throughput:
        return "throughput";
      case PlanObjective::Latency:
        return "latency";
    }
    panic("unknown plan objective");
}

double
ShardPlan::intervalSec() const
{
    return (double)intervalCycles / (frequencyGhz * 1e9);
}

double
ShardPlan::latencySec() const
{
    return (double)latencyCycles / (frequencyGhz * 1e9);
}

double
ShardPlan::throughput() const
{
    return (double)batch / intervalSec();
}

double
ShardPlan::speedup() const
{
    SUPERNPU_ASSERT(intervalCycles > 0, "plan not built");
    return (double)soloCycles / (double)intervalCycles;
}

double
ShardPlan::effectiveMacPerSec() const
{
    return (double)macOpsPerBatch / intervalSec();
}

HybridPlanner::HybridPlanner(const estimator::NpuEstimate &estimate,
                             partition::LinkConfig link,
                             npusim::SimCache *cache)
    : _sharder(estimate, link, cache),
      _partitioner(estimate, link, cache)
{
}

ShardPlan
HybridPlanner::evaluate(const dnn::Network &network,
                        int data_parallel, int tensor_shards,
                        int pipeline_stages, int batch) const
{
    perf::Scope perf_scope("planner.evaluate");
    if (perf::enabled()) {
        static perf::Counter &evaluations =
            perf::counter("planner.evaluations");
        evaluations.add(1);
    }
    network.check();
    if (data_parallel < 1 || tensor_shards < 1 ||
        pipeline_stages < 1)
        fatal("parallelism degrees must be positive, got DP=",
              data_parallel, " TP=", tensor_shards,
              " PP=", pipeline_stages);
    if (batch < 1)
        fatal("batch must be at least 1, got ", batch);
    if (data_parallel > batch) {
        warn("batch ", batch, " cannot feed ", data_parallel,
             " data-parallel replicas; clamping to ", batch);
        data_parallel = batch;
    }

    ShardPlan plan;
    plan.networkName = network.name;
    plan.dataParallel = data_parallel;
    plan.tensorShards = tensor_shards;
    plan.batch = batch;
    plan.replicaShare =
        (batch + data_parallel - 1) / data_parallel;
    plan.link = _sharder.link();

    // TP geometry and per-layer all-reduce at the replica's share.
    TensorShardResult tensor = _sharder.shard(
        network, tensor_shards, plan.replicaShare);
    plan.configName = tensor.configName;
    plan.frequencyGhz = tensor.frequencyGhz;
    plan.tensorCollectiveBytes = tensor.collectiveBytes;

    // PP split of the shard network. The partitioner re-simulates
    // every chosen stage of the shrunk geometry; its cut search
    // does not see the TP overlay below (documented approximation).
    const dnn::Network shard_net =
        shardNetwork(network, tensor_shards);
    plan.pipeline = _partitioner.partition(
        shard_net, pipeline_stages, plan.replicaShare);
    plan.pipelineStages = plan.pipeline.stageCount();

    // Overlay each stage's in-range TP all-reduce cycles onto its
    // occupancy and recompute bottleneck/fill over the overlay.
    const int k = plan.pipelineStages;
    plan.stageCollectiveCycles.assign(k, 0);
    plan.stageOccupancyCycles.assign(k, 0);
    for (int s = 0; s < k; ++s) {
        const partition::PipelineStage &stage =
            plan.pipeline.stages[s];
        std::uint64_t coll = 0;
        for (int l = stage.firstLayer; l <= stage.lastLayer; ++l)
            coll = saturatingAdd(
                coll, tensor.layers[l].reduceCycles);
        plan.stageCollectiveCycles[s] = coll;
        plan.tensorCollectiveCycles =
            saturatingAdd(plan.tensorCollectiveCycles, coll);
        const std::uint64_t occ =
            saturatingAdd(stage.occupancyCycles(), coll);
        plan.stageOccupancyCycles[s] = occ;
        plan.fillCycles = saturatingAdd(plan.fillCycles, occ);
        plan.bottleneckCycles =
            std::max(plan.bottleneckCycles, occ);
    }

    // DP gather of the full batch's final outputs across replicas.
    if (plan.dataParallel > 1) {
        plan.gatherBytes = partition::activationBytes(
            network.layers.back(), batch);
        plan.gatherCycles =
            allGatherCost(plan.link, plan.dataParallel,
                          plan.gatherBytes, plan.frequencyGhz)
                .cycles;
    }

    // The gather shares the link fabric with the next batch's
    // compute, so whichever is slower paces steady state.
    plan.intervalCycles =
        std::max(plan.bottleneckCycles, plan.gatherCycles);
    plan.latencyCycles =
        saturatingAdd(plan.fillCycles, plan.gatherCycles);

    // The documented baseline is the FULL batch on one chip; the
    // tensor result's solo ran at the replica share, which for R>1
    // is a smaller problem. Cache-hit for R=1 (share == batch).
    const auto solo = _sharder.simulate(network, batch);
    plan.soloCycles = solo->totalCycles;
    plan.macOpsPerBatch = solo->macOps;
    plan.peakMacPerSec = tensor.peakMacPerSec;
    return plan;
}

PlanSearch
HybridPlanner::plan(const dnn::Network &network, int chip_budget,
                    int batch, PlanObjective objective,
                    int jobs) const
{
    if (chip_budget < 1)
        fatal("chip budget must be at least 1, got ", chip_budget);
    perf::Scope perf_scope("planner.plan");

    PlanSearch search;
    search.objective = objective;
    search.chipBudget = chip_budget;

    // Degrees a clamp would fold onto an already-enumerated triple
    // are skipped up front: R beyond the batch and K beyond the
    // layer count only duplicate rows (and spam clamp warns).
    // Materializing the triples first sizes the candidate vector
    // exactly and hands parallelMap an indexable work list.
    struct Triple
    {
        int r = 1, t = 1, k = 1;
    };
    const int max_r = std::min(chip_budget, batch);
    const int max_k = (int)network.layers.size();
    std::vector<Triple> triples;
    for (int r = 1; r <= max_r; ++r)
        for (int t = 1; r * t <= chip_budget; ++t)
            for (int k = 1; r * t * k <= chip_budget && k <= max_k;
                 ++k)
                triples.push_back(Triple{r, t, k});

    // Fan the evaluations across the pool. Slot i always holds the
    // i-th enumerated triple's plan (moved in, never copied — each
    // ShardPlan carries stage vectors and a shared SimResult), so
    // the candidate list is byte-identical to the serial walk no
    // matter how the work interleaves.
    ThreadPool pool(jobs < 0 ? 1 : jobs);
    search.evaluated =
        pool.parallelMap(triples.size(), [&](std::size_t i) {
            const Triple &triple = triples[i];
            return evaluate(network, triple.r, triple.t, triple.k,
                            batch);
        });
    if (perf::enabled()) {
        static perf::Counter &candidates =
            perf::counter("planner.candidates");
        candidates.add(triples.size());
    }

    // First strictly better wins: lexicographic (R,T,K) order makes
    // ties deterministic and biases toward simpler placements.
    for (int i = 1; i < (int)search.evaluated.size(); ++i) {
        const ShardPlan &cand = search.evaluated[i];
        const ShardPlan &best = search.evaluated[search.bestIndex];
        const bool better =
            objective == PlanObjective::Throughput
                ? cand.throughput() > best.throughput()
                : cand.latencySec() < best.latencySec();
        if (better)
            search.bestIndex = i;
    }
    return search;
}

} // namespace sharding
} // namespace supernpu
