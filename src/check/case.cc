/**
 * @file
 * CheckCase phenotype builders.
 */

#include "case.hh"

#include <sstream>

#include "common/logging.hh"
#include "npusim/explorer.hh"

namespace supernpu {
namespace check {

dnn::Network
CheckCase::network() const
{
    SUPERNPU_ASSERT(!layers.empty(), "CheckCase with no layers");
    dnn::Network net;
    std::ostringstream name;
    name << "gen-s" << seed << "-i" << index;
    net.name = name.str();

    int c = inChannels;
    int hw = inHw;
    for (std::size_t i = 0; i < layers.size(); ++i) {
        const LayerSpec &spec = layers[i];
        std::ostringstream lname;
        lname << "l" << i;
        dnn::Layer layer;
        switch (spec.kind) {
          case dnn::LayerKind::Conv:
            layer = dnn::conv(lname.str(), c, hw, spec.outChannels,
                              spec.kernel, spec.stride);
            break;
          case dnn::LayerKind::DepthwiseConv:
            layer = dnn::depthwise(lname.str(), c, hw, spec.stride);
            break;
          case dnn::LayerKind::FullyConnected:
            layer = dnn::fullyConnected(lname.str(),
                                        c * hw * hw, spec.outChannels);
            break;
        }
        net.layers.push_back(layer);
        c = layer.outChannels;
        hw = layer.outHeight();
    }
    net.check();
    return net;
}

estimator::NpuConfig
CheckCase::config() const
{
    estimator::NpuConfig config = npusim::DesignSpaceExplorer::makeConfig(
        peWidth, outputDivision, regsPerPe, bufferMb);
    config.weightDoubleBuffering = weightDoubleBuffering;
    config.memoryBandwidth = bandwidthGBps * 1e9;
    config.check();
    return config;
}

std::string
CheckCase::describe() const
{
    std::ostringstream out;
    out << "case s" << seed << "/i" << index
        << " net{c" << inChannels << " hw" << inHw
        << " L" << layers.size() << "}"
        << " cfg{w" << peWidth << "/d" << outputDivision
        << "/r" << regsPerPe << "/" << bufferMb << "MB"
        << (weightDoubleBuffering ? "/dbuf" : "")
        << "/" << bandwidthGBps << "GBps}"
        << " b" << batch
        << " par{K" << pipelineStages << " R" << dataParallel
        << " T" << tensorShards << "}";
    return out.str();
}

} // namespace check
} // namespace supernpu
