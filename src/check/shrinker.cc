/**
 * @file
 * Shrinker implementation: a fixed-order greedy descent.
 */

#include "shrinker.hh"

#include <vector>

namespace supernpu {
namespace check {

namespace {

/**
 * Candidate mutations of one case, simplest-outcome first: drop
 * whole layers before narrowing them, collapse parallelism before
 * touching the design point. Every candidate is valid by
 * construction; candidates identical to the input are skipped by
 * the caller's accept loop (each move strictly reduces something).
 */
std::vector<CheckCase>
mutations(const CheckCase &c)
{
    std::vector<CheckCase> out;

    // Drop each layer (keep at least one).
    if (c.layers.size() > 1) {
        for (std::size_t i = 0; i < c.layers.size(); ++i) {
            CheckCase cand = c;
            cand.layers.erase(cand.layers.begin() + i);
            out.push_back(cand);
        }
    }

    // Shrink the input feature map.
    if (c.inHw > 8) {
        CheckCase cand = c;
        cand.inHw = std::max(8, c.inHw / 2);
        out.push_back(cand);
    }
    if (c.inChannels > 3) {
        CheckCase cand = c;
        cand.inChannels = std::max(3, c.inChannels / 2);
        out.push_back(cand);
    }

    // Narrow each layer and relax its stride.
    for (std::size_t i = 0; i < c.layers.size(); ++i) {
        if (c.layers[i].outChannels > 4) {
            CheckCase cand = c;
            cand.layers[i].outChannels =
                std::max(4, c.layers[i].outChannels / 2);
            out.push_back(cand);
        }
        if (c.layers[i].stride > 1) {
            CheckCase cand = c;
            cand.layers[i].stride = 1;
            out.push_back(cand);
        }
        if (c.layers[i].kind == dnn::LayerKind::Conv &&
            c.layers[i].kernel > 1) {
            CheckCase cand = c;
            cand.layers[i].kernel = 1;
            out.push_back(cand);
        }
    }

    // Collapse the batch and the parallelism degrees.
    if (c.batch > 1) {
        CheckCase cand = c;
        cand.batch = std::max(1, c.batch / 2);
        out.push_back(cand);
    }
    if (c.pipelineStages > 1) {
        CheckCase cand = c;
        cand.pipelineStages = c.pipelineStages - 1;
        out.push_back(cand);
    }
    if (c.dataParallel > 1) {
        CheckCase cand = c;
        cand.dataParallel = 1;
        out.push_back(cand);
    }
    if (c.tensorShards > 1) {
        CheckCase cand = c;
        cand.tensorShards = 1;
        out.push_back(cand);
    }

    // Calm the serving scenario.
    if (c.servingRequests > 50) {
        CheckCase cand = c;
        cand.servingRequests =
            std::max<std::uint64_t>(50, c.servingRequests / 2);
        out.push_back(cand);
    }
    if (c.servingChips > 1) {
        CheckCase cand = c;
        cand.servingChips = 1;
        out.push_back(cand);
    }
    if (c.servingMaxBatch > 1) {
        CheckCase cand = c;
        cand.servingMaxBatch = c.servingMaxBatch - 1;
        out.push_back(cand);
    }

    // Quiet the fault schedule, one kind at a time.
    if (c.pulseDropRate > 0.0) {
        CheckCase cand = c;
        cand.pulseDropRate = 0.0;
        out.push_back(cand);
    }
    if (c.clockSkewRate > 0.0) {
        CheckCase cand = c;
        cand.clockSkewRate = 0.0;
        out.push_back(cand);
    }
    if (c.linkGlitchRate > 0.0) {
        CheckCase cand = c;
        cand.linkGlitchRate = 0.0;
        out.push_back(cand);
    }

    // Return the design point and link to their defaults.
    {
        const partition::LinkConfig stock;
        if (c.link.bandwidthGBps != stock.bandwidthGBps ||
            c.link.latencyCycles != stock.latencyCycles) {
            CheckCase cand = c;
            cand.link = stock;
            out.push_back(cand);
        }
    }
    if (c.regsPerPe > 1) {
        CheckCase cand = c;
        cand.regsPerPe = 1;
        out.push_back(cand);
    }
    if (c.weightDoubleBuffering) {
        CheckCase cand = c;
        cand.weightDoubleBuffering = false;
        out.push_back(cand);
    }
    if (c.bandwidthGBps != 300.0) {
        CheckCase cand = c;
        cand.bandwidthGBps = 300.0;
        out.push_back(cand);
    }

    return out;
}

} // namespace

ShrinkResult
shrinkCase(const CheckCase &failing, const std::string &oracle,
           const sfq::CellLibrary &library, Cook cook)
{
    ShrinkResult result;
    result.shrunk = failing;

    const auto still_fails = [&](const CheckCase &candidate) {
        ++result.attempts;
        const OracleOutcome outcome =
            runOracle(oracle, candidate, library, cook);
        return outcome.applicable && !outcome.passed;
    };

    if (!still_fails(failing))
        return result;

    // Greedy fixpoint descent: after every accepted mutation the
    // move list regenerates from the smaller case. The pass bound is
    // a safety net — every move strictly shrinks a bounded quantity,
    // so a correct build converges long before it.
    const int max_passes = 64;
    for (int pass = 0; pass < max_passes; ++pass) {
        bool accepted = false;
        for (const CheckCase &candidate : mutations(result.shrunk)) {
            if (still_fails(candidate)) {
                result.shrunk = candidate;
                ++result.accepted;
                accepted = true;
                break;
            }
        }
        if (!accepted)
            break;
    }
    return result;
}

} // namespace check
} // namespace supernpu
