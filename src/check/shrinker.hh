/**
 * @file
 * Greedy case shrinker: bisects a failing CheckCase toward a minimal
 * repro while the oracle keeps failing.
 *
 * Works on the genotype, so every candidate is a valid scenario by
 * construction (see case.hh). The move list is fixed-order and the
 * accept rule is deterministic (first still-failing candidate wins),
 * so shrinking the same failure always lands on the same repro — a
 * property the corpus tests pin.
 */

#ifndef SUPERNPU_CHECK_SHRINKER_HH
#define SUPERNPU_CHECK_SHRINKER_HH

#include <string>

#include "oracles.hh"

namespace supernpu {
namespace check {

/** The outcome of one shrink run. */
struct ShrinkResult
{
    CheckCase shrunk;  ///< smallest still-failing case found
    int accepted = 0;  ///< mutations that kept the failure
    int attempts = 0;  ///< oracle evaluations spent
};

/**
 * Shrink `failing` against (oracle, cook): repeatedly try the move
 * list and keep any candidate on which the oracle is applicable and
 * still fails, to a fixpoint. `failing` itself must fail, or the
 * input is returned unchanged.
 */
ShrinkResult shrinkCase(const CheckCase &failing,
                        const std::string &oracle,
                        const sfq::CellLibrary &library, Cook cook);

} // namespace check
} // namespace supernpu

#endif // SUPERNPU_CHECK_SHRINKER_HH
