/**
 * @file
 * Repro files: a failing (case, oracle, cook) triple serialized as
 * a small JSON document so a failure found by a fuzzing run can be
 * replayed exactly — `supernpu check --replay FILE` — and committed
 * to tests/repros/ as a permanent regression pin.
 *
 * Schema "supernpu-check-v1". 64-bit seeds are serialized as decimal
 * *strings*: the strict obs JSON reader parses numbers as double,
 * and a full-width seed does not survive the 53-bit mantissa.
 */

#ifndef SUPERNPU_CHECK_REPRO_HH
#define SUPERNPU_CHECK_REPRO_HH

#include <optional>
#include <string>

#include "oracles.hh"

namespace supernpu {
namespace check {

/** Schema identifier embedded in every repro file. */
constexpr const char *kCheckSchema = "supernpu-check-v1";

/** One replayable failure (or cooked self-test) description. */
struct Repro
{
    std::string oracle;
    Cook cook = Cook::None;
    CheckCase checkCase;
};

/** Render a repro as its canonical JSON document. */
std::string renderRepro(const Repro &repro);

/**
 * Parse a repro document; nullopt (with a one-line diagnostic in
 * `error` when non-null) on any malformed input.
 */
std::optional<Repro> parseRepro(const std::string &text,
                                std::string *error = nullptr);

/** Write a repro to `path`; false when the file cannot be written. */
bool writeRepro(const Repro &repro, const std::string &path);

/** Load and parse a repro file; nullopt with a diagnostic on error. */
std::optional<Repro> loadRepro(const std::string &path,
                               std::string *error = nullptr);

} // namespace check
} // namespace supernpu

#endif // SUPERNPU_CHECK_REPRO_HH
