/**
 * @file
 * Oracle implementations. See the header for the catalog contract
 * and docs/checking.md for why each relation is a theorem of the
 * model under its stated restrictions.
 */

#include "oracles.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"
#include "estimator/npu_estimator.hh"
#include "npusim/batch.hh"
#include "npusim/sim.hh"
#include "npusim/sim_cache.hh"
#include "obs/audit.hh"
#include "obs/json_reader.hh"
#include "obs/ledger.hh"
#include "partition/partitioner.hh"
#include "partition/pipeline_sim.hh"
#include "reliability/injector.hh"
#include "serving/service_model.hh"
#include "serving/simulator.hh"
#include "sharding/planner.hh"

namespace supernpu {
namespace check {

const char *
cookName(Cook cook)
{
    return cook == Cook::None ? "none" : "tamper";
}

namespace {

/** Collects the first violated assertion of one oracle run. */
class Checker
{
  public:
    void
    expectTrue(bool condition, const std::string &what)
    {
        if (!condition && _detail.empty())
            _detail = what;
    }

    template <typename A, typename B>
    void
    expectEq(const A &a, const B &b, const std::string &what)
    {
        if (!(a == b))
            record(what, a, "==", b);
    }

    template <typename A, typename B>
    void
    expectLe(const A &a, const B &b, const std::string &what)
    {
        if (!(a <= b))
            record(what, a, "<=", b);
    }

    OracleOutcome
    outcome() const
    {
        OracleOutcome result;
        result.passed = _detail.empty();
        result.detail = _detail;
        return result;
    }

  private:
    template <typename A, typename B>
    void
    record(const std::string &what, const A &a, const char *relation,
           const B &b)
    {
        if (!_detail.empty())
            return;
        std::ostringstream out;
        out << what << " (expected " << a << " " << relation << " "
            << b << ")";
        _detail = out.str();
    }

    std::string _detail;
};

OracleOutcome
notApplicable()
{
    OracleOutcome outcome;
    outcome.applicable = false;
    return outcome;
}

estimator::NpuEstimate
makeEstimate(const CheckCase &c, const sfq::CellLibrary &library)
{
    estimator::NpuEstimator npu_estimator(library);
    return npu_estimator.estimate(c.config());
}

/**
 * Every cycle bucket of a direct run must roll up (the obs audit);
 * the cook perturbs the total so the roll-up cannot balance.
 */
OracleOutcome
oracleSimConservation(const CheckCase &c, const sfq::CellLibrary &lib,
                      Cook cook)
{
    const estimator::NpuEstimate est = makeEstimate(c, lib);
    npusim::NpuSimulator sim(est);
    npusim::SimResult result = sim.run(c.network(), c.batch);
    if (cook == Cook::Tamper)
        result.totalCycles += 1;
    const obs::AuditReport report = obs::auditSim(result);
    Checker checker;
    checker.expectTrue(report.ok(), "auditSim: " + report.summary());
    return checker.outcome();
}

/**
 * The K=1 pipeline and the degree-1 hybrid plan must resolve to the
 * *same cache entry* as the direct simulation — pointer identity,
 * not just equal numbers — and the ledgers built from either side
 * must be byte-identical. The cook partitions at a different batch,
 * which lands on a different cache entry.
 */
OracleOutcome
oracleCrossPath(const CheckCase &c, const sfq::CellLibrary &lib,
                Cook cook)
{
    const estimator::NpuEstimate est = makeEstimate(c, lib);
    npusim::SimCache cache;
    npusim::NpuSimulator sim(est);
    const dnn::Network net = c.network();
    const auto direct = cache.getOrRun(sim, net, c.batch);

    Checker checker;

    const partition::Partitioner partitioner(est, c.link, &cache);
    const int partition_batch =
        c.batch + (cook == Cook::Tamper ? 1 : 0);
    const partition::PartitionPlan plan =
        partitioner.partition(net, 1, partition_batch);
    checker.expectEq((int)plan.stages.size(), 1, "K=1 stage count");
    checker.expectTrue(plan.stages[0].sim.get() == direct.get(),
                       "partition@K=1 stage sim is not the direct "
                       "simulation's cache entry");

    const sharding::HybridPlanner planner(est, c.link, &cache);
    const sharding::ShardPlan shard =
        planner.evaluate(net, 1, 1, 1, c.batch);
    checker.expectTrue(
        !shard.pipeline.stages.empty() &&
            shard.pipeline.stages[0].sim.get() == direct.get(),
        "shard@degree-1 stage sim is not the direct simulation's "
        "cache entry");

    obs::RunLedger direct_ledger, staged_ledger;
    obs::addSimResult(direct_ledger, *direct);
    obs::addSimResult(staged_ledger, *plan.stages[0].sim);
    checker.expectTrue(direct_ledger.json() == staged_ledger.json(),
                       "direct and K=1 ledgers are not byte-identical");
    return checker.outcome();
}

/**
 * Pipeline conservation laws (occupancy roll-ups, bottleneck, the
 * fill + (M-1)*bottleneck makespan identity) plus link-transfer
 * monotonicity in bandwidth. The cook perturbs the makespan.
 */
OracleOutcome
oraclePipeline(const CheckCase &c, const sfq::CellLibrary &lib,
               Cook cook)
{
    const estimator::NpuEstimate est = makeEstimate(c, lib);
    npusim::SimCache cache;
    const partition::PipelineSimulator pipeline(est, c.link, &cache);
    partition::PipelineResult result =
        pipeline.run(c.network(), c.pipelineStages, c.batch, 3);
    if (cook == Cook::Tamper)
        result.makespanCycles += 1;
    const obs::AuditReport report = obs::auditPipeline(result);
    Checker checker;
    checker.expectTrue(report.ok(),
                       "auditPipeline: " + report.summary());

    partition::LinkConfig fast = c.link;
    fast.bandwidthGBps *= 2.0;
    const std::uint64_t probe_bytes = 1u << 20;
    checker.expectLe(
        partition::transferCycles(fast, probe_bytes,
                                  est.frequencyGhz),
        partition::transferCycles(c.link, probe_bytes,
                                  est.frequencyGhz),
        "doubling link bandwidth must not add transfer cycles");
    return checker.outcome();
}

/**
 * A hybrid plan's solo baseline must be the *full-batch single-chip*
 * run (PR 7's bug took it from the replica-share run, inflating
 * every reported speedup). The cook re-introduces exactly that
 * arithmetic, so it needs a case where the replica share differs
 * from the full batch.
 */
OracleOutcome
oracleShardSolo(const CheckCase &c, const sfq::CellLibrary &lib,
                Cook cook)
{
    const estimator::NpuEstimate est = makeEstimate(c, lib);
    npusim::SimCache cache;
    npusim::NpuSimulator sim(est);
    const dnn::Network net = c.network();
    const sharding::HybridPlanner planner(est, c.link, &cache);
    sharding::ShardPlan plan =
        planner.evaluate(net, c.dataParallel, c.tensorShards,
                         c.pipelineStages, c.batch);
    const auto direct = cache.getOrRun(sim, net, c.batch);
    if (cook == Cook::Tamper) {
        if (plan.replicaShare >= c.batch)
            return notApplicable();
        const auto share = cache.getOrRun(sim, net, plan.replicaShare);
        if (share->totalCycles == direct->totalCycles)
            return notApplicable();
        plan.soloCycles = share->totalCycles;
    }
    Checker checker;
    const obs::AuditReport report = obs::auditSharding(plan);
    checker.expectTrue(report.ok(),
                       "auditSharding: " + report.summary());
    checker.expectEq(plan.soloCycles, direct->totalCycles,
                     "soloCycles must be the full-batch single-chip "
                     "run");
    if (c.tensorShards == 1) {
        checker.expectEq(plan.macOpsPerBatch, direct->macOps,
                         "unsharded plan MACs must match the direct "
                         "run");
    }
    return checker.outcome();
}

/**
 * Within the all-fit regime (batch <= the Table II solve, where the
 * fit thresholds are monotone), splitting a batch and running the
 * halves can never beat running it whole, and cycles are monotone
 * in batch. Outside that regime the relation is NOT a theorem — a
 * spilling batch legally charges no prep on the streamed path — so
 * the oracle derives its batches from npusim::maxBatch.
 */
OracleOutcome
oracleBatchSplit(const CheckCase &c, const sfq::CellLibrary &lib,
                 Cook cook)
{
    const estimator::NpuEstimate est = makeEstimate(c, lib);
    const dnn::Network net = c.network();
    const int fit = npusim::maxBatch(est.config, est, net);
    if (fit < 2)
        return notApplicable();
    const int whole_batch = std::min(std::max(c.batch, 2), fit);
    const int lo = whole_batch / 2;
    const int hi = whole_batch - lo;

    npusim::SimCache cache;
    npusim::NpuSimulator sim(est);
    const auto whole = cache.getOrRun(sim, net, whole_batch);
    const auto first = cache.getOrRun(sim, net, lo);
    const auto second = cache.getOrRun(sim, net, hi);

    std::uint64_t whole_cycles = whole->totalCycles;
    if (cook == Cook::Tamper)
        whole_cycles *= 3;

    Checker checker;
    checker.expectLe(whole_cycles,
                     first->totalCycles + second->totalCycles,
                     "split-and-gather must never beat the whole "
                     "batch");
    checker.expectLe(first->totalCycles, whole_cycles,
                     "cycles must be monotone in batch (all-fit "
                     "regime)");
    return checker.outcome();
}

/**
 * Weight double buffering hides fetches behind the *previous*
 * mapping's compute (PR 4's bug overlapped the current one): with
 * geometry and frequency held fixed, turning it on can only shave
 * weight-load cycles, and the very first mapping — which has no
 * previous compute to hide behind — must cost exactly the same.
 * The cook makes the buffered run one cycle slower.
 */
OracleOutcome
oracleDoubleBuffering(const CheckCase &c, const sfq::CellLibrary &lib,
                      Cook cook)
{
    CheckCase plain = c;
    plain.weightDoubleBuffering = false;
    const estimator::NpuEstimate est_off = makeEstimate(plain, lib);
    // Flip only the flag on a copy: re-estimating could move the
    // frequency and turn the comparison into apples vs oranges.
    estimator::NpuEstimate est_on = est_off;
    est_on.config.weightDoubleBuffering = true;

    const dnn::Network net = c.network();
    const npusim::SimResult off =
        npusim::NpuSimulator(est_off).run(net, c.batch);
    npusim::SimResult on =
        npusim::NpuSimulator(est_on).run(net, c.batch);
    if (cook == Cook::Tamper)
        on.totalCycles = off.totalCycles + 1;

    Checker checker;
    checker.expectLe(on.totalCycles, off.totalCycles,
                     "double buffering must never slow a run");
    for (std::size_t i = 0; i < off.layers.size(); ++i) {
        checker.expectLe(on.layers[i].prep.weightLoad,
                         off.layers[i].prep.weightLoad,
                         "double buffering must never add weight-load "
                         "cycles (" + off.layers[i].layerName + ")");
    }
    if (!off.layers.empty() && off.layers[0].weightMappings == 1) {
        checker.expectEq(on.layers[0].prep.weightLoad,
                         off.layers[0].prep.weightLoad,
                         "the first mapping has nothing to hide "
                         "behind");
    }
    return checker.outcome();
}

/**
 * Doubling the per-PE register file can only merge weight mappings,
 * never split them. The cook claims one extra mapping.
 */
OracleOutcome
oracleRegsMonotone(const CheckCase &c, const sfq::CellLibrary &lib,
                   Cook cook)
{
    CheckCase doubled = c;
    doubled.regsPerPe = c.regsPerPe * 2;
    const estimator::NpuEstimate est_lo = makeEstimate(c, lib);
    const estimator::NpuEstimate est_hi = makeEstimate(doubled, lib);
    const dnn::Network net = c.network();
    const npusim::SimResult lo =
        npusim::NpuSimulator(est_lo).run(net, c.batch);
    const npusim::SimResult hi =
        npusim::NpuSimulator(est_hi).run(net, c.batch);
    std::uint64_t lo_mappings = 0, hi_mappings = 0;
    for (const npusim::LayerResult &layer : lo.layers)
        lo_mappings += layer.weightMappings;
    for (const npusim::LayerResult &layer : hi.layers)
        hi_mappings += layer.weightMappings;
    if (cook == Cook::Tamper)
        hi_mappings = lo_mappings + 1;
    Checker checker;
    checker.expectLe(hi_mappings, lo_mappings,
                     "doubling registers must never add weight "
                     "mappings");
    return checker.outcome();
}

/**
 * DRAM stalls scale as bytes * frequency / bandwidth, so doubling
 * the bandwidth on the estimate — directly, so the frequency cannot
 * move — can only remove cycles. The cook makes the fast run slower.
 */
OracleOutcome
oracleBandwidthMonotone(const CheckCase &c,
                        const sfq::CellLibrary &lib, Cook cook)
{
    const estimator::NpuEstimate est = makeEstimate(c, lib);
    estimator::NpuEstimate fast = est;
    fast.config.memoryBandwidth *= 2.0;
    const dnn::Network net = c.network();
    const npusim::SimResult slow =
        npusim::NpuSimulator(est).run(net, c.batch);
    const npusim::SimResult quick =
        npusim::NpuSimulator(fast).run(net, c.batch);
    std::uint64_t quick_cycles = quick.totalCycles;
    if (cook == Cook::Tamper)
        quick_cycles = slow.totalCycles + 1;
    Checker checker;
    checker.expectLe(quick_cycles, slow.totalCycles,
                     "doubling memory bandwidth must never add "
                     "cycles");
    return checker.outcome();
}

/**
 * For *transient-only* schedules (a flux trap narrows the array and
 * can legally flip fit thresholds, so permanent faults are excluded
 * by construction in the generator), a prefix subset of the events
 * injects at most as many faults and at most as many recompute
 * cycles — and the empty schedule is pointer-identical to the clean
 * cached run. The cook claims the subset recomputed more.
 */
OracleOutcome
oracleFaultSubset(const CheckCase &c, const sfq::CellLibrary &lib,
                  Cook cook)
{
    const estimator::NpuEstimate est = makeEstimate(c, lib);
    npusim::SimCache cache;
    npusim::NpuSimulator sim(est);
    const dnn::Network net = c.network();
    const auto clean = cache.getOrRun(sim, net, c.batch);

    reliability::FaultScheduleConfig fc;
    fc.horizonSec = 0.01;
    fc.chips = 1;
    fc.seed = c.faultSeed;
    fc.pulseDropRatePerSec = c.pulseDropRate;
    fc.clockSkewRatePerSec = c.clockSkewRate;
    fc.linkGlitchRatePerSec = c.linkGlitchRate;

    const reliability::FaultInjector injector(est, &cache);
    const auto via_empty =
        injector.run(net, c.batch, reliability::FaultSchedule{});
    Checker checker;
    checker.expectTrue(via_empty.get() == clean.get(),
                       "empty schedule must return the clean cache "
                       "entry itself");

    const reliability::FaultSchedule full =
        reliability::FaultSchedule::generate(fc);
    const auto with_full = injector.run(net, c.batch, full);
    std::vector<reliability::FaultEvent> prefix(
        full.events().begin(),
        full.events().begin() + full.size() / 2);
    const reliability::FaultSchedule half =
        reliability::FaultSchedule::fromEvents(fc, std::move(prefix));
    const auto with_half = injector.run(net, c.batch, half);

    std::uint64_t half_events = with_half->faultEventsInjected;
    std::uint64_t half_recompute = with_half->faultRecomputeCycles;
    if (cook == Cook::Tamper)
        half_recompute = with_full->faultRecomputeCycles + 1;
    checker.expectLe(half_events, with_full->faultEventsInjected,
                     "an event subset must inject a subset");
    checker.expectLe(half_recompute,
                     with_full->faultRecomputeCycles,
                     "an event subset must recompute no more");
    return checker.outcome();
}

serving::ServingConfig
servingConfig(const CheckCase &c)
{
    serving::ServingConfig config;
    config.arrival.kind = serving::ArrivalKind::OpenPoisson;
    config.arrival.ratePerSec = c.servingRps;
    config.batching.policy = c.servingFixedBatch
                                 ? serving::BatchPolicy::FixedBatch
                                 : serving::BatchPolicy::DynamicTimeout;
    config.batching.maxBatch = c.servingMaxBatch;
    config.chips = c.servingChips;
    config.requests = c.servingRequests;
    config.seed = c.servingSeed;
    config.check();
    return config;
}

/**
 * A fault-free serving run must conserve requests, pass the serving
 * audit, and land inside its closed-form envelope: throughput cannot
 * beat chips * the best per-chip peak, and no request can finish
 * faster than the cheapest possible batch service. The cook inflates
 * the reported throughput past the envelope.
 */
OracleOutcome
oracleServingBounds(const CheckCase &c, const sfq::CellLibrary &lib,
                    Cook cook)
{
    const estimator::NpuEstimate est = makeEstimate(c, lib);
    npusim::SimCache cache;
    const dnn::Network net = c.network();
    const serving::BatchServiceModel service(est, net, &cache);
    const serving::ServingConfig config = servingConfig(c);
    serving::ServingReport report =
        serving::ServingSimulator(service, config).run();

    double peak = 0.0;
    double min_service = 0.0;
    for (int b = 1; b <= config.batching.maxBatch; ++b) {
        peak = std::max(peak, service.peakRps(b));
        const double seconds = service.batchSeconds(b);
        if (b == 1 || seconds < min_service)
            min_service = seconds;
    }
    const double ceiling = (double)config.chips * peak;
    if (cook == Cook::Tamper)
        report.throughputRps = ceiling * 1.5 + 1.0;

    Checker checker;
    const obs::AuditReport audit = obs::auditServing(report);
    checker.expectTrue(audit.ok(),
                       "auditServing: " + audit.summary());
    checker.expectEq(report.completed, report.generated,
                     "every injected request must complete");
    checker.expectLe(report.throughputRps, ceiling * (1.0 + 1e-9),
                     "throughput must not beat the closed-form peak");
    checker.expectLe(min_service * (1.0 - 1e-9), report.latencyMax,
                     "no request can finish faster than the cheapest "
                     "batch service");
    return checker.outcome();
}

/**
 * Two runs of the same (config, seed) must produce byte-identical
 * serving ledgers — the replay guarantee every repro in
 * tests/repros/ leans on. The cook corrupts the second rendering.
 */
OracleOutcome
oracleServingDeterminism(const CheckCase &c,
                         const sfq::CellLibrary &lib, Cook cook)
{
    const estimator::NpuEstimate est = makeEstimate(c, lib);
    npusim::SimCache cache;
    const dnn::Network net = c.network();
    const serving::BatchServiceModel service(est, net, &cache);
    const serving::ServingConfig config = servingConfig(c);
    obs::RunLedger first_ledger, second_ledger;
    obs::addServingReport(
        first_ledger, serving::ServingSimulator(service, config).run());
    obs::addServingReport(
        second_ledger,
        serving::ServingSimulator(service, config).run());
    const std::string first = first_ledger.json();
    std::string second = second_ledger.json();
    if (cook == Cook::Tamper)
        second += " ";
    Checker checker;
    checker.expectTrue(first == second,
                       "serving runs of one (config, seed) must be "
                       "byte-identical");
    return checker.outcome();
}

/**
 * A ledger must render repeatably, parse under the strict reader,
 * and round-trip its numbers exactly. The cook truncates the
 * document's closing brace.
 */
OracleOutcome
oracleLedgerRoundtrip(const CheckCase &c, const sfq::CellLibrary &lib,
                      Cook cook)
{
    const estimator::NpuEstimate est = makeEstimate(c, lib);
    npusim::SimCache cache;
    npusim::NpuSimulator sim(est);
    const dnn::Network net = c.network();
    const auto direct = cache.getOrRun(sim, net, c.batch);
    obs::RunLedger ledger;
    obs::addSimResult(ledger, *direct);
    obs::addSimCacheStats(ledger, cache.stats());
    std::string text = ledger.json();
    Checker checker;
    checker.expectTrue(text == ledger.json(),
                       "json() must render repeatably");
    if (cook == Cook::Tamper) {
        const std::size_t brace = text.rfind('}');
        if (brace != std::string::npos)
            text.erase(brace);
    }
    std::string error;
    const auto doc = obs::parseJson(text, &error);
    checker.expectTrue(doc.has_value(),
                       "ledger JSON must parse strictly: " + error);
    if (doc.has_value()) {
        checker.expectEq(doc->stringAt("schema"),
                         std::string(obs::kLedgerSchema),
                         "ledger schema tag");
        const obs::JsonValue *sections = doc->find("sections");
        const obs::JsonValue *sim_section =
            sections ? sections->find("sim") : nullptr;
        checker.expectTrue(sim_section != nullptr,
                           "ledger must carry a sim section");
        if (sim_section) {
            checker.expectEq(sim_section->numberAt("totalCycles"),
                             (double)direct->totalCycles,
                             "totalCycles must round-trip exactly");
            checker.expectEq(sim_section->numberAt("frequencyGhz"),
                             direct->frequencyGhz,
                             "frequencyGhz must round-trip exactly");
        }
    }
    return checker.outcome();
}

using OracleFn = OracleOutcome (*)(const CheckCase &,
                                   const sfq::CellLibrary &, Cook);

struct OracleEntry
{
    const char *name;
    OracleFn fn;
};

const OracleEntry kOracles[] = {
    {"sim-conservation", oracleSimConservation},
    {"cross-path-identity", oracleCrossPath},
    {"pipeline-identities", oraclePipeline},
    {"shard-solo-baseline", oracleShardSolo},
    {"batch-subadditivity", oracleBatchSplit},
    {"double-buffering", oracleDoubleBuffering},
    {"regs-monotonicity", oracleRegsMonotone},
    {"bandwidth-monotonicity", oracleBandwidthMonotone},
    {"fault-subset", oracleFaultSubset},
    {"serving-bounds", oracleServingBounds},
    {"serving-determinism", oracleServingDeterminism},
    {"ledger-roundtrip", oracleLedgerRoundtrip},
};

} // namespace

const std::vector<std::string> &
oracleNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> list;
        for (const OracleEntry &entry : kOracles)
            list.push_back(entry.name);
        return list;
    }();
    return names;
}

bool
isOracle(const std::string &name)
{
    for (const OracleEntry &entry : kOracles) {
        if (name == entry.name)
            return true;
    }
    return false;
}

OracleOutcome
runOracle(const std::string &name, const CheckCase &c,
          const sfq::CellLibrary &library, Cook cook)
{
    for (const OracleEntry &entry : kOracles) {
        if (name == entry.name)
            return entry.fn(c, library, cook);
    }
    panic("unknown oracle '", name, "'");
}

} // namespace check
} // namespace supernpu
