/**
 * @file
 * The oracle catalog: cross-path identities, closed-form bounds, and
 * metamorphic relations every correct build must satisfy on every
 * generated case.
 *
 * The repository simulates the same physics through five redundant
 * paths — the direct cycle simulator, the K-stage pipeline at K=1,
 * the DP×TP×PP planner at degree 1, the serving event loop, and the
 * ledger roll-ups — and each past bug (PR 4's double-buffering
 * overlap, PR 7's solo baseline) was a divergence between two of
 * them. Each oracle pins one such agreement or a one-sided relation
 * that is a *theorem* of the model, not a tuning choice; the
 * restrictions baked into each (all-fit batches only, transient
 * faults only, direct-bandwidth mutation) are what make the relation
 * a theorem — see docs/checking.md for the derivations.
 *
 * Cooking: every oracle can run with Cook::Tamper, which perturbs
 * one observed value (or re-introduces a fixed bug's arithmetic)
 * before the assertions. A tampered run MUST fail — that is how the
 * suite proves each oracle still has teeth, without keeping buggy
 * product code around.
 */

#ifndef SUPERNPU_CHECK_ORACLES_HH
#define SUPERNPU_CHECK_ORACLES_HH

#include <string>
#include <vector>

#include "case.hh"
#include "sfq/cells.hh"

namespace supernpu {
namespace check {

/** Whether to sabotage the oracle's observation (self-test mode). */
enum class Cook
{
    None,   ///< honest run: the oracle must pass on a correct build
    Tamper, ///< perturb one observed value: the oracle must fail
};

const char *cookName(Cook cook);

/** Result of one oracle on one case. */
struct OracleOutcome
{
    /**
     * False when the case cannot express this oracle's premise (e.g.
     * the solo-baseline cook needs a data-parallel degree >= 2 to be
     * observable). Inapplicable outcomes count as neither pass nor
     * fail.
     */
    bool applicable = true;
    bool passed = true;
    /** First violated assertion, human-readable; "" when passed. */
    std::string detail;
};

/** Stable names of every oracle, catalog order. */
const std::vector<std::string> &oracleNames();

/** Whether `name` names an oracle. */
bool isOracle(const std::string &name);

/**
 * Run one oracle on one case. Each invocation builds its own
 * npusim::SimCache, so the pointer-identity contracts (same cache
 * entry across paths) are airtight per case and cases never
 * interact.
 */
OracleOutcome runOracle(const std::string &name, const CheckCase &c,
                        const sfq::CellLibrary &library, Cook cook);

} // namespace check
} // namespace supernpu

#endif // SUPERNPU_CHECK_ORACLES_HH
