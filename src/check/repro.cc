/**
 * @file
 * Repro serialization through the obs JSON writer/reader pair.
 */

#include "repro.hh"

#include <cstdint>
#include <fstream>
#include <sstream>

#include "obs/json_reader.hh"
#include "obs/json_writer.hh"

namespace supernpu {
namespace check {

namespace {

const char *
layerKindTag(dnn::LayerKind kind)
{
    switch (kind) {
      case dnn::LayerKind::Conv:
        return "conv";
      case dnn::LayerKind::DepthwiseConv:
        return "depthwise";
      case dnn::LayerKind::FullyConnected:
        return "fullyConnected";
    }
    return "conv";
}

bool
parseLayerKind(const std::string &tag, dnn::LayerKind &kind)
{
    if (tag == "conv") {
        kind = dnn::LayerKind::Conv;
    } else if (tag == "depthwise") {
        kind = dnn::LayerKind::DepthwiseConv;
    } else if (tag == "fullyConnected") {
        kind = dnn::LayerKind::FullyConnected;
    } else {
        return false;
    }
    return true;
}

/** Decimal-string round-trip for full-width 64-bit values. */
std::string
u64Text(std::uint64_t value)
{
    return std::to_string(value);
}

bool
parseU64(const obs::JsonValue &object, const std::string &key,
         std::uint64_t &value, std::string &error)
{
    const obs::JsonValue *member = object.find(key);
    if (!member || !member->isString()) {
        error = "missing or mistyped u64 field '" + key + "'";
        return false;
    }
    std::istringstream in(member->string);
    in >> value;
    if (in.fail() || !in.eof()) {
        error = "unparseable u64 field '" + key + "'";
        return false;
    }
    return true;
}

bool
parseInt(const obs::JsonValue &object, const std::string &key,
         int &value, std::string &error)
{
    const obs::JsonValue *member = object.find(key);
    if (!member || !member->isNumber()) {
        error = "missing or mistyped int field '" + key + "'";
        return false;
    }
    value = (int)member->number;
    return true;
}

bool
parseReal(const obs::JsonValue &object, const std::string &key,
          double &value, std::string &error)
{
    const obs::JsonValue *member = object.find(key);
    if (!member || !member->isNumber()) {
        error = "missing or mistyped real field '" + key + "'";
        return false;
    }
    value = member->number;
    return true;
}

bool
parseBool(const obs::JsonValue &object, const std::string &key,
          bool &value, std::string &error)
{
    const obs::JsonValue *member = object.find(key);
    if (!member || member->kind != obs::JsonValue::Kind::Bool) {
        error = "missing or mistyped bool field '" + key + "'";
        return false;
    }
    value = member->boolean;
    return true;
}

} // namespace

std::string
renderRepro(const Repro &repro)
{
    obs::JsonWriter json;
    json.beginObject();
    json.key("schema").value(kCheckSchema);
    json.key("oracle").value(repro.oracle);
    json.key("cook").value(cookName(repro.cook));
    json.key("case").beginObject();
    const CheckCase &c = repro.checkCase;
    json.key("seed").value(u64Text(c.seed));
    json.key("index").value(u64Text(c.index));
    json.key("inChannels").value((std::uint64_t)c.inChannels);
    json.key("inHw").value((std::uint64_t)c.inHw);
    json.key("layers").beginArray();
    for (const LayerSpec &layer : c.layers) {
        json.beginObject();
        json.key("kind").value(layerKindTag(layer.kind));
        json.key("outChannels").value((std::uint64_t)layer.outChannels);
        json.key("kernel").value((std::uint64_t)layer.kernel);
        json.key("stride").value((std::uint64_t)layer.stride);
        json.endObject();
    }
    json.endArray();
    json.key("peWidth").value((std::uint64_t)c.peWidth);
    json.key("outputDivision").value((std::uint64_t)c.outputDivision);
    json.key("regsPerPe").value((std::uint64_t)c.regsPerPe);
    json.key("bufferMb").value((std::uint64_t)c.bufferMb);
    json.key("weightDoubleBuffering").value(c.weightDoubleBuffering);
    json.key("bandwidthGBps").value(c.bandwidthGBps);
    json.key("batch").value((std::uint64_t)c.batch);
    json.key("linkBandwidthGBps").value(c.link.bandwidthGBps);
    json.key("linkLatencyCycles")
        .value((std::uint64_t)c.link.latencyCycles);
    json.key("pipelineStages").value((std::uint64_t)c.pipelineStages);
    json.key("dataParallel").value((std::uint64_t)c.dataParallel);
    json.key("tensorShards").value((std::uint64_t)c.tensorShards);
    json.key("servingRequests").value(c.servingRequests);
    json.key("servingChips").value((std::uint64_t)c.servingChips);
    json.key("servingRps").value(c.servingRps);
    json.key("servingFixedBatch").value(c.servingFixedBatch);
    json.key("servingMaxBatch").value((std::uint64_t)c.servingMaxBatch);
    json.key("servingSeed").value(u64Text(c.servingSeed));
    json.key("pulseDropRate").value(c.pulseDropRate);
    json.key("clockSkewRate").value(c.clockSkewRate);
    json.key("linkGlitchRate").value(c.linkGlitchRate);
    json.key("faultSeed").value(u64Text(c.faultSeed));
    json.endObject();
    json.endObject();
    return json.str() + "\n";
}

std::optional<Repro>
parseRepro(const std::string &text, std::string *error)
{
    std::string detail;
    const auto fail = [&](const std::string &why) {
        if (error)
            *error = why;
        return std::nullopt;
    };

    const auto doc = obs::parseJson(text, &detail);
    if (!doc.has_value())
        return fail("not JSON: " + detail);
    if (doc->stringAt("schema") != kCheckSchema)
        return fail("not a " + std::string(kCheckSchema) +
                    " document");

    Repro repro;
    repro.oracle = doc->stringAt("oracle");
    if (!isOracle(repro.oracle))
        return fail("unknown oracle '" + repro.oracle + "'");
    const std::string cook = doc->stringAt("cook");
    if (cook == "none") {
        repro.cook = Cook::None;
    } else if (cook == "tamper") {
        repro.cook = Cook::Tamper;
    } else {
        return fail("unknown cook '" + cook + "'");
    }

    const obs::JsonValue *body = doc->find("case");
    if (!body || !body->isObject())
        return fail("missing case object");
    CheckCase &c = repro.checkCase;
    std::uint64_t requests = 0;
    if (!parseU64(*body, "seed", c.seed, detail) ||
        !parseU64(*body, "index", c.index, detail) ||
        !parseInt(*body, "inChannels", c.inChannels, detail) ||
        !parseInt(*body, "inHw", c.inHw, detail) ||
        !parseInt(*body, "peWidth", c.peWidth, detail) ||
        !parseInt(*body, "outputDivision", c.outputDivision, detail) ||
        !parseInt(*body, "regsPerPe", c.regsPerPe, detail) ||
        !parseInt(*body, "bufferMb", c.bufferMb, detail) ||
        !parseBool(*body, "weightDoubleBuffering",
                   c.weightDoubleBuffering, detail) ||
        !parseReal(*body, "bandwidthGBps", c.bandwidthGBps, detail) ||
        !parseInt(*body, "batch", c.batch, detail) ||
        !parseReal(*body, "linkBandwidthGBps", c.link.bandwidthGBps,
                   detail) ||
        !parseInt(*body, "pipelineStages", c.pipelineStages, detail) ||
        !parseInt(*body, "dataParallel", c.dataParallel, detail) ||
        !parseInt(*body, "tensorShards", c.tensorShards, detail) ||
        !parseReal(*body, "servingRps", c.servingRps, detail) ||
        !parseBool(*body, "servingFixedBatch", c.servingFixedBatch,
                   detail) ||
        !parseInt(*body, "servingChips", c.servingChips, detail) ||
        !parseInt(*body, "servingMaxBatch", c.servingMaxBatch,
                  detail) ||
        !parseU64(*body, "servingSeed", c.servingSeed, detail) ||
        !parseReal(*body, "pulseDropRate", c.pulseDropRate, detail) ||
        !parseReal(*body, "clockSkewRate", c.clockSkewRate, detail) ||
        !parseReal(*body, "linkGlitchRate", c.linkGlitchRate,
                   detail) ||
        !parseU64(*body, "faultSeed", c.faultSeed, detail)) {
        return fail(detail);
    }
    int link_latency = 0;
    if (!parseInt(*body, "linkLatencyCycles", link_latency, detail))
        return fail(detail);
    c.link.latencyCycles = (std::uint64_t)link_latency;

    const obs::JsonValue *requests_member = body->find("servingRequests");
    if (!requests_member || !requests_member->isNumber())
        return fail("missing or mistyped field 'servingRequests'");
    requests = (std::uint64_t)requests_member->number;
    c.servingRequests = requests;

    const obs::JsonValue *layers = body->find("layers");
    if (!layers || !layers->isArray() || layers->array.empty())
        return fail("missing or empty layers array");
    for (const obs::JsonValue &entry : layers->array) {
        LayerSpec spec;
        if (!entry.isObject())
            return fail("layer entry is not an object");
        if (!parseLayerKind(entry.stringAt("kind"), spec.kind))
            return fail("unknown layer kind '" +
                        entry.stringAt("kind") + "'");
        int out_channels = 0, kernel = 0, stride = 0;
        if (!parseInt(entry, "outChannels", out_channels, detail) ||
            !parseInt(entry, "kernel", kernel, detail) ||
            !parseInt(entry, "stride", stride, detail)) {
            return fail(detail);
        }
        spec.outChannels = out_channels;
        spec.kernel = kernel;
        spec.stride = stride;
        c.layers.push_back(spec);
    }
    return repro;
}

bool
writeRepro(const Repro &repro, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << renderRepro(repro);
    return (bool)out;
}

std::optional<Repro>
loadRepro(const std::string &path, std::string *error)
{
    std::ifstream in(path);
    if (!in) {
        if (error)
            *error = "cannot open '" + path + "'";
        return std::nullopt;
    }
    std::ostringstream text;
    text << in.rdbuf();
    return parseRepro(text.str(), error);
}

} // namespace check
} // namespace supernpu
