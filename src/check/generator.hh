/**
 * @file
 * Seed-driven random scenario generator.
 *
 * Determinism contract: `generate(seed, index)` depends on nothing
 * but its two arguments — each case draws from its own
 * streamSeed(seed, index) RNG stream, so cases can be regenerated
 * individually (replay, shrinking) without replaying the run prefix,
 * and adding cases to a run never perturbs earlier ones.
 *
 * Every generated case is valid by construction: layer chains are
 * derived shapes (dnn::Network::check() cannot fire), design points
 * come from DesignSpaceExplorer::makeConfig's operable envelope, and
 * fault schedules are restricted to transient fault classes so the
 * metamorphic fault-subset oracle's monotonicity premise holds.
 */

#ifndef SUPERNPU_CHECK_GENERATOR_HH
#define SUPERNPU_CHECK_GENERATOR_HH

#include <cstdint>

#include "case.hh"

namespace supernpu {
namespace check {

/** Generate the `index`-th case of run `seed`. */
CheckCase generate(std::uint64_t seed, std::uint64_t index);

} // namespace check
} // namespace supernpu

#endif // SUPERNPU_CHECK_GENERATOR_HH
