/**
 * @file
 * Check driver implementation.
 */

#include "runner.hh"

#include <cstdint>
#include <sstream>
#include <vector>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "generator.hh"
#include "perf/profile.hh"
#include "repro.hh"
#include "shrinker.hh"

namespace supernpu {
namespace check {

namespace {

/**
 * Whether this oracle runs on this case index. The serving oracles
 * simulate hundreds of requests each, so they sample the stream
 * instead of running on every case; an explicit --oracle overrides
 * the sampling.
 */
bool
scheduled(const std::string &oracle, std::uint64_t index)
{
    if (oracle == "serving-bounds")
        return index % 4 == 0;
    if (oracle == "serving-determinism")
        return index % 8 == 0;
    return true;
}

/** expected-vs-observed judgement of one oracle run. */
bool
asExpected(Cook cook, const OracleOutcome &outcome)
{
    if (!outcome.applicable)
        return true;
    return cook == Cook::None ? outcome.passed : !outcome.passed;
}

/** FNV-1a over a 64-bit word, for the outcome fingerprint. */
void
mixHash(std::uint64_t &hash, std::uint64_t word)
{
    constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;
    for (int i = 0; i < 8; ++i) {
        hash ^= (word >> (8 * i)) & 0xff;
        hash *= kFnvPrime;
    }
}

/** FNV-1a over a string's bytes (length-delimited). */
void
mixHash(std::uint64_t &hash, const std::string &text)
{
    constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;
    mixHash(hash, (std::uint64_t)text.size());
    for (char c : text) {
        hash ^= (unsigned char)c;
        hash *= kFnvPrime;
    }
}

std::string
reproPath(const RunnerOptions &options, const std::string &oracle,
          const CheckCase &c)
{
    std::ostringstream path;
    path << options.reproDir << "/check-" << oracle << "-s" << c.seed
         << "-i" << c.index << ".json";
    return path.str();
}

/** Shrink (when asked) and persist one failing case. */
void
persistFailure(const RunnerOptions &options, const std::string &oracle,
               const CheckCase &failing,
               const sfq::CellLibrary &library)
{
    Repro repro;
    repro.oracle = oracle;
    repro.cook = options.cook;
    repro.checkCase = failing;
    if (options.shrinkFailures && options.cook == Cook::None) {
        const ShrinkResult shrunk =
            shrinkCase(failing, oracle, library, options.cook);
        inform("check: shrunk ", failing.describe(), " -> ",
               shrunk.shrunk.describe(), " (", shrunk.accepted,
               " moves, ", shrunk.attempts, " evaluations)");
        repro.checkCase = shrunk.shrunk;
    }
    const std::string path = reproPath(options, oracle,
                                       repro.checkCase);
    if (writeRepro(repro, path)) {
        inform("check: wrote repro ", path);
    } else {
        warn("check: cannot write repro ", path);
    }
}

int
replay(const RunnerOptions &options, const sfq::CellLibrary &library)
{
    std::string error;
    const auto repro = loadRepro(options.replayPath, &error);
    if (!repro.has_value()) {
        warn("check: bad repro ", options.replayPath, ": ", error);
        return 1;
    }
    const OracleOutcome outcome = runOracle(
        repro->oracle, repro->checkCase, library, repro->cook);
    if (!outcome.applicable) {
        warn("check: repro ", options.replayPath,
             " is not applicable to its oracle '", repro->oracle,
             "' — stale corpus entry");
        return 1;
    }
    if (!asExpected(repro->cook, outcome)) {
        if (repro->cook == Cook::None) {
            warn("check: repro ", options.replayPath, " FAILS '",
                 repro->oracle, "': ", outcome.detail);
        } else {
            warn("check: repro ", options.replayPath, ": oracle '",
                 repro->oracle,
                 "' PASSED a tampered observation — it has lost its "
                 "teeth");
        }
        return 1;
    }
    inform("check: replay ", options.replayPath, " ok (",
           repro->oracle, ", cook=", cookName(repro->cook), ")");
    return 0;
}

int
emitCorpus(const RunnerOptions &options,
           const sfq::CellLibrary &library)
{
    int missing = 0;
    for (const std::string &oracle : oracleNames()) {
        bool emitted = false;
        // Scan the seeded stream for the first case on which the
        // tampered oracle (correctly) fails, then shrink that.
        for (std::uint64_t index = 0;
             index < options.cases && !emitted; ++index) {
            const CheckCase c = generate(options.seed, index);
            const OracleOutcome outcome =
                runOracle(oracle, c, library, Cook::Tamper);
            if (!outcome.applicable || outcome.passed)
                continue;
            const ShrinkResult shrunk =
                shrinkCase(c, oracle, library, Cook::Tamper);
            Repro repro;
            repro.oracle = oracle;
            repro.cook = Cook::Tamper;
            repro.checkCase = shrunk.shrunk;
            const std::string path =
                options.emitCorpusDir + "/" + oracle + "-tamper.json";
            if (!writeRepro(repro, path)) {
                warn("check: cannot write ", path);
                return 1;
            }
            inform("check: corpus ", path, " (case i", c.index,
                   " shrunk by ", shrunk.accepted, " moves)");
            emitted = true;
        }
        if (!emitted) {
            warn("check: no applicable tamper case for '", oracle,
                 "' in ", options.cases, " cases");
            ++missing;
        }
    }
    return missing == 0 ? 0 : 1;
}

} // namespace

CheckSummary
runCases(const RunnerOptions &options, const sfq::CellLibrary &library,
         const FailureSink &on_failure)
{
    if (!options.oracle.empty() && !isOracle(options.oracle))
        fatal("unknown oracle '", options.oracle,
              "'; see `supernpu check --help`");

    std::vector<std::string> catalog;
    if (options.oracle.empty()) {
        catalog = oracleNames();
    } else {
        catalog.push_back(options.oracle);
    }

    // One case's generated spec plus every judged oracle outcome.
    // Cases are embarrassingly parallel: generate(seed, index) is a
    // pure function of its arguments and every runOracle builds its
    // own SimCache, so a task touches nothing another task reads.
    struct CaseResult
    {
        CheckCase c;
        std::vector<OracleOutcome> outcomes; ///< parallel to catalog
        std::vector<std::uint8_t> judged;    ///< 0: sampled out
    };

    ThreadPool pool(options.jobs < 0 ? 1 : options.jobs);
    const std::vector<CaseResult> results = pool.parallelMap(
        (std::size_t)options.cases, [&](std::size_t index) {
            perf::Scope case_scope("check.case");
            if (perf::enabled()) {
                static perf::Counter &cases =
                    perf::counter("check.cases");
                cases.add(1);
            }
            CaseResult result;
            result.c = generate(options.seed, (std::uint64_t)index);
            result.outcomes.resize(catalog.size());
            result.judged.assign(catalog.size(), 0);
            for (std::size_t o = 0; o < catalog.size(); ++o) {
                if (options.oracle.empty() &&
                    !scheduled(catalog[o], (std::uint64_t)index))
                    continue;
                perf::Scope oracle_scope("check.oracle");
                if (perf::enabled()) {
                    static perf::Counter &oracles =
                        perf::counter("check.oracles");
                    oracles.add(1);
                }
                result.outcomes[o] = runOracle(
                    catalog[o], result.c, library, options.cook);
                result.judged[o] = 1;
            }
            return result;
        });

    // Judge serially in case order: tallies, the outcome
    // fingerprint, and the failure sink's side effects (warns,
    // shrinks, repro files) land in exactly the order the serial
    // sweep produces, no matter how the tasks interleaved above.
    CheckSummary summary;
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (std::size_t index = 0; index < results.size(); ++index) {
        const CaseResult &result = results[index];
        for (std::size_t o = 0; o < catalog.size(); ++o) {
            if (!result.judged[o]) {
                ++summary.skipped;
                continue;
            }
            const OracleOutcome &outcome = result.outcomes[o];
            if (!outcome.applicable) {
                ++summary.skipped;
                continue;
            }
            ++summary.ran;
            mixHash(hash, (std::uint64_t)index);
            mixHash(hash, catalog[o]);
            mixHash(hash, (std::uint64_t)outcome.passed);
            mixHash(hash, outcome.detail);
            if (asExpected(options.cook, outcome))
                continue;
            ++summary.failures;
            if (on_failure)
                on_failure(catalog[o], result.c, outcome);
        }
    }
    summary.outcomeHash = hash;
    return summary;
}

int
runCheck(const RunnerOptions &options, const sfq::CellLibrary &library)
{
    if (!options.replayPath.empty())
        return replay(options, library);
    if (!options.emitCorpusDir.empty())
        return emitCorpus(options, library);

    const CheckSummary summary = runCases(
        options, library,
        [&](const std::string &oracle, const CheckCase &c,
            const OracleOutcome &outcome) {
            if (options.cook == Cook::None) {
                warn("check: '", oracle, "' FAILED on ",
                     c.describe(), ": ", outcome.detail);
                persistFailure(options, oracle, c, library);
            } else {
                warn("check: '", oracle,
                     "' passed a tampered observation on ",
                     c.describe(), " — it has lost its teeth");
            }
        });
    inform("check: seed ", options.seed, ": ", summary.ran,
           " oracle runs over ", options.cases, " cases (",
           summary.skipped, " skipped), ", summary.failures,
           " failure", summary.failures == 1 ? "" : "s");
    return summary.failures == 0 ? 0 : 1;
}

} // namespace check
} // namespace supernpu
