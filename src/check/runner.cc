/**
 * @file
 * Check driver implementation.
 */

#include "runner.hh"

#include <sstream>
#include <vector>

#include "common/logging.hh"
#include "generator.hh"
#include "repro.hh"
#include "shrinker.hh"

namespace supernpu {
namespace check {

namespace {

/**
 * Whether this oracle runs on this case index. The serving oracles
 * simulate hundreds of requests each, so they sample the stream
 * instead of running on every case; an explicit --oracle overrides
 * the sampling.
 */
bool
scheduled(const std::string &oracle, std::uint64_t index)
{
    if (oracle == "serving-bounds")
        return index % 4 == 0;
    if (oracle == "serving-determinism")
        return index % 8 == 0;
    return true;
}

/** expected-vs-observed judgement of one oracle run. */
bool
asExpected(Cook cook, const OracleOutcome &outcome)
{
    if (!outcome.applicable)
        return true;
    return cook == Cook::None ? outcome.passed : !outcome.passed;
}

std::string
reproPath(const RunnerOptions &options, const std::string &oracle,
          const CheckCase &c)
{
    std::ostringstream path;
    path << options.reproDir << "/check-" << oracle << "-s" << c.seed
         << "-i" << c.index << ".json";
    return path.str();
}

/** Shrink (when asked) and persist one failing case. */
void
persistFailure(const RunnerOptions &options, const std::string &oracle,
               const CheckCase &failing,
               const sfq::CellLibrary &library)
{
    Repro repro;
    repro.oracle = oracle;
    repro.cook = options.cook;
    repro.checkCase = failing;
    if (options.shrinkFailures && options.cook == Cook::None) {
        const ShrinkResult shrunk =
            shrinkCase(failing, oracle, library, options.cook);
        inform("check: shrunk ", failing.describe(), " -> ",
               shrunk.shrunk.describe(), " (", shrunk.accepted,
               " moves, ", shrunk.attempts, " evaluations)");
        repro.checkCase = shrunk.shrunk;
    }
    const std::string path = reproPath(options, oracle,
                                       repro.checkCase);
    if (writeRepro(repro, path)) {
        inform("check: wrote repro ", path);
    } else {
        warn("check: cannot write repro ", path);
    }
}

int
replay(const RunnerOptions &options, const sfq::CellLibrary &library)
{
    std::string error;
    const auto repro = loadRepro(options.replayPath, &error);
    if (!repro.has_value()) {
        warn("check: bad repro ", options.replayPath, ": ", error);
        return 1;
    }
    const OracleOutcome outcome = runOracle(
        repro->oracle, repro->checkCase, library, repro->cook);
    if (!outcome.applicable) {
        warn("check: repro ", options.replayPath,
             " is not applicable to its oracle '", repro->oracle,
             "' — stale corpus entry");
        return 1;
    }
    if (!asExpected(repro->cook, outcome)) {
        if (repro->cook == Cook::None) {
            warn("check: repro ", options.replayPath, " FAILS '",
                 repro->oracle, "': ", outcome.detail);
        } else {
            warn("check: repro ", options.replayPath, ": oracle '",
                 repro->oracle,
                 "' PASSED a tampered observation — it has lost its "
                 "teeth");
        }
        return 1;
    }
    inform("check: replay ", options.replayPath, " ok (",
           repro->oracle, ", cook=", cookName(repro->cook), ")");
    return 0;
}

int
emitCorpus(const RunnerOptions &options,
           const sfq::CellLibrary &library)
{
    int missing = 0;
    for (const std::string &oracle : oracleNames()) {
        bool emitted = false;
        // Scan the seeded stream for the first case on which the
        // tampered oracle (correctly) fails, then shrink that.
        for (std::uint64_t index = 0;
             index < options.cases && !emitted; ++index) {
            const CheckCase c = generate(options.seed, index);
            const OracleOutcome outcome =
                runOracle(oracle, c, library, Cook::Tamper);
            if (!outcome.applicable || outcome.passed)
                continue;
            const ShrinkResult shrunk =
                shrinkCase(c, oracle, library, Cook::Tamper);
            Repro repro;
            repro.oracle = oracle;
            repro.cook = Cook::Tamper;
            repro.checkCase = shrunk.shrunk;
            const std::string path =
                options.emitCorpusDir + "/" + oracle + "-tamper.json";
            if (!writeRepro(repro, path)) {
                warn("check: cannot write ", path);
                return 1;
            }
            inform("check: corpus ", path, " (case i", c.index,
                   " shrunk by ", shrunk.accepted, " moves)");
            emitted = true;
        }
        if (!emitted) {
            warn("check: no applicable tamper case for '", oracle,
                 "' in ", options.cases, " cases");
            ++missing;
        }
    }
    return missing == 0 ? 0 : 1;
}

} // namespace

int
runCheck(const RunnerOptions &options, const sfq::CellLibrary &library)
{
    if (!options.replayPath.empty())
        return replay(options, library);
    if (!options.emitCorpusDir.empty())
        return emitCorpus(options, library);
    if (!options.oracle.empty() && !isOracle(options.oracle))
        fatal("unknown oracle '", options.oracle,
              "'; see `supernpu check --help`");

    std::vector<std::string> catalog;
    if (options.oracle.empty()) {
        catalog = oracleNames();
    } else {
        catalog.push_back(options.oracle);
    }

    std::uint64_t ran = 0, skipped = 0, failures = 0;
    for (std::uint64_t index = 0; index < options.cases; ++index) {
        const CheckCase c = generate(options.seed, index);
        for (const std::string &oracle : catalog) {
            if (options.oracle.empty() && !scheduled(oracle, index)) {
                ++skipped;
                continue;
            }
            const OracleOutcome outcome =
                runOracle(oracle, c, library, options.cook);
            if (!outcome.applicable) {
                ++skipped;
                continue;
            }
            ++ran;
            if (asExpected(options.cook, outcome))
                continue;
            ++failures;
            if (options.cook == Cook::None) {
                warn("check: '", oracle, "' FAILED on ",
                     c.describe(), ": ", outcome.detail);
                persistFailure(options, oracle, c, library);
            } else {
                warn("check: '", oracle,
                     "' passed a tampered observation on ",
                     c.describe(), " — it has lost its teeth");
            }
        }
    }
    inform("check: seed ", options.seed, ": ", ran, " oracle runs "
           "over ", options.cases, " cases (", skipped, " skipped), ",
           failures, " failure", failures == 1 ? "" : "s");
    return failures == 0 ? 0 : 1;
}

} // namespace check
} // namespace supernpu
