/**
 * @file
 * The genotype of one differential-testing case.
 *
 * A CheckCase is a compact, valid-by-construction *spec* of a test
 * scenario — network shape recipe, design-point knobs, execution
 * batch, parallelism degrees, serving scenario, fault rates — not
 * the built artifacts themselves. Oracles rebuild the concrete
 * dnn::Network / estimator::NpuConfig from the spec on demand.
 *
 * Why a genotype and not a phenotype: dnn::Network::check() panics
 * (aborts) on inconsistent layer chains, so a shrinker that mutated
 * raw layers could crash the process instead of producing a smaller
 * failing input. Every mutation of a CheckCase instead re-derives
 * the layer chain from the spec, so any shrunk candidate is a
 * network the simulators accept by construction.
 */

#ifndef SUPERNPU_CHECK_CASE_HH
#define SUPERNPU_CHECK_CASE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "dnn/layer.hh"
#include "estimator/npu_estimator.hh"
#include "partition/link_model.hh"

namespace supernpu {
namespace check {

/** Recipe for one generated layer; shapes chain from the previous. */
struct LayerSpec
{
    dnn::LayerKind kind = dnn::LayerKind::Conv;
    /** Output channels (conv / fully-connected; depthwise keeps C). */
    int outChannels = 8;
    /** Square kernel size (conv only; depthwise is fixed at 3). */
    int kernel = 3;
    int stride = 1;
};

/** One generated scenario; see the file comment. */
struct CheckCase
{
    // --- provenance -------------------------------------------------
    std::uint64_t seed = 0;  ///< base seed of the generating run
    std::uint64_t index = 0; ///< streamSeed stream index within it

    // --- network genotype -------------------------------------------
    int inChannels = 3;
    int inHw = 16; ///< square input feature map side
    std::vector<LayerSpec> layers;

    // --- design point -----------------------------------------------
    int peWidth = 64;
    int outputDivision = 64;
    int regsPerPe = 1;
    int bufferMb = 46;
    bool weightDoubleBuffering = false;
    double bandwidthGBps = 300.0;

    /** Batch size of the direct / pipeline / shard paths. */
    int batch = 1;

    // --- parallelism ------------------------------------------------
    partition::LinkConfig link;
    int pipelineStages = 1;
    int dataParallel = 1;
    int tensorShards = 1;

    // --- serving scenario -------------------------------------------
    std::uint64_t servingRequests = 400;
    int servingChips = 1;
    double servingRps = 20000.0;
    bool servingFixedBatch = false;
    int servingMaxBatch = 2;
    std::uint64_t servingSeed = 1;

    // --- transient fault scenario (fault-subset oracle) -------------
    double pulseDropRate = 0.0;
    double clockSkewRate = 0.0;
    double linkGlitchRate = 0.0;
    std::uint64_t faultSeed = 1;

    /** Build the concrete network (chained shapes; always valid). */
    dnn::Network network() const;

    /** Build the concrete design point from the knobs. */
    estimator::NpuConfig config() const;

    /** One-line summary for progress and failure messages. */
    std::string describe() const;
};

} // namespace check
} // namespace supernpu

#endif // SUPERNPU_CHECK_CASE_HH
