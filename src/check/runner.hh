/**
 * @file
 * The check driver behind `supernpu check`: generate N seeded cases,
 * run the oracle catalog over each, shrink and serialize any failure
 * as a replayable repro, and replay committed repro files.
 */

#ifndef SUPERNPU_CHECK_RUNNER_HH
#define SUPERNPU_CHECK_RUNNER_HH

#include <cstdint>
#include <string>

#include "oracles.hh"

namespace supernpu {
namespace check {

/** Everything `supernpu check` can ask for. */
struct RunnerOptions
{
    std::uint64_t seed = 9;
    std::uint64_t cases = 100;

    /** Replay one repro file instead of generating cases. */
    std::string replayPath;

    /** Shrink failures before writing repros (generate mode). */
    bool shrinkFailures = true;
    /** Where failure repros land (generate mode). */
    std::string reproDir = ".";

    /**
     * Cook every oracle run. Under Cook::Tamper the pass criterion
     * inverts: an oracle that *passes* on a sabotaged observation
     * has lost its teeth and is reported as the failure.
     */
    Cook cook = Cook::None;

    /** Restrict to one oracle (otherwise the whole catalog). */
    std::string oracle;

    /**
     * Emit the self-test corpus: for every oracle, find its first
     * applicable case where Cook::Tamper fails (the healthy state),
     * shrink it, and write `<dir>/<oracle>-tamper.json`.
     */
    std::string emitCorpusDir;
};

/**
 * Run per the options. Returns the process exit code: 0 when every
 * oracle behaved as expected, 1 otherwise.
 */
int runCheck(const RunnerOptions &options,
             const sfq::CellLibrary &library);

} // namespace check
} // namespace supernpu

#endif // SUPERNPU_CHECK_RUNNER_HH
