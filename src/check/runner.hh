/**
 * @file
 * The check driver behind `supernpu check`: generate N seeded cases,
 * run the oracle catalog over each, shrink and serialize any failure
 * as a replayable repro, and replay committed repro files.
 */

#ifndef SUPERNPU_CHECK_RUNNER_HH
#define SUPERNPU_CHECK_RUNNER_HH

#include <cstdint>
#include <functional>
#include <string>

#include "oracles.hh"

namespace supernpu {
namespace check {

/** Everything `supernpu check` can ask for. */
struct RunnerOptions
{
    std::uint64_t seed = 9;
    std::uint64_t cases = 100;

    /** Replay one repro file instead of generating cases. */
    std::string replayPath;

    /** Shrink failures before writing repros (generate mode). */
    bool shrinkFailures = true;
    /** Where failure repros land (generate mode). */
    std::string reproDir = ".";

    /**
     * Cook every oracle run. Under Cook::Tamper the pass criterion
     * inverts: an oracle that *passes* on a sabotaged observation
     * has lost its teeth and is reported as the failure.
     */
    Cook cook = Cook::None;

    /** Restrict to one oracle (otherwise the whole catalog). */
    std::string oracle;

    /**
     * Emit the self-test corpus: for every oracle, find its first
     * applicable case where Cook::Tamper fails (the healthy state),
     * shrink it, and write `<dir>/<oracle>-tamper.json`.
     */
    std::string emitCorpusDir;

    /**
     * Pool parallelism of the generate-mode sweep including the
     * calling thread; <= 1 runs serially inline, 0 means every
     * hardware thread. Cases regenerate from streamSeed(seed, index)
     * and each oracle run builds its own SimCache, so fanning them
     * out changes nothing observable: tallies, failure reports, and
     * repro files are byte-identical at any value.
     */
    int jobs = 1;
};

/** Aggregate tallies of one generate-mode sweep. */
struct CheckSummary
{
    std::uint64_t ran = 0;      ///< applicable oracle runs judged
    std::uint64_t skipped = 0;  ///< sampled out or inapplicable
    std::uint64_t failures = 0; ///< runs that defied the cook
    /**
     * FNV-1a fingerprint of every judged outcome in case order:
     * (case index, oracle, applicable, passed, detail). A pure
     * function of (seed, cases, oracle filter, cook) — never of
     * `jobs` — which is what the check_fuzz bench case pins.
     */
    std::uint64_t outcomeHash = 0;
};

/**
 * Serial, case-order notification of one failure (an oracle run
 * defying the cook): (oracle, generated case, outcome).
 */
using FailureSink =
    std::function<void(const std::string &, const CheckCase &,
                       const OracleOutcome &)>;

/**
 * The generate-mode sweep behind runCheck, reusable by the bench
 * harness: run the (possibly filtered) oracle catalog over `cases`
 * seeded cases, fanned across options.jobs pool threads, and judge
 * outcomes serially in case order. `on_failure` (optional) fires in
 * that serial pass, so its side effects — warns, repro files — land
 * in exactly the order the serial sweep produces.
 */
CheckSummary runCases(const RunnerOptions &options,
                      const sfq::CellLibrary &library,
                      const FailureSink &on_failure = nullptr);

/**
 * Run per the options. Returns the process exit code: 0 when every
 * oracle behaved as expected, 1 otherwise.
 */
int runCheck(const RunnerOptions &options,
             const sfq::CellLibrary &library);

} // namespace check
} // namespace supernpu

#endif // SUPERNPU_CHECK_RUNNER_HH
