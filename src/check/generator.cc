/**
 * @file
 * Scenario generator implementation.
 */

#include "generator.hh"

#include "common/parallel.hh"
#include "common/rng.hh"

namespace supernpu {
namespace check {

namespace {

/**
 * Width → total buffer MB pairing from the explorer's Fig. 21
 * resource-balancing defaults. Width 256 is excluded: its design
 * points are slow to simulate and add no oracle coverage beyond the
 * smaller arrays.
 */
struct DesignEnvelope
{
    int width;
    int bufferMb;
};

const DesignEnvelope kEnvelopes[] = {
    {32, 50},
    {64, 46},
    {128, 38},
};

const int kDivisions[] = {16, 64};
const int kRegs[] = {1, 4};
const double kBandwidthsGBps[] = {150.0, 300.0, 600.0};

} // namespace

CheckCase
generate(std::uint64_t seed, std::uint64_t index)
{
    Rng rng(streamSeed(seed, index));
    CheckCase c;
    c.seed = seed;
    c.index = index;

    // --- network ----------------------------------------------------
    c.inChannels = (int)rng.uniformInt(3, 16);
    c.inHw = (int)rng.uniformInt(8, 32);
    const int layer_count = (int)rng.uniformInt(1, 5);
    int strided = 0;
    // Track the flowing feature-map side so stride-2 layers never
    // shrink it below the builders' minimum.
    int hw = c.inHw;
    for (int i = 0; i < layer_count; ++i) {
        LayerSpec spec;
        const bool last = i + 1 == layer_count;
        const int roll = (int)rng.uniformInt(0, 9);
        if (last && roll < 3) {
            spec.kind = dnn::LayerKind::FullyConnected;
            spec.outChannels = (int)rng.uniformInt(4, 64);
            spec.kernel = 1;
            spec.stride = 1;
            c.layers.push_back(spec);
            continue;
        }
        if (roll < 2) {
            spec.kind = dnn::LayerKind::DepthwiseConv;
            spec.kernel = 3;
        } else {
            spec.kind = dnn::LayerKind::Conv;
            spec.outChannels = (int)rng.uniformInt(4, 64);
            spec.kernel = rng.uniformInt(0, 3) == 0 ? 1 : 3;
        }
        spec.stride = 1;
        if (strided < 2 && hw >= 8 && rng.uniformInt(0, 3) == 0) {
            spec.stride = 2;
            ++strided;
            hw = (hw + 1) / 2;
        }
        c.layers.push_back(spec);
    }

    // --- design point -----------------------------------------------
    const DesignEnvelope &env =
        kEnvelopes[rng.uniformInt(0, 2)];
    c.peWidth = env.width;
    c.bufferMb = env.bufferMb;
    c.outputDivision = kDivisions[rng.uniformInt(0, 1)];
    c.regsPerPe = kRegs[rng.uniformInt(0, 1)];
    c.weightDoubleBuffering = rng.uniformInt(0, 1) == 1;
    c.bandwidthGBps = kBandwidthsGBps[rng.uniformInt(0, 2)];

    c.batch = (int)rng.uniformInt(1, 4);

    // --- parallelism ------------------------------------------------
    c.link.bandwidthGBps = rng.uniformInt(0, 1) == 0 ? 150.0 : 300.0;
    c.link.latencyCycles = (int)rng.uniformInt(16, 256);
    const int max_stages =
        (int)std::min<std::int64_t>(3, (std::int64_t)c.layers.size());
    c.pipelineStages = (int)rng.uniformInt(1, max_stages);
    c.dataParallel = (int)rng.uniformInt(1, 2);
    c.tensorShards = (int)rng.uniformInt(1, 2);

    // --- serving ----------------------------------------------------
    c.servingRequests = (std::uint64_t)rng.uniformInt(200, 800);
    c.servingChips = (int)rng.uniformInt(1, 3);
    c.servingRps = rng.uniform(5000.0, 50000.0);
    c.servingFixedBatch = rng.uniformInt(0, 1) == 1;
    c.servingMaxBatch = (int)rng.uniformInt(1, 4);
    c.servingSeed = rng.next();

    // --- faults (transient classes only; see file comment) ----------
    c.pulseDropRate = rng.uniform(0.0, 2000.0);
    c.clockSkewRate = rng.uniform(0.0, 500.0);
    c.linkGlitchRate = rng.uniform(0.0, 500.0);
    c.faultSeed = rng.next();

    return c;
}

} // namespace check
} // namespace supernpu
