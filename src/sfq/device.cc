/**
 * @file
 * DeviceConfig implementation.
 */

#include "device.hh"

#include <algorithm>

#include "common/logging.hh"

namespace supernpu {
namespace sfq {

namespace {
/** Flux quantum, Wb (duplicated from jsim to keep sfq standalone). */
constexpr double phi0 = 2.067833848e-15;
/** Below this feature size the linear frequency scaling law stops. */
constexpr double scalingFloorUm = 0.2;
} // namespace

const char *
technologyName(Technology tech)
{
    switch (tech) {
      case Technology::RSFQ:
        return "RSFQ";
      case Technology::ERSFQ:
        return "ERSFQ";
    }
    panic("unknown technology");
}

double
DeviceConfig::timingScale() const
{
    SUPERNPU_ASSERT(featureSizeUm > 0, "bad feature size");
    // Delay shrinks linearly with feature size until 0.2 um, then
    // saturates (Kadin et al. scaling rule referenced by the paper).
    const double effective = std::max(featureSizeUm, scalingFloorUm);
    return effective / 1.0;
}

double
DeviceConfig::areaScale() const
{
    SUPERNPU_ASSERT(featureSizeUm > 0, "bad feature size");
    return featureSizeUm * featureSizeUm;
}

double
DeviceConfig::staticPowerPerJj() const
{
    if (technology == Technology::ERSFQ)
        return 0.0;
    return biasVoltage * biasCurrentPerJj;
}

double
DeviceConfig::switchEnergyFactor() const
{
    return technology == Technology::ERSFQ ? 2.0 : 1.0;
}

double
DeviceConfig::energyPerJjSwitch() const
{
    return unitCriticalCurrent * phi0;
}

} // namespace sfq
} // namespace supernpu
