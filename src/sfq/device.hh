/**
 * @file
 * Device-level configuration for the SFQ cell library.
 *
 * Mirrors the "device parameters" input layer of the paper's SFQ-NPU
 * estimator (Fig. 10): fabrication feature size, bias conditions, and
 * the RSFQ / ERSFQ technology selector.
 *
 * RSFQ supplies each junction's DC bias through a resistor from a
 * 2.5 mV rail, dissipating V_bias * I_bias per junction statically.
 * ERSFQ replaces the bias resistors with bias junctions + inductors:
 * zero static power, but the extra junctions double the switching
 * energy (Section IV-A1 of the paper).
 */

#ifndef SUPERNPU_SFQ_DEVICE_HH
#define SUPERNPU_SFQ_DEVICE_HH

namespace supernpu {
namespace sfq {

/** Bias-supply technology. */
enum class Technology
{
    RSFQ,  ///< resistor biasing: static power, 1x switch energy
    ERSFQ, ///< junction biasing: zero static power, 2x switch energy
};

/** Name of a technology for report output. */
const char *technologyName(Technology tech);

/** Fabrication and biasing parameters. */
struct DeviceConfig
{
    Technology technology = Technology::RSFQ;

    /** Process feature size in micrometers (AIST 1.0 um default). */
    double featureSizeUm = 1.0;

    /** DC bias rail voltage, volts (RSFQ resistor biasing). */
    double biasVoltage = 2.5e-3;

    /** Average DC bias current per junction, amperes. */
    double biasCurrentPerJj = 70e-6;

    /** Critical current of a unit junction, amperes. */
    double unitCriticalCurrent = 1.0e-4;

    /**
     * Gate-level timing/area scale factor relative to the 1.0 um
     * library. Frequency scales with the inverse of the feature size
     * down to 0.2 um (Kadin et al., as cited by the paper); area
     * scales with the square of the feature size.
     */
    double timingScale() const;

    /** Area scale factor relative to the 1.0 um library. */
    double areaScale() const;

    /** Static power of one biased junction (zero for ERSFQ), watts. */
    double staticPowerPerJj() const;

    /**
     * Multiplier applied to switching energy: 1 for RSFQ, 2 for
     * ERSFQ (bias junctions switch along with logic junctions).
     */
    double switchEnergyFactor() const;

    /** Energy of a single junction 2-pi switch (Ic * Phi0), joules. */
    double energyPerJjSwitch() const;
};

} // namespace sfq
} // namespace supernpu

#endif // SUPERNPU_SFQ_DEVICE_HH
