/**
 * @file
 * SFQ clock distribution network model.
 *
 * Every clocked SFQ gate consumes one clock pulse per cycle, so the
 * clock source fans out through a binary splitter tree to every gate
 * in the design — a major structural difference from CMOS clock
 * distribution (there is no "wire" that many loads can share; each
 * branch is an active splitter). This model sizes that tree: JJ
 * count, per-cycle switching energy (the clock network fires every
 * cycle regardless of data), insertion delay, and the accumulated
 * skew between leaves, which feeds the Eq. (1) delta_t budget.
 */

#ifndef SUPERNPU_SFQ_CLOCK_TREE_HH
#define SUPERNPU_SFQ_CLOCK_TREE_HH

#include <cstdint>

#include "cells.hh"

namespace supernpu {
namespace sfq {

/** Splitter-tree clock network for a given number of sinks. */
class ClockTreeModel
{
  public:
    /**
     * @param lib The scaled cell library.
     * @param sinks Clocked gates to reach (one leaf each).
     * @param jtl_per_branch JTL stages between consecutive splitter
     *        levels (routing distance).
     */
    ClockTreeModel(const CellLibrary &lib, std::uint64_t sinks,
                   double jtl_per_branch = 2.0);

    /** Tree depth in splitter levels. */
    int depth() const;

    /** Splitters in the tree (sinks - 1 for a binary tree). */
    std::uint64_t splitterCount() const;

    /** Total junction count (splitters + branch JTLs). */
    std::uint64_t jjCount() const;

    /** Static power of the network, watts. */
    double staticPower() const;

    /**
     * Energy of one clock tick: every splitter and JTL in the tree
     * switches once per cycle, data or no data. Joules.
     */
    double tickEnergy() const;

    /** Dynamic power at a clock frequency, watts. */
    double dynamicPower(double frequency_ghz) const;

    /** Source-to-leaf insertion delay, ps. */
    double insertionDelayPs() const;

    /**
     * Worst-case leaf-to-leaf skew, ps: per-level device mismatch
     * accumulates as a random walk over the tree depth.
     */
    double accumulatedSkewPs() const;

  private:
    const CellLibrary &_lib;
    std::uint64_t _sinks;
    double _jtlPerBranch;
};

} // namespace sfq
} // namespace supernpu

#endif // SUPERNPU_SFQ_CLOCK_TREE_HH
