/**
 * @file
 * The paper's Eq. (1) frequency model and the two clocking schemes.
 *
 * SFQ circuits are gate-level pipelined: every clocked gate latches.
 * The clock cycle time (CCT) of a driver->receiver gate pair is
 *
 *     CCT = SetupTime + max(HoldTime, delta_t)
 *     delta_t = tau_data - tau_clock
 *
 * where tau_data is the data propagation delay from the driver's
 * clock tap to the receiver's data input and tau_clock is the clock
 * propagation delay between the two gates' clock taps (Fig. 11).
 *
 * Concurrent-flow clocking routes the clock in the direction of data
 * flow, so tau_clock subtracts from tau_data; with deliberate clock
 * skewing delta_t can approach a small residual. It cannot be used
 * around feedback loops (the clock would have to travel backwards).
 *
 * Counter-flow clocking routes the clock against the data flow: the
 * feedback delay is hidden, but the forward data delay and the clock
 * segment delay now both add to delta_t, halving the achievable
 * frequency (Fig. 7).
 */

#ifndef SUPERNPU_SFQ_CLOCKING_HH
#define SUPERNPU_SFQ_CLOCKING_HH

#include <string>
#include <vector>

#include "cells.hh"

namespace supernpu {
namespace sfq {

/** Clock distribution scheme for a pipeline segment. */
enum class ClockScheme
{
    ConcurrentFlow, ///< clock flows with data (feed-forward only)
    CounterFlow,    ///< clock flows against data (feedback-safe)
};

/** Name of a clocking scheme for report output. */
const char *clockSchemeName(ClockScheme scheme);

/**
 * A driver->receiver timing arc inside (or between) units. Delays
 * are picoseconds at the library's scaled node.
 */
struct GatePair
{
    std::string name;         ///< e.g. "AND->XOR (carry merge)"
    double driverDelay = 0.0; ///< driver clock-to-output, ps
    double dataWireDelay = 0.0; ///< async cells + wiring on data path
    double clockPathDelay = 0.0; ///< clock segment between the taps
    double setupTime = 0.0;   ///< receiver setup, ps
    double holdTime = 0.0;    ///< receiver hold, ps
    ClockScheme scheme = ClockScheme::ConcurrentFlow;
};

/** Data/clock arrival difference delta_t for a pair, ps. */
double pairDeltaT(const GatePair &pair);

/** Clock cycle time of a pair per Eq. (1), ps. */
double pairCct(const GatePair &pair);

/** Maximum clock frequency of a pair, GHz. */
double pairFrequencyGhz(const GatePair &pair);

/**
 * Frequency of a unit: the minimum pair frequency over its timing
 * arcs. Panics on an empty list.
 */
double minFrequencyGhz(const std::vector<GatePair> &pairs);

/** The pair that limits a unit's frequency (ties: first). */
const GatePair &criticalPair(const std::vector<GatePair> &pairs);

/**
 * Apply clock skewing to a concurrent-flow pair: lengthen the clock
 * segment toward the data path delay, canceling `fraction` in [0, 1]
 * of the positive part of delta_t. Counter-flow pairs are returned
 * unchanged (skewing cannot help when the clock runs backwards).
 */
GatePair withClockSkew(GatePair pair, double fraction);

/**
 * Build a gate pair from two library cells: `via` lists asynchronous
 * elements (splitters, JTLs, mergers) on the data path.
 */
GatePair makePair(const CellLibrary &lib, const std::string &name,
                  GateKind driver, GateKind receiver,
                  const std::vector<GateKind> &via,
                  double clock_path_ps, ClockScheme scheme);

} // namespace sfq
} // namespace supernpu

#endif // SUPERNPU_SFQ_CLOCKING_HH
