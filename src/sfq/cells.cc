/**
 * @file
 * Cell library tables and scaling.
 */

#include "cells.hh"

#include "common/logging.hh"
#include "common/units.hh"

namespace supernpu {
namespace sfq {

namespace {

/**
 * Native 1.0 um RSFQ table. AND and XOR rows are the paper's
 * published anchors; their bias-JJ equivalents are back-solved from
 * the published static powers (3.6 uW / 2.5 mV / 70 uA = 20.57).
 * Other rows are reconstructions from CONNECT-class Nb cell
 * libraries, tuned so that composite units match the paper's
 * unit-level frequencies and powers.
 */
const GateParams baseTable[(std::size_t)GateKind::COUNT] = {
    // delay  setup  hold  jj  biasEq  accessAj
    {  4.6,   2.4,   1.0,   6,  6.0,   0.9 },  // DFF
    {  8.3,   2.4,   1.0,  20, 20.57,  1.4 },  // AND (anchor)
    {  6.0,   2.4,   1.0,  12, 12.0,   1.2 },  // OR
    {  6.5,   2.4,   1.0,  17, 17.14,  1.4 },  // XOR (anchor)
    {  7.2,   2.4,   1.0,  10, 10.0,   1.1 },  // NOT
    {  4.9,   2.4,   1.0,   6,  6.0,   0.8 },  // TFF
    {  5.8,   2.4,   1.0,  11, 11.0,   1.1 },  // NDRO
    {  5.4,   2.4,   1.0,   9,  9.0,   1.0 },  // DFF_BYPASS
    {  5.0,   2.4,   1.0,   6,  6.0,   0.9 },  // DCSFQ input converter
    {  9.0,   2.4,   1.0,  60, 320.0,  6.0 },  // SFQDC output amplifier
    {  0.0,   0.0,   0.0, 200, 200.0, 20.0 },  // CLKGEN ring oscillator
    {  1.6,   0.0,   0.0,   3,  3.0,   0.6 },  // SPLITTER (async)
    {  2.3,   0.0,   0.0,   7,  7.0,   0.8 },  // MERGER (async)
    {  0.5,   0.0,   0.0,   2,  2.0,   0.4 },  // JTL stage (async)
};

/**
 * Layout area per junction at 1.0 um, wiring included, um^2.
 * The logic and memory densities are jointly calibrated so the
 * Table I 28 nm-equivalent NPU areas land near the paper's
 * ~283-299 mm^2 across all four configurations (the memory arrays
 * tile ~3x denser than random logic).
 */
constexpr double logicAreaPerJjUm2At1um = 199.0;
constexpr double memoryAreaPerJjUm2At1um = 61.6;

} // namespace

const char *
gateName(GateKind kind)
{
    switch (kind) {
      case GateKind::DFF: return "DFF";
      case GateKind::AND: return "AND";
      case GateKind::OR: return "OR";
      case GateKind::XOR: return "XOR";
      case GateKind::NOT: return "NOT";
      case GateKind::TFF: return "TFF";
      case GateKind::NDRO: return "NDRO";
      case GateKind::DFF_BYPASS: return "DFF_BYPASS";
      case GateKind::DCSFQ: return "DCSFQ";
      case GateKind::SFQDC: return "SFQDC";
      case GateKind::CLKGEN: return "CLKGEN";
      case GateKind::SPLITTER: return "SPLITTER";
      case GateKind::MERGER: return "MERGER";
      case GateKind::JTL: return "JTL";
      case GateKind::COUNT: break;
    }
    panic("unknown gate kind");
}

CellLibrary::CellLibrary(const DeviceConfig &device)
    : _device(device)
{
    const double timing = device.timingScale();
    for (std::size_t i = 0; i < (std::size_t)GateKind::COUNT; ++i) {
        GateParams params = baseTable[i];
        params.delay *= timing;
        params.setupTime *= timing;
        params.holdTime *= timing;
        _gates[i] = params;
    }
}

const GateParams &
CellLibrary::gate(GateKind kind) const
{
    SUPERNPU_ASSERT(kind != GateKind::COUNT, "bad gate kind");
    return _gates[(std::size_t)kind];
}

double
CellLibrary::staticPower(GateKind kind) const
{
    return gate(kind).biasJjEquivalent * _device.staticPowerPerJj();
}

double
CellLibrary::accessEnergy(GateKind kind) const
{
    return units::ajToJ(gate(kind).accessEnergyAj) *
           _device.switchEnergyFactor();
}

double
CellLibrary::area(GateKind kind) const
{
    return (double)gate(kind).jjCount * areaPerJj();
}

double
CellLibrary::staticPowerPerJj() const
{
    return _device.staticPowerPerJj();
}

double
CellLibrary::areaPerJj() const
{
    // um^2 -> mm^2 is 1e-6.
    return logicAreaPerJjUm2At1um * 1e-6 * _device.areaScale();
}

double
CellLibrary::memoryAreaPerJj() const
{
    return memoryAreaPerJjUm2At1um * 1e-6 * _device.areaScale();
}

} // namespace sfq
} // namespace supernpu
