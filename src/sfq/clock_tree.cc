/**
 * @file
 * Clock-tree model implementation.
 */

#include "clock_tree.hh"

#include <cmath>

#include "common/logging.hh"

namespace supernpu {
namespace sfq {

namespace {
/** Per-level timing mismatch (device spread), ps at 1.0 um. */
constexpr double perLevelMismatchPs = 0.25;
} // namespace

ClockTreeModel::ClockTreeModel(const CellLibrary &lib,
                               std::uint64_t sinks,
                               double jtl_per_branch)
    : _lib(lib), _sinks(sinks), _jtlPerBranch(jtl_per_branch)
{
    SUPERNPU_ASSERT(sinks >= 1, "clock tree needs at least one sink");
    SUPERNPU_ASSERT(jtl_per_branch >= 0, "bad branch length");
}

int
ClockTreeModel::depth() const
{
    if (_sinks <= 1)
        return 0;
    return (int)std::ceil(std::log2((double)_sinks));
}

std::uint64_t
ClockTreeModel::splitterCount() const
{
    return _sinks - 1;
}

std::uint64_t
ClockTreeModel::jjCount() const
{
    const std::uint64_t splitter_jj =
        splitterCount() * _lib.gate(GateKind::SPLITTER).jjCount;
    // Each splitter output drives a JTL run to the next level.
    const double jtl_jj = (double)(2 * splitterCount()) *
                          _jtlPerBranch *
                          (double)_lib.gate(GateKind::JTL).jjCount;
    return splitter_jj + (std::uint64_t)jtl_jj;
}

double
ClockTreeModel::staticPower() const
{
    return (double)jjCount() * _lib.staticPowerPerJj();
}

double
ClockTreeModel::tickEnergy() const
{
    const double splitter_energy =
        (double)splitterCount() * _lib.accessEnergy(GateKind::SPLITTER);
    const double jtl_energy = (double)(2 * splitterCount()) *
                              _jtlPerBranch *
                              _lib.accessEnergy(GateKind::JTL);
    return splitter_energy + jtl_energy;
}

double
ClockTreeModel::dynamicPower(double frequency_ghz) const
{
    SUPERNPU_ASSERT(frequency_ghz > 0, "bad frequency");
    return tickEnergy() * frequency_ghz * 1e9;
}

double
ClockTreeModel::insertionDelayPs() const
{
    const double per_level =
        _lib.gate(GateKind::SPLITTER).delay +
        _jtlPerBranch * _lib.gate(GateKind::JTL).delay;
    return per_level * (double)depth();
}

double
ClockTreeModel::accumulatedSkewPs() const
{
    // Independent per-level mismatches between two leaf paths add in
    // quadrature over 2 * depth branch segments.
    const double scaled =
        perLevelMismatchPs * _lib.device().timingScale();
    return scaled * std::sqrt(2.0 * (double)depth());
}

} // namespace sfq
} // namespace supernpu
