/**
 * @file
 * Reconstructed RSFQ standard-cell library for the AIST 1.0 um
 * process (the paper's Nb 9-layer process, Nagasawa et al.).
 *
 * The paper publishes two anchor cells extracted with JSIM:
 *
 *     gate   delay    static power   dynamic energy
 *     AND    8.3 ps   3.6 uW         1.4 aJ
 *     XOR    6.5 ps   3.0 uW         1.4 aJ
 *
 * plus the process-wide bias conditions (2.5 mV, 70 uA per JJ). The
 * remaining cells are reconstructed from published RSFQ cell
 * libraries for comparable Nb processes, scaled so that the composite
 * units reproduce the paper's unit-level results (52.6 GHz NPU clock,
 * 66/30 GHz full adder, 133/71 GHz shift register; see
 * tests/test_sfq.cc and bench/fig07_feedback).
 */

#ifndef SUPERNPU_SFQ_CELLS_HH
#define SUPERNPU_SFQ_CELLS_HH

#include <cstddef>

#include "device.hh"

namespace supernpu {
namespace sfq {

/** Cell kinds modeled by the library. */
enum class GateKind
{
    DFF,      ///< clocked delay flip-flop (also the shift-reg bit)
    AND,      ///< clocked 2-input AND
    OR,       ///< clocked 2-input OR
    XOR,      ///< clocked 2-input XOR
    NOT,      ///< clocked inverter
    TFF,      ///< toggle flip-flop (frequency divider)
    NDRO,     ///< non-destructive readout cell (register bit)
    DFF_BYPASS, ///< DAU special DFF with a bypass path
    DCSFQ,    ///< DC-to-SFQ input converter (chip input pad)
    SFQDC,    ///< SFQ-to-DC output amplifier (chip output pad)
    CLKGEN,   ///< on-chip clock generator (JJ ring oscillator)
    SPLITTER, ///< asynchronous 1-to-2 pulse splitter
    MERGER,   ///< asynchronous confluence buffer (2-to-1)
    JTL,      ///< asynchronous transmission-line stage
    COUNT,    ///< number of kinds (bookkeeping)
};

/** Human-readable gate name. */
const char *gateName(GateKind kind);

/** Per-gate parameters at the library's native 1.0 um node. */
struct GateParams
{
    /** Clock-to-output delay for clocked cells, input-to-output for
     *  asynchronous cells (ps). */
    double delay = 0.0;
    /** Data setup time before the clock pulse (ps); 0 when async. */
    double setupTime = 0.0;
    /** Data hold requirement after the clock pulse (ps). */
    double holdTime = 0.0;
    /** Physical junction count (area accounting). */
    std::size_t jjCount = 0;
    /**
     * Effective number of biased junctions for static power; may be
     * fractional where the paper's published static power implies a
     * non-integer multiple of the per-JJ bias.
     */
    double biasJjEquivalent = 0.0;
    /** Average dynamic energy per access at RSFQ biasing (aJ). */
    double accessEnergyAj = 0.0;
};

/**
 * The cell library: gate parameters after applying the device
 * config's technology and feature-size scaling.
 */
class CellLibrary
{
  public:
    /** Build the library for a device configuration. */
    explicit CellLibrary(const DeviceConfig &device);

    /** Scaled parameters of one gate kind. */
    const GateParams &gate(GateKind kind) const;

    /** Static power of one instance of a gate kind, watts. */
    double staticPower(GateKind kind) const;

    /** Dynamic energy of one access of a gate kind, joules. */
    double accessEnergy(GateKind kind) const;

    /** Layout area of one instance of a gate kind, mm^2. */
    double area(GateKind kind) const;

    /** Static power of a composite block given its JJ count, watts. */
    double staticPowerPerJj() const;

    /**
     * Layout area per junction for random logic, wiring included,
     * mm^2. Calibrated against the paper's Table I areas.
     */
    double areaPerJj() const;

    /**
     * Layout area per junction inside dense shift-register memory
     * arrays, mm^2. Memory bit-slices tile ~3x denser than random
     * logic (abutted cells, no PTL routing channels).
     */
    double memoryAreaPerJj() const;

    /** The device configuration the library was built for. */
    const DeviceConfig &device() const { return _device; }

  private:
    DeviceConfig _device;
    GateParams _gates[(std::size_t)GateKind::COUNT];
};

} // namespace sfq
} // namespace supernpu

#endif // SUPERNPU_SFQ_CELLS_HH
