/**
 * @file
 * PTL model implementation.
 */

#include "ptl.hh"

#include <cmath>

#include "common/logging.hh"

namespace supernpu {
namespace sfq {

namespace {
/** Propagation velocity on a Nb stripline: ~c/3 = 0.1 mm/ps. */
constexpr double mmPerPs = 0.1;
/** Driver + receiver junction cost per link end. */
constexpr std::uint64_t endpointJj = 4;
/** Re-timing repeater spacing, mm. */
constexpr double repeaterSpacingMm = 5.0;
/** Per-sqrt(mm) mismatch between co-routed lines, ps. */
constexpr double skewPerSqrtMm = 0.15;
} // namespace

PtlModel::PtlModel(const CellLibrary &lib, double length_mm)
    : _lib(lib), _lengthMm(length_mm)
{
    SUPERNPU_ASSERT(length_mm >= 0, "negative PTL length");
}

double
PtlModel::delayPs() const
{
    // Endpoint JTL-equivalent latency plus the ballistic flight.
    return 2.0 * _lib.gate(GateKind::JTL).delay + _lengthMm / mmPerPs;
}

std::uint64_t
PtlModel::jjCount() const
{
    const std::uint64_t repeaters =
        (std::uint64_t)(_lengthMm / repeaterSpacingMm);
    return 2 * endpointJj +
           repeaters * _lib.gate(GateKind::JTL).jjCount;
}

double
PtlModel::staticPower() const
{
    return (double)jjCount() * _lib.staticPowerPerJj();
}

double
PtlModel::transferEnergy() const
{
    // Only the active endpoints and repeaters switch; the stripline
    // itself is lossless.
    const double endpoint =
        2.0 * _lib.accessEnergy(GateKind::JTL) * 2.0;
    const double repeaters = (_lengthMm / repeaterSpacingMm) *
                             _lib.accessEnergy(GateKind::JTL);
    return endpoint + repeaters;
}

double
PtlModel::coRoutedSkewPs() const
{
    return skewPerSqrtMm * std::sqrt(_lengthMm) *
           _lib.device().timingScale();
}

double
PtlModel::pulsesInFlight(double frequency_ghz) const
{
    SUPERNPU_ASSERT(frequency_ghz > 0, "bad frequency");
    const double period_ps = 1e3 / frequency_ghz;
    return delayPs() / period_ps;
}

} // namespace sfq
} // namespace supernpu
