/**
 * @file
 * Eq. (1) frequency model implementation.
 */

#include "clocking.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/units.hh"

namespace supernpu {
namespace sfq {

const char *
clockSchemeName(ClockScheme scheme)
{
    switch (scheme) {
      case ClockScheme::ConcurrentFlow:
        return "concurrent-flow";
      case ClockScheme::CounterFlow:
        return "counter-flow";
    }
    panic("unknown clock scheme");
}

double
pairDeltaT(const GatePair &pair)
{
    const double tau_data = pair.driverDelay + pair.dataWireDelay;
    switch (pair.scheme) {
      case ClockScheme::ConcurrentFlow:
        // Clock segment delay subtracts: the receiver's clock pulse
        // departs after the driver's, chasing the data.
        return tau_data - pair.clockPathDelay;
      case ClockScheme::CounterFlow:
        // The receiver is clocked before the driver; the next clock
        // pulse must cover the clock segment plus the data path.
        return tau_data + pair.clockPathDelay;
    }
    panic("unknown clock scheme");
}

double
pairCct(const GatePair &pair)
{
    return pair.setupTime + std::max(pair.holdTime, pairDeltaT(pair));
}

double
pairFrequencyGhz(const GatePair &pair)
{
    const double cct = pairCct(pair);
    SUPERNPU_ASSERT(cct > 0, "non-positive CCT for pair '", pair.name, "'");
    return units::psToGHz(cct);
}

double
minFrequencyGhz(const std::vector<GatePair> &pairs)
{
    return pairFrequencyGhz(criticalPair(pairs));
}

const GatePair &
criticalPair(const std::vector<GatePair> &pairs)
{
    SUPERNPU_ASSERT(!pairs.empty(), "no gate pairs given");
    const GatePair *worst = &pairs.front();
    for (const auto &pair : pairs) {
        if (pairCct(pair) > pairCct(*worst))
            worst = &pair;
    }
    return *worst;
}

GatePair
withClockSkew(GatePair pair, double fraction)
{
    SUPERNPU_ASSERT(fraction >= 0.0 && fraction <= 1.0,
                    "skew fraction out of range");
    if (pair.scheme != ClockScheme::ConcurrentFlow)
        return pair;
    const double delta = pairDeltaT(pair);
    if (delta > 0.0)
        pair.clockPathDelay += fraction * delta;
    return pair;
}

GatePair
makePair(const CellLibrary &lib, const std::string &name, GateKind driver,
         GateKind receiver, const std::vector<GateKind> &via,
         double clock_path_ps, ClockScheme scheme)
{
    GatePair pair;
    pair.name = name;
    pair.driverDelay = lib.gate(driver).delay;
    for (GateKind kind : via) {
        SUPERNPU_ASSERT(lib.gate(kind).setupTime == 0.0,
                        "via element '", gateName(kind),
                        "' must be asynchronous");
        pair.dataWireDelay += lib.gate(kind).delay;
    }
    pair.setupTime = lib.gate(receiver).setupTime;
    pair.holdTime = lib.gate(receiver).holdTime;
    pair.clockPathDelay = clock_path_ps;
    pair.scheme = scheme;
    return pair;
}

} // namespace sfq
} // namespace supernpu
