/**
 * @file
 * Passive transmission line (PTL) interconnect model.
 *
 * SFQ designs route long on-chip links over superconducting
 * striplines: a driver launches the picosecond pulse onto the line,
 * it propagates ballistically near c/3, and a receiver regenerates
 * it (Takagi et al., cited by the paper). Because a line can carry
 * many pulses in flight, its *latency* does not bound the clock —
 * only the residual data-vs-clock skew after co-routing enters the
 * Eq. (1) delta_t budget. This model sizes the delay, junction cost,
 * energy, and the residual skew of a co-routed link pair.
 */

#ifndef SUPERNPU_SFQ_PTL_HH
#define SUPERNPU_SFQ_PTL_HH

#include <cstdint>

#include "cells.hh"

namespace supernpu {
namespace sfq {

/** One driver-line-receiver PTL link. */
class PtlModel
{
  public:
    /**
     * @param lib The scaled cell library.
     * @param length_mm Routed length in millimeters.
     */
    PtlModel(const CellLibrary &lib, double length_mm);

    /** End-to-end propagation delay, ps (ballistic, ~c/3). */
    double delayPs() const;

    /** Junctions: driver + receiver + re-timing repeaters. */
    std::uint64_t jjCount() const;

    /** Static power, watts. */
    double staticPower() const;

    /** Energy per transferred pulse, joules. */
    double transferEnergy() const;

    /**
     * Residual skew between this data line and a clock line
     * co-routed alongside it, ps: process mismatch accumulates with
     * the square root of the length.
     */
    double coRoutedSkewPs() const;

    /**
     * Maximum pulses concurrently in flight at a clock frequency:
     * the pipelining depth of the wire itself.
     */
    double pulsesInFlight(double frequency_ghz) const;

  private:
    const CellLibrary &_lib;
    double _lengthMm;
};

} // namespace sfq
} // namespace supernpu

#endif // SUPERNPU_SFQ_PTL_HH
