/**
 * @file
 * Rng implementation (splitmix64 seeding + xoshiro256**).
 */

#include "rng.hh"

#include <cmath>

#include "logging.hh"

namespace supernpu {

namespace {

std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : _state)
        word = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(_state[1] * 5, 7) * 9;
    const std::uint64_t t = _state[1] << 17;
    _state[2] ^= _state[0];
    _state[3] ^= _state[1];
    _state[1] ^= _state[2];
    _state[0] ^= _state[3];
    _state[2] ^= t;
    _state[3] = rotl(_state[3], 45);
    return result;
}

double
Rng::uniform()
{
    return (double)(next() >> 11) * (1.0 / 9007199254740992.0);
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    SUPERNPU_ASSERT(lo <= hi, "bad uniformInt range");
    const std::uint64_t span = (std::uint64_t)(hi - lo) + 1;
    return lo + (std::int64_t)(next() % span);
}

double
Rng::normal()
{
    if (_haveSpareNormal) {
        _haveSpareNormal = false;
        return _spareNormal;
    }
    double u1 = uniform();
    double u2 = uniform();
    // Avoid log(0).
    if (u1 < 1e-300)
        u1 = 1e-300;
    const double mag = std::sqrt(-2.0 * std::log(u1));
    _spareNormal = mag * std::sin(2.0 * M_PI * u2);
    _haveSpareNormal = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

} // namespace supernpu
