/**
 * @file
 * Statistics helper implementations.
 */

#include "stats.hh"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "logging.hh"

namespace supernpu {

namespace {

/**
 * One warning per process for non-finite samples: they always mean
 * an upstream bug, but benches feed millions of samples through
 * these accumulators and a per-sample warn would bury the signal.
 */
void
warnNonFiniteOnce(const char *where)
{
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true)) {
        warn(where, ": non-finite sample excluded from statistics "
             "(further occurrences counted silently)");
    }
}

} // namespace

void
RunningStats::add(double sample)
{
    if (!std::isfinite(sample)) {
        ++_nonFiniteCount;
        warnNonFiniteOnce("RunningStats::add");
        return;
    }
    if (_count == 0) {
        _min = sample;
        _max = sample;
    } else {
        _min = std::min(_min, sample);
        _max = std::max(_max, sample);
    }
    ++_count;
    _sum += sample;
    if (sample > 0.0) {
        ++_positiveCount;
        _logSum += std::log(sample);
    }
}

double
RunningStats::mean() const
{
    return _count ? _sum / (double)_count : 0.0;
}

double
RunningStats::geomean() const
{
    return _positiveCount ? std::exp(_logSum / (double)_positiveCount) : 0.0;
}

double
mean(const std::vector<double> &samples)
{
    RunningStats stats;
    for (double s : samples)
        stats.add(s);
    return stats.mean();
}

double
geomean(const std::vector<double> &samples)
{
    RunningStats stats;
    for (double s : samples)
        stats.add(s);
    return stats.geomean();
}

double
percentile(std::vector<double> samples, double p)
{
    const auto finite_end = std::remove_if(
        samples.begin(), samples.end(),
        [](double s) { return !std::isfinite(s); });
    if (finite_end != samples.end()) {
        warnNonFiniteOnce("percentile");
        samples.erase(finite_end, samples.end());
    }
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    p = std::min(std::max(p, 0.0), 100.0);
    const double rank = p / 100.0 * (double)(samples.size() - 1);
    const std::size_t below = (std::size_t)rank;
    if (below + 1 >= samples.size())
        return samples.back();
    const double frac = rank - (double)below;
    return samples[below] * (1.0 - frac) + samples[below + 1] * frac;
}

Histogram::Histogram(double lo, double hi, int bins_per_decade)
    : _lo(lo), _hi(hi), _logLo(std::log10(lo)),
      _binsPerDecade((double)bins_per_decade)
{
    SUPERNPU_ASSERT(lo > 0.0 && hi > lo && bins_per_decade > 0,
                    "bad histogram shape");
    const std::size_t regular = (std::size_t)std::ceil(
        (std::log10(hi) - _logLo) * _binsPerDecade);
    _bins.assign(regular + 2, 0); // + underflow and overflow
}

void
Histogram::add(double sample)
{
    _stats.add(sample); // rejects and tallies non-finite samples
    if (!std::isfinite(sample))
        return;
    std::size_t index;
    if (!(sample >= _lo)) { // includes non-positive samples
        index = 0;
    } else if (sample >= _hi) {
        index = _bins.size() - 1;
    } else {
        index = 1 + (std::size_t)((std::log10(sample) - _logLo) *
                                  _binsPerDecade);
        index = std::min(index, _bins.size() - 2);
    }
    ++_bins[index];
}

double
Histogram::percentile(double p) const
{
    if (count() == 0)
        return 0.0;
    p = std::min(std::max(p, 0.0), 100.0);
    // Nearest-rank over the bin counts.
    const std::uint64_t target = std::max<std::uint64_t>(
        1, (std::uint64_t)std::ceil(p / 100.0 * (double)count()));
    std::uint64_t seen = 0;
    std::size_t index = _bins.size() - 1;
    for (std::size_t i = 0; i < _bins.size(); ++i) {
        seen += _bins[i];
        if (seen >= target) {
            index = i;
            break;
        }
    }
    double value;
    if (index == 0) {
        value = min();
    } else if (index == _bins.size() - 1) {
        value = max();
    } else {
        // Geometric midpoint of the bin's edges.
        const double lo_edge = std::pow(
            10.0, _logLo + (double)(index - 1) / _binsPerDecade);
        const double hi_edge = std::pow(
            10.0, _logLo + (double)index / _binsPerDecade);
        value = std::sqrt(lo_edge * hi_edge);
    }
    return std::min(std::max(value, min()), max());
}

} // namespace supernpu
