/**
 * @file
 * Statistics helper implementations.
 */

#include "stats.hh"

#include <algorithm>
#include <cmath>

namespace supernpu {

void
RunningStats::add(double sample)
{
    if (_count == 0) {
        _min = sample;
        _max = sample;
    } else {
        _min = std::min(_min, sample);
        _max = std::max(_max, sample);
    }
    ++_count;
    _sum += sample;
    if (sample > 0.0) {
        ++_positiveCount;
        _logSum += std::log(sample);
    }
}

double
RunningStats::mean() const
{
    return _count ? _sum / (double)_count : 0.0;
}

double
RunningStats::geomean() const
{
    return _positiveCount ? std::exp(_logSum / (double)_positiveCount) : 0.0;
}

double
mean(const std::vector<double> &samples)
{
    RunningStats stats;
    for (double s : samples)
        stats.add(s);
    return stats.mean();
}

double
geomean(const std::vector<double> &samples)
{
    RunningStats stats;
    for (double s : samples)
        stats.add(s);
    return stats.geomean();
}

} // namespace supernpu
