/**
 * @file
 * Unit formatting helpers.
 */

#include "units.hh"

#include <array>
#include <cmath>
#include <cstdio>

namespace supernpu {
namespace units {

std::string
siPrefixed(double value, int precision)
{
    struct Prefix { double scale; const char *suffix; };
    static constexpr std::array<Prefix, 9> prefixes = {{
        {1e15, "P"}, {1e12, "T"}, {1e9, "G"}, {1e6, "M"}, {1e3, "k"},
        {1.0, ""}, {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"},
    }};

    const double mag = std::fabs(value);
    for (const auto &p : prefixes) {
        if (mag >= p.scale || (p.scale == 1e-9 && mag > 0)) {
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%.*f %s", precision,
                          value / p.scale, p.suffix);
            return buf;
        }
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f ", precision, value);
    return buf;
}

std::string
bytesHuman(std::uint64_t bytes)
{
    char buf[64];
    if (bytes >= GiB && bytes % GiB == 0) {
        std::snprintf(buf, sizeof(buf), "%llu GiB",
                      (unsigned long long)(bytes / GiB));
    } else if (bytes >= MiB) {
        std::snprintf(buf, sizeof(buf), "%.1f MiB",
                      (double)bytes / (double)MiB);
    } else if (bytes >= kiB) {
        std::snprintf(buf, sizeof(buf), "%.1f KiB",
                      (double)bytes / (double)kiB);
    } else {
        std::snprintf(buf, sizeof(buf), "%llu B",
                      (unsigned long long)bytes);
    }
    return buf;
}

} // namespace units
} // namespace supernpu
