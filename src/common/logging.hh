/**
 * @file
 * Status and error reporting helpers.
 *
 * Modeled after the gem5 logging conventions:
 *  - panic():  an internal invariant was violated (a simulator bug).
 *              Aborts so a debugger or core dump can capture the state.
 *  - fatal():  the simulation cannot continue due to user input
 *              (bad configuration, impossible parameters). Exits cleanly.
 *  - warn():   something is modeled approximately; results nearby may
 *              deserve scrutiny.
 *  - inform(): normal operating status messages.
 */

#ifndef SUPERNPU_COMMON_LOGGING_HH
#define SUPERNPU_COMMON_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <string>

namespace supernpu {

namespace detail {

/** Stream-compose a message from parts; terminal sink for recursion. */
inline void
composeInto(std::ostringstream &os)
{
    (void)os;
}

/** Stream-compose a message from parts. */
template <typename T, typename... Rest>
void
composeInto(std::ostringstream &os, const T &first, const Rest &...rest)
{
    os << first;
    composeInto(os, rest...);
}

/** Build a single string from a pack of streamable parts. */
template <typename... Parts>
std::string
compose(const Parts &...parts)
{
    std::ostringstream os;
    composeInto(os, parts...);
    return os.str();
}

/** Emit a tagged message to stderr. Defined in logging.cc. */
void emit(const char *tag, const std::string &message);

/** Abort after emitting; never returns. */
[[noreturn]] void panicImpl(const std::string &message);

/** Exit(1) after emitting; never returns. */
[[noreturn]] void fatalImpl(const std::string &message);

} // namespace detail

/**
 * Report an internal error (a bug in this library) and abort.
 * Use when an invariant that no user input should be able to break
 * has been broken.
 */
template <typename... Parts>
[[noreturn]] void
panic(const Parts &...parts)
{
    detail::panicImpl(detail::compose(parts...));
}

/**
 * Report an unrecoverable user-facing error (bad configuration,
 * impossible parameters) and exit with a failure code.
 */
template <typename... Parts>
[[noreturn]] void
fatal(const Parts &...parts)
{
    detail::fatalImpl(detail::compose(parts...));
}

/** Warn that something is modeled approximately or looks suspicious. */
template <typename... Parts>
void
warn(const Parts &...parts)
{
    detail::emit("warn", detail::compose(parts...));
}

/** Emit a normal status message. */
template <typename... Parts>
void
inform(const Parts &...parts)
{
    detail::emit("info", detail::compose(parts...));
}

/**
 * Check a library invariant; panic with a message when it fails.
 * Unlike assert() this is active in release builds: the simulators
 * here are always built Release and silent corruption is worse than
 * the branch cost.
 */
#define SUPERNPU_ASSERT(cond, ...)                                          \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::supernpu::panic("assertion '", #cond, "' failed at ",         \
                              __FILE__, ":", __LINE__, ": ", __VA_ARGS__);  \
        }                                                                   \
    } while (0)

} // namespace supernpu

#endif // SUPERNPU_COMMON_LOGGING_HH
