/**
 * @file
 * Fixed-size thread pool with deterministic-order parallel loops.
 *
 * Every sweep driver in this repository (the design-space explorer,
 * the ablation benches, the serving service-model warm-up) is
 * embarrassingly parallel over independent simulation points, but
 * must stay bit-reproducible: the ranked output of a parallel sweep
 * has to be byte-identical to the serial sweep. The pool guarantees
 * that by construction:
 *
 *  - parallelFor(n, body) invokes body(i) exactly once for every
 *    i in [0, n); each index is an independent unit of work and no
 *    index reads another index's results.
 *  - parallelMap(n, fn) stores fn(i) into slot i of the returned
 *    vector, so results come back in submission order regardless of
 *    completion order.
 *  - Stochastic tasks derive an independent common/rng stream from
 *    streamSeed(base_seed, i), so the random sequence a task sees
 *    depends only on its index, never on thread scheduling.
 *
 * With those rules, `jobs` is a pure wall-clock knob: a pool of any
 * size produces exactly the bytes of ThreadPool(1).
 *
 * The calling thread participates in the loop (a pool of `jobs` runs
 * jobs-1 workers), so ThreadPool(1) spawns no threads and runs the
 * loop inline. A parallelFor issued from inside a pool task runs
 * inline on the issuing worker — nested submission cannot deadlock.
 * The first exception thrown by any task is captured and rethrown on
 * the calling thread after the loop drains.
 */

#ifndef SUPERNPU_COMMON_PARALLEL_HH
#define SUPERNPU_COMMON_PARALLEL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace supernpu {

/**
 * Seed for the `stream`-th independent RNG stream of a parallel
 * region. SplitMix64-mixes the base seed with the stream index, so
 * streams are statistically independent but fully determined by
 * (base_seed, stream) — never by which thread runs the task.
 */
std::uint64_t streamSeed(std::uint64_t base_seed, std::uint64_t stream);

/** A fixed-size pool of worker threads for deterministic sweeps. */
class ThreadPool
{
  public:
    /**
     * @param jobs Total parallelism including the calling thread;
     *        jobs <= 1 runs everything inline, 0 means
     *        hardwareConcurrency().
     */
    explicit ThreadPool(int jobs = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total parallelism (worker threads + the calling thread). */
    int jobs() const { return (int)_workers.size() + 1; }

    /**
     * Lifetime work counters, snapshotted into sweep ledgers so runs
     * report how much parallelism they actually exercised. Counting
     * uses relaxed atomics: it never orders the work itself, and the
     * deterministic-output guarantee is unaffected.
     */
    struct Stats
    {
        int jobs = 1;                  ///< pool parallelism
        std::uint64_t loops = 0;       ///< parallelFor invocations
        std::uint64_t tasks = 0;       ///< loop indices executed
        std::uint64_t maxLoopTasks = 0;///< largest single loop
    };

    /** Snapshot the pool's lifetime counters. */
    Stats stats() const;

    /** std::thread::hardware_concurrency with a floor of 1. */
    static int hardwareConcurrency();

    /**
     * Run body(i) for every i in [0, n), spread across the pool.
     * Returns after every index has run; rethrows the first task
     * exception. Serializes with concurrent parallelFor calls on the
     * same pool; a nested call from inside a task runs inline.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body);

    /**
     * Map fn over [0, n); result slot i always holds fn(i), so the
     * output is identical to the serial loop no matter how the work
     * interleaves. fn must be invocable as fn(std::size_t).
     */
    template <typename Fn>
    auto parallelMap(std::size_t n, Fn &&fn)
        -> std::vector<std::invoke_result_t<Fn &, std::size_t>>
    {
        using Result = std::invoke_result_t<Fn &, std::size_t>;
        std::vector<Result> out(n);
        parallelFor(n, [&](std::size_t i) { out[i] = fn(i); });
        return out;
    }

  private:
    /** One parallelFor invocation, shared by every worker. */
    struct Loop
    {
        const std::function<void(std::size_t)> *body = nullptr;
        std::size_t count = 0;
        std::atomic<std::size_t> next{0};
        std::size_t finished = 0; ///< indices accounted; under _mutex
        int helpers = 0;          ///< workers inside drain; under _mutex
        std::exception_ptr error; ///< first task failure; under _mutex
    };

    void workerMain();
    /** Pull and run indices of `loop` until none remain. */
    void drain(Loop &loop);

    std::mutex _mutex;
    std::condition_variable _wake; ///< workers: a loop was posted
    std::condition_variable _done; ///< caller: loop fully finished
    Loop *_current = nullptr;      ///< guarded by _mutex
    bool _stopping = false;        ///< guarded by _mutex
    std::mutex _loopMutex;         ///< serializes parallelFor callers
    std::vector<std::thread> _workers;

    // Lifetime counters behind stats(); relaxed — counts only.
    std::atomic<std::uint64_t> _loops{0};
    std::atomic<std::uint64_t> _tasks{0};
    std::atomic<std::uint64_t> _maxLoopTasks{0};
};

} // namespace supernpu

#endif // SUPERNPU_COMMON_PARALLEL_HH
