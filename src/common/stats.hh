/**
 * @file
 * Small statistics helpers shared by the simulators and benches.
 */

#ifndef SUPERNPU_COMMON_STATS_HH
#define SUPERNPU_COMMON_STATS_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace supernpu {

/**
 * Streaming accumulator for min / max / mean / geometric mean.
 * Geometric mean silently skips non-positive samples (they have no
 * geomean) but still counts them toward the arithmetic statistics.
 *
 * Non-finite samples (NaN, +/-inf) are excluded from every moment:
 * a NaN would otherwise stick in min/max forever (NaN propagates
 * through std::min/std::max once it gets in first) and poison the
 * sum. They are tallied in nonFiniteCount() and warned about once
 * per process, because a non-finite metric is always an upstream
 * bug worth surfacing without corrupting every later readout.
 */
class RunningStats
{
  public:
    /** Add one sample. */
    void add(double sample);

    /** Number of finite samples added. */
    std::size_t count() const { return _count; }
    /** Smallest sample; 0 when empty. */
    double min() const { return _count ? _min : 0.0; }
    /** Largest sample; 0 when empty. */
    double max() const { return _count ? _max : 0.0; }
    /** Arithmetic mean; 0 when empty. */
    double mean() const;
    /** Geometric mean over the positive samples; 0 when none. */
    double geomean() const;
    /** Sum of all finite samples. */
    double sum() const { return _sum; }
    /** NaN / infinite samples rejected by add(). */
    std::size_t nonFiniteCount() const { return _nonFiniteCount; }

  private:
    std::size_t _count = 0;
    std::size_t _positiveCount = 0;
    std::size_t _nonFiniteCount = 0;
    double _sum = 0.0;
    double _logSum = 0.0;
    double _min = 0.0;
    double _max = 0.0;
};

/** Arithmetic mean of a vector; 0 when empty. */
double mean(const std::vector<double> &samples);

/** Geometric mean of the positive entries of a vector; 0 when none. */
double geomean(const std::vector<double> &samples);

/**
 * Exact percentile of a sample set (linear interpolation between
 * closest ranks); 0 when empty. `p` is in [0, 100]. Takes a copy
 * because it must sort. Non-finite samples are dropped (with a
 * once-per-process warn) before sorting — NaN gives std::sort an
 * invalid strict weak order, so its presence would otherwise make
 * the selected rank, and even memory safety, unspecified.
 */
double percentile(std::vector<double> samples, double p);

/**
 * Streaming percentile estimator over logarithmically spaced bins
 * (an HdrHistogram-style sketch): O(1) insert, O(bins) quantile
 * query, fixed memory. Relative error per quantile is bounded by the
 * bin ratio, 10^(1/binsPerDecade) (~1.9% at the default 53 bins per
 * decade). Samples below `lo` or at/above `hi` land in saturating
 * under/overflow bins whose quantiles report the exact observed
 * min/max. Non-positive samples count toward `count()` and the
 * moment statistics but live in the underflow bin. Non-finite
 * samples are excluded entirely — a NaN would land in the underflow
 * bin via `!(sample >= lo)` and silently drag every low quantile
 * toward min() — and are tallied in nonFiniteCount() instead.
 */
class Histogram
{
  public:
    /**
     * @param lo  lower edge of the first regular bin (> 0)
     * @param hi  upper edge of the last regular bin (> lo)
     * @param bins_per_decade  log-resolution of the sketch
     */
    explicit Histogram(double lo = 1e-9, double hi = 1e4,
                       int bins_per_decade = 53);

    /** Add one sample. */
    void add(double sample);

    /** Number of samples added. */
    std::size_t count() const { return _stats.count(); }
    /** Smallest sample; 0 when empty. */
    double min() const { return _stats.min(); }
    /** Largest sample; 0 when empty. */
    double max() const { return _stats.max(); }
    /** Arithmetic mean; 0 when empty. */
    double mean() const { return _stats.mean(); }
    /** Sum of all samples. */
    double sum() const { return _stats.sum(); }

    /**
     * Estimated value at percentile `p` in [0, 100]; 0 when empty.
     * Returns the geometric midpoint of the bin holding the rank,
     * clamped to the exact observed [min, max].
     */
    double percentile(double p) const;

    /** NaN / infinite samples rejected by add(). */
    std::size_t nonFiniteCount() const { return _stats.nonFiniteCount(); }

    /** The exact moment statistics of everything added. */
    const RunningStats &stats() const { return _stats; }

  private:
    double _lo;
    double _hi;
    double _logLo;
    double _binsPerDecade;
    std::vector<std::uint64_t> _bins; ///< [underflow, ..., overflow]
    RunningStats _stats;
};

} // namespace supernpu

#endif // SUPERNPU_COMMON_STATS_HH
