/**
 * @file
 * Small statistics helpers shared by the simulators and benches.
 */

#ifndef SUPERNPU_COMMON_STATS_HH
#define SUPERNPU_COMMON_STATS_HH

#include <cstddef>
#include <vector>

namespace supernpu {

/**
 * Streaming accumulator for min / max / mean / geometric mean.
 * Geometric mean silently skips non-positive samples (they have no
 * geomean) but still counts them toward the arithmetic statistics.
 */
class RunningStats
{
  public:
    /** Add one sample. */
    void add(double sample);

    /** Number of samples added. */
    std::size_t count() const { return _count; }
    /** Smallest sample; 0 when empty. */
    double min() const { return _count ? _min : 0.0; }
    /** Largest sample; 0 when empty. */
    double max() const { return _count ? _max : 0.0; }
    /** Arithmetic mean; 0 when empty. */
    double mean() const;
    /** Geometric mean over the positive samples; 0 when none. */
    double geomean() const;
    /** Sum of all samples. */
    double sum() const { return _sum; }

  private:
    std::size_t _count = 0;
    std::size_t _positiveCount = 0;
    double _sum = 0.0;
    double _logSum = 0.0;
    double _min = 0.0;
    double _max = 0.0;
};

/** Arithmetic mean of a vector; 0 when empty. */
double mean(const std::vector<double> &samples);

/** Geometric mean of the positive entries of a vector; 0 when none. */
double geomean(const std::vector<double> &samples);

} // namespace supernpu

#endif // SUPERNPU_COMMON_STATS_HH
