/**
 * @file
 * Implementation of the logging sinks.
 */

#include "logging.hh"

#include <cstdio>
#include <exception>

namespace supernpu {
namespace detail {

void
emit(const char *tag, const std::string &message)
{
    std::fprintf(stderr, "[%s] %s\n", tag, message.c_str());
    std::fflush(stderr);
}

void
panicImpl(const std::string &message)
{
    emit("panic", message);
    std::abort();
}

void
fatalImpl(const std::string &message)
{
    emit("fatal", message);
    std::exit(1);
}

} // namespace detail
} // namespace supernpu
