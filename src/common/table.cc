/**
 * @file
 * TextTable implementation.
 */

#include "table.hh"

#include <algorithm>
#include <cstdio>

#include "logging.hh"

namespace supernpu {

TextTable::TextTable(std::string title)
    : _title(std::move(title))
{
}

TextTable &
TextTable::row()
{
    _rows.emplace_back();
    return *this;
}

TextTable &
TextTable::cell(const std::string &text)
{
    SUPERNPU_ASSERT(!_rows.empty(), "cell() before row()");
    _rows.back().push_back(text);
    return *this;
}

TextTable &
TextTable::cell(const char *text)
{
    return cell(std::string(text));
}

TextTable &
TextTable::cell(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return cell(std::string(buf));
}

TextTable &
TextTable::cell(long long value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%lld", value);
    return cell(std::string(buf));
}

TextTable &
TextTable::cell(unsigned long long value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%llu", value);
    return cell(std::string(buf));
}

std::string
TextTable::str() const
{
    std::vector<std::size_t> widths;
    for (const auto &row : _rows) {
        if (row.size() > widths.size())
            widths.resize(row.size(), 0);
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    }

    std::string out;
    if (!_title.empty()) {
        out += "== " + _title + " ==\n";
    }
    for (std::size_t r = 0; r < _rows.size(); ++r) {
        const auto &row = _rows[r];
        for (std::size_t i = 0; i < row.size(); ++i) {
            out += row[i];
            if (i + 1 < row.size())
                out.append(widths[i] - row[i].size() + 2, ' ');
        }
        out += '\n';
        if (r == 0) {
            std::size_t total = 0;
            for (std::size_t w : widths)
                total += w + 2;
            out.append(total > 2 ? total - 2 : total, '-');
            out += '\n';
        }
    }
    return out;
}

std::string
TextTable::csv() const
{
    auto escape = [](const std::string &cell) {
        if (cell.find_first_of(",\"\n") == std::string::npos)
            return cell;
        std::string quoted = "\"";
        for (char c : cell) {
            if (c == '"')
                quoted += '"';
            quoted += c;
        }
        quoted += '"';
        return quoted;
    };

    std::string out;
    for (const auto &row : _rows) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i)
                out += ',';
            out += escape(row[i]);
        }
        out += '\n';
    }
    return out;
}

void
TextTable::print(std::FILE *out) const
{
    const std::string rendered = str();
    std::fwrite(rendered.data(), 1, rendered.size(), out);
    std::fflush(out);
}

} // namespace supernpu
