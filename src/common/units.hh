/**
 * @file
 * Physical unit conventions and conversion helpers.
 *
 * The library stores quantities in a fixed set of base units and uses
 * plain double arithmetic; these helpers document the convention and
 * provide readable constructors / formatters.
 *
 * Base units used throughout:
 *   time        : picoseconds (ps)
 *   frequency   : gigahertz   (GHz)
 *   power       : watts       (W)
 *   energy      : joules      (J)
 *   area        : square millimeters (mm^2)
 *   capacity    : bytes
 *   bandwidth   : bytes per second
 */

#ifndef SUPERNPU_COMMON_UNITS_HH
#define SUPERNPU_COMMON_UNITS_HH

#include <cstdint>
#include <string>

namespace supernpu {
namespace units {

// --- time ----------------------------------------------------------------
/** Nanoseconds expressed in picoseconds. */
constexpr double nsToPs = 1e3;
/** Seconds expressed in picoseconds. */
constexpr double sToPs = 1e12;

/** Convert a period in picoseconds to a frequency in GHz. */
constexpr double
psToGHz(double period_ps)
{
    return 1e3 / period_ps;
}

/** Convert a frequency in GHz to a period in picoseconds. */
constexpr double
ghzToPs(double freq_ghz)
{
    return 1e3 / freq_ghz;
}

/** Convert a frequency in GHz to hertz. */
constexpr double
ghzToHz(double freq_ghz)
{
    return freq_ghz * 1e9;
}

// --- power / energy ------------------------------------------------------
/** Microwatts to watts. */
constexpr double
uwToW(double microwatts)
{
    return microwatts * 1e-6;
}

/** Milliwatts to watts. */
constexpr double
mwToW(double milliwatts)
{
    return milliwatts * 1e-3;
}

/** Attojoules to joules. */
constexpr double
ajToJ(double attojoules)
{
    return attojoules * 1e-18;
}

// --- capacity ------------------------------------------------------------
constexpr std::uint64_t kiB = 1024ull;
constexpr std::uint64_t MiB = 1024ull * 1024ull;
constexpr std::uint64_t GiB = 1024ull * 1024ull * 1024ull;

/** Gigabytes-per-second to bytes-per-second (SI, as memory vendors do). */
constexpr double
gbpsToBps(double gb_per_s)
{
    return gb_per_s * 1e9;
}

// --- formatting ----------------------------------------------------------
/** Render a value with an SI suffix and fixed precision, e.g. "3.37 T". */
std::string siPrefixed(double value, int precision = 2);

/** Render a byte count as "512 B", "24 MiB", ... */
std::string bytesHuman(std::uint64_t bytes);

} // namespace units
} // namespace supernpu

#endif // SUPERNPU_COMMON_UNITS_HH
