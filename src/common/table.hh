/**
 * @file
 * Plain-text aligned table emitter used by the benchmark binaries to
 * print the rows/series of each paper table and figure.
 */

#ifndef SUPERNPU_COMMON_TABLE_HH
#define SUPERNPU_COMMON_TABLE_HH

#include <cstdio>
#include <string>
#include <vector>

namespace supernpu {

/**
 * Accumulates rows of string cells and prints them with aligned
 * columns. Numeric convenience overloads format with a fixed
 * precision. The first row added is treated as the header.
 */
class TextTable
{
  public:
    /** Optional caption printed above the table. */
    explicit TextTable(std::string title = "");

    /** Begin a new row. */
    TextTable &row();

    /** Append a string cell to the current row. */
    TextTable &cell(const std::string &text);
    /** Append a C-string cell to the current row. */
    TextTable &cell(const char *text);
    /** Append a numeric cell with the given precision. */
    TextTable &cell(double value, int precision = 2);
    /** Append an integer cell. */
    TextTable &cell(long long value);
    /** Append an unsigned integer cell. */
    TextTable &cell(unsigned long long value);
    /** Append an int cell. */
    TextTable &cell(int value) { return cell((long long)value); }
    /** Append a size cell. */
    TextTable &cell(std::size_t value)
    {
        return cell((unsigned long long)value);
    }

    /** Render to a string. */
    std::string str() const;

    /**
     * Render as RFC-4180-style CSV (the title is omitted; cells
     * containing commas or quotes are quoted and escaped).
     */
    std::string csv() const;

    /** Print to the given stream (stdout by default). */
    void print(std::FILE *out = stdout) const;

  private:
    std::string _title;
    std::vector<std::vector<std::string>> _rows;
};

} // namespace supernpu

#endif // SUPERNPU_COMMON_TABLE_HH
