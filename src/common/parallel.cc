/**
 * @file
 * Thread-pool implementation.
 *
 * A parallelFor posts one Loop record (on the caller's stack) as the
 * pool's current loop; every worker plus the caller pulls indices
 * from its atomic cursor until none remain. The caller returns only
 * when all indices are accounted for AND no worker still holds a
 * reference to the record, so the record's lifetime is safe without
 * any allocation.
 */

#include "parallel.hh"

namespace supernpu {

namespace {

/** SplitMix64 finalizer: the same mix Rng's seeder is built on. */
std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Set while this thread is executing inside a pool loop. */
thread_local bool inside_pool_task = false;

} // namespace

std::uint64_t
streamSeed(std::uint64_t base_seed, std::uint64_t stream)
{
    // Two mix rounds decorrelate streams even for adjacent indices
    // and a pathological base seed (0, all-ones, ...).
    return splitmix64(splitmix64(base_seed) ^ splitmix64(~stream));
}

int
ThreadPool::hardwareConcurrency()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : (int)n;
}

ThreadPool::ThreadPool(int jobs)
{
    if (jobs <= 0)
        jobs = hardwareConcurrency();
    if (jobs > 1)
        _workers.reserve((std::size_t)jobs - 1);
    for (int i = 1; i < jobs; ++i)
        _workers.emplace_back([this] { workerMain(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _stopping = true;
    }
    _wake.notify_all();
    for (auto &worker : _workers)
        worker.join();
}

void
ThreadPool::drain(Loop &loop)
{
    std::size_t ran = 0;
    std::exception_ptr error;
    for (;;) {
        const std::size_t i =
            loop.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= loop.count)
            break;
        try {
            (*loop.body)(i);
        } catch (...) {
            if (!error)
                error = std::current_exception();
            // Keep draining: every index must have run before the
            // loop is reported finished.
        }
        ++ran;
    }
    if (ran > 0 || error) {
        std::lock_guard<std::mutex> lock(_mutex);
        loop.finished += ran;
        if (error && !loop.error)
            loop.error = error;
        if (loop.finished == loop.count)
            _done.notify_all();
    }
}

void
ThreadPool::workerMain()
{
    inside_pool_task = true;
    std::unique_lock<std::mutex> lock(_mutex);
    for (;;) {
        _wake.wait(lock, [this] {
            return _stopping ||
                   (_current != nullptr &&
                    _current->next.load(std::memory_order_relaxed) <
                        _current->count);
        });
        if (_stopping)
            return;
        Loop *loop = _current;
        ++loop->helpers;
        lock.unlock();
        drain(*loop);
        lock.lock();
        --loop->helpers;
        if (loop->helpers == 0)
            _done.notify_all();
        // `loop` must not be touched past this point: once the
        // caller observes finished == count and helpers == 0 it
        // destroys the record.
    }
}

ThreadPool::Stats
ThreadPool::stats() const
{
    Stats out;
    out.jobs = jobs();
    out.loops = _loops.load(std::memory_order_relaxed);
    out.tasks = _tasks.load(std::memory_order_relaxed);
    out.maxLoopTasks = _maxLoopTasks.load(std::memory_order_relaxed);
    return out;
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return;

    _loops.fetch_add(1, std::memory_order_relaxed);
    _tasks.fetch_add(n, std::memory_order_relaxed);
    std::uint64_t top = _maxLoopTasks.load(std::memory_order_relaxed);
    while (n > top &&
           !_maxLoopTasks.compare_exchange_weak(
               top, n, std::memory_order_relaxed))
        ;

    // Inline cases: serial pool, or a nested call from inside a pool
    // loop (blocking a worker on its own pool would deadlock).
    if (_workers.empty() || inside_pool_task) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    std::lock_guard<std::mutex> serialize(_loopMutex);
    Loop loop;
    loop.body = &body;
    loop.count = n;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _current = &loop;
    }
    _wake.notify_all();

    // The caller works too; its frames count as pool frames so a
    // nested parallelFor inside `body` runs inline here as well.
    inside_pool_task = true;
    drain(loop);
    inside_pool_task = false;

    std::unique_lock<std::mutex> lock(_mutex);
    _done.wait(lock, [&] {
        return loop.finished == loop.count && loop.helpers == 0;
    });
    _current = nullptr;
    const std::exception_ptr error = loop.error;
    lock.unlock();
    if (error)
        std::rethrow_exception(error);
}

} // namespace supernpu
