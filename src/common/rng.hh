/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * All stochastic behaviour in the library (synthetic tensors, property
 * test inputs, pseudo-measurement noise in the validation references)
 * flows through this generator so that every run of every binary is
 * bit-reproducible.
 */

#ifndef SUPERNPU_COMMON_RNG_HH
#define SUPERNPU_COMMON_RNG_HH

#include <cstdint>

namespace supernpu {

/**
 * SplitMix64-seeded xoshiro256** generator. Small, fast, and good
 * enough statistical quality for workload synthesis.
 */
class Rng
{
  public:
    /** Seed deterministically; the default seed is fixed on purpose. */
    explicit Rng(std::uint64_t seed = 0x5317e9f0c0ffee01ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Standard normal via Box-Muller (one value per call). */
    double normal();

  private:
    std::uint64_t _state[4];
    bool _haveSpareNormal = false;
    double _spareNormal = 0.0;
};

} // namespace supernpu

#endif // SUPERNPU_COMMON_RNG_HH
