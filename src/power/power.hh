/**
 * @file
 * Chip power aggregation and cryogenic cooling model (Section VI-C,
 * Table III): static power from the estimator, dynamic power from
 * the performance simulator's activity counters, and the 400x
 * cooling overhead for operation at 4 K (Holmes et al.).
 */

#ifndef SUPERNPU_POWER_POWER_HH
#define SUPERNPU_POWER_POWER_HH

#include "estimator/npu_estimator.hh"
#include "npusim/result.hh"

namespace supernpu {
namespace power {

/** Watts of cooling per watt dissipated at 4 K. */
constexpr double coolingFactor = 400.0;

/** Power breakdown of one simulated workload on one NPU instance. */
struct PowerReport
{
    double staticW = 0.0;
    double dynamicW = 0.0;

    // Per-unit dynamic components (they sum to dynamicW).
    double dynamicPeW = 0.0;     ///< MAC datapaths
    double dynamicBufferW = 0.0; ///< shift-register chunk activity
    double dynamicDauW = 0.0;    ///< alignment-unit forwarding
    double dynamicNwW = 0.0;     ///< systolic edge network

    /** Chip power (static + dynamic). */
    double chipW() const { return staticW + dynamicW; }
    /** Cooling power drawn at room temperature. */
    double coolingW() const { return chipW() * coolingFactor; }
    /** Chip + cooling. */
    double totalWithCoolingW() const { return chipW() + coolingW(); }
};

/**
 * Aggregate a simulation run into a power report: dynamic energy is
 * the sum over the run's activity counters weighted by the
 * estimator's per-event energies, divided by the run's wall time.
 */
PowerReport analyze(const estimator::NpuEstimate &estimate,
                    const npusim::SimResult &run);

/** Performance per watt, MAC/s/W. */
double perfPerWatt(double mac_per_sec, double watts);

} // namespace power
} // namespace supernpu

#endif // SUPERNPU_POWER_POWER_HH
