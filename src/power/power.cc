/**
 * @file
 * Power aggregation implementation.
 */

#include "power.hh"

#include "common/logging.hh"

namespace supernpu {
namespace power {

PowerReport
analyze(const estimator::NpuEstimate &estimate,
        const npusim::SimResult &run)
{
    PowerReport report;
    report.staticW = estimate.staticPowerW;

    const double seconds = run.seconds();
    SUPERNPU_ASSERT(seconds > 0, "zero-length run");

    const double pe_energy = (double)run.macOps * estimate.peMacEnergyJ;
    const double buffer_energy =
        (double)run.ifmapShiftChunkCycles *
            estimate.ifmapChunkShiftEnergyJ +
        (double)run.outputShiftChunkCycles *
            estimate.outputChunkShiftEnergyJ;
    const double dau_energy =
        (double)run.dauWordsForwarded * estimate.dauForwardEnergyJ;
    const double nw_energy = (double)run.nwHops * estimate.nwHopEnergyJ;

    report.dynamicPeW = pe_energy / seconds;
    report.dynamicBufferW = buffer_energy / seconds;
    report.dynamicDauW = dau_energy / seconds;
    report.dynamicNwW = nw_energy / seconds;
    report.dynamicW = report.dynamicPeW + report.dynamicBufferW +
                      report.dynamicDauW + report.dynamicNwW;
    return report;
}

double
perfPerWatt(double mac_per_sec, double watts)
{
    SUPERNPU_ASSERT(watts > 0, "non-positive power");
    return mac_per_sec / watts;
}

} // namespace power
} // namespace supernpu
