/**
 * @file
 * Profiler implementation: the enabled flag, the counter registry,
 * and the thread-local scope stack behind perf::Scope.
 */

#include "profile.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

namespace supernpu {
namespace perf {

namespace detail {

namespace {

bool
envDefault()
{
    const char *value = std::getenv("SUPERNPU_PROFILE");
    return value != nullptr && value[0] == '1' && value[1] == '\0';
}

} // namespace

std::atomic<bool> g_enabled{envDefault()};

} // namespace detail

namespace {

/** Accumulated time under one full scope path. */
struct PhaseNode
{
    std::uint64_t count = 0;
    std::uint64_t ns = 0;
};

/**
 * The global store. Counters live in a map of unique_ptrs so the
 * references handed out by counter() survive rehashing and reset().
 */
struct Registry
{
    std::mutex mutex;
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, PhaseNode> phases;
};

Registry &
registry()
{
    static Registry instance;
    return instance;
}

/** The calling thread's stack of live scope names. */
thread_local std::vector<const char *> t_scopeStack;

} // namespace

void
setEnabled(bool on)
{
#ifdef SUPERNPU_PERF_DISABLE
    (void)on;
#else
    detail::g_enabled.store(on, std::memory_order_relaxed);
#endif
}

std::uint64_t
nowNs()
{
    return (std::uint64_t)std::chrono::duration_cast<
               std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

Counter &
counter(const std::string &name)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    auto it = reg.counters.find(name);
    if (it == reg.counters.end()) {
        it = reg.counters
                 .emplace(name, std::make_unique<Counter>())
                 .first;
    }
    return *it->second;
}

void
Scope::open(const char *phase)
{
    t_scopeStack.push_back(phase);
    _live = true;
    _startNs = nowNs();
}

void
Scope::close()
{
    const std::uint64_t elapsed = nowNs() - _startNs;
    // Join the stack (this scope's name included) into the path the
    // record accumulates under, then pop.
    std::string path;
    for (const char *name : t_scopeStack) {
        if (!path.empty())
            path += '/';
        path += name;
    }
    t_scopeStack.pop_back();

    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    PhaseNode &node = reg.phases[path];
    node.count += 1;
    node.ns += elapsed;
}

std::uint64_t
Report::counterValue(const std::string &name) const
{
    for (const CounterStat &stat : counters) {
        if (stat.name == name)
            return stat.value;
    }
    return 0;
}

const PhaseStat *
Report::phase(const std::string &path) const
{
    for (const PhaseStat &stat : phases) {
        if (stat.path == path)
            return &stat;
    }
    return nullptr;
}

Report
report()
{
    Report out;
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (const auto &entry : reg.phases)
        out.phases.push_back(
            {entry.first, entry.second.count, entry.second.ns});
    for (const auto &entry : reg.counters) {
        const std::uint64_t value = entry.second->value();
        if (value != 0)
            out.counters.push_back({entry.first, value});
    }
    // std::map iteration is already name-sorted; keep the promise
    // explicit anyway in case the store ever changes.
    std::sort(out.phases.begin(), out.phases.end(),
              [](const PhaseStat &a, const PhaseStat &b) {
                  return a.path < b.path;
              });
    std::sort(out.counters.begin(), out.counters.end(),
              [](const CounterStat &a, const CounterStat &b) {
                  return a.name < b.name;
              });
    return out;
}

void
reset()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.phases.clear();
    for (auto &entry : reg.counters)
        entry.second->zero();
}

} // namespace perf
} // namespace supernpu
