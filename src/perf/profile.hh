/**
 * @file
 * Lightweight scoped profiler: hierarchical phase timers plus named
 * per-subsystem counters, designed to cost nothing when disabled.
 *
 * Every simulator in this repository is a hot loop (the cycle
 * simulator's mapping walk, the serving calendar queue, the
 * partitioner's DP) and the bench harness needs to know where wall
 * time goes — but the ledger CI jobs byte-compare outputs and the
 * tier-1 tests time-bound the simulators, so instrumentation must
 * vanish when it is not asked for. The contract:
 *
 *  - perf::enabled() is one relaxed atomic load. Scope's
 *    constructor and Counter::add() check it first and do nothing
 *    else when it is false; a disabled build-wide kill switch
 *    (-DSUPERNPU_PERF_DISABLE) turns the check into `false` at
 *    compile time so the optimizer deletes the instrumentation
 *    outright. A test pins the disabled path's cost.
 *  - Profiling turns on via the SUPERNPU_PROFILE environment
 *    variable ("1") or perf::setEnabled(true) (the bench harness
 *    and the CLI's --profile flag).
 *  - perf::Scope times a phase. Scopes nest through a thread-local
 *    stack: Scope("layer") inside Scope("simRun") accumulates under
 *    the path "simRun/layer". Aggregation is per full path, so the
 *    report is a tree and obs::auditPerf() can check the roll-up
 *    invariant (a path's children can never sum past their parent —
 *    child intervals are disjoint subintervals of the parent's).
 *  - perf::counter("name") registers (once) and returns a stable
 *    atomic counter for inner-loop event counts: simulated mappings,
 *    serving calendar events, sim-cache hits, thread-pool tasks.
 *  - perf::report() snapshots both into deterministic (name-sorted)
 *    vectors; perf::reset() zeroes everything between bench cases.
 *
 * Threading: scopes and counters may be used from ThreadPool
 * workers. Counters are atomics; phase records merge under one
 * mutex at scope exit (scope granularity is runs and layers, never
 * per-mapping, so the lock is off the true hot paths). reset() and
 * report() assume no scope is live concurrently — call them from
 * the driver between runs, not mid-sweep.
 *
 * This library deliberately depends on nothing else in the repo so
 * every subsystem (including common/) could link it.
 */

#ifndef SUPERNPU_PERF_PROFILE_HH
#define SUPERNPU_PERF_PROFILE_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace supernpu {
namespace perf {

namespace detail {
/** Global on/off state; do not touch directly — use enabled(). */
extern std::atomic<bool> g_enabled;
} // namespace detail

/** Whether instrumentation records anything right now. */
inline bool
enabled()
{
#ifdef SUPERNPU_PERF_DISABLE
    return false;
#else
    return detail::g_enabled.load(std::memory_order_relaxed);
#endif
}

/**
 * Turn profiling on or off for the whole process, overriding the
 * SUPERNPU_PROFILE environment default. A no-op (stays off) when
 * compiled with SUPERNPU_PERF_DISABLE.
 */
void setEnabled(bool on);

/** Monotonic nanoseconds (steady clock). */
std::uint64_t nowNs();

/**
 * A named event counter with a process-lifetime address. Obtain via
 * perf::counter(); hot loops should cache the reference:
 *
 *     static perf::Counter &hits = perf::counter("simCache.hits");
 *     if (perf::enabled()) hits.add(1);
 */
class Counter
{
  public:
    /** Add `delta` events; no-op while profiling is disabled. */
    void add(std::uint64_t delta)
    {
        if (enabled())
            _value.fetch_add(delta, std::memory_order_relaxed);
    }

    std::uint64_t value() const
    {
        return _value.load(std::memory_order_relaxed);
    }

    void zero() { _value.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> _value{0};
};

/**
 * Registry lookup: the counter named `name`, created on first use.
 * The returned reference stays valid for the process lifetime (the
 * registry never deletes counters; reset() only zeroes them).
 */
Counter &counter(const std::string &name);

/**
 * RAII phase timer. Construction pushes `phase` onto the calling
 * thread's scope stack and starts the clock (when enabled);
 * destruction records the elapsed time under the joined stack path.
 * `phase` must outlive the scope — string literals in practice.
 */
class Scope
{
  public:
    explicit Scope(const char *phase)
    {
        if (enabled())
            open(phase);
    }
    ~Scope()
    {
        if (_live)
            close();
    }

    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    void open(const char *phase);
    void close();

    std::uint64_t _startNs = 0;
    bool _live = false;
};

/** Accumulated time of one phase path ("explore/simRun/layer"). */
struct PhaseStat
{
    std::string path;
    std::uint64_t count = 0; ///< scope entries recorded
    std::uint64_t ns = 0;    ///< total nanoseconds across entries
};

/** Snapshot of one counter. */
struct CounterStat
{
    std::string name;
    std::uint64_t value = 0;
};

/** A deterministic (name-sorted) snapshot of everything recorded. */
struct Report
{
    std::vector<PhaseStat> phases;     ///< sorted by path
    std::vector<CounterStat> counters; ///< sorted by name, nonzero only

    bool empty() const { return phases.empty() && counters.empty(); }
    /** The counter's value, or 0 when it never fired. */
    std::uint64_t counterValue(const std::string &name) const;
    /** The phase's stats, or null when it never ran. */
    const PhaseStat *phase(const std::string &path) const;
};

/** Snapshot all phases and all nonzero counters. */
Report report();

/**
 * Zero every counter and drop every phase record (registrations are
 * kept). Call between bench cases, never while scopes are live on
 * other threads.
 */
void reset();

} // namespace perf
} // namespace supernpu

#endif // SUPERNPU_PERF_PROFILE_HH
