/**
 * @file
 * Bench harness implementation: the case registry, the
 * warmup/repeat/median timing loop, JSON export, and baseline
 * comparison.
 */

#include "bench_runner.hh"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "check/runner.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "dnn/networks.hh"
#include "estimator/npu_estimator.hh"
#include "npusim/batch.hh"
#include "npusim/explorer.hh"
#include "npusim/sim.hh"
#include "npusim/sim_cache.hh"
#include "obs/audit.hh"
#include "obs/json_reader.hh"
#include "obs/json_writer.hh"
#include "partition/pipeline_sim.hh"
#include "reliability/fault_model.hh"
#include "serving/simulator.hh"
#include "sharding/planner.hh"

namespace supernpu {
namespace bench {

namespace {

/** What one case execution produced (work + deterministic metrics). */
struct CaseRun
{
    std::uint64_t work = 0;
    std::vector<Metric> metrics;
};

/** Shared knobs the case bodies read. */
struct CaseCtx
{
    bool smoke = true;
    int jobs = 1;
};

/** One registered case. */
struct BenchCase
{
    const char *name;
    const char *unit;
    CaseRun (*fn)(const CaseCtx &);
};

void
addMetric(CaseRun &run, const char *name, std::uint64_t value)
{
    run.metrics.push_back({name, value});
}

/** FNV-1a over bytes; truncated to 32 bits so JSON numbers stay
 *  exactly representable as doubles for baseline comparison. */
class Fingerprint
{
  public:
    void mix(const void *bytes, std::size_t len)
    {
        const unsigned char *p = (const unsigned char *)bytes;
        for (std::size_t i = 0; i < len; ++i) {
            _hash ^= p[i];
            _hash *= 0x100000001b3ull;
        }
    }
    void mix(const std::string &text) { mix(text.data(), text.size()); }
    void mix(double value) { mix(&value, sizeof value); }
    std::uint64_t value32() const { return _hash & 0xffffffffull; }

  private:
    std::uint64_t _hash = 0xcbf29ce484222325ull;
};

/** The paper's RSFQ 1.0 um SuperNPU design point. */
estimator::NpuEstimate
superNpuEstimate(sfq::Technology tech = sfq::Technology::RSFQ)
{
    sfq::DeviceConfig device;
    device.technology = tech;
    sfq::CellLibrary library(device);
    estimator::NpuEstimator est(library);
    return est.estimate(estimator::NpuConfig::superNpu());
}

/** The tiny two-conv net the serving-path cases stream, so their
 *  wall clock measures the event loop rather than cycle sims. */
dnn::Network
servingNet()
{
    dnn::Network net;
    net.name = "BenchServeNet";
    net.layers = {dnn::conv("c1", 3, 16, 16, 3),
                  dnn::conv("c2", 16, 16, 16, 3)};
    net.check();
    return net;
}

// --- case: micro_kernels --------------------------------------------
// Raw cycle-simulator throughput: fresh NpuSimulator runs over the
// evaluation workloads at their Table II batch (and batch 1 in the
// full suite), no memo cache.
CaseRun
caseMicroKernels(const CaseCtx &ctx)
{
    const estimator::NpuEstimate est = superNpuEstimate();
    const npusim::NpuSimulator sim(est);
    const auto workloads = dnn::evaluationWorkloads();
    const std::vector<int> batches =
        ctx.smoke ? std::vector<int>{0} : std::vector<int>{0, 1};

    CaseRun run;
    std::uint64_t cycles = 0, macs = 0, mappings = 0;
    for (int forced : batches) {
        for (const auto &net : workloads) {
            const int batch =
                forced > 0 ? forced
                           : npusim::maxBatch(est.config, est, net);
            const npusim::SimResult result = sim.run(net, batch);
            cycles += result.totalCycles;
            macs += result.macOps;
            for (const auto &layer : result.layers)
                mappings += layer.weightMappings;
            run.work += 1;
        }
    }
    addMetric(run, "macOps", macs);
    addMetric(run, "totalCycles", cycles);
    addMetric(run, "weightMappings", mappings);
    return run;
}

// --- case: sweep_scaling --------------------------------------------
// Cold-cache design-space sweep on the thread pool; the one case
// whose wall clock responds to --jobs. The ranked output is
// fingerprinted so a nondeterministic sweep fails loudly.
CaseRun
caseSweepScaling(const CaseCtx &ctx)
{
    sfq::DeviceConfig device;
    sfq::CellLibrary library(device);
    std::vector<dnn::Network> workloads;
    if (ctx.smoke) {
        workloads = {dnn::makeAlexNet(), dnn::makeMobileNet()};
    } else {
        workloads = dnn::evaluationWorkloads();
    }
    npusim::DesignSpaceExplorer explorer(library, workloads);

    npusim::ExplorationSpace space;
    if (ctx.smoke) {
        space.widths = {64, 32};
        space.bufferMbForWidth = {46, 50};
        space.divisions = {16, 64};
        space.regsPerPe = {1, 8};
    }

    npusim::SimCache cold;
    explorer.setCache(&cold);
    ThreadPool pool(ctx.jobs);
    const auto ranked = explorer.explore(
        space, npusim::Objective::Throughput, pool);

    CaseRun run;
    run.work = ranked.size();
    std::uint64_t operable = 0;
    Fingerprint print;
    for (const auto &cand : ranked) {
        operable += cand.operable ? 1 : 0;
        print.mix(cand.config.name);
        print.mix(cand.score);
        print.mix(cand.avgMacPerSec);
    }
    addMetric(run, "candidates", ranked.size());
    addMetric(run, "operable", operable);
    addMetric(run, "rankHash32", print.value32());
    const auto pool_stats = pool.stats();
    addMetric(run, "poolTasks", pool_stats.tasks);
    return run;
}

// --- case: serving_tail_latency -------------------------------------
// Discrete-event serving near capacity: measures calendar-queue and
// batching throughput (the service model is tiny by construction).
CaseRun
caseServingTailLatency(const CaseCtx &ctx)
{
    const estimator::NpuEstimate est = superNpuEstimate();
    const dnn::Network net = servingNet();
    const int max_batch = npusim::maxBatch(est.config, est, net);
    npusim::SimCache cache;
    const serving::BatchServiceModel service(est, net, &cache);

    serving::ServingConfig config;
    config.arrival.kind = serving::ArrivalKind::OpenPoisson;
    config.batching.policy = serving::BatchPolicy::DynamicTimeout;
    config.batching.maxBatch = max_batch;
    config.batching.timeoutSec = 100e-6;
    config.dispatch = serving::DispatchPolicy::JoinShortestQueue;
    config.chips = ctx.smoke ? 1 : 4;
    config.requests = ctx.smoke ? 8000 : 30000;
    config.arrival.ratePerSec =
        0.7 * service.peakRps(max_batch) * (double)config.chips;

    serving::ServingSimulator sim(service, config);
    const serving::ServingReport report = sim.run();
    obs::enforce(obs::auditServing(report), "bench serving");

    CaseRun run;
    run.work = report.completed;
    addMetric(run, "completed", report.completed);
    addMetric(run, "batchesLaunched", report.batchesLaunched);
    addMetric(run, "events", report.eventsProcessed);
    addMetric(run, "p99Ns",
              (std::uint64_t)(report.latencyP99 * 1e9 + 0.5));
    return run;
}

// --- case: fault_sweep ----------------------------------------------
// Serving under a seeded fault schedule with retry/backoff: the
// resilience machinery's event overhead at a fixed fault sequence.
CaseRun
caseFaultSweep(const CaseCtx &ctx)
{
    const estimator::NpuEstimate est = superNpuEstimate();
    const dnn::Network net = servingNet();
    const int max_batch = npusim::maxBatch(est.config, est, net);
    npusim::SimCache cache;
    const serving::BatchServiceModel service(est, net, &cache);

    const int chips = 4;
    const std::uint64_t requests = ctx.smoke ? 4000 : 20000;
    const double batch_sec = service.batchSeconds(max_batch);
    const double rps =
        0.6 * chips * (double)max_batch / batch_sec;
    const double makespan = (double)requests / rps;

    reliability::FaultScheduleConfig fault_cfg;
    fault_cfg.chips = chips;
    fault_cfg.seed = streamSeed(0xbe9c5eedull, 0); // fixed bench seed
    fault_cfg.horizonSec = makespan;
    fault_cfg.pulseDropRatePerSec = 40.0 / makespan;
    fault_cfg.clockSkewRatePerSec = 8.0 / makespan;
    fault_cfg.linkGlitchRatePerSec = 20.0 / makespan;
    fault_cfg.clockSkewDurationSec = 4.0 * batch_sec;
    fault_cfg.linkGlitchDelaySec = 0.5 * batch_sec;

    serving::ServingConfig config;
    config.arrival.ratePerSec = rps;
    config.chips = chips;
    config.requests = requests;
    config.batching.maxBatch = max_batch;
    config.faults = reliability::FaultSchedule::generate(fault_cfg);
    config.resilience.recovery =
        serving::RecoveryPolicy::RetryBackoff;
    config.resilience.detectLatencySec = 0.25 * batch_sec;
    config.resilience.backoffBaseSec = batch_sec;

    serving::ServingSimulator sim(service, config);
    const serving::ServingReport report = sim.run();
    obs::enforce(obs::auditServing(report), "bench fault_sweep");

    CaseRun run;
    run.work = report.completed;
    addMetric(run, "completed", report.completed);
    addMetric(run, "events", report.eventsProcessed);
    addMetric(run, "faultsInjected", report.faultsInjected);
    addMetric(run, "requestsKilled", report.requestsKilled);
    addMetric(run, "availabilityPpb",
              (std::uint64_t)(report.availability * 1e9 + 0.5));
    return run;
}

// --- case: pipeline_scaling -----------------------------------------
// Partitioner DP plus pipeline composition at K = 1/2/4 with a cold
// sim cache: the multi-chip planning path end to end.
CaseRun
casePipelineScaling(const CaseCtx &ctx)
{
    const estimator::NpuEstimate est = superNpuEstimate();
    const dnn::Network net =
        ctx.smoke ? dnn::makeMobileNet() : dnn::makeResNet50();
    const int batch = npusim::maxBatch(est.config, est, net);

    CaseRun run;
    std::uint64_t makespan = 0, stage_cycles = 0, link_cycles = 0;
    for (int stages : {1, 2, 4}) {
        npusim::SimCache cold;
        partition::PipelineSimulator pipeline(est, {}, &cold);
        const partition::PipelineResult result =
            pipeline.run(net, stages, batch, 8);
        obs::enforce(obs::auditPipeline(result), "bench pipeline");
        makespan += result.makespanCycles;
        stage_cycles += result.totalStageCycles;
        link_cycles += result.totalLinkCycles;
        run.work += 1;
    }
    addMetric(run, "makespanCycles", makespan);
    addMetric(run, "stageCycles", stage_cycles);
    addMetric(run, "linkCycles", link_cycles);
    return run;
}

// --- case: shard_scaling --------------------------------------------
// Hybrid DP×TP×PP factorization search over chip budgets 1/2/4 with
// a cold sim cache: the sharding planner end to end, including the
// tensor-shard re-simulations and collective closed forms.
CaseRun
caseShardScaling(const CaseCtx &ctx)
{
    const estimator::NpuEstimate est = superNpuEstimate();
    const dnn::Network net =
        ctx.smoke ? dnn::makeMobileNet() : dnn::makeResNet50();
    const int batch = npusim::maxBatch(est.config, est, net);

    CaseRun run;
    std::uint64_t interval = 0, collective = 0, gather = 0;
    std::uint64_t evaluated = 0;
    for (int budget : {1, 2, 4}) {
        npusim::SimCache cold;
        sharding::HybridPlanner planner(est, {}, &cold);
        const sharding::PlanSearch search = planner.plan(
            net, budget, batch, sharding::PlanObjective::Throughput);
        obs::enforce(obs::auditSharding(search.best()),
                     "bench shard");
        interval += search.best().intervalCycles;
        collective += search.best().tensorCollectiveCycles;
        gather += search.best().gatherCycles;
        evaluated += search.evaluated.size();
        run.work += 1;
    }
    addMetric(run, "intervalCycles", interval);
    addMetric(run, "collectiveCycles", collective);
    addMetric(run, "gatherCycles", gather);
    addMetric(run, "plansEvaluated", evaluated);
    return run;
}

// --- case: planner_search -------------------------------------------
// The hybrid DP×TP×PP factorization search at one 8-chip budget on a
// cold sim cache, fanned across --jobs pool threads — the case the
// perf job times at jobs 1 and 4 to gate the parallel speedup. Every
// evaluated plan and the layer-timing-cache tallies are pinned as
// metrics; all of them must be identical at any job count.
CaseRun
casePlannerSearch(const CaseCtx &ctx)
{
    const estimator::NpuEstimate est = superNpuEstimate();
    const dnn::Network net =
        ctx.smoke ? dnn::makeMobileNet() : dnn::makeResNet50();
    const int batch = npusim::maxBatch(est.config, est, net);

    npusim::SimCache cold;
    sharding::HybridPlanner planner(est, {}, &cold);
    const sharding::PlanSearch search = planner.plan(
        net, 8, batch, sharding::PlanObjective::Throughput,
        ctx.jobs);
    obs::enforce(obs::auditSharding(search.best()),
                 "bench planner_search");

    CaseRun run;
    run.work = search.evaluated.size();
    Fingerprint print;
    for (const auto &plan : search.evaluated) {
        print.mix(&plan.dataParallel, sizeof plan.dataParallel);
        print.mix(&plan.tensorShards, sizeof plan.tensorShards);
        print.mix(&plan.pipelineStages, sizeof plan.pipelineStages);
        print.mix(&plan.intervalCycles, sizeof plan.intervalCycles);
        print.mix(&plan.latencyCycles, sizeof plan.latencyCycles);
        print.mix(plan.throughput());
    }
    const partition::LayerTimingCacheStats timings =
        planner.timingCacheStats();
    addMetric(run, "plansEvaluated", search.evaluated.size());
    addMetric(run, "bestIndex", (std::uint64_t)search.bestIndex);
    addMetric(run, "bestIntervalCycles",
              search.best().intervalCycles);
    addMetric(run, "planHash32", print.value32());
    addMetric(run, "timingCacheHits", timings.hits);
    addMetric(run, "timingCacheMisses", timings.misses);
    return run;
}

// --- case: check_fuzz -----------------------------------------------
// The check harness's generate-mode sweep (src/check) over the full
// oracle catalog, fanned across --jobs pool threads. The outcome
// hash is a pure function of (seed, cases, cook) — pinning it
// catches any job-count dependence creeping into the fuzz sweep.
CaseRun
caseCheckFuzz(const CaseCtx &ctx)
{
    sfq::DeviceConfig device;
    const sfq::CellLibrary library(device);

    check::RunnerOptions options;
    options.seed = 9;
    options.cases = ctx.smoke ? 12 : 40;
    options.shrinkFailures = false;
    options.jobs = ctx.jobs;
    const check::CheckSummary summary =
        check::runCases(options, library);

    CaseRun run;
    run.work = summary.ran;
    addMetric(run, "oracleRuns", summary.ran);
    addMetric(run, "skipped", summary.skipped);
    addMetric(run, "failures", summary.failures);
    // Truncated like Fingerprint::value32 so the JSON number stays
    // exactly representable as a double.
    addMetric(run, "outcomeHash32",
              summary.outcomeHash & 0xffffffffull);
    return run;
}

const std::vector<BenchCase> &
allCases()
{
    static const std::vector<BenchCase> cases = {
        {"micro_kernels", "sims/sec", caseMicroKernels},
        {"sweep_scaling", "candidates/sec", caseSweepScaling},
        {"serving_tail_latency", "requests/sec",
         caseServingTailLatency},
        {"fault_sweep", "requests/sec", caseFaultSweep},
        {"pipeline_scaling", "plans/sec", casePipelineScaling},
        {"shard_scaling", "plans/sec", caseShardScaling},
        {"planner_search", "plans/sec", casePlannerSearch},
        {"check_fuzz", "runs/sec", caseCheckFuzz},
    };
    return cases;
}

/** Which registered cases the options select, validated. */
std::vector<const BenchCase *>
selectCases(const BenchOptions &options)
{
    if (options.suite != "smoke" && options.suite != "full")
        fatal("unknown bench suite '", options.suite,
              "' (expected smoke or full)");
    std::vector<const BenchCase *> selected;
    for (const auto &candidate : allCases()) {
        if (!options.only.empty() &&
            std::find(options.only.begin(), options.only.end(),
                      candidate.name) == options.only.end())
            continue;
        selected.push_back(&candidate);
    }
    for (const auto &name : options.only) {
        const bool known = std::any_of(
            allCases().begin(), allCases().end(),
            [&](const BenchCase &c) { return name == c.name; });
        if (!known)
            fatal("unknown bench case '", name, "'");
    }
    return selected;
}

double
median(std::vector<double> values)
{
    SUPERNPU_ASSERT(!values.empty(), "median of nothing");
    std::sort(values.begin(), values.end());
    const std::size_t n = values.size();
    return n % 2 == 1
               ? values[n / 2]
               : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

bool
sameMetrics(const std::vector<Metric> &a, const std::vector<Metric> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].name != b[i].name || a[i].value != b[i].value)
            return false;
    }
    return true;
}

} // namespace

std::vector<std::string>
suiteCaseNames(const std::string &suite)
{
    BenchOptions options;
    options.suite = suite;
    std::vector<std::string> names;
    for (const BenchCase *c : selectCases(options))
        names.push_back(c->name);
    return names;
}

BenchReport
runSuite(const BenchOptions &options)
{
    SUPERNPU_ASSERT(options.repetitions >= 1, "need >= 1 repetition");
    SUPERNPU_ASSERT(options.warmups >= 0, "negative warmups");
    SUPERNPU_ASSERT(options.jobs >= 1, "need >= 1 job");
    SUPERNPU_ASSERT(options.injectSlowdownPct >= 0.0,
                    "negative injected slowdown");

    const std::vector<const BenchCase *> cases = selectCases(options);
    CaseCtx ctx;
    ctx.smoke = options.suite == "smoke";
    ctx.jobs = options.jobs;

    BenchReport report;
    report.suite = options.suite;
    report.repetitions = options.repetitions;
    report.warmups = options.warmups;
    report.jobs = options.jobs;

    const bool was_profiling = perf::enabled();
    if (options.profile)
        perf::setEnabled(true);

    for (const BenchCase *bench_case : cases) {
        CaseResult result;
        result.name = bench_case->name;
        result.unit = bench_case->unit;

        for (int i = 0; i < options.warmups; ++i)
            (void)bench_case->fn(ctx);

        // Exclude warmups from the per-case profiler snapshot.
        if (options.profile)
            perf::reset();

        CaseRun first;
        std::uint64_t total_ns = 0;
        for (int rep = 0; rep < options.repetitions; ++rep) {
            const std::uint64_t start = perf::nowNs();
            CaseRun run = bench_case->fn(ctx);
            const std::uint64_t elapsed = perf::nowNs() - start;
            total_ns += elapsed;
            result.wallSec.push_back((double)elapsed * 1e-9);
            if (rep == 0) {
                first = std::move(run);
            } else if (!sameMetrics(first.metrics, run.metrics) ||
                       first.work != run.work) {
                // The whole BENCH determinism contract rests on
                // this: a case must do identical work every rep.
                fatal("bench case '", bench_case->name,
                      "' produced different metrics across"
                      " repetitions — simulator nondeterminism");
            }
        }
        result.work = first.work;
        result.metrics = std::move(first.metrics);
        std::sort(result.metrics.begin(), result.metrics.end(),
                  [](const Metric &a, const Metric &b) {
                      return a.name < b.name;
                  });

        result.medianWallSec = median(result.wallSec);
        const double slow = 1.0 + options.injectSlowdownPct / 100.0;
        result.medianWallSec *= slow;
        for (double &sec : result.wallSec)
            sec *= slow;
        if (result.medianWallSec > 0.0) {
            result.throughput =
                (double)result.work / result.medianWallSec;
        }

        if (options.profile) {
            result.profile = perf::report();
            // Single-threaded cases must satisfy the roll-up
            // invariants, phase time bounded by the measured wall.
            obs::enforce(
                obs::auditPerf(result.profile,
                               options.jobs == 1 ? total_ns : 0),
                std::string("bench perf ") + bench_case->name);
        }

        report.cases.push_back(std::move(result));
    }

    if (options.profile)
        perf::setEnabled(was_profiling);
    return report;
}

std::string
benchJson(const BenchReport &report, bool include_timing)
{
    obs::JsonWriter json;
    json.beginObject();
    json.key("schema").value(kBenchSchema);
    json.key("suite").value(report.suite);
    json.key("jobs").value((std::uint64_t)report.jobs);
    json.key("warmups").value((std::uint64_t)report.warmups);
    json.key("repetitions").value((std::uint64_t)report.repetitions);
    json.key("cases").beginArray();
    for (const CaseResult &c : report.cases) {
        json.beginObject();
        json.key("name").value(c.name);
        json.key("unit").value(c.unit);
        json.key("work").value(c.work);
        json.key("metrics").beginObject();
        for (const Metric &metric : c.metrics)
            json.key(metric.name).value(metric.value);
        json.endObject();
        if (include_timing) {
            json.key("timing").beginObject();
            json.key("medianWallSec").value(c.medianWallSec);
            json.key("throughput").value(c.throughput);
            json.key("wallSec").beginArray();
            for (double sec : c.wallSec)
                json.value(sec);
            json.endArray();
            json.endObject();
            if (!c.profile.empty()) {
                json.key("profile").beginObject();
                json.key("counters").beginObject();
                for (const auto &counter : c.profile.counters)
                    json.key(counter.name).value(counter.value);
                json.endObject();
                json.key("phases").beginArray();
                for (const auto &phase : c.profile.phases) {
                    json.beginObject();
                    json.key("path").value(phase.path);
                    json.key("count").value(phase.count);
                    json.key("ns").value(phase.ns);
                    json.endObject();
                }
                json.endArray();
                json.endObject();
            }
        }
        json.endObject();
    }
    json.endArray();
    json.endObject();
    return json.str() + "\n";
}

bool
writeBenchJson(const BenchReport &report, bool include_timing,
               const std::string &path)
{
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    if (!file)
        return false;
    file << benchJson(report, include_timing);
    return file.good();
}

std::string
defaultOutputPath(const std::string &suite)
{
    return "BENCH_" + suite + ".json";
}

CompareOutcome
compareToBaseline(const BenchReport &current,
                  const std::string &baseline_json,
                  double threshold_pct)
{
    CompareOutcome outcome;

    std::string parse_error;
    const auto baseline = obs::parseJson(baseline_json, &parse_error);
    if (!baseline) {
        outcome.ok = false;
        outcome.error = "baseline unreadable: " + parse_error;
        return outcome;
    }
    const std::string schema = baseline->stringAt("schema");
    if (schema != kBenchSchema) {
        outcome.ok = false;
        outcome.error = "baseline schema '" + schema +
                        "' does not match '" + kBenchSchema + "'";
        return outcome;
    }
    const obs::JsonValue *base_cases = baseline->find("cases");
    if (base_cases == nullptr || !base_cases->isArray()) {
        outcome.ok = false;
        outcome.error = "baseline has no cases array";
        return outcome;
    }

    for (const CaseResult &c : current.cases) {
        CaseDelta delta;
        delta.name = c.name;
        delta.currentThroughput = c.throughput;

        const obs::JsonValue *base_case = nullptr;
        for (const obs::JsonValue &candidate : base_cases->array) {
            if (candidate.stringAt("name") == c.name) {
                base_case = &candidate;
                break;
            }
        }
        if (base_case == nullptr) {
            delta.note = "new case (not in baseline)";
            outcome.deltas.push_back(delta);
            continue;
        }

        const obs::JsonValue *timing = base_case->find("timing");
        if (timing != nullptr &&
            timing->numberAt("throughput") > 0.0 &&
            c.throughput > 0.0) {
            // Timed baseline: gate on wall-clock throughput.
            delta.comparable = true;
            delta.baselineThroughput = timing->numberAt("throughput");
            delta.slowdownPct =
                (delta.baselineThroughput / c.throughput - 1.0) *
                100.0;
            if (delta.slowdownPct > threshold_pct) {
                delta.regressed = true;
                outcome.ok = false;
            }
            outcome.deltas.push_back(delta);
            continue;
        }

        // Untimed baseline (the committed --no-timing form): gate on
        // exact equality of the deterministic work metrics.
        const obs::JsonValue *base_metrics =
            base_case->find("metrics");
        if (base_metrics == nullptr || !base_metrics->isObject()) {
            delta.note = "baseline case has neither timing nor"
                         " metrics";
            outcome.deltas.push_back(delta);
            continue;
        }
        delta.comparable = true;
        for (const Metric &metric : c.metrics) {
            const obs::JsonValue *base_value =
                base_metrics->find(metric.name);
            if (base_value == nullptr || !base_value->isNumber() ||
                base_value->number != (double)metric.value) {
                delta.regressed = true;
                outcome.ok = false;
                delta.note += delta.note.empty() ? "" : "; ";
                delta.note += "metric " + metric.name + " drifted";
            }
        }
        if ((double)c.work !=
            base_case->numberAt("work", (double)c.work)) {
            delta.regressed = true;
            outcome.ok = false;
            delta.note += delta.note.empty() ? "" : "; ";
            delta.note += "work drifted";
        }
        if (!delta.regressed)
            delta.note = "metrics identical (untimed baseline)";
        outcome.deltas.push_back(delta);
    }
    return outcome;
}

} // namespace bench
} // namespace supernpu
