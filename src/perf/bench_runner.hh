/**
 * @file
 * The unified bench harness: one curated suite of end-to-end
 * performance cases over the simulator stack, timed with
 * warmup + repetition + median-of-N, exported as a schema-versioned
 * BENCH_<suite>.json, and comparable against a saved baseline.
 *
 * The per-figure binaries under bench/ reproduce *paper numbers*;
 * this harness measures the *simulator itself* — how many cycle
 * simulations, served requests, calendar events, and partition plans
 * per second the host sustains — so a PR that slows the hot paths
 * shows up as a number, not a hunch. Six cases cover the stack:
 *
 *   micro_kernels      cycle simulator across the evaluation
 *                      workloads (sims/sec)
 *   sweep_scaling      cold-cache design-space sweep on the thread
 *                      pool (candidates/sec)
 *   serving_tail_latency  discrete-event serving run near capacity
 *                      (requests/sec)
 *   fault_sweep        serving under a seeded fault schedule with
 *                      retries (requests/sec)
 *   pipeline_scaling   partition + pipeline composition at
 *                      K = 1/2/4 (plans/sec)
 *   shard_scaling      hybrid DP×TP×PP planner search over chip
 *                      budgets 1/2/4 (plans/sec)
 *
 * Output discipline: every case records deterministic uint64 work
 * metrics (cycles, requests, events, a rank fingerprint) next to its
 * wall-clock timing. With timing excluded (--no-timing) the JSON is
 * byte-identical across reruns at a fixed --jobs — that is the file
 * CI byte-compares and the form the committed baseline is stored in,
 * while the timed form feeds --baseline/--threshold regression
 * checks. Metrics are additionally required to be identical across
 * the repetitions of one run (the harness fatals otherwise), so a
 * nondeterministic simulator cannot hide behind timing noise.
 */

#ifndef SUPERNPU_PERF_BENCH_RUNNER_HH
#define SUPERNPU_PERF_BENCH_RUNNER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "perf/profile.hh"

namespace supernpu {
namespace bench {

/** Schema identifier embedded in every BENCH_*.json. */
constexpr const char *kBenchSchema = "supernpu-bench-v1";

/** How to run the suite. */
struct BenchOptions
{
    /** "smoke" (CI-sized) or "full". */
    std::string suite = "smoke";
    int repetitions = 3; ///< timed runs per case (median reported)
    int warmups = 1;     ///< untimed runs per case before timing
    int jobs = 1;        ///< ThreadPool width for sweep cases
    /** Emit wall-clock fields; off for determinism checks. */
    bool includeTiming = true;
    /** Record perf phases/counters per case into the report. */
    bool profile = false;
    /**
     * Test hook: report throughput as if the harness had slowed
     * down by this percentage. Lets tests and CI prove the
     * --baseline/--threshold gate actually fails on a regression.
     */
    double injectSlowdownPct = 0.0;
    /** When non-empty, run only the named cases. */
    std::vector<std::string> only;
};

/** One deterministic work metric of a case. */
struct Metric
{
    std::string name;
    std::uint64_t value = 0;
};

/** Everything measured for one case. */
struct CaseResult
{
    std::string name;
    std::string unit;         ///< throughput unit, e.g. "sims/sec"
    std::uint64_t work = 0;   ///< work items per repetition
    std::vector<Metric> metrics; ///< deterministic, name-sorted

    std::vector<double> wallSec; ///< per timed repetition
    double medianWallSec = 0.0;
    double throughput = 0.0;     ///< work / medianWallSec

    /** Per-case profiler snapshot (only with BenchOptions::profile). */
    perf::Report profile;
};

/** One harness invocation's results. */
struct BenchReport
{
    std::string suite;
    int repetitions = 0;
    int warmups = 0;
    int jobs = 0;
    std::vector<CaseResult> cases;
};

/** Names of the cases a suite would run, in execution order. */
std::vector<std::string> suiteCaseNames(const std::string &suite);

/** Run the suite. Fatals on unknown suite/case names. */
BenchReport runSuite(const BenchOptions &options);

/**
 * Render the report as deterministic-layout JSON. With
 * `include_timing` false, every wall-clock-derived field (the
 * "timing" and "profile" objects) is omitted and the document is a
 * pure function of (code, suite, jobs) — byte-identical across
 * reruns.
 */
std::string benchJson(const BenchReport &report, bool include_timing);

/** Write benchJson() to `path`; false when the file cannot open. */
bool writeBenchJson(const BenchReport &report, bool include_timing,
                    const std::string &path);

/** Conventional artifact name: BENCH_<suite>.json. */
std::string defaultOutputPath(const std::string &suite);

/** One case's comparison against the baseline. */
struct CaseDelta
{
    std::string name;
    bool comparable = false; ///< found in baseline with usable data
    bool regressed = false;
    double baselineThroughput = 0.0; ///< 0 when baseline untimed
    double currentThroughput = 0.0;
    double slowdownPct = 0.0; ///< positive = slower than baseline
    std::string note; ///< why not comparable / what regressed
};

/** Outcome of a --baseline comparison. */
struct CompareOutcome
{
    bool ok = true; ///< no case regressed and the baseline parsed
    std::string error; ///< parse/schema failure, "" otherwise
    std::vector<CaseDelta> deltas;
};

/**
 * Compare a fresh report against a saved BENCH_*.json. Timed
 * baseline cases gate on throughput: a case regresses when it is
 * more than `threshold_pct` percent slower than the baseline.
 * Untimed baseline cases (saved with --no-timing, the committed
 * form) gate on exact work-metric equality instead — any drift in
 * the deterministic counters is flagged. Cases missing from the
 * baseline are noted but never fail the comparison.
 */
CompareOutcome compareToBaseline(const BenchReport &current,
                                 const std::string &baseline_json,
                                 double threshold_pct);

} // namespace bench
} // namespace supernpu

#endif // SUPERNPU_PERF_BENCH_RUNNER_HH
