/**
 * @file
 * Canned demonstration circuits for the JJ transient simulator:
 * Josephson transmission lines (JTL), a pulse splitter, and an SFQ
 * delay flip-flop (DFF) with its quantizing storage loop.
 *
 * These circuits demonstrate, at the analog level, the behaviours the
 * architecture model in src/sfq abstracts: ballistic picosecond pulse
 * propagation, pulse fan-out, and clocked storage/release of a single
 * flux quantum (the paper's Fig. 1).
 *
 * Device parameters approximate a 10 kA/cm^2 Nb process with 1 um
 * minimum junction size (the AIST ADP-class process the paper's cell
 * library targets): Ic = 0.1 mA for a unit junction, C = 42 fF,
 * critically damped external shunt.
 */

#ifndef SUPERNPU_JSIM_CELLS_HH
#define SUPERNPU_JSIM_CELLS_HH

#include <cstddef>
#include <vector>

#include "circuit.hh"
#include "simulator.hh"

namespace supernpu {
namespace jsim {

/** Unit-junction device parameters for circuit construction. */
struct DeviceParams
{
    double unitIc = 1.0e-4;       ///< critical current of a 1x junction, A
    double unitCap = 4.2e-14;     ///< junction capacitance, F
    double betaC = 1.0;           ///< Stewart-McCumber damping target
    double jtlInductance = 4e-12; ///< H, between JTL stages
    double jtlBiasFraction = 0.7; ///< DC bias as a fraction of Ic

    /** Shunt resistance giving the requested beta_c for a junction
     *  scaled by `ic_scale`. */
    double shuntFor(double ic_scale = 1.0) const;
};

/**
 * A JTL chain appended to a circuit: `stages` junctions to ground
 * joined by series inductors. The first stage's node is the input,
 * the last stage's node is the output.
 */
struct JtlChain
{
    NodeId input = ground;
    NodeId output = ground;
    std::vector<std::size_t> junctionIndices;
};

/** Append a JTL chain starting at a fresh node. */
JtlChain appendJtl(Circuit &circuit, const DeviceParams &params,
                   std::size_t stages, const std::string &label_prefix);

/** Append a JTL chain driven from an existing node. */
JtlChain appendJtlFrom(Circuit &circuit, const DeviceParams &params,
                       NodeId from, std::size_t stages,
                       const std::string &label_prefix);

/**
 * Attach an SFQ launch source to a node: a raised-cosine current
 * pulse sized so a biased unit JTL junction slips exactly once per
 * pulse.
 */
void attachPulseInput(Circuit &circuit, const DeviceParams &params,
                      NodeId node, const std::vector<double> &times);

/**
 * A pulse splitter: one input junction driving two output branches,
 * each through its own slightly larger junction, so one input pulse
 * yields one pulse on each output.
 */
struct Splitter
{
    NodeId input = ground;
    NodeId outputA = ground;
    NodeId outputB = ground;
    std::size_t inputJunction = 0;
    std::size_t outputJunctionA = 0;
    std::size_t outputJunctionB = 0;
};

/** Append a splitter fed from an existing node. */
Splitter appendSplitter(Circuit &circuit, const DeviceParams &params,
                        NodeId from, const std::string &label_prefix);

/**
 * An SFQ delay flip-flop: data pulses store one fluxon in the
 * quantizing loop (J_in, L_store, J_out); a clock pulse releases it
 * to the output. A clock with no stored fluxon is absorbed without
 * producing output.
 */
struct Dff
{
    NodeId dataIn = ground;    ///< feed data JTL into this node
    NodeId clockIn = ground;   ///< feed clock JTL into this node
    NodeId output = ground;    ///< output node (attach output JTL)
    std::size_t storeJunction = 0;   ///< J_in: slips when data stored
    std::size_t releaseJunction = 0; ///< J_out: slips when clocked out
    std::size_t escapeJunction = 0;  ///< absorbs clocks with no data
};

/** Tuning knobs for the DFF storage loop. */
struct DffParams
{
    double storeIcScale = 1.0;    ///< J_in Ic relative to unit
    double releaseIcScale = 1.1;  ///< J_out Ic relative to unit
    double escapeIcScale = 0.9;   ///< series clock escape junction
    double storageInductance = 20e-12; ///< quantizing loop L, H
    double loopBias = 0.05e-3;    ///< DC bias into the release node, A
};

/** Append a DFF to the circuit. */
Dff appendDff(Circuit &circuit, const DeviceParams &params,
              const DffParams &dff_params, const std::string &label_prefix);

/**
 * A clocked AND gate: each input pulse is stored in its own DFF
 * loop; the common clock releases both loops and their coincident
 * release pulses switch an output junction whose critical current
 * exceeds what a single pulse can deliver. One output pulse appears
 * iff both inputs arrived during the clock period — the SFQ logic
 * convention of Fig. 1(d).
 */
struct ClockedAnd
{
    NodeId inputA = ground;   ///< feed input-A JTL into this node
    NodeId inputB = ground;   ///< feed input-B JTL into this node
    NodeId clockIn = ground;  ///< feed the clock JTL into this node
    NodeId output = ground;   ///< attach the output JTL here
    Dff loopA;                ///< input A's storage loop
    Dff loopB;                ///< input B's storage loop
    std::size_t outputJunction = 0; ///< the coincidence junction
};

/** Tuning knobs for the AND's coincidence stage. */
struct ClockedAndParams
{
    double outputIcScale = 1.6; ///< above one release, below two
    double outputBias = 0.03e-3; ///< DC assist into the output node, A
};

/** Append a clocked AND gate; internally builds the clock splitter. */
ClockedAnd appendClockedAnd(Circuit &circuit, const DeviceParams &params,
                            const ClockedAndParams &and_params,
                            const std::string &label_prefix);

/**
 * A clocked OR gate: both inputs merge into one DFF storage loop.
 * The quantizing loop holds at most one fluxon, so a second pulse in
 * the same period is absorbed without corrupting the state; the
 * clock releases one output pulse iff at least one input arrived.
 */
struct ClockedOr
{
    NodeId inputA = ground;
    NodeId inputB = ground;
    NodeId clockIn = ground;
    NodeId output = ground;
    Dff loop; ///< the shared storage loop
};

/** Append a clocked OR gate. */
ClockedOr appendClockedOr(Circuit &circuit, const DeviceParams &params,
                          const std::string &label_prefix);

/**
 * Propagation delay between the k-th switch of two junctions;
 * panics when either junction switched fewer than k+1 times.
 */
double propagationDelay(const TransientResult &result,
                        std::size_t from_junction,
                        std::size_t to_junction, std::size_t k = 0);

} // namespace jsim
} // namespace supernpu

#endif // SUPERNPU_JSIM_CELLS_HH
