/**
 * @file
 * Dense LU implementation.
 */

#include "linalg.hh"

#include <cmath>

#include "common/logging.hh"

namespace supernpu {
namespace jsim {

DenseMatrix::DenseMatrix(std::size_t rows, std::size_t cols)
    : _rows(rows), _cols(cols), _data(rows * cols, 0.0)
{
}

double &
DenseMatrix::at(std::size_t r, std::size_t c)
{
    SUPERNPU_ASSERT(r < _rows && c < _cols, "matrix index out of range");
    return _data[r * _cols + c];
}

double
DenseMatrix::at(std::size_t r, std::size_t c) const
{
    SUPERNPU_ASSERT(r < _rows && c < _cols, "matrix index out of range");
    return _data[r * _cols + c];
}

LuFactorization::LuFactorization(const DenseMatrix &matrix)
    : _size(matrix.rows()), _lu(_size * _size), _perm(_size)
{
    SUPERNPU_ASSERT(matrix.rows() == matrix.cols(),
                    "LU requires a square matrix");

    for (std::size_t r = 0; r < _size; ++r) {
        _perm[r] = r;
        for (std::size_t c = 0; c < _size; ++c)
            _lu[r * _size + c] = matrix.at(r, c);
    }

    for (std::size_t k = 0; k < _size; ++k) {
        // Partial pivot: find the largest magnitude in column k.
        std::size_t pivot = k;
        double best = std::fabs(_lu[k * _size + k]);
        for (std::size_t r = k + 1; r < _size; ++r) {
            const double mag = std::fabs(_lu[r * _size + k]);
            if (mag > best) {
                best = mag;
                pivot = r;
            }
        }
        SUPERNPU_ASSERT(best > 1e-300, "singular matrix in LU");
        if (pivot != k) {
            for (std::size_t c = 0; c < _size; ++c)
                std::swap(_lu[k * _size + c], _lu[pivot * _size + c]);
            std::swap(_perm[k], _perm[pivot]);
        }
        const double diag = _lu[k * _size + k];
        for (std::size_t r = k + 1; r < _size; ++r) {
            const double factor = _lu[r * _size + k] / diag;
            _lu[r * _size + k] = factor;
            for (std::size_t c = k + 1; c < _size; ++c)
                _lu[r * _size + c] -= factor * _lu[k * _size + c];
        }
    }
}

void
LuFactorization::solveInPlace(std::vector<double> &b) const
{
    SUPERNPU_ASSERT(b.size() == _size, "rhs size mismatch");

    // Apply permutation.
    std::vector<double> x(_size);
    for (std::size_t r = 0; r < _size; ++r)
        x[r] = b[_perm[r]];

    // Forward substitution (unit lower-triangular).
    for (std::size_t r = 1; r < _size; ++r) {
        double acc = x[r];
        for (std::size_t c = 0; c < r; ++c)
            acc -= _lu[r * _size + c] * x[c];
        x[r] = acc;
    }

    // Back substitution.
    for (std::size_t ri = _size; ri-- > 0;) {
        double acc = x[ri];
        for (std::size_t c = ri + 1; c < _size; ++c)
            acc -= _lu[ri * _size + c] * x[c];
        x[ri] = acc / _lu[ri * _size + ri];
    }

    b = std::move(x);
}

} // namespace jsim
} // namespace supernpu
