/**
 * @file
 * Circuit netlist implementation.
 */

#include "circuit.hh"

#include "common/logging.hh"

namespace supernpu {
namespace jsim {

Circuit::Circuit()
    : _nodeCount(1) // ground pre-exists
{
}

NodeId
Circuit::addNode()
{
    return _nodeCount++;
}

std::size_t
Circuit::addJunction(const std::string &label, NodeId pos, NodeId neg,
                     double ic, double r, double c)
{
    SUPERNPU_ASSERT(pos < _nodeCount && neg < _nodeCount,
                    "junction references unknown node");
    SUPERNPU_ASSERT(ic > 0 && r > 0 && c > 0, "bad junction parameters");
    _junctions.push_back({label, pos, neg, ic, r, c});
    return _junctions.size() - 1;
}

void
Circuit::addInductor(NodeId pos, NodeId neg, double l)
{
    SUPERNPU_ASSERT(pos < _nodeCount && neg < _nodeCount,
                    "inductor references unknown node");
    SUPERNPU_ASSERT(l > 0, "bad inductance");
    _inductors.push_back({pos, neg, l});
}

void
Circuit::addResistor(NodeId pos, NodeId neg, double r)
{
    SUPERNPU_ASSERT(pos < _nodeCount && neg < _nodeCount,
                    "resistor references unknown node");
    SUPERNPU_ASSERT(r > 0, "bad resistance");
    _resistors.push_back({pos, neg, r});
}

void
Circuit::addBias(NodeId into, double current)
{
    SUPERNPU_ASSERT(into < _nodeCount, "bias references unknown node");
    _biases.push_back({into, current});
}

void
Circuit::addPulses(NodeId into, double amplitude, double width,
                   std::vector<double> times)
{
    SUPERNPU_ASSERT(into < _nodeCount, "pulse references unknown node");
    SUPERNPU_ASSERT(width > 0, "bad pulse width");
    _pulses.push_back({into, amplitude, width, std::move(times)});
}

std::size_t
Circuit::junctionIndex(const std::string &label) const
{
    for (std::size_t i = 0; i < _junctions.size(); ++i) {
        if (_junctions[i].label == label)
            return i;
    }
    panic("no junction labeled '", label, "'");
}

double
Circuit::totalBiasCurrent() const
{
    double total = 0.0;
    for (const auto &bias : _biases)
        total += bias.current;
    return total;
}

std::string
Circuit::dumpNetlist() const
{
    std::string out;
    char line[160];
    std::snprintf(line, sizeof(line), "* %zu nodes (0 = ground)\n",
                  _nodeCount);
    out += line;
    for (const auto &jj : _junctions) {
        std::snprintf(line, sizeof(line),
                      "B%-10s %3zu %3zu ic=%.1fuA r=%.2fohm c=%.1ffF\n",
                      jj.label.c_str(), jj.positive, jj.negative,
                      jj.criticalCurrent * 1e6, jj.shuntResistance,
                      jj.capacitance * 1e15);
        out += line;
    }
    std::size_t index = 0;
    for (const auto &l : _inductors) {
        std::snprintf(line, sizeof(line), "L%-10zu %3zu %3zu %.2fpH\n",
                      index++, l.positive, l.negative,
                      l.inductance * 1e12);
        out += line;
    }
    index = 0;
    for (const auto &r : _resistors) {
        std::snprintf(line, sizeof(line), "R%-10zu %3zu %3zu %.2fohm\n",
                      index++, r.positive, r.negative, r.resistance);
        out += line;
    }
    index = 0;
    for (const auto &b : _biases) {
        std::snprintf(line, sizeof(line), "I%-10zu %3zu     %.1fuA\n",
                      index++, b.into, b.current * 1e6);
        out += line;
    }
    index = 0;
    for (const auto &p : _pulses) {
        std::snprintf(line, sizeof(line),
                      "P%-10zu %3zu     %.1fuA w=%.1fps n=%zu\n",
                      index++, p.into, p.amplitude * 1e6,
                      p.width * 1e12, p.times.size());
        out += line;
    }
    return out;
}

} // namespace jsim
} // namespace supernpu
