/**
 * @file
 * Analog experiment implementations.
 */

#include "experiments.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"
#include "simulator.hh"

namespace supernpu {
namespace jsim {

std::size_t
shiftRegisterOutputCount(ClockRouting routing, double clock_period,
                         std::size_t bits)
{
    SUPERNPU_ASSERT(clock_period > 0 && bits > 0, "bad experiment");

    DeviceParams params;
    Circuit circuit;

    // Data source: one SFQ per clock period.
    JtlChain data_jtl = appendJtl(circuit, params, 3, "D");
    std::vector<double> data_times;
    for (std::size_t i = 0; i < bits; ++i)
        data_times.push_back(60e-12 + clock_period * (double)i);
    attachPulseInput(circuit, params, data_jtl.input, data_times);

    // Clock source, offset so each stage captures after its data.
    JtlChain clock_jtl = appendJtl(circuit, params, 3, "C");
    std::vector<double> clock_times;
    for (std::size_t i = 0; i < bits + 2; ++i) {
        clock_times.push_back(60e-12 + 12e-12 +
                              clock_period * (double)i);
    }
    attachPulseInput(circuit, params, clock_jtl.input, clock_times);
    const Splitter clock_split =
        appendSplitter(circuit, params, clock_jtl.output, "S");
    const JtlChain clock_a =
        appendJtlFrom(circuit, params, clock_split.outputA, 2, "KA");
    const JtlChain clock_b =
        appendJtlFrom(circuit, params, clock_split.outputB, 2, "KB");

    // The two stages with a regenerating JTL between them.
    const Dff stage1 = appendDff(circuit, params, DffParams{}, "F1");
    const Dff stage2 = appendDff(circuit, params, DffParams{}, "F2");
    circuit.addInductor(data_jtl.output, stage1.dataIn,
                        params.jtlInductance);
    const JtlChain mid =
        appendJtlFrom(circuit, params, stage1.output, 3, "M");
    circuit.addInductor(mid.output, stage2.dataIn,
                        params.jtlInductance);

    // Clock routing: the long branch reaches the far stage — which
    // stage is "far" is exactly the concurrent/counter distinction.
    const JtlChain clock_long =
        appendJtlFrom(circuit, params, clock_b.output, 4, "KL");
    if (routing == ClockRouting::Concurrent) {
        circuit.addInductor(clock_a.output, stage1.clockIn,
                            params.jtlInductance);
        circuit.addInductor(clock_long.output, stage2.clockIn,
                            params.jtlInductance);
    } else {
        circuit.addInductor(clock_a.output, stage2.clockIn,
                            params.jtlInductance);
        circuit.addInductor(clock_long.output, stage1.clockIn,
                            params.jtlInductance);
    }

    const JtlChain out =
        appendJtlFrom(circuit, params, stage2.output, 2, "O");

    TransientConfig config;
    config.duration =
        60e-12 + clock_period * (double)(bits + 4) + 100e-12;
    TransientSimulator sim(circuit, config);
    const TransientResult result = sim.run();
    return result.switchCount(out.junctionIndices.back());
}

double
Margin::worstPercent() const
{
    return std::min(lowPercent, highPercent);
}

namespace {

/** One store-then-release trial of a DFF with scaled parameters. */
bool
dffWorks(const DffParams &dff_params)
{
    DeviceParams params;
    Circuit circuit;
    JtlChain data = appendJtl(circuit, params, 3, "D");
    attachPulseInput(circuit, params, data.input, {50e-12, 250e-12});
    JtlChain clock = appendJtl(circuit, params, 3, "C");
    attachPulseInput(circuit, params, clock.input,
                     {100e-12, 180e-12, 300e-12});
    const Dff dff = appendDff(circuit, params, dff_params, "F");
    circuit.addInductor(data.output, dff.dataIn, params.jtlInductance);
    circuit.addInductor(clock.output, dff.clockIn,
                        params.jtlInductance);
    const JtlChain out =
        appendJtlFrom(circuit, params, dff.output, 3, "O");

    TransientConfig config;
    config.duration = 380e-12;
    TransientSimulator sim(circuit, config);
    const TransientResult result = sim.run();
    // Two stores, two releases (the 180 ps clock finds no data), two
    // output pulses.
    return result.switchCount(dff.storeJunction) == 2 &&
           result.switchCount(dff.releaseJunction) == 2 &&
           result.switchCount(out.junctionIndices.back()) == 2;
}

DffParams
scaledDff(DffParameter parameter, double factor)
{
    DffParams params;
    switch (parameter) {
      case DffParameter::LoopBias:
        params.loopBias *= factor;
        break;
      case DffParameter::StorageInductance:
        params.storageInductance *= factor;
        break;
      case DffParameter::ReleaseIc:
        params.releaseIcScale *= factor;
        break;
    }
    return params;
}

} // namespace

Margin
dffParameterMargin(DffParameter parameter, double step_percent,
                   double max_percent)
{
    SUPERNPU_ASSERT(step_percent > 0 && max_percent >= step_percent,
                    "bad margin sweep");
    Margin margin;
    for (double pct = step_percent; pct <= max_percent;
         pct += step_percent) {
        if (!dffWorks(scaledDff(parameter, 1.0 + pct / 100.0)))
            break;
        margin.highPercent = pct;
    }
    for (double pct = step_percent; pct <= max_percent;
         pct += step_percent) {
        if (!dffWorks(scaledDff(parameter, 1.0 - pct / 100.0)))
            break;
        margin.lowPercent = pct;
    }
    return margin;
}

double
maxShiftClockGhz(ClockRouting routing, double start_ps, double step_ps,
                 std::size_t periods, std::size_t bits)
{
    double best_ghz = 0.0;
    for (std::size_t i = 0; i < periods; ++i) {
        const double period_ps = start_ps - step_ps * (double)i;
        if (period_ps <= 0)
            break;
        const std::size_t delivered = shiftRegisterOutputCount(
            routing, period_ps * 1e-12, bits);
        if (delivered == bits)
            best_ghz = 1e3 / period_ps;
        else if (best_ghz > 0.0)
            break; // first failure after a pass ends the sweep
    }
    return best_ghz;
}

} // namespace jsim
} // namespace supernpu
