/**
 * @file
 * Minimal dense linear algebra for the circuit simulator: a dense
 * matrix with LU factorization (partial pivoting) reused across
 * thousands of time steps.
 */

#ifndef SUPERNPU_JSIM_LINALG_HH
#define SUPERNPU_JSIM_LINALG_HH

#include <cstddef>
#include <vector>

namespace supernpu {
namespace jsim {

/** Row-major dense square-capable matrix of doubles. */
class DenseMatrix
{
  public:
    DenseMatrix() = default;
    /** Construct a rows x cols zero matrix. */
    DenseMatrix(std::size_t rows, std::size_t cols);

    std::size_t rows() const { return _rows; }
    std::size_t cols() const { return _cols; }

    /** Mutable element access. */
    double &at(std::size_t r, std::size_t c);
    /** Const element access. */
    double at(std::size_t r, std::size_t c) const;

  private:
    std::size_t _rows = 0;
    std::size_t _cols = 0;
    std::vector<double> _data;
};

/**
 * LU factorization with partial pivoting of a square matrix,
 * factored once and solved many times.
 */
class LuFactorization
{
  public:
    /** Factor the given square matrix; panics when singular. */
    explicit LuFactorization(const DenseMatrix &matrix);

    /** Solve A x = b in place: `b` becomes the solution. */
    void solveInPlace(std::vector<double> &b) const;

    std::size_t size() const { return _size; }

  private:
    std::size_t _size = 0;
    std::vector<double> _lu;        // packed LU factors, row-major
    std::vector<std::size_t> _perm; // row permutation
};

} // namespace jsim
} // namespace supernpu

#endif // SUPERNPU_JSIM_LINALG_HH
