/**
 * @file
 * Demonstration circuit builders.
 */

#include "cells.hh"

#include <cmath>

#include "common/logging.hh"

namespace supernpu {
namespace jsim {

double
DeviceParams::shuntFor(double ic_scale) const
{
    // beta_c = 2 pi Ic R^2 C / Phi0  =>  R = sqrt(beta_c Phi0 / (2 pi Ic C))
    const double ic = unitIc * ic_scale;
    const double c = unitCap * ic_scale; // capacitance scales with area
    return std::sqrt(betaC * phi0 / (2.0 * M_PI * ic * c));
}

JtlChain
appendJtl(Circuit &circuit, const DeviceParams &params, std::size_t stages,
          const std::string &label_prefix)
{
    const NodeId head = circuit.addNode();
    JtlChain chain = appendJtlFrom(circuit, params, head, stages,
                                   label_prefix);
    chain.input = head;
    return chain;
}

JtlChain
appendJtlFrom(Circuit &circuit, const DeviceParams &params, NodeId from,
              std::size_t stages, const std::string &label_prefix)
{
    SUPERNPU_ASSERT(stages >= 1, "JTL needs at least one stage");

    JtlChain chain;
    chain.input = from;

    NodeId prev = from;
    for (std::size_t s = 0; s < stages; ++s) {
        NodeId node;
        if (s == 0 && from != ground) {
            node = from;
        } else {
            node = circuit.addNode();
            circuit.addInductor(prev, node, params.jtlInductance);
        }
        const std::size_t jj = circuit.addJunction(
            label_prefix + std::to_string(s), node, ground, params.unitIc,
            params.shuntFor(), params.unitCap);
        circuit.addBias(node, params.jtlBiasFraction * params.unitIc);
        chain.junctionIndices.push_back(jj);
        prev = node;
        chain.output = node;
    }
    return chain;
}

void
attachPulseInput(Circuit &circuit, const DeviceParams &params, NodeId node,
                 const std::vector<double> &times)
{
    // Amplitude and width chosen (and locked in by the unit tests) so
    // that a 0.7 Ic biased JTL junction slips exactly once per pulse.
    const double amplitude = 1.3 * params.unitIc;
    const double width = 6e-12;
    circuit.addPulses(node, amplitude, width, times);
}

Splitter
appendSplitter(Circuit &circuit, const DeviceParams &params, NodeId from,
               const std::string &label_prefix)
{
    Splitter splitter;
    splitter.input = from;

    // Confluence junction: slightly larger, strongly biased, drives
    // two output branches through inductors.
    const double in_scale = 1.4;
    splitter.inputJunction = circuit.addJunction(
        label_prefix + "_in", from, ground, in_scale * params.unitIc,
        params.shuntFor(in_scale), in_scale * params.unitCap);
    circuit.addBias(from, params.jtlBiasFraction * in_scale * params.unitIc);

    for (int branch = 0; branch < 2; ++branch) {
        const NodeId out = circuit.addNode();
        circuit.addInductor(from, out, params.jtlInductance);
        const std::size_t jj = circuit.addJunction(
            label_prefix + (branch == 0 ? "_a" : "_b"), out, ground,
            params.unitIc, params.shuntFor(), params.unitCap);
        circuit.addBias(out, params.jtlBiasFraction * params.unitIc);
        if (branch == 0) {
            splitter.outputA = out;
            splitter.outputJunctionA = jj;
        } else {
            splitter.outputB = out;
            splitter.outputJunctionB = jj;
        }
    }
    return splitter;
}

Dff
appendDff(Circuit &circuit, const DeviceParams &params,
          const DffParams &dff_params, const std::string &label_prefix)
{
    Dff dff;
    dff.dataIn = circuit.addNode();
    dff.clockIn = circuit.addNode();
    dff.output = circuit.addNode();

    // Quantizing storage loop: ground - J_store - dataIn - L_store -
    // loop_out - J_release - ground. A data pulse switches J_store
    // and leaves one fluxon circulating; the circulating current
    // pre-biases J_release so the next clock pulse can switch it.
    // The clock enters through a series escape junction: with no
    // stored fluxon the escape junction slips instead of J_release,
    // absorbing the clock without output.
    const NodeId loop_out = circuit.addNode();

    dff.storeJunction = circuit.addJunction(
        label_prefix + "_store", dff.dataIn, ground,
        dff_params.storeIcScale * params.unitIc,
        params.shuntFor(dff_params.storeIcScale),
        dff_params.storeIcScale * params.unitCap);

    circuit.addInductor(dff.dataIn, loop_out,
                        dff_params.storageInductance);

    dff.releaseJunction = circuit.addJunction(
        label_prefix + "_release", loop_out, ground,
        dff_params.releaseIcScale * params.unitIc,
        params.shuntFor(dff_params.releaseIcScale),
        dff_params.releaseIcScale * params.unitCap);

    dff.escapeJunction = circuit.addJunction(
        label_prefix + "_escape", dff.clockIn, loop_out,
        dff_params.escapeIcScale * params.unitIc,
        params.shuntFor(dff_params.escapeIcScale),
        dff_params.escapeIcScale * params.unitCap);

    circuit.addBias(loop_out, dff_params.loopBias);

    // Output tap: the release switch's voltage pulse propagates to
    // the output node through a JTL-style inductor.
    circuit.addInductor(loop_out, dff.output, params.jtlInductance);

    return dff;
}

ClockedAnd
appendClockedAnd(Circuit &circuit, const DeviceParams &params,
                 const ClockedAndParams &and_params,
                 const std::string &label_prefix)
{
    ClockedAnd gate;

    gate.loopA = appendDff(circuit, params, DffParams{},
                           label_prefix + "_a");
    gate.loopB = appendDff(circuit, params, DffParams{},
                           label_prefix + "_b");
    gate.inputA = gate.loopA.dataIn;
    gate.inputB = gate.loopB.dataIn;

    // Common clock fans out to both loops through a splitter.
    gate.clockIn = circuit.addNode();
    const JtlChain clock_feed = appendJtlFrom(
        circuit, params, gate.clockIn, 1, label_prefix + "_ck");
    const Splitter split = appendSplitter(circuit, params,
                                          clock_feed.output,
                                          label_prefix + "_cs");
    const JtlChain branch_a = appendJtlFrom(
        circuit, params, split.outputA, 2, label_prefix + "_ca");
    const JtlChain branch_b = appendJtlFrom(
        circuit, params, split.outputB, 2, label_prefix + "_cb");
    circuit.addInductor(branch_a.output, gate.loopA.clockIn,
                        params.jtlInductance);
    circuit.addInductor(branch_b.output, gate.loopB.clockIn,
                        params.jtlInductance);

    // Coincidence stage: both releases must land together to push
    // the output junction past its critical current.
    const NodeId x = circuit.addNode();
    circuit.addInductor(gate.loopA.output, x, params.jtlInductance);
    circuit.addInductor(gate.loopB.output, x, params.jtlInductance);
    gate.outputJunction = circuit.addJunction(
        label_prefix + "_out", x, ground,
        and_params.outputIcScale * params.unitIc,
        params.shuntFor(and_params.outputIcScale),
        and_params.outputIcScale * params.unitCap);
    circuit.addBias(x, and_params.outputBias);
    gate.output = x;
    return gate;
}

ClockedOr
appendClockedOr(Circuit &circuit, const DeviceParams &params,
                const std::string &label_prefix)
{
    ClockedOr gate;
    gate.loop = appendDff(circuit, params, DffParams{}, label_prefix);

    // Wired merge: both inputs couple into the shared loop's data
    // node through their own inductors; the quantizing loop absorbs
    // a duplicate fluxon.
    gate.inputA = circuit.addNode();
    gate.inputB = circuit.addNode();
    circuit.addInductor(gate.inputA, gate.loop.dataIn,
                        params.jtlInductance);
    circuit.addInductor(gate.inputB, gate.loop.dataIn,
                        params.jtlInductance);

    gate.clockIn = gate.loop.clockIn;
    gate.output = gate.loop.output;
    return gate;
}

double
propagationDelay(const TransientResult &result, std::size_t from_junction,
                 std::size_t to_junction, std::size_t k)
{
    SUPERNPU_ASSERT(result.switchTimes.size() > from_junction &&
                        result.switchTimes.size() > to_junction,
                    "junction index out of range");
    const auto &from = result.switchTimes[from_junction];
    const auto &to = result.switchTimes[to_junction];
    SUPERNPU_ASSERT(from.size() > k, "source junction switched too few times");
    SUPERNPU_ASSERT(to.size() > k, "sink junction switched too few times");
    return to[k] - from[k];
}

} // namespace jsim
} // namespace supernpu
