/**
 * @file
 * Netlist representation for the Josephson-junction transient
 * simulator.
 *
 * The paper extracts its RSFQ gate parameters with JSIM, an analog
 * circuit simulator for superconductive electronics. This module is
 * our JSIM substitute: a nodal phase-based transient simulator for
 * circuits made of Josephson junctions, inductors, resistors, and
 * current sources.
 *
 * Formulation: each node n carries a superconducting phase phi_n;
 * the node voltage is V_n = (Phi0 / 2 pi) * dphi_n/dt. Branch
 * currents follow the RSJC (resistively and capacitively shunted
 * junction) model:
 *
 *   JJ:        i = Ic sin(phi) + (Phi0/2pi) phi' / R + (Phi0/2pi) C phi''
 *   inductor:  i = (Phi0/2pi) (phi_a - phi_b) / L
 *   resistor:  i = (Phi0/2pi) (phi_a' - phi_b') / R
 *
 * Kirchhoff's current law per node yields a second-order ODE system
 * M phi'' + D(phi') + f(phi) = I(t) which the simulator integrates
 * with classical RK4.
 */

#ifndef SUPERNPU_JSIM_CIRCUIT_HH
#define SUPERNPU_JSIM_CIRCUIT_HH

#include <cstddef>
#include <string>
#include <vector>

namespace supernpu {
namespace jsim {

/** Magnetic flux quantum, Wb. */
constexpr double phi0 = 2.067833848e-15;
/** Phi0 / 2 pi, the phase-to-flux conversion factor. */
constexpr double phi0Over2Pi = phi0 / 6.283185307179586;

/** Node index type; node 0 is always ground. */
using NodeId = std::size_t;
/** Ground node constant. */
constexpr NodeId ground = 0;

/** A Josephson junction in the RSJC model. */
struct Junction
{
    std::string label;   ///< Name used in measurements ("J1", ...).
    NodeId positive;     ///< Node the junction current leaves.
    NodeId negative;     ///< Node the junction current enters.
    double criticalCurrent; ///< Ic, amperes.
    double shuntResistance; ///< R, ohms (external shunt + subgap).
    double capacitance;     ///< C, farads.
};

/** A linear inductor. */
struct Inductor
{
    NodeId positive;
    NodeId negative;
    double inductance; ///< henries
};

/** A linear resistor. */
struct Resistor
{
    NodeId positive;
    NodeId negative;
    double resistance; ///< ohms
};

/** A DC bias current source injecting into `into` (from ground). */
struct BiasSource
{
    NodeId into;
    double current; ///< amperes
};

/**
 * A raised-cosine current pulse injected into a node, used to launch
 * SFQ pulses into a circuit's input JTL. Each entry of `times` starts
 * one pulse.
 */
struct PulseSource
{
    NodeId into;
    double amplitude;         ///< peak current, amperes
    double width;             ///< full pulse width, seconds
    std::vector<double> times; ///< pulse start times, seconds
};

/**
 * Mutable netlist under construction. The builder API hands out node
 * ids; ground (node 0) pre-exists.
 */
class Circuit
{
  public:
    Circuit();

    /** Create a new circuit node and return its id. */
    NodeId addNode();

    /** Number of nodes including ground. */
    std::size_t nodeCount() const { return _nodeCount; }

    /** Add a Josephson junction; returns its index for measurement. */
    std::size_t addJunction(const std::string &label, NodeId pos,
                            NodeId neg, double ic, double r, double c);

    /** Add an inductor between two nodes. */
    void addInductor(NodeId pos, NodeId neg, double l);

    /** Add a resistor between two nodes. */
    void addResistor(NodeId pos, NodeId neg, double r);

    /** Add a DC bias current source feeding a node. */
    void addBias(NodeId into, double current);

    /** Add a pulse source feeding a node. */
    void addPulses(NodeId into, double amplitude, double width,
                   std::vector<double> times);

    /** Look up a junction index by label; panics when absent. */
    std::size_t junctionIndex(const std::string &label) const;

    const std::vector<Junction> &junctions() const { return _junctions; }
    const std::vector<Inductor> &inductors() const { return _inductors; }
    const std::vector<Resistor> &resistors() const { return _resistors; }
    const std::vector<BiasSource> &biases() const { return _biases; }
    const std::vector<PulseSource> &pulses() const { return _pulses; }

    /** Total DC bias current, used for static power accounting. */
    double totalBiasCurrent() const;

    /**
     * SPICE-flavoured netlist dump for inspection and debugging:
     * one line per element with nodes and values in engineering
     * units.
     */
    std::string dumpNetlist() const;

  private:
    std::size_t _nodeCount;
    std::vector<Junction> _junctions;
    std::vector<Inductor> _inductors;
    std::vector<Resistor> _resistors;
    std::vector<BiasSource> _biases;
    std::vector<PulseSource> _pulses;
};

} // namespace jsim
} // namespace supernpu

#endif // SUPERNPU_JSIM_CIRCUIT_HH
