/**
 * @file
 * Transient simulator implementation.
 */

#include "simulator.hh"

#include <cmath>

#include "common/logging.hh"

namespace supernpu {
namespace jsim {

namespace {

/** Build the (free-node) mass matrix from junction + parasitic caps. */
DenseMatrix
buildMassMatrix(const Circuit &circuit, double parasitic_cap)
{
    const std::size_t free_nodes = circuit.nodeCount() - 1;
    DenseMatrix mass(free_nodes, free_nodes);

    for (std::size_t n = 0; n < free_nodes; ++n)
        mass.at(n, n) = parasitic_cap * phi0Over2Pi;

    for (const auto &jj : circuit.junctions()) {
        const double c = jj.capacitance * phi0Over2Pi;
        if (jj.positive != ground) {
            const std::size_t a = jj.positive - 1;
            mass.at(a, a) += c;
            if (jj.negative != ground) {
                const std::size_t b = jj.negative - 1;
                mass.at(a, b) -= c;
                mass.at(b, a) -= c;
            }
        }
        if (jj.negative != ground) {
            const std::size_t b = jj.negative - 1;
            mass.at(b, b) += c;
        }
    }
    return mass;
}

/** Raised-cosine pulse value at offset t in [0, width). */
double
raisedCosine(double t, double width, double amplitude)
{
    if (t < 0.0 || t >= width)
        return 0.0;
    return 0.5 * amplitude * (1.0 - std::cos(2.0 * M_PI * t / width));
}

} // namespace

std::size_t
TransientResult::switchCount(std::size_t junction_index) const
{
    SUPERNPU_ASSERT(junction_index < switchTimes.size(),
                    "junction index out of range");
    return switchTimes[junction_index].size();
}

double
TransientResult::peakVoltage(std::size_t waveform_index) const
{
    SUPERNPU_ASSERT(waveform_index < waveforms.size(),
                    "waveform index out of range");
    double peak = 0.0;
    for (double v : waveforms[waveform_index].voltages)
        peak = std::max(peak, v);
    return peak;
}

TransientSimulator::TransientSimulator(const Circuit &circuit,
                                       const TransientConfig &config)
    : _circuit(circuit),
      _config(config),
      _freeNodes(circuit.nodeCount() - 1),
      _massLu(buildMassMatrix(circuit, config.nodeParasiticCap))
{
    SUPERNPU_ASSERT(_freeNodes > 0, "circuit has no nodes besides ground");
    SUPERNPU_ASSERT(config.timeStep > 0 && config.duration > 0,
                    "bad transient config");
}

void
TransientSimulator::injectedCurrents(double t,
                                     std::vector<double> &out) const
{
    for (const auto &bias : _circuit.biases()) {
        if (bias.into != ground)
            out[bias.into - 1] += bias.current;
    }
    for (const auto &pulse : _circuit.pulses()) {
        if (pulse.into == ground)
            continue;
        for (double start : pulse.times) {
            out[pulse.into - 1] +=
                raisedCosine(t - start, pulse.width, pulse.amplitude);
        }
    }
}

void
TransientSimulator::accelerations(const std::vector<double> &phi,
                                  const std::vector<double> &omega,
                                  double t,
                                  std::vector<double> &accel_out) const
{
    accel_out.assign(_freeNodes, 0.0);
    injectedCurrents(t, accel_out);

    auto phase_of = [&](NodeId n) {
        return n == ground ? 0.0 : phi[n - 1];
    };
    auto rate_of = [&](NodeId n) {
        return n == ground ? 0.0 : omega[n - 1];
    };
    auto drain = [&](NodeId a, NodeId b, double current) {
        if (a != ground)
            accel_out[a - 1] -= current;
        if (b != ground)
            accel_out[b - 1] += current;
    };

    for (const auto &jj : _circuit.junctions()) {
        const double dphi = phase_of(jj.positive) - phase_of(jj.negative);
        const double domega = rate_of(jj.positive) - rate_of(jj.negative);
        const double super = jj.criticalCurrent * std::sin(dphi);
        const double resistive =
            phi0Over2Pi * domega / jj.shuntResistance;
        drain(jj.positive, jj.negative, super + resistive);
    }

    for (const auto &ind : _circuit.inductors()) {
        const double dphi = phase_of(ind.positive) - phase_of(ind.negative);
        drain(ind.positive, ind.negative,
              phi0Over2Pi * dphi / ind.inductance);
    }

    for (const auto &res : _circuit.resistors()) {
        const double domega = rate_of(res.positive) - rate_of(res.negative);
        drain(res.positive, res.negative,
              phi0Over2Pi * domega / res.resistance);
    }

    _massLu.solveInPlace(accel_out);
}

TransientResult
TransientSimulator::run() const
{
    const double dt = _config.timeStep;
    const std::size_t steps =
        (std::size_t)std::ceil(_config.duration / dt);

    std::vector<double> phi(_freeNodes, 0.0);
    std::vector<double> omega(_freeNodes, 0.0);

    const auto &junctions = _circuit.junctions();
    TransientResult result;
    result.switchTimes.resize(junctions.size());
    for (NodeId node : _config.recordNodes) {
        SUPERNPU_ASSERT(node < _circuit.nodeCount(),
                        "recorded node out of range");
        Waveform waveform;
        waveform.node = node;
        result.waveforms.push_back(std::move(waveform));
    }

    // Phase-slip tracking: the "winding number" of each junction.
    std::vector<long> winding(junctions.size(), 0);

    auto junction_phase = [&](const Junction &jj) {
        const double pa = jj.positive == ground ? 0.0 : phi[jj.positive - 1];
        const double pb = jj.negative == ground ? 0.0 : phi[jj.negative - 1];
        return pa - pb;
    };

    // RK4 scratch buffers.
    std::vector<double> k1p, k2p, k3p, k4p; // d phi
    std::vector<double> k1w(_freeNodes), k2w(_freeNodes), k3w(_freeNodes),
        k4w(_freeNodes); // d omega
    std::vector<double> tmp_phi(_freeNodes), tmp_omega(_freeNodes);

    for (std::size_t step = 0; step < steps; ++step) {
        const double t = (double)step * dt;

        // k1
        k1p = omega;
        accelerations(phi, omega, t, k1w);

        // k2
        for (std::size_t n = 0; n < _freeNodes; ++n) {
            tmp_phi[n] = phi[n] + 0.5 * dt * k1p[n];
            tmp_omega[n] = omega[n] + 0.5 * dt * k1w[n];
        }
        k2p = tmp_omega;
        accelerations(tmp_phi, tmp_omega, t + 0.5 * dt, k2w);

        // k3
        for (std::size_t n = 0; n < _freeNodes; ++n) {
            tmp_phi[n] = phi[n] + 0.5 * dt * k2p[n];
            tmp_omega[n] = omega[n] + 0.5 * dt * k2w[n];
        }
        k3p = tmp_omega;
        accelerations(tmp_phi, tmp_omega, t + 0.5 * dt, k3w);

        // k4
        for (std::size_t n = 0; n < _freeNodes; ++n) {
            tmp_phi[n] = phi[n] + dt * k3p[n];
            tmp_omega[n] = omega[n] + dt * k3w[n];
        }
        k4p = tmp_omega;
        accelerations(tmp_phi, tmp_omega, t + dt, k4w);

        for (std::size_t n = 0; n < _freeNodes; ++n) {
            phi[n] += dt / 6.0 *
                      (k1p[n] + 2.0 * k2p[n] + 2.0 * k3p[n] + k4p[n]);
            omega[n] += dt / 6.0 *
                        (k1w[n] + 2.0 * k2w[n] + 2.0 * k3w[n] + k4w[n]);
        }

        // Record requested node waveforms.
        if (!result.waveforms.empty() &&
            step % _config.recordStride == 0) {
            for (auto &waveform : result.waveforms) {
                const NodeId n = waveform.node;
                waveform.times.push_back(t + dt);
                waveform.phases.push_back(
                    n == ground ? 0.0 : phi[n - 1]);
                waveform.voltages.push_back(
                    n == ground ? 0.0
                                : phi0Over2Pi * omega[n - 1]);
            }
        }

        // Detect forward 2-pi slips.
        for (std::size_t j = 0; j < junctions.size(); ++j) {
            const double dphi = junction_phase(junctions[j]);
            const long w = (long)std::floor((dphi + M_PI) / (2.0 * M_PI));
            while (w > winding[j]) {
                ++winding[j];
                result.switchTimes[j].push_back(t + dt);
            }
            if (w < winding[j])
                winding[j] = w; // backward slip: track, do not record
        }
    }

    result.finalPhases.assign(_circuit.nodeCount(), 0.0);
    for (std::size_t n = 0; n < _freeNodes; ++n)
        result.finalPhases[n + 1] = phi[n];
    result.steps = steps;
    return result;
}

double
TransientSimulator::switchingEnergy(const TransientResult &result) const
{
    double energy = 0.0;
    const auto &junctions = _circuit.junctions();
    for (std::size_t j = 0; j < junctions.size(); ++j) {
        energy += (double)result.switchTimes[j].size() *
                  junctions[j].criticalCurrent * phi0;
    }
    return energy;
}

} // namespace jsim
} // namespace supernpu
