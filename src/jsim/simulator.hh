/**
 * @file
 * Transient simulator for Josephson-junction netlists.
 */

#ifndef SUPERNPU_JSIM_SIMULATOR_HH
#define SUPERNPU_JSIM_SIMULATOR_HH

#include <vector>

#include "circuit.hh"
#include "linalg.hh"

namespace supernpu {
namespace jsim {

/** Simulator configuration. */
struct TransientConfig
{
    double timeStep = 0.05e-12;  ///< integration step, seconds
    double duration = 500e-12;   ///< simulated span, seconds
    /**
     * Parasitic capacitance added to every node so the mass matrix is
     * invertible even for nodes not touching a junction.
     */
    double nodeParasiticCap = 1e-15;

    /** Nodes whose waveforms to record (empty = record nothing). */
    std::vector<NodeId> recordNodes;
    /** Record every n-th step (decimation for long runs). */
    std::size_t recordStride = 4;
};

/** A recorded node waveform. */
struct Waveform
{
    NodeId node = ground;
    std::vector<double> times;    ///< seconds
    std::vector<double> phases;   ///< radians
    std::vector<double> voltages; ///< volts ((Phi0/2pi) dphi/dt)
};

/** Result of a transient run. */
struct TransientResult
{
    /** 2-pi phase slip times for each junction, ordered by time. */
    std::vector<std::vector<double>> switchTimes;
    /** Final phase of each node (ground included, index 0). */
    std::vector<double> finalPhases;
    /** Number of integration steps taken. */
    std::size_t steps = 0;
    /** Recorded waveforms, one per requested node, in order. */
    std::vector<Waveform> waveforms;

    /** Total number of 2-pi slips of the labeled junction. */
    std::size_t switchCount(std::size_t junction_index) const;

    /** Peak voltage of a recorded waveform, volts. */
    double peakVoltage(std::size_t waveform_index) const;
};

/**
 * Integrates the circuit's nodal phase ODE with classical RK4 and
 * records every junction's 2-pi phase slips (SFQ switch events).
 *
 * Usage: construct once per circuit (the mass matrix is factored in
 * the constructor), then call run().
 */
class TransientSimulator
{
  public:
    TransientSimulator(const Circuit &circuit,
                       const TransientConfig &config);

    /** Run the transient analysis from an all-zero initial state. */
    TransientResult run() const;

    /**
     * Estimate the dynamic energy dissipated by all recorded switch
     * events: each 2-pi slip of a junction dissipates ~ Ic * Phi0.
     */
    double switchingEnergy(const TransientResult &result) const;

  private:
    /** Evaluate node accelerations for state (phi, omega) at time t. */
    void accelerations(const std::vector<double> &phi,
                       const std::vector<double> &omega, double t,
                       std::vector<double> &accel_out) const;

    /** Total source current injected into each free node at time t. */
    void injectedCurrents(double t, std::vector<double> &out) const;

    const Circuit &_circuit;
    TransientConfig _config;
    std::size_t _freeNodes; ///< node count excluding ground
    LuFactorization _massLu;
};

} // namespace jsim
} // namespace supernpu

#endif // SUPERNPU_JSIM_SIMULATOR_HH
