/**
 * @file
 * Canned analog experiments on the JJ transient simulator.
 *
 * The headline experiment backs the paper's Fig. 7 at the analog
 * level: a two-stage shift register is clocked at increasing rates
 * under concurrent-flow and counter-flow clock routing, and the
 * maximum rate at which every stored bit still reaches the output is
 * measured from the junction switching events. Counter-flow routing
 * (required around feedback loops) tops out measurably below
 * concurrent-flow routing, the effect Eq. (1) models analytically.
 */

#ifndef SUPERNPU_JSIM_EXPERIMENTS_HH
#define SUPERNPU_JSIM_EXPERIMENTS_HH

#include <cstddef>

#include "cells.hh"

namespace supernpu {
namespace jsim {

/** Clock routing direction for the shift-register experiment. */
enum class ClockRouting
{
    Concurrent, ///< clock propagates in the data direction
    CounterFlow ///< clock propagates against the data direction
};

/**
 * Run the two-stage shift register at one clock period and count how
 * many of `bits` stored ones reach the output.
 */
std::size_t shiftRegisterOutputCount(ClockRouting routing,
                                     double clock_period,
                                     std::size_t bits);

/**
 * Sweep the clock period downward and return the highest frequency
 * (GHz) at which all `bits` ones are still delivered. The sweep
 * covers `periods_ps` candidates from `start_ps` down in `step_ps`
 * decrements.
 */
double maxShiftClockGhz(ClockRouting routing, double start_ps = 24.0,
                        double step_ps = 2.0,
                        std::size_t periods = 9,
                        std::size_t bits = 4);

/**
 * Operating-margin analysis — the standard SFQ design metric: how
 * far a parameter can move from nominal before the cell stops
 * working. The margin is quoted as a +/- percentage of the nominal
 * value.
 */
struct Margin
{
    double lowPercent = 0.0;  ///< largest tolerated decrease, %
    double highPercent = 0.0; ///< largest tolerated increase, %

    /** The smaller of the two sides (the quoted margin). */
    double worstPercent() const;
};

/** Parameters the DFF margin sweep can exercise. */
enum class DffParameter
{
    LoopBias,         ///< DC bias into the release node
    StorageInductance,///< quantizing loop inductance
    ReleaseIc,        ///< release junction critical current
};

/**
 * Measure the DFF's operating margin on one parameter by scaling it
 * away from nominal in `step_percent` increments (up to
 * `max_percent`) until the store-then-release pattern fails.
 */
Margin dffParameterMargin(DffParameter parameter,
                          double step_percent = 10.0,
                          double max_percent = 60.0);

} // namespace jsim
} // namespace supernpu

#endif // SUPERNPU_JSIM_EXPERIMENTS_HH
