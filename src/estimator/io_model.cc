/**
 * @file
 * Interface-circuitry estimator implementation.
 */

#include "io_model.hh"

#include "common/logging.hh"

namespace supernpu {
namespace estimator {

using sfq::GateKind;

namespace {
/** Sideband pads (control, status, test) beyond the data ports. */
constexpr std::uint64_t sidebandPads = 16;
} // namespace

IoModel::IoModel(const sfq::CellLibrary &lib, const NpuConfig &config)
    : _lib(lib), _config(config)
{
    config.check();
}

std::uint64_t
IoModel::inputConverterCount() const
{
    // The DRAM interface fills the ifmap and weight buffers: one
    // converter per data-bit lane on each fill port.
    const std::uint64_t lanes =
        (std::uint64_t)(_config.peHeight + _config.peWidth) *
        (std::uint64_t)_config.bitWidth;
    return lanes + sidebandPads;
}

std::uint64_t
IoModel::outputAmplifierCount() const
{
    // Drain port lanes back toward DRAM plus status outputs.
    const std::uint64_t lanes =
        (std::uint64_t)_config.peWidth * (std::uint64_t)_config.bitWidth;
    return lanes + sidebandPads;
}

std::uint64_t
IoModel::jjCount() const
{
    return inputConverterCount() *
               _lib.gate(GateKind::DCSFQ).jjCount +
           outputAmplifierCount() *
               _lib.gate(GateKind::SFQDC).jjCount +
           _lib.gate(GateKind::CLKGEN).jjCount;
}

double
IoModel::staticPower() const
{
    return (double)inputConverterCount() *
               _lib.staticPower(GateKind::DCSFQ) +
           (double)outputAmplifierCount() *
               _lib.staticPower(GateKind::SFQDC) +
           _lib.staticPower(GateKind::CLKGEN);
}

double
IoModel::area() const
{
    return (double)jjCount() * _lib.areaPerJj();
}

} // namespace estimator
} // namespace supernpu
