/**
 * @file
 * Architecture design-rule checks: catches configurations that are
 * structurally valid (NpuConfig::check passes) but architecturally
 * unsound — the pitfalls Section V's analysis exists to avoid.
 * Returned as advisory findings rather than hard failures so design-
 * space sweeps can still visit (and learn from) bad corners.
 */

#ifndef SUPERNPU_ESTIMATOR_DESIGN_RULES_HH
#define SUPERNPU_ESTIMATOR_DESIGN_RULES_HH

#include <string>
#include <vector>

#include "npu_config.hh"
#include "npu_estimator.hh"

namespace supernpu {
namespace estimator {

/** Severity of one design-rule finding. */
enum class RuleSeverity
{
    Warning, ///< works, but leaves known performance on the table
    Error,   ///< the configuration cannot operate as intended
};

/** One design-rule finding. */
struct RuleFinding
{
    RuleSeverity severity = RuleSeverity::Warning;
    std::string rule;    ///< short identifier, e.g. "weight-buffer"
    std::string message; ///< human-readable explanation
};

/**
 * Run all design rules against a configuration (using its estimate
 * for derived geometry). Returns findings ordered errors-first.
 *
 * Rules:
 *  - weight-buffer: must hold at least one full mapping's weights.
 *  - psum-separation: separate psum/ofmap buffers pay full-length
 *    moves every row fold (the Baseline's #1 bottleneck).
 *  - undivided-buffers: monolithic shift registers pay full-row
 *    rewinds and forced flushes.
 *  - division-area: division degrees past ~1024 blow up mux area.
 *  - chunk-depth: output chunks shorter than the PE pipeline cannot
 *    hold a column's in-flight psums.
 *  - aspect-ratio: arrays wider than tall waste the WS dataflow's
 *    depth-major mapping for CNN layers.
 */
std::vector<RuleFinding> checkDesignRules(const NpuConfig &config,
                                          const NpuEstimate &estimate);

/** True when no Error-severity finding is present. */
bool designIsOperable(const std::vector<RuleFinding> &findings);

} // namespace estimator
} // namespace supernpu

#endif // SUPERNPU_ESTIMATOR_DESIGN_RULES_HH
