/**
 * @file
 * On-chip network unit models (Section III-A, Figs. 4-5): the two
 * fan-out splitter-tree candidates and the store-and-forward 2D
 * systolic chain the paper adopts.
 */

#ifndef SUPERNPU_ESTIMATOR_NETWORK_MODEL_HH
#define SUPERNPU_ESTIMATOR_NETWORK_MODEL_HH

#include <cstdint>

#include "sfq/cells.hh"
#include "sfq/clocking.hh"

namespace supernpu {
namespace estimator {

/** The three candidate network structures of Fig. 4. */
enum class NetworkDesign
{
    SplitterTree2D, ///< fan-out trees on both PE inputs (OS dataflow)
    SplitterTree1D, ///< fan-out tree on one PE input (WS dataflow)
    Systolic2D,     ///< store-and-forward chain (adopted)
};

/** Name of a network design for reports. */
const char *networkDesignName(NetworkDesign design);

/** Critical-path / area model of one network unit. */
class NetworkUnitModel
{
  public:
    /**
     * @param lib The scaled cell library.
     * @param design Candidate structure.
     * @param array_width PE array width the network spans.
     * @param bit_width Data width per link.
     */
    NetworkUnitModel(const sfq::CellLibrary &lib, NetworkDesign design,
                     int array_width, int bit_width);

    /**
     * Critical-path delay, ps: the inverse of the maximum frequency
     * (Fig. 5(a)). For the 2D splitter tree this includes the
     * input-arrival timing divergence that grows with the PE array
     * width (Fig. 4(a)).
     */
    double criticalPathPs() const;

    /** Maximum clock frequency, GHz. */
    double frequencyGhz() const;

    /** Junction count of the network row/column structures. */
    std::uint64_t jjCount() const;

    /** Static power, watts. */
    double staticPower() const;

    /** Layout area, mm^2 (Fig. 5(b)). */
    double area() const;

    /** Dynamic energy per transferred word per hop, joules. */
    double hopEnergy() const;

  private:
    const sfq::CellLibrary &_lib;
    NetworkDesign _design;
    int _width;
    int _bits;
};

} // namespace estimator
} // namespace supernpu

#endif // SUPERNPU_ESTIMATOR_NETWORK_MODEL_HH
