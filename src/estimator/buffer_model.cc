/**
 * @file
 * Shift-register buffer estimator implementation.
 */

#include "buffer_model.hh"

#include "common/logging.hh"

namespace supernpu {
namespace estimator {

using sfq::ClockScheme;
using sfq::GateKind;
using sfq::GatePair;

namespace {

/**
 * Junctions per stored bit: the DFF cell plus its amortized share of
 * clock splitters, re-circulation wiring, and inter-cell JTLs.
 * Calibrated jointly with the static-power-per-JJ constant against
 * the paper's 964 W RSFQ-SuperNPU figure (Table III).
 */
constexpr double jjPerStoredBit = 13.5;

/**
 * Mux + demux tree junctions per row-bit line and per chunk beyond
 * the first: pulse mergers on the read side, gated splitters on the
 * write side, NDRO select control, and the PTL routing to reach
 * every chunk port. Calibrated against Fig. 20's area curve (flat
 * through division 256, then rapidly growing).
 */
constexpr double muxJjPerPortChunk = 44.0;

} // namespace

BufferModel::BufferModel(const sfq::CellLibrary &lib,
                         std::uint64_t capacity_bytes, int rows,
                         int width_bits, int division)
    : _lib(lib),
      _capacityBytes(capacity_bytes),
      _rows(rows),
      _widthBits(width_bits),
      _division(division)
{
    SUPERNPU_ASSERT(capacity_bytes > 0, "empty buffer");
    SUPERNPU_ASSERT(rows > 0 && width_bits > 0, "bad buffer geometry");
    SUPERNPU_ASSERT(division >= 1, "bad division degree");
}

std::uint64_t
BufferModel::rowLengthEntries() const
{
    const std::uint64_t row_bytes = _capacityBytes / (std::uint64_t)_rows;
    const std::uint64_t entry_bytes = (std::uint64_t)_widthBits / 8;
    SUPERNPU_ASSERT(entry_bytes > 0, "sub-byte entries unsupported");
    const std::uint64_t entries = row_bytes / entry_bytes;
    SUPERNPU_ASSERT(entries > 0, "buffer too small for its row count");
    return entries;
}

std::uint64_t
BufferModel::chunkLengthEntries() const
{
    const std::uint64_t entries = rowLengthEntries() / (std::uint64_t)_division;
    return entries > 0 ? entries : 1;
}

std::uint64_t
BufferModel::bytesPerCycle() const
{
    return (std::uint64_t)_rows * (std::uint64_t)_widthBits / 8;
}

sfq::GatePair
BufferModel::criticalPair() const
{
    // DFF -> DFF shift arc. The clock runs counter to the shift
    // direction through its own JTL + splitter segment so the
    // re-circulation feedback path is timing-safe.
    GatePair pair = sfq::makePair(
        _lib, "SR DFF->DFF (counter-flow)",
        GateKind::DFF, GateKind::DFF, {GateKind::JTL}, 0.0,
        ClockScheme::CounterFlow);
    // Clock segment between adjacent cells: a JTL run plus the
    // splitter feeding the neighbour's clock tap (library delays are
    // already node-scaled).
    pair.clockPathDelay = _lib.gate(GateKind::DFF).delay +
                          _lib.gate(GateKind::JTL).delay +
                          _lib.gate(GateKind::SPLITTER).delay;
    return pair;
}

double
BufferModel::frequencyGhz() const
{
    return sfq::pairFrequencyGhz(criticalPair());
}

std::uint64_t
BufferModel::storageJjCount() const
{
    const double bits = (double)_capacityBytes * 8.0;
    return (std::uint64_t)(bits * jjPerStoredBit);
}

std::uint64_t
BufferModel::muxTreeJjCount() const
{
    if (_division <= 1)
        return 0;
    const double ports = (double)_rows * (double)_widthBits;
    return (std::uint64_t)(ports * muxJjPerPortChunk *
                           (double)(_division - 1));
}

std::uint64_t
BufferModel::jjCount() const
{
    return storageJjCount() + muxTreeJjCount();
}

double
BufferModel::staticPower() const
{
    return (double)jjCount() * _lib.staticPowerPerJj();
}

double
BufferModel::chunkShiftEnergy() const
{
    // One chunk per row shifts in lockstep across all rows.
    const double chunk_bits = (double)chunkLengthEntries() *
                              (double)_rows * (double)_widthBits;
    // Every bit cell clocks: DFF access plus its clock splitter.
    const double per_bit = _lib.accessEnergy(GateKind::DFF) +
                           _lib.accessEnergy(GateKind::SPLITTER);
    return chunk_bits * per_bit;
}

double
BufferModel::area() const
{
    return (double)storageJjCount() * _lib.memoryAreaPerJj() +
           (double)muxTreeJjCount() * _lib.areaPerJj();
}

} // namespace estimator
} // namespace supernpu
