/**
 * @file
 * Chip interface model: the support circuitry every SFQ die carries
 * (visible in the paper's Fig. 12 microphotograph) — DC-to-SFQ
 * converters on the input pads, SFQ-to-DC output amplifiers on the
 * output pads, and the on-chip clock generator.
 *
 * The output amplifiers dominate: driving room-temperature-readable
 * voltages from ~0.1 mV pulses takes stacked SQUID drivers with
 * heavy biasing, which is why real SFQ chips minimize their off-chip
 * pin count.
 */

#ifndef SUPERNPU_ESTIMATOR_IO_MODEL_HH
#define SUPERNPU_ESTIMATOR_IO_MODEL_HH

#include <cstdint>

#include "npu_config.hh"
#include "sfq/cells.hh"

namespace supernpu {
namespace estimator {

/** Interface-circuitry estimator for one NPU die. */
class IoModel
{
  public:
    IoModel(const sfq::CellLibrary &lib, const NpuConfig &config);

    /** DC/SFQ input converters (DRAM-side fill ports + control). */
    std::uint64_t inputConverterCount() const;

    /** SFQ/DC output amplifiers (DRAM-side drain ports + status). */
    std::uint64_t outputAmplifierCount() const;

    /** Total junction count including the clock generator. */
    std::uint64_t jjCount() const;

    /** Static power, watts (amplifier biasing dominates). */
    double staticPower() const;

    /** Layout area, mm^2. */
    double area() const;

  private:
    const sfq::CellLibrary &_lib;
    NpuConfig _config;
};

} // namespace estimator
} // namespace supernpu

#endif // SUPERNPU_ESTIMATOR_IO_MODEL_HH
