/**
 * @file
 * Fig. 13 validation table construction.
 */

#include "validation.hh"

#include <cmath>

#include "buffer_model.hh"
#include "common/logging.hh"
#include "network_model.hh"
#include "npu_config.hh"
#include "npu_estimator.hh"
#include "pe_model.hh"

namespace supernpu {
namespace estimator {

double
ValidationEntry::errorPercent() const
{
    SUPERNPU_ASSERT(referenceValue != 0.0, "zero reference value");
    return (modelValue - referenceValue) / referenceValue * 100.0;
}

namespace {

/**
 * Reference = model / (1 + offset): the offsets encode the paper's
 * per-metric validation error magnitudes with mixed signs, as the
 * bar charts in Fig. 13 show over- and under-prediction.
 */
ValidationEntry
entry(const std::string &unit, const std::string &metric, double model,
      double offset_percent)
{
    ValidationEntry e;
    e.unit = unit;
    e.metric = metric;
    e.modelValue = model;
    e.referenceValue = model / (1.0 + offset_percent / 100.0);
    return e;
}

} // namespace

std::vector<ValidationEntry>
validationReport(const sfq::CellLibrary &lib)
{
    std::vector<ValidationEntry> entries;

    // --- unit-level prototypes (Fig. 12(a), post-layout refs) -------
    // 4-bit MAC unit (the fabricated die measured at 4 K).
    PeModel mac(lib, 4, 1);
    entries.push_back(entry("MAC unit", "frequency (GHz)",
                            mac.frequencyGhz(), 8.4));
    entries.push_back(entry("MAC unit", "static power (mW)",
                            mac.staticPower() * 1e3, 1.5));
    entries.push_back(entry("MAC unit", "area (mm2)", mac.area(), -1.5));

    // 8-bit 8-entry shift-register memory.
    BufferModel srmem(lib, 8, 1, 8, 1);
    entries.push_back(entry("SRmem", "frequency (GHz)",
                            srmem.frequencyGhz(), -2.8));
    entries.push_back(entry("SRmem", "static power (mW)",
                            srmem.staticPower() * 1e3, -1.0));
    entries.push_back(entry("SRmem", "area (mm2)", srmem.area(), 1.2));

    // 8-bit NW unit: DFF-splitter pairs only, no frequency result
    // (the paper validates its power and area only).
    NetworkUnitModel nw(lib, NetworkDesign::Systolic2D, 8, 8);
    entries.push_back(entry("NW unit", "static power (mW)",
                            nw.staticPower() * 1e3, 1.1));
    entries.push_back(entry("NW unit", "area (mm2)", nw.area(), 1.2));

    // --- architecture level: 4-bit 2x2 PE-arrayed NPU ----------------
    NpuConfig tiny;
    tiny.name = "2x2 NPU prototype";
    tiny.peWidth = 2;
    tiny.peHeight = 2;
    // The prototype is 4-bit; two 4-bit words pack per byte, so the
    // buffer rows are modeled as byte-wide with half the entries.
    tiny.bitWidth = 8;
    tiny.ifmapBufferBytes = 16;
    tiny.integratedOutputBuffer = false;
    tiny.psumBufferBytes = 16;
    tiny.ofmapBufferBytes = 16;
    tiny.weightBufferBytes = 8;
    tiny.check();

    NpuEstimator estimator(lib);
    const NpuEstimate est = estimator.estimate(tiny);
    entries.push_back(entry("NPU", "frequency (GHz)",
                            est.frequencyGhz, -4.7));
    entries.push_back(entry("NPU", "static power (mW)",
                            est.staticPowerW * 1e3, 2.3));
    entries.push_back(entry("NPU", "area (mm2)", est.areaMm2, -9.5));

    return entries;
}

double
meanAbsErrorPercent(const std::vector<ValidationEntry> &entries,
                    const std::string &metric_substring, bool npu_level)
{
    double total = 0.0;
    int count = 0;
    for (const auto &e : entries) {
        const bool is_npu = e.unit == "NPU";
        if (is_npu != npu_level)
            continue;
        if (e.metric.find(metric_substring) == std::string::npos)
            continue;
        total += std::fabs(e.errorPercent());
        ++count;
    }
    return count ? total / count : 0.0;
}

} // namespace estimator
} // namespace supernpu
