/**
 * @file
 * Architecture-level configuration of an SFQ-based NPU, shared by
 * the estimator (frequency / power / area) and the cycle-level
 * performance simulator.
 *
 * The named presets reproduce the paper's Table I columns.
 */

#ifndef SUPERNPU_ESTIMATOR_NPU_CONFIG_HH
#define SUPERNPU_ESTIMATOR_NPU_CONFIG_HH

#include <cstdint>
#include <string>

namespace supernpu {
namespace estimator {

/** Full architectural description of an SFQ NPU instance. */
struct NpuConfig
{
    std::string name = "custom";

    // --- PE array ---------------------------------------------------
    int peWidth = 256;   ///< columns (filters map across)
    int peHeight = 256;  ///< rows (weights of a filter map down)
    int bitWidth = 8;    ///< operand width
    int regsPerPe = 1;   ///< weight registers per PE (Section V-B3)

    // --- on-chip buffers --------------------------------------------
    std::uint64_t ifmapBufferBytes = 0;
    /**
     * When true, the psum and ofmap buffers are merged into one
     * integrated output buffer of `outputBufferBytes` whose chunks
     * take either role dynamically (Section V-B1). When false, the
     * separate psumBufferBytes / ofmapBufferBytes are used.
     */
    bool integratedOutputBuffer = false;
    std::uint64_t outputBufferBytes = 0;
    std::uint64_t psumBufferBytes = 0;
    std::uint64_t ofmapBufferBytes = 0;
    std::uint64_t weightBufferBytes = 0;

    /** Chunks each ifmap buffer row is divided into (1 = monolithic). */
    int ifmapDivision = 1;
    /** Chunks the output-side buffer(s) are divided into. */
    int outputDivision = 1;

    // --- memory system ----------------------------------------------
    /** Off-chip memory bandwidth, bytes per second (HBM-class). */
    double memoryBandwidth = 300e9;

    /**
     * Extension (not in the paper's designs): a second weight-buffer
     * bank so the next mapping's weights stream from DRAM during the
     * current mapping's computation. The paper's weight buffers hold
     * exactly one mapping (64 KB = 256 x 256 weights), which is why
     * its designs serialize weight loads; enabling this doubles the
     * weight-buffer capacity and overlaps the fetch.
     */
    bool weightDoubleBuffering = false;

    /** Total PE count. */
    int peCount() const { return peWidth * peHeight; }

    /** Output-side on-chip capacity (psum + ofmap or integrated). */
    std::uint64_t outputSideBytes() const;

    /** Total on-chip buffer capacity in bytes. */
    std::uint64_t totalBufferBytes() const;

    /** Sanity-check the configuration; panics when malformed. */
    void check() const;

    // --- Table I presets --------------------------------------------
    /** Baseline SFQ NPU (Section III / V-A). */
    static NpuConfig baseline();
    /** Baseline + integrated, divided output buffer (Section V-B1). */
    static NpuConfig bufferOpt();
    /** Buffer opt + resource balancing 64-wide array (Section V-B2). */
    static NpuConfig resourceOpt();
    /** Resource opt + 8 weight registers per PE (Section V-B3). */
    static NpuConfig superNpu();
};

} // namespace estimator
} // namespace supernpu

#endif // SUPERNPU_ESTIMATOR_NPU_CONFIG_HH
