/**
 * @file
 * Data alignment unit model (Section III-C, Fig. 9): per-PE-row
 * selectors, controllers, and cascaded bypassable DFF delay chains
 * that deduplicate ifmap pixels and re-time them for the systolic
 * array.
 */

#ifndef SUPERNPU_ESTIMATOR_DAU_MODEL_HH
#define SUPERNPU_ESTIMATOR_DAU_MODEL_HH

#include <cstdint>

#include "sfq/cells.hh"
#include "sfq/clocking.hh"

namespace supernpu {
namespace estimator {

/** DAU estimator. */
class DauModel
{
  public:
    /**
     * @param lib The scaled cell library.
     * @param rows PE array height (one DAU row per PE row).
     * @param bit_width Ifmap word width.
     * @param pe_pipeline_stages Depth of the PE pipeline; the r-th
     *        DAU row delays its data by up to stages-1 cycles for
     *        arrival alignment (Fig. 9's timing adjustment).
     */
    DauModel(const sfq::CellLibrary &lib, int rows, int bit_width,
             int pe_pipeline_stages);

    /** Maximum clock frequency of the delay cascade, GHz. */
    double frequencyGhz() const;

    /** Junction count (selectors, controllers, cascades, fan-out). */
    std::uint64_t jjCount() const;

    /** Static power, watts. */
    double staticPower() const;

    /** Dynamic energy per forwarded ifmap word, joules. */
    double forwardEnergy() const;

    /** Layout area, mm^2. */
    double area() const;

  private:
    const sfq::CellLibrary &_lib;
    int _rows;
    int _bits;
    int _peStages;
};

} // namespace estimator
} // namespace supernpu

#endif // SUPERNPU_ESTIMATOR_DAU_MODEL_HH
