/**
 * @file
 * DAU estimator implementation.
 */

#include "dau_model.hh"

#include "common/logging.hh"

namespace supernpu {
namespace estimator {

using sfq::ClockScheme;
using sfq::GateKind;
using sfq::GatePair;

namespace {
/** Control state machine per DAU row (index compare + valid bit). */
constexpr std::uint64_t controllerJjPerRow = 500;
} // namespace

DauModel::DauModel(const sfq::CellLibrary &lib, int rows, int bit_width,
                   int pe_pipeline_stages)
    : _lib(lib), _rows(rows), _bits(bit_width),
      _peStages(pe_pipeline_stages)
{
    SUPERNPU_ASSERT(rows >= 1 && bit_width >= 1, "bad DAU geometry");
    SUPERNPU_ASSERT(pe_pipeline_stages >= 1, "bad PE pipeline depth");
}

double
DauModel::frequencyGhz() const
{
    // The bypassable-DFF cascade dominates: special DFF to special
    // DFF through the bypass mux wiring.
    GatePair pair = sfq::makePair(
        _lib, "DAU bypass-DFF cascade",
        GateKind::DFF_BYPASS, GateKind::DFF_BYPASS,
        {GateKind::JTL, GateKind::MERGER}, 0.0,
        ClockScheme::ConcurrentFlow);
    return sfq::pairFrequencyGhz(pair);
}

std::uint64_t
DauModel::jjCount() const
{
    // Per row: a selector (one AND per data bit), the controller,
    // and the timing-adjustment cascade of bypassable DFFs.
    const std::uint64_t selector_jj =
        (std::uint64_t)_bits * _lib.gate(GateKind::AND).jjCount;
    const std::uint64_t cascade_jj =
        (std::uint64_t)(_peStages - 1) * _bits *
        _lib.gate(GateKind::DFF_BYPASS).jjCount;
    const std::uint64_t per_row =
        selector_jj + controllerJjPerRow + cascade_jj;

    // Fan-out from every ifmap buffer row to all DAU rows: a
    // splitter tree with `rows` leaves per buffer row (Fig. 9 step 1).
    const std::uint64_t fanout_jj =
        (std::uint64_t)_rows * (std::uint64_t)(_rows - 1) * _bits / 8 *
        _lib.gate(GateKind::SPLITTER).jjCount;

    return (std::uint64_t)_rows * per_row + fanout_jj;
}

double
DauModel::staticPower() const
{
    return (double)jjCount() * _lib.staticPowerPerJj();
}

double
DauModel::forwardEnergy() const
{
    // One word traverses the selector AND, about half the cascade
    // DFFs, and one splitter-tree path.
    const double cascade = 0.5 * (double)(_peStages - 1) *
                           _lib.accessEnergy(GateKind::DFF_BYPASS);
    return (double)_bits *
           (_lib.accessEnergy(GateKind::AND) + cascade +
            _lib.accessEnergy(GateKind::SPLITTER));
}

double
DauModel::area() const
{
    return (double)jjCount() * _lib.areaPerJj();
}

} // namespace estimator
} // namespace supernpu
