/**
 * @file
 * Architecture-level estimation implementation.
 */

#include "npu_estimator.hh"

#include <algorithm>

#include "buffer_model.hh"
#include "common/logging.hh"
#include "dau_model.hh"
#include "io_model.hh"
#include "network_model.hh"
#include "pe_model.hh"

namespace supernpu {
namespace estimator {

using sfq::ClockScheme;
using sfq::GateKind;
using sfq::GatePair;

double
NpuEstimate::areaMm2At(double feature_nm) const
{
    SUPERNPU_ASSERT(feature_nm > 0 && nativeFeatureUm > 0,
                    "bad feature sizes");
    const double ratio = feature_nm / (nativeFeatureUm * 1000.0);
    return areaMm2 * ratio * ratio;
}

NpuEstimator::NpuEstimator(const sfq::CellLibrary &lib)
    : _lib(lib)
{
}

NpuEstimate
NpuEstimator::estimate(const NpuConfig &config) const
{
    config.check();

    NpuEstimate est;
    est.config = config;
    est.nativeFeatureUm = _lib.device().featureSizeUm;

    // --- microarchitecture units ------------------------------------
    PeModel pe(_lib, config.bitWidth, config.regsPerPe);
    NetworkUnitModel network(_lib, NetworkDesign::Systolic2D,
                             config.peWidth, config.bitWidth);
    DauModel dau(_lib, config.peHeight, config.bitWidth,
                 pe.pipelineStages());

    BufferModel ifmap(_lib, config.ifmapBufferBytes, config.peHeight,
                      config.bitWidth, config.ifmapDivision);
    BufferModel weight(_lib, config.weightBufferBytes, config.peWidth,
                       config.bitWidth, 1);

    std::vector<BufferModel> output_buffers;
    if (config.integratedOutputBuffer) {
        output_buffers.emplace_back(_lib, config.outputBufferBytes,
                                    config.peWidth, config.bitWidth,
                                    config.outputDivision);
    } else {
        output_buffers.emplace_back(_lib, config.psumBufferBytes,
                                    config.peWidth, config.bitWidth,
                                    config.outputDivision);
        output_buffers.emplace_back(_lib, config.ofmapBufferBytes,
                                    config.peWidth, config.bitWidth,
                                    config.outputDivision);
    }

    // --- per-unit roll-up --------------------------------------------
    auto add_unit = [&](const std::string &name, double freq,
                        double static_w, double area, std::uint64_t jj) {
        est.units.push_back({name, freq, static_w, area, jj});
        est.staticPowerW += static_w;
        est.areaMm2 += area;
        est.jjCount += jj;
    };

    add_unit("PE array", pe.frequencyGhz(),
             pe.staticPower() * config.peCount(),
             pe.area() * config.peCount(),
             pe.jjCount() * (std::uint64_t)config.peCount());
    add_unit("NW unit", network.frequencyGhz(),
             network.staticPower() * config.peHeight,
             network.area() * config.peHeight,
             network.jjCount() * (std::uint64_t)config.peHeight);
    add_unit("DAU", dau.frequencyGhz(), dau.staticPower(), dau.area(),
             dau.jjCount());
    add_unit("Ifmap buffer", ifmap.frequencyGhz(), ifmap.staticPower(),
             ifmap.area(), ifmap.jjCount());
    add_unit("Weight buffer", weight.frequencyGhz(),
             weight.staticPower(), weight.area(), weight.jjCount());
    if (config.integratedOutputBuffer) {
        add_unit("Output buffer", output_buffers[0].frequencyGhz(),
                 output_buffers[0].staticPower(),
                 output_buffers[0].area(), output_buffers[0].jjCount());
    } else {
        add_unit("Psum buffer", output_buffers[0].frequencyGhz(),
                 output_buffers[0].staticPower(),
                 output_buffers[0].area(), output_buffers[0].jjCount());
        add_unit("Ofmap buffer", output_buffers[1].frequencyGhz(),
                 output_buffers[1].staticPower(),
                 output_buffers[1].area(), output_buffers[1].jjCount());
    }

    IoModel io(_lib, config);
    add_unit("I/O + clkgen", 0.0, io.staticPower(), io.area(),
             io.jjCount());

    // --- inter-unit timing arcs (Section IV-A3) ----------------------
    // Unit-to-unit PTL runs are clock-skewed concurrent-flow arcs;
    // the run length grows with the units' footprint.
    const double ptl_run_ps =
        3.0 * _lib.device().timingScale();
    std::vector<std::pair<std::string, double>> arc_freqs;
    auto inter_arc = [&](const std::string &name, GateKind driver,
                         GateKind receiver) {
        GatePair pair = sfq::makePair(_lib, name, driver, receiver,
                                      {GateKind::SPLITTER}, 0.0,
                                      ClockScheme::ConcurrentFlow);
        pair.dataWireDelay += ptl_run_ps;
        // Inter-unit clocking is skewed to 85% cancellation.
        pair = sfq::withClockSkew(pair, 0.85);
        arc_freqs.emplace_back(name, sfq::pairFrequencyGhz(pair));
    };
    inter_arc("ifmap-buf->DAU", GateKind::DFF, GateKind::DFF_BYPASS);
    inter_arc("DAU->PE", GateKind::DFF_BYPASS, GateKind::AND);
    inter_arc("weight-buf->PE", GateKind::DFF, GateKind::NDRO);
    inter_arc("PE->output-buf", GateKind::XOR, GateKind::DFF);

    // --- achievable clock: minimum over everything --------------------
    est.frequencyGhz = 0.0;
    for (const auto &unit : est.units) {
        if (unit.frequencyGhz <= 0.0)
            continue;
        if (est.frequencyGhz == 0.0 ||
            unit.frequencyGhz < est.frequencyGhz) {
            est.frequencyGhz = unit.frequencyGhz;
            est.limitingUnit = unit.name;
        }
    }
    for (const auto &[name, freq] : arc_freqs) {
        if (freq < est.frequencyGhz) {
            est.frequencyGhz = freq;
            est.limitingUnit = name;
        }
    }
    SUPERNPU_ASSERT(est.frequencyGhz > 0.0, "no clocked units found");

    est.peakMacPerSec =
        (double)config.peCount() * est.frequencyGhz * 1e9;

    // --- energy coefficients and geometry snapshots -------------------
    est.peMacEnergyJ = pe.macEnergy();
    est.ifmapChunkShiftEnergyJ = ifmap.chunkShiftEnergy();
    est.outputChunkShiftEnergyJ = output_buffers[0].chunkShiftEnergy();
    est.dauForwardEnergyJ = dau.forwardEnergy();
    est.nwHopEnergyJ = network.hopEnergy();

    est.ifmapRowLength = ifmap.rowLengthEntries();
    est.ifmapChunkLength = ifmap.chunkLengthEntries();
    est.outputRowLength = output_buffers[0].rowLengthEntries();
    est.outputChunkLength = output_buffers[0].chunkLengthEntries();

    return est;
}

} // namespace estimator
} // namespace supernpu
