/**
 * @file
 * Off-chip memory technology models (Section II-B4): the paper's
 * survey of 4 K-capable memories — the vortex transition memory
 * (VTM), the Josephson-CMOS hybrid, and Josephson magnetic RAM
 * (JMRAM) — against the room-temperature CMOS DRAM (HBM) the NPU
 * actually uses. The survey's conclusion (only CMOS DRAM offers
 * practical capacity today, at the cost of a cold-to-warm link)
 * shapes the whole architecture toward minimizing off-chip traffic.
 */

#ifndef SUPERNPU_ESTIMATOR_OFFCHIP_MEMORY_HH
#define SUPERNPU_ESTIMATOR_OFFCHIP_MEMORY_HH

#include <cstdint>
#include <string>
#include <vector>

namespace supernpu {
namespace estimator {

/** Surveyed off-chip memory technologies. */
enum class OffChipKind
{
    CmosDram,       ///< room-temperature HBM over a cryostat link
    VortexTransition, ///< Tahara et al. 4-kbit VTM
    JosephsonCmosHybrid, ///< Konno et al. 64-kbit hybrid
    JosephsonMagnetic,   ///< Dayton et al. JMRAM (demonstrator cells)
};

/** Name for reports. */
const char *offChipKindName(OffChipKind kind);

/** Characteristics of one memory technology. */
struct OffChipMemoryModel
{
    OffChipKind kind = OffChipKind::CmosDram;
    std::string note;

    /** Largest demonstrated / plausible module capacity, bytes. */
    std::uint64_t demonstratedCapacity = 0;
    /** Random-access latency, ns. */
    double accessLatencyNs = 0.0;
    /** Sustained bandwidth per module, bytes/s. */
    double bandwidth = 0.0;
    /** Energy per transferred bit at the device, joules. */
    double energyPerBit = 0.0;
    /** Operates inside the 4 K stage (no cold-warm link needed). */
    bool cryogenic = false;
    /** Mature enough to build a server NPU around today. */
    bool practical = false;

    /** The surveyed model for one technology. */
    static OffChipMemoryModel survey(OffChipKind kind);

    /** All four surveyed technologies. */
    static std::vector<OffChipMemoryModel> surveyAll();

    /**
     * Modules needed to hold a working set and to sustain a
     * bandwidth demand — the feasibility arithmetic that rules the
     * JJ memories out for NPU-scale buffering.
     */
    std::uint64_t modulesForCapacity(std::uint64_t bytes) const;
    std::uint64_t modulesForBandwidth(double bytes_per_s) const;
};

} // namespace estimator
} // namespace supernpu

#endif // SUPERNPU_ESTIMATOR_OFFCHIP_MEMORY_HH
