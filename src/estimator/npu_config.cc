/**
 * @file
 * NpuConfig presets (the paper's Table I).
 */

#include "npu_config.hh"

#include "common/logging.hh"
#include "common/units.hh"

namespace supernpu {
namespace estimator {

std::uint64_t
NpuConfig::outputSideBytes() const
{
    if (integratedOutputBuffer)
        return outputBufferBytes;
    return psumBufferBytes + ofmapBufferBytes;
}

std::uint64_t
NpuConfig::totalBufferBytes() const
{
    return ifmapBufferBytes + outputSideBytes() + weightBufferBytes;
}

void
NpuConfig::check() const
{
    SUPERNPU_ASSERT(peWidth > 0 && peHeight > 0, "empty PE array");
    SUPERNPU_ASSERT(bitWidth > 0 && bitWidth <= 32, "bad bit width");
    SUPERNPU_ASSERT(regsPerPe >= 1, "need at least one weight register");
    SUPERNPU_ASSERT(ifmapBufferBytes > 0, "no ifmap buffer");
    SUPERNPU_ASSERT(weightBufferBytes > 0, "no weight buffer");
    if (integratedOutputBuffer) {
        SUPERNPU_ASSERT(outputBufferBytes > 0, "no output buffer");
    } else {
        SUPERNPU_ASSERT(psumBufferBytes > 0 && ofmapBufferBytes > 0,
                        "separate psum/ofmap buffers required");
    }
    SUPERNPU_ASSERT(ifmapDivision >= 1 && outputDivision >= 1,
                    "division degree must be >= 1");
    SUPERNPU_ASSERT(memoryBandwidth > 0, "no memory bandwidth");
}

NpuConfig
NpuConfig::baseline()
{
    NpuConfig config;
    config.name = "Baseline";
    config.peWidth = 256;
    config.peHeight = 256;
    config.ifmapBufferBytes = 8 * units::MiB;
    config.integratedOutputBuffer = false;
    config.psumBufferBytes = 8 * units::MiB;
    config.ofmapBufferBytes = 8 * units::MiB;
    config.weightBufferBytes = 64 * units::kiB;
    config.ifmapDivision = 1;
    config.outputDivision = 1;
    config.regsPerPe = 1;
    config.check();
    return config;
}

NpuConfig
NpuConfig::bufferOpt()
{
    NpuConfig config;
    config.name = "Buffer opt.";
    config.peWidth = 256;
    config.peHeight = 256;
    // Psum and ofmap merge into one 12 MB integrated buffer; the
    // ifmap buffer grows to the matching 12 MB (Table I).
    config.ifmapBufferBytes = 12 * units::MiB;
    config.integratedOutputBuffer = true;
    config.outputBufferBytes = 12 * units::MiB;
    config.weightBufferBytes = 64 * units::kiB;
    config.ifmapDivision = 64;
    config.outputDivision = 64;
    config.regsPerPe = 1;
    config.check();
    return config;
}

NpuConfig
NpuConfig::resourceOpt()
{
    NpuConfig config = bufferOpt();
    config.name = "Resource opt.";
    // Trade 3/4 of the PE columns for doubled buffer capacity; the
    // output buffer is divided further (64 -> 256) to keep the chunk
    // length constant (Section V-B2).
    config.peWidth = 64;
    config.ifmapBufferBytes = 24 * units::MiB;
    config.outputBufferBytes = 24 * units::MiB;
    config.weightBufferBytes = 16 * units::kiB;
    config.outputDivision = 256;
    config.check();
    return config;
}

NpuConfig
NpuConfig::superNpu()
{
    NpuConfig config = resourceOpt();
    config.name = "SuperNPU";
    // Eight weight registers per PE enable multi-kernel execution;
    // the weight buffer grows to hold the extra kernels (Table I).
    config.regsPerPe = 8;
    config.weightBufferBytes = 128 * units::kiB;
    config.check();
    return config;
}

} // namespace estimator
} // namespace supernpu
