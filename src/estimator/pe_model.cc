/**
 * @file
 * PE gate inventory and timing arcs.
 */

#include "pe_model.hh"

#include "common/logging.hh"

namespace supernpu {
namespace estimator {

using sfq::ClockScheme;
using sfq::GateKind;
using sfq::GatePair;

namespace {

/** Gate counts of one bit-parallel MAC PE. */
struct PeInventory
{
    std::uint64_t andGates;   ///< partial-product generation
    std::uint64_t fullAdders; ///< reduction tree + accumulator
    std::uint64_t ndroCells;  ///< weight register bits
    std::uint64_t pipelineDffs;
    std::uint64_t clockedGates; ///< everything needing a clock tap
    std::uint64_t splitters;    ///< clock distribution
    std::uint64_t jtlStages;    ///< local interconnect
};

PeInventory
buildInventory(int bits, int regs)
{
    PeInventory inv;
    inv.andGates = (std::uint64_t)bits * bits;
    // Array-multiplier reduction needs bits*(bits-1) full adders;
    // the psum accumulator is a 3*bits-wide ripple of full adders
    // (8-bit operands accumulate into 24-bit partial sums).
    inv.fullAdders = (std::uint64_t)bits * (bits - 1) + 3ull * bits;
    inv.ndroCells = (std::uint64_t)regs * bits;
    // Gate-level pipelining latches roughly two operand widths of
    // live signals per stage.
    const int stages = 2 * bits - 1;
    inv.pipelineDffs = (std::uint64_t)stages * 2 * bits;

    // A full adder is 2 XOR + 2 AND + 1 OR = 5 clocked gates.
    inv.clockedGates = inv.andGates + inv.fullAdders * 5 +
                       inv.ndroCells + inv.pipelineDffs;
    inv.splitters = inv.clockedGates;      // one clock tap each
    inv.jtlStages = inv.clockedGates * 2;  // local wiring
    return inv;
}

/**
 * PTL wiring delay on the multiplier's longest data arc, ps at the
 * 1.0 um node. Calibrated so the 8-bit PE clocks at the paper's
 * 52.6 GHz; scales with the operand width (longer reduction rows).
 */
double
criticalPtlDelay(int bits)
{
    return 4.41 * (double)bits / 8.0;
}

/** Average data activity of the MAC datapath over CNN operands. */
constexpr double dataActivity = 0.5;

/**
 * Energy overhead of the PE's PTL drivers/receivers and the always-
 * firing clock distribution relative to the bare gate accesses.
 * Calibrated against Table III's 1.9 W ERSFQ-SuperNPU figure.
 */
constexpr double ptlAndClockOverheadFactor = 3.8;

} // namespace

PeModel::PeModel(const sfq::CellLibrary &lib, int bit_width,
                 int regs_per_pe)
    : _lib(lib), _bits(bit_width), _regs(regs_per_pe)
{
    SUPERNPU_ASSERT(_bits >= 2 && _bits <= 32, "bad PE bit width");
    SUPERNPU_ASSERT(_regs >= 1, "bad register count");

    const double timing = lib.device().timingScale();

    // Worst arc: a partial-product AND feeding the reduction tree
    // through a splitter, a confluence merger, and the long PTL run
    // across the multiplier row.
    GatePair worst = sfq::makePair(
        lib, "pp-AND->reduce-XOR",
        GateKind::AND, GateKind::XOR,
        {GateKind::SPLITTER, GateKind::MERGER}, 0.0,
        ClockScheme::ConcurrentFlow);
    worst.dataWireDelay += criticalPtlDelay(_bits) * timing;
    _pairs.push_back(worst);

    // Reduction output into the accumulator column.
    GatePair acc = sfq::makePair(
        lib, "reduce-XOR->acc-XOR",
        GateKind::XOR, GateKind::XOR,
        {GateKind::SPLITTER, GateKind::MERGER}, 0.0,
        ClockScheme::ConcurrentFlow);
    acc.dataWireDelay += 3.0 * timing;
    _pairs.push_back(acc);

    // Weight register readout into the partial-product ANDs.
    GatePair weight = sfq::makePair(
        lib, "weight-NDRO->pp-AND",
        GateKind::NDRO, GateKind::AND,
        {GateKind::SPLITTER}, 0.0,
        ClockScheme::ConcurrentFlow);
    weight.dataWireDelay += 2.0 * timing;
    _pairs.push_back(weight);
}

int
PeModel::pipelineStages() const
{
    return 2 * _bits - 1;
}

double
PeModel::frequencyGhz() const
{
    return sfq::minFrequencyGhz(_pairs);
}

std::uint64_t
PeModel::jjCount() const
{
    const PeInventory inv = buildInventory(_bits, _regs);
    std::uint64_t jj = 0;
    jj += inv.andGates * _lib.gate(GateKind::AND).jjCount;
    // Full adder: 2 XOR + 2 AND + 1 OR.
    jj += inv.fullAdders * (2 * _lib.gate(GateKind::XOR).jjCount +
                            2 * _lib.gate(GateKind::AND).jjCount +
                            _lib.gate(GateKind::OR).jjCount);
    jj += inv.ndroCells * _lib.gate(GateKind::NDRO).jjCount;
    jj += inv.pipelineDffs * _lib.gate(GateKind::DFF).jjCount;
    jj += inv.splitters * _lib.gate(GateKind::SPLITTER).jjCount;
    jj += inv.jtlStages * _lib.gate(GateKind::JTL).jjCount;
    return jj;
}

double
PeModel::staticPower() const
{
    return (double)jjCount() * _lib.staticPowerPerJj();
}

double
PeModel::macEnergy() const
{
    const PeInventory inv = buildInventory(_bits, _regs);
    // Data-dependent switching of the clocked logic plus the clock
    // distribution splitters, which fire on every access.
    double energy = 0.0;
    energy += (double)inv.andGates *
              _lib.accessEnergy(GateKind::AND) * dataActivity;
    energy += (double)inv.fullAdders *
              (2.0 * _lib.accessEnergy(GateKind::XOR) +
               2.0 * _lib.accessEnergy(GateKind::AND) +
               _lib.accessEnergy(GateKind::OR)) * dataActivity;
    energy += (double)inv.ndroCells *
              _lib.accessEnergy(GateKind::NDRO) * dataActivity;
    energy += (double)inv.pipelineDffs *
              _lib.accessEnergy(GateKind::DFF) * dataActivity;
    energy += (double)inv.splitters *
              _lib.accessEnergy(GateKind::SPLITTER);
    energy += (double)inv.jtlStages *
              _lib.accessEnergy(GateKind::JTL) * dataActivity;
    return energy * ptlAndClockOverheadFactor;
}

double
PeModel::area() const
{
    return (double)jjCount() * _lib.areaPerJj();
}

} // namespace estimator
} // namespace supernpu
