/**
 * @file
 * Network-unit candidate models.
 */

#include "network_model.hh"

#include <cmath>

#include "common/logging.hh"

namespace supernpu {
namespace estimator {

using sfq::ClockScheme;
using sfq::GateKind;
using sfq::GatePair;

namespace {

/**
 * Per-PE-column wire delay of the global clock line shared by the
 * two splitter trees in the 2D design, ps at 1.0 um. The two PE
 * inputs' arrival times diverge by this amount per column (Fig. 4(a)
 * "input arrival timing"), reaching the paper's >800 ps at a 64-wide
 * array.
 */
constexpr double treeSkewPerColumnPs = 12.5;

/** JTL stages per PE pitch of routed tree wiring. */
constexpr double jtlPerPitch = 0.8;

} // namespace

const char *
networkDesignName(NetworkDesign design)
{
    switch (design) {
      case NetworkDesign::SplitterTree2D:
        return "2D splitter tree";
      case NetworkDesign::SplitterTree1D:
        return "1D splitter tree";
      case NetworkDesign::Systolic2D:
        return "2D systolic array";
    }
    panic("unknown network design");
}

NetworkUnitModel::NetworkUnitModel(const sfq::CellLibrary &lib,
                                   NetworkDesign design, int array_width,
                                   int bit_width)
    : _lib(lib), _design(design), _width(array_width), _bits(bit_width)
{
    SUPERNPU_ASSERT(array_width >= 1, "bad array width");
    SUPERNPU_ASSERT(bit_width >= 1, "bad bit width");
}

double
NetworkUnitModel::criticalPathPs() const
{
    const double timing = _lib.device().timingScale();

    // The branch cell (DFF + splitter) shift arc common to all
    // designs.
    GatePair branch = sfq::makePair(
        _lib, "NW DFF->DFF", GateKind::DFF, GateKind::DFF,
        {GateKind::SPLITTER, GateKind::JTL}, 0.0,
        ClockScheme::ConcurrentFlow);

    switch (_design) {
      case NetworkDesign::Systolic2D:
        // Store-and-forward: neighbour hops only; the timing
        // divergence between the two PE inputs is one hop for both,
        // i.e. negligible (Fig. 4(c)).
        return sfq::pairCct(branch);

      case NetworkDesign::SplitterTree1D: {
        // One fan-out tree: all leaves share the clock root, so
        // leaf arrival is uniform; only the tree depth's residual
        // jitter adds to the branch arc.
        const double depth = std::ceil(std::log2((double)_width));
        GatePair pair = branch;
        pair.dataWireDelay += 0.3 * depth * timing;
        return sfq::pairCct(pair);
      }

      case NetworkDesign::SplitterTree2D: {
        // Two trees feed each PE; their input arrival divergence
        // grows linearly with the array width along the shared
        // global clock line (Fig. 4(a), Fig. 5(a)).
        GatePair pair = branch;
        pair.dataWireDelay +=
            treeSkewPerColumnPs * (double)_width * timing;
        return sfq::pairCct(pair);
      }
    }
    panic("unknown network design");
}

double
NetworkUnitModel::frequencyGhz() const
{
    return 1e3 / criticalPathPs();
}

std::uint64_t
NetworkUnitModel::jjCount() const
{
    const std::uint64_t branch_jj =
        _lib.gate(GateKind::DFF).jjCount +
        _lib.gate(GateKind::SPLITTER).jjCount +
        2 * _lib.gate(GateKind::JTL).jjCount;

    switch (_design) {
      case NetworkDesign::Systolic2D:
        // One branch cell per PE hop per bit along a row.
        return (std::uint64_t)_width * _bits * branch_jj;

      case NetworkDesign::SplitterTree1D:
      case NetworkDesign::SplitterTree2D: {
        // (width - 1) splitters per bit plus the long JTL runs from
        // the tree to each leaf; run length grows with the square of
        // the width (each of `width` leaves is reached over an
        // average of width/2 PE pitches).
        const double splitter_jj =
            (double)(_width - 1) * _bits *
            _lib.gate(GateKind::SPLITTER).jjCount;
        const double run_jj = (double)_width * (double)_width / 2.0 *
                              jtlPerPitch * _bits *
                              _lib.gate(GateKind::JTL).jjCount;
        double total = splitter_jj + run_jj;
        if (_design == NetworkDesign::SplitterTree2D)
            total *= 1.1; // second tree shares most of the routing
        return (std::uint64_t)total;
      }
    }
    panic("unknown network design");
}

double
NetworkUnitModel::staticPower() const
{
    return (double)jjCount() * _lib.staticPowerPerJj();
}

double
NetworkUnitModel::area() const
{
    return (double)jjCount() * _lib.areaPerJj();
}

double
NetworkUnitModel::hopEnergy() const
{
    return (double)_bits * (_lib.accessEnergy(GateKind::DFF) +
                            _lib.accessEnergy(GateKind::SPLITTER));
}

} // namespace estimator
} // namespace supernpu
