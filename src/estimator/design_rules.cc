/**
 * @file
 * Design-rule implementations.
 */

#include "design_rules.hh"

#include <algorithm>

#include "common/units.hh"

namespace supernpu {
namespace estimator {

std::vector<RuleFinding>
checkDesignRules(const NpuConfig &config, const NpuEstimate &estimate)
{
    std::vector<RuleFinding> findings;
    auto add = [&](RuleSeverity severity, const std::string &rule,
                   const std::string &message) {
        findings.push_back({severity, rule, message});
    };

    // The weight buffer must stage one full mapping.
    const std::uint64_t mapping_weights =
        (std::uint64_t)config.peWidth * config.peHeight *
        config.regsPerPe;
    if (config.weightBufferBytes < mapping_weights) {
        add(RuleSeverity::Error, "weight-buffer",
            "weight buffer (" +
                units::bytesHuman(config.weightBufferBytes) +
                ") is smaller than one mapping's weights (" +
                units::bytesHuman(mapping_weights) +
                "); the array can never be fully loaded");
    } else if (config.weightDoubleBuffering &&
               config.weightBufferBytes < 2 * mapping_weights) {
        add(RuleSeverity::Error, "weight-buffer",
            "weight double buffering needs two mapping-sized banks");
    }

    // Separate psum/ofmap buffers: the Baseline's dominant cost.
    if (!config.integratedOutputBuffer) {
        add(RuleSeverity::Warning, "psum-separation",
            "separate psum/ofmap buffers pay a " +
                std::to_string(2 * estimate.outputRowLength) +
                "-cycle move per row fold; integrate them "
                "(Section V-B1)");
    }

    // Monolithic buffers rewind their full rows.
    if (config.ifmapDivision <= 1 || config.outputDivision <= 1) {
        add(RuleSeverity::Warning, "undivided-buffers",
            "undivided shift-register buffers pay full-row rewinds "
            "and forced flushes; divide into chunks (Section V-B1)");
    }

    // Excessive division blows up the mux/demux trees.
    if (std::max(config.ifmapDivision, config.outputDivision) > 1024) {
        add(RuleSeverity::Warning, "division-area",
            "division degrees beyond ~1024 grow the mux/demux area "
            "rapidly for no performance gain (Fig. 20)");
    }

    // Output chunks must cover a column's in-flight psums.
    const int pipeline = 2 * config.bitWidth - 1;
    if (config.integratedOutputBuffer &&
        estimate.outputChunkLength < (std::uint64_t)pipeline) {
        add(RuleSeverity::Error, "chunk-depth",
            "output chunks of " +
                std::to_string(estimate.outputChunkLength) +
                " entries cannot hold the PE pipeline's " +
                std::to_string(pipeline) + " in-flight psums");
    }

    // CNN filters are deep and few: depth-major arrays map better.
    if (config.peWidth > config.peHeight) {
        add(RuleSeverity::Warning, "aspect-ratio",
            "array is wider than tall; CNN filters fold depth-major, "
            "so width beyond the filter count idles columns "
            "(Section V-B2)");
    }

    std::stable_sort(findings.begin(), findings.end(),
                     [](const RuleFinding &a, const RuleFinding &b) {
                         return (int)a.severity > (int)b.severity;
                     });
    return findings;
}

bool
designIsOperable(const std::vector<RuleFinding> &findings)
{
    for (const auto &finding : findings) {
        if (finding.severity == RuleSeverity::Error)
            return false;
    }
    return true;
}

} // namespace estimator
} // namespace supernpu
