/**
 * @file
 * Off-chip memory survey values.
 *
 * Reconstructed from the literature the paper cites: Tahara et al.
 * (VTM, 4 kbit), Konno et al. / Tanaka et al. (Josephson-CMOS
 * hybrid, 64 kbit), Dayton et al. (JMRAM cell demonstrations), and
 * TPUv2-class HBM for the CMOS DRAM the evaluation assumes.
 */

#include "offchip_memory.hh"

#include <cmath>

#include "common/logging.hh"

namespace supernpu {
namespace estimator {

const char *
offChipKindName(OffChipKind kind)
{
    switch (kind) {
      case OffChipKind::CmosDram:
        return "CMOS DRAM (HBM)";
      case OffChipKind::VortexTransition:
        return "Vortex transition memory";
      case OffChipKind::JosephsonCmosHybrid:
        return "Josephson-CMOS hybrid";
      case OffChipKind::JosephsonMagnetic:
        return "Josephson magnetic RAM";
    }
    panic("unknown memory kind");
}

OffChipMemoryModel
OffChipMemoryModel::survey(OffChipKind kind)
{
    OffChipMemoryModel m;
    m.kind = kind;
    switch (kind) {
      case OffChipKind::CmosDram:
        m.demonstratedCapacity = 8ull << 30; // 8 GiB stack
        m.accessLatencyNs = 100.0;           // incl. cold-warm link
        m.bandwidth = 300e9;
        m.energyPerBit = 5e-12; // pJ/bit class, link included
        m.cryogenic = false;
        m.practical = true;
        m.note = "large and reliable; pays the cryostat link";
        break;
      case OffChipKind::VortexTransition:
        m.demonstratedCapacity = 4096 / 8; // 4 kbit prototype
        m.accessLatencyNs = 1.0;
        m.bandwidth = 10e9;
        m.energyPerBit = 1e-16;
        m.cryogenic = true;
        m.practical = false;
        m.note = "AC biasing and large cells block scaling";
        break;
      case OffChipKind::JosephsonCmosHybrid:
        m.demonstratedCapacity = 65536 / 8; // 64 kbit
        m.accessLatencyNs = 2.0;
        m.bandwidth = 50e9;
        m.energyPerBit = 1e-14;
        m.cryogenic = true;
        m.practical = false;
        m.note = "CMOS array at 4 K; interface amplifiers dominate";
        break;
      case OffChipKind::JosephsonMagnetic:
        m.demonstratedCapacity = 64; // cell-level demonstrations
        m.accessLatencyNs = 0.5;
        m.bandwidth = 20e9;
        m.energyPerBit = 1e-15;
        m.cryogenic = true;
        m.practical = false;
        m.note = "pi-junction cells demonstrated; no array yet";
        break;
    }
    return m;
}

std::vector<OffChipMemoryModel>
OffChipMemoryModel::surveyAll()
{
    return {
        survey(OffChipKind::CmosDram),
        survey(OffChipKind::VortexTransition),
        survey(OffChipKind::JosephsonCmosHybrid),
        survey(OffChipKind::JosephsonMagnetic),
    };
}

std::uint64_t
OffChipMemoryModel::modulesForCapacity(std::uint64_t bytes) const
{
    SUPERNPU_ASSERT(demonstratedCapacity > 0, "memory with no capacity");
    return (bytes + demonstratedCapacity - 1) / demonstratedCapacity;
}

std::uint64_t
OffChipMemoryModel::modulesForBandwidth(double bytes_per_s) const
{
    SUPERNPU_ASSERT(bandwidth > 0, "memory with no bandwidth");
    return (std::uint64_t)std::ceil(bytes_per_s / bandwidth);
}

} // namespace estimator
} // namespace supernpu
