/**
 * @file
 * Model validation against the paper's physical references
 * (Section IV-A4, Figs. 12-13): a fabricated 4-bit MAC unit measured
 * at 4 K, and post-layout characterizations of an 8-bit 8-entry
 * shift-register memory, an 8-bit NW unit, and a 4-bit 2x2
 * PE-arrayed NPU.
 *
 * Substitution note (DESIGN.md section 2): the dies and layouts are
 * not available, so the reference values are reconstructed as the
 * model outputs perturbed by per-unit offsets whose magnitudes equal
 * the paper's reported validation errors (5.6 / 1.2 / 1.3 % average
 * at the unit level; 4.7 / 2.3 / 9.5 % for the NPU). This preserves
 * the comparison structure and error bands of Fig. 13.
 */

#ifndef SUPERNPU_ESTIMATOR_VALIDATION_HH
#define SUPERNPU_ESTIMATOR_VALIDATION_HH

#include <string>
#include <vector>

#include "sfq/cells.hh"

namespace supernpu {
namespace estimator {

/** One model-vs-reference comparison row. */
struct ValidationEntry
{
    std::string unit;    ///< "MAC unit", "SRmem", "NW unit", "NPU"
    std::string metric;  ///< "frequency (GHz)", "power (mW)", ...
    double modelValue = 0.0;
    double referenceValue = 0.0;

    /** Signed relative error of the model vs the reference, percent. */
    double errorPercent() const;
};

/**
 * Build the full Fig. 13 validation table for a cell library
 * (normally the RSFQ 1.0 um library the prototypes used).
 */
std::vector<ValidationEntry> validationReport(const sfq::CellLibrary &lib);

/** Mean absolute error over entries matching a metric substring. */
double meanAbsErrorPercent(const std::vector<ValidationEntry> &entries,
                           const std::string &metric_substring,
                           bool npu_level);

} // namespace estimator
} // namespace supernpu

#endif // SUPERNPU_ESTIMATOR_VALIDATION_HH
