/**
 * @file
 * Architecture-level estimation (Section IV-A3): integrates the
 * microarchitecture unit models into whole-NPU frequency, power,
 * area, and the energy coefficients the cycle simulator consumes.
 */

#ifndef SUPERNPU_ESTIMATOR_NPU_ESTIMATOR_HH
#define SUPERNPU_ESTIMATOR_NPU_ESTIMATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "npu_config.hh"
#include "sfq/cells.hh"

namespace supernpu {
namespace estimator {

/** Per-unit summary inside an NpuEstimate. */
struct UnitEstimate
{
    std::string name;
    /** Unit clock limit, GHz; 0 for units with no clocked arcs. */
    double frequencyGhz = 0.0;
    double staticPowerW = 0.0;
    double areaMm2 = 0.0;
    std::uint64_t jjCount = 0;
};

/** Whole-NPU estimation results. */
struct NpuEstimate
{
    NpuConfig config;

    /** Achievable clock: min over units and inter-unit arcs, GHz. */
    double frequencyGhz = 0.0;
    /** Name of the limiting unit or arc. */
    std::string limitingUnit;

    double staticPowerW = 0.0;
    std::uint64_t jjCount = 0;
    /** Area at the library's native node, mm^2. */
    double areaMm2 = 0.0;
    /** The library's native feature size, um (for area rescaling). */
    double nativeFeatureUm = 1.0;
    /** Peak throughput at the achievable clock, MAC/s. */
    double peakMacPerSec = 0.0;

    /** Per-unit breakdown. */
    std::vector<UnitEstimate> units;

    // --- energy coefficients for the performance simulator ---------
    /** Dynamic energy per MAC operation, joules. */
    double peMacEnergyJ = 0.0;
    /** Energy to shift one ifmap buffer chunk one position, joules. */
    double ifmapChunkShiftEnergyJ = 0.0;
    /** Same for the output-side buffer chunks. */
    double outputChunkShiftEnergyJ = 0.0;
    /** Energy per ifmap word through the DAU, joules. */
    double dauForwardEnergyJ = 0.0;
    /** Energy per word per systolic hop, joules. */
    double nwHopEnergyJ = 0.0;

    // --- buffer geometry snapshots (cycle-cost inputs) -------------
    std::uint64_t ifmapRowLength = 0;   ///< entries per ifmap row
    std::uint64_t ifmapChunkLength = 0; ///< entries per ifmap chunk
    std::uint64_t outputRowLength = 0;  ///< entries per output row
    std::uint64_t outputChunkLength = 0;///< entries per output chunk

    /**
     * Area scaled to another lithography node for CMOS-comparable
     * reporting (Table I quotes 28 nm equivalents), mm^2.
     */
    double areaMm2At(double feature_nm) const;
};

/** The estimator front-end. */
class NpuEstimator
{
  public:
    explicit NpuEstimator(const sfq::CellLibrary &lib);

    /** Estimate one architecture configuration. */
    NpuEstimate estimate(const NpuConfig &config) const;

  private:
    const sfq::CellLibrary &_lib;
};

} // namespace estimator
} // namespace supernpu

#endif // SUPERNPU_ESTIMATOR_NPU_ESTIMATOR_HH
