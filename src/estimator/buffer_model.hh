/**
 * @file
 * Microarchitecture model of a shift-register-based on-chip buffer
 * (Section II-B3), optionally divided into chunks connected through
 * multiplexer / demultiplexer trees (Section V-B1).
 *
 * Geometry: the buffer feeds `rows` parallel ports of `widthBits`
 * each (one per PE row or column); each row is a serial shift
 * register of `rowLengthEntries()` words. Division by D splits each
 * row into D independently selectable chunks of length
 * `chunkLengthEntries()`, shortening every intra-buffer move from
 * O(row length) to O(chunk length).
 */

#ifndef SUPERNPU_ESTIMATOR_BUFFER_MODEL_HH
#define SUPERNPU_ESTIMATOR_BUFFER_MODEL_HH

#include <cstdint>

#include "sfq/cells.hh"
#include "sfq/clocking.hh"

namespace supernpu {
namespace estimator {

/** Shift-register buffer estimator. */
class BufferModel
{
  public:
    /**
     * @param lib The scaled cell library.
     * @param capacity_bytes Total storage capacity.
     * @param rows Parallel port count (matches a PE array dimension).
     * @param width_bits Word width of each port.
     * @param division Number of chunks each row is divided into.
     */
    BufferModel(const sfq::CellLibrary &lib,
                std::uint64_t capacity_bytes, int rows, int width_bits,
                int division);

    /** Shift entries per (undivided) row. */
    std::uint64_t rowLengthEntries() const;

    /** Shift entries per chunk. */
    std::uint64_t chunkLengthEntries() const;

    /** Bytes moved into / out of the buffer per shift cycle. */
    std::uint64_t bytesPerCycle() const;

    /**
     * Maximum shift clock, GHz. The feedback re-circulation path
     * forces counter-flow clocking (Section III-B / Fig. 7).
     */
    double frequencyGhz() const;

    /** The limiting timing arc. */
    sfq::GatePair criticalPair() const;

    /** Physical junction count, mux/demux trees included. */
    std::uint64_t jjCount() const;

    /** Junctions in the storage bit-slices only. */
    std::uint64_t storageJjCount() const;

    /** Junctions in the division mux/demux trees and their control. */
    std::uint64_t muxTreeJjCount() const;

    /** Static power, watts (zero for ERSFQ). */
    double staticPower() const;

    /**
     * Dynamic energy of shifting one chunk by one position, joules
     * (every occupied bit cell in the chunk is clocked).
     */
    double chunkShiftEnergy() const;

    /** Layout area, mm^2 (dense memory tiling + logic-density mux). */
    double area() const;

  private:
    const sfq::CellLibrary &_lib;
    std::uint64_t _capacityBytes;
    int _rows;
    int _widthBits;
    int _division;
};

} // namespace estimator
} // namespace supernpu

#endif // SUPERNPU_ESTIMATOR_BUFFER_MODEL_HH
