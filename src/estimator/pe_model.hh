/**
 * @file
 * Microarchitecture model of one processing element: a gate-level-
 * pipelined bit-parallel multiply-accumulate datapath with
 * weight-stationary dataflow (Section III-B), holding its weights in
 * NDRO registers.
 */

#ifndef SUPERNPU_ESTIMATOR_PE_MODEL_HH
#define SUPERNPU_ESTIMATOR_PE_MODEL_HH

#include <cstdint>
#include <vector>

#include "sfq/cells.hh"
#include "sfq/clocking.hh"

namespace supernpu {
namespace estimator {

/** Gate inventory and timing model for one PE. */
class PeModel
{
  public:
    /**
     * @param lib The scaled cell library.
     * @param bit_width Operand width (the paper's designs are 4-bit
     *        prototypes and an 8-bit production PE).
     * @param regs_per_pe Number of NDRO weight registers.
     */
    PeModel(const sfq::CellLibrary &lib, int bit_width, int regs_per_pe);

    /**
     * Pipeline depth: a gate-level-pipelined bit-parallel MAC has
     * 2 * bits - 1 stages (the paper's 8-bit PE has 15).
     */
    int pipelineStages() const;

    /** Maximum clock frequency from the intra-PE gate pairs, GHz. */
    double frequencyGhz() const;

    /** The timing arcs limiting the PE clock. */
    const std::vector<sfq::GatePair> &gatePairs() const { return _pairs; }

    /** Physical junction count of one PE. */
    std::uint64_t jjCount() const;

    /** Static power of one PE, watts (zero for ERSFQ). */
    double staticPower() const;

    /**
     * Average dynamic energy of one MAC operation, joules. This is
     * the calibrated average over CNN operand distributions, not the
     * worst case (Section IV-A1's "access energy" averaging).
     */
    double macEnergy() const;

    /** Layout area of one PE, mm^2. */
    double area() const;

  private:
    const sfq::CellLibrary &_lib;
    int _bits;
    int _regs;
    std::vector<sfq::GatePair> _pairs;
};

} // namespace estimator
} // namespace supernpu

#endif // SUPERNPU_ESTIMATOR_PE_MODEL_HH
