/**
 * @file
 * Inter-chip link model implementation.
 */

#include "link_model.hh"

#include <cmath>
#include <limits>
#include <mutex>
#include <unordered_set>

#include "common/logging.hh"

namespace supernpu {
namespace partition {

namespace {

constexpr std::uint64_t kSaturated =
    std::numeric_limits<std::uint64_t>::max();

std::mutex warned_mutex;
std::unordered_set<std::string> warned_contexts;

} // namespace

std::uint64_t
guardedBytes(std::initializer_list<std::uint64_t> factors,
             const std::string &context)
{
    // The factors come from ints the parser does not bound, so the
    // uint64 product can wrap. Guard each multiply exactly — a
    // chained double guard loses ~11 bits near 2^64 and can miss a
    // product just past the boundary.
    std::uint64_t exact = 1;
    bool wrapped = false;
    for (std::uint64_t f : factors) {
        if (f != 0 && exact > kSaturated / f) {
            wrapped = true;
            break;
        }
        exact *= f;
    }
    if (!wrapped)
        return exact;
    double approx = 1.0;
    for (std::uint64_t f : factors)
        approx *= (double)f;
    bool first = false;
    {
        std::lock_guard<std::mutex> lock(warned_mutex);
        first = warned_contexts.insert(context).second;
    }
    if (first)
        warn(context, " (~", approx,
             " bytes) exceeds the 64-bit transfer size type; "
             "saturating (warned once for this boundary)");
    return kSaturated;
}

std::size_t
saturationWarningCount()
{
    std::lock_guard<std::mutex> lock(warned_mutex);
    return warned_contexts.size();
}

void
LinkConfig::check() const
{
    if (bandwidthGBps <= 0.0)
        fatal("link bandwidth must be positive, got %g GB/s",
              bandwidthGBps);
}

std::uint64_t
activationBytes(const dnn::Layer &boundary, int batch)
{
    SUPERNPU_ASSERT(batch >= 1, "batch must be positive");
    return guardedBytes({(std::uint64_t)boundary.outChannels,
                         (std::uint64_t)boundary.outHeight(),
                         (std::uint64_t)boundary.outWidth(),
                         (std::uint64_t)batch},
                        "layer '" + boundary.name +
                            "' activation transfer at batch " +
                            std::to_string(batch));
}

std::uint64_t
transferCycles(const LinkConfig &link, std::uint64_t bytes,
               double frequency_ghz)
{
    link.check();
    SUPERNPU_ASSERT(frequency_ghz > 0.0, "clock must be positive");
    // cycles = bytes / (bytes/s) * (cycles/s); both in 1e9 units so
    // the 1e9 factors cancel. Values below 2^53 are exact in double;
    // anything larger saturates anyway.
    double wire = std::ceil((double)bytes * frequency_ghz /
                            link.bandwidthGBps);
    double total = (double)link.latencyCycles + wire;
    if (total >= (double)std::numeric_limits<std::uint64_t>::max()) {
        warn("link transfer of %llu bytes saturates the 64-bit cycle "
             "count", (unsigned long long)bytes);
        return std::numeric_limits<std::uint64_t>::max();
    }
    return (std::uint64_t)total;
}

} // namespace partition
} // namespace supernpu
