/**
 * @file
 * Inter-chip link model implementation.
 */

#include "link_model.hh"

#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace supernpu {
namespace partition {

namespace {

constexpr std::uint64_t kSaturated =
    std::numeric_limits<std::uint64_t>::max();

} // namespace

void
LinkConfig::check() const
{
    if (bandwidthGBps <= 0.0)
        fatal("link bandwidth must be positive, got %g GB/s",
              bandwidthGBps);
}

std::uint64_t
activationBytes(const dnn::Layer &boundary, int batch)
{
    SUPERNPU_ASSERT(batch >= 1, "batch must be positive");
    // Compute the true product in floating point first: the layer
    // fields are ints the parser does not bound, so the uint64
    // ofmapBytes() accessor itself can wrap on absurd shapes.
    double true_bytes = (double)boundary.outChannels *
                        (double)boundary.outHeight() *
                        (double)boundary.outWidth() * (double)batch;
    if (true_bytes >= (double)kSaturated) {
        warn("layer '%s' activation transfer (%g bytes at batch %d) "
             "exceeds the 64-bit transfer size type; saturating",
             boundary.name.c_str(), true_bytes, batch);
        return kSaturated;
    }
    return boundary.ofmapBytes() * (std::uint64_t)batch;
}

std::uint64_t
transferCycles(const LinkConfig &link, std::uint64_t bytes,
               double frequency_ghz)
{
    link.check();
    SUPERNPU_ASSERT(frequency_ghz > 0.0, "clock must be positive");
    // cycles = bytes / (bytes/s) * (cycles/s); both in 1e9 units so
    // the 1e9 factors cancel. Values below 2^53 are exact in double;
    // anything larger saturates anyway.
    double wire = std::ceil((double)bytes * frequency_ghz /
                            link.bandwidthGBps);
    double total = (double)link.latencyCycles + wire;
    if (total >= (double)std::numeric_limits<std::uint64_t>::max()) {
        warn("link transfer of %llu bytes saturates the 64-bit cycle "
             "count", (unsigned long long)bytes);
        return std::numeric_limits<std::uint64_t>::max();
    }
    return (std::uint64_t)total;
}

} // namespace partition
} // namespace supernpu
