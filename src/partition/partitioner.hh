/**
 * @file
 * Layer-wise network partitioner for multi-chip pipelines.
 *
 * Splits a dnn::Network into K contiguous stages, one per chip,
 * minimizing the cycle cost of the *bottleneck* stage — in a
 * pipeline the slowest stage sets steady-state throughput, so the
 * optimal split is the classic min-max contiguous partition. Stage
 * cost is real simulated cycles: per-layer totals come from one
 * NpuSimulator::run of the whole network (memoized through
 * npusim::SimCache), the DP picks the cuts over those prefix sums
 * plus the outbound link transfer at each candidate boundary, and
 * every chosen stage is then re-simulated exactly as a standalone
 * sub-network — a stage head refills its ifmap buffer from memory
 * and cannot overlap its first weight fetch with a previous layer,
 * just as a real chip receiving activations over the link would.
 *
 * K=1 equivalence guarantee: a single-stage partition keeps the
 * original network (same name, same layers), so its stage SimResult
 * is the very cache entry — byte-identical ledgers included — that
 * the single-chip NpuSimulator path produces. Asking for more
 * stages than layers falls back to K = layer count with a warn().
 */

#ifndef SUPERNPU_PARTITION_PARTITIONER_HH
#define SUPERNPU_PARTITION_PARTITIONER_HH

#include <memory>
#include <string>
#include <vector>

#include "dnn/layer.hh"
#include "estimator/npu_estimator.hh"
#include "layer_timing_cache.hh"
#include "link_model.hh"
#include "npusim/sim.hh"
#include "npusim/sim_cache.hh"

namespace supernpu {
namespace partition {

/** One contiguous run of layers placed on one chip. */
struct PipelineStage
{
    int firstLayer = 0; ///< inclusive index into the source network
    int lastLayer = 0;  ///< inclusive
    /** The stage as a standalone sub-network (K=1: the original). */
    dnn::Network network;
    /** Cycle simulation of the stage at the plan's batch. */
    std::shared_ptr<const npusim::SimResult> sim;
    std::uint64_t stageCycles = 0; ///< sim->totalCycles
    /** Outbound activation bytes; 0 for the last stage. */
    std::uint64_t linkBytes = 0;
    /** Outbound link occupancy cycles; 0 for the last stage. */
    std::uint64_t linkCycles = 0;

    int layerCount() const { return lastLayer - firstLayer + 1; }

    /**
     * Cycles this stage occupies its chip per batch: compute plus
     * shipping the results forward. The pipeline initiation
     * interval is the max of these across stages.
     */
    std::uint64_t occupancyCycles() const
    {
        return stageCycles + linkCycles;
    }
};

/** A balanced K-stage split of one network on one design point. */
struct PartitionPlan
{
    std::string networkName;
    std::string configName;
    int batch = 1;
    double frequencyGhz = 0.0;
    LinkConfig link;

    std::vector<PipelineStage> stages;

    /** Index of the slowest stage (lowest index on ties). */
    int bottleneckStage = 0;
    /** Occupancy of the bottleneck stage — the initiation interval. */
    std::uint64_t bottleneckCycles = 0;
    /** Σ stage occupancy: fill (and drain) latency of one batch. */
    std::uint64_t fillCycles = 0;

    int stageCount() const { return (int)stages.size(); }

    /** occupancy / bottleneck, in (0, 1]; 1 for the bottleneck. */
    double stageUtilization(int stage) const;

    /** Seconds the first batch takes end-to-end (fill latency). */
    double fillLatencySec() const;

    /** Seconds between steady-state batch completions. */
    double intervalSec() const;
};

/** Bottleneck-minimizing contiguous partitioner for one design. */
class Partitioner
{
  public:
    /**
     * @param cache Simulation memo store; defaults to the process-
     *        wide npusim::SimCache::global().
     */
    explicit Partitioner(const estimator::NpuEstimate &estimate,
                         LinkConfig link = {},
                         npusim::SimCache *cache = nullptr);

    /**
     * Split `network` into `stages` contiguous stages balanced at
     * the given batch. `stages` is clamped to the layer count with
     * a warn() when it exceeds it.
     */
    PartitionPlan partition(const dnn::Network &network, int stages,
                            int batch) const;

    const estimator::NpuEstimate &estimate() const
    {
        return _sim.estimate();
    }
    const LinkConfig &link() const { return _link; }

    /**
     * Layer-timing memo counters for this partitioner. A planner
     * search shares one Partitioner, so these say how often the
     * R×T×K sweep reused a cut-search derivation instead of
     * re-walking a SimResult; snapshotted into shard ledgers.
     */
    LayerTimingCacheStats timingCacheStats() const
    {
        return _timings.stats();
    }

  private:
    /** Cached whole-(sub-)network simulation. */
    std::shared_ptr<const npusim::SimResult>
    simulate(const dnn::Network &network, int batch) const;
    /** Same, with the network hash precomputed by the caller. */
    std::shared_ptr<const npusim::SimResult>
    simulate(std::uint64_t network_hash, const dnn::Network &network,
             int batch) const;
    /** Derive the cut-search inputs (one memoized simulation). */
    LayerTimings buildTimings(const dnn::Network &network,
                              std::uint64_t network_hash,
                              int batch) const;

    npusim::NpuSimulator _sim;
    LinkConfig _link;
    npusim::SimCache *_cache;
    std::uint64_t _configHash = 0;
    /** partition() is const; the memo mutates under its own lock. */
    mutable LayerTimingCache _timings;
};

} // namespace partition
} // namespace supernpu

#endif // SUPERNPU_PARTITION_PARTITIONER_HH
