/**
 * @file
 * Pipeline-parallel cycle simulator implementation.
 */

#include "pipeline_sim.hh"

#include "common/logging.hh"
#include "perf/profile.hh"

namespace supernpu {
namespace partition {

double
PipelineResult::makespanSec() const
{
    return (double)makespanCycles / (plan.frequencyGhz * 1e9);
}

double
PipelineResult::steadyBatchesPerSec() const
{
    return 1.0 / plan.intervalSec();
}

double
PipelineResult::steadyInferencesPerSec() const
{
    return (double)plan.batch * steadyBatchesPerSec();
}

double
PipelineResult::effectiveMacPerSec() const
{
    return (double)macOpsPerBatch * steadyBatchesPerSec();
}

PipelineSimulator::PipelineSimulator(
    const estimator::NpuEstimate &estimate, LinkConfig link,
    npusim::SimCache *cache)
    : _partitioner(estimate, link, cache)
{
}

PipelineResult
PipelineSimulator::run(const dnn::Network &network, int stages,
                       int batch, int batches) const
{
    perf::Scope perf_scope("pipeline.run");
    if (perf::enabled()) {
        static perf::Counter &plans = perf::counter("pipeline.plans");
        plans.add(1);
    }
    return run(_partitioner.partition(network, stages, batch),
               batches);
}

PipelineResult
PipelineSimulator::run(const PartitionPlan &plan, int batches) const
{
    if (batches < 1)
        fatal("pipeline stream needs at least 1 batch, got %d",
              batches);

    PipelineResult result;
    result.plan = plan;
    result.batches = batches;
    result.makespanCycles =
        plan.fillCycles +
        (std::uint64_t)(batches - 1) * plan.bottleneckCycles;
    for (const auto &stage : plan.stages) {
        result.totalStageCycles += stage.stageCycles;
        result.totalLinkCycles += stage.linkCycles;
        result.macOpsPerBatch += stage.sim->macOps;
    }
    return result;
}

PipelineServiceModel::PipelineServiceModel(
    const estimator::NpuEstimate &estimate, dnn::Network network,
    int stages, LinkConfig link, npusim::SimCache *cache)
    : _partitioner(estimate, link, cache), _net(std::move(network)),
      _stages(stages)
{
    SUPERNPU_ASSERT(stages >= 1, "stage count must be positive");
    _net.check();
}

PipelineServiceModel::Timing
PipelineServiceModel::timing(int batch) const
{
    {
        std::lock_guard<std::mutex> guard(_mutex);
        auto it = _memo.find(batch);
        if (it != _memo.end())
            return it->second;
    }

    PartitionPlan plan = _partitioner.partition(_net, _stages, batch);
    const double hz = plan.frequencyGhz * 1e9;
    Timing timing;
    timing.latencySec = plan.fillLatencySec();
    timing.intervalSec = plan.intervalSec();
    double start = 0.0;
    for (const auto &stage : plan.stages) {
        double busy = (double)stage.occupancyCycles() / hz;
        timing.stageStartSec.push_back(start);
        timing.stageBusySec.push_back(busy);
        start += busy;
    }

    std::lock_guard<std::mutex> guard(_mutex);
    return _memo.emplace(batch, std::move(timing)).first->second;
}

} // namespace partition
} // namespace supernpu
