/**
 * @file
 * Bottleneck-minimizing contiguous partitioner implementation.
 */

#include "partitioner.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"

namespace supernpu {
namespace partition {

double
PartitionPlan::stageUtilization(int stage) const
{
    SUPERNPU_ASSERT(stage >= 0 && stage < stageCount(),
                    "stage index out of range");
    SUPERNPU_ASSERT(bottleneckCycles > 0, "plan not built");
    return (double)stages[stage].occupancyCycles() /
           (double)bottleneckCycles;
}

double
PartitionPlan::fillLatencySec() const
{
    return (double)fillCycles / (frequencyGhz * 1e9);
}

double
PartitionPlan::intervalSec() const
{
    return (double)bottleneckCycles / (frequencyGhz * 1e9);
}

Partitioner::Partitioner(const estimator::NpuEstimate &estimate,
                         LinkConfig link, npusim::SimCache *cache)
    : _sim(estimate), _link(link),
      _cache(cache ? cache : &npusim::SimCache::global()),
      _configHash(npusim::hashEstimate(estimate))
{
    _link.check();
}

std::shared_ptr<const npusim::SimResult>
Partitioner::simulate(const dnn::Network &network, int batch) const
{
    return simulate(npusim::hashNetwork(network), network, batch);
}

std::shared_ptr<const npusim::SimResult>
Partitioner::simulate(std::uint64_t network_hash,
                      const dnn::Network &network, int batch) const
{
    npusim::SimKey key;
    key.networkHash = network_hash;
    key.configHash = _configHash;
    key.batch = batch;
    return _cache->getOrRun(key, _sim, network);
}

LayerTimings
Partitioner::buildTimings(const dnn::Network &network,
                          std::uint64_t network_hash, int batch) const
{
    // One whole-network simulation (memoized) supplies the per-layer
    // costs the DP balances. These embed on-chip hand-off and
    // overlap effects of the unsplit schedule, so they are an
    // estimate for *cut selection*; the chosen stages are
    // re-simulated exactly by partition().
    auto full = simulate(network_hash, network, batch);
    const int n = (int)network.layers.size();

    LayerTimings t;
    t.configName = full->configName;
    t.frequencyGhz = full->frequencyGhz;
    t.prefix.assign(n + 1, 0.0);
    for (int l = 0; l < n; ++l) {
        t.prefix[l + 1] =
            t.prefix[l] + (double)full->layers[l].totalCycles();
    }
    // Outbound link occupancy if the boundary sits after layer l.
    t.linkAfter.assign(n, 0.0);
    t.linkCycles.assign(n, 0);
    t.linkBytes.assign(n, 0);
    for (int l = 0; l + 1 < n; ++l) {
        t.linkBytes[l] = activationBytes(network.layers[l], batch);
        t.linkCycles[l] =
            transferCycles(_link, t.linkBytes[l], t.frequencyGhz);
        t.linkAfter[l] = (double)t.linkCycles[l];
    }
    return t;
}

PartitionPlan
Partitioner::partition(const dnn::Network &network, int stages,
                       int batch) const
{
    network.check();
    if (stages < 1)
        fatal("pipeline needs at least 1 stage, got %d", stages);
    if (batch < 1)
        fatal("batch must be at least 1, got %d", batch);

    const int n = (int)network.layers.size();
    if (stages > n) {
        warn("network '%s' has %d layers; clamping %d pipeline "
             "stages to %d", network.name.c_str(), n, stages, n);
        stages = n;
    }
    const int k = stages;

    // The cut-search inputs — per-layer cycle prefix sums and
    // per-boundary link costs — are memoized per (network, batch):
    // a planner search re-enters here for every K of each (R, T)
    // with identical inputs, and only the first K pays for the
    // derivation (and its whole-network simulation lookup).
    const std::uint64_t net_hash = npusim::hashNetwork(network);
    const auto timings = _timings.getOrBuild(
        net_hash, batch,
        [&] { return buildTimings(network, net_hash, batch); });
    const double freq = timings->frequencyGhz;
    const std::vector<double> &prefix = timings->prefix;
    const std::vector<double> &link_after = timings->linkAfter;
    const std::vector<std::uint64_t> &link_cycles =
        timings->linkCycles;
    const std::vector<std::uint64_t> &link_bytes = timings->linkBytes;

    // Min-max contiguous partition DP: dp[s][j] is the best
    // bottleneck occupancy over layers 0..j split into s stages.
    auto seg_cost = [&](int i, int j) {
        return prefix[j + 1] - prefix[i] + link_after[j];
    };
    constexpr double kInf = std::numeric_limits<double>::infinity();
    std::vector<std::vector<double>> dp(
        k + 1, std::vector<double>(n, kInf));
    std::vector<std::vector<int>> cut(
        k + 1, std::vector<int>(n, -1));
    for (int j = 0; j < n; ++j)
        dp[1][j] = seg_cost(0, j);
    for (int s = 2; s <= k; ++s) {
        for (int j = s - 1; j < n; ++j) {
            for (int i = s - 2; i < j; ++i) {
                double cost =
                    std::max(dp[s - 1][i], seg_cost(i + 1, j));
                if (cost < dp[s][j]) {
                    dp[s][j] = cost;
                    cut[s][j] = i;
                }
            }
        }
    }

    // Recover the stage boundaries (last layer of each stage).
    std::vector<int> last(k);
    int j = n - 1;
    for (int s = k; s >= 1; --s) {
        last[s - 1] = j;
        j = (s > 1) ? cut[s][j] : -1;
        SUPERNPU_ASSERT(s == 1 || j >= 0,
                        "partition DP reconstruction broke");
    }

    PartitionPlan plan;
    plan.networkName = network.name;
    plan.configName = timings->configName;
    plan.batch = batch;
    plan.frequencyGhz = freq;
    plan.link = _link;
    plan.stages.reserve(k);

    int first = 0;
    for (int s = 0; s < k; ++s) {
        PipelineStage stage;
        stage.firstLayer = first;
        stage.lastLayer = last[s];
        if (first == 0 && last[s] == n - 1) {
            // K=1: the stage *is* the network — identical name and
            // layers, so the simulation below hits (or seeds) the
            // exact cache entry the single-chip path uses. This is
            // the byte-identity guarantee docs/partitioning.md pins.
            stage.network = network;
        } else {
            stage.network.name = network.name + "[" +
                                 std::to_string(first) + "-" +
                                 std::to_string(last[s]) + "]";
            stage.network.layers.assign(
                network.layers.begin() + first,
                network.layers.begin() + last[s] + 1);
        }
        // K=1 reuses the whole-network hash; sub-ranges hash fresh.
        stage.sim = (first == 0 && last[s] == n - 1)
                        ? simulate(net_hash, stage.network, batch)
                        : simulate(stage.network, batch);
        stage.stageCycles = stage.sim->totalCycles;
        if (last[s] < n - 1) {
            stage.linkBytes = link_bytes[last[s]];
            stage.linkCycles = link_cycles[last[s]];
        }
        plan.stages.push_back(std::move(stage));
        first = last[s] + 1;
    }

    for (int s = 0; s < k; ++s) {
        std::uint64_t occ = plan.stages[s].occupancyCycles();
        plan.fillCycles += occ;
        if (occ > plan.bottleneckCycles) {
            plan.bottleneckCycles = occ;
            plan.bottleneckStage = s;
        }
    }
    SUPERNPU_ASSERT(plan.bottleneckCycles > 0,
                    "degenerate plan: zero bottleneck");
    return plan;
}

} // namespace partition
} // namespace supernpu
