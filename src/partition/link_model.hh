/**
 * @file
 * Inter-chip link model for pipeline-parallel execution.
 *
 * When a network is split across K chips, every stage boundary
 * ships the boundary layer's activation tensor (ofmap) to the next
 * chip over a chip-to-chip link. The link is modeled as a fixed
 * per-transfer latency plus a bandwidth term, mirroring how the
 * paper models off-chip DRAM traffic: the default bandwidth is the
 * paper's 300 GB/s off-chip comparator, overridable per study (a
 * superconducting pulse link and an electrical SerDes bridge sit at
 * very different points, and bench/pipeline_scaling sweeps this).
 *
 * Transfer sizes come straight from dnn::Layer output shapes
 * (1 byte/activation, matching the simulator's DRAM accounting),
 * scaled by the batch streaming through the pipeline. Products that
 * would not fit the 64-bit transfer size type saturate to
 * UINT64_MAX with a warn() instead of silently wrapping — parser
 * inputs are unbounded, and a wrapped byte count would corrupt
 * every downstream cycle figure.
 */

#ifndef SUPERNPU_PARTITION_LINK_MODEL_HH
#define SUPERNPU_PARTITION_LINK_MODEL_HH

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>

#include "dnn/layer.hh"

namespace supernpu {
namespace partition {

/** Chip-to-chip link of a pipeline group. */
struct LinkConfig
{
    /**
     * Sustained link bandwidth, GB/s (1e9 bytes/s). Defaults to the
     * paper's 300 GB/s off-chip bandwidth comparator.
     */
    double bandwidthGBps = 300.0;

    /**
     * Fixed cycles charged per transfer regardless of size —
     * serialization, synchronization, and flight time of the first
     * flit, at the NPU clock.
     */
    std::uint64_t latencyCycles = 64;

    /** Fatal on a non-positive bandwidth. */
    void check() const;
};

/**
 * Guarded transfer-size multiply shared by every byte-count
 * computation that multiplies unbounded parser shapes: the product
 * of `factors` is evaluated in double to detect 64-bit wrap before
 * the exact uint64 product is formed. When it fits, the exact
 * product is returned; when it does not, the result saturates to
 * UINT64_MAX and a warn() is emitted — once per distinct `context`
 * per process, not per call, because sweep loops re-evaluate the
 * same boundary thousands of times.
 */
std::uint64_t guardedBytes(std::initializer_list<std::uint64_t> factors,
                           const std::string &context);

/**
 * Count of distinct saturation contexts warned so far — the
 * observable contract of guardedBytes's once-per-boundary dedup,
 * pinned by tests.
 */
std::size_t saturationWarningCount();

/**
 * Bytes shipped across a stage boundary after `boundary` at the
 * given batch: ofmap activations, 1 byte each, for every image in
 * the batch. Saturates to UINT64_MAX with a warn() when the true
 * product exceeds the 64-bit transfer size type.
 */
std::uint64_t activationBytes(const dnn::Layer &boundary, int batch);

/**
 * Cycles a transfer of `bytes` occupies the link at the given NPU
 * clock: fixed latency plus the bandwidth term, rounded up.
 * Saturates to UINT64_MAX rather than overflowing.
 */
std::uint64_t transferCycles(const LinkConfig &link, std::uint64_t bytes,
                             double frequency_ghz);

} // namespace partition
} // namespace supernpu

#endif // SUPERNPU_PARTITION_LINK_MODEL_HH
