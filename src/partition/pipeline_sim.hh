/**
 * @file
 * Pipeline-parallel cycle simulator over a partitioned network.
 *
 * Composes the per-stage SimResults of a PartitionPlan with the
 * inter-chip link transfers into whole-pipeline timing for a stream
 * of batches. Stage i occupies its chip for stageCycles + outbound
 * linkCycles per batch; the pipeline initiation interval is the
 * bottleneck stage's occupancy, so a stream of M batches finishes
 * in fill + (M-1)·bottleneck cycles — the first batch rides every
 * stage end to end (fill latency), every later one emerges a
 * bottleneck interval after its predecessor. Per-stage utilization
 * is occupancy over the bottleneck: 1.0 at the bottleneck stage,
 * lower everywhere the partitioner could not balance exactly.
 *
 * The model is analytic over simulated per-stage cycles: it charges
 * no pipeline-register or control overhead beyond the link model,
 * and stages never block each other (infinite inter-stage buffering
 * of one batch, which back-to-back launching never exceeds).
 * obs::auditPipeline() checks its conservation laws, and K=1
 * reduces exactly to the single-chip NpuSimulator run.
 */

#ifndef SUPERNPU_PARTITION_PIPELINE_SIM_HH
#define SUPERNPU_PARTITION_PIPELINE_SIM_HH

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "partitioner.hh"

namespace supernpu {
namespace partition {

/** Timing of one batch stream through one pipeline plan. */
struct PipelineResult
{
    PartitionPlan plan;
    /** Batches in the simulated stream. */
    int batches = 1;
    /** fill + (batches-1)·bottleneck. */
    std::uint64_t makespanCycles = 0;
    /** Σ stage compute cycles of one batch (no link). */
    std::uint64_t totalStageCycles = 0;
    /** Σ link transfer cycles of one batch. */
    std::uint64_t totalLinkCycles = 0;
    /** MAC operations of one batch (summed over stages). */
    std::uint64_t macOpsPerBatch = 0;

    double makespanSec() const;
    /** Steady-state batch completions per second (1/interval). */
    double steadyBatchesPerSec() const;
    /** Steady-state inferences per second. */
    double steadyInferencesPerSec() const;
    /** Steady-state effective MAC throughput of the group. */
    double effectiveMacPerSec() const;
};

/** Analytic pipeline composition over a Partitioner's plans. */
class PipelineSimulator
{
  public:
    /** @param cache Defaults to npusim::SimCache::global(). */
    explicit PipelineSimulator(const estimator::NpuEstimate &estimate,
                               LinkConfig link = {},
                               npusim::SimCache *cache = nullptr);

    /** Partition and stream `batches` batches through the result. */
    PipelineResult run(const dnn::Network &network, int stages,
                       int batch, int batches = 1) const;

    /** Stream `batches` batches through an existing plan. */
    PipelineResult run(const PartitionPlan &plan,
                       int batches = 1) const;

    const Partitioner &partitioner() const { return _partitioner; }

  private:
    Partitioner _partitioner;
};

/**
 * Memoized per-batch pipeline timing of one network on one K-chip
 * group — the pipelined counterpart of serving::BatchServiceModel.
 * Thread-safe; the partition is recomputed per distinct batch size
 * (the balance point moves with batch) through the shared SimCache.
 */
class PipelineServiceModel
{
  public:
    PipelineServiceModel(const estimator::NpuEstimate &estimate,
                         dnn::Network network, int stages,
                         LinkConfig link = {},
                         npusim::SimCache *cache = nullptr);

    /** Per-batch timing, all in seconds relative to batch launch. */
    struct Timing
    {
        /** Launch-to-last-output latency (fill of one batch). */
        double latencySec = 0.0;
        /** Initiation interval: stage 0 frees this long after launch. */
        double intervalSec = 0.0;
        /** Stage start offsets from batch launch. */
        std::vector<double> stageStartSec;
        /** Stage busy time (occupancy, link included). */
        std::vector<double> stageBusySec;
    };

    /** Timing of one batch of the given size (memoized). */
    Timing timing(int batch) const;

    int stages() const { return _stages; }
    const dnn::Network &network() const { return _net; }
    const Partitioner &partitioner() const { return _partitioner; }

  private:
    Partitioner _partitioner;
    dnn::Network _net;
    int _stages;

    mutable std::mutex _mutex;
    mutable std::map<int, Timing> _memo;
};

} // namespace partition
} // namespace supernpu

#endif // SUPERNPU_PARTITION_PIPELINE_SIM_HH
