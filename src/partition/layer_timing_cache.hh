/**
 * @file
 * Memo of the per-layer timing derivation the partitioner's cut
 * search consumes.
 *
 * Partitioner::partition derives the same artifacts for every K of a
 * planner search: the per-layer cycle prefix sums of one
 * whole-network simulation plus the outbound link bytes/cycles at
 * every candidate boundary. Only (network, batch) determine them —
 * the design point and link fabric are fixed per Partitioner — so a
 * DP×TP×PP sweep that evaluates K = 1..layers for each (R, T)
 * re-derives identical vectors K times. This cache keys the finished
 * derivation on (network hash, batch) and shares it across one
 * search, so only the first K of each (R, T) pays for the
 * whole-network SimResult walk and the guarded link-cost arithmetic.
 *
 * Concurrency & accounting: the planner sweeps factorizations on a
 * ThreadPool, so builds are single-flight — the first arrival on a
 * key builds, later arrivals block and share, counted as hits (what
 * the serial run would count after the leader's insert). Hit/miss
 * totals are therefore identical at any job count, which the
 * byte-compared shard ledgers rely on. Entries are never evicted:
 * the cache lives inside one Partitioner and holds one small vector
 * set per (sub-network, batch) a search touches.
 */

#ifndef SUPERNPU_PARTITION_LAYER_TIMING_CACHE_HH
#define SUPERNPU_PARTITION_LAYER_TIMING_CACHE_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace supernpu {
namespace partition {

/** The cut-search inputs derived from one (network, batch) point. */
struct LayerTimings
{
    std::string configName;
    double frequencyGhz = 0.0;
    /** prefix[l] = Σ simulated cycles of layers [0, l); size n+1. */
    std::vector<double> prefix;
    /** Outbound link occupancy if the boundary sits after layer l;
     *  size n, 0 after the last layer (nothing to ship). */
    std::vector<double> linkAfter;
    std::vector<std::uint64_t> linkCycles; ///< size n
    std::vector<std::uint64_t> linkBytes;  ///< size n

    int layerCount() const { return (int)prefix.size() - 1; }
};

/** Monotonically-counted cache statistics. */
struct LayerTimingCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
};

/** Single-flight memo of LayerTimings keyed (network hash, batch). */
class LayerTimingCache
{
  public:
    /**
     * Return the timings for (network_hash, batch), invoking `build`
     * on this thread when absent. `build` must be deterministic for
     * the key and must not re-enter the cache for the same key; it
     * may simulate through npusim::SimCache (no lock is held while
     * it runs).
     */
    std::shared_ptr<const LayerTimings>
    getOrBuild(std::uint64_t network_hash, int batch,
               const std::function<LayerTimings()> &build);

    /** Entries currently resident. */
    std::size_t size() const;

    /** Hit/miss counters since construction or clear(). */
    LayerTimingCacheStats stats() const;

    /** Drop every entry and reset the counters. */
    void clear();

  private:
    struct Key
    {
        std::uint64_t networkHash = 0;
        int batch = 0;
        bool operator==(const Key &other) const
        {
            return networkHash == other.networkHash &&
                   batch == other.batch;
        }
    };
    struct KeyHash
    {
        std::size_t operator()(const Key &key) const;
    };
    /** One in-progress build other threads can wait on. */
    struct Flight
    {
        std::shared_ptr<const LayerTimings> result;
        std::exception_ptr error;
        bool done = false; ///< under _mutex
    };

    void countHitLocked();
    void countMissLocked();

    mutable std::mutex _mutex;
    std::condition_variable _flightDone; ///< any flight completed
    std::unordered_map<Key, std::shared_ptr<const LayerTimings>,
                       KeyHash>
        _entries;
    std::unordered_map<Key, std::shared_ptr<Flight>, KeyHash>
        _inflight;
    LayerTimingCacheStats _stats;
};

} // namespace partition
} // namespace supernpu

#endif // SUPERNPU_PARTITION_LAYER_TIMING_CACHE_HH
