/**
 * @file
 * Layer-timing memo implementation.
 */

#include "layer_timing_cache.hh"

#include "perf/profile.hh"

namespace supernpu {
namespace partition {

namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

} // namespace

std::size_t
LayerTimingCache::KeyHash::operator()(const Key &key) const
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (int i = 0; i < 8; ++i) {
        hash ^= (key.networkHash >> (8 * i)) & 0xff;
        hash *= kFnvPrime;
    }
    hash ^= (std::uint64_t)(std::uint32_t)key.batch;
    hash *= kFnvPrime;
    return (std::size_t)hash;
}

void
LayerTimingCache::countHitLocked()
{
    ++_stats.hits;
    if (perf::enabled()) {
        static perf::Counter &hits =
            perf::counter("partition.timingCache.hits");
        hits.add(1);
    }
}

void
LayerTimingCache::countMissLocked()
{
    ++_stats.misses;
    if (perf::enabled()) {
        static perf::Counter &misses =
            perf::counter("partition.timingCache.misses");
        misses.add(1);
    }
}

std::shared_ptr<const LayerTimings>
LayerTimingCache::getOrBuild(
    std::uint64_t network_hash, int batch,
    const std::function<LayerTimings()> &build)
{
    const Key key{network_hash, batch};
    std::shared_ptr<Flight> flight;
    {
        std::unique_lock<std::mutex> lock(_mutex);
        const auto it = _entries.find(key);
        if (it != _entries.end()) {
            countHitLocked();
            return it->second;
        }
        const auto in = _inflight.find(key);
        if (in != _inflight.end()) {
            // Joining a running build counts as a hit — the serial
            // run would find the leader's entry resident here — so
            // totals match ThreadPool(1) at any job count.
            countHitLocked();
            flight = in->second;
            _flightDone.wait(lock, [&] { return flight->done; });
            if (flight->error)
                std::rethrow_exception(flight->error);
            return flight->result;
        }
        countMissLocked();
        flight = std::make_shared<Flight>();
        _inflight.emplace(key, flight);
    }
    // Leader: build (which may simulate) outside the lock.
    std::shared_ptr<const LayerTimings> built;
    try {
        built = std::make_shared<const LayerTimings>(build());
        std::lock_guard<std::mutex> lock(_mutex);
        _entries.emplace(key, built);
        flight->result = built;
        flight->done = true;
        _inflight.erase(key);
    } catch (...) {
        {
            std::lock_guard<std::mutex> lock(_mutex);
            flight->error = std::current_exception();
            flight->done = true;
            _inflight.erase(key);
        }
        _flightDone.notify_all();
        throw;
    }
    _flightDone.notify_all();
    return built;
}

std::size_t
LayerTimingCache::size() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _entries.size();
}

LayerTimingCacheStats
LayerTimingCache::stats() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _stats;
}

void
LayerTimingCache::clear()
{
    std::lock_guard<std::mutex> lock(_mutex);
    _entries.clear();
    _stats = LayerTimingCacheStats{};
}

} // namespace partition
} // namespace supernpu
