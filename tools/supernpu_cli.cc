/**
 * @file
 * supernpu — command-line front end over the library.
 *
 *   supernpu workloads
 *       List the built-in CNN workloads.
 *   supernpu estimate <config> [options]
 *       Frequency / power / area of an architecture.
 *   supernpu simulate <workload> <config> [options]
 *       Cycle-level performance + power of a workload.
 *   supernpu batch <workload> <config> [options]
 *       The Table II maximum on-chip batch.
 *   supernpu serve <workload> <config> [options]
 *       Discrete-event serving simulation: request load, dynamic
 *       batching, multi-chip dispatch, tail latency.
 *   supernpu faults <workload> <config> [options]
 *       Fault-injection study: degraded-geometry cycle costs,
 *       functional error propagation, and a serving run under a
 *       seeded SFQ fault schedule with a recovery policy.
 *   supernpu report <workload> <config> [options]
 *       Audited run ledger as JSON on stdout: the cycle-level run's
 *       counters with conservation invariants enforced (exit 1 on
 *       any violation).
 *   supernpu partition <workload> <config> [options]
 *       Multi-chip pipeline partition: balanced stage table, link
 *       transfer costs, steady-state throughput, optional K-sweep.
 *   supernpu shard <workload> <config> [options]
 *       Hybrid DP×TP×PP parallelism: evaluate a fixed
 *       --dp/--tp/--stages factorization, or search every
 *       factorization of a --chips budget; --sweep adds a
 *       budget-scaling table.
 *   supernpu check [options]
 *       Differential & metamorphic fuzz harness (src/check): seeded
 *       random scenarios cross-checked by the oracle catalog, with
 *       failing cases shrunk to minimal JSON repros; --replay runs
 *       one committed repro, --cook tamper self-tests the oracles.
 *   supernpu validate
 *       The Fig. 13 model-validation table.
 *   supernpu explore [options]
 *       Parallel design-space sweep (--jobs N workers, default all
 *       hardware threads; any N prints the identical leaderboard).
 *   supernpu bench [smoke|full] [options]
 *       Unified performance harness (src/perf/bench_runner.hh): the
 *       curated suite with warmup + repetition + median-of-N timing,
 *       written as BENCH_<suite>.json, optionally gated against a
 *       saved baseline.
 *
 * Every subcommand accepts --help (usage on stdout, exit 0) and
 * rejects unknown options and stray positional arguments with a
 * usage line on stderr.
 *
 * Configs: baseline | bufferopt | resourceopt | supernpu, or start
 * from one and override with options:
 *   --tech rsfq|ersfq       bias technology (default rsfq)
 *   --feature <um>          process feature size (default 1.0)
 *   --width <n>             PE array width
 *   --height <n>            PE array height
 *   --regs <n>              weight registers per PE
 *   --division <n>          output-buffer division degree
 *   --ifmap-mb <n>          ifmap buffer capacity
 *   --output-mb <n>         output buffer capacity
 *   --bandwidth-gbps <n>    DRAM bandwidth
 *   --batch <n>             force a batch size (simulate, serve)
 *   --jobs <n>              worker threads (explore, shard, check,
 *                           bench); results are identical at any N
 *
 * Serving options (serve):
 *   --rps <n>               offered load, requests/s (default 1000)
 *   --chips <n>             NPU dies behind the dispatcher
 *   --policy dynamic|fixed  batching policy
 *   --dispatch rr|jsq       request placement across chips
 *   --arrival poisson|bursty|closed   traffic shape
 *   --timeout-us <n>        dynamic-batching timeout
 *   --requests <n>          requests to simulate
 *   --clients <n>           closed-loop client population
 *   --seed <n>              RNG seed
 *
 * Fault options (faults):
 *   --drop-rate <n>         pulse drops per chip-second
 *   --trap-rate <n>         flux traps per chip-second
 *   --skew-rate <n>         clock-skew windows per chip-second
 *   --glitch-rate <n>       link glitches per chip-second
 *   --fault-burst           bursty (on/off) transient arrivals
 *   --fault-seed <n>        fault-schedule seed
 *   --recovery none|retry|degraded   recovery policy
 *   --detect-us <n>         fault detection latency
 *   --max-retries <n>       retry budget per request
 *   --backoff-us <n>        first retry backoff
 *   --checkpoint            checkpoint/restart killed batches
 *   --ber <n>               bit flips per million MACs (error study)
 *
 * Partition options (partition; --stages also pipelines serve):
 *   --stages <k>            chips in the pipeline group
 *   --sweep                 also print a K-sweep table
 *   --stream <n>            batches streamed through the pipeline
 *   --link-gbps <n>         inter-chip link bandwidth (default 300)
 *   --link-latency <n>      fixed link latency in cycles
 *
 * Shard options (shard; --dp also replicates serve):
 *   --dp <r>                data-parallel replicas
 *   --tp <t>                tensor-parallel shards per replica
 *   --stages <k>            pipeline stages per shard
 *   --chips <n>             planner chip budget (default 8)
 *   --objective throughput|latency   planner ranking
 *   --sweep                 also print a budget-scaling table
 *
 * Bench options (bench; --jobs defaults to 1 here, the byte-stable
 * reference point):
 *   --reps <n>              timed repetitions per case (default 3)
 *   --warmups <n>           untimed warmup runs per case (default 1)
 *   --case <name>           run only this case (repeatable)
 *   --out <path>            output path (default BENCH_<suite>.json)
 *   --no-timing             omit wall-clock fields: the output is a
 *                           pure function of (code, suite, jobs) and
 *                           byte-identical across reruns
 *   --baseline <path>       compare against a saved BENCH_*.json;
 *                           exit 1 on regression
 *   --threshold <pct>       allowed slowdown vs a timed baseline
 *                           (default 10)
 *   --inject-slowdown <pct> test hook: report throughput as if this
 *                           much slower (proves the gate fails)
 *
 * --profile (any subcommand) turns the src/perf profiler on: bench
 * embeds per-case phase/counter snapshots, and every --ledger file
 * gains a "perf" section and "perfPhases" table (wall-clock — strip
 * them before byte-comparing ledgers).
 */

#include <cctype>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <fstream>
#include <sstream>

#include "check/runner.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/table.hh"
#include "common/units.hh"
#include "dnn/networks.hh"
#include "dnn/parser.hh"
#include "estimator/design_rules.hh"
#include "estimator/npu_estimator.hh"
#include "estimator/validation.hh"
#include "npusim/batch.hh"
#include "npusim/explorer.hh"
#include "npusim/sim.hh"
#include "obs/audit.hh"
#include "obs/ledger.hh"
#include "partition/pipeline_sim.hh"
#include "perf/bench_runner.hh"
#include "perf/profile.hh"
#include "power/power.hh"
#include "reliability/error_propagation.hh"
#include "reliability/fault_model.hh"
#include "reliability/injector.hh"
#include "serving/simulator.hh"
#include "sharding/planner.hh"

using namespace supernpu;

namespace {

/** Parsed command-line state. */
struct Options
{
    sfq::Technology technology = sfq::Technology::RSFQ;
    double featureUm = 1.0;
    int forcedBatch = 0;
    int jobs = 0; ///< explore parallelism; 0 = hardware concurrency
    estimator::NpuConfig config = estimator::NpuConfig::superNpu();
    bool configChosen = false;
    std::string netFile;   ///< --netfile path, when given
    std::string traceFile; ///< --trace path for the mapping CSV
    std::string ledgerFile; ///< --ledger path (.json or .csv)
    bool jsonOut = false;  ///< --json: machine output on stdout
    serving::ServingConfig serve; ///< serve/faults-subcommand state
    reliability::FaultScheduleConfig faults; ///< fault rates + seed
    bool faultRateGiven = false; ///< any --*-rate flag seen
    double berFlipsPerMillion = 25.0; ///< --ber error-study rate
    int stages = 0;        ///< --stages pipeline chips; 0 = unset
    bool sweep = false;    ///< --sweep: partition K-sweep table
    int streamBatches = 0; ///< --stream batches; 0 = default
    partition::LinkConfig link; ///< --link-gbps / --link-latency
    int dataParallel = 0;  ///< --dp replica count; 0 = unset
    int tensorShards = 0;  ///< --tp shard count; 0 = unset
    int chipBudget = 0;    ///< --chips for shard planning; 0 = unset
    /** --objective for shard planning. */
    sharding::PlanObjective objective =
        sharding::PlanObjective::Throughput;

    // --- check-subcommand state (src/check) -------------------------
    std::uint64_t checkCases = 100; ///< --cases generated scenarios
    std::string checkReplay;    ///< --replay repro path
    bool checkNoShrink = false; ///< --no-shrink raw repros
    std::string checkReproDir = "."; ///< --repro-dir failure output
    check::Cook checkCook = check::Cook::None; ///< --cook
    std::string checkOracle;    ///< --oracle restriction
    std::string checkEmitCorpus; ///< --emit-corpus directory

    bool profile = false;  ///< --profile: src/perf instrumentation on
    int benchReps = 3;     ///< --reps timed repetitions
    int benchWarmups = 1;  ///< --warmups untimed runs
    bool benchNoTiming = false;   ///< --no-timing deterministic form
    std::string benchOut;         ///< --out path; "" = default name
    std::string benchBaseline;    ///< --baseline comparison file
    double benchThreshold = 10.0; ///< --threshold allowed slowdown %
    double benchInjectSlowdown = 0.0; ///< --inject-slowdown test hook
    std::vector<std::string> benchOnly; ///< --case selections
};

std::string
lowered(const std::string &text)
{
    std::string out;
    for (char c : text)
        out += (char)std::tolower((unsigned char)c);
    return out;
}

dnn::Network
findWorkload(const std::string &name)
{
    const std::string want = lowered(name);
    for (const auto &net : dnn::evaluationWorkloads()) {
        if (lowered(net.name) == want)
            return net;
    }
    if (want == "resnet18")
        return dnn::makeResNet18();
    if (want == "vgg19")
        return dnn::makeVgg19();
    fatal("unknown workload '", name, "'; run 'supernpu workloads'");
}

bool
tryConfig(const std::string &name, estimator::NpuConfig &out)
{
    const std::string want = lowered(name);
    if (want == "baseline") {
        out = estimator::NpuConfig::baseline();
    } else if (want == "bufferopt") {
        out = estimator::NpuConfig::bufferOpt();
    } else if (want == "resourceopt") {
        out = estimator::NpuConfig::resourceOpt();
    } else if (want == "supernpu") {
        out = estimator::NpuConfig::superNpu();
    } else {
        return false;
    }
    return true;
}

/** Consume "--flag value" pairs; returns leftover positionals. */
std::vector<std::string>
parseOptions(int argc, char **argv, int first, Options &options)
{
    std::vector<std::string> positional;
    for (int i = first; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("option '", arg, "' needs a value");
            return argv[++i];
        };
        if (arg == "--tech") {
            const std::string value = lowered(next());
            if (value == "rsfq") {
                options.technology = sfq::Technology::RSFQ;
            } else if (value == "ersfq") {
                options.technology = sfq::Technology::ERSFQ;
            } else {
                fatal("unknown technology '", value, "'");
            }
        } else if (arg == "--feature") {
            options.featureUm = std::stod(next());
        } else if (arg == "--width") {
            options.config.peWidth = std::stoi(next());
        } else if (arg == "--height") {
            options.config.peHeight = std::stoi(next());
        } else if (arg == "--regs") {
            options.config.regsPerPe = std::stoi(next());
        } else if (arg == "--division") {
            options.config.outputDivision = std::stoi(next());
        } else if (arg == "--ifmap-mb") {
            options.config.ifmapBufferBytes =
                (std::uint64_t)std::stoul(next()) * units::MiB;
        } else if (arg == "--output-mb") {
            options.config.integratedOutputBuffer = true;
            options.config.outputBufferBytes =
                (std::uint64_t)std::stoul(next()) * units::MiB;
            options.config.psumBufferBytes = 0;
            options.config.ofmapBufferBytes = 0;
        } else if (arg == "--bandwidth-gbps") {
            options.config.memoryBandwidth = std::stod(next()) * 1e9;
        } else if (arg == "--batch") {
            options.forcedBatch = std::stoi(next());
        } else if (arg == "--jobs") {
            options.jobs = std::stoi(next());
        } else if (arg == "--netfile") {
            options.netFile = next();
        } else if (arg == "--trace") {
            options.traceFile = next();
        } else if (arg == "--ledger") {
            options.ledgerFile = next();
        } else if (arg == "--json") {
            options.jsonOut = true;
        } else if (arg == "--rps") {
            options.serve.arrival.ratePerSec = std::stod(next());
        } else if (arg == "--chips") {
            options.serve.chips = std::stoi(next());
            options.chipBudget = options.serve.chips;
        } else if (arg == "--policy") {
            const std::string value = lowered(next());
            if (value == "dynamic") {
                options.serve.batching.policy =
                    serving::BatchPolicy::DynamicTimeout;
            } else if (value == "fixed") {
                options.serve.batching.policy =
                    serving::BatchPolicy::FixedBatch;
            } else {
                fatal("unknown batching policy '", value, "'");
            }
        } else if (arg == "--dispatch") {
            const std::string value = lowered(next());
            if (value == "rr") {
                options.serve.dispatch =
                    serving::DispatchPolicy::RoundRobin;
            } else if (value == "jsq") {
                options.serve.dispatch =
                    serving::DispatchPolicy::JoinShortestQueue;
            } else {
                fatal("unknown dispatch policy '", value, "'");
            }
        } else if (arg == "--arrival") {
            const std::string value = lowered(next());
            if (value == "poisson") {
                options.serve.arrival.kind =
                    serving::ArrivalKind::OpenPoisson;
            } else if (value == "bursty") {
                options.serve.arrival.kind =
                    serving::ArrivalKind::Bursty;
            } else if (value == "closed") {
                options.serve.arrival.kind =
                    serving::ArrivalKind::ClosedLoop;
            } else {
                fatal("unknown arrival kind '", value, "'");
            }
        } else if (arg == "--timeout-us") {
            options.serve.batching.timeoutSec =
                std::stod(next()) * 1e-6;
        } else if (arg == "--requests") {
            options.serve.requests =
                (std::uint64_t)std::stoull(next());
        } else if (arg == "--clients") {
            options.serve.arrival.clients = std::stoi(next());
        } else if (arg == "--seed") {
            options.serve.seed = (std::uint64_t)std::stoull(next());
        } else if (arg == "--drop-rate") {
            options.faults.pulseDropRatePerSec = std::stod(next());
            options.faultRateGiven = true;
        } else if (arg == "--trap-rate") {
            options.faults.fluxTrapRatePerSec = std::stod(next());
            options.faultRateGiven = true;
        } else if (arg == "--skew-rate") {
            options.faults.clockSkewRatePerSec = std::stod(next());
            options.faultRateGiven = true;
        } else if (arg == "--glitch-rate") {
            options.faults.linkGlitchRatePerSec = std::stod(next());
            options.faultRateGiven = true;
        } else if (arg == "--fault-burst") {
            options.faults.arrival = reliability::FaultArrival::Burst;
        } else if (arg == "--fault-seed") {
            options.faults.seed = (std::uint64_t)std::stoull(next());
        } else if (arg == "--recovery") {
            const std::string value = lowered(next());
            if (value == "none") {
                options.serve.resilience.recovery =
                    serving::RecoveryPolicy::None;
            } else if (value == "retry") {
                options.serve.resilience.recovery =
                    serving::RecoveryPolicy::RetryBackoff;
            } else if (value == "degraded") {
                options.serve.resilience.recovery =
                    serving::RecoveryPolicy::DegradedDispatch;
            } else {
                fatal("unknown recovery policy '", value, "'");
            }
        } else if (arg == "--detect-us") {
            options.serve.resilience.detectLatencySec =
                std::stod(next()) * 1e-6;
        } else if (arg == "--max-retries") {
            options.serve.resilience.maxRetries = std::stoi(next());
        } else if (arg == "--backoff-us") {
            options.serve.resilience.backoffBaseSec =
                std::stod(next()) * 1e-6;
        } else if (arg == "--checkpoint") {
            options.serve.resilience.checkpointRestart = true;
        } else if (arg == "--ber") {
            options.berFlipsPerMillion = std::stod(next());
        } else if (arg == "--stages") {
            options.stages = std::stoi(next());
        } else if (arg == "--dp") {
            options.dataParallel = std::stoi(next());
        } else if (arg == "--tp") {
            options.tensorShards = std::stoi(next());
        } else if (arg == "--objective") {
            const std::string value = lowered(next());
            if (value == "throughput") {
                options.objective =
                    sharding::PlanObjective::Throughput;
            } else if (value == "latency") {
                options.objective = sharding::PlanObjective::Latency;
            } else {
                fatal("unknown plan objective '", value, "'");
            }
        } else if (arg == "--sweep") {
            options.sweep = true;
        } else if (arg == "--stream") {
            options.streamBatches = std::stoi(next());
        } else if (arg == "--link-gbps") {
            options.link.bandwidthGBps = std::stod(next());
        } else if (arg == "--link-latency") {
            options.link.latencyCycles =
                (std::uint64_t)std::stoull(next());
        } else if (arg == "--cases") {
            options.checkCases = (std::uint64_t)std::stoull(next());
        } else if (arg == "--replay") {
            options.checkReplay = next();
        } else if (arg == "--no-shrink") {
            options.checkNoShrink = true;
        } else if (arg == "--repro-dir") {
            options.checkReproDir = next();
        } else if (arg == "--cook") {
            const std::string value = lowered(next());
            if (value == "none") {
                options.checkCook = check::Cook::None;
            } else if (value == "tamper") {
                options.checkCook = check::Cook::Tamper;
            } else {
                fatal("unknown cook '", value, "'");
            }
        } else if (arg == "--oracle") {
            options.checkOracle = next();
        } else if (arg == "--emit-corpus") {
            options.checkEmitCorpus = next();
        } else if (arg == "--profile") {
            options.profile = true;
        } else if (arg == "--reps") {
            options.benchReps = std::stoi(next());
        } else if (arg == "--warmups") {
            options.benchWarmups = std::stoi(next());
        } else if (arg == "--no-timing") {
            options.benchNoTiming = true;
        } else if (arg == "--out") {
            options.benchOut = next();
        } else if (arg == "--baseline") {
            options.benchBaseline = next();
        } else if (arg == "--threshold") {
            options.benchThreshold = std::stod(next());
        } else if (arg == "--inject-slowdown") {
            options.benchInjectSlowdown = std::stod(next());
        } else if (arg == "--case") {
            options.benchOnly.push_back(next());
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "usage: supernpu <command>"
                         " [options]; run 'supernpu --help'\n");
            fatal("unknown option '", arg, "'");
        } else if (!options.configChosen &&
                   tryConfig(arg, options.config)) {
            options.configChosen = true;
        } else {
            positional.push_back(arg);
        }
    }
    return positional;
}

sfq::DeviceConfig
deviceFor(const Options &options)
{
    sfq::DeviceConfig device;
    device.technology = options.technology;
    device.featureSizeUm = options.featureUm;
    return device;
}

/** Write the run ledger when --ledger was given; fatal on failure. */
void
emitLedger(const Options &options, const obs::RunLedger &ledger)
{
    if (options.ledgerFile.empty())
        return;
    if (perf::enabled()) {
        // Profiling on (--profile or SUPERNPU_PROFILE=1): fold the
        // profiler snapshot in (and check its roll-up invariants)
        // without disturbing the caller's ledger — the perf section
        // is wall-clock and must stay opt-in so default ledgers
        // remain byte-comparable.
        const perf::Report snapshot = perf::report();
        obs::enforce(obs::auditPerf(snapshot), "perf roll-up");
        obs::RunLedger with_perf = ledger;
        obs::addPerfReport(with_perf, snapshot);
        if (!with_perf.write(options.ledgerFile))
            fatal("cannot write ledger '", options.ledgerFile, "'");
    } else if (!ledger.write(options.ledgerFile)) {
        fatal("cannot write ledger '", options.ledgerFile, "'");
    }
    std::printf("wrote ledger to %s\n", options.ledgerFile.c_str());
}

/** Enforce an audit when SUPERNPU_AUDIT (env or build) enables it. */
void
maybeAudit(const obs::AuditReport &audit, const std::string &context)
{
    if (obs::auditEnabled())
        obs::enforce(audit, context);
}

int
cmdWorkloads()
{
    TextTable table("built-in workloads");
    table.row().cell("name").cell("layers").cell("GMAC/inf").cell(
        "weights (MiB)");
    auto add = [&](const dnn::Network &net) {
        table.row()
            .cell(lowered(net.name))
            .cell((long long)net.layers.size())
            .cell((double)net.totalMacs() / 1e9, 2)
            .cell((double)net.totalWeightBytes() / (double)units::MiB,
                  1);
    };
    for (const auto &net : dnn::evaluationWorkloads())
        add(net);
    add(dnn::makeResNet18());
    add(dnn::makeVgg19());
    table.print();
    return 0;
}

int
cmdEstimate(const Options &options)
{
    const sfq::DeviceConfig device = deviceFor(options);
    sfq::CellLibrary library(device);
    estimator::NpuEstimator est(library);
    const auto estimate = est.estimate(options.config);

    std::printf("%s @ %s %.2f um\n", options.config.name.c_str(),
                sfq::technologyName(device.technology),
                device.featureSizeUm);
    TextTable table;
    table.row().cell("unit").cell("freq (GHz)").cell("static (W)").cell(
        "area (mm2)").cell("MJJ");
    for (const auto &unit : estimate.units) {
        table.row()
            .cell(unit.name)
            .cell(unit.frequencyGhz, 1)
            .cell(unit.staticPowerW, 2)
            .cell(unit.areaMm2, 1)
            .cell((double)unit.jjCount / 1e6, 1);
    }
    table.row()
        .cell("TOTAL")
        .cell(estimate.frequencyGhz, 1)
        .cell(estimate.staticPowerW, 2)
        .cell(estimate.areaMm2, 1)
        .cell((double)estimate.jjCount / 1e6, 1);
    table.print();
    std::printf("\nlimited by %s; peak %.0f TMAC/s; %.0f mm2 at 28 nm"
                " equivalent\n",
                estimate.limitingUnit.c_str(),
                estimate.peakMacPerSec / 1e12,
                estimate.areaMm2At(28.0));

    const auto findings =
        estimator::checkDesignRules(options.config, estimate);
    for (const auto &finding : findings) {
        std::printf("%s [%s]: %s\n",
                    finding.severity ==
                            estimator::RuleSeverity::Error
                        ? "ERROR"
                        : "warning",
                    finding.rule.c_str(), finding.message.c_str());
    }
    return estimator::designIsOperable(findings) ? 0 : 1;
}

int
cmdSimulate(const Options &options, const dnn::Network &net)
{
    const sfq::DeviceConfig device = deviceFor(options);
    sfq::CellLibrary library(device);
    estimator::NpuEstimator est(library);
    const auto estimate = est.estimate(options.config);
    npusim::NpuSimulator sim(estimate);
    npusim::TraceRecorder trace;
    if (!options.traceFile.empty())
        sim.setTrace(&trace);
    const int batch =
        options.forcedBatch > 0
            ? options.forcedBatch
            : npusim::maxBatch(options.config, estimate, net);
    const auto run = sim.run(net, batch);
    const auto report = power::analyze(estimate, run);

    if (!options.traceFile.empty()) {
        std::ofstream out(options.traceFile);
        if (!out)
            fatal("cannot write '", options.traceFile, "'");
        out << trace.csv();
        std::printf("wrote %zu mapping events to %s\n",
                    trace.events().size(), options.traceFile.c_str());
    }

    std::printf("%s on %s (%s), batch %d\n", net.name.c_str(),
                options.config.name.c_str(),
                sfq::technologyName(device.technology), batch);
    std::printf("  %.1f GHz, %llu cycles, %.2f us/batch\n",
                run.frequencyGhz,
                (unsigned long long)run.totalCycles,
                run.seconds() * 1e6);
    std::printf("  %.1f TMAC/s effective (%.1f%% of peak),"
                " %.1f%% preparation\n",
                run.effectiveMacPerSec() / 1e12,
                100.0 * run.effectiveMacPerSec() /
                    estimate.peakMacPerSec,
                100.0 * run.preparationFraction());
    std::printf("  power: %.2f W chip (%.2f static + %.2f dynamic),"
                " %.0f W with 400x cooling\n",
                report.chipW(), report.staticW, report.dynamicW,
                report.totalWithCoolingW());
    std::printf("  DRAM traffic: %.1f MiB\n",
                (double)run.dramBytes / (double)units::MiB);

    maybeAudit(obs::auditSim(run), net.name);
    if (!options.ledgerFile.empty()) {
        obs::RunLedger ledger;
        obs::addSimResult(ledger, run);
        emitLedger(options, ledger);
    }
    return 0;
}

int
cmdReport(const Options &options, const dnn::Network &net)
{
    const sfq::DeviceConfig device = deviceFor(options);
    sfq::CellLibrary library(device);
    estimator::NpuEstimator est(library);
    const auto estimate = est.estimate(options.config);
    npusim::NpuSimulator sim(estimate);
    const int batch =
        options.forcedBatch > 0
            ? options.forcedBatch
            : npusim::maxBatch(options.config, estimate, net);
    const auto run = sim.run(net, batch);

    // `report` is the audited machine interface: invariants always
    // run here, regardless of the SUPERNPU_AUDIT toggle, and any
    // violation is a non-zero exit.
    obs::enforce(obs::auditSim(run), "report " + net.name);

    obs::RunLedger ledger;
    obs::addSimResult(ledger, run);
    obs::addSimCacheStats(ledger, npusim::SimCache::global().stats());
    if (!options.ledgerFile.empty()) {
        if (!ledger.write(options.ledgerFile))
            fatal("cannot write ledger '", options.ledgerFile, "'");
    }
    // JSON is the default (and only) stdout format; --json accepted
    // for symmetry with scripts that pass it explicitly.
    (void)options.jsonOut;
    std::fputs(ledger.json().c_str(), stdout);
    return 0;
}

int
cmdBatch(const Options &options, const dnn::Network &net)
{
    const sfq::DeviceConfig device = deviceFor(options);
    sfq::CellLibrary library(device);
    estimator::NpuEstimator est(library);
    const auto estimate = est.estimate(options.config);
    std::printf("%s on %s: max on-chip batch %d\n", net.name.c_str(),
                options.config.name.c_str(),
                npusim::maxBatch(options.config, estimate, net));
    return 0;
}

int
cmdServe(const Options &options, const dnn::Network &net)
{
    // Reject the documented-unsupported combination up front,
    // before any model building: there is no per-stage checkpoint
    // model, so checkpoint-restart cannot pipeline.
    if (options.stages > 1 &&
        options.serve.resilience.checkpointRestart) {
        std::fprintf(stderr, "usage: supernpu serve: --checkpoint is"
                     " unsupported with --stages > 1 (no per-stage"
                     " checkpoint model)\n");
        return 2;
    }
    const sfq::DeviceConfig device = deviceFor(options);
    sfq::CellLibrary library(device);
    estimator::NpuEstimator est(library);
    const auto estimate = est.estimate(options.config);

    serving::ServingConfig serve = options.serve;
    serve.batching.maxBatch =
        options.forcedBatch > 0
            ? options.forcedBatch
            : npusim::maxBatch(options.config, estimate, net);
    if (options.stages > 0)
        serve.pipelineStages = options.stages;
    if (options.dataParallel > 0)
        serve.dataParallelReplicas = options.dataParallel;
    serve.link = options.link;

    serving::BatchServiceModel service(estimate, net);
    serving::ServingSimulator sim(service, serve);
    const auto report = sim.run();
    report.print();
    std::printf("\nchip capacity at full batch: %.0f req/s x %d chips"
                " = %.0f req/s; served %.0f req/s at p99 %.4f ms\n",
                service.peakRps(serve.batching.maxBatch), serve.chips,
                service.peakRps(serve.batching.maxBatch) *
                    (double)serve.chips,
                report.throughputRps, report.latencyP99 * 1e3);

    maybeAudit(obs::auditServing(report), "serve " + net.name);
    if (!options.ledgerFile.empty()) {
        obs::RunLedger ledger;
        obs::addServingReport(ledger, report);
        emitLedger(options, ledger);
    }
    return 0;
}

int
cmdFaults(const Options &options, const dnn::Network &net)
{
    const sfq::DeviceConfig device = deviceFor(options);
    sfq::CellLibrary library(device);
    estimator::NpuEstimator est(library);
    const auto estimate = est.estimate(options.config);

    serving::ServingConfig serve = options.serve;
    serve.batching.maxBatch =
        options.forcedBatch > 0
            ? options.forcedBatch
            : npusim::maxBatch(options.config, estimate, net);
    const int batch = serve.batching.maxBatch;

    // --- what one flux trap costs in cycles -------------------------
    reliability::FaultInjector injector(estimate);
    const auto one_trap = [&](reliability::FluxTrapTarget target) {
        reliability::FaultScheduleConfig cfg;
        reliability::FaultEvent event;
        event.kind = reliability::FaultKind::FluxTrap;
        event.trapTarget = target;
        event.magnitude = cfg.fluxTrapDerate;
        return reliability::FaultSchedule::fromEvents(cfg, {event});
    };
    const auto clean = injector.run(net, batch, {}, 0);
    const auto lost_col =
        injector.run(net, batch,
                     one_trap(reliability::FluxTrapTarget::PeColumn), 0);
    const auto lost_chunk = injector.run(
        net, batch, one_trap(reliability::FluxTrapTarget::BufferChunk),
        0);

    std::printf("%s on %s, batch %d: flux-trap degradation\n",
                net.name.c_str(), options.config.name.c_str(), batch);
    TextTable degraded;
    degraded.row().cell("geometry").cell("cycles").cell("us/batch").cell(
        "service x");
    const auto degraded_row = [&](const char *label, const auto &run) {
        degraded.row()
            .cell(label)
            .cell((unsigned long long)run->totalCycles)
            .cell(run->seconds() * 1e6, 2)
            .cell(run->seconds() / clean->seconds(), 3);
    };
    degraded_row("pristine", clean);
    degraded_row("-1 PE column", lost_col);
    degraded_row("-1 buffer chunk", lost_chunk);
    degraded.print();

    // The serving trap derate comes from the remapped cycle counts,
    // not a guessed constant.
    const double trap_derate = injector.serviceDerate(
        net, batch, one_trap(reliability::FluxTrapTarget::PeColumn), 0);

    // --- functional error propagation -------------------------------
    // The functional path walks sequential chains only; branching
    // networks (residual projections) study bit-error propagation on
    // a small sequential probe instead.
    dnn::Network ber_net = net;
    if (!reliability::canPropagate(ber_net)) {
        ber_net = dnn::Network{};
        ber_net.name = "BerProbe";
        ber_net.layers = {dnn::conv("probe1", 3, 32, 16, 3),
                          dnn::conv("probe2", 16, 32, 32, 3),
                          dnn::conv("probe3", 32, 16, 32, 3)};
        ber_net.check();
        std::printf("\n%s branches; propagating bit errors through"
                    " the sequential probe network instead\n",
                    net.name.c_str());
    }
    const auto errors = reliability::propagateErrors(
        ber_net, options.berFlipsPerMillion, options.faults.seed);
    std::printf("\nerror propagation at %.2f flips per MMAC"
                " (%llu flips total)\n",
                options.berFlipsPerMillion,
                (unsigned long long)errors.totalFlips());
    TextTable prop;
    prop.row().cell("layer").cell("flips").cell("wrong %").cell(
        "mean |err|").cell("max |err|");
    for (const auto &layer : errors.layers) {
        prop.row()
            .cell(layer.layer)
            .cell((unsigned long long)layer.flips)
            .cell(layer.fracWrong * 100.0, 3)
            .cell(layer.meanAbsError, 4)
            .cell((long long)layer.maxAbsError);
    }
    prop.print();

    // --- serving under the fault schedule ---------------------------
    reliability::FaultScheduleConfig fault_cfg = options.faults;
    if (!options.faultRateGiven) {
        // Demonstrative defaults when no rate was given.
        fault_cfg.pulseDropRatePerSec = 20.0;
        fault_cfg.fluxTrapRatePerSec = 0.05;
        fault_cfg.clockSkewRatePerSec = 5.0;
        fault_cfg.linkGlitchRatePerSec = 10.0;
    }
    fault_cfg.chips = serve.chips;
    fault_cfg.fluxTrapDerate = std::max(1.0, trap_derate);
    fault_cfg.horizonSec = std::max(
        1.0, 2.0 * (double)serve.requests /
                 std::max(serve.arrival.ratePerSec, 1.0));
    serve.faults = reliability::FaultSchedule::generate(fault_cfg);
    std::printf("\nfault schedule: %zu events over %.1f s x %d chips"
                " (seed %llu)\n",
                serve.faults.size(), fault_cfg.horizonSec, serve.chips,
                (unsigned long long)fault_cfg.seed);

    serving::BatchServiceModel service(estimate, net);
    serving::ServingSimulator sim(service, serve);
    const auto report = sim.run();
    report.print();
    std::printf("\navailability %.2f%%, goodput %.0f of %.0f req/s"
                " under policy %s\n",
                report.availability * 100.0, report.goodputRps,
                report.throughputRps, report.recovery.c_str());

    obs::AuditReport audit = obs::auditSim(*clean);
    audit.merge(obs::auditServing(report));
    maybeAudit(audit, "faults " + net.name);
    if (!options.ledgerFile.empty()) {
        obs::RunLedger ledger;
        obs::addServingReport(ledger, report);
        obs::addFaultSchedule(ledger, serve.faults);
        obs::addSimCacheStats(ledger,
                              npusim::SimCache::global().stats());
        emitLedger(options, ledger);
    }
    return 0;
}

int
cmdPartition(const Options &options, const dnn::Network &net)
{
    const sfq::DeviceConfig device = deviceFor(options);
    sfq::CellLibrary library(device);
    estimator::NpuEstimator est(library);
    const auto estimate = est.estimate(options.config);

    const int batch =
        options.forcedBatch > 0
            ? options.forcedBatch
            : npusim::maxBatch(options.config, estimate, net);
    const int stages = options.stages > 0 ? options.stages : 4;
    const int batches =
        options.streamBatches > 0 ? options.streamBatches : 64;

    partition::PipelineSimulator pipeline(
        estimate, options.link, &npusim::SimCache::global());
    const auto run = pipeline.run(net, stages, batch, batches);
    const auto &plan = run.plan;

    std::printf("%s on %s across %d chip(s), batch %d,"
                " %d-batch stream\n",
                net.name.c_str(), options.config.name.c_str(),
                plan.stageCount(), batch, batches);
    std::printf("link: %.0f GB/s, %llu-cycle latency\n",
                plan.link.bandwidthGBps,
                (unsigned long long)plan.link.latencyCycles);

    TextTable table;
    table.row()
        .cell("stage")
        .cell("layers")
        .cell("range")
        .cell("cycles")
        .cell("link KiB")
        .cell("link cyc")
        .cell("util");
    for (int s = 0; s < plan.stageCount(); ++s) {
        const auto &stage = plan.stages[s];
        std::string range = std::to_string(stage.firstLayer);
        range += "..";
        range += std::to_string(stage.lastLayer);
        table.row()
            .cell((long long)s)
            .cell((long long)stage.layerCount())
            .cell(range)
            .cell((unsigned long long)stage.stageCycles)
            .cell((double)stage.linkBytes / 1024.0, 1)
            .cell((unsigned long long)stage.linkCycles)
            .cell(plan.stageUtilization(s), 3);
    }
    table.print();

    // The K=1 reference gives the honest speedup; it shares the
    // stream's sim cache, so this costs one memoized lookup.
    const auto solo = pipeline.run(net, 1, batch, batches);
    std::printf("\nbottleneck: stage %d (%llu cycles/batch);"
                " fill latency %.2f us\n",
                plan.bottleneckStage,
                (unsigned long long)plan.bottleneckCycles,
                plan.fillLatencySec() * 1e6);
    std::printf("steady state: %.0f inf/s (%.2fx over 1 chip),"
                " %.1f TMAC/s\n",
                run.steadyInferencesPerSec(),
                run.steadyInferencesPerSec() /
                    solo.steadyInferencesPerSec(),
                run.effectiveMacPerSec() / 1e12);

    obs::AuditReport audit = obs::auditPipeline(run);
    audit.merge(obs::auditPipeline(solo));
    maybeAudit(audit, "partition " + net.name);

    if (options.sweep) {
        std::printf("\n");
        TextTable sweep("pipeline K-sweep");
        sweep.row()
            .cell("K")
            .cell("inf/s")
            .cell("speedup")
            .cell("fill us")
            .cell("mean util");
        for (int k : {1, 2, 4, 8}) {
            if (k > (int)net.layers.size())
                break;
            const auto swept = pipeline.run(net, k, batch, batches);
            double util_sum = 0.0;
            for (int s = 0; s < swept.plan.stageCount(); ++s)
                util_sum += swept.plan.stageUtilization(s);
            sweep.row()
                .cell((long long)k)
                .cell(swept.steadyInferencesPerSec(), 0)
                .cell(swept.steadyInferencesPerSec() /
                          solo.steadyInferencesPerSec(),
                      2)
                .cell(swept.plan.fillLatencySec() * 1e6, 2)
                .cell(util_sum / (double)swept.plan.stageCount(), 3);
        }
        sweep.print();
    }

    if (!options.ledgerFile.empty()) {
        obs::RunLedger ledger;
        obs::addPipelineResult(ledger, run);
        obs::addSimCacheStats(ledger,
                              npusim::SimCache::global().stats());
        emitLedger(options, ledger);
    }
    return 0;
}

int
cmdShard(const Options &options, const dnn::Network &net)
{
    const sfq::DeviceConfig device = deviceFor(options);
    sfq::CellLibrary library(device);
    estimator::NpuEstimator est(library);
    const auto estimate = est.estimate(options.config);

    const int batch =
        options.forcedBatch > 0
            ? options.forcedBatch
            : npusim::maxBatch(options.config, estimate, net);

    sharding::HybridPlanner planner(estimate, options.link,
                                    &npusim::SimCache::global());
    // Like bench, the search defaults to the byte-stable serial walk;
    // any --jobs value produces identical output (and ledgers), so
    // the flag is purely a wall-clock knob here.
    const int jobs = options.jobs > 0 ? options.jobs : 1;

    // Any explicit degree flag pins that factorization; otherwise
    // the planner searches the --chips budget. The budget also sets
    // the --sweep points below, so it is resolved either way.
    const int budget = options.chipBudget > 0 ? options.chipBudget : 8;
    const bool fixed_point = options.dataParallel > 0 ||
                             options.tensorShards > 0 ||
                             options.stages > 0;
    sharding::ShardPlan plan;
    if (fixed_point) {
        plan = planner.evaluate(net,
                                std::max(options.dataParallel, 1),
                                std::max(options.tensorShards, 1),
                                std::max(options.stages, 1), batch);
    } else {
        const sharding::PlanSearch search =
            planner.plan(net, budget, batch, options.objective, jobs);
        plan = search.best();
        std::printf("planned %zu factorizations of <= %d chip(s)"
                    " for %s\n",
                    search.evaluated.size(), budget,
                    sharding::planObjectiveName(options.objective));
    }

    std::printf("%s on %s: dp %d x tp %d x pp %d = %d chip(s),"
                " batch %d (share %d)\n",
                net.name.c_str(), options.config.name.c_str(),
                plan.dataParallel, plan.tensorShards,
                plan.pipelineStages, plan.chips(), plan.batch,
                plan.replicaShare);
    std::printf("link: %.0f GB/s, %llu-cycle latency\n",
                plan.link.bandwidthGBps,
                (unsigned long long)plan.link.latencyCycles);

    TextTable table;
    table.row()
        .cell("stage")
        .cell("range")
        .cell("stage cyc")
        .cell("coll cyc")
        .cell("occupancy")
        .cell("link KiB");
    for (int s = 0; s < plan.pipelineStages; ++s) {
        const auto &stage = plan.pipeline.stages[s];
        std::string range = std::to_string(stage.firstLayer);
        range += "..";
        range += std::to_string(stage.lastLayer);
        table.row()
            .cell((long long)s)
            .cell(range)
            .cell((unsigned long long)stage.stageCycles)
            .cell((unsigned long long)
                      plan.stageCollectiveCycles[(std::size_t)s])
            .cell((unsigned long long)
                      plan.stageOccupancyCycles[(std::size_t)s])
            .cell((double)stage.linkBytes / 1024.0, 1);
    }
    table.print();

    std::printf("\ninterval %llu cyc, latency %llu cyc, DP gather"
                " %llu cyc (%.1f KiB)\n",
                (unsigned long long)plan.intervalCycles,
                (unsigned long long)plan.latencyCycles,
                (unsigned long long)plan.gatherCycles,
                (double)plan.gatherBytes / 1024.0);
    std::printf("steady state: %.0f inf/s (%.2fx over 1 chip),"
                " %.1f TMAC/s\n",
                plan.throughput(), plan.speedup(),
                plan.effectiveMacPerSec() / 1e12);

    obs::AuditReport audit = obs::auditSharding(plan);

    if (options.sweep) {
        std::printf("\n");
        TextTable sweep("shard budget sweep");
        sweep.row()
            .cell("chips")
            .cell("dp")
            .cell("tp")
            .cell("pp")
            .cell("inf/s")
            .cell("speedup")
            .cell("latency us");
        // Powers of two up to the effective budget, plus the budget
        // itself, so the table always covers the headline search.
        std::vector<int> sweep_budgets;
        for (int b = 1; b < budget; b *= 2)
            sweep_budgets.push_back(b);
        sweep_budgets.push_back(budget);
        for (int sweep_budget : sweep_budgets) {
            const sharding::PlanSearch search =
                planner.plan(net, sweep_budget, batch,
                             options.objective, jobs);
            const sharding::ShardPlan &best = search.best();
            audit.merge(obs::auditSharding(best));
            sweep.row()
                .cell((long long)sweep_budget)
                .cell((long long)best.dataParallel)
                .cell((long long)best.tensorShards)
                .cell((long long)best.pipelineStages)
                .cell(best.throughput(), 0)
                .cell(best.speedup(), 2)
                .cell(best.latencySec() * 1e6, 2);
        }
        sweep.print();
    }

    maybeAudit(audit, "shard " + net.name);
    if (!options.ledgerFile.empty()) {
        obs::RunLedger ledger;
        obs::addShardPlan(ledger, plan);
        obs::addSimCacheStats(ledger,
                              npusim::SimCache::global().stats());
        obs::addLayerTimingCacheStats(ledger,
                                      planner.timingCacheStats());
        emitLedger(options, ledger);
    }
    return 0;
}

int
cmdValidate(const Options &options)
{
    const sfq::DeviceConfig device = deviceFor(options);
    sfq::CellLibrary library(device);
    TextTable table("model validation (Fig. 13)");
    table.row().cell("unit").cell("metric").cell("model").cell(
        "reference").cell("error %");
    for (const auto &e : estimator::validationReport(library)) {
        table.row()
            .cell(e.unit)
            .cell(e.metric)
            .cell(e.modelValue, 3)
            .cell(e.referenceValue, 3)
            .cell(e.errorPercent(), 1);
    }
    table.print();
    return 0;
}

int
cmdExplore(const Options &options)
{
    const sfq::DeviceConfig device = deviceFor(options);
    sfq::CellLibrary library(device);
    npusim::DesignSpaceExplorer explorer(
        library, dnn::evaluationWorkloads());
    ThreadPool pool(options.jobs);
    const auto ranked = explorer.explore(npusim::ExplorationSpace{},
                                         npusim::Objective::Throughput,
                                         pool);

    TextTable table("design-space leaderboard (throughput)");
    table.row()
        .cell("rank")
        .cell("config")
        .cell("avg TMAC/s")
        .cell("chip W")
        .cell("area mm2");
    int rank = 1;
    for (const auto &cand : ranked) {
        if (!cand.operable)
            continue;
        table.row()
            .cell((long long)rank++)
            .cell(cand.config.name)
            .cell(cand.avgMacPerSec / 1e12, 1)
            .cell(cand.chipPowerW, 1)
            .cell(cand.areaMm2, 0);
        if (rank > 8)
            break;
    }
    table.print();
    // Diagnostics go to stderr: stdout must be byte-identical at
    // every --jobs value.
    const auto stats = npusim::SimCache::global().stats();
    std::fprintf(stderr,
                 "%d jobs; sim cache: %llu misses (simulated), %llu"
                 " hits\n",
                 options.jobs > 0 ? options.jobs
                                  : ThreadPool::hardwareConcurrency(),
                 (unsigned long long)stats.misses,
                 (unsigned long long)stats.hits);

    if (!options.ledgerFile.empty()) {
        obs::RunLedger ledger;
        std::uint64_t operable = 0;
        for (const auto &cand : ranked)
            operable += cand.operable ? 1 : 0;
        ledger.setInt("explore", "candidates", ranked.size());
        ledger.setInt("explore", "operable", operable);
        if (!ranked.empty() && ranked.front().operable) {
            ledger.setText("explore", "best", ranked.front().config.name);
            ledger.setReal("explore", "bestMacPerSec",
                           ranked.front().avgMacPerSec);
        }
        obs::addSimCacheStats(ledger, stats);
        obs::addPoolStats(ledger, pool.stats());
        emitLedger(options, ledger);
    }
    return 0;
}

int
cmdBench(const Options &options, const std::string &suite)
{
    bench::BenchOptions opts;
    opts.suite = suite.empty() ? "smoke" : lowered(suite);
    opts.repetitions = options.benchReps;
    opts.warmups = options.benchWarmups;
    // Unlike explore, the reference point is serial: the committed
    // baseline and the CI determinism check both run at --jobs 1.
    opts.jobs = options.jobs > 0 ? options.jobs : 1;
    opts.includeTiming = !options.benchNoTiming;
    opts.profile = options.profile;
    opts.injectSlowdownPct = options.benchInjectSlowdown;
    opts.only = options.benchOnly;

    const bench::BenchReport report = bench::runSuite(opts);

    TextTable table("bench " + opts.suite);
    table.row()
        .cell("case")
        .cell("work")
        .cell("median ms")
        .cell("throughput")
        .cell("unit");
    for (const auto &c : report.cases) {
        table.row()
            .cell(c.name)
            .cell((long long)c.work)
            .cell(c.medianWallSec * 1e3, 2)
            .cell(c.throughput, 1)
            .cell(c.unit);
    }
    table.print();

    const std::string out = options.benchOut.empty()
                                ? bench::defaultOutputPath(opts.suite)
                                : options.benchOut;
    if (!bench::writeBenchJson(report, opts.includeTiming, out))
        fatal("cannot write bench output '", out, "'");
    std::printf("wrote %s\n", out.c_str());

    if (options.benchBaseline.empty())
        return 0;
    std::ifstream file(options.benchBaseline);
    if (!file)
        fatal("cannot open baseline '", options.benchBaseline, "'");
    std::ostringstream text;
    text << file.rdbuf();
    const bench::CompareOutcome outcome = bench::compareToBaseline(
        report, text.str(), options.benchThreshold);
    if (!outcome.error.empty())
        fatal("baseline comparison failed: ", outcome.error);
    for (const auto &delta : outcome.deltas) {
        if (!delta.comparable) {
            std::printf("  %-22s skipped: %s\n", delta.name.c_str(),
                        delta.note.c_str());
        } else if (delta.baselineThroughput > 0.0) {
            std::printf("  %-22s %+.1f%% vs baseline%s\n",
                        delta.name.c_str(), -delta.slowdownPct,
                        delta.regressed ? "  REGRESSED" : "");
        } else {
            std::printf("  %-22s %s\n", delta.name.c_str(),
                        delta.note.c_str());
        }
    }
    if (!outcome.ok) {
        std::fprintf(stderr,
                     "bench: regression beyond %.1f%% threshold\n",
                     options.benchThreshold);
        return 1;
    }
    std::printf("baseline check passed (threshold %.1f%%)\n",
                options.benchThreshold);
    return 0;
}

int
cmdCheck(const Options &options)
{
    const sfq::DeviceConfig device = deviceFor(options);
    const sfq::CellLibrary library(device);
    check::RunnerOptions runner;
    runner.seed = options.serve.seed;
    runner.cases = options.checkCases;
    runner.replayPath = options.checkReplay;
    runner.shrinkFailures = !options.checkNoShrink;
    runner.reproDir = options.checkReproDir;
    runner.cook = options.checkCook;
    runner.oracle = options.checkOracle;
    runner.emitCorpusDir = options.checkEmitCorpus;
    // Serial by default like bench; any --jobs value produces the
    // same tallies, warns, and repro bytes, so the flag only buys
    // wall clock (the CI check job runs with --jobs).
    runner.jobs = options.jobs > 0 ? options.jobs : 1;
    return check::runCheck(runner, library);
}

int
usage(std::FILE *to = stderr)
{
    std::fprintf(to,
                 "usage: supernpu <command> [...]\n"
                 "  workloads                       list CNNs\n"
                 "  estimate <config> [opts]        freq/power/area\n"
                 "  simulate <workload> <config>    performance+power\n"
                 "  batch <workload> <config>       Table II batch\n"
                 "  serve <workload> <config>       serving simulation\n"
                 "  faults <workload> <config>      fault-injection study\n"
                 "  report <workload> <config>      audited JSON run ledger\n"
                 "  partition <workload> <config>   multi-chip pipeline\n"
                 "  shard <workload> <config>       DPxTPxPP planner\n"
                 "  check                           differential fuzz harness\n"
                 "  validate                        Fig. 13 table\n"
                 "  explore                         design-space sweep\n"
                 "  bench [smoke|full]              performance harness\n"
                 "configs: baseline bufferopt resourceopt supernpu\n"
                 "options: --tech --feature --width --height --regs\n"
                 "         --division --ifmap-mb --output-mb\n"
                 "         --bandwidth-gbps --batch --netfile <path>\n"
                 "         --trace <csv path> --jobs <n>\n"
                 "         --ledger <json|csv path> --json --help\n"
                 "serve:   --rps --chips --policy dynamic|fixed\n"
                 "         --dispatch rr|jsq\n"
                 "         --arrival poisson|bursty|closed\n"
                 "         --timeout-us --requests --clients --seed\n"
                 "         --stages <k> (pipeline groups of k chips)\n"
                 "faults:  --drop-rate --trap-rate --skew-rate\n"
                 "         --glitch-rate --fault-burst --fault-seed\n"
                 "         --recovery none|retry|degraded --detect-us\n"
                 "         --max-retries --backoff-us --checkpoint\n"
                 "         --ber\n"
                 "partition: --stages <k> --sweep --stream <batches>\n"
                 "         --link-gbps <n> --link-latency <cycles>\n"
                 "shard:   --dp <r> --tp <t> --stages <k> --chips <n>\n"
                 "         --objective throughput|latency --sweep\n"
                 "         --jobs <n> (search parallelism; output is\n"
                 "         byte-identical at any value, default 1)\n"
                 "check:   --cases <n> --seed <s> --replay <file>\n"
                 "         --no-shrink --repro-dir <dir>\n"
                 "         --oracle <name> --cook none|tamper\n"
                 "         --emit-corpus <dir> --jobs (default 1;\n"
                 "         identical output at any value)\n"
                 "bench:   --reps --warmups --case <name> --out <path>\n"
                 "         --no-timing --baseline <path> --threshold\n"
                 "         --inject-slowdown <pct> --jobs (default 1)\n"
                 "any:     --profile (perf phases/counters; bench\n"
                 "         embeds them, --ledger gains perf sections)\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    // --help anywhere on the line wins: usage on stdout, exit 0.
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--help") ||
            !std::strcmp(argv[i], "-h")) {
            usage(stdout);
            return 0;
        }
    }
    const std::string command = argv[1];

    Options options;
    const std::vector<std::string> positional =
        parseOptions(argc, argv, 2, options);
    options.config.check();
    if (options.profile)
        perf::setEnabled(true);

    // Stray positionals are user errors, not things to ignore: each
    // subcommand takes at most one (the workload name).
    const auto reject_extra = [&](std::size_t allowed) {
        if (positional.size() <= allowed)
            return;
        std::fprintf(stderr, "usage: supernpu %s [options]; run"
                     " 'supernpu --help'\n", command.c_str());
        fatal("unexpected argument '", positional[allowed], "'");
    };

    if (command == "workloads" || command == "estimate" ||
        command == "validate" || command == "explore") {
        reject_extra(0);
        if (command == "workloads")
            return cmdWorkloads();
        if (command == "estimate")
            return cmdEstimate(options);
        if (command == "validate")
            return cmdValidate(options);
        return cmdExplore(options);
    }
    if (command == "check") {
        reject_extra(0);
        return cmdCheck(options);
    }
    if (command == "bench") {
        reject_extra(1);
        return cmdBench(options,
                        positional.empty() ? "" : positional.front());
    }
    if (command == "simulate" || command == "batch" ||
        command == "serve" || command == "faults" ||
        command == "report" || command == "partition" ||
        command == "shard") {
        dnn::Network net;
        if (!options.netFile.empty()) {
            reject_extra(0);
            std::ifstream file(options.netFile);
            if (!file)
                fatal("cannot open '", options.netFile, "'");
            std::ostringstream text;
            text << file.rdbuf();
            net = dnn::parseNetwork(text.str());
        } else {
            if (positional.empty()) {
                fatal("'", command,
                      "' needs a workload name or --netfile");
            }
            reject_extra(1);
            net = findWorkload(positional.front());
        }
        if (command == "simulate")
            return cmdSimulate(options, net);
        if (command == "serve")
            return cmdServe(options, net);
        if (command == "faults")
            return cmdFaults(options, net);
        if (command == "report")
            return cmdReport(options, net);
        if (command == "partition")
            return cmdPartition(options, net);
        if (command == "shard")
            return cmdShard(options, net);
        return cmdBatch(options, net);
    }
    return usage();
}
