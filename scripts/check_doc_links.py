#!/usr/bin/env python3
"""Verify the repository's documentation cross-references.

Two kinds of reference are checked across README.md, EXPERIMENTS.md,
and every Markdown file under docs/:

  1. Relative Markdown links — `[text](path)` where path is not an
     http(s)/mailto URL or a pure #anchor. The target must exist,
     resolved against the referencing file's directory (with a
     repo-root fallback, since docs/ pages link both ways).
  2. Backticked file mentions — `docs/foo.md`, `MODELING.md`,
     `src/perf/profile.hh` and the like. Prose refers to files by
     path constantly; a rename that misses one of these is exactly
     the staleness this script exists to catch.

Exit status: 0 when every reference resolves, 1 otherwise (one line
per broken reference, `file:line: target`). No dependencies beyond
the standard library; CI runs it as a cheap independent job.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# [text](target "title") — target captured up to ) or whitespace.
MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)[^)]*\)")
# `some/path.ext` — only path-shaped tokens with an extension we
# track; bare identifiers and code spans stay out of scope.
BACKTICK_REF = re.compile(
    r"`([A-Za-z0-9_./-]+\.(?:md|hh|cc|py|sh|json|yml|net|csv))`"
)
# Tokens that look like files but are placeholders or generated
# artifacts, never committed paths.
GENERATED = re.compile(
    r"""
    ^BENCH_ |            # harness output artifacts
    ^Doxyfile$ |
    < | \* |             # placeholder text like BENCH_<suite>.json
    ^[a-z_]+\.json$ |    # run-time ledger outputs (serve-a.json ...)
    ^[a-z_]+\.csv$       # run-time trace/ledger outputs
    """,
    re.VERBOSE,
)


def doc_files() -> list[Path]:
    files = [
        REPO_ROOT / "README.md",
        REPO_ROOT / "EXPERIMENTS.md",
        REPO_ROOT / "DESIGN.md",
    ]
    # Recursive: docs/ pages may grow subdirectories, and a page the
    # glob silently skips is a page whose references silently rot.
    files += sorted((REPO_ROOT / "docs").glob("**/*.md"))
    return [f for f in files if f.exists()]


def resolves(target: str, base: Path) -> bool:
    clean = target.split("#", 1)[0]
    if not clean:  # pure anchor
        return True
    for root in (base.parent, REPO_ROOT, REPO_ROOT / "src"):
        if (root / clean).exists():
            return True
    if "/" not in clean:
        # Bare filename shorthand ("fault_model.hh" inside the
        # reliability page): valid iff it names a real source file.
        return any(REPO_ROOT.glob(f"src/**/{clean}"))
    return False


def check_file(path: Path) -> list[str]:
    errors = []
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        for match in MD_LINK.finditer(line):
            target = match.group(1)
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):
                continue  # absolute URL scheme
            if not resolves(target, path):
                errors.append(f"{path.relative_to(REPO_ROOT)}:"
                              f"{lineno}: broken link ({target})")
        for match in BACKTICK_REF.finditer(line):
            target = match.group(1)
            if GENERATED.search(target):
                continue
            if not resolves(target, path):
                errors.append(f"{path.relative_to(REPO_ROOT)}:"
                              f"{lineno}: stale file reference"
                              f" ({target})")
    return errors


def main() -> int:
    files = doc_files()
    errors = []
    for path in files:
        errors.extend(check_file(path))
    for error in errors:
        print(error)
    print(f"checked {len(files)} files:"
          f" {len(errors)} broken reference(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
