#!/usr/bin/env bash
# Reproduce everything: build, run the full test suite, regenerate
# every paper table/figure and ablation, and run the examples.
# Outputs land in test_output.txt and bench_output.txt at the repo
# root (the files EXPERIMENTS.md's numbers are checked against).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

{
    for b in build/bench/*; do
        [ -f "$b" ] && [ -x "$b" ] || continue
        echo "######## $(basename "$b")"
        "$b"
        echo
    done
} 2>&1 | tee bench_output.txt

echo
echo "examples:"
for e in build/examples/*; do
    [ -f "$e" ] && [ -x "$e" ] || continue
    echo "######## $(basename "$e")"
    "$e" > /dev/null && echo "  ok"
done

echo "done: see test_output.txt and bench_output.txt"
