/**
 * @file
 * Tests for the behavioural shift-register buffer, including the
 * cross-validation of the npusim/estimator cycle-cost formulas
 * against cycles this model actually consumes.
 */

#include <gtest/gtest.h>

#include "common/units.hh"
#include "estimator/npu_estimator.hh"
#include "functional/srbuffer.hh"

namespace supernpu {
namespace functional {
namespace {

TEST(SrChunk, FifoOrderAfterFullFill)
{
    ShiftRegisterChunk chunk(4);
    for (std::int32_t w : {10, 20, 30, 40})
        chunk.shiftIn(w);
    EXPECT_EQ(chunk.snapshot(), (std::vector<std::int32_t>{10, 20, 30, 40}));
    EXPECT_EQ(chunk.head(), 10);
}

TEST(SrChunk, ShiftInEvictsHead)
{
    ShiftRegisterChunk chunk(3);
    chunk.shiftIn(1);
    chunk.shiftIn(2);
    chunk.shiftIn(3);
    EXPECT_EQ(chunk.shiftIn(4), 1);
    EXPECT_EQ(chunk.head(), 2);
}

TEST(SrChunk, FullRotationRestoresOrder)
{
    ShiftRegisterChunk chunk(5);
    for (std::int32_t w : {1, 2, 3, 4, 5})
        chunk.shiftIn(w);
    const auto before = chunk.snapshot();
    for (int i = 0; i < 5; ++i)
        chunk.rotate();
    EXPECT_EQ(chunk.snapshot(), before);
}

TEST(SrBuffer, GeometryAndDivision)
{
    ShiftRegisterBuffer buffer(4, 32, 8);
    EXPECT_EQ(buffer.chunkLength(), 4u);
    EXPECT_EQ(buffer.rows(), 4u);
}

TEST(SrBufferDeath, DivisionMustBeEven)
{
    EXPECT_DEATH(ShiftRegisterBuffer(4, 30, 8), "evenly");
}

TEST(SrBuffer, FillDrainRoundTrip)
{
    ShiftRegisterBuffer buffer(2, 8, 2);
    const std::vector<std::vector<std::int32_t>> data = {
        {1, 2, 3, 4}, {5, 6, 7, 8}};
    const std::uint64_t fill_cycles = buffer.fillChunk(0, data);
    EXPECT_EQ(fill_cycles, 4u);

    std::uint64_t drain_cycles = 0;
    const auto out = buffer.drainChunk(0, 4, drain_cycles);
    EXPECT_EQ(drain_cycles, 4u);
    EXPECT_EQ(out, data);
}

TEST(SrBuffer, RewindCostsChunkLengthAndPreservesData)
{
    ShiftRegisterBuffer buffer(1, 16, 4); // chunks of 4
    const std::vector<std::vector<std::int32_t>> data = {{9, 8, 7, 6}};
    buffer.fillChunk(2, data);
    const auto before = buffer.chunk(0, 2).snapshot();
    EXPECT_EQ(buffer.rewindChunk(2), 4u);
    EXPECT_EQ(buffer.chunk(0, 2).snapshot(), before);
}

TEST(SrBuffer, MoveCostIsSumOfLengths)
{
    // The paper's Fig. 16 example: an 8 MB ofmap buffer row is
    // 32,768 entries; moving into the psum buffer costs 65,536
    // cycles. Row count does not change the cycle count.
    ShiftRegisterBuffer ofmap(2, 32768, 1);
    ShiftRegisterBuffer psum(2, 32768, 1);
    const std::uint64_t cycles =
        ShiftRegisterBuffer::moveChunk(ofmap, 0, psum, 0);
    EXPECT_EQ(cycles, 65536u);
}

TEST(SrBuffer, MoveDeliversDataToDestinationHead)
{
    ShiftRegisterBuffer src(1, 4, 1);
    ShiftRegisterBuffer dst(1, 8, 1);
    src.fillChunk(0, {{11, 22, 33, 44}});
    const std::uint64_t cycles =
        ShiftRegisterBuffer::moveChunk(src, 0, dst, 0);
    EXPECT_EQ(cycles, 4u + 8u);
    const auto out = dst.chunk(0, 0).snapshot();
    EXPECT_EQ(out[0], 11);
    EXPECT_EQ(out[3], 44);
    EXPECT_EQ(out[4], 0); // padding behind the payload
}

TEST(SrBuffer, DivisionShortensEveryOperation)
{
    ShiftRegisterBuffer whole(1, 4096, 1);
    ShiftRegisterBuffer divided(1, 4096, 64);
    EXPECT_EQ(whole.rewindChunk(0), 4096u);
    EXPECT_EQ(divided.rewindChunk(0), 64u);
}

// --- cross-validation against the analytic models ----------------------

TEST(SrBufferCrossCheck, RewindMatchesEstimatorChunkLength)
{
    sfq::DeviceConfig dev;
    sfq::CellLibrary lib(dev);
    estimator::NpuEstimator est(lib);
    const auto super =
        est.estimate(estimator::NpuConfig::superNpu());

    // Build the behavioural buffer at the SuperNPU's exact ifmap
    // geometry and check the reuse (rewind) cost the performance
    // simulator charges equals the cycles this model consumes.
    ShiftRegisterBuffer behavioural(
        1, (std::size_t)super.ifmapRowLength,
        (std::size_t)super.config.ifmapDivision);
    EXPECT_EQ(behavioural.rewindChunk(0), super.ifmapChunkLength);
}

TEST(SrBufferCrossCheck, BaselinePsumMoveMatchesSimulatorCharge)
{
    sfq::DeviceConfig dev;
    sfq::CellLibrary lib(dev);
    estimator::NpuEstimator est(lib);
    const auto baseline =
        est.estimate(estimator::NpuConfig::baseline());

    // npusim charges 2 * outputRowLength per row-fold transition for
    // the separate-buffer Baseline; the behavioural move agrees.
    ShiftRegisterBuffer ofmap(1, (std::size_t)baseline.outputRowLength,
                              1);
    ShiftRegisterBuffer psum(1, (std::size_t)baseline.outputRowLength,
                             1);
    EXPECT_EQ(ShiftRegisterBuffer::moveChunk(ofmap, 0, psum, 0),
              2 * baseline.outputRowLength);
}

} // namespace
} // namespace functional
} // namespace supernpu
