/**
 * @file
 * Tests for the inference-serving subsystem: arrival-model
 * statistics and determinism, batch-queue policy invariants,
 * dispatcher behavior, and end-to-end discrete-event properties
 * (conservation, no batch above the solver max, timeout flushes,
 * p99 monotonicity in offered load, multi-chip scaling).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/parallel.hh"
#include "dnn/parser.hh"
#include "estimator/npu_estimator.hh"
#include "npusim/batch.hh"
#include "npusim/sim_cache.hh"
#include "obs/audit.hh"
#include "reliability/fault_model.hh"
#include "serving/simulator.hh"

namespace supernpu {
namespace serving {
namespace {

// --- arrival models --------------------------------------------------

TEST(Arrival, PoissonGapsMatchConfiguredRate)
{
    ArrivalConfig config;
    config.kind = ArrivalKind::OpenPoisson;
    config.ratePerSec = 1000.0;
    ArrivalProcess process(config, 1);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double gap = process.nextGapSec();
        EXPECT_GT(gap, 0.0);
        sum += gap;
    }
    EXPECT_NEAR(sum / n, 1e-3, 1e-3 * 0.05);
}

TEST(Arrival, BurstyPreservesOfferedLoad)
{
    ArrivalConfig config;
    config.kind = ArrivalKind::Bursty;
    config.ratePerSec = 2000.0;
    config.meanOnSec = 2e-3;
    config.meanOffSec = 8e-3;
    ArrivalProcess process(config, 7);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += process.nextGapSec();
    // The long-run mean gap is 1/rate despite the on/off modulation.
    EXPECT_NEAR(sum / n, 1.0 / 2000.0, 1.0 / 2000.0 * 0.1);
}

TEST(Arrival, SameSeedSameGaps)
{
    ArrivalConfig config;
    config.kind = ArrivalKind::Bursty;
    ArrivalProcess a(config, 42);
    ArrivalProcess b(config, 42);
    ArrivalProcess c(config, 43);
    bool any_differ = false;
    for (int i = 0; i < 1000; ++i) {
        const double gap = a.nextGapSec();
        EXPECT_DOUBLE_EQ(gap, b.nextGapSec());
        any_differ |= gap != c.nextGapSec();
    }
    EXPECT_TRUE(any_differ);
}

TEST(Arrival, ZeroThinkTimeIsExactlyZero)
{
    ArrivalConfig config;
    config.kind = ArrivalKind::ClosedLoop;
    config.clients = 4;
    ArrivalProcess process(config, 1);
    EXPECT_DOUBLE_EQ(process.thinkGapSec(), 0.0);
}

// --- batch queue -----------------------------------------------------

TEST(BatchQueue, FullBatchLaunchesImmediately)
{
    BatchingConfig config;
    config.maxBatch = 4;
    config.timeoutSec = 1.0;
    BatchQueue queue(config);
    for (int i = 0; i < 4; ++i) {
        EXPECT_FALSE(queue.launchable(1e-5 * i));
        queue.push(Request{(std::uint64_t)i, 1e-5 * i, 1e-5 * i});
    }
    EXPECT_TRUE(queue.launchable(4e-5));
    EXPECT_EQ(queue.pop().size(), 4u);
    EXPECT_TRUE(queue.empty());
}

TEST(BatchQueue, PartialBatchWaitsForTimeout)
{
    BatchingConfig config;
    config.maxBatch = 8;
    config.timeoutSec = 1e-3;
    BatchQueue queue(config);
    queue.push(Request{0, 0.5, 0.5});
    queue.push(Request{1, 0.5004, 0.5004});
    // The deadline tracks the oldest request, not the newest.
    EXPECT_DOUBLE_EQ(queue.nextDeadlineSec(), 0.5 + 1e-3);
    EXPECT_FALSE(queue.launchable(0.5009));
    EXPECT_TRUE(queue.launchable(0.501));
    EXPECT_EQ(queue.pop().size(), 2u);
}

TEST(BatchQueue, PopNeverExceedsMax)
{
    BatchingConfig config;
    config.maxBatch = 3;
    BatchQueue queue(config);
    for (int i = 0; i < 8; ++i)
        queue.push(Request{(std::uint64_t)i, (double)i, (double)i});
    EXPECT_EQ(queue.pop().size(), 3u);
    EXPECT_EQ(queue.pop().size(), 3u);
    const auto last = queue.pop();
    ASSERT_EQ(last.size(), 2u);
    // FIFO order end to end.
    EXPECT_EQ(last[0].id, 6u);
    EXPECT_EQ(last[1].id, 7u);
}

TEST(BatchQueue, FixedPolicyNeverTimesOut)
{
    BatchingConfig config;
    config.policy = BatchPolicy::FixedBatch;
    config.maxBatch = 4;
    BatchQueue queue(config);
    queue.push(Request{0, 0.0, 0.0});
    EXPECT_FALSE(queue.launchable(1e9));
    EXPECT_TRUE(std::isinf(queue.nextDeadlineSec()));
    queue.push(Request{1, 1.0, 1.0});
    queue.push(Request{2, 2.0, 2.0});
    queue.push(Request{3, 3.0, 3.0});
    EXPECT_TRUE(queue.launchable(3.0));
}

// --- dispatcher ------------------------------------------------------

TEST(Dispatch, RoundRobinCycles)
{
    Dispatcher dispatcher(DispatchPolicy::RoundRobin, 3);
    const std::vector<int> outstanding{5, 0, 9};
    for (int expect : {0, 1, 2, 0, 1, 2})
        EXPECT_EQ(dispatcher.pick(outstanding), expect);
}

TEST(Dispatch, JsqPicksLeastLoadedLowestIndexOnTies)
{
    Dispatcher dispatcher(DispatchPolicy::JoinShortestQueue, 4);
    EXPECT_EQ(dispatcher.pick({3, 1, 2, 1}), 1);
    EXPECT_EQ(dispatcher.pick({0, 0, 0, 0}), 0);
    EXPECT_EQ(dispatcher.pick({2, 2, 2, 0}), 3);
}

// --- end-to-end ------------------------------------------------------

/**
 * A small two-conv network keeps the memoized cycle simulations
 * cheap while exercising the real NpuSimulator path.
 */
class ServingFixture : public ::testing::Test
{
  protected:
    ServingFixture()
        : net(dnn::parseNetwork("network ServeTest\n"
                                "conv c1  3 16 16 3 1 1\n"
                                "conv c2 16 16 16 3 1 1\n")),
          config(estimator::NpuConfig::superNpu()),
          estimate(estimator::NpuEstimator(lib).estimate(config)),
          solver_max(npusim::maxBatch(config, estimate, net)),
          service(estimate, net)
    {
    }

    ServingConfig
    baseConfig(double rps) const
    {
        ServingConfig serving;
        serving.arrival.ratePerSec = rps;
        serving.batching.maxBatch = solver_max;
        serving.batching.timeoutSec = 1e-4;
        serving.requests = 3000;
        return serving;
    }

    sfq::DeviceConfig dev;
    sfq::CellLibrary lib{dev};
    dnn::Network net;
    estimator::NpuConfig config;
    estimator::NpuEstimate estimate;
    int solver_max;
    BatchServiceModel service;
};

TEST_F(ServingFixture, ServiceModelCachesPerBatch)
{
    const double once = service.batchSeconds(4);
    EXPECT_GT(once, 0.0);
    EXPECT_DOUBLE_EQ(service.batchSeconds(4), once);
    EXPECT_EQ(service.cachedBatches(), 1u);
    // Larger batches amortize preparation: strictly cheaper per
    // inference than batch 1.
    EXPECT_LT(service.batchSeconds(solver_max) / solver_max,
              service.batchSeconds(1));
}

TEST_F(ServingFixture, ConservesRequestsAndBoundsBatches)
{
    const double capacity = service.peakRps(solver_max);
    const auto report =
        ServingSimulator(service, baseConfig(0.7 * capacity)).run();
    EXPECT_EQ(report.completed, 3000u);
    EXPECT_EQ(report.generated, 3000u);
    EXPECT_GE(report.maxBatchLaunched, 1);
    EXPECT_LE(report.maxBatchLaunched, solver_max);
    EXPECT_GT(report.utilization, 0.0);
    EXPECT_LE(report.utilization, 1.0);
    EXPECT_GE(report.latencyP99, report.latencyP50);
    EXPECT_GE(report.latencyMax, report.latencyP999);
    // The full conservation-audit battery holds on a clean run.
    const obs::AuditReport audit = obs::auditServing(report);
    EXPECT_TRUE(audit.ok()) << audit.summary();
}

TEST_F(ServingFixture, BusyTimeIsBoundedByChipTime)
{
    const double capacity = service.peakRps(solver_max);
    ServingConfig serving = baseConfig(0.8 * 2.0 * capacity);
    serving.chips = 2;
    const auto report = ServingSimulator(service, serving).run();
    ASSERT_EQ(report.perChipBusySec.size(), 2u);
    double busy = 0.0;
    for (double chip_busy : report.perChipBusySec) {
        EXPECT_GE(chip_busy, 0.0);
        EXPECT_LE(chip_busy, report.makespanSec * (1.0 + 1e-9));
        busy += chip_busy;
    }
    EXPECT_LE(busy, 2.0 * report.makespanSec * (1.0 + 1e-9));
    // utilization is exactly the busy fraction of total chip-time.
    EXPECT_NEAR(report.utilization,
                busy / (2.0 * report.makespanSec), 1e-9);
    const obs::AuditReport audit = obs::auditServing(report);
    EXPECT_TRUE(audit.ok()) << audit.summary();
}

TEST_F(ServingFixture, TimeoutFlushesPartialBatches)
{
    // One lonely request: it can only leave via the timeout flush,
    // so its latency is exactly timeout + batch-1 service.
    ServingConfig serving = baseConfig(1.0);
    serving.requests = 1;
    const auto report = ServingSimulator(service, serving).run();
    EXPECT_EQ(report.completed, 1u);
    EXPECT_EQ(report.maxBatchLaunched, 1);
    EXPECT_NEAR(report.latencyMax,
                serving.batching.timeoutSec + service.batchSeconds(1),
                1e-12);
}

TEST_F(ServingFixture, SameSeedReplaysBitIdentically)
{
    const double capacity = service.peakRps(solver_max);
    const auto a =
        ServingSimulator(service, baseConfig(0.5 * capacity)).run();
    const auto b =
        ServingSimulator(service, baseConfig(0.5 * capacity)).run();
    EXPECT_DOUBLE_EQ(a.latencyP99, b.latencyP99);
    EXPECT_DOUBLE_EQ(a.throughputRps, b.throughputRps);
    EXPECT_DOUBLE_EQ(a.makespanSec, b.makespanSec);
    EXPECT_EQ(a.batchesLaunched, b.batchesLaunched);

    ServingConfig other = baseConfig(0.5 * capacity);
    other.seed += 1;
    const auto c = ServingSimulator(service, other).run();
    EXPECT_NE(a.makespanSec, c.makespanSec);
}

TEST_F(ServingFixture, P99RisesMonotonicallyWithOfferedLoad)
{
    // The timeout must be small next to the service time, else the
    // low-load floor is timeout-bound and batches that fill *faster*
    // under load make latency initially fall (a real dynamic-batching
    // effect, but not the queueing signal this test pins down).
    const double capacity = service.peakRps(solver_max);
    const auto at_load = [&](double frac) {
        ServingConfig serving = baseConfig(frac * capacity);
        serving.batching.timeoutSec = 2.0 * service.batchSeconds(1);
        return ServingSimulator(service, serving).run();
    };
    double previous = 0.0;
    for (double frac : {0.3, 0.7, 1.0, 1.3}) {
        const auto report = at_load(frac);
        EXPECT_GE(report.latencyP99, previous) << "at load " << frac;
        previous = report.latencyP99;
    }
    // Overload (1.3x) must push p99 well past the light-load floor.
    EXPECT_GT(previous, 2.0 * at_load(0.3).latencyP99);
}

TEST_F(ServingFixture, FixedPolicyLaunchesOnlyFullBatchesPlusDrain)
{
    ServingConfig serving = baseConfig(0.5 * service.peakRps(4));
    serving.batching.policy = BatchPolicy::FixedBatch;
    serving.batching.maxBatch = 4;
    serving.requests = 1001; // forces one partial drain batch
    const auto report = ServingSimulator(service, serving).run();
    EXPECT_EQ(report.completed, 1001u);
    EXPECT_LE(report.maxBatchLaunched, 4);
    // 250 full batches and the drained singleton.
    EXPECT_EQ(report.batchesLaunched, 251u);
}

TEST_F(ServingFixture, ClosedLoopKeepsClientsOutstanding)
{
    ServingConfig serving = baseConfig(0.0);
    serving.arrival.kind = ArrivalKind::ClosedLoop;
    serving.arrival.clients = 8;
    serving.requests = 2000;
    const auto report = ServingSimulator(service, serving).run();
    EXPECT_EQ(report.completed, 2000u);
    // Little's law: N = X * R, with N bounded by the population.
    const double n = report.throughputRps * report.latencyMean;
    EXPECT_LE(n, 8.0 + 1e-6);
    EXPECT_GT(n, 1.0);
}

TEST_F(ServingFixture, MultiChipScalingLiftsThroughput)
{
    // Saturate: closed loop with a big population admits as much as
    // the chips can serve, so throughput tracks chip count. Greedy
    // batching (zero timeout) keeps the drain tail from dominating
    // this tiny workload's makespan.
    ServingConfig serving = baseConfig(0.0);
    serving.arrival.kind = ArrivalKind::ClosedLoop;
    serving.arrival.clients = 256;
    serving.batching.timeoutSec = 0.0;
    serving.requests = 30000;
    const auto one = ServingSimulator(service, serving).run();
    serving.chips = 4;
    const auto four = ServingSimulator(service, serving).run();
    EXPECT_GT(one.utilization, 0.9);
    EXPECT_GT(four.throughputRps, 3.0 * one.throughputRps);
}

TEST_F(ServingFixture, BurstyTrafficHasFatterTailThanPoisson)
{
    const double capacity = service.peakRps(solver_max);
    ServingConfig serving = baseConfig(0.6 * capacity);
    const auto poisson = ServingSimulator(service, serving).run();
    serving.arrival.kind = ArrivalKind::Bursty;
    serving.arrival.meanOnSec = 2e-3;
    serving.arrival.meanOffSec = 8e-3;
    const auto bursty = ServingSimulator(service, serving).run();
    EXPECT_EQ(bursty.completed, poisson.completed);
    // Same average load, but on-phase rate is 5x: the tail suffers.
    EXPECT_GT(bursty.latencyP99, poisson.latencyP99);
}

TEST_F(ServingFixture, ColdAndParallelWarmedCachesServeIdentically)
{
    // The service model memoizes in a SimCache; whether that cache
    // is cold or was warmed concurrently by 8 threads (a parallel
    // sweep sharing the process-wide cache) must not change a single
    // reported number for the same seed.
    const double capacity = service.peakRps(solver_max);
    npusim::SimCache cold_cache, warm_cache;
    BatchServiceModel cold(estimate, net, &cold_cache);
    BatchServiceModel warm(estimate, net, &warm_cache);
    ThreadPool pool(8);
    pool.parallelFor((std::size_t)solver_max, [&](std::size_t i) {
        warm.batchSeconds((int)i + 1);
    });
    EXPECT_EQ(warm.cachedBatches(), (std::size_t)solver_max);

    const auto a =
        ServingSimulator(cold, baseConfig(0.7 * capacity)).run();
    const auto b =
        ServingSimulator(warm, baseConfig(0.7 * capacity)).run();
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.batchesLaunched, b.batchesLaunched);
    EXPECT_DOUBLE_EQ(a.throughputRps, b.throughputRps);
    EXPECT_DOUBLE_EQ(a.latencyMean, b.latencyMean);
    EXPECT_DOUBLE_EQ(a.latencyP50, b.latencyP50);
    EXPECT_DOUBLE_EQ(a.latencyP95, b.latencyP95);
    EXPECT_DOUBLE_EQ(a.latencyP99, b.latencyP99);
    EXPECT_DOUBLE_EQ(a.latencyP999, b.latencyP999);
    EXPECT_DOUBLE_EQ(a.latencyMax, b.latencyMax);
}

TEST_F(ServingFixture, ConcurrentBatchSecondsQueriesAgree)
{
    // Thread-safety of the service model itself: many threads asking
    // for overlapping batch sizes all see the deterministic value.
    std::vector<double> reference;
    for (int b = 1; b <= solver_max; ++b)
        reference.push_back(service.batchSeconds(b));
    ThreadPool pool(8);
    const auto parallel =
        pool.parallelMap((std::size_t)solver_max * 4,
                         [&](std::size_t i) {
                             const int b =
                                 (int)(i % (std::size_t)solver_max);
                             return service.batchSeconds(b + 1);
                         });
    for (std::size_t i = 0; i < parallel.size(); ++i) {
        EXPECT_DOUBLE_EQ(
            parallel[i],
            reference[i % (std::size_t)solver_max]);
    }
}

// --- pipelined placement (src/partition) -----------------------------

TEST_F(ServingFixture, PipelinedRunConservesAndAttributesLaunches)
{
    ServingConfig serving =
        baseConfig(0.5 * 2.0 * service.peakRps(solver_max));
    serving.chips = 4;
    serving.pipelineStages = 2;
    const auto report = ServingSimulator(service, serving).run();
    EXPECT_EQ(report.completed, 3000u);
    EXPECT_EQ(report.pipelineStages, 2);
    EXPECT_EQ(report.pipelineGroups, 2);
    const obs::AuditReport audit = obs::auditServing(report);
    EXPECT_TRUE(audit.ok()) << audit.summary();
    // Each batch launch is counted once, on the stage-0 chip of its
    // group; stage-1 chips record busy time but never a launch.
    ASSERT_EQ(report.perChipBatches.size(), 4u);
    EXPECT_EQ(report.perChipBatches[1], 0u);
    EXPECT_EQ(report.perChipBatches[3], 0u);
    EXPECT_EQ(report.perChipBatches[0] + report.perChipBatches[2],
              report.batchesLaunched);
    ASSERT_EQ(report.perChipBusySec.size(), 4u);
    EXPECT_GT(report.perChipBusySec[1], 0.0);
    EXPECT_GT(report.perChipBusySec[3], 0.0);
}

TEST_F(ServingFixture, PipelinedFaultQuarantinesTheWholeGroup)
{
    ServingConfig serving =
        baseConfig(0.5 * service.peakRps(solver_max));
    serving.chips = 4;
    serving.pipelineStages = 2;
    // One permanent flux trap on chip 1 — the *stage-1* chip of
    // group 0. A pipeline is only as healthy as its sickest stage,
    // so quarantine must write off the whole group.
    reliability::FaultScheduleConfig faults;
    faults.chips = 4;
    reliability::FaultEvent event;
    event.kind = reliability::FaultKind::FluxTrap;
    event.chip = 1;
    event.magnitude = faults.fluxTrapDerate;
    serving.faults =
        reliability::FaultSchedule::fromEvents(faults, {event});
    serving.resilience.recovery = RecoveryPolicy::DegradedDispatch;
    serving.resilience.detectLatencySec = 1e-12;
    const auto report = ServingSimulator(service, serving).run();
    EXPECT_EQ(report.completed, serving.requests);
    EXPECT_EQ(report.failedRequests, 0u);
    ASSERT_EQ(report.perChipBatches.size(), 4u);
    EXPECT_EQ(report.perChipBatches[0], 0u);
    EXPECT_EQ(report.perChipBatches[1], 0u);
    EXPECT_GT(report.perChipBatches[2], 0u);
    EXPECT_EQ(report.perChipBatches[3], 0u);
    // Writing off one of two groups costs half the fleet.
    EXPECT_LT(report.availability, 0.55);
    const obs::AuditReport audit = obs::auditServing(report);
    EXPECT_TRUE(audit.ok()) << audit.summary();
}

TEST_F(ServingFixture, PipelinedRetryRidesOutTransientFaults)
{
    ServingConfig serving =
        baseConfig(0.5 * 2.0 * service.peakRps(solver_max));
    serving.chips = 4;
    serving.pipelineStages = 2;
    reliability::FaultScheduleConfig faults;
    faults.chips = 4;
    faults.horizonSec =
        (double)serving.requests / serving.arrival.ratePerSec;
    faults.pulseDropRatePerSec = 20.0 / faults.horizonSec;
    faults.linkGlitchRatePerSec = 20.0 / faults.horizonSec;
    // Scale the glitch stall to the workload: the default is tuned
    // for wall-clock-scale runs and would dwarf this microscopic
    // makespan.
    faults.linkGlitchDelaySec = 0.5 * service.batchSeconds(solver_max);
    serving.faults = reliability::FaultSchedule::generate(faults);
    serving.resilience.recovery = RecoveryPolicy::RetryBackoff;
    serving.resilience.detectLatencySec =
        0.25 * service.batchSeconds(solver_max);
    serving.resilience.backoffBaseSec =
        service.batchSeconds(solver_max);
    const auto report = ServingSimulator(service, serving).run();
    EXPECT_EQ(report.completed, serving.requests);
    const obs::AuditReport audit = obs::auditServing(report);
    EXPECT_TRUE(audit.ok()) << audit.summary();
}

// --- degenerate metrics (zero-makespan guard) ------------------------

TEST(Metrics, ZeroMakespanReportsZeroRatesNotNan)
{
    MetricsCollector metrics(2);
    const ServingReport report = metrics.finish(0.0);
    EXPECT_EQ(report.throughputRps, 0.0);
    EXPECT_EQ(report.utilization, 0.0);
    EXPECT_EQ(report.meanQueueDepth, 0.0);
    EXPECT_EQ(report.availability, 0.0);
    EXPECT_TRUE(std::isfinite(report.throughputRps));
    EXPECT_TRUE(std::isfinite(report.utilization));
    EXPECT_TRUE(std::isfinite(report.availability));
}

} // namespace
} // namespace serving
} // namespace supernpu
