/**
 * @file
 * Tests for the check subsystem: generator determinism and validity,
 * honest and tampered oracle outcomes across the catalog, shrinker
 * convergence and determinism, repro serialization round-trips, and
 * a full replay of the committed corpus in tests/repros/.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "check/case.hh"
#include "check/generator.hh"
#include "check/oracles.hh"
#include "check/repro.hh"
#include "check/runner.hh"
#include "check/shrinker.hh"
#include "sfq/cells.hh"

namespace supernpu {
namespace check {
namespace {

const sfq::CellLibrary &
library()
{
    static sfq::DeviceConfig dev;
    static sfq::CellLibrary lib{dev};
    return lib;
}

/** The PR 7 scenario: a data-parallel plan over a splittable batch. */
CheckCase
dataParallelCase()
{
    CheckCase c;
    c.seed = 7;
    c.index = 0;
    c.inChannels = 3;
    c.inHw = 16;
    c.layers = {LayerSpec{dnn::LayerKind::Conv, 32, 3, 1},
                LayerSpec{dnn::LayerKind::Conv, 48, 3, 1}};
    c.batch = 4;
    c.dataParallel = 2;
    return c;
}

// --- generator -------------------------------------------------------

TEST(CheckGenerator, CasesDependOnlyOnSeedAndIndex)
{
    for (std::uint64_t i = 0; i < 8; ++i) {
        const CheckCase a = generate(9, i);
        const CheckCase b = generate(9, i);
        EXPECT_EQ(a.describe(), b.describe()) << "index " << i;
        EXPECT_EQ(a.servingSeed, b.servingSeed);
        EXPECT_EQ(a.faultSeed, b.faultSeed);
    }
}

TEST(CheckGenerator, SeedsAndIndicesDiversifyCases)
{
    std::vector<std::string> descriptions;
    for (std::uint64_t i = 0; i < 16; ++i)
        descriptions.push_back(generate(9, i).describe());
    std::sort(descriptions.begin(), descriptions.end());
    const auto unique_end =
        std::unique(descriptions.begin(), descriptions.end());
    EXPECT_GT(unique_end - descriptions.begin(), 8);
    EXPECT_NE(generate(9, 0).describe(), generate(10, 0).describe());
}

TEST(CheckGenerator, EveryCaseIsValidByConstruction)
{
    // network() and config() run the subsystem check() validators,
    // which panic/fatal on an invalid scenario — surviving the loop
    // is the assertion.
    for (std::uint64_t i = 0; i < 32; ++i) {
        const CheckCase c = generate(9, i);
        const dnn::Network net = c.network();
        EXPECT_FALSE(net.layers.empty());
        c.config();
        EXPECT_GE(c.batch, 1);
        EXPECT_GE(c.pipelineStages, 1);
        EXPECT_GE(c.dataParallel, 1);
        EXPECT_GE(c.tensorShards, 1);
    }
}

// --- oracle catalog --------------------------------------------------

TEST(CheckOracles, CatalogNamesAreStable)
{
    const std::vector<std::string> &names = oracleNames();
    EXPECT_EQ(names.size(), 12u);
    for (const std::string &name : names)
        EXPECT_TRUE(isOracle(name)) << name;
    EXPECT_FALSE(isOracle("bogus-oracle"));
    EXPECT_FALSE(isOracle(""));
}

TEST(CheckOracles, HonestRunsPassOnEveryOracle)
{
    for (std::uint64_t i = 0; i < 4; ++i) {
        const CheckCase c = generate(9, i);
        for (const std::string &name : oracleNames()) {
            const OracleOutcome outcome =
                runOracle(name, c, library(), Cook::None);
            EXPECT_TRUE(!outcome.applicable || outcome.passed)
                << name << " on " << c.describe() << ": "
                << outcome.detail;
        }
    }
}

TEST(CheckOracles, TamperedRunsFailOnEveryOracle)
{
    // Every oracle must be sabotage-able (have teeth) on at least
    // one of the first cases, and a sabotaged observation must
    // never pass.
    std::vector<std::string> toothless = oracleNames();
    for (std::uint64_t i = 0; i < 12 && !toothless.empty(); ++i) {
        const CheckCase c = generate(9, i);
        for (auto it = toothless.begin(); it != toothless.end();) {
            const OracleOutcome outcome =
                runOracle(*it, c, library(), Cook::Tamper);
            EXPECT_TRUE(!outcome.applicable || !outcome.passed)
                << *it << " passed while tampered on "
                << c.describe();
            it = outcome.applicable ? toothless.erase(it) : it + 1;
        }
    }
    EXPECT_TRUE(toothless.empty())
        << "no applicable tamper case found for '" << toothless[0]
        << "'";
}

// --- shrinker --------------------------------------------------------

TEST(CheckShrinker, ShrinksToADeterministicStillFailingFixpoint)
{
    const CheckCase failing = dataParallelCase();
    const std::string oracle = "shard-solo-baseline";
    const OracleOutcome before =
        runOracle(oracle, failing, library(), Cook::Tamper);
    ASSERT_TRUE(before.applicable);
    ASSERT_FALSE(before.passed);

    const ShrinkResult first =
        shrinkCase(failing, oracle, library(), Cook::Tamper);
    EXPECT_GT(first.attempts, 0);
    const OracleOutcome after =
        runOracle(oracle, first.shrunk, library(), Cook::Tamper);
    EXPECT_TRUE(after.applicable);
    EXPECT_FALSE(after.passed);
    EXPECT_LE(first.shrunk.layers.size(), failing.layers.size());
    EXPECT_LE(first.shrunk.batch, failing.batch);

    // Shrinking a fixpoint accepts nothing and changes nothing.
    const ShrinkResult second =
        shrinkCase(first.shrunk, oracle, library(), Cook::Tamper);
    EXPECT_EQ(second.accepted, 0);
    EXPECT_EQ(second.shrunk.describe(), first.shrunk.describe());
}

TEST(CheckShrinker, PassingInputIsReturnedUnchanged)
{
    const CheckCase passing = dataParallelCase();
    const ShrinkResult result = shrinkCase(
        passing, "shard-solo-baseline", library(), Cook::None);
    EXPECT_EQ(result.accepted, 0);
    EXPECT_EQ(result.shrunk.describe(), passing.describe());
}

// --- repro serialization ---------------------------------------------

TEST(CheckRepro, RoundTripsBytesAndFullWidthSeeds)
{
    Repro repro;
    repro.oracle = "serving-determinism";
    repro.cook = Cook::Tamper;
    repro.checkCase = generate(0xDEADBEEFCAFEBABEull, 3);
    // Full-width seeds would lose bits through a double; the decimal
    // string encoding must hold all 64.
    repro.checkCase.servingSeed = 0xFFFFFFFFFFFFFFFFull;

    const std::string text = renderRepro(repro);
    std::string error;
    const auto parsed = parseRepro(text, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->oracle, repro.oracle);
    EXPECT_EQ(parsed->cook, repro.cook);
    EXPECT_EQ(parsed->checkCase.describe(),
              repro.checkCase.describe());
    EXPECT_EQ(parsed->checkCase.servingSeed, 0xFFFFFFFFFFFFFFFFull);
    EXPECT_EQ(renderRepro(*parsed), text);
}

TEST(CheckRepro, RejectsGarbageWithAReason)
{
    std::string error;
    EXPECT_FALSE(parseRepro("not json", &error).has_value());
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(parseRepro("{}", &error).has_value());
    EXPECT_FALSE(
        parseRepro("{\"schema\": \"supernpu-check-v1\", "
                   "\"oracle\": \"bogus\", \"cook\": \"none\"}",
                   &error)
            .has_value());
}

// --- corpus replay ---------------------------------------------------

TEST(CheckCorpus, EveryCommittedReproReplaysAsExpected)
{
    // SUPERNPU_REPRO_DIR points at the committed tests/repros/: one
    // shrunk tamper repro per oracle (teeth) plus cook-none pins for
    // the PR 4 and PR 7 fixes and the fuzz-discovered superlinear-TP
    // audit fix. Exit 0 means the oracle behaved as its cook
    // expects; a regression flips the replay to exit 1.
    std::vector<std::string> files;
    for (const auto &entry : std::filesystem::directory_iterator(
             SUPERNPU_REPRO_DIR)) {
        if (entry.path().extension() == ".json")
            files.push_back(entry.path().string());
    }
    std::sort(files.begin(), files.end());
    ASSERT_GE(files.size(), oracleNames().size());
    for (const std::string &path : files) {
        RunnerOptions options;
        options.replayPath = path;
        EXPECT_EQ(runCheck(options, library()), 0) << path;
    }
}

TEST(CheckRunner, GenerateModeIsCleanOnAFreshSeed)
{
    RunnerOptions options;
    options.seed = 31;
    options.cases = 3;
    options.shrinkFailures = false;
    EXPECT_EQ(runCheck(options, library()), 0);
}

TEST(CheckRunner, ParallelSweepIsByteIdenticalToSerial)
{
    // One generate-mode sweep at a given job count, rendered to
    // bytes: the tallies, the case-order outcome fingerprint, and
    // every failure-sink invocation in the order it fired. All of it
    // must be independent of --jobs.
    const auto sweep = [&](int jobs) {
        RunnerOptions options;
        options.seed = 9;
        options.cases = 10;
        options.shrinkFailures = false;
        options.jobs = jobs;
        std::ostringstream failures;
        const CheckSummary summary = runCases(
            options, library(),
            [&](const std::string &oracle, const CheckCase &c,
                const OracleOutcome &outcome) {
                failures << oracle << ' ' << c.describe() << ' '
                         << outcome.detail << '\n';
            });
        std::ostringstream out;
        out << summary.ran << ' ' << summary.skipped << ' '
            << summary.failures << ' ' << summary.outcomeHash << '\n'
            << failures.str();
        return out.str();
    };

    const std::string serial = sweep(1);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(sweep(2), serial);
    EXPECT_EQ(sweep(8), serial);
}

TEST(CheckRunner, RunCasesRejectsAnUnknownOracleFilter)
{
    RunnerOptions options;
    options.oracle = "no-such-oracle";
    EXPECT_DEATH((void)runCases(options, library()),
                 "unknown oracle");
}

} // namespace
} // namespace check
} // namespace supernpu
