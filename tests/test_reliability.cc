/**
 * @file
 * Reliability-subsystem tests: deterministic fault-schedule
 * generation, degraded-geometry re-estimation, cycle-level fault
 * injection (including the SimCache fault-hash keying regression),
 * and functional error propagation.
 */

#include <gtest/gtest.h>

#include "dnn/networks.hh"
#include "dnn/parser.hh"
#include "estimator/npu_estimator.hh"
#include "npusim/sim_cache.hh"
#include "reliability/error_propagation.hh"
#include "reliability/fault_model.hh"
#include "reliability/injector.hh"

using namespace supernpu;
using namespace supernpu::reliability;

namespace {

FaultScheduleConfig
allKindsConfig()
{
    FaultScheduleConfig config;
    config.horizonSec = 0.5;
    config.chips = 2;
    config.pulseDropRatePerSec = 200.0;
    config.fluxTrapRatePerSec = 4.0;
    config.clockSkewRatePerSec = 50.0;
    config.linkGlitchRatePerSec = 80.0;
    return config;
}

bool
eventsEqual(const FaultEvent &a, const FaultEvent &b)
{
    return a.timeSec == b.timeSec && a.kind == b.kind &&
           a.chip == b.chip && a.magnitude == b.magnitude &&
           a.durationSec == b.durationSec &&
           a.trapTarget == b.trapTarget;
}

} // namespace

// --- schedule generation ---------------------------------------------

TEST(FaultSchedule, SameSeedIsByteIdentical)
{
    const FaultScheduleConfig config = allKindsConfig();
    const FaultSchedule a = FaultSchedule::generate(config);
    const FaultSchedule b = FaultSchedule::generate(config);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_GT(a.size(), 0u);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_TRUE(eventsEqual(a.events()[i], b.events()[i]));
    EXPECT_EQ(a.hash(), b.hash());

    FaultScheduleConfig reseeded = config;
    reseeded.seed += 1;
    EXPECT_NE(FaultSchedule::generate(reseeded).hash(), a.hash());
}

TEST(FaultSchedule, EventsSortedAndInsideHorizon)
{
    const FaultSchedule schedule =
        FaultSchedule::generate(allKindsConfig());
    for (std::size_t i = 0; i < schedule.size(); ++i) {
        const FaultEvent &event = schedule.events()[i];
        EXPECT_GE(event.timeSec, 0.0);
        EXPECT_LT(event.timeSec, 0.5);
        if (i > 0) {
            EXPECT_GE(event.timeSec,
                      schedule.events()[i - 1].timeSec);
        }
    }
}

TEST(FaultSchedule, RateScalesEventCount)
{
    FaultScheduleConfig low;
    low.horizonSec = 2.0;
    low.pulseDropRatePerSec = 100.0;
    FaultScheduleConfig high = low;
    high.pulseDropRatePerSec = 400.0;
    const std::size_t low_count =
        FaultSchedule::generate(low).size();
    const std::size_t high_count =
        FaultSchedule::generate(high).size();
    // ~200 vs ~800 expected events: 4x the rate must show clearly.
    EXPECT_GT(low_count, 100u);
    EXPECT_GT(high_count, 2 * low_count);
}

TEST(FaultSchedule, ChipStreamsAreIndependentOfFleetSize)
{
    // Adding a chip must not disturb the schedules of the chips that
    // were already there: every (chip, kind) pair has its own stream.
    FaultScheduleConfig two = allKindsConfig();
    FaultScheduleConfig three = allKindsConfig();
    three.chips = 3;
    const FaultSchedule small = FaultSchedule::generate(two);
    const FaultSchedule large = FaultSchedule::generate(three);

    for (int chip = 0; chip < 2; ++chip) {
        std::vector<FaultEvent> from_small, from_large;
        for (const FaultEvent &event : small.events())
            if (event.chip == chip)
                from_small.push_back(event);
        for (const FaultEvent &event : large.events())
            if (event.chip == chip)
                from_large.push_back(event);
        ASSERT_EQ(from_small.size(), from_large.size());
        for (std::size_t i = 0; i < from_small.size(); ++i)
            EXPECT_TRUE(eventsEqual(from_small[i], from_large[i]));
    }
    EXPECT_GT(large.count(FaultKind::PulseDrop, 2), 0u);
}

TEST(FaultSchedule, BurstArrivalKeepsLongRunRate)
{
    FaultScheduleConfig poisson;
    poisson.horizonSec = 4.0;
    poisson.pulseDropRatePerSec = 200.0;
    FaultScheduleConfig burst = poisson;
    burst.arrival = FaultArrival::Burst;
    const double p = (double)FaultSchedule::generate(poisson).size();
    const double b = (double)FaultSchedule::generate(burst).size();
    // Same long-run rate within 30%, but a different event pattern.
    EXPECT_NEAR(b / p, 1.0, 0.3);
    EXPECT_NE(FaultSchedule::generate(burst).hash(),
              FaultSchedule::generate(poisson).hash());
}

TEST(FaultSchedule, EmptyHashesToZeroAndEventsPerturbIt)
{
    EXPECT_EQ(FaultSchedule().hash(), 0u);
    EXPECT_EQ(FaultSchedule::fromEvents(FaultScheduleConfig{}, {})
                  .hash(),
              0u);

    FaultEvent event;
    event.timeSec = 0.25;
    event.kind = FaultKind::ClockSkew;
    event.magnitude = 1.5;
    event.durationSec = 1e-3;
    const std::uint64_t base =
        FaultSchedule::fromEvents(FaultScheduleConfig{}, {event})
            .hash();
    EXPECT_NE(base, 0u);
    FaultEvent moved = event;
    moved.timeSec = 0.2500001;
    EXPECT_NE(FaultSchedule::fromEvents(FaultScheduleConfig{}, {moved})
                  .hash(),
              base);
}

// --- degraded geometry -----------------------------------------------

class InjectorFixture : public ::testing::Test
{
  protected:
    InjectorFixture()
        : net(dnn::parseNetwork("network FaultTest\n"
                                "conv c1  3 16 16 3 1 1\n"
                                "conv c2 16 16 16 3 1 1\n")),
          config(estimator::NpuConfig::superNpu()),
          estimate(estimator::NpuEstimator(lib).estimate(config))
    {
    }

    static FaultSchedule
    singleTrap(FluxTrapTarget target)
    {
        FaultScheduleConfig config;
        FaultEvent event;
        event.kind = FaultKind::FluxTrap;
        event.trapTarget = target;
        event.magnitude = config.fluxTrapDerate;
        return FaultSchedule::fromEvents(config, {event});
    }

    static FaultSchedule
    pulseDrops(int count)
    {
        FaultScheduleConfig config;
        std::vector<FaultEvent> events;
        for (int i = 0; i < count; ++i) {
            FaultEvent event;
            event.timeSec = 1e-9 * i;
            events.push_back(event);
        }
        return FaultSchedule::fromEvents(config, events);
    }

    sfq::DeviceConfig dev;
    sfq::CellLibrary lib{dev};
    dnn::Network net;
    estimator::NpuConfig config;
    estimator::NpuEstimate estimate;
};

TEST_F(InjectorFixture, PristineGeometryIsAStrictNoOp)
{
    EXPECT_TRUE(geometryAfter(FaultSchedule(), 0).pristine());
    const auto same = degradeEstimate(estimate, DegradedGeometry{});
    EXPECT_EQ(npusim::hashEstimate(same),
              npusim::hashEstimate(estimate));
}

TEST_F(InjectorFixture, TrapsAccumulateIntoGeometry)
{
    const auto geometry =
        geometryAfter(singleTrap(FluxTrapTarget::PeColumn), 0);
    EXPECT_EQ(geometry.disabledColumns, 1);
    EXPECT_EQ(geometry.disabledChunks, 0);
    // The trap hit chip 0; chip 5 is untouched.
    EXPECT_TRUE(
        geometryAfter(singleTrap(FluxTrapTarget::PeColumn), 5)
            .pristine());
}

TEST_F(InjectorFixture, ColumnLossNarrowsTheArray)
{
    DegradedGeometry geometry;
    geometry.disabledColumns = 2;
    const auto degraded = degradeEstimate(estimate, geometry);
    EXPECT_EQ(degraded.config.peWidth, estimate.config.peWidth - 2);
    EXPECT_LT(degraded.peakMacPerSec, estimate.peakMacPerSec);
    EXPECT_NE(npusim::hashEstimate(degraded),
              npusim::hashEstimate(estimate));
}

// --- cycle-level injection -------------------------------------------

TEST_F(InjectorFixture, EmptyScheduleIsBitIdenticalToCleanRun)
{
    npusim::SimCache cache;
    FaultInjector injector(estimate, &cache);
    const auto injected = injector.run(net, 2, FaultSchedule());
    const auto direct = npusim::NpuSimulator(estimate).run(net, 2);
    EXPECT_EQ(injected->totalCycles, direct.totalCycles);
    EXPECT_DOUBLE_EQ(injected->seconds(), direct.seconds());
    EXPECT_EQ(injected->faultEventsInjected, 0u);
    EXPECT_EQ(injected->faultRecomputeCycles, 0u);
    EXPECT_DOUBLE_EQ(injected->secondsWithRecompute(),
                     injected->seconds());
}

TEST_F(InjectorFixture, CacheKeysCarryTheFaultHash)
{
    // Regression: a pure pulse-drop schedule leaves the degraded
    // geometry (and so the degraded estimate) identical to the clean
    // one. Before SimKey::faultHash the two runs collided in the
    // cache and a clean lookup could return fault-charged results.
    npusim::SimCache cache;
    FaultInjector injector(estimate, &cache);
    const auto faulted = injector.run(net, 2, pulseDrops(4));
    const auto clean = injector.run(net, 2, FaultSchedule());
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(clean->faultRecomputeCycles, 0u);
    EXPECT_GT(faulted->faultRecomputeCycles, 0u);
    // Same clean cycle counts — only the recompute surcharge differs.
    EXPECT_EQ(faulted->totalCycles, clean->totalCycles);

    // Distinct schedules must also key distinctly.
    const auto more = injector.run(net, 2, pulseDrops(8));
    EXPECT_EQ(cache.size(), 3u);
    EXPECT_GT(more->faultRecomputeCycles,
              faulted->faultRecomputeCycles);
}

TEST_F(InjectorFixture, TrapRemapCostsMeasuredCycles)
{
    npusim::SimCache cache;
    FaultInjector injector(estimate, &cache);
    const auto schedule = singleTrap(FluxTrapTarget::PeColumn);
    const auto clean = injector.run(net, 2, FaultSchedule());
    const auto trapped = injector.run(net, 2, schedule);
    EXPECT_GT(trapped->totalCycles, clean->totalCycles);
    const double derate = injector.serviceDerate(net, 2, schedule);
    EXPECT_GE(derate, 1.0);
    EXPECT_DOUBLE_EQ(derate, trapped->secondsWithRecompute() /
                                 clean->seconds());
}

// --- functional error propagation ------------------------------------

TEST(ErrorPropagation, SequentialChainsOnly)
{
    const dnn::Network plain =
        dnn::parseNetwork("network Seq\n"
                          "conv c1  3 16 16 3 1 1\n"
                          "conv c2 16 16 16 3 1 1\n");
    EXPECT_TRUE(canPropagate(plain));
    // Residual projections branch the shape graph.
    EXPECT_FALSE(canPropagate(dnn::makeResNet50()));
}

TEST(ErrorPropagation, ZeroRateMeansZeroError)
{
    const dnn::Network net =
        dnn::parseNetwork("network Seq\n"
                          "conv c1  3 16 16 3 1 1\n"
                          "conv c2 16 16 16 3 1 1\n");
    const auto report = propagateErrors(net, 0.0);
    EXPECT_EQ(report.totalFlips(), 0u);
    for (const auto &layer : report.layers) {
        EXPECT_EQ(layer.wrongOutputs, 0u);
        EXPECT_EQ(layer.maxAbsError, 0);
    }
}

TEST(ErrorPropagation, FlipsCorruptDeterministically)
{
    const dnn::Network net =
        dnn::parseNetwork("network Seq\n"
                          "conv c1  3 16 16 3 1 1\n"
                          "conv c2 16 16 16 3 1 1\n");
    const auto a = propagateErrors(net, 400.0);
    const auto b = propagateErrors(net, 400.0);
    EXPECT_GT(a.totalFlips(), 0u);
    EXPECT_GT(a.final().wrongOutputs, 0u);
    ASSERT_EQ(a.layers.size(), b.layers.size());
    for (std::size_t i = 0; i < a.layers.size(); ++i) {
        EXPECT_EQ(a.layers[i].wrongOutputs, b.layers[i].wrongOutputs);
        EXPECT_DOUBLE_EQ(a.layers[i].meanAbsError,
                         b.layers[i].meanAbsError);
    }
    // A different seed draws different flip sites.
    const auto c = propagateErrors(net, 400.0, 12345);
    EXPECT_NE(c.final().meanAbsError, a.final().meanAbsError);
}
