/**
 * @file
 * Tests for the design-space explorer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "dnn/networks.hh"
#include "npusim/explorer.hh"
#include "npusim/sim_cache.hh"

namespace supernpu {
namespace npusim {
namespace {

class ExplorerFixture : public ::testing::Test
{
  protected:
    sfq::DeviceConfig dev;
    sfq::CellLibrary lib{dev};
    // Two representative workloads keep the sweep fast.
    std::vector<dnn::Network> nets = {dnn::makeResNet50(),
                                      dnn::makeGoogLeNet()};
};

TEST_F(ExplorerFixture, RediscoversThePaperRecipeForThroughput)
{
    DesignSpaceExplorer explorer(lib, nets);
    const auto ranked =
        explorer.explore(ExplorationSpace{}, Objective::Throughput);
    ASSERT_FALSE(ranked.empty());
    const Candidate &best = ranked.front();
    EXPECT_TRUE(best.operable);
    // Section V's conclusion: narrow array, many registers.
    EXPECT_EQ(best.config.peWidth, 64);
    EXPECT_EQ(best.config.regsPerPe, 8);
}

TEST_F(ExplorerFixture, RankingIsMonotoneInScore)
{
    DesignSpaceExplorer explorer(lib, nets);
    const auto ranked =
        explorer.explore(ExplorationSpace{}, Objective::Throughput);
    for (std::size_t i = 1; i < ranked.size(); ++i) {
        if (!ranked[i].operable)
            break; // inoperable candidates trail in any order
        EXPECT_GE(ranked[i - 1].score, ranked[i].score) << i;
    }
}

TEST_F(ExplorerFixture, CoversTheFullSpace)
{
    ExplorationSpace space;
    space.widths = {128, 64};
    space.bufferMbForWidth = {38, 46};
    space.divisions = {64};
    space.regsPerPe = {1, 8};
    DesignSpaceExplorer explorer(lib, nets);
    const auto ranked =
        explorer.explore(space, Objective::Throughput);
    EXPECT_EQ(ranked.size(), 4u);
}

TEST_F(ExplorerFixture, PerfPerAreaPrefersSmallerDies)
{
    ExplorationSpace space;
    space.widths = {256, 64};
    space.bufferMbForWidth = {24, 46};
    space.divisions = {64};
    space.regsPerPe = {8};
    DesignSpaceExplorer explorer(lib, nets);
    const auto by_perf =
        explorer.explore(space, Objective::Throughput);
    const auto by_area =
        explorer.explore(space, Objective::PerfPerArea);
    // Both objectives rank w64 first here, but the scores differ.
    EXPECT_NE(by_perf.front().score, by_area.front().score);
    for (const auto &cand : by_area)
        EXPECT_GT(cand.areaMm2, 0.0);
}

TEST_F(ExplorerFixture, InoperableCandidatesAreFlaggedNotDropped)
{
    ExplorationSpace space;
    space.widths = {64};
    space.bufferMbForWidth = {46};
    space.divisions = {32768}; // chunk-depth error
    space.regsPerPe = {1};
    DesignSpaceExplorer explorer(lib, nets);
    const auto ranked =
        explorer.explore(space, Objective::Throughput);
    ASSERT_EQ(ranked.size(), 1u);
    EXPECT_FALSE(ranked.front().operable);
    EXPECT_FALSE(ranked.front().note.empty());
}

namespace {

/** Every candidate field at full precision, one line per candidate. */
std::string
rankedBytes(const std::vector<Candidate> &ranked)
{
    std::ostringstream out;
    out.precision(17);
    for (const auto &cand : ranked) {
        out << cand.config.name << '|' << cand.score << '|'
            << cand.avgMacPerSec << '|' << cand.chipPowerW << '|'
            << cand.areaMm2 << '|' << cand.operable << '|'
            << cand.note << '\n';
    }
    return out.str();
}

} // namespace

TEST_F(ExplorerFixture, ParallelExploreIsByteIdenticalToSerial)
{
    DesignSpaceExplorer explorer(lib, nets);

    // Cold caches on both sides: the parallel sweep must reproduce
    // the serial bytes by construction, not by reading its results.
    SimCache serial_cache, parallel_cache;
    explorer.setCache(&serial_cache);
    const auto serial =
        explorer.explore(ExplorationSpace{}, Objective::Throughput, 1);
    explorer.setCache(&parallel_cache);
    const auto parallel =
        explorer.explore(ExplorationSpace{}, Objective::Throughput, 8);

    EXPECT_EQ(rankedBytes(serial), rankedBytes(parallel));
    EXPECT_EQ(serial_cache.stats().misses,
              parallel_cache.stats().misses);
}

TEST_F(ExplorerFixture, UncachedExploreMatchesCachedExplore)
{
    DesignSpaceExplorer explorer(lib, nets);
    explorer.setCache(nullptr); // simulate every point afresh
    const auto uncached =
        explorer.explore(ExplorationSpace{}, Objective::PerfPerWatt, 2);
    SimCache cache;
    explorer.setCache(&cache);
    const auto cached =
        explorer.explore(ExplorationSpace{}, Objective::PerfPerWatt, 2);
    EXPECT_EQ(rankedBytes(uncached), rankedBytes(cached));
    EXPECT_GT(cache.stats().misses, 0u);
}

TEST_F(ExplorerFixture, RerankingAWarmCacheSimulatesNothing)
{
    DesignSpaceExplorer explorer(lib, nets);
    SimCache cache;
    explorer.setCache(&cache);
    explorer.explore(ExplorationSpace{}, Objective::Throughput, 4);
    const auto warm = cache.stats();
    explorer.explore(ExplorationSpace{}, Objective::PerfPerArea, 4);
    EXPECT_EQ(cache.stats().misses, warm.misses);
    EXPECT_GT(cache.stats().hits, warm.hits);
}

TEST(ExplorerStatics, MakeConfigIsValid)
{
    const auto config =
        DesignSpaceExplorer::makeConfig(64, 256, 8, 46);
    config.check();
    EXPECT_EQ(config.peWidth, 64);
    EXPECT_EQ(config.outputDivision, 256);
    EXPECT_EQ(config.ifmapDivision, 64); // capped
}

} // namespace
} // namespace npusim
} // namespace supernpu
