/**
 * @file
 * Tests for the memoized simulation cache: hit/miss accounting, LRU
 * eviction, key sensitivity (no false sharing between design
 * points), and thread safety.
 */

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.hh"
#include "dnn/networks.hh"
#include "npusim/sim_cache.hh"

namespace supernpu {
namespace npusim {
namespace {

class SimCacheFixture : public ::testing::Test
{
  protected:
    sfq::DeviceConfig dev;
    sfq::CellLibrary lib{dev};
    estimator::NpuEstimator est{lib};
    estimator::NpuConfig config = estimator::NpuConfig::superNpu();
    estimator::NpuEstimate estimate = est.estimate(config);
    NpuSimulator sim{estimate};
    dnn::Network net = dnn::makeAlexNet();
};

TEST_F(SimCacheFixture, MissThenHitReturnsTheSameResult)
{
    SimCache cache;
    const auto first = cache.getOrRun(sim, net, 4);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 0u);

    const auto second = cache.getOrRun(sim, net, 4);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(first.get(), second.get()); // same object, no rerun
    EXPECT_EQ(first->totalCycles, sim.run(net, 4).totalCycles);
}

TEST_F(SimCacheFixture, DistinctBatchesAreDistinctEntries)
{
    SimCache cache;
    const auto b1 = cache.getOrRun(sim, net, 1);
    const auto b2 = cache.getOrRun(sim, net, 2);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_NE(b1->totalCycles, b2->totalCycles);
}

TEST_F(SimCacheFixture, DistinctConfigsDoNotCollide)
{
    SimCache cache;
    const auto super = cache.getOrRun(sim, net, 4);

    auto other_config = estimator::NpuConfig::baseline();
    NpuSimulator other_sim(est.estimate(other_config));
    const auto baseline = cache.getOrRun(other_sim, net, 4);

    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.stats().misses, 2u);
    EXPECT_NE(super->totalCycles, baseline->totalCycles);
}

TEST_F(SimCacheFixture, SameConfigDifferentLibraryDoesNotCollide)
{
    // The same NpuConfig estimated at another device point simulates
    // differently; the key hashes the estimate, not just the config.
    sfq::DeviceConfig small_dev;
    small_dev.featureSizeUm = 0.5;
    sfq::CellLibrary small_lib{small_dev};
    estimator::NpuEstimator small_est{small_lib};
    NpuSimulator small_sim(small_est.estimate(config));

    SimCache cache;
    cache.getOrRun(sim, net, 4);
    cache.getOrRun(small_sim, net, 4);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.stats().misses, 2u);
}

TEST_F(SimCacheFixture, DistinctNetworksDoNotCollide)
{
    SimCache cache;
    cache.getOrRun(sim, dnn::makeAlexNet(), 4);
    cache.getOrRun(sim, dnn::makeMobileNet(), 4);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.stats().misses, 2u);
}

TEST_F(SimCacheFixture, LruEvictionPastCapacity)
{
    SimCache cache(2);
    cache.getOrRun(sim, net, 1);
    cache.getOrRun(sim, net, 2);
    cache.getOrRun(sim, net, 1); // refresh batch 1
    cache.getOrRun(sim, net, 3); // evicts batch 2 (LRU)
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.stats().evictions, 1u);

    // Batch 1 survived the eviction, batch 2 did not.
    const auto before = cache.stats();
    cache.getOrRun(sim, net, 1);
    EXPECT_EQ(cache.stats().hits, before.hits + 1);
    cache.getOrRun(sim, net, 2);
    EXPECT_EQ(cache.stats().misses, before.misses + 1);
}

TEST_F(SimCacheFixture, ClearDropsEntriesAndCounters)
{
    SimCache cache;
    cache.getOrRun(sim, net, 1);
    cache.getOrRun(sim, net, 1);
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().misses, 0u);
}

TEST_F(SimCacheFixture, ConcurrentLookupsAreConsistent)
{
    SimCache cache;
    // 8 threads hammer 4 distinct keys; every accounting event lands
    // in exactly one counter and every result is the cached one.
    ThreadPool pool(8);
    const auto cycles = pool.parallelMap(64, [&](std::size_t i) {
        return cache.getOrRun(sim, net, 1 + (int)(i % 4))
            ->totalCycles;
    });
    for (std::size_t i = 0; i < cycles.size(); ++i) {
        EXPECT_EQ(cycles[i],
                  cache.getOrRun(sim, net, 1 + (int)(i % 4))
                      ->totalCycles);
    }
    const auto stats = cache.stats();
    EXPECT_EQ(cache.size(), 4u);
    // Duplicate misses on a racing key are allowed (both simulate,
    // first insert wins) but hits + misses must cover every call.
    EXPECT_EQ(stats.hits + stats.misses, 64u + 64u);
    EXPECT_GE(stats.misses, 4u);
}

TEST_F(SimCacheFixture, EvictedResultsStayValidWhileHeld)
{
    SimCache cache(1);
    const auto held = cache.getOrRun(sim, net, 1);
    cache.getOrRun(sim, net, 2); // evicts batch 1's entry
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(held->batch, 1); // shared_ptr keeps it alive
    EXPECT_GT(held->totalCycles, 0u);
}

TEST(SimHash, NetworkHashIsShapeSensitive)
{
    dnn::Network a = dnn::makeAlexNet();
    dnn::Network b = a;
    EXPECT_EQ(hashNetwork(a), hashNetwork(b));
    b.layers[0].stride += 1;
    EXPECT_NE(hashNetwork(a), hashNetwork(b));
    b = a;
    b.name = "other";
    EXPECT_NE(hashNetwork(a), hashNetwork(b));
}

TEST(SimHash, ConfigHashCoversEveryKnob)
{
    const auto base = estimator::NpuConfig::superNpu();
    auto touch = [&](auto mutate) {
        auto copy = base;
        mutate(copy);
        EXPECT_NE(hashConfig(base), hashConfig(copy));
    };
    touch([](estimator::NpuConfig &c) { c.peWidth /= 2; });
    touch([](estimator::NpuConfig &c) { c.regsPerPe += 1; });
    touch([](estimator::NpuConfig &c) { c.outputDivision *= 2; });
    touch([](estimator::NpuConfig &c) { c.ifmapBufferBytes += 1; });
    touch([](estimator::NpuConfig &c) { c.memoryBandwidth *= 2.0; });
    touch([](estimator::NpuConfig &c) {
        c.weightDoubleBuffering = true;
    });
}

} // namespace
} // namespace npusim
} // namespace supernpu
