/**
 * @file
 * Tests for the power / cooling model (Table III).
 */

#include <gtest/gtest.h>

#include "dnn/networks.hh"
#include "npusim/batch.hh"
#include "npusim/sim.hh"
#include "power/power.hh"
#include "scalesim/tpu.hh"

namespace supernpu {
namespace power {
namespace {

using estimator::NpuConfig;
using estimator::NpuEstimate;
using estimator::NpuEstimator;

/** Build an estimate for the given technology. */
NpuEstimate
estimateFor(sfq::Technology tech, const NpuConfig &config)
{
    sfq::DeviceConfig dev;
    dev.technology = tech;
    sfq::CellLibrary lib(dev);
    NpuEstimator estimator(lib);
    return estimator.estimate(config);
}

/** Average chip power and perf over the six workloads at max batch. */
struct WorkloadAverage
{
    PowerReport power;
    double macPerSec = 0.0;
};

WorkloadAverage
averageOver(const NpuEstimate &est)
{
    npusim::NpuSimulator sim(est);
    WorkloadAverage avg;
    const auto nets = dnn::evaluationWorkloads();
    for (const auto &net : nets) {
        const int batch = npusim::maxBatch(est.config, est, net);
        const auto run = sim.run(net, batch);
        const PowerReport report = analyze(est, run);
        avg.power.staticW = report.staticW;
        avg.power.dynamicW += report.dynamicW / (double)nets.size();
        avg.macPerSec += run.effectiveMacPerSec() / (double)nets.size();
    }
    return avg;
}

TEST(Power, ReportArithmetic)
{
    PowerReport report;
    report.staticW = 10.0;
    report.dynamicW = 2.0;
    EXPECT_DOUBLE_EQ(report.chipW(), 12.0);
    EXPECT_DOUBLE_EQ(report.coolingW(), 12.0 * 400.0);
    EXPECT_DOUBLE_EQ(report.totalWithCoolingW(), 12.0 * 401.0);
}

TEST(Power, PerfPerWatt)
{
    EXPECT_DOUBLE_EQ(perfPerWatt(40e12, 40.0), 1e12);
}

TEST(Power, RsfqSuperNpuNearPaperTableThree)
{
    const auto est =
        estimateFor(sfq::Technology::RSFQ, NpuConfig::superNpu());
    const WorkloadAverage avg = averageOver(est);
    // Table III: 964 W, dominated by static dissipation.
    EXPECT_NEAR(avg.power.chipW(), 964.0, 100.0);
    EXPECT_GT(avg.power.staticW, 50.0 * avg.power.dynamicW);
}

TEST(Power, ErsfqSuperNpuNearPaperTableThree)
{
    const auto est =
        estimateFor(sfq::Technology::ERSFQ, NpuConfig::superNpu());
    const WorkloadAverage avg = averageOver(est);
    // Table III: 1.9 W, all of it dynamic.
    EXPECT_DOUBLE_EQ(avg.power.staticW, 0.0);
    EXPECT_NEAR(avg.power.chipW(), 1.9, 1.0);
    // With the 400x cooling overhead: ~751 W.
    EXPECT_NEAR(avg.power.totalWithCoolingW(), 751.0, 380.0);
}

TEST(Power, TableThreePerfPerWattRatios)
{
    // Reproduce all four Table III rows against the TPU reference.
    scalesim::TpuConfig tpu_config;
    scalesim::TpuSimulator tpu(tpu_config);
    double tpu_perf = 0.0;
    const auto nets = dnn::evaluationWorkloads();
    for (const auto &net : nets) {
        const int batch = npusim::maxBatchUnified(
            tpu_config.unifiedBufferBytes, net);
        tpu_perf += tpu.run(net, batch).effectiveMacPerSec() /
                    (double)nets.size();
    }
    const double tpu_ppw =
        perfPerWatt(tpu_perf, tpu_config.averagePowerW);

    const auto rsfq =
        estimateFor(sfq::Technology::RSFQ, NpuConfig::superNpu());
    const auto ersfq =
        estimateFor(sfq::Technology::ERSFQ, NpuConfig::superNpu());
    const WorkloadAverage avg_r = averageOver(rsfq);
    const WorkloadAverage avg_e = averageOver(ersfq);

    // RSFQ without cooling: comparable to the TPU (paper: 0.95x).
    const double r_free =
        perfPerWatt(avg_r.macPerSec, avg_r.power.chipW()) / tpu_ppw;
    EXPECT_GT(r_free, 0.4);
    EXPECT_LT(r_free, 2.0);

    // RSFQ with cooling: catastrophic (paper: 0.002x).
    const double r_cooled =
        perfPerWatt(avg_r.macPerSec, avg_r.power.totalWithCoolingW()) /
        tpu_ppw;
    EXPECT_LT(r_cooled, 0.01);

    // ERSFQ with free cooling: hundreds of times better (paper 490x).
    const double e_free =
        perfPerWatt(avg_e.macPerSec, avg_e.power.chipW()) / tpu_ppw;
    EXPECT_GT(e_free, 200.0);
    EXPECT_LT(e_free, 1500.0);

    // ERSFQ with cooling: still ahead of the TPU (paper 1.23x).
    const double e_cooled =
        perfPerWatt(avg_e.macPerSec, avg_e.power.totalWithCoolingW()) /
        tpu_ppw;
    EXPECT_GT(e_cooled, 0.7);
    EXPECT_LT(e_cooled, 4.0);
}

TEST(Power, DynamicComponentsSumToTotal)
{
    const auto est =
        estimateFor(sfq::Technology::ERSFQ, NpuConfig::superNpu());
    npusim::NpuSimulator sim(est);
    const auto run = sim.run(dnn::makeVgg16(), 7);
    const PowerReport report = analyze(est, run);
    EXPECT_NEAR(report.dynamicW,
                report.dynamicPeW + report.dynamicBufferW +
                    report.dynamicDauW + report.dynamicNwW,
                1e-12);
    // The MAC datapaths dominate the dynamic budget when busy.
    EXPECT_GT(report.dynamicPeW, report.dynamicNwW);
}

TEST(Power, DynamicScalesWithActivity)
{
    const auto est =
        estimateFor(sfq::Technology::ERSFQ, NpuConfig::superNpu());
    npusim::NpuSimulator sim(est);
    const dnn::Network net = dnn::makeResNet50();
    const auto busy = sim.run(net, 30);
    const auto idle = sim.run(net, 1);
    // Higher utilization -> higher dynamic power.
    EXPECT_GT(analyze(est, busy).dynamicW, analyze(est, idle).dynamicW);
}

TEST(PowerDeath, ZeroWattsRejected)
{
    EXPECT_DEATH((void)perfPerWatt(1.0, 0.0), "non-positive");
}

} // namespace
} // namespace power
} // namespace supernpu
