/**
 * @file
 * Tests for the architecture design-rule checker.
 */

#include <gtest/gtest.h>

#include "common/units.hh"
#include "estimator/design_rules.hh"
#include "estimator/npu_estimator.hh"

namespace supernpu {
namespace estimator {
namespace {

class RulesFixture : public ::testing::Test
{
  protected:
    sfq::DeviceConfig dev;
    sfq::CellLibrary lib{dev};
    NpuEstimator estimator{lib};

    std::vector<RuleFinding>
    check(const NpuConfig &config)
    {
        return checkDesignRules(config, estimator.estimate(config));
    }

    static bool
    has(const std::vector<RuleFinding> &findings,
        const std::string &rule)
    {
        for (const auto &f : findings) {
            if (f.rule == rule)
                return true;
        }
        return false;
    }
};

TEST_F(RulesFixture, SuperNpuIsCleanAndOperable)
{
    const auto findings = check(NpuConfig::superNpu());
    EXPECT_TRUE(designIsOperable(findings));
    EXPECT_FALSE(has(findings, "weight-buffer"));
    EXPECT_FALSE(has(findings, "psum-separation"));
    EXPECT_FALSE(has(findings, "undivided-buffers"));
    EXPECT_FALSE(has(findings, "aspect-ratio"));
}

TEST_F(RulesFixture, BaselineTriggersTheSectionVWarnings)
{
    const auto findings = check(NpuConfig::baseline());
    // Operable (the paper evaluates it) but warned about the exact
    // bottlenecks Section V-A identifies.
    EXPECT_TRUE(designIsOperable(findings));
    EXPECT_TRUE(has(findings, "psum-separation"));
    EXPECT_TRUE(has(findings, "undivided-buffers"));
}

TEST_F(RulesFixture, TinyWeightBufferIsAnError)
{
    NpuConfig config = NpuConfig::superNpu();
    config.weightBufferBytes = 4 * units::kiB; // < 64 x 256 x 8
    const auto findings = check(config);
    EXPECT_FALSE(designIsOperable(findings));
    EXPECT_TRUE(has(findings, "weight-buffer"));
    // Errors sort first.
    EXPECT_EQ(findings.front().severity, RuleSeverity::Error);
}

TEST_F(RulesFixture, PrefetchNeedsTwoBanks)
{
    NpuConfig config = NpuConfig::superNpu();
    config.weightDoubleBuffering = true; // buffer still single-bank
    const auto findings = check(config);
    EXPECT_FALSE(designIsOperable(findings));
    config.weightBufferBytes *= 2;
    EXPECT_TRUE(designIsOperable(check(config)));
}

TEST_F(RulesFixture, ExtremeDivisionWarns)
{
    NpuConfig config = NpuConfig::superNpu();
    config.outputDivision = 4096;
    EXPECT_TRUE(has(check(config), "division-area"));
}

TEST_F(RulesFixture, ShallowChunksAreAnError)
{
    NpuConfig config = NpuConfig::superNpu();
    // 24 MB over 64 rows divided so far each chunk is < 15 entries.
    config.outputDivision = 32768;
    const auto findings = check(config);
    EXPECT_TRUE(has(findings, "chunk-depth"));
    EXPECT_FALSE(designIsOperable(findings));
}

TEST_F(RulesFixture, WideAspectRatioWarns)
{
    NpuConfig config = NpuConfig::superNpu();
    config.peWidth = 512;
    config.peHeight = 64;
    config.weightBufferBytes = 512ull * 64 * 8;
    EXPECT_TRUE(has(check(config), "aspect-ratio"));
}

} // namespace
} // namespace estimator
} // namespace supernpu
