/**
 * @file
 * Calibration locks: the headline reproduction numbers pinned into
 * narrow bands. The integration tests assert the paper's qualitative
 * shapes with generous margins; these tests instead ratchet the
 * *current* calibration so an innocent-looking constant change that
 * silently drifts the reproduction fails loudly. If you re-calibrate
 * deliberately, update EXPERIMENTS.md and these bands together.
 */

#include <gtest/gtest.h>

#include "dnn/networks.hh"
#include "npusim/batch.hh"
#include "npusim/sim.hh"
#include "power/power.hh"
#include "scalesim/tpu.hh"

namespace supernpu {
namespace {

using estimator::NpuConfig;

/** The evaluation pipeline at the paper's process point. */
class CalibrationLock : public ::testing::Test
{
  protected:
    sfq::DeviceConfig dev;
    sfq::CellLibrary lib{dev};
    estimator::NpuEstimator est{lib};
    scalesim::TpuConfig tpuConfig;
    scalesim::TpuSimulator tpu{tpuConfig};
    std::vector<dnn::Network> nets = dnn::evaluationWorkloads();

    double
    speedupAverage(const NpuConfig &config)
    {
        const auto estimate = est.estimate(config);
        npusim::NpuSimulator sim(estimate);
        double total = 0.0;
        for (const auto &net : nets) {
            const int tpu_batch = npusim::maxBatchUnified(
                tpuConfig.unifiedBufferBytes, net);
            const double tpu_perf =
                tpu.run(net, tpu_batch).effectiveMacPerSec();
            const int batch =
                npusim::maxBatch(config, estimate, net);
            total += sim.run(net, batch).effectiveMacPerSec() /
                     tpu_perf / (double)nets.size();
        }
        return total;
    }
};

TEST_F(CalibrationLock, FrequencyExactly52Point6)
{
    EXPECT_NEAR(est.estimate(NpuConfig::superNpu()).frequencyGhz,
                52.60, 0.05);
}

TEST_F(CalibrationLock, FigTwentyThreeAverages)
{
    // Measured: 0.41 / 9.82 / 21.43 / 23.90 (paper 0.4/7.7/17.3/23).
    EXPECT_NEAR(speedupAverage(NpuConfig::baseline()), 0.41, 0.06);
    EXPECT_NEAR(speedupAverage(NpuConfig::bufferOpt()), 9.82, 1.5);
    EXPECT_NEAR(speedupAverage(NpuConfig::resourceOpt()), 21.43, 3.0);
    EXPECT_NEAR(speedupAverage(NpuConfig::superNpu()), 23.90, 3.5);
}

TEST_F(CalibrationLock, TableThreePowers)
{
    // RSFQ static 1002 W (paper 964); ERSFQ dynamic 1.92 W (1.9).
    const auto rsfq = est.estimate(NpuConfig::superNpu());
    EXPECT_NEAR(rsfq.staticPowerW, 1002.0, 30.0);

    sfq::DeviceConfig edev;
    edev.technology = sfq::Technology::ERSFQ;
    sfq::CellLibrary elib(edev);
    estimator::NpuEstimator eest(elib);
    const auto ersfq = eest.estimate(NpuConfig::superNpu());
    npusim::NpuSimulator sim(ersfq);
    double dynamic = 0.0;
    for (const auto &net : nets) {
        const int batch =
            npusim::maxBatch(NpuConfig::superNpu(), ersfq, net);
        dynamic += power::analyze(ersfq, sim.run(net, batch)).dynamicW /
                   (double)nets.size();
    }
    EXPECT_NEAR(dynamic, 1.92, 0.3);
}

TEST_F(CalibrationLock, TableOneAreas)
{
    // 28 nm-equivalents: ~283 / 285 / 302 / 305 mm^2.
    EXPECT_NEAR(est.estimate(NpuConfig::baseline()).areaMm2At(28.0),
                283.0, 8.0);
    EXPECT_NEAR(est.estimate(NpuConfig::superNpu()).areaMm2At(28.0),
                305.0, 9.0);
}

TEST_F(CalibrationLock, BaselineEffectiveThroughput)
{
    // Measured 3.70 TMAC/s average at batch 1 (paper 6.45).
    const auto estimate = est.estimate(NpuConfig::baseline());
    npusim::NpuSimulator sim(estimate);
    double total = 0.0;
    for (const auto &net : nets)
        total += sim.run(net, 1).effectiveMacPerSec() /
                 (double)nets.size();
    EXPECT_NEAR(total / 1e12, 3.70, 0.6);
}

TEST_F(CalibrationLock, TpuReferencePerformance)
{
    // The comparator itself is part of the calibration: AlexNet
    // 22.4 TMAC/s at batch 23, VGG16 10.7 at batch 3.
    const auto alexnet = tpu.run(nets[0], 23);
    EXPECT_NEAR(alexnet.effectiveMacPerSec() / 1e12, 22.4, 2.0);
    const auto vgg = tpu.run(nets[5], 3);
    EXPECT_NEAR(vgg.effectiveMacPerSec() / 1e12, 10.7, 1.0);
}

} // namespace
} // namespace supernpu
