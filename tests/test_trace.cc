/**
 * @file
 * Tests for the TraceRecorder CSV export: header shape, one line per
 * mapping event, and agreement between the per-event cycle columns
 * and the aggregate SimResult counters (for the buckets the trace
 * covers — layer-end flushes and hand-offs are aggregate-only and
 * deliberately absent from the trace).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "dnn/parser.hh"
#include "estimator/npu_estimator.hh"
#include "npusim/sim.hh"
#include "npusim/trace.hh"

namespace supernpu {
namespace npusim {
namespace {

/** Split CSV text into non-empty lines. */
std::vector<std::string>
csvLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty())
            lines.push_back(line);
    }
    return lines;
}

/** Split one CSV line into fields. */
std::vector<std::string>
csvFields(const std::string &line)
{
    std::vector<std::string> fields;
    std::istringstream in(line);
    std::string field;
    while (std::getline(in, field, ','))
        fields.push_back(field);
    return fields;
}

class TraceFixture : public ::testing::Test
{
  protected:
    TraceFixture()
        : net(dnn::parseNetwork("network TraceTest\n"
                                "conv   c1    3 24 24 3 1 1\n"
                                "conv   c2   24 24 24 3 1 1\n"
                                "dwconv dw3  24 24  - 3 1 1\n"
                                "fc     fc1 13824 - 10 - - -\n")),
          estimate(estimator::NpuEstimator(lib).estimate(
              estimator::NpuConfig::superNpu()))
    {
    }

    sfq::DeviceConfig dev;
    sfq::CellLibrary lib{dev};
    dnn::Network net;
    estimator::NpuEstimate estimate;
};

TEST_F(TraceFixture, CsvHasHeaderAndOneLinePerEvent)
{
    NpuSimulator sim(estimate);
    TraceRecorder trace;
    sim.setTrace(&trace);
    const SimResult result = sim.run(net, 2);

    ASSERT_FALSE(trace.events().empty());
    const auto lines = csvLines(trace.csv());
    ASSERT_EQ(lines.size(), trace.events().size() + 1);
    EXPECT_EQ(lines.front(),
              "layer,col_fold,row_fold,weight_load,ifmap_fill,"
              "ifmap_rewind,psum_move,compute,stall,macs");

    // Every data line has exactly the header's field count, and its
    // layer name is one of the network's.
    const std::size_t columns = csvFields(lines.front()).size();
    for (std::size_t i = 1; i < lines.size(); ++i) {
        const auto fields = csvFields(lines[i]);
        ASSERT_EQ(fields.size(), columns) << lines[i];
        bool known = false;
        for (const auto &layer : net.layers)
            known |= fields[0] == layer.name;
        EXPECT_TRUE(known) << fields[0];
    }
    // One mapping event per weight mapping the result accounted.
    std::uint64_t mappings = 0;
    for (const auto &layer : result.layers)
        mappings += layer.weightMappings;
    EXPECT_EQ(trace.events().size(), mappings);
}

TEST_F(TraceFixture, EventTotalsMatchSimResult)
{
    NpuSimulator sim(estimate);
    TraceRecorder trace;
    sim.setTrace(&trace);
    const SimResult result = sim.run(net, 3);

    std::uint64_t weight_load = 0, ifmap_fill = 0, ifmap_rewind = 0,
                  psum_move = 0, compute = 0, stall = 0, macs = 0;
    for (const auto &event : trace.events()) {
        weight_load += event.weightLoadCycles;
        ifmap_fill += event.ifmapFillCycles;
        ifmap_rewind += event.ifmapRewindCycles;
        psum_move += event.psumMoveCycles;
        compute += event.computeCycles;
        stall += event.stallCycles;
        macs += event.macOps;
    }
    EXPECT_EQ(weight_load, result.prep.weightLoad);
    EXPECT_EQ(ifmap_fill, result.prep.ifmapFill);
    EXPECT_EQ(ifmap_rewind, result.prep.ifmapRewind);
    EXPECT_EQ(psum_move, result.prep.psumMove);
    EXPECT_EQ(compute, result.computeCycles);
    EXPECT_EQ(stall, result.memoryStallCycles);
    EXPECT_EQ(macs, result.macOps);

    // What the trace does NOT carry: flush and hand-off cycles, which
    // are charged at layer end, not per mapping.
    std::uint64_t traced_prep =
        weight_load + ifmap_fill + ifmap_rewind + psum_move;
    EXPECT_EQ(traced_prep + result.prep.outputFlush +
                  result.prep.outputHandoff,
              result.prepCycles);
}

TEST_F(TraceFixture, ClearDropsEventsAndDetachStopsRecording)
{
    NpuSimulator sim(estimate);
    TraceRecorder trace;
    sim.setTrace(&trace);
    (void)sim.run(net, 1);
    ASSERT_FALSE(trace.events().empty());

    trace.clear();
    EXPECT_TRUE(trace.events().empty());
    EXPECT_EQ(csvLines(trace.csv()).size(), 1u); // header only

    sim.setTrace(nullptr);
    (void)sim.run(net, 1);
    EXPECT_TRUE(trace.events().empty());
}

TEST_F(TraceFixture, RepeatedRunsAppendDeterministically)
{
    NpuSimulator sim(estimate);
    TraceRecorder first;
    sim.setTrace(&first);
    (void)sim.run(net, 2);
    const std::string once = first.csv();

    TraceRecorder second;
    sim.setTrace(&second);
    (void)sim.run(net, 2);
    EXPECT_EQ(once, second.csv());

    // Without clear(), a second run appends after the first.
    sim.setTrace(&first);
    (void)sim.run(net, 2);
    EXPECT_EQ(first.events().size(), 2 * second.events().size());
}

} // namespace
} // namespace npusim
} // namespace supernpu
