/**
 * @file
 * Tests for the common/parallel thread pool: deterministic ordering,
 * exception propagation, nested submission, and stress.
 */

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>

#include <gtest/gtest.h>

#include "common/parallel.hh"
#include "common/rng.hh"

namespace supernpu {
namespace {

TEST(ThreadPool, HardwareConcurrencyIsAtLeastOne)
{
    EXPECT_GE(ThreadPool::hardwareConcurrency(), 1);
}

TEST(ThreadPool, JobsCountIncludesTheCaller)
{
    ThreadPool serial(1);
    EXPECT_EQ(serial.jobs(), 1);
    ThreadPool pool(4);
    EXPECT_EQ(pool.jobs(), 4);
    ThreadPool defaulted(0);
    EXPECT_EQ(defaulted.jobs(), ThreadPool::hardwareConcurrency());
}

TEST(ThreadPool, MapReturnsResultsInSubmissionOrder)
{
    ThreadPool pool(8);
    const auto out = pool.parallelMap(
        1000, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 1000u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, ParallelMatchesSerialBitForBit)
{
    auto work = [](std::size_t i) {
        // Non-associative float chain: result depends on order of
        // operations inside one task, never across tasks.
        double x = 1.0;
        for (std::size_t k = 0; k <= i % 97; ++k)
            x = x / 3.0 + (double)k * 0.1;
        return x;
    };
    ThreadPool serial(1);
    ThreadPool pool(8);
    const auto a = serial.parallelMap(500, work);
    const auto b = pool.parallelMap(500, work);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]) << i; // exact, not near
}

TEST(ThreadPool, ForRunsEveryIndexExactlyOnce)
{
    ThreadPool pool(8);
    std::vector<std::atomic<int>> hits(2000);
    pool.parallelFor(hits.size(),
                     [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, EmptyLoopIsANoop)
{
    ThreadPool pool(4);
    bool ran = false;
    pool.parallelFor(0, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPool, ExceptionsPropagateToTheCaller)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(100,
                         [](std::size_t i) {
                             if (i == 37)
                                 throw std::runtime_error("task 37");
                         }),
        std::runtime_error);
}

TEST(ThreadPool, EveryIndexStillRunsWhenOneThrows)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    try {
        pool.parallelFor(200, [&](std::size_t i) {
            ++ran;
            if (i % 50 == 10)
                throw std::runtime_error("boom");
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &) {
    }
    EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPool, PoolIsReusableAfterAnException)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(10,
                                  [](std::size_t) {
                                      throw std::runtime_error("x");
                                  }),
                 std::runtime_error);
    const auto out =
        pool.parallelMap(10, [](std::size_t i) { return i + 1; });
    EXPECT_EQ(out[9], 10u);
}

TEST(ThreadPool, NestedSubmitRunsInlineWithoutDeadlock)
{
    ThreadPool pool(4);
    std::atomic<std::size_t> total{0};
    pool.parallelFor(16, [&](std::size_t) {
        // A nested loop on the same pool must not block on workers
        // that are all busy with the outer loop.
        pool.parallelFor(8, [&](std::size_t) { ++total; });
    });
    EXPECT_EQ(total.load(), 16u * 8u);
}

TEST(ThreadPool, BackToBackLoopsStress)
{
    ThreadPool pool(8);
    for (int round = 0; round < 50; ++round) {
        std::atomic<std::uint64_t> sum{0};
        pool.parallelFor(317, [&](std::size_t i) { sum += i; });
        EXPECT_EQ(sum.load(), 317ull * 316ull / 2ull) << round;
    }
}

TEST(ThreadPool, StatsCountLoopsAndTasks)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.stats().loops, 0ull);
    EXPECT_EQ(pool.stats().tasks, 0ull);
    pool.parallelFor(100, [](std::size_t) {});
    pool.parallelMap(40, [](std::size_t i) { return i; });
    pool.parallelFor(0, [](std::size_t) {}); // no-op, not a loop
    const ThreadPool::Stats stats = pool.stats();
    EXPECT_EQ(stats.jobs, 4);
    EXPECT_EQ(stats.loops, 2ull);
    EXPECT_EQ(stats.tasks, 140ull);
    EXPECT_EQ(stats.maxLoopTasks, 100ull);
}

TEST(StreamSeed, DeterministicPerIndexAndDecorrelated)
{
    // Same (seed, stream) -> same stream; different stream or base
    // seed -> different sequences.
    EXPECT_EQ(streamSeed(42, 7), streamSeed(42, 7));
    EXPECT_NE(streamSeed(42, 7), streamSeed(42, 8));
    EXPECT_NE(streamSeed(42, 7), streamSeed(43, 7));
    EXPECT_NE(streamSeed(0, 0), streamSeed(0, 1));

    Rng a(streamSeed(42, 0));
    Rng b(streamSeed(42, 1));
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_EQ(same, 0);
}

TEST(StreamSeed, ParallelRngDrawsMatchSerialDraws)
{
    const std::uint64_t base = 0xfeedbeefull;
    auto draw = [&](std::size_t i) {
        Rng rng(streamSeed(base, i));
        return rng.uniform();
    };
    ThreadPool serial(1);
    ThreadPool pool(8);
    const auto a = serial.parallelMap(256, draw);
    const auto b = pool.parallelMap(256, draw);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]) << i;
}

} // namespace
} // namespace supernpu
